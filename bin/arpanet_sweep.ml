(* arpanet_sweep — run a declared grid of simulator experiments.

     dune exec bin/arpanet_sweep.exe -- scenarios/paper_sweep.json
     dune exec bin/arpanet_sweep.exe -- sweep.json -o report.json --csv report.csv
     dune exec bin/arpanet_sweep.exe -- sweep.json --domains 4
     dune exec bin/arpanet_sweep.exe -- sweep.json --shard 0/4 -o shard0.json
     dune exec bin/arpanet_sweep.exe -- sweep.json --merge shard0.json --merge shard1.json
     dune exec bin/arpanet_sweep.exe -- sweep.json --resume -o report.json

   The spec (see Sweep_spec) declares scenario, metric, load-scale and
   seed axes; every grid point runs its own flow simulator and the
   per-point telemetry registries fold into one JSON report (plus an
   optional CSV).  Scenarios are parsed once into shared immutable
   state, points are distributed over a work-stealing domain pool, and
   whole grids can be split across processes (--shard) and stitched
   back together (--merge) or restarted (--resume) — the report's bytes
   never depend on any of it.

   The spec is linted first (the same S1xx diagnostics as
   `arpanet_check --sweep`); errors refuse the run. *)

module Diagnostic = Routing_check.Diagnostic
module Sweep_check = Routing_check.Sweep_check
module Sweep_spec = Routing_sweep.Sweep_spec
module Sweep_engine = Routing_sweep.Sweep_engine
module Domain_pool = Routing_metric.Domain_pool
module Obs_json = Routing_obs.Json
module Tracer = Routing_obs.Tracer
module Trace_export = Routing_obs.Trace_export

(* Reports are written atomically (tmp + rename) so an interrupted run
   never leaves a half-written file for --resume or --merge to trip
   over. *)
let write_text path text =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text);
  Sys.rename tmp path

let err fmt = Format.eprintf (fmt ^^ "@.")

let read_report path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Result.Error e
  | text ->
    (match Obs_json.of_string text with
    | Ok json -> Ok json
    | Error e -> Result.Error (Printf.sprintf "%s: %s" path e))

(* --resume: adopt answers from an existing report at [path].  A missing
   file is a fresh start; an unreadable or undecodable one is an S108
   warning and a full rerun — resume never refuses work. *)
let resume_lookup ~quiet path =
  if not (Sys.file_exists path) then None
  else
    let stored =
      match read_report path with
      | Ok json -> Sweep_engine.stored_points json
      | Error e -> Result.Error e
    in
    match stored with
    | Ok pts ->
      let table = Hashtbl.create (List.length pts) in
      List.iter (fun (h, ind) -> Hashtbl.replace table h ind) pts;
      Some (Hashtbl.find_opt table)
    | Result.Error e ->
      if not quiet then
        err "arpanet_sweep: warning: [S108] cannot resume from %s: %s \
             (rerunning every point)" path e;
      None

(* The report's summary views on the console: the route-stability
   ranking when there is something to compare, the located critical-load
   knees whenever a ramp produced them. *)
let print_summary (report : Sweep_engine.report) =
  (match report.rankings with
  | [] | [ _ ] -> ()
  | rankings ->
    Format.printf "route stability (most stable first):@.";
    List.iter
      (fun (r : Sweep_engine.ranking) ->
        Format.printf
          "  %d. %s/%s  score %d  routes %.2f/period  nh-flips %.2f  \
           link-flips %.2f@."
          r.r_rank r.r_scenario
          (Routing_metric.Metric.kind_name r.r_metric)
          r.r_score r.r_route_changes r.r_nh_flips r.r_link_flips)
      rankings);
  List.iter
    (fun (k : Sweep_engine.knee) ->
      Format.printf
        "critical load %s/%s: delay knee at x%g (%.1f ms rtt), throughput \
         knee at x%g (%.3g bps)@."
        k.k_scenario
        (Routing_metric.Metric.kind_name k.k_metric)
        k.k_scale_delay k.k_delay_ms k.k_scale_throughput k.k_throughput_bps)
    report.knees

let run_merge ~quiet ~out ~csv_out ~summary_out spec merge_paths =
  let prep = Sweep_engine.prepare spec in
  let rec read acc = function
    | [] -> Ok (List.rev acc)
    | path :: rest ->
      (match read_report path with
      | Ok json -> read (json :: acc) rest
      | Result.Error e -> Result.Error e)
  in
  match Result.bind (read [] merge_paths) (Sweep_engine.merge prep) with
  | Result.Error e ->
    err "arpanet_sweep: [S108] merge failed: %s" e;
    2
  | Ok report ->
    write_text out (Obs_json.to_string_pretty report.Sweep_engine.json ^ "\n");
    Option.iter (fun path -> write_text path (Sweep_engine.csv report)) csv_out;
    Option.iter
      (fun path -> write_text path (Sweep_engine.summary_csv report))
      summary_out;
    if not quiet then begin
      Format.printf "merge: %d point%s from %d shard%s -> %s@."
        (Array.length report.Sweep_engine.outcomes)
        (if Array.length report.Sweep_engine.outcomes = 1 then "" else "s")
        (List.length merge_paths)
        (if List.length merge_paths = 1 then "" else "s")
        out;
      Option.iter (Format.printf "csv: %s@.") csv_out;
      Option.iter (Format.printf "summary: %s@.") summary_out;
      print_summary report
    end;
    0

let run_sweep ~quiet ~out ~csv_out ~summary_out ~domains ~chrome_trace ~shard
    ~resume spec =
  let t0 = Unix.gettimeofday () in
  (* Untimed clock: the trace orders events by sequence number, so the
     file is deterministic and replay digests are comparable across
     machines.  The report bytes never depend on the tracer. *)
  let tracer =
    match chrome_trace with
    | None -> Tracer.null
    | Some _ -> Tracer.create ~clock:Tracer.Untimed ()
  in
  let prep = Sweep_engine.prepare spec in
  let subset =
    Option.map
      (fun (i, n) -> fun (p : Sweep_engine.point) -> p.index mod n = i)
      shard
  in
  let reuse = if resume then resume_lookup ~quiet out else None in
  let reused = ref 0 in
  let reuse =
    Option.map
      (fun lookup h ->
        let r = lookup h in
        if r <> None then incr reused;
        r)
      reuse
  in
  let report = Sweep_engine.run_prepared ~domains ~tracer ?subset ?reuse prep in
  let elapsed = Unix.gettimeofday () -. t0 in
  write_text out (Obs_json.to_string_pretty report.Sweep_engine.json ^ "\n");
  Option.iter (fun path -> write_text path (Sweep_engine.csv report)) csv_out;
  Option.iter
    (fun path -> write_text path (Sweep_engine.summary_csv report))
    summary_out;
  Option.iter
    (fun path ->
      Trace_export.write_chrome tracer path;
      if not quiet then
        Format.printf "chrome trace: %s (%d domain track(s), %d dropped)@." path
          (Tracer.slots tracer) (Tracer.dropped tracer))
    chrome_trace;
  if not quiet then begin
    let n = Array.length report.Sweep_engine.outcomes in
    let shard_note =
      match shard with
      | None -> ""
      | Some (i, k) ->
        Printf.sprintf " [shard %d/%d of %d]" i k
          (Array.length (Sweep_engine.prepared_points prep))
    in
    let resume_note =
      if !reused > 0 then Printf.sprintf " (%d reused)" !reused else ""
    in
    Format.printf
      "sweep: %d point%s%s%s in %.1f s (%.2f points/s, %d domain%s) -> %s@." n
      (if n = 1 then "" else "s")
      shard_note resume_note elapsed
      (float_of_int (n - !reused) /. Float.max elapsed 1e-9)
      domains
      (if domains = 1 then "" else "s")
      out;
    Option.iter (Format.printf "csv: %s@.") csv_out;
    Option.iter (Format.printf "summary: %s@.") summary_out;
    print_summary report
  end;
  0

let run spec_path out csv_out summary_out domains_arg chrome_trace shard_arg
    merge_paths resume no_check quiet =
  let shard =
    Option.map
      (fun s ->
        match Sweep_spec.shard_of_string s with
        | Ok shard -> Ok shard
        | Result.Error (i : Sweep_spec.issue) ->
          Result.Error (Printf.sprintf "[%s] %s" i.code i.message))
      shard_arg
  in
  match shard with
  | Some (Result.Error msg) ->
    err "arpanet_sweep: %s" msg;
    2
  | _ when merge_paths <> [] && (shard_arg <> None || resume) ->
    err "arpanet_sweep: --merge does not combine with --shard or --resume";
    2
  | _ ->
    let shard =
      match shard with Some (Ok s) -> Some s | _ -> None
    in
    let domains = Domain_pool.resolve ?requested:domains_arg () in
    let diags, spec = Sweep_check.check_file spec_path in
    let blocking =
      List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags
    in
    if diags <> [] && not quiet then
      Diagnostic.pp_report Format.err_formatter diags;
    (match (spec, blocking) with
    | None, _ -> Diagnostic.exit_code diags
    | Some _, _ :: _ when not no_check -> Diagnostic.exit_code diags
    | Some spec, _ ->
      if merge_paths <> [] then
        run_merge ~quiet ~out ~csv_out ~summary_out spec merge_paths
      else
        run_sweep ~quiet ~out ~csv_out ~summary_out ~domains ~chrome_trace
          ~shard ~resume spec)

open Cmdliner

let cmd =
  let spec =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SWEEP.json"
             ~doc:"Sweep specification: a JSON object with a \
                   $(b,scenarios) list (builtin $(b,arpanet)/$(b,milnet) \
                   or .scn paths) and optional $(b,metrics), $(b,scales), \
                   $(b,seeds) (list or {\"from\",\"count\"}), \
                   $(b,periods), $(b,warmup) fields.")
  in
  let out =
    Arg.(value & opt string "sweep_report.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the JSON report (merged telemetry plus \
                   a per-point indicator array).  Written atomically; \
                   with $(b,--resume) this is also the report read back.")
  in
  let csv_out =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Also write one CSV row of Table-1 indicators per grid \
                   point.")
  in
  let summary_out =
    Arg.(value & opt (some string) None
         & info [ "summary" ] ~docv:"FILE"
             ~doc:"Also write the summary CSV: one $(b,ranking) row per \
                   (scenario, metric) pair ordering the metrics by their \
                   route-change counters, plus one $(b,knee) row per \
                   critical-load knee when the spec declares a \
                   $(b,critical_load) ramp.")
  in
  let nonneg_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (`Msg (Printf.sprintf "expected a domain count >= 0, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let domains =
    Arg.(value & opt (some nonneg_int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Domains to distribute grid points over.  $(b,0) sizes \
                   to this machine; unset defers to $(b,ARPANET_DOMAINS) \
                   (same rules) and then 1 — one resolution path shared \
                   with $(b,arpanet_sim).  The report is byte-identical \
                   for every value.")
  in
  let chrome_trace =
    Arg.(value & opt (some string) None
         & info [ "chrome-trace" ] ~docv:"FILE.trace.json"
             ~doc:"Flight-record the sweep and write a Chrome trace-event \
                   file to $(docv): one $(b,sweep_point) span per grid \
                   point on the track of the domain that ran it, with the \
                   simulator's routing periods and SPF work nested inside. \
                   Loadable in Perfetto; $(b,replay) $(docv) prints a \
                   digest.  Deterministic (sequence-numbered timestamps).")
  in
  let shard =
    Arg.(value & opt (some string) None
         & info [ "shard" ] ~docv:"I/N"
             ~doc:"Run only grid points whose index is congruent to I \
                   modulo N — one of N processes sweeping the same spec. \
                   Each shard's report is a normal report covering its \
                   subset; stitch them with $(b,--merge).")
  in
  let merge =
    Arg.(value & opt_all file []
         & info [ "merge" ] ~docv:"SHARD.json"
             ~doc:"Do not simulate: fold the given shard reports \
                   (repeatable) into one report for the spec's full grid \
                   and write it to $(b,-o).  Points are matched by hash; \
                   missing or conflicting points are an error.  \
                   Byte-identical to a single-process run of the spec.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Read the existing $(b,-o) report (if any) first and \
                   skip every point whose hash it already answers; only \
                   the rest are simulated.  The rewritten report is \
                   byte-identical to an uninterrupted run.")
  in
  let no_check =
    Arg.(value & flag
         & info [ "no-check" ]
             ~doc:"Run even when the spec lint reports errors (S1xx \
                   diagnostics still print).")
  in
  let quiet =
    Arg.(value & flag
         & info [ "q"; "quiet" ]
             ~doc:"Suppress diagnostics and the summary line; only the \
                   report files are produced.")
  in
  Cmd.v
    (Cmd.info "arpanet_sweep"
       ~doc:"Run a scenario/metric/load/seed sweep grid in parallel"
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 when the sweep ran; 2 on bad --shard (S107) or a failed \
               --merge/--resume read (S108); otherwise the spec lint's \
               exit code (1 warnings, 2 errors)." ])
    Term.(
      const run $ spec $ out $ csv_out $ summary_out $ domains $ chrome_trace
      $ shard $ merge $ resume $ no_check $ quiet)

let () = exit (Cmd.eval' cmd)

(* arpanet_sweep — run a declared grid of simulator experiments.

     dune exec bin/arpanet_sweep.exe -- scenarios/paper_sweep.json
     dune exec bin/arpanet_sweep.exe -- sweep.json -o report.json --csv report.csv
     dune exec bin/arpanet_sweep.exe -- sweep.json --domains 4

   The spec (see Sweep_spec) declares scenario, metric, load-scale and
   seed axes; every grid point runs its own flow simulator and the
   per-point telemetry registries fold into one JSON report (plus an
   optional CSV).  Points are distributed over a domain pool, but the
   report's bytes never depend on the domain count.

   The spec is linted first (the same S1xx diagnostics as
   `arpanet_check --sweep`); errors refuse the run. *)

module Diagnostic = Routing_check.Diagnostic
module Sweep_check = Routing_check.Sweep_check
module Sweep_engine = Routing_sweep.Sweep_engine
module Domain_pool = Routing_metric.Domain_pool
module Obs_json = Routing_obs.Json
module Tracer = Routing_obs.Tracer
module Trace_export = Routing_obs.Trace_export

let write_text path text =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc text)

let run spec_path out csv_out domains chrome_trace no_check quiet =
  let diags, spec = Sweep_check.check_file spec_path in
  let blocking =
    List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) diags
  in
  if diags <> [] && not quiet then
    Diagnostic.pp_report Format.err_formatter diags;
  match (spec, blocking) with
  | None, _ -> Diagnostic.exit_code diags
  | Some _, _ :: _ when not no_check -> Diagnostic.exit_code diags
  | Some spec, _ ->
    let t0 = Unix.gettimeofday () in
    (* Untimed clock: the trace orders events by sequence number, so the
       file is deterministic and replay digests are comparable across
       machines.  The report bytes never depend on the tracer. *)
    let tracer =
      match chrome_trace with
      | None -> Tracer.null
      | Some _ -> Tracer.create ~clock:Tracer.Untimed ()
    in
    let report = Sweep_engine.run ~domains ~tracer spec in
    let elapsed = Unix.gettimeofday () -. t0 in
    write_text out (Obs_json.to_string_pretty report.Sweep_engine.json ^ "\n");
    Option.iter
      (fun path -> write_text path (Sweep_engine.csv report))
      csv_out;
    Option.iter
      (fun path ->
        Trace_export.write_chrome tracer path;
        if not quiet then
          Format.printf
            "chrome trace: %s (%d domain track(s), %d dropped)@." path
            (Tracer.slots tracer) (Tracer.dropped tracer))
      chrome_trace;
    if not quiet then begin
      let n = Array.length report.Sweep_engine.outcomes in
      Format.printf "sweep: %d point%s in %.1f s (%.2f points/s, %d domain%s) -> %s@."
        n
        (if n = 1 then "" else "s")
        elapsed
        (float_of_int n /. Float.max elapsed 1e-9)
        domains
        (if domains = 1 then "" else "s")
        out;
      Option.iter (Format.printf "csv: %s@.") csv_out
    end;
    0

open Cmdliner

let cmd =
  let spec =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SWEEP.json"
             ~doc:"Sweep specification: a JSON object with a \
                   $(b,scenarios) list (builtin $(b,arpanet)/$(b,milnet) \
                   or .scn paths) and optional $(b,metrics), $(b,scales), \
                   $(b,seeds) (list or {\"from\",\"count\"}), \
                   $(b,periods), $(b,warmup) fields.")
  in
  let out =
    Arg.(value & opt string "sweep_report.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the JSON report (merged telemetry plus \
                   a per-point indicator array).")
  in
  let csv_out =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Also write one CSV row of Table-1 indicators per grid \
                   point.")
  in
  let domains =
    Arg.(value & opt int (Domain_pool.default_size ())
         & info [ "domains" ] ~docv:"N"
             ~doc:"Domains to distribute grid points over (default \
                   $(b,ARPANET_DOMAINS) or 1).  The report is \
                   byte-identical for every value.")
  in
  let chrome_trace =
    Arg.(value & opt (some string) None
         & info [ "chrome-trace" ] ~docv:"FILE.trace.json"
             ~doc:"Flight-record the sweep and write a Chrome trace-event \
                   file to $(docv): one $(b,sweep_point) span per grid \
                   point on the track of the domain that ran it, with the \
                   simulator's routing periods and SPF work nested inside. \
                   Loadable in Perfetto; $(b,replay) $(docv) prints a \
                   digest.  Deterministic (sequence-numbered timestamps).")
  in
  let no_check =
    Arg.(value & flag
         & info [ "no-check" ]
             ~doc:"Run even when the spec lint reports errors (S1xx \
                   diagnostics still print).")
  in
  let quiet =
    Arg.(value & flag
         & info [ "q"; "quiet" ]
             ~doc:"Suppress diagnostics and the summary line; only the \
                   report files are produced.")
  in
  Cmd.v
    (Cmd.info "arpanet_sweep"
       ~doc:"Run a scenario/metric/load/seed sweep grid in parallel"
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 when the sweep ran; otherwise the spec lint's exit code \
               (1 warnings, 2 errors)." ])
    Term.(
      const run $ spec $ out $ csv_out $ domains $ chrome_trace $ no_check
      $ quiet)

let () = exit (Cmd.eval' cmd)

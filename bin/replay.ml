(* replay — run a scripted scenario file on the flow simulator, digest a
   JSONL trace captured with `arpanet_sim --trace-out`, or digest a Chrome
   trace-event file captured with `--chrome-trace`.

     dune exec bin/replay.exe -- scenarios/outage_demo.scn
     dune exec bin/replay.exe -- my.scn --periods 120 --metric dspf --csv
     dune exec bin/replay.exe -- trace.jsonl
     dune exec bin/replay.exe -- trace.jsonl --events
     dune exec bin/replay.exe -- sweep.trace.json

   The scenario format is Routing_topology.Serial plus timed `at` events; see
   lib/sim/script.mli and scenarios/outage_demo.scn.  A file ending in
   `.jsonl` is treated as a trace: one JSON object per line, field "ev"
   naming the event type (see lib/sim/trace.mli).  A file ending in
   `.trace.json` is treated as a Chrome trace-event flight recording (see
   lib/obs/trace_export.mli): the digest prints per-track event counts and
   per-span-name total durations, and a malformed or empty trace exits 1 —
   CI uses this to validate sweep flight recordings. *)

open Routing_topology
module Script = Routing_sim.Script
module Flow_sim = Routing_sim.Flow_sim
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric
module Table = Routing_stats.Table
module Trace = Routing_sim.Trace
module Obs_json = Routing_obs.Json
module Trace_export = Routing_obs.Trace_export

(* Summarize (and with [show_events], pretty-print) a JSONL trace.  Event
   types this binary predates — e.g. a later simulator adding new "ev"
   values — still count in the summary; only malformed JSON is fatal. *)
let main_jsonl path show_events =
  let counts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let drops : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let bump tbl key =
    Hashtbl.replace tbl key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let total = ref 0 in
  let t_min = ref infinity and t_max = ref neg_infinity in
  let ic = open_in path in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         match Obs_json.of_string line with
         | Error msg ->
           Format.eprintf "%s:%d: %s@." path !lineno msg;
           exit 1
         | Ok json ->
           incr total;
           let name =
             match Result.bind (Obs_json.member "ev" json) Obs_json.to_str with
             | Ok s -> s
             | Error _ -> "(no ev field)"
           in
           bump counts name;
           (match Result.bind (Obs_json.member "t" json) Obs_json.to_float with
           | Ok t ->
             if t < !t_min then t_min := t;
             if t > !t_max then t_max := t
           | Error _ -> ());
           if name = "drop" then begin
             match
               Result.bind (Obs_json.member "reason" json) Obs_json.to_str
             with
             | Ok reason -> bump drops reason
             | Error _ -> ()
           end;
           if show_events then begin
             match Trace.of_json json with
             | Ok (time, event) ->
               Format.printf "%10.3f  %a@." time Trace.pp_event_ids event
             | Error _ ->
               (* Not a Trace event (period summaries, oscillation flags,
                  future additions): show the raw line. *)
               Format.printf "%10s  %s@." "" (Obs_json.to_string json)
           end
       end
     done
   with End_of_file -> close_in ic);
  if show_events && !total > 0 then Format.printf "@.";
  Format.printf "%s: %d events" path !total;
  if !total > 0 && !t_min <= !t_max then
    Format.printf " over t = %.1f .. %.1f s" !t_min !t_max;
  Format.printf "@.";
  let sorted tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  List.iter
    (fun (name, n) -> Format.printf "  %-12s %d@." name n)
    (sorted counts);
  if Hashtbl.length drops > 0 then begin
    Format.printf "drops by reason:@.";
    List.iter
      (fun (reason, n) -> Format.printf "  %-12s %d@." reason n)
      (sorted drops)
  end

(* Digest a Chrome trace-event flight recording.  An unreadable, malformed
   or empty trace is a failure — the digest doubles as CI validation that
   --chrome-trace produced a real recording. *)
let main_chrome path =
  let text = In_channel.with_open_text path In_channel.input_all in
  match Result.bind (Obs_json.of_string text) Trace_export.digest with
  | Error msg ->
    Format.eprintf "%s: %s@." path msg;
    exit 1
  | Ok d ->
    Format.printf "%s: %a@." path Trace_export.pp_digest d;
    if d.Trace_export.total_events = 0 then begin
      Format.eprintf "%s: trace contains no events@." path;
      exit 1
    end

let main path periods metric warmup csv =
  match Script.load path with
  | Error message ->
    Format.eprintf "%s: %s@." path message;
    exit 1
  | Ok script ->
    Format.printf "scenario: %a, %a, %d events@.@." Graph.pp_summary
      script.Script.graph Traffic_matrix.pp_summary script.Script.traffic
      (List.length script.Script.events);
    if csv then
      print_endline
        "time_s,offered_bps,delivered_bps,dropped_bps,mean_delay_ms,updates,\
         max_utilization,congested_links,routes_changed";
    let sim =
      Script.run ~metric script ~periods ~on_period:(fun _ stats ->
          if csv then
            Printf.printf "%.0f,%.0f,%.0f,%.0f,%.1f,%d,%.3f,%d,%d\n"
              stats.Flow_sim.time_s stats.Flow_sim.offered_bps
              stats.Flow_sim.delivered_bps stats.Flow_sim.dropped_bps
              (1000. *. stats.Flow_sim.mean_delay_s)
              stats.Flow_sim.updates stats.Flow_sim.max_utilization
              stats.Flow_sim.congested_links stats.Flow_sim.routes_changed)
    in
    if not csv then begin
      let i = Flow_sim.indicators sim ~skip:warmup () in
      print_string
        (Table.to_string
           (Measure.comparison_table ~title:"Replay indicators"
              [ (Filename.basename path, i) ]))
    end

open Cmdliner

let metric_arg =
  let parse s =
    match Metric.kind_of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown metric %S" s))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Metric.kind_name k))

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SCENARIO" ~doc:"Scenario file with optional at-events.")
  in
  let periods =
    Arg.(value & opt int 90
         & info [ "p"; "periods" ] ~docv:"N" ~doc:"Routing periods to run (10 s each).")
  in
  let metric =
    Arg.(value & opt metric_arg Metric.Hn_spf
         & info [ "m"; "metric" ] ~docv:"METRIC" ~doc:"Initial routing metric.")
  in
  let warmup =
    Arg.(value & opt int 10
         & info [ "warmup" ] ~docv:"N" ~doc:"Periods excluded from the summary.")
  in
  let csv =
    Arg.(value & flag
         & info [ "csv" ] ~doc:"Emit one CSV row per period instead of a summary.")
  in
  let events =
    Arg.(value & flag
         & info [ "events" ]
             ~doc:"JSONL traces only: print every event, one line each, \
                   before the summary.")
  in
  let run path periods metric warmup csv events =
    if Filename.check_suffix path ".trace.json" then main_chrome path
    else if Filename.extension path = ".jsonl" then main_jsonl path events
    else main path periods metric warmup csv
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a scripted scenario on the flow simulator, or summarize \
             a JSONL trace from arpanet_sim --trace-out or a Chrome trace \
             from --chrome-trace")
    Term.(const run $ file $ periods $ metric $ warmup $ csv $ events)

let () = exit (Cmd.eval cmd)

(* arpanet_sim — command-line front end for the simulators.

     dune exec bin/arpanet_sim.exe -- --help
     dune exec bin/arpanet_sim.exe -- --metric dspf --minutes 30
     dune exec bin/arpanet_sim.exe -- --topology milnet --scale 1.5 --packet-level
     dune exec bin/arpanet_sim.exe -- --compare --scale 1.2

   Runs the chosen metric over the chosen topology and prints the Table-1
   style network indicators; [--compare] runs min-hop, D-SPF and HN-SPF on
   identical traffic side by side. *)

open Routing_topology
module Flow_sim = Routing_sim.Flow_sim
module Network = Routing_sim.Network
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric
module Units = Routing_metric.Units
module Rng = Routing_stats.Rng
module Table = Routing_stats.Table
module Spf_engine = Routing_spf.Spf_engine
module Telemetry = Routing_obs.Telemetry
module Tracer = Routing_obs.Tracer
module Trace_export = Routing_obs.Trace_export
module Obs_sink = Routing_obs.Sink
module Obs_span = Routing_obs.Span
module Obs_metrics = Routing_obs.Metrics
module Script = Routing_sim.Script
module Checker = Routing_check.Checker
module Diagnostic = Routing_check.Diagnostic

type topology = Arpanet | Milnet | Two_region

(* Lint a scenario file before simulating it: the cheap S0xx/T0xx
   passes (the R0xx stability sweep stays in arpanet_check).  Errors
   refuse the run; warnings print and continue; info stays quiet. *)
let precheck path =
  let diags =
    Checker.check_scenario_file
      ~options:{ Checker.stability = false; params = None }
      path
  in
  List.iter
    (fun d ->
      if d.Diagnostic.severity <> Diagnostic.Info then
        Format.eprintf "%a@." Diagnostic.pp d)
    diags;
  if Diagnostic.exit_code diags >= 2 then begin
    Format.eprintf
      "arpanet_sim: %s has errors, refusing to simulate (--no-check \
       overrides; arpanet_check shows the full report)@."
      path;
    exit 2
  end

let build_scenario topology file seed scale ~check =
  match file with
  | Some path -> (
    if check then precheck path;
    match Script.load path with
    | Ok s ->
      if s.Script.events <> [] then
        Format.eprintf
          "note: ignoring %d scripted at-event(s) in %s — arpanet_sim \
           runs steady state; use the replay tool to fire them@."
          (List.length s.Script.events) path;
      (s.Script.graph, Traffic_matrix.scale s.Script.traffic scale)
    | Error message ->
      Format.eprintf "cannot load %s: %s@." path message;
      exit 1)
  | None ->
  let rng = Rng.create seed in
  match topology with
  | Arpanet ->
    let g = Arpanet.topology () in
    (g, Traffic_matrix.scale (Arpanet.peak_traffic rng g) scale)
  | Milnet ->
    let g = Milnet.topology () in
    (g, Traffic_matrix.scale (Milnet.peak_traffic rng g) scale)
  | Two_region ->
    let g, _ = Generators.two_region () in
    let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
    Graph.iter_nodes g (fun src ->
        Graph.iter_nodes g (fun dst ->
            let sn = Graph.node_name g src and dn = Graph.node_name g dst in
            if sn.[0] = 'L' && dn.[0] = 'R' then
              Traffic_matrix.set tm ~src ~dst (1300. *. scale)));
    (g, tm)

type run_outcome = {
  ind : Measure.indicators;
  spf : Spf_engine.stats;  (** a copy taken at end of run *)
}

let copy_spf_stats (s : Spf_engine.stats) =
  { Spf_engine.refreshes = s.Spf_engine.refreshes;
    skipped = s.Spf_engine.skipped;
    full_sweeps = s.Spf_engine.full_sweeps;
    sources_recomputed = s.Spf_engine.sources_recomputed;
    sources_repaired = s.Spf_engine.sources_repaired;
    sources_reused = s.Spf_engine.sources_reused;
    nodes_resettled = s.Spf_engine.nodes_resettled }

let run_flow g tm kind ~domains ~minutes ~warmup_minutes ?telemetry () =
  let periods_per_minute = int_of_float (60. /. Units.routing_period_s) in
  let sim = Flow_sim.create ~domains ?telemetry g kind tm in
  ignore (Flow_sim.run sim ~periods:((minutes + warmup_minutes) * periods_per_minute));
  { ind = Flow_sim.indicators sim ~skip:(warmup_minutes * periods_per_minute) ();
    spf = copy_spf_stats (Flow_sim.spf_stats sim) }

let run_packet g tm kind ~domains ~minutes ~warmup_minutes ~seed ?telemetry () =
  let config =
    { (Network.default_config kind) with Network.seed; domains; telemetry }
  in
  let net = Network.create ~config g tm in
  Network.run net ~duration_s:(float_of_int warmup_minutes *. 60.);
  Network.reset_measurements net;
  Network.run net ~duration_s:(float_of_int minutes *. 60.);
  { ind = Network.indicators net;
    spf = copy_spf_stats (Network.spf_stats net) }

let setup_logging verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* Run briefly and write a utilization-colored Graphviz rendering. *)
let write_dot g tm metric path =
  let sim = Flow_sim.create g metric tm in
  let nl = Graph.link_count g in
  let sums = Array.make nl 0. in
  let periods = 60 and warmup = 20 in
  for p = 1 to periods do
    ignore (Flow_sim.step sim);
    if p > warmup then
      Graph.iter_links g (fun (l : Link.t) ->
          let i = Link.id_to_int l.Link.id in
          sums.(i) <- sums.(i) +. Flow_sim.link_utilization sim l.Link.id)
  done;
  let n = float_of_int (periods - warmup) in
  Dot.save path
    ~label:(Printf.sprintf "%s, mean utilization" (Metric.kind_name metric))
    ~utilization:(fun (l : Link.t) ->
      let i = Link.id_to_int l.Link.id in
      let r = Link.id_to_int l.Link.reverse in
      Some (Float.max (sums.(i) /. n) (sums.(r) /. n)))
    g;
  Format.printf "wrote %s (render with: dot -Tsvg %s -o net.svg)@." path path

(* With --compare each metric gets its own output files: insert the metric
   slug before the extension ("m.json" -> "m.hn-spf.json").  The compound
   ".trace.json" suffix stays intact ("m.trace.json" ->
   "m.hn-spf.trace.json") so replay still recognises Chrome traces. *)
let out_path base kind ~multi =
  if not multi then base
  else begin
    let slug = String.lowercase_ascii (Metric.kind_name kind) in
    if Filename.check_suffix base ".trace.json" then
      Filename.chop_suffix base ".trace.json" ^ "." ^ slug ^ ".trace.json"
    else begin
      let ext = Filename.extension base in
      if ext = "" then base ^ "." ^ slug
      else Filename.remove_extension base ^ "." ^ slug ^ ext
    end
  end

let pp_spf_stats ppf (name, (s : Spf_engine.stats)) =
  Format.fprintf ppf
    "  %-16s %d refreshes (%d skipped, %d full sweeps); sources: %d \
     recomputed, %d repaired (%d nodes re-settled), %d reused@."
    name s.Spf_engine.refreshes s.Spf_engine.skipped s.Spf_engine.full_sweeps
    s.Spf_engine.sources_recomputed s.Spf_engine.sources_repaired
    s.Spf_engine.nodes_resettled s.Spf_engine.sources_reused

let main topology file dump dot metrics scale minutes warmup packet_level seed
    domains trace_out metrics_out chrome_trace profile check =
  let g, tm = build_scenario topology file seed scale ~check in
  if dump then print_string (Serial.to_string g (Some tm))
  else match dot with
  | Some path -> write_dot g tm (List.hd metrics) path
  | None -> begin
  Format.printf "topology: %a@." Graph.pp_summary g;
  Format.printf "traffic:  %a (scale %.2fx)@." Traffic_matrix.pp_summary tm scale;
  Format.printf "engine:   %s, %d min after %d min warm-up@.@."
    (if packet_level then "packet-level DES" else "flow simulator")
    minutes warmup;
  let multi = List.length metrics > 1 in
  let topo_name =
    match file with
    | Some path -> Filename.basename path
    | None -> (
      match topology with
      | Arpanet -> "arpanet"
      | Milnet -> "milnet"
      | Two_region -> "two-region")
  in
  let telemetry_for kind =
    if trace_out = None && metrics_out = None && chrome_trace = None
       && not profile
    then None
    else begin
      let sink =
        match trace_out with
        | None -> Obs_sink.null
        | Some path -> Obs_sink.file (out_path path kind ~multi)
      in
      let clock = if profile then Obs_span.wall else Obs_span.untimed in
      (* The flight recorder shares --profile's clock choice: wall time
         for a real profile, untimed (deterministic) otherwise. *)
      let tracer =
        match chrome_trace with
        | None -> Tracer.null
        | Some _ ->
          Tracer.create
            ~clock:(if profile then Tracer.Wall else Tracer.Untimed)
            ()
      in
      let tele = Telemetry.create ~sink ~clock ~tracer ~gc:profile () in
      let m = Telemetry.metrics tele in
      Obs_metrics.set_meta m "topology" topo_name;
      Obs_metrics.set_meta m "metric" (Metric.kind_name kind);
      Obs_metrics.set_meta m "engine"
        (if packet_level then "packet" else "flow");
      Obs_metrics.set_meta m "seed" (string_of_int seed);
      Obs_metrics.set_meta m "scale" (Printf.sprintf "%.2f" scale);
      Obs_metrics.set_meta m "minutes" (string_of_int minutes);
      Obs_metrics.set_meta m "warmup_minutes" (string_of_int warmup);
      Obs_metrics.set_meta m "domains" (string_of_int domains);
      Some tele
    end
  in
  let runs =
    List.map
      (fun kind ->
        let telemetry = telemetry_for kind in
        let o =
          if packet_level then
            run_packet g tm kind ~domains ~minutes ~warmup_minutes:warmup ~seed
              ?telemetry ()
          else
            run_flow g tm kind ~domains ~minutes ~warmup_minutes:warmup
              ?telemetry ()
        in
        Option.iter
          (fun tele ->
            Measure.export (Telemetry.metrics tele) o.ind;
            (match metrics_out with
            | Some path ->
              let path = out_path path kind ~multi in
              Telemetry.write_metrics tele path;
              Format.printf "wrote metrics snapshot %s@." path
            | None -> ());
            Telemetry.close tele;
            (match trace_out with
            | Some path ->
              Format.printf "wrote %d trace events to %s@."
                (Obs_sink.emitted (Telemetry.sink tele))
                (out_path path kind ~multi)
            | None -> ());
            (match chrome_trace with
            | Some path ->
              let path = out_path path kind ~multi in
              let tr = Telemetry.tracer tele in
              Trace_export.write_chrome tr path;
              Format.printf
                "wrote Chrome trace %s (%d domain track(s), %d dropped; \
                 load in Perfetto)@."
                path (Tracer.slots tr) (Tracer.dropped tr)
            | None -> ());
            if profile then
              Format.printf "@.%s wall-time profile:@.%a@."
                (Metric.kind_name kind) Obs_span.pp (Telemetry.spans tele))
          telemetry;
        (Metric.kind_name kind, o))
      metrics
  in
  print_string
    (Table.to_string
       (Measure.comparison_table ~title:"Network indicators"
          (List.map (fun (name, o) -> (name, o.ind)) runs)));
  Format.printf "@.SPF engine (shared route engine, per run):@.";
  List.iter (fun (name, o) -> pp_spf_stats Format.std_formatter (name, o.spf))
    runs
  end

open Cmdliner

let topology_arg =
  let parse = function
    | "arpanet" -> Ok Arpanet
    | "milnet" -> Ok Milnet
    | "two-region" -> Ok Two_region
    | s -> Error (`Msg (Printf.sprintf "unknown topology %S" s))
  in
  let print ppf t =
    Format.pp_print_string ppf
      (match t with Arpanet -> "arpanet" | Milnet -> "milnet" | Two_region -> "two-region")
  in
  Arg.conv (parse, print)

let metric_arg =
  let parse s =
    match Metric.kind_of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown metric %S" s))
  in
  let print ppf k = Format.pp_print_string ppf (Metric.kind_name k) in
  Arg.conv (parse, print)

let cmd =
  let topology =
    Arg.(value & opt topology_arg Arpanet
         & info [ "t"; "topology" ] ~docv:"TOPO"
             ~doc:"Topology: arpanet, milnet or two-region.")
  in
  let metric =
    Arg.(value & opt metric_arg Metric.Hn_spf
         & info [ "m"; "metric" ] ~docv:"METRIC"
             ~doc:"Routing metric: min-hop, static-capacity, dspf or hnspf.")
  in
  let compare =
    Arg.(value & flag
         & info [ "c"; "compare" ]
             ~doc:"Run all three metrics on the same traffic side by side.")
  in
  let scale =
    Arg.(value & opt float 1.0
         & info [ "s"; "scale" ] ~docv:"X" ~doc:"Traffic matrix scale factor.")
  in
  let minutes =
    Arg.(value & opt int 20
         & info [ "minutes" ] ~docv:"MIN" ~doc:"Measured simulation minutes.")
  in
  let warmup =
    Arg.(value & opt int 5
         & info [ "warmup" ] ~docv:"MIN" ~doc:"Warm-up minutes excluded from stats.")
  in
  let packet_level =
    Arg.(value & flag
         & info [ "p"; "packet-level"; "packet" ]
             ~doc:"Use the packet-level DES instead of the flow simulator.")
  in
  let trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE.jsonl"
             ~doc:"Stream every simulator event as JSON Lines to $(docv) \
                   (replayable with $(b,replay) $(docv)).  With $(b,--compare) \
                   the metric name is inserted before the extension.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE.json"
             ~doc:"Write the end-of-run metrics snapshot (counters, gauges, \
                   per-link cost/utilization series, span timings) to $(docv).")
  in
  let chrome_trace =
    Arg.(value & opt (some string) None
         & info [ "chrome-trace" ] ~docv:"FILE.trace.json"
             ~doc:"Flight-record the run and write a Chrome trace-event \
                   file to $(docv): routing periods, SPF refreshes, flow \
                   assignment and floods as spans, one track per domain.  \
                   Loadable in Perfetto or chrome://tracing; $(b,replay) \
                   $(docv) prints a digest.  Timestamps are deterministic \
                   sequence numbers unless $(b,--profile) adds a wall \
                   clock.  With $(b,--compare) the metric name is \
                   inserted before the extension.")
  in
  let profile =
    Arg.(value & flag
         & info [ "profile" ]
             ~doc:"Time SPF refreshes, flooding rounds and routing periods \
                   with a wall clock and print the profile table.  Makes \
                   $(b,--metrics-out) output nondeterministic (real \
                   durations); without it span durations are recorded as 0.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let domains =
    let nonneg_int =
      let parse s =
        match int_of_string_opt s with
        | Some n when n >= 0 -> Ok n
        | _ ->
          Error (`Msg (Printf.sprintf "expected a domain count >= 0, got %S" s))
      in
      Arg.conv (parse, Format.pp_print_int)
    in
    let resolve n = Routing_metric.Domain_pool.resolve ?requested:n () in
    Term.(const resolve $ Arg.(value & opt (some nonneg_int) None
         & info [ "domains" ] ~docv:"N"
             ~doc:"Domains used for parallel all-pairs SPF (1 = sequential; \
                   results are identical either way).  $(b,0) sizes to \
                   this machine; unset defers to $(b,ARPANET_DOMAINS) \
                   (same rules) and then 1 — one resolution path shared \
                   with $(b,arpanet_sweep)."))
  in
  let file =
    Arg.(value & opt (some file) None
         & info [ "f"; "file" ] ~docv:"SCENARIO"
             ~doc:"Load topology and demands from a scenario file (see \
                   lib/topology/serial.mli for the format) instead of a \
                   built-in topology.")
  in
  let dump =
    Arg.(value & flag
         & info [ "dump" ]
             ~doc:"Print the selected scenario in the file format and exit \
                   (a starting point for custom scenarios).")
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE"
             ~doc:"Simulate 10 minutes under the selected metric and write a \
                   Graphviz rendering with utilization-colored trunks.")
  in
  let verbose =
    Arg.(value & flag
         & info [ "v"; "verbose" ] ~doc:"Log simulator events (link flaps, \
                                         metric switches, update bursts).")
  in
  let check =
    Arg.(value
         & vflag true
             [ (true,
                info [ "check" ]
                  ~doc:"Lint a $(b,--file) scenario before simulating \
                        (S0xx/T0xx passes; the default) and refuse to run \
                        on errors.");
               (false,
                info [ "no-check" ]
                  ~doc:"Skip the pre-run scenario lint.") ])
  in
  let run topology file dump dot metric compare scale minutes warmup
      packet_level seed domains trace_out metrics_out chrome_trace profile
      check verbose =
    setup_logging verbose;
    let metrics =
      if compare then
        [ Metric.Min_hop; Metric.Static_capacity; Metric.D_spf; Metric.Hn_spf ]
      else [ metric ]
    in
    main topology file dump dot metrics scale minutes warmup packet_level seed
      domains trace_out metrics_out chrome_trace profile check
  in
  Cmd.v
    (Cmd.info "arpanet_sim"
       ~doc:"Simulate ARPANET routing under min-hop, D-SPF or HN-SPF")
    Term.(
      const run $ topology $ file $ dump $ dot $ metric $ compare $ scale
      $ minutes $ warmup $ packet_level $ seed $ domains $ trace_out
      $ metrics_out $ chrome_trace $ profile $ check $ verbose)

let () = exit (Cmd.eval cmd)

(* arpanet_check — static analyzer for topologies, HNM parameter tables,
   scenario scripts, the SPF source path, and the build's own compiled
   artifacts.

     dune exec bin/arpanet_check.exe -- scenarios/*.scn
     dune exec bin/arpanet_check.exe -- --params my_table.json net.scn
     dune exec bin/arpanet_check.exe -- --src lib
     dune exec bin/arpanet_check.exe -- --sweep scenarios/paper_sweep.json
     dune exec bin/arpanet_check.exe -- --gen wax100k.json
     dune exec bin/arpanet_check.exe -- --json net.scn
     dune clean && DUNE_CACHE=disabled dune build --profile check \
       --sandbox none @all \
       && _build/default/bin/arpanet_check.exe --alloc
     dune exec bin/arpanet_check.exe -- --domains-lint

   Produces compiler-style diagnostics (stable codes T0xx topology and
   generator specs,
   P0xx parameter tables, S0xx scenario scripts, S1xx sweep specs,
   R0xx loop stability,
   L0xx source lint, A0xx hot-path allocation analysis, D0xx
   domain-safety lint; see DESIGN.md §8 for the catalogue) and exits
   with the maximum severity found: 0 ok/info, 1 warnings, 2 errors.
   With no arguments it lints the built-in parameter table. *)

open Routing_topology
module Diagnostic = Routing_check.Diagnostic
module Checker = Routing_check.Checker
module Params_check = Routing_check.Params_check
module Stability_check = Routing_check.Stability_check
module Src_check = Routing_check.Src_check
module Sweep_check = Routing_check.Sweep_check
module Generator_check = Routing_check.Generator_check
module Alloc_check = Routing_check.Alloc_check
module Domains_check = Routing_check.Domains_check
module Obs_json = Routing_obs.Json
module Rng = Routing_stats.Rng

(* A params-only invocation still gets a stability verdict: sweep the
   user table over the built-in ARPANET reference (fixed seed, so the
   response map is reproducible). *)
let reference_stability (params : Params_check.file) =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  Stability_check.check ~file:"<builtin arpanet>"
    ~averaging:params.Params_check.averaging
    ~movement_limits:params.Params_check.movement_limits
    ~entries:params.Params_check.entries g tm

let run scenario_files sweep_files gen_files params_file src_root alloc
    domains_lint build_dir no_stability json quiet =
  let params_diags, params =
    match params_file with
    | None -> ([], None)
    | Some path -> Checker.check_params_file path
  in
  let options =
    { Checker.stability = not no_stability; params }
  in
  let scenario_diags =
    List.concat_map (Checker.check_scenario_file ~options) scenario_files
  in
  let sweep_diags =
    List.concat_map (fun f -> fst (Sweep_check.check_file f)) sweep_files
  in
  let gen_diags =
    List.concat_map (fun f -> fst (Generator_check.check_file f)) gen_files
  in
  let reference_diags =
    (* Only when there is no scenario to sweep the table against. *)
    match params with
    | Some p when scenario_files = [] && not no_stability ->
      reference_stability p
    | _ -> []
  in
  let default_table_diags =
    if
      scenario_files = [] && sweep_files = [] && gen_files = []
      && params_file = None && src_root = None && not alloc
      && not domains_lint
    then Checker.check_default_table ()
    else []
  in
  let src_diags =
    match src_root with
    | None -> []
    | Some root -> Src_check.check_tree ~root
  in
  (* The artifact passes scan the library tree only: fixtures under
     test/ carry deliberately bad artifacts. *)
  let artifact_roots = [ Filename.concat build_dir "lib" ] in
  let alloc_diags = if alloc then Alloc_check.check ~roots:artifact_roots else [] in
  let domains_diags =
    if domains_lint then Domains_check.check ~roots:artifact_roots else []
  in
  let diags =
    Diagnostic.merge
      (params_diags @ reference_diags @ scenario_diags @ sweep_diags
     @ gen_diags @ default_table_diags @ src_diags @ alloc_diags
     @ domains_diags)
  in
  if json then
    print_endline (Obs_json.to_string_pretty (Diagnostic.report_to_json diags))
  else begin
    let shown =
      if quiet then
        List.filter
          (fun d -> d.Diagnostic.severity <> Diagnostic.Info)
          diags
      else diags
    in
    Diagnostic.pp_report Format.std_formatter shown;
    if
      scenario_files = [] && sweep_files = [] && gen_files = []
      && params_file = None && src_root = None && not alloc
      && not domains_lint
    then
      Format.printf
        "(no inputs: checked the built-in HNM parameter table; see --help)@."
  end;
  Diagnostic.exit_code diags

open Cmdliner

let cmd =
  let scenarios =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE.scn"
             ~doc:"Scenario files to check (topology audit, scenario \
                   script check, and — unless $(b,--no-stability) — the \
                   static loop-gain sweep).")
  in
  let sweep_files =
    Arg.(value & opt_all file []
         & info [ "sweep" ] ~docv:"SWEEP.json"
             ~doc:"Lint a sweep-spec grid (S1xx): unknown scenarios, \
                   empty or duplicated axes, bad seed ranges and load \
                   scales, period budgets.  Repeatable.")
  in
  let gen_files =
    Arg.(value & opt_all file []
         & info [ "gen" ] ~docv:"GEN.json"
             ~doc:"Lint a generated-topology spec (T02x): unknown \
                   families, non-positive sizes, Waxman alpha/beta \
                   outside (0, 1], implausibly sparse parameter \
                   combinations.  Repeatable.")
  in
  let params_file =
    Arg.(value & opt (some file) None
         & info [ "params" ] ~docv:"TABLE.json"
             ~doc:"Lint an HNM parameter table (JSON: a list of entries \
                   or {\"averaging\": bool, \"tables\": [...]}; entries \
                   carry line_type, base_min, max_cost, slope, offset, \
                   max_up, max_down, min_change).  The table also drives \
                   the stability sweep of any scenario given, or of the \
                   built-in ARPANET when none is.")
  in
  let src_root =
    Arg.(value & opt (some dir) None
         & info [ "src"; "check-src" ] ~docv:"DIR"
             ~doc:"Lint OCaml sources under $(docv) for constructs banned \
                   in the Domain-parallel SPF path (L0xx).")
  in
  let alloc =
    Arg.(value & flag
         & info [ "alloc" ]
             ~doc:"Run the A0xx hot-path allocation analysis: prove every \
                   [@@hot_path]-annotated function allocation-free against \
                   the compiler's Cmm dumps.  Needs a $(b,--profile check) \
                   build (see the root dune file): $(b,dune clean && \
                   DUNE_CACHE=disabled dune build --profile check \
                   --sandbox none @all), then invoke the built binary \
                   directly ($(b,_build/default/bin/arpanet_check.exe \
                   --alloc)) — running through $(b,dune exec) prunes the \
                   dumps again.")
  in
  let domains_lint =
    Arg.(value & flag
         & info [ "domains-lint" ]
             ~doc:"Run the D0xx domain-safety lint over the build's typed \
                   ASTs: flag shared mutable state captured by closures \
                   passed to Domain_pool.parallel_for without per-worker \
                   scratch or Atomic.")
  in
  let build_dir =
    Arg.(value & opt string "_build/default"
         & info [ "build-dir" ] ~docv:"DIR"
             ~doc:"Where $(b,--alloc) and $(b,--domains-lint) look for \
                   .cmt and .cmx.dump artifacts (their lib/ subtree is \
                   scanned).")
  in
  let no_stability =
    Arg.(value & flag
         & info [ "no-stability" ]
             ~doc:"Skip the R0xx loop-gain sweep (it computes the network \
                   response map, the one potentially slow pass).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the diagnostics as a routing_obs JSON report on \
                   stdout instead of text.")
  in
  let quiet =
    Arg.(value & flag
         & info [ "q"; "quiet" ]
             ~doc:"Suppress info-level diagnostics in text output (the \
                   exit code is unaffected).")
  in
  Cmd.v
    (Cmd.info "arpanet_check"
       ~doc:"Statically check topologies, parameter tables, scenarios \
             and the SPF source path"
       ~man:
         [ `S Manpage.s_exit_status;
           `P "0 on success (info diagnostics at most); 1 when the worst \
               finding is a warning; 2 on errors." ])
    Term.(
      const run $ scenarios $ sweep_files $ gen_files $ params_file
      $ src_root $ alloc $ domains_lint $ build_dir $ no_stability $ json
      $ quiet)

let () = exit (Cmd.eval' cmd)

(* Tests for the flight recorder: ring accounting under wraparound,
   well-nestedness and time-ordering of recorded streams (qcheck over
   random span programs), byte-deterministic Chrome trace-event export
   with a JSON round-trip and digest, and multi-domain recording through
   the pool probe. *)

module Json = Routing_obs.Json
module Tracer = Routing_obs.Tracer
module Trace_export = Routing_obs.Trace_export
module Sink = Routing_obs.Sink
module Metrics = Routing_obs.Metrics
module Gc_account = Routing_obs.Gc_account
module Telemetry = Routing_obs.Telemetry
module Domain_pool = Routing_metric.Domain_pool

(* --- ring accounting --- *)

let test_wraparound () =
  let t = Tracer.create ~capacity:16 () in
  let ev = Tracer.intern t "tick" in
  for i = 0 to 49 do
    Tracer.instant t ev ~arg:i
  done;
  Alcotest.(check int) "one slot" 1 (Tracer.slots t);
  Alcotest.(check int) "recorded" 50 (Tracer.slot_recorded t 0);
  Alcotest.(check int) "dropped" 34 (Tracer.slot_dropped t 0);
  Alcotest.(check int) "total dropped" 34 (Tracer.dropped t);
  (* The retained window is the newest [capacity] events, oldest first,
     with their original sequence timestamps. *)
  let args = ref [] and last_ts = ref neg_infinity in
  Tracer.iter_slot t 0 (fun ~ts ~kind ~name ~a ~b:_ ->
      Alcotest.(check bool) "instant kind" true (kind = Tracer.Instant);
      Alcotest.(check string) "name survives" "tick" (Tracer.name t name);
      Alcotest.(check bool) "ts increases" true (ts > !last_ts);
      last_ts := ts;
      args := a :: !args);
  Alcotest.(check (list int))
    "newest 16 retained, in order"
    (List.init 16 (fun i -> 34 + i))
    (List.rev !args)

let test_null_tracer () =
  Alcotest.(check bool) "disabled" false (Tracer.enabled Tracer.null);
  Alcotest.(check int) "intern is 0" 0 (Tracer.intern Tracer.null "x");
  Tracer.span_begin Tracer.null 0;
  Tracer.span_end Tracer.null 0;
  Tracer.instant Tracer.null 0 ~arg:1;
  Tracer.counter Tracer.null 0 ~value:2;
  Alcotest.(check int) "no slots" 0 (Tracer.slots Tracer.null);
  match Trace_export.digest (Trace_export.chrome_json Tracer.null) with
  | Ok d -> Alcotest.(check int) "no events" 0 d.Trace_export.total_events
  | Error e -> Alcotest.fail e

let test_telemetry_default_null () =
  let tele = Telemetry.create () in
  Alcotest.(check bool)
    "telemetry without a tracer records nothing" false
    (Tracer.enabled (Telemetry.tracer tele))

(* --- qcheck: random span programs stay well-nested and time-ordered --- *)

(* A program is a tree of named spans with instants at the leaves.  Replay
   records it; the checks below re-derive the nesting from the ring. *)
type program = Leaf of int | Node of int * program list

let program_gen =
  let open QCheck2.Gen in
  sized_size (int_range 1 5) @@ fix (fun self n ->
      if n = 0 then map (fun i -> Leaf i) (int_range 0 99)
      else
        oneof
          [ map (fun i -> Leaf i) (int_range 0 99);
            map2
              (fun name children -> Node (name, children))
              (int_range 0 7)
              (list_size (int_range 0 3) (self (n - 1))) ])

let rec replay t ids = function
  | Leaf arg -> Tracer.instant t ids.(0) ~arg
  | Node (name, children) ->
    Tracer.span_begin t ids.(1 + name);
    List.iter (replay t ids) children;
    Tracer.span_end t ids.(1 + name)

let prop_well_nested_time_ordered =
  QCheck2.Test.make ~name:"tracer stream is well-nested and time-ordered"
    ~count:200
    QCheck2.Gen.(list_size (int_range 0 8) program_gen)
    (fun programs ->
      let t = Tracer.create ~capacity:65536 () in
      let ids = Array.init 9 (fun i ->
          Tracer.intern t (if i = 0 then "leaf" else Printf.sprintf "s%d" i))
      in
      List.iter (replay t ids) programs;
      let stack = ref [] in
      let last_ts = ref neg_infinity in
      let ok = ref true in
      Tracer.iter_slot t 0 (fun ~ts ~kind ~name ~a:_ ~b:_ ->
          if ts <= !last_ts then ok := false;
          last_ts := ts;
          match kind with
          | Tracer.Begin -> stack := name :: !stack
          | Tracer.End -> (
            match !stack with
            | top :: rest when top = name -> stack := rest
            | _ -> ok := false)
          | Tracer.Instant | Tracer.Counter -> ());
      !ok && !stack = [] && Tracer.dropped t = 0)

(* --- Chrome export --- *)

(* A fixed little scenario shared by the determinism and digest tests:
   two nested spans with a counter and an instant inside. *)
let record_fixture () =
  let t = Tracer.create ~capacity:64 () in
  let period = Tracer.intern t "period" in
  let refresh = Tracer.intern t "refresh" in
  let drops = Tracer.intern t "drops" in
  for i = 0 to 2 do
    Tracer.span_begin_range t period ~lo:i ~hi:(i + 1);
    Tracer.span_begin t refresh;
    Tracer.instant t refresh ~arg:i;
    Tracer.span_end t refresh;
    Tracer.counter t drops ~value:(10 * i);
    Tracer.span_end t period
  done;
  t

let test_chrome_byte_deterministic () =
  let render () = Json.to_string (Trace_export.chrome_json (record_fixture ())) in
  let a = render () and b = render () in
  Alcotest.(check string) "identical bytes across runs" a b

let test_chrome_roundtrip_and_digest () =
  let t = record_fixture () in
  let json = Trace_export.chrome_json t in
  (* The export survives the repo's own JSON codec. *)
  let reparsed =
    match Json.of_string (Json.to_string json) with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "round-trips" true (Json.equal reparsed json);
  match Trace_export.digest reparsed with
  | Error e -> Alcotest.fail e
  | Ok d ->
    (* 3 iterations x (2 B + 2 E + 1 instant + 1 counter) = 18 events. *)
    Alcotest.(check int) "events" 18 d.Trace_export.total_events;
    Alcotest.(check int) "dropped" 0 d.Trace_export.dropped;
    Alcotest.(check (list (pair int int)))
      "one track, all events" [ (0, 18) ] d.Trace_export.tracks;
    (* Untimed clock: durations are sequence-number differences.  Each
       period span opens at s and closes at s+5; each refresh at s+1 and
       s+3. *)
    Alcotest.(check bool)
      "span totals" true
      (List.assoc "period" d.Trace_export.span_totals = 15.
      && List.assoc "refresh" d.Trace_export.span_totals = 6.)

let test_to_sink_counts () =
  let t = record_fixture () in
  let sink = Sink.buffer () in
  Trace_export.to_sink t sink;
  Alcotest.(check int) "one JSONL line per event" 18 (Sink.emitted sink)

(* --- multi-domain recording through the pool probe --- *)

let test_pool_probe_multi_domain () =
  let t = Tracer.create () in
  let pool = Domain_pool.create 3 in
  Domain_pool.set_probe pool (Some (Tracer.pool_probe t));
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () -> Domain_pool.parallel_for pool 64 (fun _ -> ()));
  Alcotest.(check bool) "some domain recorded" true (Tracer.slots t >= 1);
  (* Every track is independently well-nested (chunk spans never
     interleave within a domain). *)
  for slot = 0 to Tracer.slots t - 1 do
    let depth = ref 0 in
    Tracer.iter_slot t slot (fun ~ts:_ ~kind ~name:_ ~a:_ ~b:_ ->
        match kind with
        | Tracer.Begin -> incr depth
        | Tracer.End ->
          decr depth;
          if !depth < 0 then Alcotest.fail "unbalanced track"
        | Tracer.Instant | Tracer.Counter -> ());
    Alcotest.(check int)
      (Printf.sprintf "slot %d balanced" slot)
      0 !depth
  done;
  match Trace_export.digest (Trace_export.chrome_json t) with
  | Error e -> Alcotest.fail e
  | Ok d ->
    Alcotest.(check int)
      "digest covers every track"
      (List.fold_left (fun acc (_, n) -> acc + n) 0 d.Trace_export.tracks)
      d.Trace_export.total_events

(* --- GC accounting --- *)

let test_gc_account_deltas () =
  let reg = Metrics.create () in
  let acc = Gc_account.create reg ~scope:"test" in
  let sink = ref [] in
  Gc_account.with_ acc (fun () ->
      for i = 0 to 999 do
        sink := (i, float_of_int i) :: !sink
      done);
  Alcotest.(check int) "one section" 1 (Gc_account.sections acc);
  Alcotest.(check bool)
    "boxed conses show up as minor words" true
    (Gc_account.minor_words acc > 0)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_tracer"
    [ ( "ring",
        [ Alcotest.test_case "wraparound accounting" `Quick test_wraparound;
          Alcotest.test_case "null tracer" `Quick test_null_tracer;
          Alcotest.test_case "telemetry default" `Quick
            test_telemetry_default_null ]
        @ qsuite [ prop_well_nested_time_ordered ] );
      ( "chrome",
        [ Alcotest.test_case "byte-deterministic" `Quick
            test_chrome_byte_deterministic;
          Alcotest.test_case "round-trip and digest" `Quick
            test_chrome_roundtrip_and_digest;
          Alcotest.test_case "to_sink counts" `Quick test_to_sink_counts ] );
      ( "domains",
        [ Alcotest.test_case "pool probe" `Quick test_pool_probe_multi_domain ]
      );
      ( "gc",
        [ Alcotest.test_case "account deltas" `Quick test_gc_account_deltas ]
      ) ]

(* The clean twin of domains_bad.ml: per-worker scratch arrives as a
   body parameter and the only captured array is written at the
   body-local index, the partitioned-output pattern the lint exempts. *)
module Domain_pool = struct
  let parallel_for_with _pool ~scratch n f =
    for i = 0 to n - 1 do
      f scratch i
    done
end

let fill pool out xs =
  Domain_pool.parallel_for_with pool ~scratch:0 (Array.length xs)
    (fun _scratch i -> out.(i) <- xs.(i) * 2)

(* D0xx fixture: shared mutable state captured by a parallel body.  The
   local Domain_pool stub keeps the fixture dependency-free — the lint
   matches call targets by path suffix, so this module's
   Domain_pool.parallel_for counts. *)
module Domain_pool = struct
  let parallel_for _pool n f =
    for i = 0 to n - 1 do
      f i
    done
end

(* D001: every worker races on [total]. *)
let sum pool xs =
  let total = ref 0 in
  Domain_pool.parallel_for pool (Array.length xs) (fun i ->
      total := !total + xs.(i));
  !total

(* L002 fixture: wall-clock reads outside the span clock *)
let now () = Unix.gettimeofday ()

let cpu () = Sys.time ()

(* Regression cases for Src_check's comment/string blanking.

   A nested (* comment mentioning Random.self_init *) is still one
   comment, a string "with an unmatched *) inside" must not close the
   enclosing comment early, and Unix.gettimeofday here is only text. *)

let quote = '"'

let delim = {ext|Sys.time "*)" inside a quoted string is only text|ext}

(* A '"' char literal inside a comment must not open a string and
   swallow the terminator below. *)

let self_seed () = Random.self_init ()

(* L001 fixture: implicit seeding breaks reproducibility *)
let init () = Random.self_init ()

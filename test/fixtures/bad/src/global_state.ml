(* L003 fixture: module-level mutable state domains could race on *)
let cache = Hashtbl.create 16

let hits = ref 0

let lookup key =
  incr hits;
  Hashtbl.find_opt cache key

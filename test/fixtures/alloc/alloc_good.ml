(* The allocation-free twin of alloc_bad.ml: same shape of API, all
   writes into caller-owned cells, so the A0xx pass must stay silent. *)
let sum_into (xs : int array) acc =
  acc := 0;
  for i = 0 to Array.length xs - 1 do
    acc := !acc + xs.(i)
  done
[@@hot_path]

(* A001 fixture: a [@@hot_path] function that allocates — the tuple it
   stores is a fresh two-word block every call. *)
let pair_into a b out = out := (a, b) [@@hot_path]

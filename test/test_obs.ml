(* Tests for the routing_obs telemetry library and its simulator wiring:
   JSON/JSONL round-trips, histogram merge laws, trace ring accounting,
   and the oscillation detector separating D-SPF from HN-SPF on a fixed
   scenario. *)

module Json = Routing_obs.Json
module Sink = Routing_obs.Sink
module Metrics = Routing_obs.Metrics
module Span = Routing_obs.Span
module Oscillation = Routing_obs.Oscillation
module Telemetry = Routing_obs.Telemetry
module Histogram = Routing_stats.Histogram
module Trace = Routing_sim.Trace
module Flow_sim = Routing_sim.Flow_sim
module Serial = Routing_topology.Serial
module Node = Routing_topology.Node
module Link = Routing_topology.Link
module Metric = Routing_metric.Metric

(* --- Json --- *)

let test_json_parse_basics () =
  let ok s = Result.get_ok (Json.of_string s) in
  Alcotest.(check bool) "null" true (ok "null" = Json.Null);
  Alcotest.(check bool) "int" true (ok "-42" = Json.Int (-42));
  Alcotest.(check bool) "float" true (ok "2.5" = Json.Float 2.5);
  Alcotest.(check bool) "escape" true (ok {|"a\n\"b\""|} = Json.String "a\n\"b\"");
  Alcotest.(check bool)
    "nested" true
    (Json.equal
       (ok {|{"a": [1, true, null], "b": {"c": "d"}}|})
       (Json.Obj
          [ ("a", Json.List [ Json.Int 1; Json.Bool true; Json.Null ]);
            ("b", Json.Obj [ ("c", Json.String "d") ]) ]));
  Alcotest.(check bool)
    "trailing garbage rejected" true
    (Result.is_error (Json.of_string "1 2"));
  Alcotest.(check bool)
    "unterminated rejected" true
    (Result.is_error (Json.of_string "[1, 2"))

let json_gen =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [ return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map (fun f -> Json.Float f) (float_bound_exclusive 1e9);
        map
          (fun s -> Json.String s)
          (string_size ~gen:(char_range '\000' '\126') (int_range 0 12)) ]
  in
  sized_size (int_range 0 3) @@ fix (fun self n ->
      if n = 0 then scalar
      else
        oneof
          [ scalar;
            map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n - 1)));
            map
              (fun kvs -> Json.Obj kvs)
              (list_size (int_range 0 4)
                 (pair (string_size ~gen:(char_range 'a' 'z') (int_range 1 6))
                    (self (n - 1)))) ])

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"json to_string/of_string round-trip" ~count:500
    json_gen (fun j ->
      match Json.of_string (Json.to_string j) with
      | Ok j' -> Json.equal j j'
      | Error _ -> false)

let prop_json_pretty_roundtrip =
  QCheck2.Test.make ~name:"json pretty printer round-trips too" ~count:200
    json_gen (fun j ->
      match Json.of_string (Json.to_string_pretty j) with
      | Ok j' -> Json.equal j j'
      | Error _ -> false)

(* --- Trace events over JSONL --- *)

let event_gen =
  let open QCheck2.Gen in
  let node = map Node.of_int (int_range 0 99) in
  let reason = oneofl Trace.all_reasons in
  oneof
    [ map3
        (fun src dst (delay_s, hops) ->
          Trace.Packet_delivered { src; dst; delay_s; hops })
        node node
        (pair (float_bound_exclusive 10.) (int_range 1 20));
      map3
        (fun at src (dst, reason) -> Trace.Packet_dropped { at; src; dst; reason })
        node node (pair node reason);
      map2 (fun origin links -> Trace.Update_flooded { origin; links })
        node (int_range 1 8);
      map3
        (fun at origin latency_s -> Trace.Update_accepted { at; origin; latency_s })
        node node (float_bound_exclusive 2.);
      map (fun at -> Trace.Tables_recomputed { at }) node;
      map2
        (fun l up -> Trace.Link_state { link = Link.id_of_int l; up })
        (int_range 0 50) bool ]

let prop_trace_jsonl_roundtrip =
  QCheck2.Test.make ~name:"trace event JSONL round-trip" ~count:500
    QCheck2.Gen.(pair (float_bound_exclusive 1e6) event_gen)
    (fun (time, event) ->
      let line = Json.to_string (Trace.to_json ~time event) in
      match Result.bind (Json.of_string line) Trace.of_json with
      | Ok (time', event') -> time' = time && event' = event
      | Error _ -> false)

let test_trace_of_json_rejects () =
  let bad s =
    Result.is_error (Result.bind (Json.of_string s) Trace.of_json)
  in
  Alcotest.(check bool) "unknown ev" true (bad {|{"t":1.0,"ev":"nope"}|});
  Alcotest.(check bool) "missing field" true
    (bad {|{"t":1.0,"ev":"deliver","src":1,"dst":2,"hops":3}|});
  Alcotest.(check bool) "unknown reason" true
    (bad {|{"t":1.0,"ev":"drop","at":0,"src":1,"dst":2,"reason":"gremlins"}|});
  Alcotest.(check bool) "not an object" true (bad "[1,2]")

(* --- Trace ring accounting --- *)

let test_trace_wraparound () =
  let t = Trace.create ~capacity:4 in
  for i = 1 to 10 do
    Trace.record t ~time:(float_of_int i)
      (Trace.Tables_recomputed { at = Node.of_int i })
  done;
  Alcotest.(check int) "length" 4 (Trace.length t);
  Alcotest.(check int) "total_recorded" 10 (Trace.total_recorded t);
  let times = List.map fst (Trace.events t) in
  Alcotest.(check (list (float 0.))) "retains newest, oldest first"
    [ 7.; 8.; 9.; 10. ] times;
  let seen = ref [] in
  Trace.iter t ~f:(fun ~time _ -> seen := time :: !seen);
  Alcotest.(check (list (float 0.))) "iter matches events"
    times (List.rev !seen);
  let g, _ = Routing_topology.Generators.two_region () in
  let dump = Trace.dump g t in
  Alcotest.(check bool) "dump announces drops" true
    (Astring.String.is_prefix ~affix:"(6 earlier events dropped)" dump)

let test_trace_no_drop_no_header () =
  let t = Trace.create ~capacity:4 in
  Trace.record t ~time:1. (Trace.Tables_recomputed { at = Node.of_int 0 });
  let g, _ = Routing_topology.Generators.two_region () in
  Alcotest.(check bool) "no spurious header" false
    (Astring.String.is_infix ~affix:"dropped" (Trace.dump g t))

(* --- Histogram merge --- *)

let histogram_gen =
  let open QCheck2.Gen in
  map
    (fun xs ->
      let h = Histogram.create ~lo:0. ~hi:100. ~bins:10 in
      List.iter (Histogram.add h) xs;
      h)
    (list_size (int_range 0 50) (float_bound_exclusive 120.))

let prop_histogram_merge_associative =
  QCheck2.Test.make ~name:"histogram merge is associative" ~count:200
    QCheck2.Gen.(triple histogram_gen histogram_gen histogram_gen)
    (fun (a, b, c) ->
      Histogram.equal
        (Histogram.merge (Histogram.merge a b) c)
        (Histogram.merge a (Histogram.merge b c)))

let prop_histogram_merge_commutative =
  QCheck2.Test.make ~name:"histogram merge is commutative" ~count:200
    QCheck2.Gen.(pair histogram_gen histogram_gen)
    (fun (a, b) ->
      Histogram.equal (Histogram.merge a b) (Histogram.merge b a))

let test_histogram_merge_layout_mismatch () =
  let a = Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  let b = Histogram.create ~lo:0. ~hi:2. ~bins:4 in
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Histogram.merge: incompatible bin layouts") (fun () ->
      ignore (Histogram.merge a b))

(* --- Sink --- *)

let test_sink_buffer_jsonl () =
  let s = Sink.buffer () in
  Sink.emit s (fun () -> Json.Obj [ ("a", Json.Int 1) ]);
  Sink.emit s (fun () -> Json.Obj [ ("b", Json.Bool false) ]);
  Alcotest.(check int) "emitted" 2 (Sink.emitted s);
  let lines =
    String.split_on_char '\n' (String.trim (Sink.contents s))
  in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line parses" true
        (Result.is_ok (Json.of_string l)))
    lines

let test_sink_null_is_lazy () =
  let s = Sink.null in
  let forced = ref false in
  Sink.emit s (fun () -> forced := true; Json.Null);
  Alcotest.(check bool) "thunk not forced" false !forced;
  Alcotest.(check int) "nothing emitted" 0 (Sink.emitted s)

(* --- Metrics registry --- *)

let test_metrics_snapshot_sorted_and_typed () =
  let m = Metrics.create () in
  Metrics.set_meta m "seed" "7";
  let c = Metrics.counter m ~labels:[ ("reason", "ttl") ] "drops" in
  Metrics.inc c;
  Metrics.inc ~by:2 c;
  Metrics.set (Metrics.gauge m "depth") 3.5;
  Metrics.sample (Metrics.series m "util") ~time:10. 0.25;
  let j = Metrics.to_json m in
  let names =
    match Json.member "metrics" j with
    | Ok (Json.List l) ->
      List.map
        (fun e -> Result.get_ok Json.(Result.bind (member "name" e) to_str))
        l
    | _ -> []
  in
  Alcotest.(check (list string)) "sorted by name"
    [ "depth"; "drops"; "util" ] names;
  Alcotest.(check int) "counter value" 3 (Metrics.counter_value c);
  (* registration is idempotent: same handle state *)
  let c' = Metrics.counter m ~labels:[ ("reason", "ttl") ] "drops" in
  Metrics.inc c';
  Alcotest.(check int) "idempotent registration" 4 (Metrics.counter_value c)

let test_metrics_kind_collision () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  Alcotest.(check bool) "kind collision raises" true
    (try ignore (Metrics.gauge m "x"); false
     with Invalid_argument _ -> true)

(* --- Span --- *)

let test_span_untimed_deterministic () =
  let s = Span.create ~clock:Span.untimed () in
  for _ = 1 to 3 do Span.with_ s ~name:"work" (fun () -> ()) done;
  Span.with_ s ~name:"alpha" (fun () -> ());
  match Span.report s with
  | [ a; w ] ->
    Alcotest.(check string) "sorted" "alpha" a.Span.name;
    Alcotest.(check int) "count" 3 w.Span.count;
    Alcotest.(check (float 0.)) "untimed total" 0. w.Span.total_s
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_span_protects_on_raise () =
  let s = Span.create ~clock:Span.untimed () in
  (try Span.with_ s ~name:"boom" (fun () -> failwith "x") with Failure _ -> ());
  match Span.report s with
  | [ r ] -> Alcotest.(check int) "recorded despite raise" 1 r.Span.count
  | _ -> Alcotest.fail "missing row"

(* --- Oscillation detector --- *)

let test_oscillation_flags_square_wave () =
  let o = Oscillation.create ~window_s:120. ~max_flips:4 ~links:2 () in
  let fired = ref [] in
  for p = 0 to 19 do
    let time = 10. *. float_of_int p in
    (* link 0 swings every period; link 1 climbs monotonically *)
    Oscillation.observe o ~link:0 ~time
      ~cost:(if p land 1 = 0 then 10 else 100)
      ~on_flag:(fun ~link ~time:_ ~flips:_ -> fired := link :: !fired);
    Oscillation.observe o ~link:1 ~time ~cost:(10 + p)
  done;
  Alcotest.(check (list int)) "only the square wave" [ 0 ]
    (Oscillation.ever_flagged o);
  Alcotest.(check (list int)) "on_flag fired once" [ 0 ] !fired;
  Alcotest.(check int) "monotone link has no flips" 0
    (Oscillation.flips_in_window o ~link:1)

let test_oscillation_window_drains () =
  let o = Oscillation.create ~window_s:50. ~max_flips:2 ~links:1 () in
  List.iteri
    (fun i cost ->
      Oscillation.observe o ~link:0 ~time:(10. *. float_of_int i) ~cost)
    [ 10; 90; 10; 90; 10 ];
  Alcotest.(check (list int)) "flagged while swinging" [ 0 ]
    (Oscillation.flagged o);
  (* far in the future the window is empty again *)
  Oscillation.observe o ~link:0 ~time:10000. ~cost:10;
  Alcotest.(check (list int)) "calm after drain" [] (Oscillation.flagged o);
  Alcotest.(check (list int)) "history remembers" [ 0 ]
    (Oscillation.ever_flagged o)

(* --- Fixed-seed scenario: the detector separates the metrics --- *)

(* dune runtest runs in _build/default/test (the scenario ships as a test
   dep one directory up); `dune exec test/test_obs.exe` runs from the
   project root. *)
let scenario_path =
  let relative = Filename.concat ".." "scenarios/arpanet_peak.scn" in
  if Sys.file_exists relative then relative else "scenarios/arpanet_peak.scn"

let run_scenario kind =
  let g, tm =
    match Serial.load scenario_path with
    | Ok gt -> gt
    | Error m -> Alcotest.failf "cannot load %s: %s" scenario_path m
  in
  (* max_flips 9: D-SPF's per-period full-range swings exceed it (§3.3,
     Fig 1); HN-SPF's bounded movement stays well under (probed: 13 vs 7
     worst-case flips per 120 s window on this workload). *)
  let tele = Telemetry.create ~osc_max_flips:9 () in
  let sim = Flow_sim.create ~telemetry:tele g kind tm in
  for _ = 1 to 30 do ignore (Flow_sim.step sim) done;
  Option.get (Telemetry.oscillation tele)

let test_oscillation_dspf_vs_hnspf () =
  let dspf = run_scenario Metric.D_spf in
  Alcotest.(check bool) "D-SPF oscillates" true
    (Oscillation.ever_flagged dspf <> []);
  let hnspf = run_scenario Metric.Hn_spf in
  Alcotest.(check (list int)) "HN-SPF stays calm" []
    (Oscillation.ever_flagged hnspf)

(* --- Telemetry end-to-end determinism --- *)

let test_flow_telemetry_deterministic () =
  let g, tm =
    match Serial.load scenario_path with
    | Ok gt -> gt
    | Error m -> Alcotest.failf "cannot load %s: %s" scenario_path m
  in
  let run () =
    let tele = Telemetry.create ~sink:(Sink.buffer ()) () in
    let sim = Flow_sim.create ~telemetry:tele g Metric.Hn_spf tm in
    for _ = 1 to 12 do ignore (Flow_sim.step sim) done;
    ( Json.to_string (Telemetry.snapshot_json tele),
      Sink.contents (Telemetry.sink tele) )
  in
  let snap1, trace1 = run () in
  let snap2, trace2 = run () in
  Alcotest.(check string) "snapshots byte-identical" snap1 snap2;
  Alcotest.(check string) "traces byte-identical" trace1 trace2;
  List.iter
    (fun line ->
      if String.trim line <> "" then
        Alcotest.(check bool) "trace line parses" true
          (Result.is_ok (Json.of_string line)))
    (String.split_on_char '\n' trace1)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_obs"
    [ ( "json",
        [ Alcotest.test_case "parse basics" `Quick test_json_parse_basics ]
        @ qsuite [ prop_json_roundtrip; prop_json_pretty_roundtrip ] );
      ( "trace",
        [ Alcotest.test_case "of_json rejects" `Quick test_trace_of_json_rejects;
          Alcotest.test_case "wraparound accounting" `Quick test_trace_wraparound;
          Alcotest.test_case "no drop header" `Quick test_trace_no_drop_no_header ]
        @ qsuite [ prop_trace_jsonl_roundtrip ] );
      ( "histogram",
        [ Alcotest.test_case "layout mismatch" `Quick
            test_histogram_merge_layout_mismatch ]
        @ qsuite
            [ prop_histogram_merge_associative;
              prop_histogram_merge_commutative ] );
      ( "sink",
        [ Alcotest.test_case "buffer emits JSONL" `Quick test_sink_buffer_jsonl;
          Alcotest.test_case "null is lazy" `Quick test_sink_null_is_lazy ] );
      ( "metrics",
        [ Alcotest.test_case "snapshot sorted" `Quick
            test_metrics_snapshot_sorted_and_typed;
          Alcotest.test_case "kind collision" `Quick test_metrics_kind_collision ] );
      ( "span",
        [ Alcotest.test_case "untimed deterministic" `Quick
            test_span_untimed_deterministic;
          Alcotest.test_case "protects on raise" `Quick
            test_span_protects_on_raise ] );
      ( "oscillation",
        [ Alcotest.test_case "square wave" `Quick
            test_oscillation_flags_square_wave;
          Alcotest.test_case "window drains" `Quick
            test_oscillation_window_drains;
          Alcotest.test_case "D-SPF vs HN-SPF" `Slow
            test_oscillation_dspf_vs_hnspf ] );
      ( "telemetry",
        [ Alcotest.test_case "deterministic end-to-end" `Slow
            test_flow_telemetry_deterministic ] ) ]

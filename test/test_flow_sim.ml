(* Behavioural tests for the period-driven flow simulator — the paper's
   control loop at 10-second resolution. *)

open Routing_topology
module Flow_sim = Routing_sim.Flow_sim
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng
module Tracer = Routing_obs.Tracer

(* The Fig 1 scenario: two regions, two equal bridges, heavy inter-region
   load (~74% of combined bridge capacity). *)
let two_region_setup () =
  let g, (a, b) = Generators.two_region () in
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  Graph.iter_nodes g (fun src ->
      Graph.iter_nodes g (fun dst ->
          let sn = Graph.node_name g src and dn = Graph.node_name g dst in
          if sn.[0] = 'L' && dn.[0] = 'R' then
            Traffic_matrix.set tm ~src ~dst 1300.));
  (g, tm, a, b)

let bridge_utils sim a b periods =
  List.init periods (fun _ ->
      ignore (Flow_sim.step sim);
      (Flow_sim.link_utilization sim a, Flow_sim.link_utilization sim b))

let test_dspf_oscillates () =
  let g, tm, a, b = two_region_setup () in
  let sim = Flow_sim.create g Metric.D_spf tm in
  let utils = bridge_utils sim a b 20 in
  let tail = List.filteri (fun i _ -> i >= 10) utils in
  (* §3.3: links A and B alternate instead of cooperating — each period one
     bridge carries (essentially) everything and the other nothing. *)
  let full_swings =
    List.length
      (List.filter (fun (ua, ub) -> Float.min ua ub < 0.05 && Float.max ua ub > 1.2)
         tail)
  in
  Alcotest.(check bool)
    (Printf.sprintf "most periods fully one-sided (%d/10)" full_swings)
    true (full_swings >= 8);
  (* And the sides alternate. *)
  let sides = List.map (fun (ua, ub) -> ua > ub) tail in
  let alternations =
    let rec count = function
      | x :: (y :: _ as rest) -> (if x <> y then 1 else 0) + count rest
      | _ -> 0
    in
    count sides
  in
  Alcotest.(check bool)
    (Printf.sprintf "sides alternate (%d/9)" alternations)
    true (alternations >= 8)

let test_hnspf_shares_load () =
  let g, tm, a, b = two_region_setup () in
  let sim = Flow_sim.create g Metric.Hn_spf tm in
  let utils = bridge_utils sim a b 20 in
  let tail = List.filteri (fun i _ -> i >= 10) utils in
  List.iter
    (fun (ua, ub) ->
      Alcotest.(check bool)
        (Printf.sprintf "both bridges carry traffic (%.2f/%.2f)" ua ub)
        true
        (ua > 0.2 && ub > 0.2 && ua < 1.0 && ub < 1.0))
    tail

let test_hnspf_carries_more_than_dspf () =
  let g, tm, a, b = two_region_setup () in
  let carried kind =
    let sim = Flow_sim.create g kind tm in
    ignore (bridge_utils sim a b 20);
    (Flow_sim.indicators sim ~skip:5 ()).Measure.internode_traffic_bps
  in
  let d = carried Metric.D_spf and h = carried Metric.Hn_spf in
  Alcotest.(check bool)
    (Printf.sprintf "HN-SPF delivers more (%.0f vs %.0f bps)" h d)
    true
    (h > 1.2 *. d)

let test_deterministic () =
  let g, tm, a, b = two_region_setup () in
  let run () =
    let sim = Flow_sim.create g Metric.D_spf tm in
    bridge_utils sim a b 12
  in
  Alcotest.(check bool) "bitwise repeatable" true (run () = run ())

let test_light_load_all_equal () =
  (* Under light loading "routing tends to be fairly independent of
     traffic conditions" (§3.1): all three metrics deliver everything with
     no drops. *)
  let g, (_, _) = Generators.two_region () in
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  Graph.iter_nodes g (fun src ->
      Graph.iter_nodes g (fun dst ->
          if not (Node.equal src dst) then Traffic_matrix.set tm ~src ~dst 100.));
  List.iter
    (fun kind ->
      let sim = Flow_sim.create g kind tm in
      ignore (Flow_sim.run sim ~periods:12);
      let i = Flow_sim.indicators sim ~skip:2 () in
      Alcotest.(check bool)
        (Printf.sprintf "%s no drops at light load" (Metric.kind_name kind))
        true
        (i.Measure.dropped_per_s < 0.001);
      Alcotest.(check bool) "everything delivered" true
        (i.Measure.internode_traffic_bps > 0.999 *. Traffic_matrix.total_bps tm))
    [ Metric.Min_hop; Metric.D_spf; Metric.Hn_spf ]

let test_switch_metric_mid_run () =
  let g, tm, a, b = two_region_setup () in
  let sim = Flow_sim.create g Metric.D_spf tm in
  ignore (bridge_utils sim a b 15);
  let before = Flow_sim.indicators sim ~skip:5 () in
  Flow_sim.switch_metric sim Metric.Hn_spf;
  ignore (bridge_utils sim a b 15);
  let after = Flow_sim.indicators sim ~skip:20 () in
  Alcotest.(check bool)
    (Printf.sprintf "installing the HNM cuts drops (%.1f -> %.1f)"
       before.Measure.dropped_per_s after.Measure.dropped_per_s)
    true
    (after.Measure.dropped_per_s < 0.5 *. before.Measure.dropped_per_s)

let test_link_failure_and_revival () =
  let g, tm, a, b = two_region_setup () in
  let sim = Flow_sim.create g Metric.Hn_spf tm in
  ignore (Flow_sim.run sim ~periods:10);
  (* Kill bridge A both ways: everything must pile onto B. *)
  let la = Graph.link g a in
  Flow_sim.set_link_up sim a false;
  Flow_sim.set_link_up sim (Graph.reverse g la).Link.id false;
  ignore (Flow_sim.run sim ~periods:5);
  Alcotest.(check (float 0.)) "A carries nothing" 0. (Flow_sim.link_utilization sim a);
  Alcotest.(check bool) "B oversubscribed" true
    (Flow_sim.link_utilization sim b > 1.2);
  (* Revive A: HN-SPF eases it in from its maximum cost, so traffic
     returns gradually rather than all at once (§5.4). *)
  Flow_sim.set_link_up sim a true;
  Flow_sim.set_link_up sim (Graph.reverse g la).Link.id true;
  Alcotest.(check int) "revived at ceiling" 90 (Flow_sim.link_cost sim a);
  (* Even at its ceiling the revived bridge keeps the routes whose only
     alternate is 2+ hops longer — HN-SPF never repels traffic further
     than two extra hops (§4.2) — and as the cost walks down, balanced
     sharing is restored. *)
  let utils = bridge_utils sim a b 10 in
  let ua9, ub9 = List.nth utils 9 in
  Alcotest.(check bool)
    (Printf.sprintf "sharing restored (%.2f/%.2f)" ua9 ub9)
    true
    (ua9 > 0.3 && ub9 > 0.3 && ua9 < 1.0 && ub9 < 1.0)

let test_adaptive_sources_relieve_overload () =
  let g, tm, a, b = two_region_setup () in
  (* 1.38x: ~103% of combined bridge capacity. *)
  let tm = Traffic_matrix.scale tm 1.38 in
  let sim = Flow_sim.create g Metric.D_spf tm in
  Flow_sim.set_adaptive_sources sim true;
  ignore (bridge_utils sim a b 40);
  let i = Flow_sim.indicators sim ~skip:25 () in
  (* Sources settle near what the bridges can carry, with small residual
     loss - instead of the 40%+ loss of open-loop D-SPF overload. *)
  Alcotest.(check bool)
    (Printf.sprintf "losses small once throttled (%.1f pkt/s)"
       i.Measure.dropped_per_s)
    true
    (i.Measure.dropped_per_s < 30.);
  Alcotest.(check bool)
    (Printf.sprintf "still using most of the capacity (%.0f bps)"
       i.Measure.internode_traffic_bps)
    true
    (i.Measure.internode_traffic_bps > 55_000.);
  (* Turning adaptation off restores the full offered load. *)
  Flow_sim.set_adaptive_sources sim false;
  let s = Flow_sim.step sim in
  Alcotest.(check bool) "throttles cleared" true
    (s.Flow_sim.offered_bps > 0.99 *. Traffic_matrix.total_bps tm)

(* Conservation: every period, offered = delivered + dropped exactly
   (the flow model has no in-flight storage between periods). *)
let prop_flow_conservation =
  QCheck2.Test.make ~name:"offered = delivered + dropped every period" ~count:25
    QCheck2.Gen.(pair (int_range 0 5_000) (float_range 0.2 2.5))
    (fun (seed, scale) ->
      let g = Generators.ring_chord (Rng.create seed) ~nodes:12 ~chords:6 in
      let tm =
        Traffic_matrix.scale
          (Traffic_matrix.gravity (Rng.create (seed + 9)) ~nodes:12
             ~total_bps:200_000.)
          scale
      in
      let sim = Flow_sim.create g Metric.Hn_spf tm in
      List.for_all
        (fun s ->
          Float.abs
            (s.Flow_sim.offered_bps -. s.Flow_sim.delivered_bps
           -. s.Flow_sim.dropped_bps)
          < 1e-6 *. Float.max 1. s.Flow_sim.offered_bps)
        (Flow_sim.run sim ~periods:15))

(* Chaos: random link flaps must never wedge the control loop.  Whatever
   the failure sequence, costs stay within the metric's bounds, nothing
   raises, and traffic flows whenever the graph is connected. *)
let prop_survives_random_link_flaps =
  QCheck2.Test.make ~name:"survives arbitrary link flap sequences" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Generators.ring_chord (Rng.create (seed + 1)) ~nodes:10 ~chords:5 in
      let tm =
        Traffic_matrix.gravity (Rng.create (seed + 2))
          ~nodes:(Graph.node_count g) ~total_bps:150_000.
      in
      let sim = Flow_sim.create g Metric.Hn_spf tm in
      let nl = Graph.link_count g in
      let down = Array.make nl false in
      let ok = ref true in
      for _ = 1 to 30 do
        (* Flip a random trunk (both directions together half the time). *)
        let l = Rng.int rng nl in
        let link = Graph.link g (Link.id_of_int l) in
        let flip i =
          down.(i) <- not down.(i);
          Flow_sim.set_link_up sim (Link.id_of_int i) (not down.(i))
        in
        flip l;
        if Rng.bool rng then flip (Link.id_to_int link.Link.reverse);
        let stats = Flow_sim.step sim in
        (* Cost bounds hold for every up link. *)
        Graph.iter_links g (fun (lk : Link.t) ->
            let i = Link.id_to_int lk.Link.id in
            if not down.(i) then begin
              let c = Flow_sim.link_cost sim lk.Link.id in
              let p =
                Routing_metric.Hnm_params.for_line_type lk.Link.line_type
              in
              if
                c < Routing_metric.Hnm_params.min_cost lk
                || c > p.Routing_metric.Hnm_params.max_cost
              then ok := false
            end);
        if stats.Flow_sim.delivered_bps < 0. then ok := false
      done;
      !ok)

let test_stagger_desynchronizes () =
  (* §3.2 blames simultaneity: if half the nodes react one period late,
     D-SPF's perfect all-or-nothing flip is broken up. *)
  let g, tm, a, b = two_region_setup () in
  let sim = Flow_sim.create g Metric.D_spf tm in
  Flow_sim.set_stagger sim 0.5;
  let utils = bridge_utils sim a b 24 in
  let tail = List.filteri (fun i _ -> i >= 8) utils in
  let fully_one_sided =
    List.length
      (List.filter
         (fun (ua, ub) -> Float.min ua ub < 0.05 && Float.max ua ub > 1.2)
         tail)
  in
  (* The synchronous run is one-sided in >= 8/10 tail periods (asserted in
     test_dspf_oscillates); staggered reaction must break that pattern in
     at least some periods. *)
  Alcotest.(check bool)
    (Printf.sprintf "not always all-or-nothing (%d/16)" fully_one_sided)
    true
    (fully_one_sided < 16);
  Alcotest.(check bool) "validation" true
    (try
       Flow_sim.set_stagger sim 1.5;
       false
     with Invalid_argument _ -> true)

let test_indicators_validation () =
  let g, tm, _, _ = two_region_setup () in
  let sim = Flow_sim.create g Metric.Hn_spf tm in
  Alcotest.(check bool) "raises with no periods" true
    (try
       ignore (Flow_sim.indicators sim ());
       false
     with Invalid_argument _ -> true);
  ignore (Flow_sim.step sim);
  Alcotest.(check int) "period index" 1 (Flow_sim.period_index sim);
  Alcotest.(check (float 1e-9)) "time" 10. (Flow_sim.time_s sim)

(* ROADMAP item 4's allocation-regression gate: a steady-state routing
   period must allocate zero minor words.  Measured with [Gc.minor_words]
   (noalloc, unboxed) deltas around [tick], which appends to preallocated
   history columns instead of consing records. *)
let measure_tick_words sim ~warmup ~measured =
  for _ = 1 to warmup do
    Flow_sim.tick sim
  done;
  let deltas = Array.make measured 0. in
  for k = 0 to measured - 1 do
    let before = Gc.minor_words () in
    Flow_sim.tick sim;
    deltas.(k) <- Gc.minor_words () -. before
  done;
  deltas

let test_static_steady_state_allocates_nothing () =
  let g, tm, _, _ = two_region_setup () in
  let sim = Flow_sim.create ~domains:1 g Metric.Static_capacity tm in
  let deltas = measure_tick_words sim ~warmup:30 ~measured:10 in
  Array.iteri
    (fun k d ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "static metric, period %d allocates nothing" k)
        0. d)
    deltas

let test_hnspf_quiet_periods_allocate_nothing () =
  (* Under HN-SPF the 50-second re-flood timer fires every 5 periods even
     in steady state, and flood periods legitimately allocate (update
     records, broadcast bookkeeping).  The gate applies to the quiet
     periods in between — and must hold even with a live flight recorder
     attached (untimed clock), the tentpole's no-per-event-allocation
     claim. *)
  let g, tm, _, _ = two_region_setup () in
  let tracer = Tracer.create () in
  let sim = Flow_sim.create ~domains:1 ~tracer g Metric.Hn_spf tm in
  let warmup = 30 and measured = 12 in
  let deltas = measure_tick_words sim ~warmup ~measured in
  let history = Array.of_list (Flow_sim.history sim) in
  let quiet = ref 0 in
  Array.iteri
    (fun k d ->
      let stats = history.(warmup + k) in
      if stats.Flow_sim.updates = 0 then begin
        incr quiet;
        Alcotest.(check (float 0.))
          (Printf.sprintf "quiet period %d allocates nothing" k)
          0. d
      end)
    deltas;
  Alcotest.(check bool)
    (Printf.sprintf "gate exercised on quiet periods (%d/%d)" !quiet measured)
    true (!quiet > 0);
  Alcotest.(check bool) "tracer recorded period spans" true
    (Tracer.slots tracer > 0 && Tracer.slot_recorded tracer 0 > 0)

let test_route_change_counters () =
  let g, tm, _, _ = two_region_setup () in
  (* D-SPF's oscillation is route flapping by definition: flows stampede
     between the bridges every period, so route changes, A->B->A next-hop
     flips and link cost direction flips all accumulate. *)
  let sim = Flow_sim.create g Metric.D_spf tm in
  ignore (Flow_sim.run sim ~periods:20);
  let routes, nh, links = Flow_sim.route_change_totals sim in
  Alcotest.(check bool)
    (Printf.sprintf "D-SPF flaps routes (%d changes)" routes)
    true (routes > 0);
  Alcotest.(check bool)
    (Printf.sprintf "D-SPF flips next hops A->B->A (%d)" nh)
    true (nh > 0);
  Alcotest.(check bool)
    (Printf.sprintf "D-SPF flips link cost directions (%d)" links)
    true (links > 0);
  (* Totals are exactly the per-period sums. *)
  let sum f =
    List.fold_left (fun acc s -> acc + f s) 0 (Flow_sim.history sim)
  in
  Alcotest.(check int) "routes total" routes
    (sum (fun s -> s.Flow_sim.routes_changed));
  Alcotest.(check int) "next-hop flips total" nh
    (sum (fun s -> s.Flow_sim.next_hop_flips));
  Alcotest.(check int) "link flips total" links
    (sum (fun s -> s.Flow_sim.link_flips));
  (* Indicators expose the same counters per period. *)
  let i = Flow_sim.indicators sim () in
  Alcotest.(check (float 1e-9)) "routes/period"
    (float_of_int routes /. 20.)
    i.Measure.route_changes_per_period;
  Alcotest.(check (float 1e-9)) "nh flips/period"
    (float_of_int nh /. 20.)
    i.Measure.next_hop_flips_per_period;
  Alcotest.(check (float 1e-9)) "link flips/period"
    (float_of_int links /. 20.)
    i.Measure.link_flips_per_period;
  (* HN-SPF's bounded movement quiets all three counters on the same
     workload (it may still adjust, but not flap every period). *)
  let hn = Flow_sim.create g Metric.Hn_spf tm in
  ignore (Flow_sim.run hn ~periods:20);
  let hn_routes, _, _ = Flow_sim.route_change_totals hn in
  Alcotest.(check bool)
    (Printf.sprintf "HN-SPF changes fewer routes (%d vs %d)" hn_routes routes)
    true
    (hn_routes < routes)

let test_delay_percentile_indicators () =
  let g, tm, _, _ = two_region_setup () in
  let sim = Flow_sim.create g Metric.Hn_spf tm in
  ignore (Flow_sim.run sim ~periods:20);
  let i = Flow_sim.indicators sim () in
  Alcotest.(check bool)
    (Printf.sprintf "p50 <= p95 <= p99 (%.2f/%.2f/%.2f ms)" i.Measure.delay_p50_ms
       i.Measure.delay_p95_ms i.Measure.delay_p99_ms)
    true
    (i.Measure.delay_p50_ms > 0.
    && i.Measure.delay_p50_ms <= i.Measure.delay_p95_ms
    && i.Measure.delay_p95_ms <= i.Measure.delay_p99_ms)

let test_history_order () =
  let g, tm, _, _ = two_region_setup () in
  let sim = Flow_sim.create g Metric.Hn_spf tm in
  ignore (Flow_sim.run sim ~periods:5);
  let times = List.map (fun s -> s.Flow_sim.time_s) (Flow_sim.history sim) in
  Alcotest.(check (list (float 1e-9))) "oldest first" [ 10.; 20.; 30.; 40.; 50. ]
    times

let () =
  Alcotest.run "flow_sim"
    [ ( "oscillation (Fig 1)",
        [ Alcotest.test_case "D-SPF oscillates" `Quick test_dspf_oscillates;
          Alcotest.test_case "HN-SPF shares" `Quick test_hnspf_shares_load;
          Alcotest.test_case "HN-SPF carries more" `Quick
            test_hnspf_carries_more_than_dspf ] );
      ( "mechanics",
        [ Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "light load" `Quick test_light_load_all_equal;
          Alcotest.test_case "metric switch" `Quick test_switch_metric_mid_run;
          Alcotest.test_case "failure + easing revival" `Quick
            test_link_failure_and_revival;
          Alcotest.test_case "adaptive sources" `Quick
            test_adaptive_sources_relieve_overload;
          Alcotest.test_case "stagger desynchronizes" `Quick
            test_stagger_desynchronizes;
          Alcotest.test_case "indicators validation" `Quick
            test_indicators_validation;
          Alcotest.test_case "history order" `Quick test_history_order ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_flow_conservation; prop_survives_random_link_flaps ] );
      ( "allocation gate",
        [ Alcotest.test_case "static metric steady state" `Quick
            test_static_steady_state_allocates_nothing;
          Alcotest.test_case "HN-SPF quiet periods (traced)" `Quick
            test_hnspf_quiet_periods_allocate_nothing ] );
      ( "route changes",
        [ Alcotest.test_case "counters" `Quick test_route_change_counters;
          Alcotest.test_case "delay percentiles" `Quick
            test_delay_percentile_indicators ] ) ]

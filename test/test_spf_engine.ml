(* Tests for the all-pairs SPF engine, the domain pool and the CSR
   adjacency: the engine must serve trees bit-identical to a from-scratch
   Dijkstra in every configuration — sequential or parallel, incremental
   repair or full sweep. *)

open Routing_topology
module Dijkstra = Routing_spf.Dijkstra
module Spf_engine = Routing_spf.Spf_engine
module Spf_tree = Routing_spf.Spf_tree
module Domain_pool = Routing_metric.Domain_pool
module Flow_sim = Routing_sim.Flow_sim
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng

let random_graph seed =
  let rng = Rng.create seed in
  let nodes = 4 + Rng.int rng 12 in
  Generators.ring_chord rng ~nodes ~chords:(Rng.int rng (2 * nodes))

(* --- Domain pool --- *)

let test_pool_covers_all_indices () =
  let pool = Domain_pool.create 3 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let n = 1000 in
  let hits = Array.make n 0 in
  (* Racy increments would be a test bug; per-index slots are the pool's
     contract, and each index is handed out exactly once. *)
  Domain_pool.parallel_for pool n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "every index ran once" true
    (Array.for_all (fun h -> h = 1) hits);
  (* The pool is reusable. *)
  Domain_pool.parallel_for pool n (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check bool) "second loop too" true
    (Array.for_all (fun h -> h = 2) hits)

let test_pool_propagates_exception () =
  let pool = Domain_pool.create 2 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let raised =
    try
      Domain_pool.parallel_for pool 50 (fun i ->
          if i = 17 then failwith "boom");
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "exception reaches the caller" true raised;
  (* And the pool survives it. *)
  let count = Atomic.make 0 in
  Domain_pool.parallel_for pool 10 (fun _ -> Atomic.incr count);
  Alcotest.(check int) "usable after failure" 10 (Atomic.get count)

let test_pool_size_one_is_sequential () =
  let pool = Domain_pool.create 1 in
  let order = ref [] in
  Domain_pool.parallel_for pool 5 (fun i -> order := i :: !order);
  Alcotest.(check (list int)) "inline, in order" [ 4; 3; 2; 1; 0 ] !order

(* --- CSR adjacency vs list adjacency --- *)

let prop_csr_matches_lists =
  QCheck2.Test.make ~name:"CSR adjacency = list adjacency" ~count:100
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed in
      let off, link_ids, dsts = Graph.csr_out g in
      let in_off, in_link_ids = Graph.csr_in g in
      Array.length off = Graph.node_count g + 1
      && Array.length link_ids = Graph.link_count g
      && Array.length in_off = Graph.node_count g + 1
      && Array.length in_link_ids = Graph.link_count g
      && List.for_all
           (fun node ->
             let i = Node.to_int node in
             let out_flat =
               List.init (off.(i + 1) - off.(i)) (fun k ->
                   (link_ids.(off.(i) + k), dsts.(off.(i) + k)))
             in
             let out_list =
               List.map
                 (fun (l : Link.t) ->
                   (Link.id_to_int l.id, Node.to_int l.dst))
                 (Graph.out_links g node)
             in
             let in_flat =
               List.init (in_off.(i + 1) - in_off.(i)) (fun k ->
                   in_link_ids.(in_off.(i) + k))
             in
             let in_list =
               List.map
                 (fun (l : Link.t) -> Link.id_to_int l.id)
                 (Graph.in_links g node)
             in
             out_flat = out_list && in_flat = in_list)
           (Graph.nodes g))

(* --- Engine refresh = full recompute, under random perturbations --- *)

let check_engine_matches_full g engine ~enabled ~cost =
  Spf_engine.refresh engine ~enabled:(fun l -> enabled (Link.id_to_int l))
    ~cost:(fun l -> cost (Link.id_to_int l));
  Graph.iter_nodes g (fun node ->
      let fresh =
        Dijkstra.compute
          ~enabled:(fun l -> enabled (Link.id_to_int l))
          g
          ~cost:(fun l -> cost (Link.id_to_int l))
          node
      in
      if not (Spf_tree.equal fresh (Spf_engine.tree engine node)) then
        Alcotest.failf "engine tree differs from full recompute at node %d"
          (Node.to_int node))

let prop_engine_incremental_matches_full =
  QCheck2.Test.make ~name:"engine refresh = full recompute" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed lxor 0xC0FFEE) in
      let nl = Graph.link_count g in
      let costs = Array.init nl (fun _ -> 1 + Rng.int rng 60) in
      let up = Array.make nl true in
      let engine = Spf_engine.create g in
      check_engine_matches_full g engine
        ~enabled:(fun i -> up.(i))
        ~cost:(fun i -> costs.(i));
      (* Single-link perturbations: cost moves, links flapping down/up. *)
      for _ = 1 to 12 do
        let i = Rng.int rng nl in
        (match Rng.int rng 4 with
        | 0 -> up.(i) <- not up.(i)
        | _ -> costs.(i) <- 1 + Rng.int rng 60);
        check_engine_matches_full g engine
          ~enabled:(fun i -> up.(i))
          ~cost:(fun i -> costs.(i))
      done;
      (* A bulk change well above the threshold forces the full-sweep path. *)
      for i = 0 to nl - 1 do
        costs.(i) <- 1 + Rng.int rng 60
      done;
      check_engine_matches_full g engine
        ~enabled:(fun i -> up.(i))
        ~cost:(fun i -> costs.(i));
      true)

(* Multi-link batch deltas: several links move in one refresh — mixed
   increases, decreases, outages and recoveries — which is exactly the
   shape the dynamic-repair path has to get right in one pass.  Also
   pins the repair path on (`~repair:false` never repairs), so a
   regression cannot hide behind the recompute fallback. *)
let prop_engine_batch_deltas_match_full =
  QCheck2.Test.make ~name:"engine batch deltas = full recompute" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed lxor 0xBA7C4) in
      let nl = Graph.link_count g in
      let costs = Array.init nl (fun _ -> 1 + Rng.int rng 60) in
      let up = Array.make nl true in
      let engine = Spf_engine.create g in
      check_engine_matches_full g engine
        ~enabled:(fun i -> up.(i))
        ~cost:(fun i -> costs.(i));
      for _ = 1 to 8 do
        (* Between 2 and 5 links change together, each either flapping
           or moving its cost. *)
        let batch = 2 + Rng.int rng 4 in
        for _ = 1 to batch do
          let i = Rng.int rng nl in
          match Rng.int rng 3 with
          | 0 -> up.(i) <- not up.(i)
          | _ -> costs.(i) <- 1 + Rng.int rng 60
        done;
        check_engine_matches_full g engine
          ~enabled:(fun i -> up.(i))
          ~cost:(fun i -> costs.(i))
      done;
      (* Guarantee the repair path actually ran at least once: bumping a
         tree-parent link is provably "affected", and one change is
         always under the full-sweep threshold. *)
      for i = 0 to nl - 1 do
        up.(i) <- true
      done;
      check_engine_matches_full g engine
        ~enabled:(fun i -> up.(i))
        ~cost:(fun i -> costs.(i));
      let before = (Spf_engine.stats engine).Spf_engine.sources_repaired in
      let tree = Spf_engine.tree engine (Node.of_int 0) in
      let parent =
        Option.get (Spf_tree.parent_link tree (Node.of_int 1))
      in
      costs.(Link.id_to_int parent.Link.id) <-
        costs.(Link.id_to_int parent.Link.id) + 1;
      check_engine_matches_full g engine
        ~enabled:(fun i -> up.(i))
        ~cost:(fun i -> costs.(i));
      let after = (Spf_engine.stats engine).Spf_engine.sources_repaired in
      if after <= before then
        QCheck2.Test.fail_report
          "a tree-parent cost bump must take the repair path";
      true)

(* --- Determinism: parallel = sequential, bit for bit --- *)

let test_parallel_engine_matches_sequential () =
  let g = Arpanet.topology () in
  let pool = Domain_pool.create 3 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let par = Spf_engine.create ~pool g in
  let seq = Spf_engine.create g in
  let rng = Rng.create 11 in
  let nl = Graph.link_count g in
  let costs = Array.init nl (fun _ -> 1 + Rng.int rng 40) in
  for _ = 0 to 8 do
    let cost l = costs.(Link.id_to_int l) in
    Spf_engine.refresh par ~cost;
    Spf_engine.refresh seq ~cost;
    Graph.iter_nodes g (fun node ->
        Alcotest.(check bool)
          (Printf.sprintf "trees agree at node %d" (Node.to_int node))
          true
          (Spf_tree.equal (Spf_engine.tree seq node) (Spf_engine.tree par node)));
    costs.(Rng.int rng nl) <- 1 + Rng.int rng 40
  done

(* Same agreement when the repairs themselves fan out over the pool:
   [repair_grain:1] forces the parallel branch for any affected set. *)
let test_parallel_repair_matches_sequential () =
  let g = Arpanet.topology () in
  let pool = Domain_pool.create 3 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let par = Spf_engine.create ~pool ~repair_grain:1 g in
  let seq = Spf_engine.create g in
  let rng = Rng.create 23 in
  let nl = Graph.link_count g in
  let costs = Array.init nl (fun _ -> 1 + Rng.int rng 40) in
  for _ = 0 to 8 do
    let cost l = costs.(Link.id_to_int l) in
    Spf_engine.refresh par ~cost;
    Spf_engine.refresh seq ~cost;
    Graph.iter_nodes g (fun node ->
        Alcotest.(check bool)
          (Printf.sprintf "trees agree at node %d" (Node.to_int node))
          true
          (Spf_tree.equal (Spf_engine.tree seq node) (Spf_engine.tree par node)));
    costs.(Rng.int rng nl) <- 1 + Rng.int rng 40
  done;
  let s = Spf_engine.stats par in
  Alcotest.(check bool)
    (Printf.sprintf "parallel branch repaired trees (%d repaired)"
       s.Spf_engine.sources_repaired)
    true
    (s.Spf_engine.sources_repaired > 0)

let flap_scenario sim =
  let g = Flow_sim.graph sim in
  let some_link i = Link.id_of_int (i mod Graph.link_count g) in
  List.concat_map
    (fun round ->
      ignore (Flow_sim.step sim);
      Flow_sim.set_link_up sim (some_link (7 * round)) false;
      let a = Flow_sim.step sim in
      Flow_sim.set_link_up sim (some_link (7 * round)) true;
      let b = Flow_sim.step sim in
      [ a; b ])
    [ 1; 2; 3; 4 ]

let test_flow_sim_stats_independent_of_domains () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let run domains =
    let sim = Flow_sim.create ~domains g Metric.Hn_spf tm in
    flap_scenario sim
  in
  let seq = run 1 and par = run 3 in
  (* period_stats is all floats and ints: structural equality is exact
     bitwise agreement of every indicator in every period. *)
  Alcotest.(check bool) "period stats identical" true (seq = par)

(* --- Refresh skipping when nothing flooded --- *)

let test_refresh_skipped_when_quiet () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  (* Static-capacity costs never change after the initial flood, so every
     period after the first must reuse all trees without recomputing. *)
  let sim = Flow_sim.create g Metric.Static_capacity tm in
  ignore (Flow_sim.run sim ~periods:6);
  let stats = Flow_sim.spf_stats sim in
  Alcotest.(check int) "refreshes" 6 stats.Spf_engine.refreshes;
  Alcotest.(check int) "all but the first skipped" 5
    stats.Spf_engine.skipped;
  Alcotest.(check int) "one full sweep" 1 stats.Spf_engine.full_sweeps;
  Alcotest.(check int) "one Dijkstra per node, ever"
    (Graph.node_count g) stats.Spf_engine.sources_recomputed

let test_refresh_repairs_only_affected () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let sim = Flow_sim.create g Metric.Hn_spf tm in
  ignore (Flow_sim.run sim ~periods:12);
  let stats = Flow_sim.spf_stats sim in
  (* HN-SPF floods a handful of links per period; the engine must be
     reusing trees, not sweeping. *)
  Alcotest.(check bool)
    (Printf.sprintf "some trees reused (%d reused, %d recomputed)"
       stats.Spf_engine.sources_reused stats.Spf_engine.sources_recomputed)
    true
    (stats.Spf_engine.sources_reused > 0)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_spf_engine"
    [ ( "domain_pool",
        [ Alcotest.test_case "covers all indices" `Quick
            test_pool_covers_all_indices;
          Alcotest.test_case "propagates exceptions" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "size 1 is sequential" `Quick
            test_pool_size_one_is_sequential ] );
      ("csr", qsuite [ prop_csr_matches_lists ]);
      ( "engine",
        [ Alcotest.test_case "parallel = sequential" `Quick
            test_parallel_engine_matches_sequential;
          Alcotest.test_case "parallel repair = sequential" `Quick
            test_parallel_repair_matches_sequential ]
        @ qsuite
            [ prop_engine_incremental_matches_full;
              prop_engine_batch_deltas_match_full ] );
      ( "simulator",
        [ Alcotest.test_case "stats independent of domains" `Quick
            test_flow_sim_stats_independent_of_domains;
          Alcotest.test_case "quiet periods skip refresh" `Quick
            test_refresh_skipped_when_quiet;
          Alcotest.test_case "incremental repair engages" `Quick
            test_refresh_repairs_only_affected ] ) ]

(* Unit and property tests for the routing_spf library. *)

open Routing_topology
module Pq = Routing_spf.Priority_queue
module Rq = Routing_spf.Radix_queue
module Dijkstra = Routing_spf.Dijkstra
module Spf_tree = Routing_spf.Spf_tree
module Incremental = Routing_spf.Incremental
module Routing_table = Routing_spf.Routing_table
module Rng = Routing_stats.Rng

(* --- Priority queue --- *)

let test_pq_ordering () =
  let q = Pq.create ~compare:Int.compare in
  List.iter (fun (p, v) -> Pq.push q p v) [ (5, "e"); (1, "a"); (3, "c"); (2, "b") ];
  Alcotest.(check int) "length" 4 (Pq.length q);
  let order = List.init 4 (fun _ -> snd (Option.get (Pq.pop_min q))) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "e" ] order;
  Alcotest.(check bool) "empty" true (Pq.is_empty q)

let test_pq_peek_and_clear () =
  let q = Pq.create ~compare:Int.compare in
  Pq.push q 2 "x";
  Pq.push q 1 "y";
  (match Pq.peek_min q with
  | Some (1, "y") -> ()
  | _ -> Alcotest.fail "peek should see minimum");
  Pq.clear q;
  Alcotest.(check bool) "cleared" true (Pq.is_empty q)

let prop_pq_sorts =
  QCheck2.Test.make ~name:"pop order is sorted" ~count:200
    QCheck2.Gen.(list_size (int_range 0 200) (int_range 0 1000))
    (fun xs ->
      let q = Pq.create ~compare:Int.compare in
      List.iter (fun x -> Pq.push q x x) xs;
      let rec drain acc =
        match Pq.pop_min q with
        | Some (p, _) -> drain (p :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort Int.compare xs)

(* --- radix queue --- *)

let test_radix_ordering () =
  let q = Rq.create () in
  List.iter
    (fun (k, t) -> Rq.push q ~key:k ~tie:t (k * 10))
    [ (5, 0); (1, 2); (1, 1); (3, 0); (2, 0) ];
  Alcotest.(check int) "length" 5 (Rq.length q);
  let order = List.init 5 (fun _ -> Option.get (Rq.pop_min q)) in
  Alcotest.(check bool) "lexicographic (key, tie)" true
    (order = [ (1, 1, 10); (1, 2, 10); (2, 0, 20); (3, 0, 30); (5, 0, 50) ]);
  Alcotest.(check bool) "empty" true (Rq.is_empty q);
  Alcotest.(check int) "floor follows pops" 5 (Rq.last q)

let test_radix_rejects_non_monotone () =
  let q = Rq.create () in
  Rq.push q ~key:10 ~tie:0 1;
  (match Rq.pop_min q with
  | Some (10, 0, 1) -> ()
  | _ -> Alcotest.fail "pop should return the pushed entry");
  Rq.push q ~key:10 ~tie:1 2;
  (* 10 equals the floor: allowed.  9 is below it: rejected. *)
  Alcotest.check_raises "below the floor"
    (Invalid_argument "Radix_queue.push: key 9 below the monotone floor 10")
    (fun () -> Rq.push q ~key:9 ~tie:0 3)

let test_radix_clear () =
  let q = Rq.create () in
  Rq.push q ~key:7 ~tie:0 0;
  ignore (Rq.pop_min q);
  Rq.clear q;
  Alcotest.(check bool) "cleared" true (Rq.is_empty q);
  Alcotest.(check int) "floor reset" 0 (Rq.last q);
  (* After clear the floor is gone, so small keys are admissible again. *)
  Rq.push q ~key:1 ~tie:0 9;
  Alcotest.(check bool) "reusable" true (Rq.pop_min q = Some (1, 0, 9))

(* The queue only promises anything for monotone sequences (every push at
   or above the last popped key) — exactly what Dijkstra and the repair
   loop produce.  Against a model [Priority_queue] ordered by (key, tie),
   random interleavings of pushes and pops must agree pop for pop.  Ties
   are made unique so the comparison is exact, not set-valued. *)
let prop_radix_matches_priority_queue =
  QCheck2.Test.make ~name:"radix queue = priority queue (monotone ops)"
    ~count:300
    QCheck2.Gen.(
      list_size (int_range 0 300)
        (pair (option (int_range 0 2000)) (int_range 0 9)))
    (fun ops ->
      let q = Rq.create () in
      let model =
        Pq.create ~compare:(fun (k1, t1) (k2, t2) ->
            if k1 <> k2 then Int.compare k1 k2 else Int.compare t1 t2)
      in
      let last = ref 0 in
      let ok = ref true in
      List.iteri
        (fun i (op, r) ->
          match op with
          | Some delta ->
            let key = !last + delta and tie = (r * 1_000_000) + i in
            Rq.push q ~key ~tie i;
            Pq.push model (key, tie) i
          | None -> (
            match (Rq.pop_min q, Pq.pop_min model) with
            | None, None -> ()
            | Some (k, t, v), Some ((k', t'), v') ->
              last := k;
              if not (k = k' && t = t' && v = v') then ok := false
            | _ -> ok := false))
        ops;
      let rec drain () =
        match (Rq.pop_min q, Pq.pop_min model) with
        | None, None -> ()
        | Some (k, t, v), Some ((k', t'), v') ->
          if k = k' && t = t' && v = v' then drain () else ok := false
        | _ -> ok := false
      in
      drain ();
      !ok)

(* --- helpers --- *)

let diamond () =
  (* A - B - D and A - C - D, plus a direct A - D. *)
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let _ = Builder.trunk b Line_type.T56 "B" "D" in
  let _ = Builder.trunk b Line_type.T56 "A" "C" in
  let _ = Builder.trunk b Line_type.T56 "C" "D" in
  let _ = Builder.trunk b Line_type.T56 "A" "D" in
  Builder.build b

let node g name = Option.get (Graph.node_by_name g name)

let constant_cost c = fun _ -> c

let random_graph seed =
  let rng = Rng.create seed in
  let nodes = 4 + Rng.int rng 12 in
  Generators.ring_chord rng ~nodes ~chords:(Rng.int rng (2 * nodes))

let random_costs seed g =
  let rng = Rng.create (seed + 7919) in
  let costs = Array.init (Graph.link_count g) (fun _ -> 1 + Rng.int rng 60) in
  fun lid -> costs.(Link.id_to_int lid)

(* --- Dijkstra --- *)

let test_dijkstra_direct_wins () =
  let g = diamond () in
  let tree = Dijkstra.compute g ~cost:(constant_cost 10) (node g "A") in
  Alcotest.(check int) "direct cost" 10 (Spf_tree.dist tree (node g "D"));
  Alcotest.(check int) "one hop" 1 (Spf_tree.hops tree (node g "D"));
  Alcotest.(check int) "root dist" 0 (Spf_tree.dist tree (node g "A"))

let test_dijkstra_reroutes_around_expensive_link () =
  let g = diamond () in
  let a = node g "A" and d = node g "D" in
  let direct = Option.get (Graph.find_link g ~src:a ~dst:d) in
  let cost lid = if Link.id_equal lid direct.Link.id then 50 else 10 in
  let tree = Dijkstra.compute g ~cost a in
  Alcotest.(check int) "two-hop detour" 20 (Spf_tree.dist tree d);
  Alcotest.(check int) "hops" 2 (Spf_tree.hops tree d);
  Alcotest.(check bool) "avoids direct link" false
    (Spf_tree.uses_link tree d direct.Link.id)

let test_dijkstra_tie_break_neutral_deterministic () =
  let g = diamond () in
  let a = node g "A" in
  let t1 = Dijkstra.compute g ~cost:(constant_cost 7) a in
  let t2 = Dijkstra.compute g ~cost:(constant_cost 7) a in
  Graph.iter_nodes g (fun n ->
      Alcotest.(check bool) "same parents" true
        (match (Spf_tree.parent_link t1 n, Spf_tree.parent_link t2 n) with
        | None, None -> true
        | Some l1, Some l2 -> Link.id_equal l1.Link.id l2.Link.id
        | _ -> false))

let test_dijkstra_favor_avoid () =
  (* A-B-D vs A-C-D: equal cost; favoring/avoiding a link must decide. *)
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let _ = Builder.trunk b Line_type.T56 "B" "D" in
  let _ = Builder.trunk b Line_type.T56 "A" "C" in
  let _ = Builder.trunk b Line_type.T56 "C" "D" in
  let g = Builder.build b in
  let a = node g "A" and d = node g "D" in
  let bd = Option.get (Graph.find_link g ~src:(node g "B") ~dst:d) in
  let favor = Dijkstra.compute ~tie_break:(`Favor bd.Link.id) g
      ~cost:(constant_cost 30) a in
  Alcotest.(check bool) "favored link used" true
    (Spf_tree.uses_link favor d bd.Link.id);
  let avoid = Dijkstra.compute ~tie_break:(`Avoid bd.Link.id) g
      ~cost:(constant_cost 30) a in
  Alcotest.(check bool) "avoided link not used" false
    (Spf_tree.uses_link avoid d bd.Link.id);
  (* Tie-breaking must not change distances. *)
  Alcotest.(check int) "same distance" (Spf_tree.dist favor d) (Spf_tree.dist avoid d)

let test_dijkstra_enabled () =
  let g = diamond () in
  let a = node g "A" and d = node g "D" in
  let direct = Option.get (Graph.find_link g ~src:a ~dst:d) in
  let tree =
    Dijkstra.compute
      ~enabled:(fun lid -> not (Link.id_equal lid direct.Link.id))
      g ~cost:(constant_cost 10) a
  in
  Alcotest.(check int) "routes around down link" 20 (Spf_tree.dist tree d)

let test_dijkstra_unreachable () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let _ = Builder.trunk b Line_type.T56 "C" "D" in
  let g = Builder.build b in
  let tree = Dijkstra.compute g ~cost:(constant_cost 5) (node g "A") in
  Alcotest.(check bool) "C unreached" false (Spf_tree.reached tree (node g "C"));
  Alcotest.(check int) "dist max_int" max_int (Spf_tree.dist tree (node g "C"));
  Alcotest.check_raises "path raises"
    (Invalid_argument "Spf_tree.path: unreachable") (fun () ->
      ignore (Spf_tree.path tree (node g "C")))

let test_dijkstra_rejects_bad_cost () =
  let g = diamond () in
  Alcotest.(check bool) "raises on zero cost" true
    (try
       ignore (Dijkstra.compute g ~cost:(constant_cost 0) (node g "A"));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "raises above max" true
    (try
       ignore (Dijkstra.compute g ~cost:(constant_cost 255) (node g "A"));
       false
     with Invalid_argument _ -> true)

(* Shortest-path distances must satisfy the Bellman optimality condition:
   for every link (u,v), dist(v) <= dist(u) + cost(u,v), with equality for
   tree links. *)
let prop_dijkstra_optimality =
  QCheck2.Test.make ~name:"dijkstra satisfies Bellman conditions" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed in
      let cost = random_costs seed g in
      let tree = Dijkstra.compute g ~cost (Node.of_int 0) in
      let ok = ref true in
      Graph.iter_links g (fun l ->
          let du = Spf_tree.dist tree l.Link.src in
          let dv = Spf_tree.dist tree l.Link.dst in
          if du <> max_int && dv > du + cost l.Link.id then ok := false);
      Graph.iter_nodes g (fun n ->
          match Spf_tree.parent_link tree n with
          | None -> ()
          | Some l ->
            let du = Spf_tree.dist tree l.Link.src in
            if Spf_tree.dist tree n <> du + cost l.Link.id then ok := false);
      !ok)

(* Distributed Bellman-Ford with static costs converges to the same
   distances SPF computes — the two generations of ARPANET routing agree
   when nothing moves. *)
let prop_dijkstra_agrees_with_bellman_ford =
  QCheck2.Test.make ~name:"dijkstra = converged bellman-ford" ~count:30
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed in
      let cost = random_costs seed g in
      let bf = Routing_bellman.Bellman_ford.create g in
      (match
         Routing_bellman.Bellman_ford.rounds_to_converge bf ~link_cost:cost
           ~max_rounds:(2 * Graph.node_count g)
       with
      | None -> Alcotest.fail "bellman-ford did not converge on static costs"
      | Some _ -> ());
      let ok = ref true in
      Graph.iter_nodes g (fun src ->
          let tree = Dijkstra.compute g ~cost src in
          Graph.iter_nodes g (fun dst ->
              let bf_dist =
                Routing_bellman.Bellman_ford.distance bf ~from:src dst
              in
              let spf_dist =
                if Spf_tree.reached tree dst then Some (Spf_tree.dist tree dst)
                else None
              in
              let spf_dist = if Node.equal src dst then Some 0 else spf_dist in
              if bf_dist <> spf_dist then ok := false));
      !ok)

(* Hereditary property (§4.1): every subpath of a shortest path is a
   shortest path — checked via next_hop consistency. *)
let prop_shortest_paths_hereditary =
  QCheck2.Test.make ~name:"subpaths of shortest paths are shortest" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed in
      let cost = random_costs seed g in
      let tree = Dijkstra.compute g ~cost (Node.of_int 0) in
      let ok = ref true in
      Graph.iter_nodes g (fun dst ->
          if Spf_tree.reached tree dst then begin
            let along = ref 0 in
            List.iter
              (fun (l : Link.t) ->
                along := !along + cost l.Link.id;
                if Spf_tree.dist tree l.Link.dst <> !along then ok := false)
              (Spf_tree.path tree dst)
          end);
      !ok)

(* --- Spf_tree accessors --- *)

let test_tree_paths_and_next_hop () =
  let g = diamond () in
  let a = node g "A" and d = node g "D" in
  let direct = Option.get (Graph.find_link g ~src:a ~dst:d) in
  let cost lid = if Link.id_equal lid direct.Link.id then 100 else 10 in
  let tree = Dijkstra.compute g ~cost a in
  let path = Spf_tree.path tree d in
  Alcotest.(check int) "path length" 2 (List.length path);
  (match Spf_tree.next_hop tree d with
  | Some l -> Alcotest.(check bool) "next hop from A" true (Node.equal l.Link.src a)
  | None -> Alcotest.fail "expected next hop");
  Alcotest.(check bool) "no next hop to self" true (Spf_tree.next_hop tree a = None);
  let via = Spf_tree.destinations_via tree (List.hd path).Link.id in
  Alcotest.(check bool) "destinations_via includes D" true
    (List.exists (Node.equal d) via)

(* --- Incremental SPF --- *)

let test_incremental_ignores_irrelevant_increase () =
  let g = diamond () in
  let a = node g "A" and d = node g "D" in
  let inc = Incremental.create g ~root:a ~initial_cost:(constant_cost 10) in
  (* Direct link is in the tree; a non-tree link's increase must be free. *)
  let non_tree =
    Graph.links g
    |> List.find (fun (l : Link.t) ->
           Node.equal l.Link.src d && not (Node.equal l.Link.dst a))
  in
  Incremental.set_cost inc non_tree.Link.id 200;
  let stats = Incremental.stats inc in
  Alcotest.(check int) "no recompute" 0 stats.Incremental.full_recomputes;
  Alcotest.(check int) "update ignored" 1 stats.Incremental.updates_ignored

let test_incremental_tracks_change () =
  let g = diamond () in
  let a = node g "A" and d = node g "D" in
  let direct = Option.get (Graph.find_link g ~src:a ~dst:d) in
  let inc = Incremental.create g ~root:a ~initial_cost:(constant_cost 10) in
  Alcotest.(check int) "initial" 10 (Incremental.dist inc d);
  Incremental.set_cost inc direct.Link.id 50;
  Alcotest.(check int) "after increase, detour" 20 (Incremental.dist inc d);
  Incremental.set_cost inc direct.Link.id 5;
  Alcotest.(check int) "after decrease, direct again" 5 (Incremental.dist inc d)

let prop_incremental_matches_full =
  QCheck2.Test.make ~name:"incremental = full recompute over update sequences"
    ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed in
      let rng = Rng.create (seed * 31 + 1) in
      let costs = Array.init (Graph.link_count g) (fun _ -> 1 + Rng.int rng 60) in
      let root = Node.of_int (Rng.int rng (Graph.node_count g)) in
      let inc =
        Incremental.create g ~root ~initial_cost:(fun l ->
            costs.(Link.id_to_int l))
      in
      let ok = ref true in
      for _ = 1 to 30 do
        let lid = Rng.int rng (Graph.link_count g) in
        let c = 1 + Rng.int rng 60 in
        costs.(lid) <- c;
        Incremental.set_cost inc (Link.id_of_int lid) c;
        let fresh =
          Dijkstra.compute g ~cost:(fun l -> costs.(Link.id_to_int l)) root
        in
        Graph.iter_nodes g (fun n ->
            let a = Incremental.dist inc n in
            let b =
              if Spf_tree.reached fresh n then Spf_tree.dist fresh n else max_int
            in
            if a <> b then ok := false)
      done;
      !ok)

(* §2.2's motivation quantified: most cost changes on a mesh do not touch
   a given node's tree, so incremental SPF skips them outright. *)
let test_incremental_skip_rate () =
  let g = Routing_topology.Arpanet.topology () in
  let rng = Rng.create 3 in
  let costs = Array.make (Graph.link_count g) 30 in
  let inc =
    Incremental.create g ~root:(Node.of_int 0) ~initial_cost:(fun l ->
        costs.(Link.id_to_int l))
  in
  for _ = 1 to 500 do
    let lid = Rng.int rng (Graph.link_count g) in
    (* Increases only: the provable-skip case. *)
    let c = min 254 (costs.(lid) + 1 + Rng.int rng 40) in
    costs.(lid) <- c;
    Incremental.set_cost inc (Link.id_of_int lid) c
  done;
  let stats = Incremental.stats inc in
  Alcotest.(check bool)
    (Printf.sprintf "majority of increases ignored (%d/500)" stats.Incremental.updates_ignored)
    true
    (* ~39%% of links are on the probe tree, so ~61%% of random increases
       are provably irrelevant. *)
    (stats.Incremental.updates_ignored > 250);
  Alcotest.(check int) "never a full rebuild" 0 stats.Incremental.full_recomputes

(* --- Routing tables --- *)

let test_routing_table_traces () =
  let g = diamond () in
  let tables =
    Array.init (Graph.node_count g) (fun i ->
        Routing_table.of_tree
          (Dijkstra.compute g ~cost:(constant_cost 10) (Node.of_int i)))
  in
  let a = node g "A" and d = node g "D" in
  (match Routing_table.trace_route tables ~src:a ~dst:d with
  | Routing_table.Arrived links ->
    Alcotest.(check int) "one hop direct" 1 (List.length links)
  | _ -> Alcotest.fail "should arrive");
  Alcotest.(check int) "reachable count" 3
    (Routing_table.reachable_count tables.(Node.to_int a))

let prop_consistent_tables_are_loop_free =
  QCheck2.Test.make ~name:"consistent SPF tables never loop" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let g = random_graph seed in
      let cost = random_costs seed g in
      let tables =
        Array.init (Graph.node_count g) (fun i ->
            Routing_table.of_tree (Dijkstra.compute g ~cost (Node.of_int i)))
      in
      let ok = ref true in
      Graph.iter_nodes g (fun src ->
          Graph.iter_nodes g (fun dst ->
              if not (Node.equal src dst) then
                match Routing_table.trace_route tables ~src ~dst with
                | Routing_table.Arrived _ -> ()
                | Routing_table.Loop _ | Routing_table.Black_hole _ ->
                  ok := false));
      !ok)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_spf"
    [ ( "priority_queue",
        [ Alcotest.test_case "ordering" `Quick test_pq_ordering;
          Alcotest.test_case "peek/clear" `Quick test_pq_peek_and_clear ]
        @ qsuite [ prop_pq_sorts ] );
      ( "radix_queue",
        [ Alcotest.test_case "ordering" `Quick test_radix_ordering;
          Alcotest.test_case "monotone floor" `Quick
            test_radix_rejects_non_monotone;
          Alcotest.test_case "clear" `Quick test_radix_clear ]
        @ qsuite [ prop_radix_matches_priority_queue ] );
      ( "dijkstra",
        [ Alcotest.test_case "direct wins" `Quick test_dijkstra_direct_wins;
          Alcotest.test_case "reroutes" `Quick
            test_dijkstra_reroutes_around_expensive_link;
          Alcotest.test_case "deterministic ties" `Quick
            test_dijkstra_tie_break_neutral_deterministic;
          Alcotest.test_case "favor/avoid" `Quick test_dijkstra_favor_avoid;
          Alcotest.test_case "enabled" `Quick test_dijkstra_enabled;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "bad cost" `Quick test_dijkstra_rejects_bad_cost ]
        @ qsuite
            [ prop_dijkstra_optimality;
              prop_dijkstra_agrees_with_bellman_ford;
              prop_shortest_paths_hereditary ] );
      ( "spf_tree",
        [ Alcotest.test_case "paths and next hop" `Quick
            test_tree_paths_and_next_hop ] );
      ( "incremental",
        [ Alcotest.test_case "ignores irrelevant" `Quick
            test_incremental_ignores_irrelevant_increase;
          Alcotest.test_case "tracks change" `Quick test_incremental_tracks_change;
          Alcotest.test_case "skip rate (§2.2)" `Quick test_incremental_skip_rate ]
        @ qsuite [ prop_incremental_matches_full ] );
      ( "routing_table",
        [ Alcotest.test_case "traces" `Quick test_routing_table_traces ]
        @ qsuite [ prop_consistent_tables_are_loop_free ] ) ]

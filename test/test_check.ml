(* Tests for the routing_check static analyzer: the shipped scenarios
   and the built-in parameter table are clean, every test/fixtures/bad
   fixture trips exactly its diagnostic code, and the P0xx lint accepts
   precisely the paper-consistent tables (qcheck). *)

module Diagnostic = Routing_check.Diagnostic
module Checker = Routing_check.Checker
module Params_check = Routing_check.Params_check
module Stability_check = Routing_check.Stability_check
module Scenario_check = Routing_check.Scenario_check
module Src_check = Routing_check.Src_check
module Alloc_check = Routing_check.Alloc_check
module Domains_check = Routing_check.Domains_check
module Obs_json = Routing_obs.Json
module Generator_check = Routing_check.Generator_check
module Generators = Routing_topology.Generators
module Hnm_params = Routing_metric.Hnm_params
module Line_type = Routing_topology.Line_type

(* Tests run from _build/default/test; shipped scenarios are declared as
   deps one level up, fixtures live beside us. *)
let scenario name = Filename.concat ".." (Filename.concat "scenarios" name)

let fixture name = Filename.concat "fixtures/bad" name

let codes diags = List.map (fun d -> d.Diagnostic.code) diags

let has_code code diags =
  List.exists (fun d -> String.equal d.Diagnostic.code code) diags

let check_has_code ~what code diags =
  Alcotest.(check bool)
    (Printf.sprintf "%s raises %s (got: %s)" what code
       (String.concat " " (codes diags)))
    true (has_code code diags)

(* --- The shipped artifacts are clean (the CLI's exit-0 guarantee) --- *)

let test_shipped_scenarios_clean () =
  List.iter
    (fun name ->
      let diags = Checker.check_scenario_file (scenario name) in
      Alcotest.(check int)
        (Printf.sprintf "%s exits 0 (got: %s)" name
           (String.concat " " (codes diags)))
        0
        (Diagnostic.exit_code diags))
    [ "arpanet_peak.scn"; "milnet_peak.scn"; "two_region.scn";
      "outage_demo.scn" ]

let test_default_table_clean () =
  Alcotest.(check (list string))
    "Hnm_params.all passes its own lint" []
    (codes (Checker.check_default_table ()))

(* The real lib/ scan runs in CI (arpanet_check --src lib); here the
   closure computation and its L003 scoping are exercised on a
   synthetic source tree, which the test can fully control. *)
let test_spf_closure_scoping () =
  let root = Filename.temp_file "srctree" "" in
  Sys.remove root;
  Sys.mkdir root 0o755;
  let write_dir dir files =
    let d = Filename.concat root dir in
    Sys.mkdir d 0o755;
    List.iter
      (fun (name, text) ->
        Out_channel.with_open_text (Filename.concat d name) (fun oc ->
            output_string oc text))
      files
  in
  let state = "let cache = Hashtbl.create 16\n" in
  write_dir "spf"
    [ ("dune", "(library (name routing_spf) (libraries routing_core))\n") ];
  write_dir "core"
    [ ("dune", "(library (name routing_core))\n"); ("state.ml", state) ];
  write_dir "other"
    [ ("dune", "(library (name routing_other) (libraries routing_core))\n");
      ("state.ml", state) ]
  ;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote root))))
    (fun () ->
      Alcotest.(check (list string))
        "closure follows dune libraries, not siblings" [ "core"; "spf" ]
        (Src_check.spf_reachable ~root);
      let diags = Src_check.check_tree ~root in
      Alcotest.(check (list string)) "only the closure copy trips L003"
        [ "L003" ] (codes diags);
      match (List.hd diags).Diagnostic.location with
      | Some { Diagnostic.file; _ } ->
        Alcotest.(check bool) "in core/, not other/" true
          (Astring.String.is_infix ~affix:"core" file)
      | None -> Alcotest.fail "L003 should carry a location")

(* --- Each bad fixture triggers its specific code --- *)

let scenario_fixtures =
  [ ("empty.scn", "T001", 2);
    ("disconnected.scn", "T002", 2);
    ("unknown_node.scn", "S002", 2);
    ("no_trunk.scn", "S003", 2);
    ("syntax.scn", "S001", 2);
    ("double_down.scn", "S014", 1) ]

let test_scenario_fixtures () =
  List.iter
    (fun (name, code, exit_code) ->
      let diags = Checker.check_scenario_file (fixture name) in
      check_has_code ~what:name code diags;
      Alcotest.(check int)
        (Printf.sprintf "%s exit code" name)
        exit_code
        (Diagnostic.exit_code diags))
    scenario_fixtures

let params_fixtures =
  [ ("params_max_cost.json", "P001", 2);
    ("params_knee.json", "P002", 2);
    ("params_max_up.json", "P003", 2);
    ("params_max_down.json", "P004", 2);
    ("params_min_change.json", "P005", 2);
    ("params_slope.json", "P006", 2);
    ("params_bounds.json", "P007", 2);
    ("params_inversion.json", "P008", 1);
    ("params_duplicate.json", "P009", 2) ]

let test_params_fixtures () =
  List.iter
    (fun (name, code, exit_code) ->
      let diags, file = Checker.check_params_file (fixture name) in
      check_has_code ~what:name code diags;
      Alcotest.(check int)
        (Printf.sprintf "%s exit code" name)
        exit_code
        (Diagnostic.exit_code diags);
      Alcotest.(check bool)
        (Printf.sprintf "%s still decodes" name)
        true (Option.is_some file))
    params_fixtures

(* Several fixtures isolate their code: the rest of the entry is
   paper-consistent, so nothing else may fire. *)
let test_params_fixtures_isolated () =
  List.iter
    (fun (name, code) ->
      let diags, _ = Checker.check_params_file (fixture name) in
      Alcotest.(check (list string)) name [ code ] (codes diags))
    [ ("params_max_cost.json", "P001");
      ("params_max_up.json", "P003");
      ("params_max_down.json", "P004");
      ("params_min_change.json", "P005");
      ("params_bounds.json", "P007");
      ("params_inversion.json", "P008") ]

(* Switching the 0.5/0.5 averaging filter off turns the demo scenarios'
   benign R004 observation into the real R001 oscillation warning. *)
let test_ablation_triggers_r001 () =
  let diags, file =
    Checker.check_params_file (fixture "params_no_averaging.json")
  in
  Alcotest.(check (list string)) "ablation file lints clean" [] (codes diags);
  let options = { Checker.stability = true; params = file } in
  let diags =
    Checker.check_scenario_file ~options (scenario "two_region.scn")
  in
  check_has_code ~what:"two_region + averaging off" "R001" diags;
  (* ... and the full pipeline reports the same fixed point as R004. *)
  let full = Checker.check_scenario_file (scenario "two_region.scn") in
  check_has_code ~what:"two_region full pipeline" "R004" full;
  Alcotest.(check bool) "no R001 under the full pipeline" false
    (has_code "R001" full)

let src_fixtures =
  [ ("src/self_seed.ml", "L001", 1);
    ("src/wall_clock.ml", "L002", 2);
    ("src/global_state.ml", "L003", 2) ]

let test_src_fixtures () =
  List.iter
    (fun (name, code, count) ->
      let diags = Src_check.scan_file ~in_spf_closure:true (fixture name) in
      Alcotest.(check (list string))
        name
        (List.init count (fun _ -> code))
        (codes diags))
    src_fixtures

let test_src_lint_scoping () =
  (* L003 only applies inside the SPF dependency closure... *)
  Alcotest.(check (list string))
    "global state outside the closure is fine" []
    (codes
       (Src_check.scan_file ~in_spf_closure:false
          (fixture "src/global_state.ml")));
  (* ... and banned names inside comments or strings never count. *)
  let doc = Filename.temp_file "lint" ".ml" in
  Out_channel.with_open_text doc (fun oc ->
      output_string oc
        "(* Random.self_init is banned; so is Unix.gettimeofday *)\n\
         let banned = \"Random.self_init\"\n\
         let clock = \"Unix.gettimeofday\"\n");
  let diags = Src_check.scan_file ~in_spf_closure:true doc in
  Sys.remove doc;
  Alcotest.(check (list string)) "mentions are not uses" [] (codes diags)

(* The blanking behind the mentions-are-not-uses rule follows the real
   lexer: nested comments, strings containing "*)", '"' char literals
   (inside comments too) and {id|…|id} quoted strings all stay opaque,
   and the code after them is still scanned. *)
let test_src_comment_tricks () =
  let diags =
    Src_check.scan_file ~in_spf_closure:true (fixture "src/comment_tricks.ml")
  in
  Alcotest.(check (list string))
    "only the real use fires" [ "L001" ] (codes diags);
  match (List.hd diags).Diagnostic.location with
  | Some { Diagnostic.line = Some 14; _ } -> ()
  | _ -> Alcotest.fail "L001 should point at comment_tricks.ml line 14"

(* --- The compiled-artifact passes (A0xx / D0xx) --- *)

(* The fixture dune rules declare the .cmt / .cmx.dump artifacts as rule
   targets, so unlike the library tree they reliably exist beside us. *)

let test_alloc_fixtures () =
  let diags = Alloc_check.check ~roots:[ "fixtures/alloc" ] in
  Alcotest.(check (list string))
    "one A001 from alloc_bad, the A004 summary, nothing else"
    [ "A001"; "A004" ]
    (List.sort compare (codes diags));
  Alcotest.(check int) "allocation in a hot path is an error" 2
    (Diagnostic.exit_code diags);
  let a001 = List.find (fun d -> d.Diagnostic.code = "A001") diags in
  match a001.Diagnostic.location with
  | Some { Diagnostic.file = "alloc_bad.ml"; line = Some 3 } -> ()
  | _ -> Alcotest.fail "A001 should carry the compiler's alloc_bad.ml:3"

let test_domains_fixtures () =
  let diags = Domains_check.check ~roots:[ "fixtures/domains" ] in
  Alcotest.(check (list string))
    "one D001 from domains_bad, nothing from domains_good" [ "D001" ]
    (codes diags);
  let d001 = List.hd diags in
  match d001.Diagnostic.location with
  | Some { Diagnostic.file; line = Some 16 } ->
    Alcotest.(check string) "flagged in the bad fixture" "domains_bad.ml"
      (Filename.basename file)
  | _ -> Alcotest.fail "D001 should point at the captured-ref write"

(* --- Diagnostic merge: dedup, ordering, JSON schema --- *)

let diag_pool =
  [ Diagnostic.error ~file:"b.scn" ~line:4 ~code:"S002" "unknown node";
    Diagnostic.warning ~file:"a.scn" ~line:9 ~code:"T002" "disconnected";
    Diagnostic.error ~file:"a.scn" ~line:9 ~code:"T002" "unreachable core";
    Diagnostic.info ~code:"A004" "alloc summary";
    Diagnostic.error ~file:"b.scn" ~line:4 ~code:"S002" "unknown node";
    Diagnostic.warning ~file:"a.scn" ~line:2 ~code:"L001" "self seed" ]

let test_merge_dedup () =
  let merged = Diagnostic.merge diag_pool in
  (* Same code at the same site: the exact duplicate collapses, and the
     warning/error pair keeps only the error. *)
  Alcotest.(check (list string))
    "deduplicated and in report order"
    [ "A004"; "L001"; "T002"; "S002" ]
    (codes merged);
  let t002 = List.find (fun d -> d.Diagnostic.code = "T002") merged in
  Alcotest.(check string) "kept the max-severity message" "unreachable core"
    t002.Diagnostic.message

let report_string diags =
  Format.asprintf "%a" Diagnostic.pp_report (Diagnostic.merge diags)

let test_report_order_independent () =
  Alcotest.(check string) "byte-identical report either way"
    (report_string diag_pool)
    (report_string (List.rev diag_pool))

let prop_merge_order_independent =
  QCheck2.Test.make
    ~name:"merge is a pure function of the diagnostic set" ~count:200
    (QCheck2.Gen.shuffle_l diag_pool)
    (fun shuffled -> Diagnostic.merge shuffled = Diagnostic.merge diag_pool)

let json_field name json =
  match Obs_json.member name json with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let json_int name json =
  match Obs_json.to_int (json_field name json) with
  | Ok i -> i
  | Error e -> Alcotest.fail e

let test_json_schema () =
  let json = Diagnostic.report_to_json (Diagnostic.merge diag_pool) in
  Alcotest.(check int) "schema_version" Diagnostic.schema_version
    (json_int "schema_version" json);
  Alcotest.(check int) "top-level error count" 2 (json_int "errors" json);
  let summary = json_field "summary" json in
  Alcotest.(check int) "summary errors" 2 (json_int "errors" summary);
  Alcotest.(check int) "summary warnings" 1 (json_int "warnings" summary);
  Alcotest.(check int) "summary infos" 1 (json_int "infos" summary);
  let fam = json_field "by_family" summary in
  List.iter
    (fun key ->
      Alcotest.(check int) (key ^ " counted once") 1 (json_int key fam))
    [ "S0xx"; "T0xx"; "L0xx"; "A0xx" ]

let test_family () =
  List.iter
    (fun (code, fam) ->
      Alcotest.(check string) code fam (Diagnostic.family code))
    [ ("T002", "T0xx"); ("S101", "S1xx"); ("A001", "A0xx"); ("D005", "D0xx") ]

(* --- Generator specs (T02x) --- *)

let generator_fixtures =
  [ ("gen_shape.json", "T020", 2);
    ("gen_family.json", "T021", 2);
    ("gen_nodes.json", "T022", 2);
    ("gen_alpha.json", "T023", 2);
    ("gen_beta.json", "T024", 2);
    ("gen_sparse.json", "T025", 1) ]

let test_generator_fixtures () =
  List.iter
    (fun (name, code, exit_code) ->
      let diags, spec = Generator_check.check_file (fixture name) in
      check_has_code ~what:name code diags;
      Alcotest.(check int)
        (Printf.sprintf "%s exit code" name)
        exit_code
        (Diagnostic.exit_code diags);
      (* Errors never hand back a spec; mere warnings still do. *)
      Alcotest.(check bool)
        (Printf.sprintf "%s spec presence" name)
        (exit_code < 2) (Option.is_some spec))
    generator_fixtures

let test_generator_fixture_counts () =
  (* gen_nodes breaks all three hierarchical sizes: one T022 each. *)
  let diags, _ = Generator_check.check_file (fixture "gen_nodes.json") in
  Alcotest.(check (list string))
    "every bad size reported" [ "T022"; "T022"; "T022" ] (codes diags)

let test_generator_lint_accepts_valid_specs () =
  List.iter
    (fun spec ->
      Alcotest.(check (list string))
        "valid spec lints clean" [] (codes (Generator_check.lint spec)))
    [ Generators.Waxman { nodes = 1000; alpha = 0.9; beta = 0.05 };
      Generators.Hierarchical
        { cores = 4; pops_per_core = 5; access_per_pop = 8 } ]

(* --- Located diagnostics (the file:line satellite) --- *)

let test_scenario_errors_carry_lines () =
  let diags = Checker.check_scenario_file (fixture "unknown_node.scn") in
  let s002 = List.find (fun d -> d.Diagnostic.code = "S002") diags in
  match s002.Diagnostic.location with
  | Some { Diagnostic.file; line = Some 4 } ->
    Alcotest.(check bool) "location names the fixture" true
      (Filename.basename file = "unknown_node.scn")
  | _ -> Alcotest.fail "S002 should point at unknown_node.scn line 4"

(* --- qcheck: the P0xx lint vs the table constructor --- *)

(* A paper-consistent entry for an arbitrary base_min: what
   Hnm_params.make computes, rebuilt here so the property covers bases
   the built-in table never uses. *)
let consistent_entry lt base_min =
  { Hnm_params.line_type = lt;
    base_min;
    max_cost = 3 * base_min;
    slope = float_of_int (4 * base_min);
    offset = -.float_of_int base_min;
    max_up = (base_min / 2) + 1;
    max_down = base_min / 2;
    min_change = (base_min / 2) - 1 }

let line_type_gen =
  QCheck2.Gen.map
    (fun i -> List.nth Line_type.all (i mod List.length Line_type.all))
    QCheck2.Gen.(int_range 0 (List.length Line_type.all - 1))

let prop_builtin_entries_pass =
  QCheck2.Test.make ~name:"every built-in table entry passes the P0xx lint"
    ~count:100 line_type_gen (fun lt ->
      Params_check.check_params (Hnm_params.for_line_type lt) = [])

let prop_consistent_entries_pass =
  (* 84 is the largest base_min whose 3x max_cost still fits in the
     8-bit reportable range (254). *)
  QCheck2.Test.make ~name:"paper-consistent entries pass for any base_min"
    ~count:200
    QCheck2.Gen.(pair line_type_gen (int_range 1 84))
    (fun (lt, base_min) ->
      Params_check.check_params (consistent_entry lt base_min) = [])

let prop_broken_max_cost_fails =
  QCheck2.Test.make ~name:"any max_cost off 3x base_min trips P001"
    ~count:200
    QCheck2.Gen.(triple line_type_gen (int_range 1 84) (int_range 1 50))
    (fun (lt, base_min, delta) ->
      let entry =
        { (consistent_entry lt base_min) with
          Hnm_params.max_cost = (3 * base_min) + delta }
      in
      has_code "P001" (Params_check.check_params entry))

(* --- Suite --- *)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "check"
    [ ("clean",
       [ Alcotest.test_case "shipped scenarios" `Quick
           test_shipped_scenarios_clean;
         Alcotest.test_case "default table" `Quick test_default_table_clean;
         Alcotest.test_case "spf closure" `Quick test_spf_closure_scoping ]);
      ("fixtures",
       [ Alcotest.test_case "scenarios" `Quick test_scenario_fixtures;
         Alcotest.test_case "params" `Quick test_params_fixtures;
         Alcotest.test_case "params isolated" `Quick
           test_params_fixtures_isolated;
         Alcotest.test_case "ablation R001" `Quick
           test_ablation_triggers_r001;
         Alcotest.test_case "src" `Quick test_src_fixtures;
         Alcotest.test_case "src scoping" `Quick test_src_lint_scoping;
         Alcotest.test_case "src comment tricks" `Quick
           test_src_comment_tricks;
         Alcotest.test_case "alloc artifacts" `Quick test_alloc_fixtures;
         Alcotest.test_case "domains artifacts" `Quick
           test_domains_fixtures;
         Alcotest.test_case "generators" `Quick test_generator_fixtures;
         Alcotest.test_case "generators counted" `Quick
           test_generator_fixture_counts;
         Alcotest.test_case "generators clean" `Quick
           test_generator_lint_accepts_valid_specs;
         Alcotest.test_case "locations" `Quick
           test_scenario_errors_carry_lines ]);
      ("diagnostics",
       [ Alcotest.test_case "merge dedup" `Quick test_merge_dedup;
         Alcotest.test_case "report order-independent" `Quick
           test_report_order_independent;
         Alcotest.test_case "json schema" `Quick test_json_schema;
         Alcotest.test_case "families" `Quick test_family ]);
      ("properties",
       qsuite
         [ prop_builtin_entries_pass;
           prop_consistent_entries_pass;
           prop_broken_max_cost_fails;
           prop_merge_order_independent ]) ]

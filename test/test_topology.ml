(* Unit and property tests for the routing_topology library. *)

open Routing_topology
module Rng = Routing_stats.Rng

(* --- Node / Line_type / Link basics --- *)

let test_node_basics () =
  let n = Node.of_int 3 in
  Alcotest.(check int) "roundtrip" 3 (Node.to_int n);
  Alcotest.(check bool) "equal" true (Node.equal n (Node.of_int 3));
  Alcotest.check_raises "negative" (Invalid_argument "Node.of_int: negative id")
    (fun () -> ignore (Node.of_int (-1)))

let test_line_type_catalogue () =
  Alcotest.(check int) "eight line types" 8 (List.length Line_type.all);
  List.iteri
    (fun i lt ->
      Alcotest.(check int) "index roundtrip" i (Line_type.index lt);
      Alcotest.(check bool) "of_index" true
        (Line_type.equal lt (Line_type.of_index i));
      Alcotest.(check bool) "of_name" true
        (match Line_type.of_name (Line_type.name lt) with
        | Some lt' -> Line_type.equal lt lt'
        | None -> false))
    Line_type.all

let test_line_type_properties () =
  Alcotest.(check (float 0.)) "56T bandwidth" 56_000.
    (Line_type.bandwidth_bps Line_type.T56);
  Alcotest.(check bool) "satellite flag" true (Line_type.is_satellite Line_type.S56);
  Alcotest.(check bool) "terrestrial flag" false
    (Line_type.is_satellite Line_type.T448);
  Alcotest.(check int) "dual trunk" 2 (Line_type.trunk_count Line_type.T112);
  Alcotest.(check bool) "satellite propagation" true
    (Line_type.default_propagation_s Line_type.S9_6
    > Line_type.default_propagation_s Line_type.T9_6)

let small_graph () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let _ = Builder.trunk b Line_type.T56 "B" "C" in
  let _ = Builder.trunk b Line_type.T9_6 "A" "C" in
  Builder.build b

let test_builder_basics () =
  let g = small_graph () in
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "simplex links" 6 (Graph.link_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check string) "node name" "A"
    (Graph.node_name g (Option.get (Graph.node_by_name g "A")))

let test_builder_dedups_nodes () =
  let b = Builder.create () in
  let n1 = Builder.add_node b "X" in
  let n2 = Builder.add_node b "X" in
  Alcotest.(check bool) "same id for same name" true (Node.equal n1 n2)

let test_builder_rejects_self_loop () =
  let b = Builder.create () in
  Alcotest.check_raises "self loop" (Invalid_argument "Builder.trunk: self-loop")
    (fun () -> ignore (Builder.trunk b Line_type.T56 "A" "A"))

let test_graph_reverse_pairing () =
  let g = small_graph () in
  Graph.iter_links g (fun l ->
      let r = Graph.reverse g l in
      Alcotest.(check bool) "reverse endpoints" true
        (Node.equal r.Link.src l.Link.dst && Node.equal r.Link.dst l.Link.src);
      Alcotest.(check bool) "reverse of reverse" true
        (Link.id_equal (Graph.reverse g r).Link.id l.Link.id);
      Alcotest.(check bool) "same line type" true
        (Line_type.equal r.Link.line_type l.Link.line_type))

let test_graph_adjacency () =
  let g = small_graph () in
  let a = Option.get (Graph.node_by_name g "A") in
  Alcotest.(check int) "degree of A" 2 (Graph.degree g a);
  let b = Option.get (Graph.node_by_name g "B") in
  (match Graph.find_link g ~src:a ~dst:b with
  | Some l ->
    Alcotest.(check bool) "find_link endpoints" true
      (Node.equal l.Link.src a && Node.equal l.Link.dst b)
  | None -> Alcotest.fail "A-B link missing");
  Alcotest.(check bool) "no direct link to self" true
    (Graph.find_link g ~src:a ~dst:a = None)

let test_graph_disconnected_detected () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let _ = Builder.trunk b Line_type.T56 "C" "D" in
  Alcotest.(check bool) "disconnected" false (Graph.is_connected (Builder.build b))

let test_link_transmission () =
  let g = small_graph () in
  let l = Graph.link g (Link.id_of_int 0) in
  Alcotest.(check (float 1e-9)) "600 bits on 56k" (600. /. 56_000.)
    (Link.transmission_s l ~bits:600.)

(* --- Generators --- *)

let test_two_region () =
  let g, (a, b) = Generators.two_region () in
  Alcotest.(check int) "16 nodes" 16 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  let la = Graph.link g a and lb = Graph.link g b in
  Alcotest.(check string) "bridge A from L0" "L0" (Graph.node_name g la.Link.src);
  Alcotest.(check string) "bridge B from L1" "L1" (Graph.node_name g lb.Link.src);
  (* Removing both bridges must disconnect the regions: every L->R path
     crosses one of them. *)
  let bridgeless = ref 0 in
  Graph.iter_links g (fun l ->
      let sn = Graph.node_name g l.Link.src and dn = Graph.node_name g l.Link.dst in
      if sn.[0] <> dn.[0] then incr bridgeless);
  Alcotest.(check int) "exactly two inter-region trunks (4 simplex)" 4 !bridgeless

let test_ring () =
  let g = Generators.ring 5 in
  Alcotest.(check int) "nodes" 5 (Graph.node_count g);
  Alcotest.(check int) "links" 10 (Graph.link_count g);
  Graph.iter_nodes g (fun n -> Alcotest.(check int) "degree 2" 2 (Graph.degree g n))

let test_line_and_mesh () =
  let g = Generators.line 4 in
  Alcotest.(check int) "line links" 6 (Graph.link_count g);
  let m = Generators.full_mesh 4 in
  Alcotest.(check int) "mesh links" 12 (Graph.link_count m)

let prop_ring_chord_connected =
  QCheck2.Test.make ~name:"ring_chord always connected" ~count:50
    QCheck2.Gen.(triple (int_range 0 1000) (int_range 3 40) (int_range 0 30))
    (fun (seed, nodes, chords) ->
      let g = Generators.ring_chord (Rng.create seed) ~nodes ~chords in
      Graph.is_connected g && Graph.node_count g = nodes)

let prop_random_geometric_connected =
  QCheck2.Test.make ~name:"random_geometric always connected" ~count:30
    QCheck2.Gen.(pair (int_range 0 1000) (int_range 2 40))
    (fun (seed, nodes) ->
      let g = Generators.random_geometric (Rng.create seed) ~nodes ~radius:0.25 in
      Graph.is_connected g)

let link_pairs g =
  let acc = ref [] in
  Graph.iter_links g (fun l ->
      acc := (Node.to_int l.Link.src, Node.to_int l.Link.dst) :: !acc);
  List.rev !acc

let prop_waxman_connected_and_deterministic =
  QCheck2.Test.make ~name:"waxman connected and seed-deterministic" ~count:25
    QCheck2.Gen.(triple (int_range 0 1000) (int_range 2 120) (int_range 1 10))
    (fun (seed, nodes, b10) ->
      let beta = float_of_int b10 /. 10. in
      let gen () =
        Generators.waxman (Rng.create seed) ~nodes ~alpha:0.9 ~beta
      in
      let g = gen () in
      Graph.node_count g = nodes
      && Graph.is_connected g
      && link_pairs g = link_pairs (gen ()))

let test_waxman_rejects_bad_parameters () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  let w ?(nodes = 10) ?(alpha = 0.5) ?(beta = 0.5) () =
    Generators.waxman (Rng.create 1) ~nodes ~alpha ~beta
  in
  Alcotest.(check bool) "nodes < 2" true (bad (w ~nodes:1));
  Alcotest.(check bool) "alpha = 0" true (bad (w ~alpha:0.));
  Alcotest.(check bool) "alpha > 1" true (bad (w ~alpha:1.5));
  Alcotest.(check bool) "beta = 0" true (bad (w ~beta:0.));
  Alcotest.(check bool) "beta > 1" true (bad (w ~beta:1.01));
  Alcotest.(check bool) "valid corner accepted" false
    (bad (w ~alpha:1.0 ~beta:1.0))

let test_hierarchical_shape () =
  let g =
    Generators.hierarchical ~cores:4 ~pops_per_core:5 ~access_per_pop:8 ()
  in
  Alcotest.(check int) "node count = cores*(1+pops*(1+access))" 184
    (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Purely structural, so two builds are identical. *)
  let g' =
    Generators.hierarchical ~cores:4 ~pops_per_core:5 ~access_per_pop:8 ()
  in
  Alcotest.(check bool) "deterministic" true (link_pairs g = link_pairs g');
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "cores < 3 rejected" true
    (bad (fun () ->
         Generators.hierarchical ~cores:2 ~pops_per_core:1 ~access_per_pop:0
           ()))

let test_generator_spec () =
  let h =
    Generators.Hierarchical
      { cores = 3; pops_per_core = 2; access_per_pop = 1 }
  in
  Alcotest.(check int) "hierarchical spec size" 15 (Generators.spec_nodes h);
  let w = Generators.Waxman { nodes = 40; alpha = 0.9; beta = 0.4 } in
  Alcotest.(check int) "waxman spec size" 40 (Generators.spec_nodes w);
  List.iter
    (fun spec ->
      let g = Generators.of_spec (Rng.create 5) spec in
      Alcotest.(check int)
        "of_spec honors spec_nodes" (Generators.spec_nodes spec)
        (Graph.node_count g);
      Alcotest.(check bool) "of_spec connected" true (Graph.is_connected g))
    [ h; w ]

(* --- ARPANET / MILNET topologies --- *)

let test_arpanet_shape () =
  let g = Arpanet.topology () in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check int) "node count" 57 (Graph.node_count g);
  Alcotest.(check bool) "size ~72 trunks" true (Graph.link_count g / 2 = 72);
  let avg = Graph.average_degree g in
  Alcotest.(check bool) "mesh density like 1987 ARPANET" true
    (avg > 2.2 && avg < 3.2);
  (* Satellite links present: Hawaii, Norway, domestic. *)
  let sats = ref 0 in
  Graph.iter_links g (fun l -> if Line_type.is_satellite l.Link.line_type then incr sats);
  Alcotest.(check int) "three satellite trunks" 6 !sats

let test_arpanet_bridges () =
  let g = Arpanet.topology () in
  let bridges = Arpanet.bridge_links g in
  Alcotest.(check int) "five cross-country trunks, both directions" 10
    (List.length bridges);
  let l = Arpanet.representative_link g in
  Alcotest.(check bool) "representative is 56T" true
    (Line_type.equal l.Link.line_type Line_type.T56)

let test_arpanet_traffic () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let total = Traffic_matrix.total_bps tm in
  Alcotest.(check bool) "total near 366 kb/s" true
    (total > 300_000. && total < 450_000.);
  (* No node may offer more traffic than its access lines can carry. *)
  Graph.iter_nodes g (fun node ->
      let cap =
        List.fold_left (fun acc l -> acc +. Link.capacity_bps l) 0.
          (Graph.out_links g node)
      in
      Alcotest.(check bool)
        (Printf.sprintf "access-feasible at %s" (Graph.node_name g node))
        true
        (Traffic_matrix.offered_from tm node <= cap))

let test_milnet_shape () =
  let g = Milnet.topology () in
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  (* Heterogeneous trunking: all bandwidth classes appear. *)
  let seen = Hashtbl.create 8 in
  Graph.iter_links g (fun l -> Hashtbl.replace seen l.Link.line_type ());
  Alcotest.(check bool) "uses multi-trunk bundles" true
    (Hashtbl.mem seen Line_type.T448 && Hashtbl.mem seen Line_type.T112);
  Alcotest.(check bool) "uses satellite" true
    (Hashtbl.mem seen Line_type.S56 && Hashtbl.mem seen Line_type.S112);
  Alcotest.(check bool) "uses 9.6 tails" true (Hashtbl.mem seen Line_type.T9_6)

(* --- Traffic matrix --- *)

let test_tm_set_get () =
  let tm = Traffic_matrix.create ~nodes:4 in
  let n = Node.of_int in
  Traffic_matrix.set tm ~src:(n 0) ~dst:(n 1) 100.;
  Alcotest.(check (float 0.)) "get" 100. (Traffic_matrix.get tm ~src:(n 0) ~dst:(n 1));
  Traffic_matrix.set tm ~src:(n 2) ~dst:(n 2) 50.;
  Alcotest.(check (float 0.)) "diagonal forced zero" 0.
    (Traffic_matrix.get tm ~src:(n 2) ~dst:(n 2));
  Traffic_matrix.add tm ~src:(n 0) ~dst:(n 1) 20.;
  Alcotest.(check (float 0.)) "add accumulates" 120.
    (Traffic_matrix.get tm ~src:(n 0) ~dst:(n 1));
  Traffic_matrix.set tm ~src:(n 0) ~dst:(n 3) (-5.);
  Alcotest.(check (float 0.)) "negative clamped" 0.
    (Traffic_matrix.get tm ~src:(n 0) ~dst:(n 3))

let test_tm_scale_copy () =
  let tm = Traffic_matrix.uniform ~nodes:3 ~pair_bps:10. in
  Alcotest.(check (float 1e-9)) "uniform total" 60. (Traffic_matrix.total_bps tm);
  let double = Traffic_matrix.scale tm 2. in
  Alcotest.(check (float 1e-9)) "scaled" 120. (Traffic_matrix.total_bps double);
  Alcotest.(check (float 1e-9)) "original untouched" 60.
    (Traffic_matrix.total_bps tm);
  let c = Traffic_matrix.copy tm in
  Traffic_matrix.set c ~src:(Node.of_int 0) ~dst:(Node.of_int 1) 0.;
  Alcotest.(check (float 1e-9)) "copy is independent" 60.
    (Traffic_matrix.total_bps tm)

let test_tm_gravity_total () =
  let tm = Traffic_matrix.gravity (Rng.create 3) ~nodes:10 ~total_bps:1000. in
  Alcotest.(check (float 1e-6)) "gravity hits requested total" 1000.
    (Traffic_matrix.total_bps tm);
  Alcotest.(check int) "all pairs flow" 90 (Traffic_matrix.flow_count tm)

let test_tm_hotspot () =
  let n = Node.of_int in
  let tm =
    Traffic_matrix.hotspot (Rng.create 5) ~nodes:4 ~background_bps:10.
      ~hotspots:[ (n 0, n 3, 500.) ]
  in
  Alcotest.(check bool) "hotspot dominates" true
    (Traffic_matrix.get tm ~src:(n 0) ~dst:(n 3) > 400.);
  Alcotest.(check bool) "background jittered around 10" true
    (let v = Traffic_matrix.get tm ~src:(n 1) ~dst:(n 2) in
     v > 7.9 && v < 12.1)

(* --- Graph analysis --- *)

(* Brute force ground truths. *)
let connected_without g ~dead_links ~dead_node =
  let n = Graph.node_count g in
  let alive i = Some i <> dead_node in
  let start =
    let rec find i = if alive i then i else find (i + 1) in
    find 0
  in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(start) <- true;
  Queue.add (Node.of_int start) queue;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let node = Queue.pop queue in
    List.iter
      (fun (l : Link.t) ->
        let j = Node.to_int l.Link.dst in
        if
          alive j
          && (not (List.mem (Link.id_to_int l.Link.id) dead_links))
          && not seen.(j)
        then begin
          seen.(j) <- true;
          incr count;
          Queue.add l.Link.dst queue
        end)
      (Graph.out_links g node)
  done;
  let alive_total = if dead_node = None then n else n - 1 in
  !count = alive_total

let prop_bridges_match_brute_force =
  QCheck2.Test.make ~name:"bridges = brute force" ~count:30
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nodes = 3 + Rng.int rng 12 in
      let g = Generators.ring_chord rng ~nodes ~chords:(Rng.int rng 4) in
      let declared =
        Graph_analysis.bridges g
        |> List.map (fun (l : Link.t) -> Link.id_to_int l.Link.id)
      in
      let ok = ref true in
      Graph.iter_links g (fun (l : Link.t) ->
          if Link.id_compare l.Link.id l.Link.reverse < 0 then begin
            let cut =
              not
                (connected_without g
                   ~dead_links:
                     [ Link.id_to_int l.Link.id;
                       Link.id_to_int l.Link.reverse ]
                   ~dead_node:None)
            in
            if cut <> List.mem (Link.id_to_int l.Link.id) declared then
              ok := false
          end);
      !ok)

let prop_articulation_match_brute_force =
  QCheck2.Test.make ~name:"articulation points = brute force" ~count:30
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nodes = 3 + Rng.int rng 12 in
      let g = Generators.ring_chord rng ~nodes ~chords:(Rng.int rng 4) in
      let declared =
        Graph_analysis.articulation_points g |> List.map Node.to_int
      in
      let ok = ref true in
      Graph.iter_nodes g (fun node ->
          let i = Node.to_int node in
          let cut =
            not (connected_without g ~dead_links:[] ~dead_node:(Some i))
          in
          if cut <> List.mem i declared then ok := false);
      !ok)

let test_analysis_ring_has_no_bridges () =
  let g = Generators.ring 6 in
  Alcotest.(check int) "ring: no bridges" 0
    (List.length (Graph_analysis.bridges g));
  Alcotest.(check int) "ring: no articulation" 0
    (List.length (Graph_analysis.articulation_points g));
  Alcotest.(check int) "ring diameter" 3 (Graph_analysis.diameter_hops g)

let test_analysis_line_all_bridges () =
  let g = Generators.line 4 in
  Alcotest.(check int) "every trunk a bridge" 3
    (List.length (Graph_analysis.bridges g));
  Alcotest.(check int) "inner nodes articulate" 2
    (List.length (Graph_analysis.articulation_points g))

let test_analysis_parallel_trunk_not_bridge () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let _ = Builder.trunk b Line_type.T56 "B" "C" in
  let g = Builder.build b in
  let bridge_names =
    Graph_analysis.bridges g
    |> List.map (fun (l : Link.t) ->
           Graph.node_name g l.Link.src ^ Graph.node_name g l.Link.dst)
  in
  Alcotest.(check (list string)) "only the single B-C trunk" [ "BC" ]
    bridge_names

let test_analysis_arpanet () =
  let g = Arpanet.topology () in
  let cut_trunks = Graph_analysis.bridges g in
  (* The tails: LINC's pair is a cycle... count what brute force counts. *)
  Alcotest.(check bool) "a handful of tail bridges" true
    (List.length cut_trunks >= 4 && List.length cut_trunks <= 12);
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let captive = Graph_analysis.captive_traffic_fraction g tm in
  (* Fig 8's floor: the response map levels off near 0.13 because that is
     (roughly) the captive share of traffic. *)
  Alcotest.(check bool)
    (Printf.sprintf "captive fraction plausible (%.3f)" captive)
    true
    (captive > 0.03 && captive < 0.25);
  Alcotest.(check bool) "diameter like the 1987 net" true
    (Graph_analysis.diameter_hops g >= 8 && Graph_analysis.diameter_hops g <= 16)

(* --- DOT export --- *)

let test_dot_export () =
  let g = Arpanet.topology () in
  let dot =
    Dot.to_dot ~label:"arpanet"
      ~utilization:(fun (l : Link.t) ->
        if Link.id_to_int l.Link.id = 0 then Some 0.99 else Some 0.1)
      g
  in
  Alcotest.(check bool) "graph block" true
    (Astring.String.is_prefix ~affix:"graph network {" dot);
  Alcotest.(check bool) "one edge per trunk" true
    (let count = ref 0 in
     String.iteri (fun i c -> if c = '-' && i > 0 && dot.[i-1] = '-' then incr count) dot;
     !count = Graph.link_count g / 2);
  Alcotest.(check bool) "hot edge red" true
    (Astring.String.is_infix ~affix:"color=red" dot);
  Alcotest.(check bool) "cool edges green" true
    (Astring.String.is_infix ~affix:"color=forestgreen" dot);
  Alcotest.(check bool) "satellite dashed" true
    (Astring.String.is_infix ~affix:"style=dashed" dot);
  Alcotest.(check bool) "label present" true
    (Astring.String.is_infix ~affix:"label=\"arpanet\"" dot)

(* --- Serialization --- *)

let test_serial_roundtrip_arpanet () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let text = Serial.to_string g (Some tm) in
  match Serial.of_string text with
  | Error e -> Alcotest.fail e
  | Ok (g', tm') ->
    Alcotest.(check int) "nodes preserved" (Graph.node_count g)
      (Graph.node_count g');
    Alcotest.(check int) "links preserved" (Graph.link_count g)
      (Graph.link_count g');
    Graph.iter_nodes g (fun n ->
        let name = Graph.node_name g n in
        Alcotest.(check bool) "node names preserved" true
          (Graph.node_by_name g' name <> None));
    Alcotest.(check bool) "traffic total preserved" true
      (Float.abs (Traffic_matrix.total_bps tm -. Traffic_matrix.total_bps tm')
      < 1e-2 *. Traffic_matrix.total_bps tm);
    (* Link structure: same line-type multiset per node pair. *)
    Graph.iter_links g (fun l ->
        let a = Graph.node_name g l.Link.src and b = Graph.node_name g l.Link.dst in
        match
          ( Graph.node_by_name g' a,
            Graph.node_by_name g' b )
        with
        | Some a', Some b' ->
          (match Graph.find_link g' ~src:a' ~dst:b' with
          | Some l' ->
            Alcotest.(check bool) "line type preserved" true
              (Line_type.equal l.Link.line_type l'.Link.line_type)
          | None -> Alcotest.fail "missing link after roundtrip")
        | _ -> Alcotest.fail "missing node after roundtrip")

let test_serial_parse_errors () =
  let check_error text expected_fragment =
    match Serial.of_string text with
    | Ok _ -> Alcotest.fail ("expected parse error for: " ^ text)
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e expected_fragment)
        true
        (Astring.String.is_infix ~affix:expected_fragment e)
  in
  check_error "trunk A B 77T" "unknown line type";
  check_error "trunk A A 56T" "self-loop";
  check_error "frobnicate X" "unrecognized";
  check_error "demand A B 100" "unknown node";
  check_error "trunk A B 56T -0.5" "bad propagation";
  check_error "trunk A B 56T\ndemand A B x" "bad demand"

let test_serial_comments_and_blanks () =
  let text =
    "# a scenario\n\n  trunk A B 56T 0.001  # inline comment\ndemand A B 5000\n"
  in
  match Serial.of_string text with
  | Error e -> Alcotest.fail e
  | Ok (g, tm) ->
    Alcotest.(check int) "two nodes" 2 (Graph.node_count g);
    Alcotest.(check (float 1e-9)) "demand read" 5000. (Traffic_matrix.total_bps tm)

let prop_serial_roundtrip_random =
  QCheck2.Test.make ~name:"serial roundtrip on random scenarios" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nodes = 3 + Rng.int rng 15 in
      (* Random line types per chord require a custom build. *)
      let b = Builder.create () in
      for i = 0 to nodes - 1 do
        let lt = Line_type.of_index (Rng.int rng 8) in
        ignore
          (Builder.trunk b lt
             (Printf.sprintf "N%d" i)
             (Printf.sprintf "N%d" ((i + 1) mod nodes)))
      done;
      let g = Builder.build b in
      let tm = Traffic_matrix.gravity rng ~nodes ~total_bps:5000. in
      match Serial.of_string (Serial.to_string g (Some tm)) with
      | Error _ -> false
      | Ok (g', tm') ->
        Graph.node_count g' = Graph.node_count g
        && Graph.link_count g' = Graph.link_count g
        && Float.abs (Traffic_matrix.total_bps tm' -. Traffic_matrix.total_bps tm)
           (* demands print at 3 decimals: up to 0.0005 bps error each *)
           < 0.001 *. float_of_int (Traffic_matrix.flow_count tm))

(* Fuzz: the parser returns Result on arbitrary junk, never raises. *)
let prop_serial_parser_total =
  QCheck2.Test.make ~name:"serial parser never raises" ~count:300
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 200))
    (fun text ->
      match Serial.of_string text with Ok _ | Error _ -> true)

let prop_tm_offered_from_consistent =
  QCheck2.Test.make ~name:"offered_from equals row sum" ~count:50
    QCheck2.Gen.(pair (int_range 0 500) (int_range 2 12))
    (fun (seed, nodes) ->
      let tm = Traffic_matrix.gravity (Rng.create seed) ~nodes ~total_bps:1e4 in
      let ok = ref true in
      for s = 0 to nodes - 1 do
        let row =
          Traffic_matrix.fold tm ~init:0. ~f:(fun acc ~src ~dst:_ v ->
              if Node.to_int src = s then acc +. v else acc)
        in
        if Float.abs (row -. Traffic_matrix.offered_from tm (Node.of_int s)) > 1e-6
        then ok := false
      done;
      !ok)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_topology"
    [ ( "basics",
        [ Alcotest.test_case "node" `Quick test_node_basics;
          Alcotest.test_case "line type catalogue" `Quick test_line_type_catalogue;
          Alcotest.test_case "line type properties" `Quick test_line_type_properties;
          Alcotest.test_case "link transmission" `Quick test_link_transmission ] );
      ( "builder+graph",
        [ Alcotest.test_case "builder" `Quick test_builder_basics;
          Alcotest.test_case "dedup nodes" `Quick test_builder_dedups_nodes;
          Alcotest.test_case "self loop" `Quick test_builder_rejects_self_loop;
          Alcotest.test_case "reverse pairing" `Quick test_graph_reverse_pairing;
          Alcotest.test_case "adjacency" `Quick test_graph_adjacency;
          Alcotest.test_case "disconnected" `Quick test_graph_disconnected_detected ]
      );
      ( "generators",
        [ Alcotest.test_case "two region" `Quick test_two_region;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "line and mesh" `Quick test_line_and_mesh;
          Alcotest.test_case "waxman parameter guard" `Quick
            test_waxman_rejects_bad_parameters;
          Alcotest.test_case "hierarchical shape" `Quick
            test_hierarchical_shape;
          Alcotest.test_case "generator specs" `Quick test_generator_spec ]
        @ qsuite
            [ prop_ring_chord_connected;
              prop_random_geometric_connected;
              prop_waxman_connected_and_deterministic ] );
      ( "arpanet+milnet",
        [ Alcotest.test_case "arpanet shape" `Quick test_arpanet_shape;
          Alcotest.test_case "arpanet bridges" `Quick test_arpanet_bridges;
          Alcotest.test_case "arpanet traffic" `Quick test_arpanet_traffic;
          Alcotest.test_case "milnet shape" `Quick test_milnet_shape ] );
      ( "analysis",
        [ Alcotest.test_case "ring" `Quick test_analysis_ring_has_no_bridges;
          Alcotest.test_case "line" `Quick test_analysis_line_all_bridges;
          Alcotest.test_case "parallel trunk" `Quick
            test_analysis_parallel_trunk_not_bridge;
          Alcotest.test_case "arpanet" `Quick test_analysis_arpanet ]
        @ qsuite
            [ prop_bridges_match_brute_force;
              prop_articulation_match_brute_force ] );
      ( "dot",
        [ Alcotest.test_case "export" `Quick test_dot_export ] );
      ( "serial",
        [ Alcotest.test_case "arpanet roundtrip" `Quick test_serial_roundtrip_arpanet;
          Alcotest.test_case "parse errors" `Quick test_serial_parse_errors;
          Alcotest.test_case "comments" `Quick test_serial_comments_and_blanks ]
        @ qsuite [ prop_serial_roundtrip_random; prop_serial_parser_total ] );
      ( "traffic_matrix",
        [ Alcotest.test_case "set/get" `Quick test_tm_set_get;
          Alcotest.test_case "scale/copy" `Quick test_tm_scale_copy;
          Alcotest.test_case "gravity" `Quick test_tm_gravity_total;
          Alcotest.test_case "hotspot" `Quick test_tm_hotspot ]
        @ qsuite [ prop_tm_offered_from_consistent ] ) ]

(* Tests for the sweep subsystem and the aggregated flow assignment.

   The load-bearing contracts:
   + Load_assign.assign distributes exactly the same load as the
     historical per-flow tree climb (qcheck, random topologies and
     traffic; first hops exactly equal, offered loads equal to rounding);
   + Domain_pool.parallel_for_dynamic runs every index exactly once
     under any (domains, grain) — the steal protocol cannot drop or
     duplicate work (qcheck, uneven bodies to force stealing);
   + Sweep_engine reports are byte-identical under any domain count,
     shard layout, or resume history (work-stealing handout, hash-keyed
     merge, and registry regeneration are all order-independent).

   Plus the S1xx spec lint: every fixture trips exactly its code, the
   --shard argument grammar (S107), and the shipped example spec is
   clean. *)

module Node = Routing_topology.Node
module Link = Routing_topology.Link
module Graph = Routing_topology.Graph
module Generators = Routing_topology.Generators
module Rng = Routing_stats.Rng
module Metric = Routing_metric.Metric
module Spf_engine = Routing_spf.Spf_engine
module Load_assign = Routing_sim.Load_assign
module Flow_store = Routing_sim.Flow_store
module Domain_pool = Routing_metric.Domain_pool
module Sweep_spec = Routing_sweep.Sweep_spec
module Sweep_engine = Routing_sweep.Sweep_engine
module Sweep_check = Routing_check.Sweep_check
module Diagnostic = Routing_check.Diagnostic
module Obs_json = Routing_obs.Json
module Obs_metrics = Routing_obs.Metrics

let scenario name = Filename.concat ".." (Filename.concat "scenarios" name)

let fixture name = Filename.concat "fixtures/bad" name

(* --- aggregated assignment vs the per-flow baseline ---------------- *)

(* A random connected graph, random admissible link costs, and a random
   flow set (duplicates and self-flows included — both must be handled). *)
let assignment_case =
  QCheck.make ~print:(fun (seed, nodes, chords, nf) ->
      Printf.sprintf "seed=%d nodes=%d chords=%d flows=%d" seed nodes chords nf)
    QCheck.Gen.(
      quad (int_bound 1_000_000) (int_range 4 40) (int_range 0 30)
        (int_range 0 120))

let close ~tol a b = Float.abs (a -. b) <= tol *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let run_assignment_case (seed, nodes, chords, nf) =
  let rng = Rng.create seed in
  let g = Generators.ring_chord (Rng.copy rng) ~nodes ~chords in
  let nl = Graph.link_count g in
  let costs = Array.init nl (fun _ -> 1 + Rng.int rng 60) in
  let engine = Spf_engine.create g in
  Spf_engine.refresh engine ~cost:(fun lid -> costs.(Link.id_to_int lid));
  let tree_for = Spf_engine.tree engine in
  let flows = Flow_store.create ~nodes in
  for _ = 1 to nf do
    Flow_store.add flows ~src:(Node.of_int (Rng.int rng nodes))
      ~dst:(Node.of_int (Rng.int rng nodes))
      ~demand_bps:(100. +. Rng.float rng 10_000.)
  done;
  let sending = Array.sub (Flow_store.demand_col flows) 0 nf in
  let t = Load_assign.create g in
  let offered = Array.make nl 0. in
  let first_hop = Array.make nf (-7) in
  Load_assign.assign t ~flows ~tree_for ~sending ~offered ~first_hop;
  let t' = Load_assign.create g in
  let offered' = Array.make nl 0. in
  let first_hop' = Array.make nf (-7) in
  Load_assign.assign_baseline t' ~flows ~tree_for ~sending ~offered:offered'
    ~first_hop:first_hop';
  Array.iteri
    (fun fi fh ->
      if fh <> first_hop'.(fi) then
        QCheck.Test.fail_reportf "flow %d: first_hop %d (aggregated) vs %d"
          fi fh first_hop'.(fi))
    first_hop;
  Array.iteri
    (fun l o ->
      if not (close ~tol:1e-9 o offered'.(l)) then
        QCheck.Test.fail_reportf "link %d: offered %g (aggregated) vs %g" l o
          offered'.(l))
    offered;
  true

let prop_assignment_matches_baseline =
  QCheck.Test.make ~count:60 ~name:"aggregated assignment == per-flow baseline"
    assignment_case run_assignment_case

(* Parallel assignment must be *bit*-identical to sequential at every
   domain count: the per-stripe contribution streams are replayed in
   stripe order, reproducing the sequential float-add order exactly.
   Compared through Int64 bits — no tolerance. *)
let bits = Int64.bits_of_float

let run_parallel_case (seed, nodes, chords, nf) =
  let rng = Rng.create seed in
  let g = Generators.ring_chord (Rng.copy rng) ~nodes ~chords in
  let nl = Graph.link_count g in
  let costs = Array.init nl (fun _ -> 1 + Rng.int rng 60) in
  let engine = Spf_engine.create g in
  Spf_engine.refresh engine ~cost:(fun lid -> costs.(Link.id_to_int lid));
  let tree_for = Spf_engine.tree engine in
  let flows = Flow_store.create ~nodes in
  for _ = 1 to nf do
    Flow_store.add flows ~src:(Node.of_int (Rng.int rng nodes))
      ~dst:(Node.of_int (Rng.int rng nodes))
      ~demand_bps:(100. +. Rng.float rng 10_000.)
  done;
  let sending = Array.sub (Flow_store.demand_col flows) 0 nf in
  let t = Load_assign.create g in
  let offered_seq = Array.make nl 0. in
  let fh_seq = Array.make nf (-7) in
  Load_assign.assign t ~flows ~tree_for ~sending ~offered:offered_seq
    ~first_hop:fh_seq;
  List.iter
    (fun domains ->
      let pool = Domain_pool.create domains in
      Fun.protect
        ~finally:(fun () -> Domain_pool.shutdown pool)
        (fun () ->
          let offered = Array.make nl 0. in
          let fh = Array.make nf (-7) in
          Load_assign.assign ~pool t ~flows ~tree_for ~sending ~offered
            ~first_hop:fh;
          Array.iteri
            (fun l o ->
              if not (Int64.equal (bits o) (bits offered_seq.(l))) then
                QCheck.Test.fail_reportf
                  "link %d: parallel %h <> sequential %h at %d domains" l o
                  offered_seq.(l) domains)
            offered;
          Array.iteri
            (fun fi h ->
              if h <> fh_seq.(fi) then
                QCheck.Test.fail_reportf
                  "flow %d: parallel first_hop %d <> sequential %d at %d \
                   domains"
                  fi h fh_seq.(fi) domains)
            fh))
    [ 1; 2; 3; 4 ];
  true

let prop_parallel_bit_identical =
  QCheck.Test.make ~count:20
    ~name:"parallel assignment bit-identical to sequential (1-4 domains)"
    assignment_case run_parallel_case

(* --- flow store ---------------------------------------------------- *)

let test_store_matrix_round_trip () =
  let tm = Routing_topology.Traffic_matrix.create ~nodes:9 in
  let set s d v =
    Routing_topology.Traffic_matrix.set tm ~src:(Node.of_int s)
      ~dst:(Node.of_int d) v
  in
  set 0 3 1000.;
  set 3 0 250.;
  set 8 1 97.5;
  set 4 4 40.;
  (* self-demand: refused by the matrix, so it never reaches the store *)
  let store = Flow_store.of_matrix tm in
  Alcotest.(check int) "one flow per non-zero off-diagonal cell" 3
    (Flow_store.length store);
  Alcotest.(check (float 1e-9)) "total preserved" 1347.5
    (Flow_store.total_demand_bps store);
  let back = Flow_store.to_matrix store in
  for s = 0 to 8 do
    for d = 0 to 8 do
      if s <> d then
        Alcotest.(check (float 0.))
          (Printf.sprintf "cell %d->%d round-trips" s d)
          (Routing_topology.Traffic_matrix.get tm ~src:(Node.of_int s)
             ~dst:(Node.of_int d))
          (Routing_topology.Traffic_matrix.get back ~src:(Node.of_int s)
             ~dst:(Node.of_int d))
    done
  done;
  (* aggregate folds duplicate (src, dst) pairs, first occurrence order. *)
  let dup = Flow_store.create ~nodes:4 in
  let addf s d v =
    Flow_store.add dup ~src:(Node.of_int s) ~dst:(Node.of_int d) ~demand_bps:v
  in
  addf 0 1 10.;
  addf 2 3 5.;
  addf 0 1 7.;
  let agg = Flow_store.aggregate dup in
  Alcotest.(check int) "aggregate dedups pairs" 2 (Flow_store.length agg);
  Alcotest.(check (float 0.)) "aggregate sums demand" 17.
    (Flow_store.demand_col agg).(0);
  Alcotest.(check (float 1e-9)) "aggregate preserves total"
    (Flow_store.total_demand_bps dup)
    (Flow_store.total_demand_bps agg)

let test_heavy_tailed_determinism () =
  let draw seed size =
    Flow_store.heavy_tailed (Rng.create seed) ~nodes:50 ~flows:10_000
      ~total_bps:1e9 ~size
  in
  List.iter
    (fun size ->
      let a = draw 42 size and b = draw 42 size in
      let n = Flow_store.length a in
      Alcotest.(check int) "requested flow count" 10_000 n;
      let col f = Array.sub (f a) 0 n and col' f = Array.sub (f b) 0 n in
      Alcotest.(check (array int)) "same seed, same sources"
        (col Flow_store.src_col) (col' Flow_store.src_col);
      Alcotest.(check (array int)) "same seed, same destinations"
        (col Flow_store.dst_col) (col' Flow_store.dst_col);
      Array.iteri
        (fun i d ->
          if not (Int64.equal (bits d) (bits (Flow_store.demand_col b).(i)))
          then
            Alcotest.failf "flow %d: demand %h vs %h with the same seed" i d
              (Flow_store.demand_col b).(i))
        (col Flow_store.demand_col);
      Alcotest.(check bool) "total scaled to target" true
        (close ~tol:1e-9 1e9 (Flow_store.total_demand_bps a));
      let src = Flow_store.src_col a and dst = Flow_store.dst_col a in
      for i = 0 to n - 1 do
        if src.(i) = dst.(i) then Alcotest.failf "flow %d is a self-flow" i;
        if src.(i) < 0 || src.(i) >= 50 || dst.(i) < 0 || dst.(i) >= 50 then
          Alcotest.failf "flow %d endpoints out of range" i
      done;
      (* A different seed must actually change the draw. *)
      let c = draw 43 size in
      Alcotest.(check bool) "different seed, different flows" false
        (col Flow_store.demand_col
        = Array.sub (Flow_store.demand_col c) 0 (Flow_store.length c)
        && col Flow_store.src_col
           = Array.sub (Flow_store.src_col c) 0 (Flow_store.length c)))
    [ Flow_store.Pareto { alpha = 1.3 }; Flow_store.Lognormal { sigma = 2. } ]

(* Repeated [assign] calls over the same scratch must not leak state
   between rounds (the buckets/acc arrays are reused, never reallocated). *)
let test_assignment_scratch_reuse () =
  let g = Generators.ring_chord (Rng.create 5) ~nodes:12 ~chords:6 in
  let nl = Graph.link_count g in
  let engine = Spf_engine.create g in
  Spf_engine.refresh engine ~cost:(fun lid -> 1 + (Link.id_to_int lid mod 9));
  let tree_for = Spf_engine.tree engine in
  let flows = Flow_store.create ~nodes:12 in
  for i = 0 to 29 do
    Flow_store.add flows ~src:(Node.of_int (i mod 12))
      ~dst:(Node.of_int ((i * 7 + 3) mod 12))
      ~demand_bps:(float_of_int (1000 * (i + 1)))
  done;
  let sending = Array.sub (Flow_store.demand_col flows) 0 30 in
  let t = Load_assign.create g in
  let round () =
    let offered = Array.make nl 0. in
    let first_hop = Array.make (Flow_store.length flows) (-7) in
    Load_assign.assign t ~flows ~tree_for ~sending ~offered ~first_hop;
    (offered, first_hop)
  in
  let o1, f1 = round () in
  let o2, f2 = round () in
  Alcotest.(check (array (float 0.))) "offered stable across rounds" o1 o2;
  Alcotest.(check (array int)) "first hops stable across rounds" f1 f2

(* --- work-stealing handout ----------------------------------------- *)

(* Every index exactly once, any pool geometry.  Bodies spin an amount
   that varies wildly with the index so the initial equal slices go out
   of balance and stealing actually happens; each index writes only its
   own slot, so a duplicate run would show up as a count of 2 (and as a
   data race under the TSan job, which runs this suite). *)
let dynamic_case =
  QCheck.make ~print:(fun (n, domains, grain) ->
      Printf.sprintf "n=%d domains=%d grain=%d" n domains grain)
    QCheck.Gen.(triple (int_bound 200) (int_range 1 5) (int_range 1 7))

let run_dynamic_case (n, domains, grain) =
  let counts = Array.make (max n 1) 0 in
  let spun = Array.make (max n 1) 0 in
  let pool = Domain_pool.create domains in
  Fun.protect
    ~finally:(fun () -> Domain_pool.shutdown pool)
    (fun () ->
      Domain_pool.parallel_for_dynamic ~grain pool n (fun i ->
          let spin = if i land 7 = 0 then 2000 else 10 in
          let acc = ref 0 in
          for k = 1 to spin do
            acc := !acc + ((i + k) land 15)
          done;
          spun.(i) <- !acc;
          counts.(i) <- counts.(i) + 1));
  Array.iteri
    (fun i c ->
      if i < n && c <> 1 then
        QCheck.Test.fail_reportf "index %d ran %d times (n=%d)" i c n)
    counts;
  true

let prop_dynamic_exactly_once =
  QCheck.Test.make ~count:80
    ~name:"parallel_for_dynamic runs every index exactly once" dynamic_case
    run_dynamic_case

(* --- sweep engine -------------------------------------------------- *)

let small_spec =
  { Sweep_spec.scenarios =
      [ Sweep_spec.Builtin "arpanet"; Sweep_spec.File (scenario "two_region.scn") ];
    metrics = [ Metric.D_spf; Metric.Hn_spf ];
    scales = [ 0.8; 1.1 ];
    seeds = [ 1 ];
    periods = 5;
    warmup = 1;
    critical_load = None }

let test_points_enumeration () =
  let pts = Sweep_engine.points small_spec in
  Alcotest.(check int) "grid size" (2 * 2 * 2 * 1) (List.length pts);
  List.iteri
    (fun i p -> Alcotest.(check int) "indexed in order" i p.Sweep_engine.index)
    pts;
  match pts with
  | first :: _ ->
    Alcotest.(check string) "scenario outermost" "arpanet"
      first.Sweep_engine.scenario
  | [] -> Alcotest.fail "empty grid"

let test_report_domain_independent () =
  let r1 = Sweep_engine.run ~domains:1 small_spec in
  let r2 = Sweep_engine.run ~domains:2 small_spec in
  Alcotest.(check string) "reports byte-identical at 1 vs 2 domains"
    (Obs_json.to_string r1.Sweep_engine.json)
    (Obs_json.to_string r2.Sweep_engine.json);
  Alcotest.(check string) "CSV byte-identical at 1 vs 2 domains"
    (Sweep_engine.csv r1) (Sweep_engine.csv r2);
  Alcotest.(check string) "summary CSV byte-identical at 1 vs 2 domains"
    (Sweep_engine.summary_csv r1) (Sweep_engine.summary_csv r2);
  Alcotest.(check int) "rankings cover every (scenario, metric) group" 4
    (List.length r1.Sweep_engine.rankings);
  Alcotest.(check int) "no ramp, no knees" 0
    (List.length r1.Sweep_engine.knees);
  let lines = String.split_on_char '\n' (String.trim (Sweep_engine.csv r1)) in
  Alcotest.(check int) "CSV: header plus one row per point"
    (1 + Array.length r1.Sweep_engine.outcomes)
    (List.length lines)

let test_report_round_trips () =
  let r = Sweep_engine.run ~domains:1 small_spec in
  match Obs_json.of_string (Obs_json.to_string r.Sweep_engine.json) with
  | Ok round ->
    Alcotest.(check bool) "report JSON round-trips" true
      (Obs_json.equal round r.Sweep_engine.json)
  | Error e -> Alcotest.failf "report does not re-parse: %s" e

(* --- critical-load ramp -------------------------------------------- *)

let test_critical_load_parse () =
  (match
     Sweep_spec.parse
       {|{"scenarios": ["arpanet"], "critical_load": {"from": 0.5, "to": 2.0, "steps": 4}}|}
   with
  | Error issue -> Alcotest.failf "ramp spec rejected: %s" issue.message
  | Ok spec ->
    Alcotest.(check (list (float 1e-9))) "ramp expands to the scale axis"
      [ 0.5; 1.0; 1.5; 2.0 ] spec.Sweep_spec.scales;
    (match spec.Sweep_spec.critical_load with
    | Some r ->
      Alcotest.(check (float 0.)) "from recorded" 0.5 r.Sweep_spec.ramp_from;
      Alcotest.(check (float 0.)) "to recorded" 2.0 r.Sweep_spec.ramp_to;
      Alcotest.(check int) "steps recorded" 4 r.Sweep_spec.ramp_steps
    | None -> Alcotest.fail "critical_load not recorded on the spec");
    Alcotest.(check (list string)) "well-formed ramp lints clean" []
      (List.map
         (fun (i : Sweep_spec.issue) -> i.code)
         (Sweep_spec.lint spec)));
  match
    Sweep_spec.parse
      {|{"scenarios": ["arpanet"], "scales": [1.0], "critical_load": {"from": 0.5, "to": 2.0}}|}
  with
  | Ok _ -> Alcotest.fail "scales + critical_load unexpectedly accepted"
  | Error issue -> Alcotest.(check string) "mutual exclusion" "S100" issue.code

(* A quick ramp over the ARPANET builtin: the engine must locate a
   finite knee inside the ramp for every (scenario, metric) group and
   publish both summary views. *)
let ramp_spec =
  { Sweep_spec.scenarios = [ Sweep_spec.Builtin "arpanet" ];
    metrics = [ Metric.D_spf; Metric.Hn_spf ];
    scales = [ 0.5; 1.0; 1.5; 2.0; 2.5 ];
    seeds = [ 1 ];
    periods = 3;
    warmup = 1;
    critical_load =
      Some { Sweep_spec.ramp_from = 0.5; ramp_to = 2.5; ramp_steps = 5 } }

let test_critical_load_knees () =
  let r = Sweep_engine.run ~domains:1 ramp_spec in
  Alcotest.(check int) "one knee per (scenario, metric)" 2
    (List.length r.Sweep_engine.knees);
  List.iter
    (fun (k : Sweep_engine.knee) ->
      let within x = Float.is_finite x && x >= 0.5 && x <= 2.5 in
      Alcotest.(check bool) "delay knee on the ramp" true
        (within k.Sweep_engine.k_scale_delay);
      Alcotest.(check bool) "throughput knee on the ramp" true
        (within k.Sweep_engine.k_scale_throughput);
      Alcotest.(check bool) "knee observations are finite" true
        (Float.is_finite k.Sweep_engine.k_delay_ms
        && Float.is_finite k.Sweep_engine.k_throughput_bps))
    r.Sweep_engine.knees;
  (match r.Sweep_engine.rankings with
  | first :: _ -> Alcotest.(check int) "best group ranks 1" 1 first.Sweep_engine.r_rank
  | [] -> Alcotest.fail "ramp report has no rankings");
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report JSON carries the critical_load section" true
    (contains (Obs_json.to_string r.Sweep_engine.json) "\"critical_load\"");
  let lines =
    String.split_on_char '\n' (String.trim (Sweep_engine.summary_csv r))
  in
  Alcotest.(check int) "summary CSV: header + 2 ranking + 2 knee rows" 5
    (List.length lines)

(* --- sweep fabric: stealing, shards, resume ------------------------ *)

let report_bytes (r : Sweep_engine.report) = Obs_json.to_string r.Sweep_engine.json

(* Random tiny grids: the work-stealing fan-out must reproduce the
   sequential report byte for byte whatever the grid shape, scenario
   mix, or domain count. *)
let grid_case =
  QCheck.make ~print:(fun (seed, scales, with_file, domains) ->
      Printf.sprintf "seed=%d scales=%d file=%b domains=%d" seed scales
        with_file domains)
    QCheck.Gen.(
      quad (int_bound 1000) (int_range 1 3) bool (int_range 2 4))

let grid_spec (seed, scales, with_file, _domains) =
  { Sweep_spec.scenarios =
      (Sweep_spec.Builtin "arpanet"
       :: (if with_file then [ Sweep_spec.File (scenario "two_region.scn") ] else []));
    metrics = [ Metric.D_spf; Metric.Hn_spf ];
    scales = List.init scales (fun i -> 0.7 +. (0.2 *. float_of_int i));
    seeds = [ seed; seed + 1 ];
    periods = 3;
    warmup = 1;
    critical_load = None }

let run_grid_case case =
  let _, _, _, domains = case in
  let spec = grid_spec case in
  let sequential = Sweep_engine.run ~domains:1 spec in
  let stolen = Sweep_engine.run ~domains spec in
  if report_bytes sequential <> report_bytes stolen then
    QCheck.Test.fail_reportf "work-stealing report differs at %d domains" domains;
  true

let prop_stealing_byte_identical =
  QCheck.Test.make ~count:6
    ~name:"work-stealing reports == sequential (random grids)" grid_case
    run_grid_case

let test_resume_byte_identity () =
  (* Interrupt a grid mid-flight (only shard 0/2 of the points ran, as
     if the process died), then resume from the partial report: the
     resumed report must be byte-identical to an uninterrupted run, and
     the reused points must not re-simulate. *)
  let prep = Sweep_engine.prepare small_spec in
  let uninterrupted = Sweep_engine.run_prepared ~domains:1 prep in
  let partial =
    Sweep_engine.run_prepared ~domains:1
      ~subset:(fun p -> p.Sweep_engine.index mod 2 = 0)
      prep
  in
  let stored =
    match Sweep_engine.stored_points partial.Sweep_engine.json with
    | Ok pts -> pts
    | Error e -> Alcotest.failf "partial report does not decode: %s" e
  in
  Alcotest.(check int) "partial covers half the grid"
    ((Array.length (Sweep_engine.prepared_points prep) + 1) / 2)
    (List.length stored);
  let table = Hashtbl.create 16 in
  List.iter (fun (h, ind) -> Hashtbl.replace table h ind) stored;
  let reused = ref 0 in
  let resumed =
    Sweep_engine.run_prepared ~domains:1
      ~reuse:(fun h ->
        match Hashtbl.find_opt table h with
        | Some ind ->
          incr reused;
          Some ind
        | None -> None)
      prep
  in
  Alcotest.(check int) "every stored point reused" (List.length stored) !reused;
  Alcotest.(check string) "resumed report == uninterrupted report"
    (report_bytes uninterrupted) (report_bytes resumed)

let test_shard_merge_associativity () =
  let prep = Sweep_engine.prepare small_spec in
  let full = Sweep_engine.run_prepared ~domains:1 prep in
  let shard k =
    (Sweep_engine.run_prepared ~domains:1
       ~subset:(fun p -> p.Sweep_engine.index mod 3 = k)
       prep)
      .Sweep_engine.json
  in
  let s0 = shard 0 and s1 = shard 1 and s2 = shard 2 in
  let merged shards =
    match Sweep_engine.merge prep shards with
    | Ok r -> report_bytes r
    | Error e -> Alcotest.failf "merge failed: %s" e
  in
  Alcotest.(check string) "merge(s0,s1,s2) == single run" (report_bytes full)
    (merged [ s0; s1; s2 ]);
  Alcotest.(check string) "merge order irrelevant" (report_bytes full)
    (merged [ s2; s0; s1 ]);
  (* Associativity through a partial intermediate: (s0 + s1) + s2. *)
  let s01 =
    match Sweep_engine.merge ~allow_partial:true prep [ s0; s1 ] with
    | Ok r -> r.Sweep_engine.json
    | Error e -> Alcotest.failf "partial merge failed: %s" e
  in
  Alcotest.(check string) "merge(merge(s0,s1), s2) == single run"
    (report_bytes full)
    (merged [ s01; s2 ]);
  (* Incomplete without allow_partial is an error, not a report. *)
  (match Sweep_engine.merge prep [ s0; s1 ] with
  | Ok _ -> Alcotest.fail "incomplete merge unexpectedly succeeded"
  | Error _ -> ());
  (* A shard from a different grid is rejected by hash. *)
  let other =
    Sweep_engine.prepare { small_spec with Sweep_spec.periods = 7 }
  in
  match Sweep_engine.merge other [ s0; s1; s2 ] with
  | Ok _ -> Alcotest.fail "foreign shards unexpectedly merged"
  | Error _ -> ()

let test_point_hashes () =
  let prep = Sweep_engine.prepare small_spec in
  let hashes = Sweep_engine.point_hashes prep in
  let distinct = List.sort_uniq compare (Array.to_list hashes) in
  Alcotest.(check int) "hashes are distinct per point" (Array.length hashes)
    (List.length distinct);
  (* Grid-shape independence: dropping a scale axis value keeps the
     surviving points' hashes, so shards and resumes survive spec
     edits that only reshape the grid. *)
  let narrowed =
    Sweep_engine.prepare { small_spec with Sweep_spec.scales = [ 1.1 ] }
  in
  let pts = Sweep_engine.prepared_points prep in
  let narrowed_pts = Sweep_engine.prepared_points narrowed in
  let narrowed_hashes = Sweep_engine.point_hashes narrowed in
  Array.iteri
    (fun j (np : Sweep_engine.point) ->
      let matching = ref None in
      Array.iteri
        (fun i (p : Sweep_engine.point) ->
          if
            p.scenario = np.scenario && p.metric = np.metric
            && p.scale = np.scale && p.seed = np.seed
          then matching := Some i)
        pts;
      match !matching with
      | None -> Alcotest.fail "narrowed grid is not a subset"
      | Some i ->
        Alcotest.(check string) "same point, same hash" hashes.(i)
          narrowed_hashes.(j))
    narrowed_pts;
  (* Content sensitivity: the same period budget under different
     periods must hash differently (it is different work). *)
  let longer =
    Sweep_engine.point_hashes
      (Sweep_engine.prepare { small_spec with Sweep_spec.periods = 6 })
  in
  Alcotest.(check bool) "periods change the hash" false
    (String.equal hashes.(0) longer.(0))

let test_shard_of_string () =
  let ok s = match Sweep_spec.shard_of_string s with
    | Ok v -> v
    | Error (i : Sweep_spec.issue) -> Alcotest.failf "%S rejected: %s" s i.message
  in
  let bad s = match Sweep_spec.shard_of_string s with
    | Ok (i, n) -> Alcotest.failf "%S accepted as %d/%d" s i n
    | Error (issue : Sweep_spec.issue) ->
      Alcotest.(check string) "S107" "S107" issue.code
  in
  Alcotest.(check (pair int int)) "0/4" (0, 4) (ok "0/4");
  Alcotest.(check (pair int int)) "3/4" (3, 4) (ok "3/4");
  Alcotest.(check (pair int int)) "0/1" (0, 1) (ok "0/1");
  bad "4/4"; bad "-1/4"; bad "0/0"; bad "x/2"; bad "1"; bad "1/"; bad "/2"

(* --- registry merge ------------------------------------------------ *)

let test_registry_merge () =
  let a = Obs_metrics.create () in
  let b = Obs_metrics.create () in
  Obs_metrics.inc ~by:3 (Obs_metrics.counter a "drops");
  Obs_metrics.inc ~by:4 (Obs_metrics.counter b "drops");
  Obs_metrics.set (Obs_metrics.gauge b "level") 2.5;
  Obs_metrics.sample (Obs_metrics.series b "util") ~time:1. 0.5;
  Obs_metrics.merge ~into:a b;
  Alcotest.(check int) "counters add" 7
    (Obs_metrics.counter_value (Obs_metrics.counter a "drops"));
  Alcotest.(check (float 0.)) "gauges copy" 2.5
    (Obs_metrics.gauge_value (Obs_metrics.gauge a "level"));
  (* The merged copy is deep: mutating the source later must not leak. *)
  Obs_metrics.inc ~by:100 (Obs_metrics.counter b "drops");
  Alcotest.(check int) "merge copies, not aliases" 7
    (Obs_metrics.counter_value (Obs_metrics.counter a "drops"))

(* --- S1xx spec lint ------------------------------------------------ *)

let codes diags = List.map (fun d -> d.Diagnostic.code) diags

let check_fixture_code (name, code) () =
  let diags, _ = Sweep_check.check_file (fixture name) in
  Alcotest.(check bool)
    (Printf.sprintf "%s raises %s (got: %s)" name code
       (String.concat " " (codes diags)))
    true
    (List.exists (fun d -> String.equal d.Diagnostic.code code) diags)

let sweep_fixtures =
  [ ("sweep_not_json.json", "S100");
    ("sweep_unknown_scenario.json", "S101");
    ("sweep_empty_axis.json", "S102");
    ("sweep_duplicates.json", "S103");
    ("sweep_bad_seed.json", "S104");
    ("sweep_bad_scale.json", "S105");
    ("sweep_bad_budget.json", "S106");
    ("sweep_bad_ramp.json", "S109") ]

let test_shipped_spec_clean () =
  (* The shipped example names scenario files relative to the repo root,
     so parse+lint the grid axes directly rather than through the
     file-existence pass (builtin-only: no file references). *)
  let text =
    In_channel.with_open_text (scenario "paper_sweep.json") In_channel.input_all
  in
  match Sweep_spec.parse text with
  | Error issue -> Alcotest.failf "paper_sweep.json: %s" issue.message
  | Ok spec ->
    Alcotest.(check (list string)) "paper_sweep.json lints clean" []
      (List.map (fun (i : Sweep_spec.issue) -> i.code) (Sweep_spec.lint spec));
    Alcotest.(check int) "grid: 2 metrics x 7 scales x 2 seeds" 28
      (List.length (Sweep_engine.points spec))

let test_spec_defaults () =
  match Sweep_spec.parse {|{"scenarios": ["milnet"]}|} with
  | Error issue -> Alcotest.failf "minimal spec rejected: %s" issue.message
  | Ok spec ->
    Alcotest.(check int) "default periods" 60 spec.Sweep_spec.periods;
    Alcotest.(check int) "default warmup" 0 spec.Sweep_spec.warmup;
    Alcotest.(check (list (float 0.))) "default scales" [ 1.0 ]
      spec.Sweep_spec.scales;
    Alcotest.(check (list int)) "default seeds" [ 0 ] spec.Sweep_spec.seeds;
    Alcotest.(check int) "default metrics" 1 (List.length spec.Sweep_spec.metrics)

let test_seed_range () =
  match Sweep_spec.parse {|{"scenarios": ["arpanet"], "seeds": {"from": 3, "count": 4}}|} with
  | Error issue -> Alcotest.failf "range spec rejected: %s" issue.message
  | Ok spec ->
    Alcotest.(check (list int)) "range expands" [ 3; 4; 5; 6 ]
      spec.Sweep_spec.seeds

let () =
  Alcotest.run "sweep"
    [ ( "assignment",
        [ QCheck_alcotest.to_alcotest prop_assignment_matches_baseline;
          QCheck_alcotest.to_alcotest prop_parallel_bit_identical;
          Alcotest.test_case "scratch reuse" `Quick test_assignment_scratch_reuse
        ] );
      ( "flow store",
        [ Alcotest.test_case "matrix round-trip and aggregate" `Quick
            test_store_matrix_round_trip;
          Alcotest.test_case "heavy-tailed generator determinism" `Quick
            test_heavy_tailed_determinism ] );
      ( "engine",
        [ Alcotest.test_case "points enumeration" `Quick test_points_enumeration;
          Alcotest.test_case "domain-count independence" `Quick
            test_report_domain_independent;
          Alcotest.test_case "report round-trips" `Quick test_report_round_trips
        ] );
      ( "critical load",
        [ Alcotest.test_case "ramp parse and lint" `Quick
            test_critical_load_parse;
          Alcotest.test_case "knees located on a quick ramp" `Quick
            test_critical_load_knees ] );
      ( "fabric",
        [ QCheck_alcotest.to_alcotest prop_dynamic_exactly_once;
          QCheck_alcotest.to_alcotest prop_stealing_byte_identical;
          Alcotest.test_case "resume byte-identity" `Quick
            test_resume_byte_identity;
          Alcotest.test_case "shard-merge associativity" `Quick
            test_shard_merge_associativity;
          Alcotest.test_case "point hashes" `Quick test_point_hashes;
          Alcotest.test_case "--shard grammar (S107)" `Quick
            test_shard_of_string ] );
      ( "merge",
        [ Alcotest.test_case "registry merge" `Quick test_registry_merge ] );
      ( "spec",
        List.map
          (fun (name, code) ->
            Alcotest.test_case
              (Printf.sprintf "%s -> %s" name code)
              `Quick
              (check_fixture_code (name, code)))
          sweep_fixtures
        @ [ Alcotest.test_case "shipped example clean" `Quick
              test_shipped_spec_clean;
            Alcotest.test_case "defaults" `Quick test_spec_defaults;
            Alcotest.test_case "seed range" `Quick test_seed_range ] ) ]

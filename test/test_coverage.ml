(* Additional coverage for corners the main suites do not reach:
   serialization to disk, metric counters, histogram internals, trace-less
   defaults, parameter caps, broadcast accounting and generator options. *)

open Routing_topology
module Histogram = Routing_stats.Histogram
module Table = Routing_stats.Table
module Time_series = Routing_stats.Time_series
module Hnm_params = Routing_metric.Hnm_params
module Metric = Routing_metric.Metric
module Queueing = Routing_metric.Queueing
module Flooder = Routing_flooding.Flooder
module Broadcast = Routing_flooding.Broadcast
module Network = Routing_sim.Network
module Flow_sim = Routing_sim.Flow_sim
module Reverse_spf = Routing_multipath.Reverse_spf
module Rng = Routing_stats.Rng

(* --- Serial file I/O --- *)

let test_serial_save_load_file () =
  let g = Milnet.topology () in
  let tm = Milnet.peak_traffic (Rng.create 11) g in
  let path = Filename.temp_file "scenario" ".scn" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save path g (Some tm);
      match Serial.load path with
      | Error e -> Alcotest.fail e
      | Ok (g', tm') ->
        Alcotest.(check int) "nodes" (Graph.node_count g) (Graph.node_count g');
        Alcotest.(check bool) "traffic close" true
          (Float.abs (Traffic_matrix.total_bps tm -. Traffic_matrix.total_bps tm')
          < 1.))

let test_serial_load_missing_file () =
  match Serial.load "/nonexistent/path.scn" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e -> Alcotest.(check bool) "message" true (String.length e > 0)

let test_serial_topology_only () =
  let g = Generators.ring 4 in
  match Serial.of_string (Serial.to_string g None) with
  | Ok (g', tm) ->
    Alcotest.(check int) "nodes" 4 (Graph.node_count g');
    Alcotest.(check (float 0.)) "no demands" 0. (Traffic_matrix.total_bps tm)
  | Error e -> Alcotest.fail e

(* --- Metric counters --- *)

let two_nodes () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "A" "B" in
  Builder.build b

let test_metric_update_counter () =
  let g = two_nodes () in
  let m = Metric.create Metric.Hn_spf g in
  let l = Link.id_of_int 0 in
  (* Drive a big cost swing so an update floods. *)
  let hot = Queueing.delay_s (Graph.link g l) ~utilization:0.95 in
  ignore (Metric.period_update m l ~measured_delay_s:hot);
  ignore (Metric.period_update m l ~measured_delay_s:hot);
  Alcotest.(check bool) "updates counted" true (Metric.updates_flooded m > 0);
  Metric.reset_update_counter m;
  Alcotest.(check int) "counter reset" 0 (Metric.updates_flooded m)

(* --- HNM parameter caps --- *)

let test_min_cost_capped_for_long_lines () =
  (* A pathological 10-second propagation delay must not push the floor
     past the ceiling. *)
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:10.0 "A" "B" in
  let g = Builder.build b in
  let l = Graph.link g (Link.id_of_int 0) in
  let p = Hnm_params.for_line_type Line_type.T56 in
  Alcotest.(check bool) "floor stays below ceiling" true
    (Hnm_params.min_cost l < p.Hnm_params.max_cost);
  Alcotest.(check int) "capped at 2x base" (2 * p.Hnm_params.base_min)
    (Hnm_params.min_cost l)

(* --- Histogram internals --- *)

let test_histogram_add_many_and_mean () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add_many h 2.5 10;
  Histogram.add_many h 7.5 10;
  Alcotest.(check int) "count" 20 (Histogram.count h);
  Alcotest.(check (float 1e-6)) "midpoint mean" 5. (Histogram.mean h);
  let entries = Histogram.to_list h in
  Alcotest.(check int) "two occupied bins (extremes trimmed)" 6
    (List.length entries);
  let lo, hi = Histogram.bin_bounds h 2 in
  Alcotest.(check (float 1e-9)) "bin 2 lower" 2. lo;
  Alcotest.(check (float 1e-9)) "bin 2 upper" 3. hi

(* --- Table separators and decimals --- *)

let test_table_float_decimals () =
  let t = Table.create [ ("x", Table.Left); ("v", Table.Right) ] in
  ignore (Table.add_float_row t ~decimals:4 "pi" [ 3.14159 ]);
  Alcotest.(check bool) "4 decimals" true
    (Astring.String.is_infix ~affix:"3.1416" (Table.to_string t))

(* --- Time series growth --- *)

let test_time_series_growth () =
  let ts = Time_series.create ~capacity:2 "grow" in
  for i = 0 to 99 do
    Time_series.record ts ~time:(float_of_int i) (float_of_int i)
  done;
  Alcotest.(check int) "all retained across growth" 100 (Time_series.length ts);
  Alcotest.(check (float 0.)) "values intact" 73. (snd (Time_series.get ts 73))

(* --- Broadcast flood_all reached semantics --- *)

let test_flood_all_reached_max () =
  let g = Generators.ring 5 in
  let flooders =
    Array.init 5 (fun i -> Flooder.create g ~owner:(Node.of_int i))
  in
  let u1 = Flooder.originate flooders.(0) ~costs:[] in
  let o1 = Broadcast.flood_all g flooders [ u1 ] in
  Alcotest.(check int) "one flood reaches all" 5 o1.Broadcast.reached;
  (* Replay: reached reports the max over the batch. *)
  let u2 = Flooder.originate flooders.(1) ~costs:[] in
  let o2 = Broadcast.flood_all g flooders [ u1; u2 ] in
  Alcotest.(check int) "max over batch" 5 o2.Broadcast.reached

(* --- Generator options --- *)

let test_two_region_options () =
  let g, (a, b) = Generators.two_region ~region_size:5 ~bridge_type:Line_type.S56 () in
  Alcotest.(check int) "10 nodes" 10 (Graph.node_count g);
  Alcotest.(check bool) "bridges are satellite" true
    (Line_type.is_satellite (Graph.link g a).Link.line_type
    && Line_type.is_satellite (Graph.link g b).Link.line_type)

(* --- Reverse SPF with disabled links --- *)

let test_reverse_spf_enabled () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "S" "A" in
  let _ = Builder.trunk b Line_type.T56 "A" "T" in
  let _ = Builder.trunk b Line_type.T56 "S" "B" in
  let _ = Builder.trunk b Line_type.T56 "B" "T" in
  let g = Builder.build b in
  let t = Option.get (Graph.node_by_name g "T") in
  let s = Option.get (Graph.node_by_name g "S") in
  let a = Option.get (Graph.node_by_name g "A") in
  let at = Option.get (Graph.find_link g ~src:a ~dst:t) in
  let rspf =
    Reverse_spf.compute
      ~enabled:(fun lid -> not (Link.id_equal lid at.Link.id))
      g ~cost:(fun _ -> 10) t
  in
  Alcotest.(check int) "S has one next hop with A-T down" 1
    (List.length (Reverse_spf.next_hops rspf s));
  Alcotest.(check bool) "A rerouted the long way" true
    (Reverse_spf.dist_to rspf a = 30)

(* --- Network defaults: tracing off, no overhead --- *)

let test_network_trace_off_by_default () =
  let g = two_nodes () in
  let tm = Traffic_matrix.uniform ~nodes:2 ~pair_bps:2000. in
  let net = Network.create g tm in
  Network.run net ~duration_s:30.;
  Alcotest.(check (list (pair (float 0.) (of_pp (fun _ _ -> ()))))) "no events"
    [] (Network.trace_events net);
  Alcotest.(check string) "empty dump" "" (Network.dump_trace net)

(* --- Flow sim: min-hop floods nothing, series lengths --- *)

let test_flow_sim_minhop_quiet () =
  let g = Generators.ring 6 in
  let tm = Traffic_matrix.uniform ~nodes:6 ~pair_bps:1000. in
  let sim = Flow_sim.create g Metric.Min_hop tm in
  let stats = Flow_sim.run sim ~periods:12 in
  List.iter
    (fun s -> Alcotest.(check int) "no updates ever" 0 s.Flow_sim.updates)
    stats;
  (* Static-capacity is equally quiet. *)
  let sim = Flow_sim.create g Metric.Static_capacity tm in
  let stats = Flow_sim.run sim ~periods:12 in
  List.iter
    (fun s -> Alcotest.(check int) "static floods nothing" 0 s.Flow_sim.updates)
    stats

(* --- Scripted scenarios --- *)

module Script = Routing_sim.Script

let script_text = {|
trunk A B 56T 0.002
trunk B C 56T 0.002
trunk A C 56T 0.002
demand A C 30000
at 100 link-down A C
at 200 link-up A C
at 300 metric dspf
at 400 scale 0.5
at 500 adaptive on
|}

let test_script_parses () =
  match Script.parse script_text with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "nodes" 3 (Graph.node_count s.Script.graph);
    Alcotest.(check int) "events" 5 (List.length s.Script.events);
    let times = List.map (fun e -> e.Script.at_s) s.Script.events in
    Alcotest.(check (list (float 1e-9))) "sorted" [ 100.; 200.; 300.; 400.; 500. ]
      times

let test_script_parse_errors () =
  let check text fragment =
    match Script.parse text with
    | Ok _ -> Alcotest.fail ("expected failure: " ^ text)
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S" e fragment)
        true
        (Astring.String.is_infix ~affix:fragment e)
  in
  check "trunk A B 56T
at x link-down A B" "bad time";
  check "trunk A B 56T
at 10 frob A B" "unknown action";
  check "trunk A B 56T
at 10 metric nonsense" "unknown metric";
  check "trunk A B 56T
at 10 scale -2" "bad scale"

let test_script_runs_events () =
  match Script.parse script_text with
  | Error e -> Alcotest.fail e
  | Ok s ->
    (* Watch the direct A-C link through the outage window. *)
    let g = s.Script.graph in
    let a = Option.get (Graph.node_by_name g "A") in
    let c = Option.get (Graph.node_by_name g "C") in
    let ac = Option.get (Graph.find_link g ~src:a ~dst:c) in
    let util_at = Hashtbl.create 16 in
    let sim =
      Script.run s ~periods:60 ~on_period:(fun sim stats ->
          Hashtbl.replace util_at stats.Flow_sim.time_s
            (Flow_sim.link_utilization sim ac.Link.id))
    in
    (* Before the outage the direct link carries the flow... *)
    Alcotest.(check bool) "carrying before outage" true
      (Hashtbl.find util_at 90. > 0.3);
    (* ...during the outage it carries nothing... *)
    Alcotest.(check (float 0.)) "dead during outage" 0.
      (Hashtbl.find util_at 150.);
    (* ...and the traffic survives via B. *)
    let late = List.nth (List.rev (Flow_sim.history sim)) 0 in
    Alcotest.(check bool) "scaled demand delivered at the end" true
      (late.Flow_sim.delivered_bps > 14_000.
      && late.Flow_sim.offered_bps < 16_000.)

let test_script_unknown_node_rejected () =
  (* Bad event references are now a parse-time error (with the line),
     not a mid-run Invalid_argument. *)
  match Script.parse "trunk A B 56T
at 10 link-down A Z" with
  | Ok _ -> Alcotest.fail "unknown event node should not parse"
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error %S is located and names the node" e)
      true
      (Astring.String.is_prefix ~affix:"line 2:" e
      && Astring.String.is_infix ~affix:"\"Z\"" e)

let () =
  Alcotest.run "coverage"
    [ ( "serial",
        [ Alcotest.test_case "save/load file" `Quick test_serial_save_load_file;
          Alcotest.test_case "missing file" `Quick test_serial_load_missing_file;
          Alcotest.test_case "topology only" `Quick test_serial_topology_only ] );
      ( "metric",
        [ Alcotest.test_case "update counter" `Quick test_metric_update_counter;
          Alcotest.test_case "floor cap" `Quick test_min_cost_capped_for_long_lines
        ] );
      ( "stats",
        [ Alcotest.test_case "histogram add_many/mean" `Quick
            test_histogram_add_many_and_mean;
          Alcotest.test_case "table decimals" `Quick test_table_float_decimals;
          Alcotest.test_case "time series growth" `Quick test_time_series_growth ]
      );
      ( "flooding",
        [ Alcotest.test_case "flood_all reached" `Quick test_flood_all_reached_max ]
      );
      ( "topology",
        [ Alcotest.test_case "two_region options" `Quick test_two_region_options ]
      );
      ( "multipath",
        [ Alcotest.test_case "reverse spf enabled" `Quick test_reverse_spf_enabled ]
      );
      ( "sim",
        [ Alcotest.test_case "trace off by default" `Quick
            test_network_trace_off_by_default;
          Alcotest.test_case "static metrics quiet" `Quick
            test_flow_sim_minhop_quiet ] );
      ( "script",
        [ Alcotest.test_case "parses" `Quick test_script_parses;
          Alcotest.test_case "parse errors" `Quick test_script_parse_errors;
          Alcotest.test_case "runs events" `Quick test_script_runs_events;
          Alcotest.test_case "unknown node" `Quick test_script_unknown_node_rejected
        ] ) ]

(* Integration tests: the packet simulator, the flow simulator and the
   analytic layer must agree with each other and with the paper's headline
   claims when run on the same inputs. *)

open Routing_topology
module Network = Routing_sim.Network
module Flow_sim = Routing_sim.Flow_sim
module Measure = Routing_sim.Measure
module Workload = Routing_sim.Workload
module Metric = Routing_metric.Metric
module Queueing = Routing_metric.Queueing
module Rng = Routing_stats.Rng

(* --- Packet DES vs flow simulator on the same scenario --- *)

(* A 5-node ring at moderate uniform load, HN-SPF.  The packet simulator
   measures real queueing; the flow simulator predicts it analytically.
   Their delay and throughput must agree to simulation noise. *)
let test_des_and_flow_sim_agree () =
  let g = Generators.ring 5 in
  let tm = Traffic_matrix.uniform ~nodes:5 ~pair_bps:2500. in
  (* Flow sim. *)
  let fsim = Flow_sim.create g Metric.Hn_spf tm in
  ignore (Flow_sim.run fsim ~periods:30);
  let fi = Flow_sim.indicators fsim ~skip:5 () in
  (* Packet DES. *)
  let config = { (Network.default_config Metric.Hn_spf) with Network.seed = 5 } in
  let net = Network.create ~config g tm in
  Network.run net ~duration_s:300.;
  let ni = Network.indicators net in
  let rel a b = Float.abs (a -. b) /. Float.max a b in
  Alcotest.(check bool)
    (Printf.sprintf "throughput within 10%% (%.0f vs %.0f bps)"
       fi.Measure.internode_traffic_bps ni.Measure.internode_traffic_bps)
    true
    (rel fi.Measure.internode_traffic_bps ni.Measure.internode_traffic_bps < 0.10);
  Alcotest.(check bool)
    (Printf.sprintf "delay within 35%% (%.1f vs %.1f ms)"
       fi.Measure.round_trip_delay_ms ni.Measure.round_trip_delay_ms)
    true
    (rel fi.Measure.round_trip_delay_ms ni.Measure.round_trip_delay_ms < 0.35);
  Alcotest.(check bool)
    (Printf.sprintf "path lengths agree (%.2f vs %.2f hops)"
       fi.Measure.actual_path_hops ni.Measure.actual_path_hops)
    true
    (rel fi.Measure.actual_path_hops ni.Measure.actual_path_hops < 0.05)

(* The DES's per-link delay measurement should track the M/M/1 prediction
   at a held utilization — validating the model the HNM inverts. *)
let test_des_delay_matches_mm1 () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "A" "B" in
  let g = Builder.build b in
  let rho = 0.6 in
  let tm = Traffic_matrix.create ~nodes:2 in
  Traffic_matrix.set tm ~src:(Node.of_int 0) ~dst:(Node.of_int 1)
    (rho *. 56_000.);
  let config = { (Network.default_config Metric.Hn_spf) with Network.seed = 3 } in
  let net = Network.create ~config g tm in
  Network.run net ~duration_s:600.;
  let i = Network.indicators net in
  let link = Graph.link g (Link.id_of_int 0) in
  let predicted = Queueing.mm1k_delay_s link ~utilization:rho *. 2. *. 1000. in
  let measured = i.Measure.round_trip_delay_ms in
  Alcotest.(check bool)
    (Printf.sprintf "M/M/1 holds (measured %.1f vs predicted %.1f ms)" measured
       predicted)
    true
    (Float.abs (measured -. predicted) /. predicted < 0.15)

(* --- The headline result (Table 1 direction) --- *)

let test_table1_directions () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let run kind scale =
    let sim = Flow_sim.create g kind (Traffic_matrix.scale tm scale) in
    ignore (Flow_sim.run sim ~periods:120);
    Flow_sim.indicators sim ~skip:20 ()
  in
  (* May 87: D-SPF at 1.0x; Aug 87: HN-SPF at 1.13x (the paper's +13%). *)
  let d = run Metric.D_spf 1.0 in
  let h = run Metric.Hn_spf 1.13 in
  Alcotest.(check bool)
    (Printf.sprintf "delay falls despite more traffic (%.0f -> %.0f ms)"
       d.Measure.round_trip_delay_ms h.Measure.round_trip_delay_ms)
    true
    (h.Measure.round_trip_delay_ms < 0.75 *. d.Measure.round_trip_delay_ms);
  Alcotest.(check bool) "throughput up" true
    (h.Measure.internode_traffic_bps > d.Measure.internode_traffic_bps);
  Alcotest.(check bool)
    (Printf.sprintf "fewer updates (%.2f -> %.2f /s)" d.Measure.updates_per_s
       h.Measure.updates_per_s)
    true
    (h.Measure.updates_per_s < d.Measure.updates_per_s);
  Alcotest.(check bool)
    (Printf.sprintf "path ratio improves (%.2f -> %.2f)" d.Measure.path_ratio
       h.Measure.path_ratio)
    true
    (h.Measure.path_ratio < d.Measure.path_ratio);
  Alcotest.(check bool)
    (Printf.sprintf "drops collapse (%.1f -> %.1f /s)" d.Measure.dropped_per_s
       h.Measure.dropped_per_s)
    true
    (h.Measure.dropped_per_s < 0.5 *. d.Measure.dropped_per_s)

(* --- Routing remains loop-free through update churn in the DES --- *)

let test_des_no_forwarding_pathologies () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let config = { (Network.default_config Metric.Hn_spf) with Network.seed = 1 } in
  let net = Network.create ~config g tm in
  Network.run net ~duration_s:120.;
  (* Conservation: everything generated is delivered, dropped, or still in
     flight (bounded by total buffering). *)
  let generated = Network.generated_packets net in
  let delivered = Network.delivered_packets net in
  let dropped = Network.dropped_packets net in
  let in_flight = generated - delivered - dropped in
  Alcotest.(check bool)
    (Printf.sprintf "conservation (gen %d = del %d + drop %d + fly %d)" generated
       delivered dropped in_flight)
    true
    (in_flight >= 0
    && in_flight <= Graph.link_count g * (Queueing.buffer_capacity + 1));
  (* With consistent tables, TTL drops would indicate loops: the drop rate
     must stay small at this load under HN-SPF. *)
  Alcotest.(check bool)
    (Printf.sprintf "low loss under HN-SPF (%d/%d)" dropped generated)
    true
    (float_of_int dropped < 0.05 *. float_of_int generated)

(* --- Metric switch mid-flight in the DES (the HNM install) --- *)

let test_des_vs_flow_after_install () =
  let g, (a, b) = Generators.two_region () in
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  Graph.iter_nodes g (fun src ->
      Graph.iter_nodes g (fun dst ->
          let sn = Graph.node_name g src and dn = Graph.node_name g dst in
          if sn.[0] = 'L' && dn.[0] = 'R' then Traffic_matrix.set tm ~src ~dst 1300.));
  (* DES under D-SPF: the bridges should visibly oscillate. *)
  let config = { (Network.default_config Metric.D_spf) with Network.seed = 2 } in
  let net = Network.create ~config g tm in
  Network.run net ~duration_s:300.;
  let series = Network.utilization_series net a in
  let swings = ref 0 in
  let prev = ref None in
  Routing_stats.Time_series.iter series (fun ~time:_ ~value ->
      (match !prev with
      | Some p when Float.abs (value -. p) > 0.5 -> incr swings
      | _ -> ());
      prev := Some value);
  Alcotest.(check bool)
    (Printf.sprintf "packet-level D-SPF oscillates too (%d swings)" !swings)
    true (!swings >= 5);
  ignore b

let () =
  Alcotest.run "integration"
    [ ( "cross-validation",
        [ Alcotest.test_case "DES vs flow sim" `Slow test_des_and_flow_sim_agree;
          Alcotest.test_case "DES vs M/M/1" `Slow test_des_delay_matches_mm1 ] );
      ( "headline",
        [ Alcotest.test_case "table 1 directions" `Slow test_table1_directions ] );
      ( "robustness",
        [ Alcotest.test_case "conservation + low loss" `Slow
            test_des_no_forwarding_pathologies;
          Alcotest.test_case "packet-level oscillation" `Slow
            test_des_vs_flow_after_install ] ) ]

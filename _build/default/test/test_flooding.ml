(* Unit and property tests for the routing_flooding library. *)

open Routing_topology
module Sequence = Routing_flooding.Sequence
module Update = Routing_flooding.Update
module Flooder = Routing_flooding.Flooder
module Broadcast = Routing_flooding.Broadcast
module Rng = Routing_stats.Rng

(* --- Sequence numbers --- *)

let test_sequence_basics () =
  let s0 = Sequence.zero in
  let s1 = Sequence.next s0 in
  Alcotest.(check bool) "next is newer" true (Sequence.newer s1 s0);
  Alcotest.(check bool) "not older" false (Sequence.newer s0 s1);
  Alcotest.(check bool) "not newer than self" false (Sequence.newer s0 s0)

let test_sequence_wraps () =
  let last = Sequence.of_int (Sequence.space - 1) in
  let wrapped = Sequence.next last in
  Alcotest.(check int) "wraps to zero" 0 (Sequence.to_int wrapped);
  Alcotest.(check bool) "wrapped is newer than last" true
    (Sequence.newer wrapped last)

let test_sequence_half_space () =
  let a = Sequence.of_int 0 in
  let b = Sequence.of_int ((Sequence.space / 2) - 1) in
  Alcotest.(check bool) "just under half: newer" true (Sequence.newer b a);
  let c = Sequence.of_int (Sequence.space / 2) in
  Alcotest.(check bool) "exactly half: ambiguous, not newer" false
    (Sequence.newer c a)

let prop_sequence_antisymmetric =
  QCheck2.Test.make ~name:"newer is antisymmetric" ~count:500
    QCheck2.Gen.(pair (int_range 0 65535) (int_range 0 65535))
    (fun (a, b) ->
      let sa = Sequence.of_int a and sb = Sequence.of_int b in
      not (Sequence.newer sa sb && Sequence.newer sb sa))

(* --- Updates --- *)

let test_update_size () =
  let u =
    { Update.origin = Node.of_int 0;
      seq = Sequence.zero;
      costs = [ (Link.id_of_int 0, 30); (Link.id_of_int 2, 45) ] }
  in
  Alcotest.(check (float 1e-9)) "header + 2 links" (128. +. 96.)
    (Update.size_bits u)

(* --- Flooder / Broadcast --- *)

let ring5 () = Generators.ring 5

let make_flooders g =
  Array.init (Graph.node_count g) (fun i ->
      Flooder.create g ~owner:(Node.of_int i))

let test_flood_reaches_everyone () =
  let g = ring5 () in
  let flooders = make_flooders g in
  let u = Flooder.originate flooders.(0) ~costs:[ (Link.id_of_int 0, 42) ] in
  let o = Broadcast.flood g flooders u in
  Alcotest.(check int) "all nodes reached" 5 o.Broadcast.reached;
  Alcotest.(check bool) "some duplicates on a ring" true (o.Broadcast.duplicates > 0);
  Alcotest.(check bool) "bits accounted" true (o.Broadcast.bits > 0.)

let test_flood_dedup_on_replay () =
  let g = ring5 () in
  let flooders = make_flooders g in
  let u = Flooder.originate flooders.(0) ~costs:[ (Link.id_of_int 0, 42) ] in
  ignore (Broadcast.flood g flooders u);
  (* Replaying the same update must die immediately at every neighbor. *)
  let o2 = Broadcast.flood g flooders u in
  Alcotest.(check int) "replay reaches only the origin" 1 o2.Broadcast.reached

let test_flood_newer_supersedes () =
  let g = ring5 () in
  let flooders = make_flooders g in
  let u1 = Flooder.originate flooders.(0) ~costs:[ (Link.id_of_int 0, 42) ] in
  ignore (Broadcast.flood g flooders u1);
  let u2 = Flooder.originate flooders.(0) ~costs:[ (Link.id_of_int 0, 50) ] in
  let o = Broadcast.flood g flooders u2 in
  Alcotest.(check int) "newer update floods fully" 5 o.Broadcast.reached;
  (match Flooder.last_seq flooders.(3) (Node.of_int 0) with
  | Some s -> Alcotest.(check int) "remote node tracks newest" (Sequence.to_int u2.Update.seq) (Sequence.to_int s)
  | None -> Alcotest.fail "expected sequence recorded")

let test_flood_never_reverses_arrival_link () =
  let g = ring5 () in
  let f = Flooder.create g ~owner:(Node.of_int 1) in
  (* Node 1's links: to node 2 and to node 0.  An update from node 0
     arriving over 0->1 must not be forwarded back over 1->0. *)
  let incoming =
    Option.get (Graph.find_link g ~src:(Node.of_int 0) ~dst:(Node.of_int 1))
  in
  let back =
    Option.get (Graph.find_link g ~src:(Node.of_int 1) ~dst:(Node.of_int 0))
  in
  let u =
    { Update.origin = Node.of_int 0; seq = Sequence.next Sequence.zero;
      costs = [] }
  in
  match Flooder.receive f ~arrived_on:(Some incoming.Link.id) u with
  | Flooder.Fresh forward ->
    Alcotest.(check bool) "not sent back" false
      (List.exists (Link.id_equal back.Link.id) forward);
    Alcotest.(check int) "forwarded to the other side" 1 (List.length forward)
  | Flooder.Duplicate -> Alcotest.fail "first sighting must be fresh"

let prop_flood_covers_random_graphs =
  QCheck2.Test.make ~name:"flood reaches every node on random graphs" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nodes = 3 + Rng.int rng 20 in
      let g = Generators.ring_chord rng ~nodes ~chords:(Rng.int rng nodes) in
      let flooders = make_flooders g in
      let origin = Rng.int rng nodes in
      let u = Flooder.originate flooders.(origin) ~costs:[] in
      let o = Broadcast.flood g flooders u in
      o.Broadcast.reached = nodes
      (* Conservation: every transmission is either a fresh acceptance at
         its receiving end or a duplicate discard. *)
      && o.Broadcast.transmissions = o.Broadcast.reached - 1 + o.Broadcast.duplicates)

(* The October 1980 pathology: three sequence numbers forming a cycle
   under the half-space comparison keep every update alive forever. *)
let test_cyclic_sequences_never_die () =
  let third = Sequence.space / 3 in
  let a = Sequence.of_int 0 in
  let b = Sequence.of_int third in
  let c = Sequence.of_int (2 * third) in
  Alcotest.(check bool) "b newer than a" true (Sequence.newer b a);
  Alcotest.(check bool) "c newer than b" true (Sequence.newer c b);
  Alcotest.(check bool) "a newer than c (the wrap!)" true (Sequence.newer a c);
  let g = ring5 () in
  let flooders = make_flooders g in
  let update seq =
    { Update.origin = Node.of_int 0; seq; costs = [ (Link.id_of_int 0, 30) ] }
  in
  (* Every round of the three updates floods fully, forever. *)
  for _round = 1 to 4 do
    List.iter
      (fun seq ->
        let o = Broadcast.flood g flooders (update seq) in
        Alcotest.(check int) "still accepted everywhere" 5 o.Broadcast.reached)
      [ a; b; c ]
  done

let test_flood_all_accumulates () =
  let g = ring5 () in
  let flooders = make_flooders g in
  let u1 = Flooder.originate flooders.(0) ~costs:[ (Link.id_of_int 0, 42) ] in
  let u2 = Flooder.originate flooders.(2) ~costs:[ (Link.id_of_int 4, 60) ] in
  let o = Broadcast.flood_all g flooders [ u1; u2 ] in
  Alcotest.(check bool) "bits sum across floods" true
    (o.Broadcast.bits >= 2. *. Update.size_bits u1)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_flooding"
    [ ( "sequence",
        [ Alcotest.test_case "basics" `Quick test_sequence_basics;
          Alcotest.test_case "wraps" `Quick test_sequence_wraps;
          Alcotest.test_case "half space" `Quick test_sequence_half_space ]
        @ qsuite [ prop_sequence_antisymmetric ] );
      ("update", [ Alcotest.test_case "size" `Quick test_update_size ]);
      ( "flooding",
        [ Alcotest.test_case "reaches everyone" `Quick test_flood_reaches_everyone;
          Alcotest.test_case "dedup replay" `Quick test_flood_dedup_on_replay;
          Alcotest.test_case "newer supersedes" `Quick test_flood_newer_supersedes;
          Alcotest.test_case "no reverse forwarding" `Quick
            test_flood_never_reverses_arrival_link;
          Alcotest.test_case "flood_all" `Quick test_flood_all_accumulates;
          Alcotest.test_case "crash of 1980" `Quick test_cyclic_sequences_never_die ]
        @ qsuite [ prop_flood_covers_random_graphs ] ) ]

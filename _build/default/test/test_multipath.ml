(* Tests for routing_multipath: the §4.5 "future work" extension. *)

open Routing_topology
module Reverse_spf = Routing_multipath.Reverse_spf
module Ecmp = Routing_multipath.Ecmp
module Yen = Routing_multipath.Yen
module Multipath_sim = Routing_multipath.Multipath_sim
module Flow_sim = Routing_sim.Flow_sim
module Dijkstra = Routing_spf.Dijkstra
module Spf_tree = Routing_spf.Spf_tree
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng

let node g name = Option.get (Graph.node_by_name g name)

(* A square: S -> A -> T and S -> B -> T, two equal two-hop paths. *)
let square () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "S" "A" in
  let _ = Builder.trunk b Line_type.T56 "A" "T" in
  let _ = Builder.trunk b Line_type.T56 "S" "B" in
  let _ = Builder.trunk b Line_type.T56 "B" "T" in
  Builder.build b

let constant_cost c = fun _ -> c

(* --- Reverse SPF --- *)

let test_reverse_distances () =
  let g = square () in
  let rspf = Reverse_spf.compute g ~cost:(constant_cost 10) (node g "T") in
  Alcotest.(check int) "dst at zero" 0 (Reverse_spf.dist_to rspf (node g "T"));
  Alcotest.(check int) "A one link" 10 (Reverse_spf.dist_to rspf (node g "A"));
  Alcotest.(check int) "S two links" 20 (Reverse_spf.dist_to rspf (node g "S"))

let test_reverse_matches_forward () =
  let rng = Rng.create 21 in
  let g = Generators.ring_chord rng ~nodes:12 ~chords:6 in
  let costs = Array.init (Graph.link_count g) (fun _ -> 1 + Rng.int rng 40) in
  let cost lid = costs.(Link.id_to_int lid) in
  let dst = Node.of_int 3 in
  let rspf = Reverse_spf.compute g ~cost dst in
  Graph.iter_nodes g (fun src ->
      let tree = Dijkstra.compute g ~cost src in
      let fwd = if Spf_tree.reached tree dst then Spf_tree.dist tree dst else max_int in
      let fwd = if Node.equal src dst then 0 else fwd in
      Alcotest.(check int) "reverse dist = forward dist" fwd
        (Reverse_spf.dist_to rspf src))

let test_next_hop_sets () =
  let g = square () in
  let rspf = Reverse_spf.compute g ~cost:(constant_cost 10) (node g "T") in
  Alcotest.(check int) "S has two equal next hops" 2
    (List.length (Reverse_spf.next_hops rspf (node g "S")));
  Alcotest.(check int) "A has one" 1
    (List.length (Reverse_spf.next_hops rspf (node g "A")));
  Alcotest.(check int) "T has none" 0
    (List.length (Reverse_spf.next_hops rspf (node g "T")))

let test_descending_order () =
  let g = square () in
  let rspf = Reverse_spf.compute g ~cost:(constant_cost 10) (node g "T") in
  let order = Reverse_spf.nodes_by_descending_distance rspf in
  let dists = List.map (Reverse_spf.dist_to rspf) order in
  let rec nonincreasing = function
    | a :: (b :: _ as rest) -> a >= b && nonincreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "farthest first" true (nonincreasing dists);
  Alcotest.(check int) "all nodes present" 4 (List.length order)

(* --- ECMP spreading --- *)

let test_ecmp_even_split () =
  let g = square () in
  let tm = Traffic_matrix.create ~nodes:4 in
  Traffic_matrix.set tm ~src:(node g "S") ~dst:(node g "T") 1000.;
  let loads = Ecmp.spread g ~cost:(constant_cost 10) tm in
  let sa = Option.get (Graph.find_link g ~src:(node g "S") ~dst:(node g "A")) in
  let sb = Option.get (Graph.find_link g ~src:(node g "S") ~dst:(node g "B")) in
  Alcotest.(check (float 1e-9)) "half via A" 500.
    loads.Ecmp.offered_bps.(Link.id_to_int sa.Link.id);
  Alcotest.(check (float 1e-9)) "half via B" 500.
    loads.Ecmp.offered_bps.(Link.id_to_int sb.Link.id);
  Alcotest.(check (float 1e-9)) "all delivered" 1000. loads.Ecmp.delivered_bps;
  Alcotest.(check (float 1e-9)) "nothing unrouted" 0. loads.Ecmp.unrouted_bps

let test_ecmp_single_path_matches_tree () =
  (* With unequal costs there is a unique shortest path: ECMP = SPF. *)
  let g = square () in
  let sa = Option.get (Graph.find_link g ~src:(node g "S") ~dst:(node g "A")) in
  let cost lid = if Link.id_equal lid sa.Link.id then 25 else 10 in
  let tm = Traffic_matrix.create ~nodes:4 in
  Traffic_matrix.set tm ~src:(node g "S") ~dst:(node g "T") 1000.;
  let loads = Ecmp.spread g ~cost tm in
  let sb = Option.get (Graph.find_link g ~src:(node g "S") ~dst:(node g "B")) in
  Alcotest.(check (float 1e-9)) "everything via B" 1000.
    loads.Ecmp.offered_bps.(Link.id_to_int sb.Link.id);
  Alcotest.(check (float 1e-9)) "nothing via A" 0.
    loads.Ecmp.offered_bps.(Link.id_to_int sa.Link.id)

let test_split_fractions_sum_to_one () =
  let g = square () in
  let rspf = Reverse_spf.compute g ~cost:(constant_cost 10) (node g "T") in
  let fractions = Ecmp.split_fractions rspf ~src:(node g "S") in
  (* Each link's fraction, summed per "distance layer", is 1; the simplest
     invariant is that fractions into T sum to 1. *)
  let into_t =
    List.fold_left
      (fun acc (lid, f) ->
        let l = Graph.link g lid in
        if Node.equal l.Link.dst (node g "T") then acc +. f else acc)
      0. fractions
  in
  Alcotest.(check (float 1e-9)) "unit flow arrives" 1. into_t

(* Conservation on random graphs: total offered on links equals the
   demand-weighted expected hop count (each surviving bit of demand loads
   exactly [hops] links). *)
let prop_ecmp_conservation =
  QCheck2.Test.make ~name:"ecmp load = demand x expected hops" ~count:30
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nodes = 4 + Rng.int rng 10 in
      let g = Generators.ring_chord rng ~nodes ~chords:(Rng.int rng nodes) in
      let costs = Array.init (Graph.link_count g) (fun _ -> 1 + Rng.int rng 30) in
      let cost lid = costs.(Link.id_to_int lid) in
      let tm = Traffic_matrix.gravity rng ~nodes ~total_bps:10_000. in
      let loads = Ecmp.spread g ~cost tm in
      let total_on_links = Array.fold_left ( +. ) 0. loads.Ecmp.offered_bps in
      let expected =
        Traffic_matrix.fold tm ~init:0. ~f:(fun acc ~src ~dst demand ->
            let rspf = Reverse_spf.compute g ~cost dst in
            match Ecmp.expectation rspf ~link_delay_s:(fun _ -> 0.) src with
            | Some e -> acc +. (demand *. e.Ecmp.expected_hops)
            | None -> acc)
      in
      Float.abs (total_on_links -. expected) < 1e-6 *. Float.max 1. expected)

let test_expectation_square () =
  let g = square () in
  let rspf = Reverse_spf.compute g ~cost:(constant_cost 10) (node g "T") in
  match Ecmp.expectation rspf ~link_delay_s:(fun _ -> 0.01) (node g "S") with
  | Some e ->
    Alcotest.(check (float 1e-9)) "two hops either way" 2. e.Ecmp.expected_hops;
    Alcotest.(check (float 1e-9)) "20ms" 0.02 e.Ecmp.expected_delay_s;
    Alcotest.(check (float 1e-9)) "lossless" 1. e.Ecmp.delivery_fraction
  | None -> Alcotest.fail "reachable"

let test_expectation_loss_compounds () =
  let g = square () in
  let rspf = Reverse_spf.compute g ~cost:(constant_cost 10) (node g "T") in
  match
    Ecmp.expectation ~link_loss:(fun _ -> 0.1) rspf
      ~link_delay_s:(fun _ -> 0.) (node g "S")
  with
  | Some e ->
    Alcotest.(check (float 1e-9)) "two 10% losses" 0.81 e.Ecmp.delivery_fraction
  | None -> Alcotest.fail "reachable"

(* --- Yen's k shortest paths --- *)

let test_yen_first_is_dijkstra () =
  let g = square () in
  let cost = constant_cost 10 in
  let src = node g "S" and dst = node g "T" in
  match (Yen.shortest g ~cost ~src ~dst, Yen.k_shortest g ~cost ~src ~dst ~k:1) with
  | Some best, [ only ] -> Alcotest.(check int) "same cost" best.Yen.cost only.Yen.cost
  | _ -> Alcotest.fail "expected paths"

let test_yen_enumerates_diamond () =
  let g = square () in
  let paths = Yen.k_shortest g ~cost:(constant_cost 10) ~src:(node g "S")
      ~dst:(node g "T") ~k:5 in
  (* S-A-T, S-B-T at 20; then nothing shorter than the 4-hop backtracking
     ones, which are not loopless here (S-A-T requires revisiting): the
     square has exactly 2 loopless S->T paths. *)
  Alcotest.(check int) "two loopless paths" 2 (List.length paths);
  List.iter
    (fun p -> Alcotest.(check int) "both cost 20" 20 p.Yen.cost)
    paths

let test_yen_ordering_and_distinct () =
  let rng = Rng.create 5 in
  let g = Generators.ring_chord rng ~nodes:10 ~chords:8 in
  let costs = Array.init (Graph.link_count g) (fun _ -> 1 + Rng.int rng 20) in
  let cost lid = costs.(Link.id_to_int lid) in
  let paths =
    Yen.k_shortest g ~cost ~src:(Node.of_int 0) ~dst:(Node.of_int 5) ~k:6
  in
  Alcotest.(check bool) "several alternates found" true (List.length paths >= 3);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a.Yen.cost <= b.Yen.cost && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "cost ordered" true (nondecreasing paths);
  let id_lists =
    List.map (fun p -> List.map (fun (l : Link.t) -> Link.id_to_int l.Link.id) p.Yen.links) paths
  in
  Alcotest.(check int) "all distinct" (List.length paths)
    (List.length (List.sort_uniq compare id_lists))

let test_yen_paths_loopless () =
  let rng = Rng.create 9 in
  let g = Generators.ring_chord rng ~nodes:12 ~chords:10 in
  let paths =
    Yen.k_shortest g ~cost:(constant_cost 7) ~src:(Node.of_int 1)
      ~dst:(Node.of_int 7) ~k:8
  in
  List.iter
    (fun p ->
      let nodes = Yen.path_nodes p ~src:(Node.of_int 1) in
      let ids = List.map Node.to_int nodes in
      Alcotest.(check int) "no repeated node" (List.length ids)
        (List.length (List.sort_uniq Int.compare ids));
      (* Path is actually connected and ends at the destination. *)
      let rec connected = function
        | (a : Link.t) :: (b :: _ as rest) ->
          Node.equal a.Link.dst b.Link.src && connected rest
        | _ -> true
      in
      Alcotest.(check bool) "links chain" true (connected p.Yen.links))
    paths

let test_yen_validation () =
  let g = square () in
  Alcotest.(check bool) "k < 1 raises" true
    (try
       ignore (Yen.k_shortest g ~cost:(constant_cost 1) ~src:(node g "S")
                 ~dst:(node g "T") ~k:0);
       false
     with Invalid_argument _ -> true)

(* Exhaustive ground truth: all loopless paths by DFS on a small graph. *)
let all_loopless_paths g ~cost ~src ~dst =
  let paths = ref [] in
  let rec dfs node visited acc_links acc_cost =
    if Node.equal node dst then paths := (List.rev acc_links, acc_cost) :: !paths
    else
      List.iter
        (fun (l : Link.t) ->
          let j = Node.to_int l.Link.dst in
          if not (List.mem j visited) then
            dfs l.Link.dst (j :: visited) (l :: acc_links)
              (acc_cost + cost l.Link.id))
        (Graph.out_links g node)
  in
  dfs src [ Node.to_int src ] [] 0;
  List.sort
    (fun (la, ca) (lb, cb) ->
      match Int.compare ca cb with
      | 0 ->
        compare
          (List.map (fun (l : Link.t) -> Link.id_to_int l.Link.id) la)
          (List.map (fun (l : Link.t) -> Link.id_to_int l.Link.id) lb)
      | c -> c)
    !paths

let prop_yen_matches_exhaustive =
  QCheck2.Test.make ~name:"yen = exhaustive enumeration on small graphs"
    ~count:40
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nodes = 4 + Rng.int rng 3 in
      let g = Generators.ring_chord rng ~nodes ~chords:(Rng.int rng 3) in
      let costs = Array.init (Graph.link_count g) (fun _ -> 1 + Rng.int rng 9) in
      let cost lid = costs.(Link.id_to_int lid) in
      let src = Node.of_int 0 and dst = Node.of_int (nodes - 1) in
      let truth = all_loopless_paths g ~cost ~src ~dst in
      let k = List.length truth in
      let yen = Yen.k_shortest g ~cost ~src ~dst ~k in
      (* Same number of paths and identical cost multiset. *)
      List.length yen = k
      && List.map (fun p -> p.Yen.cost) yen = List.map snd truth)

(* --- The §4.5 scenario: one large flow, two parallel paths --- *)

let test_large_flow_single_path_limit_cycles () =
  let g = square () in
  let tm = Traffic_matrix.create ~nodes:4 in
  (* 1.4x the capacity of one path: indivisible under single-path routing. *)
  Traffic_matrix.set tm ~src:(node g "S") ~dst:(node g "T") 78_400.;
  let single = Flow_sim.create g Metric.Hn_spf tm in
  ignore (Flow_sim.run single ~periods:30);
  let multi = Multipath_sim.create g Metric.Hn_spf tm in
  ignore (Multipath_sim.run multi ~periods:30);
  let single_delivered =
    let kept = List.filteri (fun i _ -> i >= 10) (Flow_sim.history single) in
    List.fold_left (fun acc s -> acc +. s.Flow_sim.delivered_bps) 0. kept
    /. float_of_int (List.length kept)
  in
  let multi_delivered = Multipath_sim.mean_delivered_bps multi ~skip:10 in
  (* Single path can carry at most one link (56k, less under loss);
     ECMP splits 0.7/0.7 across both paths and carries nearly everything. *)
  Alcotest.(check bool)
    (Printf.sprintf "multipath carries more (%.0f vs %.0f bps)" multi_delivered
       single_delivered)
    true
    (multi_delivered > 1.25 *. single_delivered);
  let sa = Option.get (Graph.find_link g ~src:(node g "S") ~dst:(node g "A")) in
  let sb = Option.get (Graph.find_link g ~src:(node g "S") ~dst:(node g "B")) in
  let ua = Multipath_sim.link_utilization multi sa.Link.id in
  let ub = Multipath_sim.link_utilization multi sb.Link.id in
  Alcotest.(check bool)
    (Printf.sprintf "balanced split (%.2f / %.2f)" ua ub)
    true
    (Float.abs (ua -. ub) < 0.05 && ua > 0.5)

let test_multipath_sim_light_load_lossless () =
  let g = square () in
  let tm = Traffic_matrix.create ~nodes:4 in
  Traffic_matrix.set tm ~src:(node g "S") ~dst:(node g "T") 10_000.;
  let sim = Multipath_sim.create g Metric.Hn_spf tm in
  let stats = List.rev (Multipath_sim.run sim ~periods:10) in
  let last = List.hd stats in
  Alcotest.(check bool) "nearly lossless" true
    (last.Multipath_sim.dropped_bps < 1.);
  Alcotest.(check bool) "delay ~ 2 hops of 56k" true
    (last.Multipath_sim.mean_delay_s > 0.02 && last.Multipath_sim.mean_delay_s < 0.08)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_multipath"
    [ ( "reverse_spf",
        [ Alcotest.test_case "distances" `Quick test_reverse_distances;
          Alcotest.test_case "matches forward" `Quick test_reverse_matches_forward;
          Alcotest.test_case "next hop sets" `Quick test_next_hop_sets;
          Alcotest.test_case "descending order" `Quick test_descending_order ] );
      ( "ecmp",
        [ Alcotest.test_case "even split" `Quick test_ecmp_even_split;
          Alcotest.test_case "single path" `Quick test_ecmp_single_path_matches_tree;
          Alcotest.test_case "fractions" `Quick test_split_fractions_sum_to_one;
          Alcotest.test_case "expectation" `Quick test_expectation_square;
          Alcotest.test_case "loss compounds" `Quick test_expectation_loss_compounds
        ]
        @ qsuite [ prop_ecmp_conservation ] );
      ( "yen",
        [ Alcotest.test_case "first = dijkstra" `Quick test_yen_first_is_dijkstra;
          Alcotest.test_case "diamond" `Quick test_yen_enumerates_diamond;
          Alcotest.test_case "ordering/distinct" `Quick test_yen_ordering_and_distinct;
          Alcotest.test_case "loopless" `Quick test_yen_paths_loopless;
          Alcotest.test_case "validation" `Quick test_yen_validation ]
        @ qsuite [ prop_yen_matches_exhaustive ] );
      ( "multipath_sim (§4.5)",
        [ Alcotest.test_case "large flow" `Quick
            test_large_flow_single_path_limit_cycles;
          Alcotest.test_case "light load" `Quick
            test_multipath_sim_light_load_lossless ] ) ]

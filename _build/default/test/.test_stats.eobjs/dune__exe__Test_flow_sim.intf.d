test/test_flow_sim.mli:

test/test_metric.ml: Alcotest Builder Float Graph Line_type Link List Printf QCheck2 QCheck_alcotest Routing_metric Routing_topology

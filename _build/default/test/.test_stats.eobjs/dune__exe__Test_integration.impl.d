test/test_integration.ml: Alcotest Arpanet Builder Float Generators Graph Line_type Link Node Printf Routing_metric Routing_sim Routing_stats Routing_topology String Traffic_matrix

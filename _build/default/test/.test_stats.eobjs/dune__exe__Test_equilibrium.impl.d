test/test_equilibrium.ml: Alcotest Arpanet Array Builder Float Graph Lazy Line_type Link List Printf Routing_equilibrium Routing_metric Routing_stats Routing_topology

test/test_spf.ml: Alcotest Array Builder Generators Graph Int Line_type Link List Node Option Printf QCheck2 QCheck_alcotest Routing_bellman Routing_spf Routing_stats Routing_topology

test/test_stats.ml: Alcotest Array Astring Float Fun Int List QCheck2 QCheck_alcotest Routing_stats String

test/test_spf.mli:

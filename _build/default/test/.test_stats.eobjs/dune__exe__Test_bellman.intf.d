test/test_bellman.mli:

test/test_sim.ml: Alcotest Arpanet Builder Float Generators Graph Line_type Link List Node Option Printf Routing_metric Routing_sim Routing_stats Routing_topology String Traffic_matrix

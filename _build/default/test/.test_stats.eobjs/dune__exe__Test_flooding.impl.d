test/test_flooding.ml: Alcotest Array Generators Graph Link List Node Option QCheck2 QCheck_alcotest Routing_flooding Routing_stats Routing_topology

test/test_flooding.mli:

test/test_flow_sim.ml: Alcotest Array Float Generators Graph Link List Node Printf QCheck2 QCheck_alcotest Routing_metric Routing_sim Routing_stats Routing_topology String Traffic_matrix

test/test_equilibrium.mli:

test/test_bellman.ml: Alcotest Generators Graph Link List Node Printf Routing_bellman Routing_metric Routing_sim Routing_stats Routing_topology Traffic_matrix

(* Tests for the 1969 distributed Bellman-Ford substrate (§2.1). *)

open Routing_topology
module Bf = Routing_bellman.Bellman_ford
module Legacy = Routing_metric.Legacy
module Rng = Routing_stats.Rng

let line4 () = Generators.line 4

let test_propagates_one_hop_per_round () =
  let g = line4 () in
  let bf = Bf.create g in
  let n = Node.of_int in
  Alcotest.(check (option int)) "self known" (Some 0) (Bf.distance bf ~from:(n 0) (n 0));
  Alcotest.(check (option int)) "far node unknown" None
    (Bf.distance bf ~from:(n 0) (n 3));
  Bf.round bf ~link_cost:(fun _ -> 5);
  Alcotest.(check (option int)) "neighbor after 1 round" (Some 5)
    (Bf.distance bf ~from:(n 0) (n 1));
  Alcotest.(check (option int)) "still unknown at distance 3" None
    (Bf.distance bf ~from:(n 0) (n 3));
  Bf.round bf ~link_cost:(fun _ -> 5);
  Bf.round bf ~link_cost:(fun _ -> 5);
  Alcotest.(check (option int)) "full path after 3 rounds" (Some 15)
    (Bf.distance bf ~from:(n 0) (n 3))

let test_converges_and_detects () =
  let g = Generators.ring 6 in
  let bf = Bf.create g in
  match Bf.rounds_to_converge bf ~link_cost:(fun _ -> 3) ~max_rounds:20 with
  | Some rounds ->
    Alcotest.(check bool) "within diameter rounds" true (rounds <= 4);
    Alcotest.(check bool) "converged predicate agrees" true
      (Bf.converged bf ~link_cost:(fun _ -> 3))
  | None -> Alcotest.fail "should converge"

let test_loop_free_when_converged () =
  let rng = Rng.create 99 in
  let g = Generators.ring_chord rng ~nodes:12 ~chords:6 in
  let bf = Bf.create g in
  (match Bf.rounds_to_converge bf ~link_cost:(fun _ -> 2) ~max_rounds:40 with
  | Some _ -> ()
  | None -> Alcotest.fail "no convergence");
  Alcotest.(check (list (pair (of_pp Node.pp) (of_pp Node.pp))))
    "no loops at rest" [] (Bf.forwarding_loops bf)

(* The §2.1 pathology: a volatile instantaneous metric makes distributed
   Bellman-Ford form forwarding loops between exchanges. *)
let test_volatile_metric_forms_loops () =
  let rng = Rng.create 4 in
  let g = Generators.ring_chord rng ~nodes:14 ~chords:8 in
  let bf = Bf.create g in
  (* Settle on some initial queue state first. *)
  let q0 = fun _ -> 4 in
  ignore (Bf.rounds_to_converge bf ~link_cost:q0 ~max_rounds:40);
  (* Now the queues jump around wildly between rounds, as instantaneous
     samples do (§2.1): count loops seen across the next exchanges. *)
  let loops_seen = ref 0 in
  for round = 1 to 30 do
    let volatile lid =
      let x = (round * 7919) + (13 * Link.id_to_int lid) in
      Legacy.cost_of_queue ~queue_length:(x * x mod 97)
    in
    Bf.round bf ~link_cost:volatile;
    loops_seen := !loops_seen + List.length (Bf.forwarding_loops bf)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "volatile metric produced loops (%d)" !loops_seen)
    true (!loops_seen > 0)

(* --- Bellman_sim: the 1969 generation end-to-end --- *)

module Bf_sim = Routing_bellman.Bellman_sim
module Flow_sim = Routing_sim.Flow_sim
module Metric = Routing_metric.Metric

let gen0_scenario () =
  let rng = Rng.create 31 in
  let g = Generators.ring_chord rng ~nodes:16 ~chords:10 in
  let tm =
    Traffic_matrix.gravity (Rng.create 32) ~nodes:(Graph.node_count g)
      ~total_bps:250_000.
  in
  (g, tm)

let test_bellman_sim_delivers_at_light_load () =
  let rng = Rng.create 41 in
  let g = Generators.ring_chord rng ~nodes:10 ~chords:6 in
  let tm = Traffic_matrix.uniform ~nodes:10 ~pair_bps:200. in
  let sim = Bf_sim.create ~seed:5 g tm in
  let stats = Bf_sim.run sim ~periods:10 in
  let last = List.nth stats 9 in
  Alcotest.(check bool) "most traffic delivered" true
    (last.Bf_sim.delivered_bps > 0.9 *. last.Bf_sim.offered_bps);
  Alcotest.(check bool) "delay positive" true (last.Bf_sim.mean_delay_s > 0.)

let test_bellman_sim_loops_under_load () =
  (* §2.1: the volatile instantaneous metric forms loops; under load the
     queues (and thus samples) are large and noisy, so loops show up
     within a few periods. *)
  let g, tm = gen0_scenario () in
  let sim = Bf_sim.create ~seed:5 g tm in
  let stats = Bf_sim.run sim ~periods:20 in
  let loop_periods =
    List.length (List.filter (fun s -> s.Bf_sim.looping_pairs > 0) stats)
  in
  Alcotest.(check bool)
    (Printf.sprintf "loops observed (%d/20 periods)" loop_periods)
    true (loop_periods > 0)

let test_bellman_sim_worse_than_spf () =
  (* "The performance of D-SPF was far superior to that of the
     Bellman-Ford algorithm" (§3.3) — at equal offered load the 1969
     scheme delivers less than even D-SPF here. *)
  let g, tm = gen0_scenario () in
  let bf = Bf_sim.create ~seed:5 g tm in
  let bf_stats = Bf_sim.run bf ~periods:20 in
  let bf_delivered =
    List.fold_left (fun acc s -> acc +. s.Bf_sim.delivered_bps) 0.
      (List.filteri (fun i _ -> i >= 5) bf_stats)
    /. 15.
  in
  let spf = Flow_sim.create g Metric.Hn_spf tm in
  ignore (Flow_sim.run spf ~periods:20);
  let spf_delivered =
    (Flow_sim.indicators spf ~skip:5 ()).Routing_sim.Measure.internode_traffic_bps
  in
  Alcotest.(check bool)
    (Printf.sprintf "HN-SPF delivers more (%.0f vs %.0f bps)" spf_delivered
       bf_delivered)
    true
    (spf_delivered > bf_delivered)

let test_exchange_interval () =
  Alcotest.(check (float 1e-9)) "2/3 second" (2. /. 3.) Bf.exchange_interval_s

let () =
  Alcotest.run "routing_bellman"
    [ ( "bellman_ford",
        [ Alcotest.test_case "one hop per round" `Quick
            test_propagates_one_hop_per_round;
          Alcotest.test_case "converges" `Quick test_converges_and_detects;
          Alcotest.test_case "loop free at rest" `Quick test_loop_free_when_converged;
          Alcotest.test_case "volatile metric loops (§2.1)" `Quick
            test_volatile_metric_forms_loops;
          Alcotest.test_case "exchange interval" `Quick test_exchange_interval ] );
      ( "bellman_sim",
        [ Alcotest.test_case "light load delivers" `Quick
            test_bellman_sim_delivers_at_light_load;
          Alcotest.test_case "loops under load (§2.1)" `Quick
            test_bellman_sim_loops_under_load;
          Alcotest.test_case "worse than SPF (§3.3)" `Quick
            test_bellman_sim_worse_than_spf ] ) ]

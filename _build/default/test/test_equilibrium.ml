(* Tests for the §5 analysis library: metric maps, the network response
   map, equilibrium fixed points and cobweb dynamics. *)

open Routing_topology
module Metric_map = Routing_equilibrium.Metric_map
module Response_map = Routing_equilibrium.Response_map
module Fixed_point = Routing_equilibrium.Fixed_point
module Cobweb = Routing_equilibrium.Cobweb
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng

(* Shared fixtures: the ARPANET and its response map are expensive enough
   to build once. *)
let arpanet = lazy (Arpanet.topology ())

let traffic =
  lazy (Arpanet.peak_traffic (Rng.create 7) (Lazy.force arpanet))

let response =
  lazy (Response_map.compute (Lazy.force arpanet) (Lazy.force traffic))

let probe () = Arpanet.representative_link (Lazy.force arpanet)

(* --- Metric maps (Figs 4, 5) --- *)

let test_curves_monotone () =
  List.iter
    (fun kind ->
      let curve = Metric_map.curve kind (probe ()) ~samples:50 in
      Array.iteri
        (fun i (_, c) ->
          if i > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "%s nondecreasing" (Metric.kind_name kind))
              true
              (c >= snd curve.(i - 1)))
        curve)
    [ Metric.Min_hop; Metric.D_spf; Metric.Hn_spf ]

let test_normalization_starts_at_one () =
  List.iter
    (fun kind ->
      let _, v0 = (Metric_map.normalized kind (probe ()) ~samples:10).(0) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s idle = 1 hop" (Metric.kind_name kind))
        1. v0)
    [ Metric.Min_hop; Metric.D_spf; Metric.Hn_spf ]

let test_fig4_shapes () =
  let p = probe () in
  (* HN-SPF tops out at 3x idle; D-SPF is far steeper at high load. *)
  let hn_hi = Metric_map.cost_in_hops Metric.Hn_spf p ~utilization:0.99 in
  let d_hi = Metric_map.cost_in_hops Metric.D_spf p ~utilization:0.99 in
  Alcotest.(check bool) "hn-spf capped at ~3 hops" true (hn_hi <= 3.01);
  Alcotest.(check bool)
    (Printf.sprintf "d-spf much steeper (%.1f hops)" d_hi)
    true (d_hi > 10.);
  (* And flat vs rising at 50%: HN-SPF still 1 hop, D-SPF already moving. *)
  Alcotest.(check (float 1e-9)) "hn-spf flat at 0.45" 1.
    (Metric_map.cost_in_hops Metric.Hn_spf p ~utilization:0.45)

let test_fig5_satellite_ordering () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "A" "B" in
  let _ = Builder.trunk b Line_type.S56 "A" "C" in
  let g = Builder.build b in
  let terr = Graph.link g (Link.id_of_int 0) in
  let sat = Graph.link g (Link.id_of_int 2) in
  let c u l = Metric.equilibrium_cost Metric.Hn_spf l ~utilization:u in
  Alcotest.(check bool) "idle: terrestrial favored" true (c 0. terr < c 0. sat);
  Alcotest.(check int) "saturated: equal" (c 0.99 terr) (c 0.99 sat)

(* --- Response map (Figs 7, 8) --- *)

let test_shed_statistics_shape () =
  let stats =
    Response_map.shed_statistics (Lazy.force arpanet) (Lazy.force traffic)
  in
  Alcotest.(check bool) "covers short and long routes" true
    (List.length stats >= 8);
  (* Fig 7's message: longer routes have alternates only slightly longer,
     so their shed cost falls with route length. *)
  let short = List.hd stats in
  let long = List.nth stats (List.length stats - 1) in
  Alcotest.(check bool) "short routes cling harder" true
    (short.Response_map.mean_shed_hops > 2. *. long.Response_map.mean_shed_hops);
  List.iter
    (fun s ->
      Alcotest.(check bool) "mean within min/max" true
        (s.Response_map.mean_shed_hops >= s.Response_map.min_shed_hops
        && s.Response_map.mean_shed_hops <= s.Response_map.max_shed_hops);
      Alcotest.(check bool) "at least one route" true (s.Response_map.routes > 0))
    stats

let test_response_map_monotone_decreasing () =
  let rm = Lazy.force response in
  let pts = Response_map.points rm in
  Array.iteri
    (fun i (_, y) ->
      if i > 0 then
        Alcotest.(check bool) "traffic falls as cost rises" true
          (y <= snd pts.(i - 1) +. 1e-9))
    pts

let test_response_map_normalized_at_one_hop () =
  let rm = Lazy.force response in
  Alcotest.(check (float 1e-6)) "1 at one hop" 1. (Response_map.traffic_at rm 1.)

let test_response_map_epsilon_problem () =
  (* §5.2: "a very small change in the reported cost can cause large
     changes in traffic" — the drop from x=0.5 to x=1.5 is large. *)
  let rm = Lazy.force response in
  let hi = Response_map.traffic_at rm 0.5 in
  let lo = Response_map.traffic_at rm 1.5 in
  Alcotest.(check bool)
    (Printf.sprintf "epsilon problem visible (%.2f -> %.2f)" hi lo)
    true
    (hi -. lo > 0.4);
  (* "If the link reports a cost of 4, then over 90% of its base traffic
     will be shed" — allow some slack for our synthesized topology. *)
  Alcotest.(check bool) "cost 4 sheds most traffic" true
    (Response_map.traffic_at rm 4. < 0.3)

let test_response_map_interpolation () =
  let rm = Lazy.force response in
  let a = Response_map.traffic_at rm 2.5 in
  let b = Response_map.traffic_at rm 3.5 in
  let mid = Response_map.traffic_at rm 3.0 in
  Alcotest.(check (float 1e-9)) "linear between points" ((a +. b) /. 2.) mid;
  (* Clamped at the ends. *)
  Alcotest.(check (float 1e-9)) "left clamp"
    (Response_map.traffic_at rm 0.5)
    (Response_map.traffic_at rm 0.01);
  Alcotest.(check (float 1e-9)) "right clamp"
    (Response_map.traffic_at rm 9.5)
    (Response_map.traffic_at rm 50.)

let test_base_utilization () =
  let g = Lazy.force arpanet and tm = Lazy.force traffic in
  let rm = Lazy.force response in
  let u = Response_map.base_utilization rm g tm (probe ()) in
  Alcotest.(check bool)
    (Printf.sprintf "plausible min-hop load (%.2f)" u)
    true
    (u > 0. && u < 2.)

(* --- Fixed points (Figs 9, 10) --- *)

let test_equilibrium_is_fixed () =
  let rm = Lazy.force response in
  List.iter
    (fun kind ->
      List.iter
        (fun load ->
          let e = Fixed_point.equilibrium kind (probe ()) rm ~offered_load:load in
          let u = load *. Response_map.traffic_at rm e.Fixed_point.cost_hops in
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%s at load %.2f: utilization consistent"
               (Metric.kind_name kind) load)
            e.Fixed_point.utilization u;
          (* The metric map evaluated at the equilibrium utilization gives
             back (nearly) the equilibrium cost: the defining property.
             Integer costs make the map a stair function, so allow one
             stair step of slack. *)
          let back =
            Metric_map.cost_in_hops kind (probe ())
              ~utilization:(Float.min u 0.99)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s at load %.2f: cost self-consistent (%.2f vs %.2f)"
               (Metric.kind_name kind) load e.Fixed_point.cost_hops back)
            true
            (Float.abs (back -. e.Fixed_point.cost_hops) < 0.6))
        [ 0.5; 1.0; 2.0 ])
    [ Metric.D_spf; Metric.Hn_spf ]

let test_minhop_equilibrium () =
  let rm = Lazy.force response in
  let e = Fixed_point.equilibrium Metric.Min_hop (probe ()) rm ~offered_load:2. in
  Alcotest.(check (float 1e-9)) "cost pinned at one hop" 1. e.Fixed_point.cost_hops;
  Alcotest.(check (float 1e-9)) "oversubscribed" 2. e.Fixed_point.utilization;
  Alcotest.(check (float 1e-9)) "carries capacity" 1. e.Fixed_point.carried

let test_fig10_ordering () =
  let rm = Lazy.force response in
  let carried kind load =
    (Fixed_point.equilibrium kind (probe ()) rm ~offered_load:load)
      .Fixed_point.carried
  in
  (* Light load: all three behave alike (§3.1). *)
  List.iter
    (fun load ->
      Alcotest.(check (float 0.02)) "light: hn = minhop"
        (carried Metric.Min_hop load) (carried Metric.Hn_spf load);
      Alcotest.(check (float 0.02)) "light: dspf = minhop"
        (carried Metric.Min_hop load) (carried Metric.D_spf load))
    [ 0.2; 0.4 ];
  (* Overload: min-hop >= HN-SPF >= D-SPF, strictly above at the top end
     ("HN-SPF ... maintains higher link utilizations than D-SPF"). *)
  List.iter
    (fun load ->
      let mh = carried Metric.Min_hop load in
      let hn = carried Metric.Hn_spf load in
      let d = carried Metric.D_spf load in
      Alcotest.(check bool)
        (Printf.sprintf "ordering at load %.1f (mh %.2f hn %.2f d %.2f)" load mh
           hn d)
        true
        (mh >= hn -. 1e-9 && hn > d))
    [ 1.5; 2.0; 3.0; 4.0 ]

let test_equilibrium_curve () =
  let rm = Lazy.force response in
  let curve =
    Fixed_point.equilibrium_curve Metric.Hn_spf (probe ()) rm
      ~loads:[ 0.5; 1.0; 1.5 ]
  in
  Alcotest.(check int) "one point per load" 3 (List.length curve);
  List.iter
    (fun (load, e) ->
      Alcotest.(check bool) "carried <= min(load, 1)" true
        (e.Fixed_point.carried <= Fixed_point.ideal_carried load +. 1e-9))
    curve

(* --- Stability / loop gain (§5's control-theory claim) --- *)

module Stability = Routing_equilibrium.Stability

let test_gain_light_load_both_stable () =
  let rm = Lazy.force response in
  List.iter
    (fun kind ->
      let r = Stability.analyze kind (probe ()) rm ~offered_load:0.4 in
      Alcotest.(check bool)
        (Printf.sprintf "%s stable at light load" (Metric.kind_name kind))
        true r.Stability.stable)
    [ Metric.Min_hop; Metric.D_spf; Metric.Hn_spf ]

let test_gain_dspf_unstable_under_load () =
  let rm = Lazy.force response in
  List.iter
    (fun load ->
      let r = Stability.analyze Metric.D_spf (probe ()) rm ~offered_load:load in
      Alcotest.(check bool)
        (Printf.sprintf "D-SPF unstable at %.1f (|eig| %.2f)" load
           r.Stability.effective_gain)
        false r.Stability.stable)
    [ 1.0; 1.5; 2.0; 3.0 ]

let test_gain_hnspf_stable_everywhere () =
  let rm = Lazy.force response in
  List.iter
    (fun load ->
      let r = Stability.analyze Metric.Hn_spf (probe ()) rm ~offered_load:load in
      Alcotest.(check bool)
        (Printf.sprintf "HN-SPF stable at %.1f (|eig| %.2f)" load
           r.Stability.effective_gain)
        true r.Stability.stable)
    [ 0.3; 0.7; 1.0; 1.5; 2.0; 3.0 ]

let test_gain_sign_and_filter_algebra () =
  let rm = Lazy.force response in
  let r = Stability.analyze Metric.Hn_spf (probe ()) rm ~offered_load:1.0 in
  Alcotest.(check bool) "raw gain negative (more cost sheds traffic)" true
    (r.Stability.raw_gain < 0.);
  Alcotest.(check (float 1e-9)) "eigenvalue = |0.5 + 0.5 g|"
    (Float.abs (0.5 +. (0.5 *. r.Stability.raw_gain)))
    r.Stability.effective_gain;
  (* Consistency with the cobweb simulation: the analysis says stable, the
     trace converges (already asserted in the cobweb group). *)
  Alcotest.(check bool) "equilibrium utilization sensible" true
    (r.Stability.equilibrium_utilization > 0.3
    && r.Stability.equilibrium_utilization < 1.0)

let test_gain_minhop_zero () =
  let rm = Lazy.force response in
  let r = Stability.analyze Metric.Min_hop (probe ()) rm ~offered_load:2.0 in
  Alcotest.(check (float 0.)) "static metric has zero gain" 0.
    r.Stability.effective_gain

(* --- Cobweb dynamics (Figs 11, 12) --- *)

let test_dspf_unbounded_oscillation () =
  let rm = Lazy.force response in
  let trace =
    Cobweb.trace Metric.D_spf (probe ()) rm ~offered_load:1.0
      ~start:Cobweb.From_idle ~periods:30
  in
  let amplitude = Cobweb.tail_amplitude trace ~last:10 in
  Alcotest.(check bool)
    (Printf.sprintf "full-range swings (%.1f hops)" amplitude)
    true (amplitude > 10.);
  Alcotest.(check bool) "not converged" false
    (Cobweb.converged trace ~last:10 ~tolerance_hops:1.)

let test_hnspf_bounded () =
  let rm = Lazy.force response in
  let trace =
    Cobweb.trace Metric.Hn_spf (probe ()) rm ~offered_load:1.0
      ~start:Cobweb.From_idle ~periods:30
  in
  let amplitude = Cobweb.tail_amplitude trace ~last:10 in
  Alcotest.(check bool)
    (Printf.sprintf "bounded by the half-hop limit (%.2f hops)" amplitude)
    true
    (amplitude <= 16. /. 30. +. 1e-9);
  Alcotest.(check bool) "converged within tolerance" true
    (Cobweb.converged trace ~last:10 ~tolerance_hops:1.)

let test_hnspf_easing_monotone_entry () =
  let rm = Lazy.force response in
  let trace =
    Cobweb.trace Metric.Hn_spf (probe ()) rm ~offered_load:1.0
      ~start:Cobweb.From_max ~periods:30
  in
  (match trace with
  | p0 :: p1 :: _ ->
    Alcotest.(check (float 1e-9)) "starts at ceiling" 3. p0.Cobweb.cost_hops;
    Alcotest.(check bool) "walks down" true
      (p1.Cobweb.cost_hops < p0.Cobweb.cost_hops)
  | _ -> Alcotest.fail "trace too short");
  (* Ends in the same bounded regime as the from-idle run. *)
  Alcotest.(check bool) "settles" true
    (Cobweb.converged trace ~last:8 ~tolerance_hops:1.)

let test_minhop_trace_is_flat () =
  let rm = Lazy.force response in
  let trace =
    Cobweb.trace Metric.Min_hop (probe ()) rm ~offered_load:2.0
      ~start:Cobweb.From_idle ~periods:10
  in
  List.iter
    (fun p -> Alcotest.(check (float 1e-9)) "always one hop" 1. p.Cobweb.cost_hops)
    trace

let test_cobweb_rejects_hnspf_from_cost () =
  let rm = Lazy.force response in
  Alcotest.(check bool) "From_cost invalid for HN-SPF" true
    (try
       ignore
         (Cobweb.trace Metric.Hn_spf (probe ()) rm ~offered_load:1.
            ~start:(Cobweb.From_cost 42) ~periods:5);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "routing_equilibrium"
    [ ( "metric_map",
        [ Alcotest.test_case "monotone" `Quick test_curves_monotone;
          Alcotest.test_case "normalized at idle" `Quick
            test_normalization_starts_at_one;
          Alcotest.test_case "fig 4 shapes" `Quick test_fig4_shapes;
          Alcotest.test_case "fig 5 satellite" `Quick test_fig5_satellite_ordering ]
      );
      ( "response_map",
        [ Alcotest.test_case "fig 7 shed stats" `Quick test_shed_statistics_shape;
          Alcotest.test_case "monotone decreasing" `Quick
            test_response_map_monotone_decreasing;
          Alcotest.test_case "normalized" `Quick
            test_response_map_normalized_at_one_hop;
          Alcotest.test_case "epsilon problem" `Quick
            test_response_map_epsilon_problem;
          Alcotest.test_case "interpolation" `Quick test_response_map_interpolation;
          Alcotest.test_case "base utilization" `Quick test_base_utilization ] );
      ( "fixed_point",
        [ Alcotest.test_case "fixed point property" `Quick test_equilibrium_is_fixed;
          Alcotest.test_case "min-hop" `Quick test_minhop_equilibrium;
          Alcotest.test_case "fig 10 ordering" `Quick test_fig10_ordering;
          Alcotest.test_case "curve" `Quick test_equilibrium_curve ] );
      ( "stability",
        [ Alcotest.test_case "light load stable" `Quick
            test_gain_light_load_both_stable;
          Alcotest.test_case "d-spf unstable under load" `Quick
            test_gain_dspf_unstable_under_load;
          Alcotest.test_case "hn-spf stable everywhere" `Quick
            test_gain_hnspf_stable_everywhere;
          Alcotest.test_case "filter algebra" `Quick
            test_gain_sign_and_filter_algebra;
          Alcotest.test_case "min-hop zero" `Quick test_gain_minhop_zero ] );
      ( "cobweb",
        [ Alcotest.test_case "fig 11 d-spf unstable" `Quick
            test_dspf_unbounded_oscillation;
          Alcotest.test_case "fig 12 hn-spf bounded" `Quick test_hnspf_bounded;
          Alcotest.test_case "fig 12 easing" `Quick test_hnspf_easing_monotone_entry;
          Alcotest.test_case "min-hop flat" `Quick test_minhop_trace_is_flat;
          Alcotest.test_case "from_cost rejected" `Quick
            test_cobweb_rejects_hnspf_from_cost ] ) ]

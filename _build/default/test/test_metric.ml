(* Unit and property tests for routing_metric — the paper's contribution.
   Many cases check numbers the paper states outright (§3.2, §4.2-4.4). *)

open Routing_topology
module Units = Routing_metric.Units
module Queueing = Routing_metric.Queueing
module Measurement = Routing_metric.Measurement
module Hnm_params = Routing_metric.Hnm_params
module Hnm = Routing_metric.Hnm
module Dspf = Routing_metric.Dspf
module Legacy = Routing_metric.Legacy
module Significance = Routing_metric.Significance
module Metric = Routing_metric.Metric

(* A little test bench of one link per interesting line type. *)
let bench () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "A" "B" in
  let _ = Builder.trunk b Line_type.S56 "A" "C" in
  let _ = Builder.trunk b Line_type.T9_6 ~propagation_s:0.002 "B" "C" in
  let _ = Builder.trunk b Line_type.S9_6 "B" "D" in
  let _ = Builder.trunk b Line_type.T448 ~propagation_s:0.002 "C" "D" in
  Builder.build b

let link g i = Graph.link g (Link.id_of_int i)

let t56 g = link g 0

let s56 g = link g 2

let t96 g = link g 4

(* --- Units --- *)

let test_units_roundtrip () =
  Alcotest.(check int) "10 ms is one unit" 1 (Units.of_delay 0.010);
  Alcotest.(check int) "clamped high" Units.max_cost (Units.of_delay 100.);
  Alcotest.(check int) "clamped low" 1 (Units.of_delay 0.);
  Alcotest.(check (float 1e-9)) "hop in hops" 1. (Units.hops_of_cost Units.hop);
  Alcotest.(check int) "hops roundtrip" Units.hop (Units.cost_of_hops 1.);
  Alcotest.(check int) "max cost is 254" 254 Units.max_cost;
  Alcotest.(check int) "hop is 30 units" 30 Units.hop

(* --- Queueing (M/M/1 and M/M/1/K) --- *)

let test_mm1_service_times () =
  Alcotest.(check (float 1e-9)) "56k service" (600. /. 56_000.)
    (Queueing.service_time_s Line_type.T56);
  Alcotest.(check (float 1e-9)) "9.6k service" 0.0625
    (Queueing.service_time_s Line_type.T9_6)

let test_mm1_roundtrip () =
  List.iter
    (fun rho ->
      let w = Queueing.sojourn_s Line_type.T56 ~utilization:rho in
      Alcotest.(check (float 1e-6)) "delay->util inverts util->delay" rho
        (Queueing.utilization_of_sojourn Line_type.T56 ~sojourn_s:w))
    [ 0.; 0.25; 0.5; 0.75; 0.9; 0.99 ]

let test_mm1_clamps () =
  Alcotest.(check (float 1e-9)) "negative clamps to idle"
    (Queueing.sojourn_s Line_type.T56 ~utilization:0.)
    (Queueing.sojourn_s Line_type.T56 ~utilization:(-3.));
  Alcotest.(check bool) "above max clamps" true
    (Queueing.sojourn_s Line_type.T56 ~utilization:5.
    = Queueing.sojourn_s Line_type.T56 ~utilization:0.99)

let test_mm1_delay_includes_propagation () =
  let g = bench () in
  let sat = s56 g in
  Alcotest.(check bool) "satellite delay dominated by propagation" true
    (Queueing.delay_s sat ~utilization:0. > 0.25)

let test_mm1k_blocking_range () =
  List.iter
    (fun rho ->
      let p = Queueing.mm1k_blocking ~utilization:rho in
      Alcotest.(check bool)
        (Printf.sprintf "P in [0,1) at rho=%.2f" rho)
        true
        (p >= 0. && p < 1.))
    [ 0.; 0.1; 0.5; 0.9; 0.999; 1.0; 1.001; 1.5; 3.; 50. ]

let test_mm1k_blocking_asymptotics () =
  Alcotest.(check bool) "negligible when idle" true
    (Queueing.mm1k_blocking ~utilization:0.3 < 1e-15);
  Alcotest.(check (float 1e-3)) "heavy overload sheds the excess" (1. -. (1. /. 3.))
    (Queueing.mm1k_blocking ~utilization:3.);
  Alcotest.(check (float 1e-9)) "rho=1 exact value"
    (1. /. float_of_int (Queueing.buffer_capacity + 1))
    (Queueing.mm1k_blocking ~utilization:1.)

let test_mm1k_sojourn_bounded () =
  let s = Queueing.service_time_s Line_type.T56 in
  let bound = float_of_int (Queueing.buffer_capacity + 1) *. s in
  List.iter
    (fun rho ->
      let w = Queueing.mm1k_sojourn_s Line_type.T56 ~utilization:rho in
      Alcotest.(check bool)
        (Printf.sprintf "bounded at rho=%.2f" rho)
        true
        (w >= s -. 1e-12 && w <= bound +. 1e-9))
    [ 0.; 0.5; 0.9; 1.0; 1.5; 10.; 100. ]

let test_mm1k_matches_mm1_when_light () =
  List.iter
    (fun rho ->
      let inf = Queueing.sojourn_s Line_type.T56 ~utilization:rho in
      let fin = Queueing.mm1k_sojourn_s Line_type.T56 ~utilization:rho in
      Alcotest.(check bool) "close at light load" true
        (Float.abs (inf -. fin) /. inf < 0.01))
    [ 0.1; 0.3; 0.5 ]

let prop_mm1k_blocking_monotone =
  QCheck2.Test.make ~name:"blocking is monotone in offered load" ~count:200
    QCheck2.Gen.(pair (float_range 0. 5.) (float_range 0. 5.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Queueing.mm1k_blocking ~utilization:lo
      <= Queueing.mm1k_blocking ~utilization:hi +. 1e-9)

let test_md1_half_the_queueing () =
  List.iter
    (fun rho ->
      let s = Queueing.service_time_s Line_type.T56 in
      let mm1_queue = Queueing.sojourn_s Line_type.T56 ~utilization:rho -. s in
      let md1_queue = Queueing.md1_sojourn_s Line_type.T56 ~utilization:rho -. s in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "P-K at rho=%.2f" rho)
        (mm1_queue /. 2.) md1_queue)
    [ 0.1; 0.5; 0.9 ]

(* Robustness: the qualitative HN-SPF story survives swapping the queueing
   model.  Under M/D/1-measured delays the inferred utilization is lower,
   but the metric still rises monotonically to its ceiling. *)
let test_hnm_robust_to_queueing_model () =
  let g = bench () in
  let h = Hnm.create (t56 g) in
  let cost_at u =
    let d = Queueing.md1_sojourn_s Line_type.T56 ~utilization:u
            +. (t56 g).Link.propagation_s in
    Hnm.period_update h ~measured_delay_s:d
  in
  let costs = List.map cost_at [ 0.3; 0.6; 0.8; 0.95; 0.99; 0.99; 0.99 ] in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone under M/D/1" true (nondecreasing costs);
  Alcotest.(check bool) "still approaches the ceiling" true
    (List.nth costs 6 > 70)

(* The paper's §3.2 anchors: a saturated 9.6 kb/s line looks ~127x worse
   than an idle 56 kb/s line under the delay metric; within a 56k-only
   network the ratio is ~20x. *)
let test_dspf_dynamic_range () =
  let g = bench () in
  let idle56 = Dspf.cost_of_utilization (t56 g) ~utilization:0. in
  let full96 =
    Units.of_delay (Queueing.mm1k_delay_s (t96 g) ~utilization:1.5)
  in
  let full56 =
    Units.of_delay (Queueing.mm1k_delay_s (t56 g) ~utilization:1.5)
  in
  Alcotest.(check int) "idle 56k reports its bias" 2 idle56;
  let ratio96 = float_of_int full96 /. float_of_int idle56 in
  Alcotest.(check bool)
    (Printf.sprintf "9.6 saturated ~127x (got %.0fx)" ratio96)
    true
    (ratio96 > 100. && ratio96 <= 127.5);
  let ratio56 = float_of_int full56 /. float_of_int idle56 in
  Alcotest.(check bool)
    (Printf.sprintf "56k saturated ~20x (got %.0fx)" ratio56)
    true
    (ratio56 > 14. && ratio56 < 30.)

(* --- Measurement --- *)

let test_measurement_averages () =
  let g = bench () in
  let m = Measurement.create (t56 g) in
  Measurement.record_packet m ~delay_s:0.010;
  Measurement.record_packet m ~delay_s:0.030;
  Alcotest.(check int) "count" 2 (Measurement.packet_count m);
  Alcotest.(check (float 1e-9)) "peek" 0.020 (Measurement.peek_average m);
  Alcotest.(check (float 1e-9)) "finish" 0.020 (Measurement.finish_period m);
  Alcotest.(check int) "reset" 0 (Measurement.packet_count m)

let test_measurement_idle_not_zero () =
  let g = bench () in
  let m = Measurement.create (t56 g) in
  let idle = Measurement.finish_period m in
  Alcotest.(check bool) "idle window reports intrinsic delay" true (idle > 0.);
  Alcotest.(check (float 1e-9)) "transmission + propagation"
    ((600. /. 56_000.) +. 0.002)
    idle

(* --- HNM parameters (§4.2-4.4 constraints) --- *)

let test_params_56k_anchors () =
  let p = Hnm_params.for_line_type Line_type.T56 in
  Alcotest.(check int) "min 30" 30 p.Hnm_params.base_min;
  Alcotest.(check int) "max 90" 90 p.Hnm_params.max_cost;
  Alcotest.(check int) "max up a little more than half hop" 16 p.Hnm_params.max_up;
  Alcotest.(check int) "max down one less" 15 p.Hnm_params.max_down;
  Alcotest.(check int) "threshold a little under half hop" 14
    p.Hnm_params.min_change

let test_params_all_line_types () =
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "%s max = 3 x min" (Line_type.name p.Hnm_params.line_type))
        (3 * p.Hnm_params.base_min)
        p.Hnm_params.max_cost;
      Alcotest.(check int) "down = up - 1" (p.Hnm_params.max_up - 1)
        p.Hnm_params.max_down;
      (* Flat until 50%: raw(0.5) = base_min; raw(1.0) = max. *)
      Alcotest.(check (float 1e-9)) "raw at 50%"
        (float_of_int p.Hnm_params.base_min)
        (Hnm_params.raw_cost p ~utilization:0.5);
      Alcotest.(check (float 1e-9)) "raw at 100%"
        (float_of_int p.Hnm_params.max_cost)
        (Hnm_params.raw_cost p ~utilization:1.0))
    Hnm_params.all

let test_params_9_6_vs_56 () =
  let g = bench () in
  (* Saturated 9.6 ~= 7x idle 56 under HN-SPF (§4.4). *)
  let full96 = Hnm.cost_of_utilization (t96 g) ~utilization:1. in
  let idle56 = Hnm.cost_of_utilization (t56 g) ~utilization:0. in
  Alcotest.(check int) "saturated 9.6 is 7x idle 56" 7 (full96 / idle56);
  (* Idle 56 satellite more favorable than idle 9.6 (§4.4). *)
  let idle_s56 = Hnm.cost_of_utilization (s56 g) ~utilization:0. in
  let idle96 = Hnm.cost_of_utilization (t96 g) ~utilization:0. in
  Alcotest.(check bool) "idle 56S cheaper than idle 9.6T" true (idle_s56 < idle96)

let test_params_satellite_vs_terrestrial () =
  let g = bench () in
  let sat u = Hnm.cost_of_utilization (s56 g) ~utilization:u in
  let terr u = Hnm.cost_of_utilization (t56 g) ~utilization:u in
  Alcotest.(check bool) "satellite dearer when idle" true (sat 0. > terr 0.);
  Alcotest.(check bool) "never more than twice terrestrial" true
    (float_of_int (sat 0.) <= 2. *. float_of_int (terr 0.));
  Alcotest.(check int) "treated equally when saturated" (terr 0.99) (sat 0.99)

let test_min_cost_propagation_adjustment () =
  let g = bench () in
  Alcotest.(check bool) "satellite floor above base" true
    (Hnm_params.min_cost (s56 g)
    > (Hnm_params.for_line_type Line_type.S56).Hnm_params.base_min);
  Alcotest.(check bool) "floor below ceiling always" true
    (List.for_all
       (fun (l : Link.t) ->
         Hnm_params.min_cost l
         < (Hnm_params.for_line_type l.Link.line_type).Hnm_params.max_cost)
       (Graph.links g))

(* --- HNM dynamics (Fig 3 pipeline) --- *)

let delay_at link u = Queueing.delay_s link ~utilization:u

let test_hnm_flat_until_half () =
  let g = bench () in
  let h = Hnm.create (t56 g) in
  List.iter
    (fun u ->
      ignore (Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) u));
      Alcotest.(check int)
        (Printf.sprintf "still minimum at %.2f" u)
        (Hnm_params.min_cost (t56 g))
        (Hnm.current_cost h))
    [ 0.1; 0.2; 0.3; 0.4; 0.45 ]

let test_hnm_movement_limits () =
  let g = bench () in
  let h = Hnm.create (t56 g) in
  (* Slam the link to saturation: each period may rise by at most 16. *)
  let costs =
    List.init 6 (fun _ ->
        Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.99))
  in
  let rec deltas = function
    | a :: (b :: _ as rest) -> (b - a) :: deltas rest
    | _ -> []
  in
  List.iter
    (fun d -> Alcotest.(check bool) "up-step <= 16" true (d <= 16))
    (deltas (30 :: costs));
  (* The utilization estimate clamps at 0.99, whose raw cost is 89: the
     link parks within one unit of its 90-unit ceiling. *)
  Alcotest.(check bool) "settles at the ceiling" true (List.nth costs 5 >= 89)

let test_hnm_march_up () =
  (* While a full oscillation saturates both movement limits, the
     asymmetry (down one less than up) makes the peak cost climb exactly
     one unit per cycle (§5.4's epsilon-spreading heuristic). *)
  let g = bench () in
  let h = Hnm.create (t56 g) in
  let peaks =
    List.init 4 (fun _ ->
        let peak =
          Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.99)
        in
        ignore (Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.));
        peak)
  in
  match peaks with
  | [ p1; p2; p3; p4 ] ->
    Alcotest.(check int) "cycle 2 peak" (p1 + 1) p2;
    Alcotest.(check int) "cycle 3 peak" (p2 + 1) p3;
    Alcotest.(check int) "cycle 4 peak" (p3 + 1) p4
  | _ -> Alcotest.fail "expected four cycles"

let test_hnm_easing_in () =
  let g = bench () in
  let h = Hnm.create_easing_in (t56 g) in
  Alcotest.(check int) "starts at ceiling" 90 (Hnm.current_cost h);
  let prev = ref 90 in
  for _ = 1 to 8 do
    let c = Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.1) in
    Alcotest.(check bool) "monotone descent" true (c <= !prev);
    Alcotest.(check bool) "descends at most max_down" true (!prev - c <= 15);
    prev := c
  done;
  Alcotest.(check int) "lands at the floor" (Hnm_params.min_cost (t56 g)) !prev

let test_hnm_bounds_always () =
  let g = bench () in
  let h = Hnm.create (t96 g) in
  let p = Hnm.params h in
  List.iter
    (fun u ->
      let c = Hnm.period_update h ~measured_delay_s:(delay_at (t96 g) u) in
      Alcotest.(check bool) "within [min,max]" true
        (c >= Hnm_params.min_cost (t96 g) && c <= p.Hnm_params.max_cost))
    [ 0.; 0.99; 0.; 0.99; 0.5; 1.0; 0.7; 0. ]

let prop_hnm_bounded_and_limited =
  QCheck2.Test.make ~name:"hnm: always clipped, movement always limited"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 60) (float_range 0. 1.2))
    (fun utils ->
      let g = bench () in
      let l = t56 g in
      let h = Hnm.create l in
      let p = Hnm.params h in
      let last = ref (Hnm.current_cost h) in
      List.for_all
        (fun u ->
          let c = Hnm.period_update h ~measured_delay_s:(delay_at l u) in
          let ok =
            c >= Hnm_params.min_cost l
            && c <= p.Hnm_params.max_cost
            && c - !last <= p.Hnm_params.max_up
            && !last - c <= p.Hnm_params.max_down
          in
          last := c;
          ok)
        utils)

(* --- HNM custom configurations (the ablation switches) --- *)

let test_hnm_no_averaging_tracks_instantly () =
  let g = bench () in
  let config =
    { (Hnm.default_config Line_type.T56) with Hnm.averaging = false }
  in
  let h = Hnm.create_custom config (t56 g) in
  (* Without the filter the very first saturated sample demands the full
     raw cost; the movement limit still caps the step. *)
  let c1 = Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.99) in
  Alcotest.(check int) "still movement-limited" 46 c1;
  Alcotest.(check (float 1e-6)) "average = sample (no smoothing)" 0.99
    (Hnm.average_utilization h)

let test_hnm_no_movement_limits_jumps () =
  let g = bench () in
  let config =
    { (Hnm.default_config Line_type.T56) with
      Hnm.averaging = false;
      movement_limits = false }
  in
  let h = Hnm.create_custom config (t56 g) in
  let c1 = Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.99) in
  Alcotest.(check int) "jumps straight to the raw cost" 89 c1;
  let c2 = Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.) in
  Alcotest.(check int) "and straight back down" 30 c2

let test_hnm_symmetric_limits_no_march () =
  let g = bench () in
  let config =
    { (Hnm.default_config Line_type.T56) with Hnm.march_up = false }
  in
  let h = Hnm.create_custom config (t56 g) in
  let peaks =
    List.init 4 (fun _ ->
        let peak = Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.99) in
        ignore (Hnm.period_update h ~measured_delay_s:(delay_at (t56 g) 0.));
        peak)
  in
  (* Symmetric limits: down = up, so the peak no longer climbs. *)
  (match peaks with
  | p1 :: rest -> List.iter (fun p -> Alcotest.(check int) "flat peaks" p1 p) rest
  | [] -> Alcotest.fail "no peaks");
  ignore peaks

let test_metric_custom_hnspf () =
  let g = bench () in
  let m =
    Metric.create_custom_hnspf
      (fun (l : Link.t) ->
        { (Hnm.default_config l.Link.line_type) with Hnm.averaging = false })
      g
  in
  Alcotest.(check bool) "kind is Hn_spf" true (Metric.kind m = Metric.Hn_spf);
  Alcotest.(check int) "idle cost standard" 30 (Metric.cost m (t56 g).Link.id)

(* --- D-SPF --- *)

let test_dspf_bias_floor () =
  let g = bench () in
  let d = Dspf.create (t56 g) in
  let c = Dspf.period_update d ~measured_delay_s:0.0001 in
  Alcotest.(check int) "never below bias" (Dspf.bias Line_type.T56) c

let test_dspf_tracks_delay_unsmoothed () =
  let g = bench () in
  let d = Dspf.create (t56 g) in
  let c1 = Dspf.period_update d ~measured_delay_s:0.4 in
  let c2 = Dspf.period_update d ~measured_delay_s:0.02 in
  Alcotest.(check int) "400ms is 40 units" 40 c1;
  Alcotest.(check int) "drops instantly - no averaging, no limits" 2 c2

let test_dspf_cap () =
  let g = bench () in
  let d = Dspf.create (t96 g) in
  Alcotest.(check int) "capped at 254" 254
    (Dspf.period_update d ~measured_delay_s:10.)

(* --- Legacy 1969 metric --- *)

let test_legacy_metric () =
  Alcotest.(check int) "constant" 4 Legacy.constant;
  Alcotest.(check int) "empty queue" 4 (Legacy.cost_of_queue ~queue_length:0);
  Alcotest.(check int) "ten packets" 14 (Legacy.cost_of_queue ~queue_length:10);
  Alcotest.(check int) "capped" Units.max_cost
    (Legacy.cost_of_queue ~queue_length:10_000);
  Alcotest.check_raises "negative queue"
    (Invalid_argument "Legacy.cost_of_queue: negative queue") (fun () ->
      ignore (Legacy.cost_of_queue ~queue_length:(-1)))

(* --- Significance --- *)

let test_significance_fixed_threshold () =
  let s = Significance.create (Significance.Fixed 14) ~initial_cost:30 in
  Alcotest.(check bool) "small change suppressed" false
    (Significance.consider s ~cost:35);
  Alcotest.(check bool) "big change floods" true (Significance.consider s ~cost:46);
  Alcotest.(check int) "last flooded" 46 (Significance.last_flooded s)

let test_significance_fifty_second_rule () =
  let s = Significance.create (Significance.Fixed 100) ~initial_cost:30 in
  let flooded = ref 0 in
  for _ = 1 to 10 do
    if Significance.consider s ~cost:31 then incr flooded
  done;
  (* 10 periods = 100 s: the 50-second reliability timer must fire twice. *)
  Alcotest.(check int) "reliability floods" 2 !flooded

let test_significance_decay () =
  let s = Significance.create Significance.dspf_policy ~initial_cost:10 in
  (* Delta 4 < 6.4 initially, but the threshold decays by 1.28 per quiet
     period, so the same delta becomes significant before the timer. *)
  let rec run n = if Significance.consider s ~cost:14 then n else run (n + 1) in
  let waited = run 0 in
  Alcotest.(check bool) "flooded before the 5-period timer" true (waited < 4)

(* --- Metric facade --- *)

let test_metric_kinds () =
  List.iter
    (fun k ->
      match Metric.kind_of_name (Metric.kind_name k) with
      | Some k' -> Alcotest.(check bool) "name roundtrip" true (k = k')
      | None -> Alcotest.fail "kind_of_name failed")
    [ Metric.Min_hop; Metric.Static_capacity; Metric.D_spf; Metric.Hn_spf ]

let test_static_capacity_kind () =
  let g = bench () in
  let m = Metric.create Metric.Static_capacity g in
  (* Costs equal the HN-SPF idle floor and never move. *)
  Alcotest.(check int) "56T pinned at 30" 30 (Metric.cost m (t56 g).Link.id);
  Alcotest.(check int) "9.6T pinned at its floor" 70
    (Metric.cost m (t96 g).Link.id);
  Alcotest.(check bool) "satellite floor above terrestrial" true
    (Metric.cost m (s56 g).Link.id > 30);
  Alcotest.(check bool) "never updates" true
    (Metric.period_update m (t56 g).Link.id ~measured_delay_s:5. = None);
  Alcotest.(check int) "equilibrium cost is the floor at any load" 30
    (Metric.equilibrium_cost Metric.Static_capacity (t56 g) ~utilization:0.99)

let test_metric_minhop_is_static () =
  let g = bench () in
  let m = Metric.create Metric.Min_hop g in
  Graph.iter_links g (fun l ->
      Alcotest.(check int) "unit cost" 1 (Metric.cost m l.Link.id);
      Alcotest.(check bool) "never updates" true
        (Metric.period_update m l.Link.id ~measured_delay_s:5. = None));
  Alcotest.(check int) "no updates flooded" 0 (Metric.updates_flooded m)

let test_metric_flooded_vs_local () =
  let g = bench () in
  let m = Metric.create Metric.Hn_spf g in
  let l = (t56 g).Link.id in
  (* A sub-threshold change updates the local cost but not the flooded one. *)
  ignore (Metric.period_update m l ~measured_delay_s:(delay_at (t56 g) 0.55));
  Alcotest.(check bool) "local moved" true (Metric.local_cost m l > 30);
  Alcotest.(check int) "flooded unchanged" 30 (Metric.cost m l)

let test_metric_link_up_easing () =
  let g = bench () in
  let m = Metric.create Metric.Hn_spf g in
  let l = (t56 g).Link.id in
  Metric.link_up m l;
  Alcotest.(check int) "revived link floods its ceiling" 90 (Metric.cost m l)

let test_metric_equilibrium_cost_consistency () =
  let g = bench () in
  List.iter
    (fun k ->
      let c0 = Metric.equilibrium_cost k (t56 g) ~utilization:0. in
      Alcotest.(check int) "matches idle_cost" (Metric.idle_cost k (t56 g)) c0)
    [ Metric.Min_hop; Metric.D_spf; Metric.Hn_spf ]

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_metric"
    [ ( "units",
        [ Alcotest.test_case "roundtrip" `Quick test_units_roundtrip ] );
      ( "queueing",
        [ Alcotest.test_case "service times" `Quick test_mm1_service_times;
          Alcotest.test_case "mm1 roundtrip" `Quick test_mm1_roundtrip;
          Alcotest.test_case "mm1 clamps" `Quick test_mm1_clamps;
          Alcotest.test_case "propagation" `Quick test_mm1_delay_includes_propagation;
          Alcotest.test_case "mm1k blocking range" `Quick test_mm1k_blocking_range;
          Alcotest.test_case "mm1k asymptotics" `Quick test_mm1k_blocking_asymptotics;
          Alcotest.test_case "mm1k sojourn bounded" `Quick test_mm1k_sojourn_bounded;
          Alcotest.test_case "mm1k ~ mm1 light" `Quick test_mm1k_matches_mm1_when_light;
          Alcotest.test_case "dspf dynamic range (§3.2)" `Quick
            test_dspf_dynamic_range;
          Alcotest.test_case "m/d/1 P-K" `Quick test_md1_half_the_queueing;
          Alcotest.test_case "hnm robust to queueing model" `Quick
            test_hnm_robust_to_queueing_model ]
        @ qsuite [ prop_mm1k_blocking_monotone ] );
      ( "measurement",
        [ Alcotest.test_case "averages" `Quick test_measurement_averages;
          Alcotest.test_case "idle nonzero" `Quick test_measurement_idle_not_zero ]
      );
      ( "hnm_params",
        [ Alcotest.test_case "56k anchors" `Quick test_params_56k_anchors;
          Alcotest.test_case "all line types" `Quick test_params_all_line_types;
          Alcotest.test_case "9.6 vs 56 (§4.4)" `Quick test_params_9_6_vs_56;
          Alcotest.test_case "satellite (§4.4)" `Quick
            test_params_satellite_vs_terrestrial;
          Alcotest.test_case "propagation floor" `Quick
            test_min_cost_propagation_adjustment ] );
      ( "hnm",
        [ Alcotest.test_case "flat until 50%" `Quick test_hnm_flat_until_half;
          Alcotest.test_case "movement limits" `Quick test_hnm_movement_limits;
          Alcotest.test_case "march up" `Quick test_hnm_march_up;
          Alcotest.test_case "easing in" `Quick test_hnm_easing_in;
          Alcotest.test_case "bounds" `Quick test_hnm_bounds_always ]
        @ qsuite [ prop_hnm_bounded_and_limited ] );
      ( "hnm custom",
        [ Alcotest.test_case "no averaging" `Quick test_hnm_no_averaging_tracks_instantly;
          Alcotest.test_case "no movement limits" `Quick
            test_hnm_no_movement_limits_jumps;
          Alcotest.test_case "symmetric limits" `Quick
            test_hnm_symmetric_limits_no_march;
          Alcotest.test_case "metric facade" `Quick test_metric_custom_hnspf ] );
      ( "dspf",
        [ Alcotest.test_case "bias floor" `Quick test_dspf_bias_floor;
          Alcotest.test_case "unsmoothed" `Quick test_dspf_tracks_delay_unsmoothed;
          Alcotest.test_case "cap" `Quick test_dspf_cap ] );
      ( "legacy",
        [ Alcotest.test_case "queue metric" `Quick test_legacy_metric ] );
      ( "significance",
        [ Alcotest.test_case "fixed threshold" `Quick test_significance_fixed_threshold;
          Alcotest.test_case "50s rule" `Quick test_significance_fifty_second_rule;
          Alcotest.test_case "decay" `Quick test_significance_decay ] );
      ( "metric",
        [ Alcotest.test_case "kind names" `Quick test_metric_kinds;
          Alcotest.test_case "static capacity" `Quick test_static_capacity_kind;
          Alcotest.test_case "min-hop static" `Quick test_metric_minhop_is_static;
          Alcotest.test_case "flooded vs local" `Quick test_metric_flooded_vs_local;
          Alcotest.test_case "link up easing" `Quick test_metric_link_up_easing;
          Alcotest.test_case "equilibrium consistency" `Quick
            test_metric_equilibrium_cost_consistency ] ) ]

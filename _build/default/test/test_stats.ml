(* Unit and property tests for the routing_stats library. *)

module Welford = Routing_stats.Welford
module Histogram = Routing_stats.Histogram
module Filter = Routing_stats.Filter
module Time_series = Routing_stats.Time_series
module Table = Routing_stats.Table
module Rng = Routing_stats.Rng

let check_float = Alcotest.(check (float 1e-9))

let check_close msg tolerance expected actual =
  Alcotest.(check (float tolerance)) msg expected actual

(* --- Welford --- *)

let test_welford_empty () =
  let w = Welford.create () in
  Alcotest.(check int) "count" 0 (Welford.count w);
  check_float "mean" 0. (Welford.mean w);
  check_float "variance" 0. (Welford.variance w)

let test_welford_basic () =
  let w = Welford.create () in
  List.iter (Welford.add w) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Welford.count w);
  check_float "mean" 5. (Welford.mean w);
  (* Sample variance of this classic data set is 32/7. *)
  check_close "variance" 1e-9 (32. /. 7.) (Welford.variance w);
  check_float "min" 2. (Welford.min_value w);
  check_float "max" 9. (Welford.max_value w);
  check_float "total" 40. (Welford.total w)

let test_welford_reset () =
  let w = Welford.create () in
  Welford.add w 3.;
  Welford.reset w;
  Alcotest.(check int) "count after reset" 0 (Welford.count w);
  Welford.add w 10.;
  check_float "mean after reuse" 10. (Welford.mean w)

let naive_mean_var xs =
  let n = float_of_int (List.length xs) in
  let mean = List.fold_left ( +. ) 0. xs /. n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. (n -. 1.)
  in
  (mean, var)

let prop_welford_matches_naive =
  QCheck2.Test.make ~name:"welford matches naive mean/variance" ~count:200
    QCheck2.Gen.(list_size (int_range 2 100) (float_bound_exclusive 1000.))
    (fun xs ->
      QCheck2.assume (List.length xs >= 2);
      let w = Welford.create () in
      List.iter (Welford.add w) xs;
      let mean, var = naive_mean_var xs in
      Float.abs (Welford.mean w -. mean) < 1e-6
      && Float.abs (Welford.variance w -. var) < 1e-4)

let prop_welford_merge =
  QCheck2.Test.make ~name:"merge a b == feed both streams" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 50) (float_bound_exclusive 100.))
        (list_size (int_range 1 50) (float_bound_exclusive 100.)))
    (fun (xs, ys) ->
      let a = Welford.create () and b = Welford.create () in
      List.iter (Welford.add a) xs;
      List.iter (Welford.add b) ys;
      let merged = Welford.merge a b in
      let all = Welford.create () in
      List.iter (Welford.add all) (xs @ ys);
      Welford.count merged = Welford.count all
      && Float.abs (Welford.mean merged -. Welford.mean all) < 1e-9
      && Float.abs (Welford.variance merged -. Welford.variance all) < 1e-6)

(* --- Histogram --- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  List.iter (Histogram.add h) [ 0.; 0.5; 1.; 9.99; -1.; 10.; 100. ];
  Alcotest.(check int) "count includes over/underflow" 7 (Histogram.count h);
  Alcotest.(check int) "bin 0" 2 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 1 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h)

let test_histogram_percentile () =
  let h = Histogram.create ~lo:0. ~hi:100. ~bins:100 in
  for i = 1 to 100 do
    Histogram.add h (float_of_int i -. 0.5)
  done;
  check_close "median" 1.5 50. (Histogram.percentile h 50.);
  check_close "p90" 1.5 90. (Histogram.percentile h 90.);
  Alcotest.(check bool) "p0 <= p50" true
    (Histogram.percentile h 0. <= Histogram.percentile h 50.)

let test_histogram_invalid () =
  Alcotest.check_raises "bins <= 0"
    (Invalid_argument "Histogram.create: bins <= 0") (fun () ->
      ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0));
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Histogram.create ~lo:1. ~hi:1. ~bins:4))

let prop_histogram_percentile_monotone =
  QCheck2.Test.make ~name:"percentiles are monotone" ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (float_bound_exclusive 50.))
    (fun xs ->
      let h = Histogram.create ~lo:0. ~hi:50. ~bins:25 in
      List.iter (Histogram.add h) xs;
      let ps = [ 1.; 10.; 25.; 50.; 75.; 90.; 99. ] in
      let vs = List.map (Histogram.percentile h) ps in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      monotone vs)

(* --- Filters --- *)

let test_ewma_first_sample () =
  let f = Filter.ewma ~gain:0.5 in
  Alcotest.(check bool) "not primed" false (Filter.ewma_is_primed f);
  check_float "first sample taken whole" 10. (Filter.ewma_update f 10.);
  check_float "then halves toward new" 15. (Filter.ewma_update f 20.)

let test_ewma_is_hnm_filter () =
  (* The HNM filter: avg' = 0.5 * sample + 0.5 * avg (Fig 3). *)
  let f = Filter.ewma ~gain:0.5 in
  ignore (Filter.ewma_update f 0.8);
  ignore (Filter.ewma_update f 0.4);
  check_float "two periods" 0.6 (Filter.ewma_value f);
  ignore (Filter.ewma_update f 0.6);
  check_float "three periods" 0.6 (Filter.ewma_value f)

let test_ewma_set_and_reset () =
  let f = Filter.ewma ~gain:0.5 in
  Filter.ewma_set f 1.0;
  Alcotest.(check bool) "primed by set" true (Filter.ewma_is_primed f);
  check_float "forced value" 1.0 (Filter.ewma_value f);
  Filter.ewma_reset f;
  Alcotest.(check bool) "reset unprimes" false (Filter.ewma_is_primed f)

let test_ewma_invalid_gain () =
  Alcotest.check_raises "gain 0" (Invalid_argument "Filter.ewma: gain out of (0,1]")
    (fun () -> ignore (Filter.ewma ~gain:0.))

let test_moving_average () =
  let m = Filter.moving_average ~window:3 in
  check_float "one" 1. (Filter.moving_average_update m 1.);
  check_float "two" 1.5 (Filter.moving_average_update m 2.);
  check_float "three" 2. (Filter.moving_average_update m 3.);
  check_float "slides" 3. (Filter.moving_average_update m 4.);
  check_float "value" 3. (Filter.moving_average_value m)

(* --- Time series --- *)

let test_time_series_roundtrip () =
  let ts = Time_series.create "test" in
  for i = 0 to 9 do
    Time_series.record ts ~time:(float_of_int i) (float_of_int (i * i))
  done;
  Alcotest.(check int) "length" 10 (Time_series.length ts);
  let time, value = Time_series.get ts 3 in
  check_float "time" 3. time;
  check_float "value" 9. value;
  (match Time_series.last ts with
  | Some (t, v) ->
    check_float "last time" 9. t;
    check_float "last value" 81. v
  | None -> Alcotest.fail "expected last");
  Alcotest.(check int) "between" 3
    (List.length (Time_series.between ts ~lo:2. ~hi:5.))

let test_time_series_resample () =
  let ts = Time_series.create "resample" in
  for i = 0 to 9 do
    Time_series.record ts ~time:(float_of_int i) 1.
  done;
  let buckets = Time_series.resample ts ~period:5. in
  Alcotest.(check int) "two buckets" 2 (List.length buckets);
  List.iter (fun (_, v) -> check_float "bucket mean" 1. v) buckets

let test_time_series_stats () =
  let ts = Time_series.create "stats" in
  List.iteri (fun i v -> Time_series.record ts ~time:(float_of_int i) v)
    [ 1.; 2.; 3.; 4. ];
  let w = Time_series.stats_between ts ~lo:1. ~hi:3. in
  Alcotest.(check int) "window count" 2 (Welford.count w);
  check_float "window mean" 2.5 (Welford.mean w)

(* --- Table --- *)

let test_table_renders () =
  let t = Table.create ~title:"T" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_separator t;
  ignore (Table.add_float_row t "y" [ 2.5 ]);
  let s = Table.to_string t in
  Alcotest.(check bool) "has title" true (String.length s > 0);
  Alcotest.(check bool) "contains row" true
    (Astring.String.is_infix ~affix:"2.50" s)

let test_table_too_many_cells () =
  let t = Table.create [ ("only", Table.Left) ] in
  Alcotest.check_raises "too many"
    (Invalid_argument "Table.add_row: too many cells") (fun () ->
      Table.add_row t [ "a"; "b" ])

(* --- Quantile (P2) --- *)

module Quantile = Routing_stats.Quantile

let test_quantile_validation () =
  Alcotest.(check bool) "p=0 rejected" true
    (try ignore (Quantile.create 0.); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "p=1 rejected" true
    (try ignore (Quantile.create 1.); false with Invalid_argument _ -> true)

let test_quantile_small_samples_exact () =
  let q = Quantile.create 0.5 in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Quantile.value q));
  Quantile.add q 10.;
  Alcotest.(check (float 1e-9)) "one sample" 10. (Quantile.value q);
  Quantile.add q 30.;
  Quantile.add q 20.;
  Alcotest.(check (float 1e-9)) "median of three" 20. (Quantile.value q)

let test_quantile_converges_uniform () =
  let q50 = Quantile.create 0.5 and q95 = Quantile.create 0.95 in
  let r = Rng.create 77 in
  for _ = 1 to 50_000 do
    let x = Rng.float r 100. in
    Quantile.add q50 x;
    Quantile.add q95 x
  done;
  Alcotest.(check (float 2.0)) "median ~50" 50. (Quantile.value q50);
  Alcotest.(check (float 2.0)) "p95 ~95" 95. (Quantile.value q95)

let test_quantile_converges_exponential () =
  let q = Quantile.create 0.9 in
  let r = Rng.create 78 in
  for _ = 1 to 50_000 do
    Quantile.add q (Rng.exponential r ~mean:1.)
  done;
  (* Exponential p90 = ln 10 ~ 2.303. *)
  Alcotest.(check (float 0.15)) "p90 of exp(1)" 2.303 (Quantile.value q)

let prop_quantile_matches_exact =
  QCheck2.Test.make ~name:"p2 close to exact quantile" ~count:50
    QCheck2.Gen.(
      pair (int_range 0 1000)
        (list_size (int_range 100 2000) (float_bound_exclusive 1000.)))
    (fun (_, xs) ->
      let q = Quantile.create 0.5 in
      List.iter (Quantile.add q) xs;
      let sorted = List.sort Float.compare xs in
      let exact = List.nth sorted (List.length xs / 2) in
      let spread =
        List.nth sorted (List.length xs - 1) -. List.hd sorted
      in
      Float.abs (Quantile.value q -. exact) <= Float.max 1e-9 (0.15 *. spread))

(* --- Ascii plot --- *)

module Ascii_plot = Routing_stats.Ascii_plot

let test_plot_renders_points () =
  let out =
    Ascii_plot.render ~width:20 ~height:6
      [ { Ascii_plot.label = "line"; glyph = '*';
          points = [ (0., 0.); (1., 1.) ] } ]
  in
  Alcotest.(check bool) "contains glyph" true (String.contains out '*');
  Alcotest.(check bool) "contains legend" true
    (Astring.String.is_infix ~affix:"* = line" out);
  (* Corner points land in opposite corners of the grid. *)
  let lines = String.split_on_char '\n' out in
  let first_grid_row = List.nth lines 0 in
  Alcotest.(check bool) "max y on top row" true
    (String.contains first_grid_row '*')

let test_plot_degenerate_range () =
  (* A single point (zero-width ranges) must not crash or divide by 0. *)
  let out =
    Ascii_plot.render
      [ { Ascii_plot.label = "dot"; glyph = 'o'; points = [ (5., 5.) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.contains out 'o')

let test_plot_empty () =
  let out = Ascii_plot.render [] in
  Alcotest.(check bool) "frame only" true (String.length out > 0)

let test_plot_two_series_legend () =
  let out =
    Ascii_plot.render
      [ { Ascii_plot.label = "a"; glyph = 'a'; points = [ (0., 0.); (1., 2.) ] };
        { Ascii_plot.label = "b"; glyph = 'b'; points = [ (0., 2.); (1., 0.) ] } ]
  in
  Alcotest.(check bool) "both glyphs" true
    (String.contains out 'a' && String.contains out 'b')

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_copy_replays () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create 9 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "n <= 0" (Invalid_argument "Rng.int: n <= 0") (fun () ->
      ignore (Rng.int r 0))

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let w = Welford.create () in
  for _ = 1 to 20_000 do
    Welford.add w (Rng.exponential r ~mean:4.)
  done;
  check_close "exponential mean" 0.15 4. (Welford.mean w)

let test_rng_poisson_mean () =
  let r = Rng.create 13 in
  let small = Welford.create () and large = Welford.create () in
  for _ = 1 to 20_000 do
    Welford.add small (float_of_int (Rng.poisson r ~mean:3.));
    Welford.add large (float_of_int (Rng.poisson r ~mean:50.))
  done;
  check_close "poisson mean small" 0.1 3. (Welford.mean small);
  check_close "poisson mean large" 1.0 50. (Welford.mean large)

let test_rng_shuffle_permutes () =
  let r = Rng.create 17 in
  let a = Array.init 20 Fun.id in
  Rng.shuffle r a;
  Array.sort Int.compare a;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) a

let prop_rng_float_in_range =
  QCheck2.Test.make ~name:"Rng.float in [0, x)" ~count:500
    QCheck2.Gen.(pair (int_range 0 10_000) (float_range 0.001 1e6))
    (fun (seed, x) ->
      let r = Rng.create seed in
      let v = Rng.float r x in
      v >= 0. && v < x)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "routing_stats"
    [ ( "welford",
        [ Alcotest.test_case "empty" `Quick test_welford_empty;
          Alcotest.test_case "basic" `Quick test_welford_basic;
          Alcotest.test_case "reset" `Quick test_welford_reset ]
        @ qsuite [ prop_welford_matches_naive; prop_welford_merge ] );
      ( "histogram",
        [ Alcotest.test_case "binning" `Quick test_histogram_binning;
          Alcotest.test_case "percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "invalid" `Quick test_histogram_invalid ]
        @ qsuite [ prop_histogram_percentile_monotone ] );
      ( "filter",
        [ Alcotest.test_case "ewma first sample" `Quick test_ewma_first_sample;
          Alcotest.test_case "hnm filter" `Quick test_ewma_is_hnm_filter;
          Alcotest.test_case "set/reset" `Quick test_ewma_set_and_reset;
          Alcotest.test_case "invalid gain" `Quick test_ewma_invalid_gain;
          Alcotest.test_case "moving average" `Quick test_moving_average ] );
      ( "time_series",
        [ Alcotest.test_case "roundtrip" `Quick test_time_series_roundtrip;
          Alcotest.test_case "resample" `Quick test_time_series_resample;
          Alcotest.test_case "stats" `Quick test_time_series_stats ] );
      ( "table",
        [ Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells ] );
      ( "quantile",
        [ Alcotest.test_case "validation" `Quick test_quantile_validation;
          Alcotest.test_case "small samples" `Quick test_quantile_small_samples_exact;
          Alcotest.test_case "uniform" `Quick test_quantile_converges_uniform;
          Alcotest.test_case "exponential" `Quick test_quantile_converges_exponential ]
        @ qsuite [ prop_quantile_matches_exact ] );
      ( "ascii_plot",
        [ Alcotest.test_case "renders points" `Quick test_plot_renders_points;
          Alcotest.test_case "degenerate range" `Quick test_plot_degenerate_range;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "two series" `Quick test_plot_two_series_legend ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy replays" `Quick test_rng_copy_replays;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutes ]
        @ qsuite [ prop_rng_float_in_range ] ) ]

(* Tests for the discrete-event packet simulator (routing_sim). *)

open Routing_topology
module Event_queue = Routing_sim.Event_queue
module Engine = Routing_sim.Engine
module Packet = Routing_sim.Packet
module Link_queue = Routing_sim.Link_queue
module Workload = Routing_sim.Workload
module Measure = Routing_sim.Measure
module Network = Routing_sim.Network
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng

(* --- Event queue / engine --- *)

let test_event_queue_time_order () =
  let q = Event_queue.create () in
  let log = ref [] in
  Event_queue.add q ~time:3. (fun () -> log := 3 :: !log);
  Event_queue.add q ~time:1. (fun () -> log := 1 :: !log);
  Event_queue.add q ~time:2. (fun () -> log := 2 :: !log);
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, run) ->
      run ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Event_queue.add q ~time:7. (fun () -> log := i :: !log)
  done;
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, run) ->
      run ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "insertion order among ties" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_clock () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~after:5. (fun () -> seen := Engine.now e :: !seen);
  Engine.schedule e ~after:2. (fun () ->
      seen := Engine.now e :: !seen;
      Engine.schedule e ~after:1. (fun () -> seen := Engine.now e :: !seen));
  Engine.run_until e 10.;
  Alcotest.(check (list (float 1e-9))) "clock at each event" [ 2.; 3.; 5. ]
    (List.rev !seen);
  Alcotest.(check (float 1e-9)) "clock ends at horizon" 10. (Engine.now e);
  Alcotest.(check int) "events processed" 3 (Engine.events_processed e)

let test_engine_horizon_stops_events () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~after:5. (fun () -> fired := true);
  Engine.run_until e 4.;
  Alcotest.(check bool) "not yet" false !fired;
  Engine.run_until e 6.;
  Alcotest.(check bool) "fired in second leg" true !fired

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.run_until e 5.;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> Engine.schedule_at e ~at:1. ignore)

(* --- Link queue --- *)

let one_link () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.01 "A" "B" in
  let g = Builder.build b in
  (g, Graph.link g (Link.id_of_int 0))

let test_link_queue_transmits_in_order () =
  let _, link = one_link () in
  let e = Engine.create () in
  let arrived = ref [] in
  let measured = ref [] in
  let q =
    Link_queue.create e link
      ~on_arrival:(fun p -> arrived := p.Packet.bits :: !arrived)
      ~on_measured:(fun ~delay_s -> measured := delay_s :: !measured)
      ~on_drop:(fun _ _ -> Alcotest.fail "no drop expected")
  in
  let p bits = Packet.make ~src:link.Link.src ~dst:link.Link.dst ~bits 0. in
  Link_queue.enqueue q (p 560.);
  Link_queue.enqueue q (p 1120.);
  Engine.run_until e 10.;
  Alcotest.(check (list (float 1e-9))) "FIFO order" [ 560.; 1120. ]
    (List.rev !arrived);
  (* First packet: 10ms transmission + 10ms propagation; second waits 10ms
     then 20ms transmission + propagation. *)
  Alcotest.(check (list (float 1e-6))) "measured delays" [ 0.02; 0.04 ]
    (List.rev !measured);
  Alcotest.(check int) "transmitted" 2 (Link_queue.transmitted_packets q);
  Alcotest.(check (float 1e-9)) "bits" 1680. (Link_queue.transmitted_bits q)

let test_link_queue_drops_when_full () =
  let _, link = one_link () in
  let e = Engine.create () in
  let drops = ref 0 in
  let q =
    Link_queue.create ~buffer_packets:2 e link
      ~on_arrival:(fun _ -> ())
      ~on_measured:(fun ~delay_s:_ -> ())
      ~on_drop:(fun _ _ -> incr drops)
  in
  let p () = Packet.make ~src:link.Link.src ~dst:link.Link.dst ~bits:560. 0. in
  (* One in transmission + 2 waiting fit; the 4th and 5th are dropped. *)
  for _ = 1 to 5 do
    Link_queue.enqueue q (p ())
  done;
  Alcotest.(check int) "two dropped" 2 !drops;
  Alcotest.(check int) "queue holds three" 3 (Link_queue.queue_length q);
  Engine.run_until e 1.;
  Alcotest.(check int) "rest transmitted" 3 (Link_queue.transmitted_packets q)

let test_link_queue_down_drops_everything () =
  let _, link = one_link () in
  let e = Engine.create () in
  let drops = ref 0 and arrived = ref 0 in
  let q =
    Link_queue.create e link
      ~on_arrival:(fun _ -> incr arrived)
      ~on_measured:(fun ~delay_s:_ -> ())
      ~on_drop:(fun _ _ -> incr drops)
  in
  let p () = Packet.make ~src:link.Link.src ~dst:link.Link.dst ~bits:560. 0. in
  Link_queue.enqueue q (p ());
  Link_queue.enqueue q (p ());
  Link_queue.set_up q false;
  Alcotest.(check int) "both lost with the line" 2 !drops;
  Link_queue.enqueue q (p ());
  Alcotest.(check int) "enqueue while down drops" 3 !drops;
  Engine.run_until e 1.;
  Alcotest.(check int) "nothing arrives" 0 !arrived;
  Link_queue.set_up q true;
  Link_queue.enqueue q (p ());
  Engine.run_until e 2.;
  Alcotest.(check int) "works after revival" 1 !arrived

let test_link_queue_priority_lane () =
  let _, link = one_link () in
  let e = Engine.create () in
  let arrived = ref [] in
  let q =
    Link_queue.create e link
      ~on_arrival:(fun p -> arrived := p.Packet.bits :: !arrived)
      ~on_measured:(fun ~delay_s:_ -> ())
      ~on_drop:(fun _ _ -> Alcotest.fail "no drop expected")
  in
  let data bits = Packet.make ~src:link.Link.src ~dst:link.Link.dst ~bits 0. in
  let control bits =
    Packet.make ~kind:(Packet.Control 0) ~src:link.Link.src ~dst:link.Link.dst
      ~bits 0.
  in
  (* Three data packets queue up; a control packet enqueued afterwards must
     jump everything still waiting (but not the one on the wire). *)
  Link_queue.enqueue q (data 560.);
  Link_queue.enqueue q (data 561.);
  Link_queue.enqueue q (data 562.);
  Link_queue.enqueue_priority q (control 48.);
  Engine.run_until e 10.;
  Alcotest.(check (list (float 1e-9))) "control jumps the waiting data"
    [ 560.; 48.; 561.; 562. ]
    (List.rev !arrived)

let test_link_queue_priority_not_dropped () =
  let _, link = one_link () in
  let e = Engine.create () in
  let drops = ref 0 in
  let q =
    Link_queue.create ~buffer_packets:1 e link
      ~on_arrival:(fun _ -> ())
      ~on_measured:(fun ~delay_s:_ -> ())
      ~on_drop:(fun _ _ -> incr drops)
  in
  let data () = Packet.make ~src:link.Link.src ~dst:link.Link.dst ~bits:560. 0. in
  let control () =
    Packet.make ~kind:(Packet.Control 0) ~src:link.Link.src ~dst:link.Link.dst
      ~bits:48. 0.
  in
  Link_queue.enqueue q (data ());
  Link_queue.enqueue q (data ());
  Link_queue.enqueue q (data ());
  Alcotest.(check int) "data overflow dropped" 1 !drops;
  for _ = 1 to 5 do
    Link_queue.enqueue_priority q (control ())
  done;
  Alcotest.(check int) "control never dropped for buffers" 1 !drops;
  Engine.run_until e 10.

(* --- Workload --- *)

let test_workload_poisson_rate () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let g = Builder.build b in
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  Traffic_matrix.set tm ~src:(Node.of_int 0) ~dst:(Node.of_int 1) 6000.;
  let e = Engine.create () in
  let count = ref 0 in
  let w =
    Workload.create ~size:(Workload.Fixed 600.) (Rng.create 3) e tm
      ~inject:(fun _ -> incr count)
  in
  Workload.start w;
  Engine.run_until e 100.;
  Workload.stop w;
  (* 6000 bps / 600 bit packets = 10 pkt/s: expect ~1000 +- noise. *)
  Alcotest.(check bool)
    (Printf.sprintf "rate ~10pps (got %d in 100s)" !count)
    true
    (!count > 850 && !count < 1150)

let test_workload_scale () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "A" "B" in
  let g = Builder.build b in
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  Traffic_matrix.set tm ~src:(Node.of_int 0) ~dst:(Node.of_int 1) 6000.;
  let e = Engine.create () in
  let count = ref 0 in
  let w =
    Workload.create ~size:(Workload.Fixed 600.) (Rng.create 3) e tm
      ~inject:(fun _ -> incr count)
  in
  Workload.start w;
  Workload.set_scale w 3.;
  Engine.run_until e 100.;
  Alcotest.(check bool)
    (Printf.sprintf "scaled rate ~30pps (got %d in 100s)" !count)
    true
    (!count > 2600 && !count < 3400)

(* --- Measure --- *)

let test_measure_indicators () =
  let m = Measure.create ~nodes:10 in
  Measure.record_delivery m ~delay_s:0.1 ~bits:600. ~hops:3 ~min_hops:2;
  Measure.record_delivery m ~delay_s:0.3 ~bits:600. ~hops:5 ~min_hops:4;
  Measure.record_drop m;
  Measure.record_updates m ~count:4 ~bits:4000.;
  let i = Measure.indicators m ~elapsed_s:10. in
  Alcotest.(check (float 1e-6)) "traffic" 120. i.Measure.internode_traffic_bps;
  Alcotest.(check (float 1e-6)) "rtt ms" 400. i.Measure.round_trip_delay_ms;
  Alcotest.(check (float 1e-6)) "updates/s" 0.4 i.Measure.updates_per_s;
  Alcotest.(check (float 1e-6)) "update period per node" 25.
    i.Measure.update_period_per_node_s;
  Alcotest.(check (float 1e-6)) "actual hops" 4. i.Measure.actual_path_hops;
  Alcotest.(check (float 1e-6)) "path ratio" (4. /. 3.) i.Measure.path_ratio;
  Alcotest.(check (float 1e-6)) "drops/s" 0.1 i.Measure.dropped_per_s;
  Alcotest.(check (float 1e-6)) "overhead" 400. i.Measure.overhead_bps

let test_measure_percentiles () =
  let m = Measure.create ~nodes:4 in
  for i = 1 to 1000 do
    Measure.record_delivery m
      ~delay_s:(float_of_int i /. 1000.)
      ~bits:600. ~hops:1 ~min_hops:1
  done;
  Alcotest.(check bool) "median ~500ms" true
    (Float.abs (Measure.median_delay_ms m -. 500.) < 25.);
  Alcotest.(check bool) "p95 ~950ms" true
    (Float.abs (Measure.p95_delay_ms m -. 950.) < 25.)

let test_measure_comparison_table () =
  let m = Measure.create ~nodes:2 in
  Measure.record_delivery m ~delay_s:0.1 ~bits:600. ~hops:1 ~min_hops:1;
  let i = Measure.indicators m ~elapsed_s:1. in
  let t = Measure.comparison_table [ ("before", i); ("after", i) ] in
  Alcotest.(check bool) "renders" true
    (String.length (Routing_stats.Table.to_string t) > 100)

(* --- Packet network end-to-end --- *)

let small_net kind =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "A" "B" in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "B" "C" in
  let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "A" "C" in
  let g = Builder.build b in
  let tm = Traffic_matrix.uniform ~nodes:3 ~pair_bps:4000. in
  let config = { (Network.default_config kind) with Network.seed = 11 } in
  (g, Network.create ~config g tm)

let test_network_delivers () =
  let _, net = small_net Metric.Hn_spf in
  Network.run net ~duration_s:60.;
  Alcotest.(check bool) "packets delivered" true (Network.delivered_packets net > 1000);
  Alcotest.(check bool) "nothing dropped at light load" true
    (Network.dropped_packets net < Network.delivered_packets net / 100);
  let i = Network.indicators net in
  (* One 56k hop: ~13ms each way; rtt well under 100ms at 7% load. *)
  Alcotest.(check bool)
    (Printf.sprintf "sane rtt (%.1f ms)" i.Measure.round_trip_delay_ms)
    true
    (i.Measure.round_trip_delay_ms > 10. && i.Measure.round_trip_delay_ms < 100.);
  Alcotest.(check bool) "path ~1 hop" true
    (i.Measure.actual_path_hops >= 1. && i.Measure.actual_path_hops < 1.3)

let test_network_minhop_never_updates () =
  let _, net = small_net Metric.Min_hop in
  Network.run net ~duration_s:120.;
  let i = Network.indicators net in
  Alcotest.(check (float 0.)) "static routing floods nothing" 0.
    i.Measure.updates_per_s

let test_network_fifty_second_floods () =
  let _, net = small_net Metric.Hn_spf in
  Network.run net ~duration_s:200.;
  let i = Network.indicators net in
  (* Light steady load: cost changes are insignificant, but each node must
     still flood at least every 50 s (§2.2). *)
  Alcotest.(check bool)
    (Printf.sprintf "reliability floods (%.1f s/node)" i.Measure.update_period_per_node_s)
    true
    (i.Measure.update_period_per_node_s <= 50.5);
  Alcotest.(check bool) "overhead accounted" true (i.Measure.overhead_bps > 0.)

let test_network_link_failure_reroutes () =
  let g, net = small_net Metric.Hn_spf in
  Network.run net ~duration_s:30.;
  let a = Option.get (Graph.node_by_name g "A") in
  let c = Option.get (Graph.node_by_name g "C") in
  let direct = Option.get (Graph.find_link g ~src:a ~dst:c) in
  Network.set_link_up net direct.Link.id false;
  Network.set_link_up net (Graph.reverse g direct).Link.id false;
  Network.reset_measurements net;
  Network.run net ~duration_s:60.;
  let i = Network.indicators net in
  (* A<->C now rides through B: mean path length rises above 1. *)
  Alcotest.(check bool)
    (Printf.sprintf "detour visible (%.2f hops)" i.Measure.actual_path_hops)
    true
    (i.Measure.actual_path_hops > 1.2);
  Alcotest.(check bool) "still delivering" true
    (i.Measure.internode_traffic_bps > 10_000.)

let test_network_series_recorded () =
  let g, net = small_net Metric.Hn_spf in
  Network.run net ~duration_s:45.;
  let lid = (Graph.link g (Link.id_of_int 0)).Link.id in
  let cost = Network.cost_series net lid in
  let util = Network.utilization_series net lid in
  Alcotest.(check int) "4 periods recorded" 4 (Routing_stats.Time_series.length cost);
  Alcotest.(check int) "util too" 4 (Routing_stats.Time_series.length util);
  Routing_stats.Time_series.iter util (fun ~time:_ ~value ->
      Alcotest.(check bool) "utilization sane" true (value >= 0. && value <= 1.01))

let test_network_hop_by_hop_flooding () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let config =
    { (Network.default_config Metric.Hn_spf) with
      Network.seed = 4;
      instant_flooding = false }
  in
  let net = Network.create ~config g tm in
  Network.run net ~duration_s:120.;
  let lat = Network.flood_latency_stats net in
  Alcotest.(check bool) "floods happened" true
    (Routing_stats.Welford.count lat > 100);
  (* §3.2's synchrony assumption: "network packet transit times are
     typically much less than a second", so floods finish well inside the
     10-second period.  Satellite hops (250 ms) and 9.6 kb/s tails put the
     worst case in the low seconds. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean flood latency well under 1 s (%.0f ms)"
       (1000. *. Routing_stats.Welford.mean lat))
    true
    (Routing_stats.Welford.mean lat < 0.6);
  Alcotest.(check bool)
    (Printf.sprintf "worst case far inside the period (%.0f ms)"
       (1000. *. Routing_stats.Welford.max_value lat))
    true
    (Routing_stats.Welford.max_value lat < 0.3 *. 10.);
  (* The network still works with per-node views and staggered tables. *)
  Alcotest.(check bool) "still delivering" true
    (Network.delivered_packets net > 10_000);
  Alcotest.(check bool) "losses stay modest" true
    (float_of_int (Network.dropped_packets net)
    < 0.1 *. float_of_int (Network.generated_packets net))

let test_network_reliable_flooding_on_lossy_lines () =
  (* 10% of every transmission is corrupted.  Data packets just die;
     control packets are retransmitted until acknowledged, so routing
     still converges and every node keeps a current view. *)
  let g = Generators.ring 6 in
  let tm = Traffic_matrix.uniform ~nodes:6 ~pair_bps:3000. in
  let config =
    { (Network.default_config Metric.Hn_spf) with
      Network.seed = 9;
      instant_flooding = false;
      line_error_rate = 0.10;
      record_series = false }
  in
  let net = Network.create ~config g tm in
  Network.run net ~duration_s:300.;
  let lat = Network.flood_latency_stats net in
  Alcotest.(check bool) "floods still complete" true
    (Routing_stats.Welford.count lat > 50);
  (* Retransmission pushes the tail out but floods still finish far
     inside the period. *)
  Alcotest.(check bool)
    (Printf.sprintf "latency bounded (max %.2f s)"
       (Routing_stats.Welford.max_value lat))
    true
    (Routing_stats.Welford.max_value lat < 9.);
  (* ~10% of data is lost per hop: delivery reflects the error rate, not
     a routing failure. *)
  let delivered = float_of_int (Network.delivered_packets net) in
  let generated = float_of_int (Network.generated_packets net) in
  Alcotest.(check bool)
    (Printf.sprintf "delivery ~ (1-e)^hops (%.2f)" (delivered /. generated))
    true
    (delivered /. generated > 0.75 && delivered /. generated < 0.95)

let test_network_incremental_spf_agrees () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let run use_incremental_spf =
    let config =
      { (Network.default_config Metric.Hn_spf) with
        Network.seed = 6;
        record_series = false;
        use_incremental_spf }
    in
    let net = Network.create ~config g tm in
    Network.run net ~duration_s:120.;
    Network.indicators net
  in
  let full = run false and inc = run true in
  let rel a b = Float.abs (a -. b) /. Float.max a b in
  (* Equal-cost ties may break differently, so outcomes agree only
     statistically. *)
  Alcotest.(check bool)
    (Printf.sprintf "throughput agrees (%.0f vs %.0f)"
       full.Measure.internode_traffic_bps inc.Measure.internode_traffic_bps)
    true
    (rel full.Measure.internode_traffic_bps inc.Measure.internode_traffic_bps
    < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "delay agrees (%.0f vs %.0f ms)"
       full.Measure.round_trip_delay_ms inc.Measure.round_trip_delay_ms)
    true
    (rel full.Measure.round_trip_delay_ms inc.Measure.round_trip_delay_ms < 0.10)

(* --- Trace --- *)

module Trace = Routing_sim.Trace

let test_trace_ring_rotation () =
  let tr = Trace.create ~capacity:3 in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i)
      (Trace.Tables_recomputed { at = Node.of_int i })
  done;
  Alcotest.(check int) "capacity bound" 3 (Trace.length tr);
  Alcotest.(check int) "total recorded" 5 (Trace.total_recorded tr);
  let times = List.map fst (Trace.events tr) in
  Alcotest.(check (list (float 1e-9))) "most recent, oldest first" [ 3.; 4.; 5. ]
    times

let test_network_trace_captures_events () =
  let g, net =
    let b = Builder.create () in
    let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "A" "B" in
    let _ = Builder.trunk b Line_type.T56 ~propagation_s:0.002 "B" "C" in
    let g = Builder.build b in
    let tm = Traffic_matrix.uniform ~nodes:3 ~pair_bps:4000. in
    let config =
      { (Network.default_config Metric.Hn_spf) with
        Network.seed = 11;
        trace_capacity = 10_000 }
    in
    (g, Network.create ~config g tm)
  in
  Network.run net ~duration_s:60.;
  let events = Network.trace_events net in
  Alcotest.(check bool) "events recorded" true (List.length events > 100);
  let deliveries =
    List.filter
      (fun (_, e) -> match e with Trace.Packet_delivered _ -> true | _ -> false)
      events
  in
  Alcotest.(check bool) "deliveries traced" true (List.length deliveries > 50);
  (* Times are nondecreasing. *)
  let rec ordered = function
    | (a, _) :: ((b, _) :: _ as rest) -> a <= b && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "chronological" true (ordered events);
  (* Link flap appears in the trace. *)
  let l = (Graph.link g (Link.id_of_int 0)).Link.id in
  Network.set_link_up net l false;
  Alcotest.(check bool) "link-down traced" true
    (List.exists
       (fun (_, e) ->
         match e with Trace.Link_state { up = false; _ } -> true | _ -> false)
       (Network.trace_events net));
  Alcotest.(check bool) "dump renders" true
    (String.length (Network.dump_trace net) > 1000)

let test_network_incremental_survives_link_flap () =
  let g = Generators.ring 6 in
  let tm = Traffic_matrix.uniform ~nodes:6 ~pair_bps:2000. in
  let config =
    { (Network.default_config Metric.Hn_spf) with
      Network.seed = 13;
      use_incremental_spf = true;
      record_series = false }
  in
  let net = Network.create ~config g tm in
  Network.run net ~duration_s:60.;
  let l = (Graph.link g (Link.id_of_int 0)).Link.id in
  (* Down: incremental engines are discarded, full recompute takes over. *)
  Network.set_link_up net l false;
  Network.run net ~duration_s:60.;
  Network.set_link_up net l true;
  Network.run net ~duration_s:120.;
  Alcotest.(check bool) "still delivering after flap cycle" true
    (Network.delivered_packets net > 2000);
  Alcotest.(check bool) "loss stays low" true
    (float_of_int (Network.dropped_packets net)
    < 0.05 *. float_of_int (Network.generated_packets net))

let test_network_deterministic () =
  let run () =
    let _, net = small_net Metric.D_spf in
    Network.run net ~duration_s:50.;
    (Network.delivered_packets net, Network.dropped_packets net)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "same seed, same run" a b

let () =
  Alcotest.run "routing_sim"
    [ ( "event_queue",
        [ Alcotest.test_case "time order" `Quick test_event_queue_time_order;
          Alcotest.test_case "fifo ties" `Quick test_event_queue_fifo_ties ] );
      ( "engine",
        [ Alcotest.test_case "clock" `Quick test_engine_clock;
          Alcotest.test_case "horizon" `Quick test_engine_horizon_stops_events;
          Alcotest.test_case "rejects past" `Quick test_engine_rejects_past ] );
      ( "link_queue",
        [ Alcotest.test_case "fifo transmission" `Quick
            test_link_queue_transmits_in_order;
          Alcotest.test_case "drops when full" `Quick test_link_queue_drops_when_full;
          Alcotest.test_case "line down" `Quick test_link_queue_down_drops_everything;
          Alcotest.test_case "priority lane" `Quick test_link_queue_priority_lane;
          Alcotest.test_case "priority never dropped" `Quick
            test_link_queue_priority_not_dropped ] );
      ( "workload",
        [ Alcotest.test_case "poisson rate" `Quick test_workload_poisson_rate;
          Alcotest.test_case "scale" `Quick test_workload_scale ] );
      ( "measure",
        [ Alcotest.test_case "indicators" `Quick test_measure_indicators;
          Alcotest.test_case "percentiles" `Quick test_measure_percentiles;
          Alcotest.test_case "comparison table" `Quick test_measure_comparison_table
        ] );
      ( "network",
        [ Alcotest.test_case "delivers" `Quick test_network_delivers;
          Alcotest.test_case "min-hop static" `Quick test_network_minhop_never_updates;
          Alcotest.test_case "50s reliability floods" `Quick
            test_network_fifty_second_floods;
          Alcotest.test_case "link failure" `Quick test_network_link_failure_reroutes;
          Alcotest.test_case "series" `Quick test_network_series_recorded;
          Alcotest.test_case "hop-by-hop flooding" `Slow
            test_network_hop_by_hop_flooding;
          Alcotest.test_case "reliable flooding on lossy lines" `Slow
            test_network_reliable_flooding_on_lossy_lines;
          Alcotest.test_case "incremental spf agrees" `Slow
            test_network_incremental_spf_agrees;
          Alcotest.test_case "incremental + link flap" `Quick
            test_network_incremental_survives_link_flap;
          Alcotest.test_case "trace ring" `Quick test_trace_ring_rotation;
          Alcotest.test_case "trace captures events" `Quick
            test_network_trace_captures_events;
          Alcotest.test_case "deterministic" `Quick test_network_deterministic ] )
    ]

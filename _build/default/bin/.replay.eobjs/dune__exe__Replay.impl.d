bin/replay.ml: Arg Cmd Cmdliner Filename Format Graph List Printf Routing_metric Routing_sim Routing_stats Routing_topology Term Traffic_matrix

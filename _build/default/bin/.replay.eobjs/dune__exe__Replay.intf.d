bin/replay.mli:

bin/plan_upgrade.ml: Arg Arpanet Array Builder Cmd Cmdliner Float Format Graph Line_type Link List Printf Routing_metric Routing_sim Routing_stats Routing_topology Term Traffic_matrix

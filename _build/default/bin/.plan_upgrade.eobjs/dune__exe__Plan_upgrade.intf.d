bin/plan_upgrade.mli:

(* plan_upgrade — a small capacity-planning tool on top of the simulator.

     dune exec bin/plan_upgrade.exe -- --scale 1.3 --candidates 6

   §5.3: "When designing a network, one matches the network topology and
   link capacity to match cost and performance requirements … HN-SPF is
   the safety net that compensates for bad network designs and unexpected
   changes in traffic patterns."  This tool is the other half of that
   loop: it finds where the safety net is carrying the load and proposes
   the trunk upgrade that relieves it.

   Method: run the scenario under HN-SPF, rank trunks by mean utilization,
   then for each of the hottest candidates re-run the scenario with (a) a
   second parallel trunk and (b) the next line speed class, reporting the
   improvement in delivered traffic, round-trip delay and drops.  The
   parallel-trunk option also demonstrates a single-path routing subtlety:
   it does nothing for captive tails (SPF cannot split a tie), while the
   adaptive metric does alternate between parallel trunks on contested
   cuts. *)

open Routing_topology
module Flow_sim = Routing_sim.Flow_sim
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng
module Table = Routing_stats.Table

let periods = 120

let warmup = 30

(* Mean per-link utilization over the tail of a run. *)
let run_baseline g tm =
  let sim = Flow_sim.create g Metric.Hn_spf tm in
  let nl = Graph.link_count g in
  let sums = Array.make nl 0. in
  for p = 1 to periods do
    ignore (Flow_sim.step sim);
    if p > warmup then
      Graph.iter_links g (fun (l : Link.t) ->
          let i = Link.id_to_int l.Link.id in
          sums.(i) <- sums.(i) +. Flow_sim.link_utilization sim l.Link.id)
  done;
  let n = float_of_int (periods - warmup) in
  let means = Array.map (fun s -> s /. n) sums in
  (Flow_sim.indicators sim ~skip:warmup (), means)

(* The next line type up the speed ladder (same medium). *)
let faster = function
  | Line_type.T9_6 -> Some Line_type.T56
  | Line_type.S9_6 -> Some Line_type.S56
  | Line_type.T56 -> Some Line_type.T112
  | Line_type.S56 -> Some Line_type.S112
  | Line_type.T112 -> Some Line_type.T224
  | Line_type.S112 -> None
  | Line_type.T224 -> Some Line_type.T448
  | Line_type.T448 -> None

type upgrade =
  | Parallel_trunk  (** add a second identical trunk *)
  | Faster_line of Line_type.t  (** replace with the next speed class *)

let upgrade_name = function
  | Parallel_trunk -> "2nd trunk"
  | Faster_line lt -> "-> " ^ Line_type.name lt

(* Rebuild the topology applying [upgrade] to the [target] trunk. *)
let rebuilt g (target : Link.t) upgrade =
  let b = Builder.create () in
  (* Register nodes in id order so names and demands keep their ids. *)
  Graph.iter_nodes g (fun n -> ignore (Builder.add_node b (Graph.node_name g n)));
  Graph.iter_links g (fun (l : Link.t) ->
      if Link.id_compare l.Link.id l.Link.reverse < 0 then begin
        let line_type =
          match upgrade with
          | Faster_line lt when Link.id_equal l.Link.id target.Link.id -> lt
          | _ -> l.Link.line_type
        in
        ignore
          (Builder.trunk b ~propagation_s:l.Link.propagation_s line_type
             (Graph.node_name g l.Link.src)
             (Graph.node_name g l.Link.dst))
      end);
  (match upgrade with
  | Parallel_trunk ->
    ignore
      (Builder.trunk b ~propagation_s:target.Link.propagation_s
         target.Link.line_type
         (Graph.node_name g target.Link.src)
         (Graph.node_name g target.Link.dst))
  | Faster_line _ -> ());
  Builder.build b

let evaluate_candidate g tm (candidate : Link.t) upgrade =
  let g' = rebuilt g candidate upgrade in
  let sim = Flow_sim.create g' Metric.Hn_spf tm in
  ignore (Flow_sim.run sim ~periods);
  Flow_sim.indicators sim ~skip:warmup ()

let main scale candidates seed =
  let g = Arpanet.topology () in
  let tm = Traffic_matrix.scale (Arpanet.peak_traffic (Rng.create seed) g) scale in
  Format.printf "scenario: %a, %a (x%.2f)@.@." Graph.pp_summary g
    Traffic_matrix.pp_summary tm scale;
  let baseline, means = run_baseline g tm in
  Format.printf "baseline: %a@.@." Measure.pp_indicators baseline;
  (* Hottest trunks, one direction per physical trunk. *)
  let hot =
    Graph.links g
    |> List.filter (fun (l : Link.t) -> Link.id_compare l.Link.id l.Link.reverse < 0)
    |> List.map (fun (l : Link.t) ->
           let i = Link.id_to_int l.Link.id in
           let r = Link.id_to_int l.Link.reverse in
           (l, Float.max means.(i) means.(r)))
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  let t =
    Table.create ~title:"trunk upgrade candidates"
      [ ("candidate", Table.Left); ("util now", Table.Right);
        ("delivered kb/s", Table.Right); ("rtt ms", Table.Right);
        ("drops/s", Table.Right); ("delay saved", Table.Right) ]
  in
  ignore
    (Table.add_float_row t "(baseline)"
       [ 0.; baseline.Measure.internode_traffic_bps /. 1000.;
         baseline.Measure.round_trip_delay_ms; baseline.Measure.dropped_per_s;
         0. ]);
  Table.add_separator t;
  let best = ref None in
  List.iteri
    (fun rank (l, u) ->
      if rank < candidates then begin
        let options =
          Parallel_trunk
          :: (match faster l.Link.line_type with
             | Some lt -> [ Faster_line lt ]
             | None -> [])
        in
        List.iter
          (fun upgrade ->
            let i = evaluate_candidate g tm l upgrade in
            let name =
              Printf.sprintf "%s-%s (%s) %s"
                (Graph.node_name g l.Link.src)
                (Graph.node_name g l.Link.dst)
                (Line_type.name l.Link.line_type)
                (upgrade_name upgrade)
            in
            let saved =
              baseline.Measure.round_trip_delay_ms
              -. i.Measure.round_trip_delay_ms
            in
            ignore
              (Table.add_float_row t name
                 [ u; i.Measure.internode_traffic_bps /. 1000.;
                   i.Measure.round_trip_delay_ms; i.Measure.dropped_per_s;
                   saved ]);
            match !best with
            | Some (_, s) when s >= saved -> ()
            | _ -> best := Some (name, saved))
          options
      end)
    hot;
  print_string (Table.to_string t);
  match !best with
  | Some (name, saved) when saved > 0. ->
    Format.printf "@.recommendation: add a trunk at %s (saves %.0f ms rtt).@."
      name saved
  | _ -> Format.printf "@.no candidate improves on the baseline.@."

open Cmdliner

let cmd =
  let scale =
    Arg.(value & opt float 1.3
         & info [ "s"; "scale" ] ~docv:"X"
             ~doc:"Traffic scale relative to the 1987 peak matrix.")
  in
  let candidates =
    Arg.(value & opt int 6
         & info [ "c"; "candidates" ] ~docv:"N"
             ~doc:"How many of the hottest trunks to evaluate.")
  in
  let seed =
    Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"Traffic seed.")
  in
  Cmd.v
    (Cmd.info "plan_upgrade"
       ~doc:"Propose the trunk upgrade that most improves the ARPANET scenario")
    Term.(const main $ scale $ candidates $ seed)

let () = exit (Cmd.eval cmd)

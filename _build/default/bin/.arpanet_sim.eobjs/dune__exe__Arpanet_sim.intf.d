bin/arpanet_sim.mli:

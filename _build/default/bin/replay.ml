(* replay — run a scripted scenario file on the flow simulator.

     dune exec bin/replay.exe -- scenarios/outage_demo.scn
     dune exec bin/replay.exe -- my.scn --periods 120 --metric dspf --csv

   The file format is Routing_topology.Serial plus timed `at` events; see
   lib/sim/script.mli and scenarios/outage_demo.scn. *)

open Routing_topology
module Script = Routing_sim.Script
module Flow_sim = Routing_sim.Flow_sim
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric
module Table = Routing_stats.Table

let main path periods metric warmup csv =
  match Script.load path with
  | Error message ->
    Format.eprintf "%s: %s@." path message;
    exit 1
  | Ok script ->
    Format.printf "scenario: %a, %a, %d events@.@." Graph.pp_summary
      script.Script.graph Traffic_matrix.pp_summary script.Script.traffic
      (List.length script.Script.events);
    if csv then
      print_endline
        "time_s,offered_bps,delivered_bps,dropped_bps,mean_delay_ms,updates,\
         max_utilization,congested_links,routes_changed";
    let sim =
      Script.run ~metric script ~periods ~on_period:(fun _ stats ->
          if csv then
            Printf.printf "%.0f,%.0f,%.0f,%.0f,%.1f,%d,%.3f,%d,%d\n"
              stats.Flow_sim.time_s stats.Flow_sim.offered_bps
              stats.Flow_sim.delivered_bps stats.Flow_sim.dropped_bps
              (1000. *. stats.Flow_sim.mean_delay_s)
              stats.Flow_sim.updates stats.Flow_sim.max_utilization
              stats.Flow_sim.congested_links stats.Flow_sim.routes_changed)
    in
    if not csv then begin
      let i = Flow_sim.indicators sim ~skip:warmup () in
      print_string
        (Table.to_string
           (Measure.comparison_table ~title:"Replay indicators"
              [ (Filename.basename path, i) ]))
    end

open Cmdliner

let metric_arg =
  let parse s =
    match Metric.kind_of_name s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "unknown metric %S" s))
  in
  Arg.conv (parse, fun ppf k -> Format.pp_print_string ppf (Metric.kind_name k))

let cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"SCENARIO" ~doc:"Scenario file with optional at-events.")
  in
  let periods =
    Arg.(value & opt int 90
         & info [ "p"; "periods" ] ~docv:"N" ~doc:"Routing periods to run (10 s each).")
  in
  let metric =
    Arg.(value & opt metric_arg Metric.Hn_spf
         & info [ "m"; "metric" ] ~docv:"METRIC" ~doc:"Initial routing metric.")
  in
  let warmup =
    Arg.(value & opt int 10
         & info [ "warmup" ] ~docv:"N" ~doc:"Periods excluded from the summary.")
  in
  let csv =
    Arg.(value & flag
         & info [ "csv" ] ~doc:"Emit one CSV row per period instead of a summary.")
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a scripted scenario on the flow simulator")
    Term.(const main $ file $ periods $ metric $ warmup $ csv)

let () = exit (Cmd.eval cmd)

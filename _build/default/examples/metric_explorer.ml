(* Interactive explorer for the cost curves of Figs 4 and 5.

     dune exec examples/metric_explorer.exe -- --line-type 56T
     dune exec examples/metric_explorer.exe -- --line-type 9.6S --metric dspf
     dune exec examples/metric_explorer.exe -- --table

   Prints reported cost (routing units and hops) as a function of link
   utilization, plus the full HNM parameter table with [--table]. *)

open Routing_topology
module Metric = Routing_metric.Metric
module Hnm_params = Routing_metric.Hnm_params
module Metric_map = Routing_equilibrium.Metric_map
module Table = Routing_stats.Table

let make_link line_type =
  let b = Builder.create () in
  let _ = Builder.trunk b line_type "A" "B" in
  let g = Builder.build b in
  Graph.link g (Link.id_of_int 0)

let print_params () =
  let t =
    Table.create ~title:"HNM parameter table (derived in lib/core/hnm_params.ml)"
      [ ("line type", Table.Left); ("min", Table.Right); ("max", Table.Right);
        ("slope", Table.Right); ("offset", Table.Right); ("max up", Table.Right);
        ("max down", Table.Right); ("threshold", Table.Right) ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [ Line_type.name p.Hnm_params.line_type;
          string_of_int p.Hnm_params.base_min;
          string_of_int p.Hnm_params.max_cost;
          Printf.sprintf "%.0f" p.Hnm_params.slope;
          Printf.sprintf "%.0f" p.Hnm_params.offset;
          string_of_int p.Hnm_params.max_up;
          string_of_int p.Hnm_params.max_down;
          string_of_int p.Hnm_params.min_change ])
    Hnm_params.all;
  print_string (Table.to_string t)

let print_curve line_type kinds samples =
  let link = make_link line_type in
  let columns =
    ("utilization", Table.Right)
    :: List.concat_map
         (fun k ->
           [ (Metric.kind_name k ^ " (units)", Table.Right);
             (Metric.kind_name k ^ " (hops)", Table.Right) ])
         kinds
  in
  let t =
    Table.create
      ~title:(Printf.sprintf "Reported cost vs utilization, %s line"
                (Line_type.name line_type))
      columns
  in
  for i = 0 to samples - 1 do
    let u = 0.99 *. float_of_int i /. float_of_int (samples - 1) in
    let cells =
      Printf.sprintf "%.2f" u
      :: List.concat_map
           (fun k ->
             let c = Metric.equilibrium_cost k link ~utilization:u in
             let hops = Metric_map.cost_in_hops k link ~utilization:u in
             [ string_of_int c; Printf.sprintf "%.2f" hops ])
           kinds
    in
    Table.add_row t cells
  done;
  print_string (Table.to_string t)

open Cmdliner

let line_type_arg =
  let parse s =
    match Line_type.of_name s with
    | Some lt -> Ok lt
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown line type %S (one of: %s)" s
             (String.concat ", " (List.map Line_type.name Line_type.all))))
  in
  let print ppf lt = Format.pp_print_string ppf (Line_type.name lt) in
  Arg.conv (parse, print)

let metric_arg =
  let parse s =
    match Metric.kind_of_name s with
    | Some k -> Ok (Some k)
    | None -> Error (`Msg (Printf.sprintf "unknown metric %S" s))
  in
  let print ppf = function
    | Some k -> Format.pp_print_string ppf (Metric.kind_name k)
    | None -> Format.pp_print_string ppf "all"
  in
  Arg.conv (parse, print)

let run line_type metric samples table =
  if table then print_params ()
  else begin
    let kinds =
      match metric with
      | Some k -> [ k ]
      | None -> [ Metric.D_spf; Metric.Hn_spf ]
    in
    print_curve line_type kinds samples
  end

let cmd =
  let line_type =
    Arg.(value & opt line_type_arg Line_type.T56
         & info [ "l"; "line-type" ] ~docv:"TYPE"
             ~doc:"Line type: 9.6T, 9.6S, 56T, 56S, 112T, 112S, 224T, 448T.")
  in
  let metric =
    Arg.(value & opt metric_arg None
         & info [ "m"; "metric" ] ~docv:"METRIC"
             ~doc:"Metric to plot (min-hop, dspf, hnspf); default both dynamic ones.")
  in
  let samples =
    Arg.(value & opt int 21
         & info [ "s"; "samples" ] ~docv:"N" ~doc:"Utilization samples.")
  in
  let table =
    Arg.(value & flag
         & info [ "t"; "table" ] ~doc:"Print the HNM parameter table and exit.")
  in
  Cmd.v
    (Cmd.info "metric_explorer" ~doc:"Explore ARPANET link metric curves")
    Term.(const run $ line_type $ metric $ samples $ table)

let () = exit (Cmd.eval cmd)

examples/oscillation_demo.ml: Float Format Generators Graph List Routing_metric Routing_sim Routing_topology String Traffic_matrix

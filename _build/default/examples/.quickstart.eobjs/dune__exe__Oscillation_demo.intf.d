examples/oscillation_demo.mli:

examples/metric_explorer.ml: Arg Builder Cmd Cmdliner Format Graph Line_type Link List Printf Routing_equilibrium Routing_metric Routing_stats Routing_topology String Term

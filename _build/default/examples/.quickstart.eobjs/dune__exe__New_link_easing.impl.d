examples/new_link_easing.ml: Arpanet Float Format Graph Link List Routing_metric Routing_sim Routing_stats Routing_topology

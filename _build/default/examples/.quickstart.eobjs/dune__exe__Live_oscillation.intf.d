examples/live_oscillation.mli:

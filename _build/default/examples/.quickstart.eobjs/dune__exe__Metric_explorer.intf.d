examples/metric_explorer.mli:

examples/new_link_easing.mli:

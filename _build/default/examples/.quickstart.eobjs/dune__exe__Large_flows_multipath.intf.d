examples/large_flows_multipath.mli:

examples/quickstart.mli:

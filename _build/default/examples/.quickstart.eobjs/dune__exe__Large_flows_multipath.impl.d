examples/large_flows_multipath.ml: Builder Format Graph Line_type Link List Option Routing_metric Routing_multipath Routing_sim Routing_topology String Traffic_matrix

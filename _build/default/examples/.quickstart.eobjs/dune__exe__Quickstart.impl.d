examples/quickstart.ml: Builder Format Graph Line_type Link List Node Option Routing_metric Routing_sim Routing_spf Routing_topology String Traffic_matrix

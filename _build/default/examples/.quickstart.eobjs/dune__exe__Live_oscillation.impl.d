examples/live_oscillation.ml: A Float Generators Graph I Link List Notty Notty_unix Printf Routing_metric Routing_sim Routing_topology String Traffic_matrix Unix

examples/milnet_heterogeneous.ml: Format Graph Line_type Link List Milnet Printf Routing_metric Routing_sim Routing_stats Routing_topology Traffic_matrix

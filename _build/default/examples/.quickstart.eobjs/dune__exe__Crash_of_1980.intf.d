examples/crash_of_1980.mli:

examples/crash_of_1980.ml: Array Format Generators Graph Link List Node Routing_flooding Routing_stats Routing_topology

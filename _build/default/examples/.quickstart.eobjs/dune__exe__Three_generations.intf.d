examples/three_generations.mli:

examples/milnet_heterogeneous.mli:

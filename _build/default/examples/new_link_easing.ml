(* Easing in a new line (§5.4 / Fig 12).

   A cross-country trunk fails and later comes back.  Under HN-SPF the
   revived line advertises its *maximum* cost and pulls routes back a few
   at a time as the cost walks down (at most a half-hop per period); under
   D-SPF the revived line immediately advertises a near-idle delay and the
   whole network stampedes onto it at once, knocking neighbouring links
   out of their equilibria.

     dune exec examples/new_link_easing.exe
*)

open Routing_topology
module Flow_sim = Routing_sim.Flow_sim
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng

let () =
  let g = Arpanet.topology () in
  let tm = Arpanet.peak_traffic (Rng.create 7) g in
  let victim = List.hd (Arpanet.bridge_links g) in
  let reverse = Graph.reverse g victim in
  Format.printf "victim trunk: %s <-> %s (56 kb/s cross-country)@.@."
    (Graph.node_name g victim.Link.src)
    (Graph.node_name g victim.Link.dst);
  List.iter
    (fun kind ->
      Format.printf "=== %s ===@." (Metric.kind_name kind);
      let sim = Flow_sim.create g kind tm in
      let show label =
        Format.printf "  %-12s cost=%3d  utilization=%4.2f  max-link=%4.2f@."
          label
          (Flow_sim.link_cost sim victim.Link.id)
          (Flow_sim.link_utilization sim victim.Link.id)
          (List.fold_left
             (fun acc s -> Float.max acc s.Flow_sim.max_utilization)
             0.
             (match Flow_sim.history sim with [] -> [] | h -> [ List.hd (List.rev h) ]))
      in
      ignore (Flow_sim.run sim ~periods:12);
      show "steady:";
      Flow_sim.set_link_up sim victim.Link.id false;
      Flow_sim.set_link_up sim reverse.Link.id false;
      ignore (Flow_sim.run sim ~periods:12);
      show "down 2 min:";
      Flow_sim.set_link_up sim victim.Link.id true;
      Flow_sim.set_link_up sim reverse.Link.id true;
      for period = 1 to 10 do
        ignore (Flow_sim.step sim);
        Format.printf "  +%3d s      cost=%3d  utilization=%4.2f@." (10 * period)
          (Flow_sim.link_cost sim victim.Link.id)
          (Flow_sim.link_utilization sim victim.Link.id)
      done;
      Format.printf "@.")
    [ Metric.Hn_spf; Metric.D_spf ];
  Format.printf
    "HN-SPF revives at its ceiling and eases down; D-SPF re-announces a@.\
     near-idle delay immediately and takes the full load back in one period.@."

(* Three generations of ARPANET routing in one run (§2's history).

   1969: distributed Bellman-Ford over the instantaneous queue length —
         converges on paper, loops in practice because the metric is "an
         instantaneous sample rather than an average".
   1979: SPF over measured delay (D-SPF) — loop-free, but oscillates under
         load (§3).
   1987: SPF over the revised hop-normalized metric (HN-SPF) — this paper.

     dune exec examples/three_generations.exe
*)

open Routing_topology
module Bf_sim = Routing_bellman.Bellman_sim
module Flow_sim = Routing_sim.Flow_sim
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng

let () =
  let rng = Rng.create 31 in
  let g = Generators.ring_chord rng ~nodes:16 ~chords:10 in
  let tm =
    Traffic_matrix.scale
      (Traffic_matrix.gravity (Rng.create 32) ~nodes:(Graph.node_count g)
         ~total_bps:250_000.)
      1.9
  in
  Format.printf "mesh: %a@." Graph.pp_summary g;
  Format.printf "offered: %.0f kb/s (heavy)@.@."
    (Traffic_matrix.total_bps tm /. 1000.);

  Format.printf "=== 1969: distributed Bellman-Ford, queue-length metric ===@.";
  let bf = Bf_sim.create ~seed:5 g tm in
  for period = 1 to 12 do
    let s = Bf_sim.step bf in
    if period mod 3 = 0 then
      Format.printf
        "  t=%4.0fs  delivered %5.1f kb/s  rtt %4.0f ms  looping pairs: %d@."
        s.Bf_sim.time_s
        (s.Bf_sim.delivered_bps /. 1000.)
        (2000. *. s.Bf_sim.mean_delay_s)
        s.Bf_sim.looping_pairs
  done;

  List.iter
    (fun (year, kind) ->
      Format.printf "@.=== %s: SPF, %s metric ===@." year (Metric.kind_name kind);
      let sim = Flow_sim.create g kind tm in
      for period = 1 to 12 do
        let s = Flow_sim.step sim in
        if period mod 3 = 0 then
          Format.printf
            "  t=%4.0fs  delivered %5.1f kb/s  rtt %4.0f ms  hottest link %4.2f@."
            s.Flow_sim.time_s
            (s.Flow_sim.delivered_bps /. 1000.)
            (2000. *. s.Flow_sim.mean_delay_s)
            s.Flow_sim.max_utilization
      done)
    [ ("1979", Metric.D_spf); ("1987", Metric.Hn_spf) ];
  Format.printf
    "@.Each generation fixed its predecessor's pathology: SPF killed the@.\
     loops; the hop-normalized metric killed the oscillations.@."

(* Heterogeneous trunking on the MILNET-style topology (§4.4).

   The MILNET mixed 9.6 kb/s tails, 56 kb/s lines, multi-trunk bundles and
   satellite hops.  This demo shows the normalization at work:

   - at light load, satellite trunks carry (almost) nothing that has a
     terrestrial alternative;
   - as the offered load grows, their cost disadvantage (a propagation
     adjustment on the floor, at most ~1.4x) is overwhelmed and they fill
     up — "this ensures that satellite bandwidth is utilized when the
     network is heavily loaded".

     dune exec examples/milnet_heterogeneous.exe
*)

open Routing_topology
module Flow_sim = Routing_sim.Flow_sim
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric
module Rng = Routing_stats.Rng
module Table = Routing_stats.Table

let () =
  let g = Milnet.topology () in
  Format.printf "MILNET-style topology: %a@.@." Graph.pp_summary g;
  let tm = Milnet.peak_traffic (Rng.create 11) g in
  let satellites =
    List.filter (fun (l : Link.t) -> Line_type.is_satellite l.Link.line_type)
      (Graph.links g)
  in
  let t =
    Table.create ~title:"Satellite trunk utilization vs offered load (HN-SPF)"
      (("offered load", Table.Left)
      :: List.map
           (fun (l : Link.t) ->
             ( Printf.sprintf "%s>%s"
                 (Graph.node_name g l.Link.src)
                 (Graph.node_name g l.Link.dst),
               Table.Right ))
           satellites
      @ [ ("delivered kb/s", Table.Right); ("rtt ms", Table.Right) ])
  in
  List.iter
    (fun scale ->
      let sim = Flow_sim.create g Metric.Hn_spf (Traffic_matrix.scale tm scale) in
      ignore (Flow_sim.run sim ~periods:40);
      let i = Flow_sim.indicators sim ~skip:10 () in
      Table.add_row t
        (Printf.sprintf "%.2fx" scale
         :: List.map
              (fun (l : Link.t) ->
                Printf.sprintf "%.2f" (Flow_sim.link_utilization sim l.Link.id))
              satellites
        @ [ Printf.sprintf "%.1f" (i.Measure.internode_traffic_bps /. 1000.);
            Printf.sprintf "%.0f" i.Measure.round_trip_delay_ms ]))
    [ 0.25; 0.5; 1.0; 1.5; 2.0 ];
  print_string (Table.to_string t);
  Format.printf
    "@.At the same utilization a satellite trunk is never more than about@.\
     twice as expensive as its terrestrial twin, and the two are treated@.\
     equally when highly utilized (§4.4) — so load pushes traffic onto@.\
     the satellite paths instead of melting the terrestrial ones.@."

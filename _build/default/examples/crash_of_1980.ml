(* The ARPANET crash of 27 October 1980, reproduced.

     dune exec examples/crash_of_1980.exe

   The paper's reference [13] (Rosen, "The Updating Protocol of ARPANET's
   New Routing Algorithm") describes the flooding machinery this
   repository implements.  Its most famous failure predates our paper: a
   dropped bit in an IMP produced three versions of one node's routing
   update whose sequence numbers formed a cycle under the circular
   half-space comparison — each looked newer than the one before, so the
   three updates chased each other around the network forever, consuming
   every line's bandwidth until the whole ARPANET was power-cycled.

   The flooding substrate here uses the same wrapping comparison, so the
   pathology reproduces exactly: inject three updates with cyclic
   sequence numbers and every re-flood is accepted as fresh, forever.
   (The 1981 fix — purging updates older than a time bound — is why real
   link-state protocols carry an age field.) *)

open Routing_topology
module Sequence = Routing_flooding.Sequence
module Update = Routing_flooding.Update
module Flooder = Routing_flooding.Flooder
module Broadcast = Routing_flooding.Broadcast

let () =
  let g = Generators.ring_chord (Routing_stats.Rng.create 3) ~nodes:10 ~chords:5 in
  Format.printf "network: %a@.@." Graph.pp_summary g;
  let flooders =
    Array.init (Graph.node_count g) (fun i ->
        Flooder.create g ~owner:(Node.of_int i))
  in
  (* Three sequence numbers, each "newer" than the previous under the
     half-space rule: a < b, b < c, and - because the circle wraps -
     c < a. *)
  let third = Sequence.space / 3 in
  let a = Sequence.of_int 0 in
  let b = Sequence.of_int third in
  let c = Sequence.of_int (2 * third) in
  Format.printf "cyclic sequence numbers: %a < %a < %a < %a ...@." Sequence.pp a
    Sequence.pp b Sequence.pp c Sequence.pp a;
  Format.printf "  newer b a = %b, newer c b = %b, newer a c = %b@.@."
    (Sequence.newer b a) (Sequence.newer c b) (Sequence.newer a c);
  let origin = Node.of_int 0 in
  let update seq = { Update.origin; seq; costs = [ (Link.id_of_int 0, 30) ] } in
  (* Rounds of the three corrupted updates chasing each other: in a real
     network each acceptance means a retransmission on every line; here we
     count floods per round.  A healthy protocol would reject everything
     after round 1. *)
  let total = ref 0 in
  for round = 1 to 8 do
    let round_tx = ref 0 in
    List.iter
      (fun seq ->
        let o = Broadcast.flood g flooders (update seq) in
        round_tx := !round_tx + o.Broadcast.transmissions)
      [ a; b; c ];
    total := !total + !round_tx;
    Format.printf "round %d: %4d update transmissions (all still accepted!)@."
      round !round_tx
  done;
  Format.printf
    "@.%d transmissions and counting - none of the three versions can ever@.\
     die, because each is 'newer' than the one that replaced it.  In 1980@.\
     this consumed the entire ARPANET's bandwidth for four hours; the fix@.\
     (aging updates out) is why OSPF LSAs carry MaxAge to this day.@."
    !total

(* The Fig 1 experiment as a runnable demo: two regions joined by two
   identical trunks, heavy inter-region traffic, and three metrics side by
   side.  D-SPF slams all traffic from one bridge to the other every
   routing period; HN-SPF settles into load sharing; min-hop just sits on
   whatever SPF picked first.

     dune exec examples/oscillation_demo.exe
*)

open Routing_topology
module Flow_sim = Routing_sim.Flow_sim
module Measure = Routing_sim.Measure
module Metric = Routing_metric.Metric

let bar width u =
  let filled = int_of_float (Float.min 1.5 u /. 1.5 *. float_of_int width) in
  String.init width (fun i -> if i < filled then '#' else '.')

let () =
  let g, (bridge_a, bridge_b) = Generators.two_region () in
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  Graph.iter_nodes g (fun src ->
      Graph.iter_nodes g (fun dst ->
          let sn = Graph.node_name g src and dn = Graph.node_name g dst in
          if sn.[0] = 'L' && dn.[0] = 'R' then
            Traffic_matrix.set tm ~src ~dst 1300.));
  Format.printf
    "Two regions, two 56 kb/s bridges, %.0f kb/s offered left-to-right@.\
     (%.0f%% of the combined bridge capacity)@.@."
    (Traffic_matrix.total_bps tm /. 1000.)
    (Traffic_matrix.total_bps tm /. 1120.);
  List.iter
    (fun kind ->
      Format.printf "=== %s ===@." (Metric.kind_name kind);
      Format.printf "%8s  %-24s %-24s@." "time" "bridge A" "bridge B";
      let sim = Flow_sim.create g kind tm in
      for period = 1 to 16 do
        ignore (Flow_sim.step sim);
        let ua = Flow_sim.link_utilization sim bridge_a in
        let ub = Flow_sim.link_utilization sim bridge_b in
        Format.printf "%6.0f s  %s %4.2f   %s %4.2f@."
          (float_of_int period *. 10.)
          (bar 16 ua) ua (bar 16 ub) ub
      done;
      let i = Flow_sim.indicators sim ~skip:4 () in
      Format.printf
        "   -> delivered %.1f kb/s of %.1f offered, %.0f ms rtt, %.1f drops/s@.@."
        (i.Measure.internode_traffic_bps /. 1000.)
        (Traffic_matrix.total_bps tm /. 1000.)
        i.Measure.round_trip_delay_ms i.Measure.dropped_per_s)
    [ Metric.D_spf; Metric.Hn_spf; Metric.Min_hop ];
  Format.printf
    "The D-SPF run reproduces §3.3: \"links A and B alternating (instead of@.\
     cooperating) as traffic carriers\"; under HN-SPF the bridges share.@."

(* Quickstart: build a small network, run HN-SPF routing over it, watch a
   link cost respond to load, and print the resulting routes.

     dune exec examples/quickstart.exe
*)

open Routing_topology
module Dijkstra = Routing_spf.Dijkstra
module Spf_tree = Routing_spf.Spf_tree
module Metric = Routing_metric.Metric
module Flow_sim = Routing_sim.Flow_sim

let () =
  (* 1. Describe the topology: four sites, a fast triangle plus a slow
        tail circuit. *)
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "NYC" "BOS" in
  let _ = Builder.trunk b Line_type.T56 "NYC" "DCA" in
  let _ = Builder.trunk b Line_type.T56 "BOS" "DCA" in
  let _ = Builder.trunk b Line_type.T9_6 "DCA" "SAT" in
  let g = Builder.build b in
  Format.printf "topology: %a@." Graph.pp_summary g;

  (* 2. Attach the revised metric (HN-SPF).  Every link starts at its idle
        cost. *)
  let metric = Metric.create Metric.Hn_spf g in
  Graph.iter_links g (fun l ->
      Format.printf "  idle cost %s->%s = %d units@."
        (Graph.node_name g l.Link.src)
        (Graph.node_name g l.Link.dst)
        (Metric.cost metric l.Link.id));

  (* 3. Compute shortest-path routes from NYC the way a PSN does. *)
  let nyc = Option.get (Graph.node_by_name g "NYC") in
  let tree = Dijkstra.compute g ~cost:(Metric.cost_fn metric) nyc in
  Format.printf "@.routes from NYC:@.";
  Graph.iter_nodes g (fun dst ->
      if not (Node.equal dst nyc) then begin
        let names =
          Spf_tree.path tree dst
          |> List.map (fun (l : Link.t) -> Graph.node_name g l.Link.dst)
        in
        Format.printf "  -> %-4s  via %-12s  cost %3d units (%d hops)@."
          (Graph.node_name g dst)
          (String.concat "-" names)
          (Spf_tree.dist tree dst) (Spf_tree.hops tree dst)
      end);

  (* 4. Offer traffic and run the routing control loop for two minutes of
        simulated time: the NYC->DCA trunk heats up and its reported cost
        rises, movement-limited, until the NYC->BOS->DCA detour becomes
        competitive. *)
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  let dca = Option.get (Graph.node_by_name g "DCA") in
  Traffic_matrix.set tm ~src:nyc ~dst:dca 48_000. (* ~86% of the trunk *);
  let sim = Flow_sim.create g Metric.Hn_spf tm in
  let hot = Option.get (Graph.find_link g ~src:nyc ~dst:dca) in
  Format.printf "@.NYC->DCA at 48 kb/s offered (86%% of one trunk):@.";
  for period = 1 to 12 do
    ignore (Flow_sim.step sim);
    Format.printf "  t=%4.0fs  cost=%3d units  utilization=%4.2f@."
      (float_of_int period *. 10.)
      (Flow_sim.link_cost sim hot.Link.id)
      (Flow_sim.link_utilization sim hot.Link.id)
  done;
  Format.printf
    "@.Note the limit cycle: a single large flow is indivisible, so routing@.\
     can only move all 48 kb/s or none of it — §4.5's point that single-path@.\
     routing load-shares well only when traffic is many small flows.  The@.\
     movement limits keep the cycle's amplitude at half a hop.@."

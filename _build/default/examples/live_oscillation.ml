(* Live terminal animation of the Fig 1 oscillation (requires a tty).

     dune exec examples/live_oscillation.exe

   Two regions, two 56 kb/s bridges, 74% combined offered load.  One
   routing period (10 simulated seconds) plays every 300 ms.  Keys:

     d / h / m / s   switch metric (D-SPF / HN-SPF / min-hop / static)
     space           pause / resume
     q               quit

   Watch D-SPF slam the full load between the bridges every period, then
   press 'h' and watch the HNM settle them into sharing within a few
   periods. *)

open Routing_topology
open Notty
module Term = Notty_unix.Term
module Flow_sim = Routing_sim.Flow_sim
module Metric = Routing_metric.Metric

type state = {
  mutable sim : Flow_sim.t;
  mutable kind : Metric.kind;
  mutable paused : bool;
  mutable history : (float * float) list; (* newest first, bridge utils *)
  graph : Graph.t;
  tm : Traffic_matrix.t;
  bridge_a : Link.id;
  bridge_b : Link.id;
}

let setup () =
  let graph, (bridge_a, bridge_b) = Generators.two_region () in
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count graph) in
  Graph.iter_nodes graph (fun src ->
      Graph.iter_nodes graph (fun dst ->
          let sn = Graph.node_name graph src and dn = Graph.node_name graph dst in
          if sn.[0] = 'L' && dn.[0] = 'R' then Traffic_matrix.set tm ~src ~dst 1300.));
  { sim = Flow_sim.create graph Metric.D_spf tm;
    kind = Metric.D_spf;
    paused = false;
    history = [];
    graph;
    tm;
    bridge_a;
    bridge_b }

let bar w u =
  (* [w] not [width]: Notty.I exports a [width] function. *)
  let filled = int_of_float (Float.min 1.5 u /. 1.5 *. float_of_int w) in
  let color =
    if u > 1.0 then A.(fg red)
    else if u > 0.85 then A.(fg yellow)
    else A.(fg green)
  in
  I.(
    char color '#' (max 1 filled) 1
    <|> char A.(fg (gray 5)) '.' (max 1 (w - filled)) 1)

let render state =
  let bar_w = 40 in
  let header =
    I.(
      string A.(st bold) "Fig 1 live: two bridges, 74% offered load    "
      <-> string A.empty
            (Printf.sprintf "metric: %-8s   t = %4.0f s   %s"
               (Metric.kind_name state.kind)
               (Flow_sim.time_s state.sim)
               (if state.paused then "[paused]" else ""))
      <-> string A.(fg (gray 12)) "keys: d/h/m/s metric, space pause, q quit")
  in
  let rows =
    List.mapi
      (fun i (ua, ub) ->
        let age = A.(fg (gray (max 2 (12 - i)))) in
        I.(
          string age (Printf.sprintf "%3d " (-i))
          <|> bar bar_w ua
          <|> string A.empty (Printf.sprintf " %4.2f   " ua)
          <|> bar bar_w ub
          <|> string A.empty (Printf.sprintf " %4.2f" ub)))
      (match state.history with [] -> [ (0., 0.) ] | h -> h)
  in
  let legend =
    I.(
      string A.(st bold)
        (Printf.sprintf "%4s %-*s %7s %-*s" "" bar_w "bridge A" "" bar_w
           "bridge B"))
  in
  I.(header <-> void 0 1 <-> legend <-> vcat rows)

let step state =
  ignore (Flow_sim.step state.sim);
  let ua = Flow_sim.link_utilization state.sim state.bridge_a in
  let ub = Flow_sim.link_utilization state.sim state.bridge_b in
  state.history <- (ua, ub) :: state.history;
  if List.length state.history > 18 then
    state.history <-
      List.filteri (fun i _ -> i < 18) state.history

let switch state kind =
  state.kind <- kind;
  state.sim <- Flow_sim.create state.graph kind state.tm;
  state.history <- []

let () =
  let state = setup () in
  let term = Term.create () in
  let input, _ = Term.fds term in
  let rec loop () =
    Term.image term (render state);
    let readable, _, _ = Unix.select [ input ] [] [] 0.3 in
    match readable with
    | [] ->
      if not state.paused then step state;
      loop ()
    | _ -> (
      match Term.event term with
      | `Key (`ASCII 'q', _) | `Key (`Escape, _) -> ()
      | `Key (`ASCII 'd', _) ->
        switch state Metric.D_spf;
        loop ()
      | `Key (`ASCII 'h', _) ->
        switch state Metric.Hn_spf;
        loop ()
      | `Key (`ASCII 'm', _) ->
        switch state Metric.Min_hop;
        loop ()
      | `Key (`ASCII 's', _) ->
        switch state Metric.Static_capacity;
        loop ()
      | `Key (`ASCII ' ', _) ->
        state.paused <- not state.paused;
        loop ()
      | _ -> loop ())
  in
  loop ();
  Term.release term

(* §4.5's limitation, and the extension that fixes it.

   "HN-SPF ... will be most effective when network traffic consists of
   several small node-to-node flows.  To accomplish load-sharing when
   network traffic is dominated by several large flows would require a
   multi-path routing algorithm."

   One 78 kb/s flow between two equal 56 kb/s paths: single-path HN-SPF
   can only put it all on one path (limit cycle, 40% loss); the ECMP
   extension in routing_multipath splits it 50/50 and delivers everything.

     dune exec examples/large_flows_multipath.exe
*)

open Routing_topology
module Flow_sim = Routing_sim.Flow_sim
module Multipath_sim = Routing_multipath.Multipath_sim
module Ecmp = Routing_multipath.Ecmp
module Reverse_spf = Routing_multipath.Reverse_spf
module Yen = Routing_multipath.Yen
module Metric = Routing_metric.Metric

let () =
  let b = Builder.create () in
  let _ = Builder.trunk b Line_type.T56 "S" "A" in
  let _ = Builder.trunk b Line_type.T56 "A" "T" in
  let _ = Builder.trunk b Line_type.T56 "S" "B" in
  let _ = Builder.trunk b Line_type.T56 "B" "T" in
  let g = Builder.build b in
  let s = Option.get (Graph.node_by_name g "S") in
  let t = Option.get (Graph.node_by_name g "T") in
  let tm = Traffic_matrix.create ~nodes:4 in
  Traffic_matrix.set tm ~src:s ~dst:t 78_000.;

  (* What the path space looks like. *)
  Format.printf "loopless S->T paths (Yen):@.";
  List.iter
    (fun p ->
      let names =
        Yen.path_nodes p ~src:s |> List.map (Graph.node_name g)
      in
      Format.printf "  %-12s cost %d units@."
        (String.concat "-" names) p.Yen.cost)
    (Yen.k_shortest g ~cost:(fun _ -> 30) ~src:s ~dst:t ~k:4);

  (* How ECMP splits a unit of S->T demand. *)
  let rspf = Reverse_spf.compute g ~cost:(fun _ -> 30) t in
  Format.printf "@.ECMP split fractions:@.";
  List.iter
    (fun (lid, f) ->
      let l = Graph.link g lid in
      Format.printf "  %s->%s: %.2f@."
        (Graph.node_name g l.Link.src)
        (Graph.node_name g l.Link.dst)
        f)
    (Ecmp.split_fractions rspf ~src:s);

  Format.printf "@.single-path HN-SPF, 78 kb/s flow (139%% of one path):@.";
  let single = Flow_sim.create g Metric.Hn_spf tm in
  for _period = 1 to 10 do
    let st = Flow_sim.step single in
    Format.printf "  t=%4.0fs  delivered %4.1f kb/s  hottest %4.2f@."
      st.Flow_sim.time_s
      (st.Flow_sim.delivered_bps /. 1000.)
      st.Flow_sim.max_utilization
  done;

  Format.printf "@.ECMP HN-SPF, same flow:@.";
  let multi = Multipath_sim.create g Metric.Hn_spf tm in
  for _period = 1 to 10 do
    let st = Multipath_sim.step multi in
    Format.printf "  t=%4.0fs  delivered %4.1f kb/s  hottest %4.2f@."
      st.Multipath_sim.time_s
      (st.Multipath_sim.delivered_bps /. 1000.)
      st.Multipath_sim.max_utilization
  done;
  Format.printf
    "@.The split puts 0.70 on each path: no link saturates and the whole@.\
     flow arrives — the load sharing §4.5 says single-path routing cannot do.@."

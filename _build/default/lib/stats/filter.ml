type ewma = { gain : float; mutable value : float; mutable primed : bool }

let ewma ~gain =
  if gain <= 0. || gain > 1. then invalid_arg "Filter.ewma: gain out of (0,1]";
  { gain; value = 0.; primed = false }

let ewma_update t x =
  if t.primed then t.value <- (t.gain *. x) +. ((1. -. t.gain) *. t.value)
  else begin
    t.value <- x;
    t.primed <- true
  end;
  t.value

let ewma_value t = t.value

let ewma_is_primed t = t.primed

let ewma_reset t =
  t.value <- 0.;
  t.primed <- false

let ewma_set t x =
  t.value <- x;
  t.primed <- true

type moving_average = {
  samples : float array;
  mutable next : int;
  mutable filled : int;
  mutable sum : float;
}

let moving_average ~window =
  if window <= 0 then invalid_arg "Filter.moving_average: window <= 0";
  { samples = Array.make window 0.; next = 0; filled = 0; sum = 0. }

let moving_average_update t x =
  let cap = Array.length t.samples in
  if t.filled = cap then t.sum <- t.sum -. t.samples.(t.next)
  else t.filled <- t.filled + 1;
  t.samples.(t.next) <- x;
  t.sum <- t.sum +. x;
  t.next <- (t.next + 1) mod cap;
  t.sum /. float_of_int t.filled

let moving_average_value t =
  if t.filled = 0 then 0. else t.sum /. float_of_int t.filled

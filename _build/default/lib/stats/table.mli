(** Plain-text table rendering for experiment output.

    The benchmark harness prints every reproduced table and figure as an
    aligned text table; this is the single formatter used everywhere so the
    output stays uniform and diffable. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create columns] starts a table with the given header cells and per-column
    alignment. *)

val add_row : t -> string list -> unit
(** Append a row.  Missing trailing cells render empty; extra cells raise.
    @raise Invalid_argument if the row has more cells than columns. *)

val add_float_row : t -> ?decimals:int -> string -> float list -> t
(** [add_float_row t label xs] appends [label] followed by each float rendered
    with [decimals] (default 2) digits; returns [t] for chaining. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Append-only timestamped series of float observations.

    Experiments log (time, value) points — link utilization per routing
    period, drops per simulated day — and then query aggregates over
    intervals or dump the series for the benchmark harness to print. *)

type t

val create : ?capacity:int -> string -> t
(** [create name] makes an empty series labelled [name]. *)

val name : t -> string

val record : t -> time:float -> float -> unit
(** Append a point.  Times are expected to be non-decreasing; out-of-order
    appends are accepted but interval queries assume sortedness. *)

val length : t -> int

val get : t -> int -> float * float
(** [get t i] is the [i]-th (time, value) pair.
    @raise Invalid_argument when out of range. *)

val last : t -> (float * float) option

val iter : t -> (time:float -> value:float -> unit) -> unit

val fold : t -> init:'a -> f:('a -> time:float -> value:float -> 'a) -> 'a

val between : t -> lo:float -> hi:float -> (float * float) list
(** Points with [lo <= time < hi], in append order. *)

val stats_between : t -> lo:float -> hi:float -> Welford.t
(** Summary statistics of values in the window. *)

val resample : t -> period:float -> (float * float) list
(** Average the series into consecutive buckets of [period] starting at the
    first point's time; buckets with no points are skipped.  Used to turn
    per-routing-period samples into per-day aggregates for Fig 13. *)

(** Terminal line plots for the experiment harness.

    The benchmark harness regenerates the paper's {e figures}; numbers in
    tables carry the data, and these plots carry the shape — steepness,
    crossings, oscillation — the way the originals do.  Pure text, fixed
    grid, no dependencies. *)

type series = {
  label : string;
  glyph : char;  (** the character that draws this series *)
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** A [width] x [height] (default 64 x 16) character plot of all series on
    shared axes, with min/max tick labels and a legend.  Ranges come from
    the data (degenerate ranges are padded).  When two series hit the same
    cell the later one draws on top.  Empty input renders an empty frame. *)

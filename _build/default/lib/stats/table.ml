type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title;
    headers = List.map fst columns;
    aligns = Array.of_list (List.map snd columns);
    rows = [] }

let columns t = Array.length t.aligns

let add_row t cells =
  if List.length cells > columns t then
    invalid_arg "Table.add_row: too many cells";
  t.rows <- Cells cells :: t.rows

let add_float_row t ?(decimals = 2) label xs =
  add_row t (label :: List.map (Printf.sprintf "%.*f" decimals) xs);
  t

let add_separator t = t.rows <- Separator :: t.rows

let widths t =
  let w = Array.make (columns t) 0 in
  let measure cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) t.rows;
  w

let pad align width s =
  let fill = String.make (max 0 (width - String.length s)) ' ' in
  match align with Left -> s ^ fill | Right -> fill ^ s

let pp ppf t =
  let w = widths t in
  let total = Array.fold_left ( + ) 0 w + (3 * (columns t - 1)) in
  let rule = String.make total '-' in
  let render_cells cells =
    let padded =
      List.mapi (fun i c -> pad t.aligns.(i) w.(i) c) cells
      @ List.init (columns t - List.length cells) (fun _ -> "")
    in
    String.concat "   " padded
  in
  (match t.title with
  | Some title -> Format.fprintf ppf "%s@.%s@." title (String.make total '=')
  | None -> ());
  Format.fprintf ppf "%s@.%s@." (render_cells t.headers) rule;
  List.iter
    (function
      | Cells cells -> Format.fprintf ppf "%s@." (render_cells cells)
      | Separator -> Format.fprintf ppf "%s@." rule)
    (List.rev t.rows)

let to_string t = Format.asprintf "%a" pp t

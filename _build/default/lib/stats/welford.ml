type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable total : float;
}

let create () =
  { count = 0;
    mean = 0.;
    m2 = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    total = 0. }

let add t x =
  t.count <- t.count + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  let delta2 = x -. t.mean in
  t.m2 <- t.m2 +. (delta *. delta2);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.total <- t.total +. x

let count t = t.count

let mean t = if t.count = 0 then 0. else t.mean

let variance t =
  if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)

let stddev t = sqrt (variance t)

let min_value t = t.min_v

let max_value t = t.max_v

let total t = t.total

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let n = a.count + b.count in
    let fa = float_of_int a.count and fb = float_of_int b.count in
    let fn = float_of_int n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. fn) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn) in
    { count = n;
      mean;
      m2;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      total = a.total +. b.total }
  end

let reset t =
  t.count <- 0;
  t.mean <- 0.;
  t.m2 <- 0.;
  t.min_v <- infinity;
  t.max_v <- neg_infinity;
  t.total <- 0.

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.count
    (mean t) (stddev t) t.min_v t.max_v

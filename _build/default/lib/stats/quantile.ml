type t = {
  p : float;
  heights : float array; (* 5 markers *)
  positions : float array; (* actual marker positions, 1-based *)
  desired : float array; (* desired positions *)
  increments : float array;
  mutable n : int;
  initial : float array; (* first five observations, sorted lazily *)
}

let create p =
  if p <= 0. || p >= 1. then invalid_arg "Quantile.create: p outside (0,1)";
  { p;
    heights = Array.make 5 0.;
    positions = [| 1.; 2.; 3.; 4.; 5. |];
    desired = [| 1.; 1. +. (2. *. p); 1. +. (4. *. p); 3. +. (2. *. p); 5. |];
    increments = [| 0.; p /. 2.; p; (1. +. p) /. 2.; 1. |];
    n = 0;
    initial = Array.make 5 0. }

let quantile t = t.p

let count t = t.n

(* Piecewise-parabolic (P2) interpolation of marker i moved by d = +-1. *)
let parabolic t i d =
  let q = t.heights and pos = t.positions in
  q.(i)
  +. d
     /. (pos.(i + 1) -. pos.(i - 1))
     *. (((pos.(i) -. pos.(i - 1) +. d)
          *. (q.(i + 1) -. q.(i))
          /. (pos.(i + 1) -. pos.(i)))
        +. ((pos.(i + 1) -. pos.(i) -. d)
           *. (q.(i) -. q.(i - 1))
           /. (pos.(i) -. pos.(i - 1))))

let linear t i d =
  let q = t.heights and pos = t.positions in
  q.(i) +. (d *. (q.(i + int_of_float d) -. q.(i)) /. (pos.(i + int_of_float d) -. pos.(i)))

let add t x =
  if t.n < 5 then begin
    t.initial.(t.n) <- x;
    t.n <- t.n + 1;
    if t.n = 5 then begin
      Array.sort Float.compare t.initial;
      Array.blit t.initial 0 t.heights 0 5
    end
  end
  else begin
    t.n <- t.n + 1;
    let q = t.heights and pos = t.positions in
    (* Find the cell containing x, adjusting extremes. *)
    let k =
      if x < q.(0) then begin
        q.(0) <- x;
        0
      end
      else if x >= q.(4) then begin
        q.(4) <- x;
        3
      end
      else begin
        let rec find i = if x < q.(i + 1) then i else find (i + 1) in
        find 0
      end
    in
    for i = k + 1 to 4 do
      pos.(i) <- pos.(i) +. 1.
    done;
    for i = 0 to 4 do
      t.desired.(i) <- t.desired.(i) +. t.increments.(i)
    done;
    (* Adjust interior markers toward their desired positions. *)
    for i = 1 to 3 do
      let d = t.desired.(i) -. pos.(i) in
      if
        (d >= 1. && pos.(i + 1) -. pos.(i) > 1.)
        || (d <= -1. && pos.(i - 1) -. pos.(i) < -1.)
      then begin
        let d = if d >= 0. then 1. else -1. in
        let candidate = parabolic t i d in
        let candidate =
          if q.(i - 1) < candidate && candidate < q.(i + 1) then candidate
          else linear t i d
        in
        q.(i) <- candidate;
        pos.(i) <- pos.(i) +. d
      end
    done
  end

let value t =
  if t.n = 0 then nan
  else if t.n < 5 then begin
    (* Exact small-sample quantile (nearest-rank on a sorted copy). *)
    let sorted = Array.sub t.initial 0 t.n in
    Array.sort Float.compare sorted;
    let rank =
      int_of_float (Float.round (t.p *. float_of_int (t.n - 1)))
    in
    sorted.(max 0 (min (t.n - 1) rank))
  end
  else t.heights.(2)

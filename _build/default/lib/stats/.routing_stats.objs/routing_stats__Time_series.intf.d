lib/stats/time_series.mli: Welford

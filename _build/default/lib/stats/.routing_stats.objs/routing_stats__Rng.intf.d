lib/stats/rng.mli:

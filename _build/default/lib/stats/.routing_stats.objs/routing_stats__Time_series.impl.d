lib/stats/time_series.ml: Array List Welford

lib/stats/quantile.mli:

lib/stats/filter.ml: Array

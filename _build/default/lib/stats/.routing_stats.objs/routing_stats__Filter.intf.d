lib/stats/filter.mli:

type series = {
  label : string;
  glyph : char;
  points : (float * float) list;
}

let render ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") series =
  let width = max 8 width and height = max 4 height in
  let all = List.concat_map (fun s -> s.points) series in
  let xs = List.map fst all and ys = List.map snd all in
  let min_max vs =
    match vs with
    | [] -> (0., 1.)
    | v :: rest ->
      let lo = List.fold_left Float.min v rest in
      let hi = List.fold_left Float.max v rest in
      if hi -. lo < 1e-12 then (lo -. 0.5, hi +. 0.5) else (lo, hi)
  in
  let x_lo, x_hi = min_max xs in
  let y_lo, y_hi = min_max ys in
  let grid = Array.init height (fun _ -> Bytes.make width ' ') in
  let cell_of x y =
    let cx =
      int_of_float
        (Float.round ((x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1)))
    in
    let cy =
      int_of_float
        (Float.round ((y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1)))
    in
    (max 0 (min (width - 1) cx), max 0 (min (height - 1) cy))
  in
  List.iter
    (fun s ->
      (* Connect consecutive points with interpolated steps so curves read
         as lines rather than dust. *)
      let rec draw = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
          let steps = max 1 (width / max 1 (List.length s.points)) in
          for k = 0 to steps do
            let f = float_of_int k /. float_of_int steps in
            let cx, cy = cell_of (x1 +. (f *. (x2 -. x1))) (y1 +. (f *. (y2 -. y1))) in
            Bytes.set grid.(cy) cx s.glyph
          done;
          draw rest
        | [ (x, y) ] ->
          let cx, cy = cell_of x y in
          Bytes.set grid.(cy) cx s.glyph
        | [] -> ()
      in
      draw s.points)
    series;
  let buffer = Buffer.create ((width + 12) * (height + 4)) in
  if String.length y_label > 0 then
    Buffer.add_string buffer (Printf.sprintf "%s\n" y_label);
  for row = height - 1 downto 0 do
    let tick =
      if row = height - 1 then Printf.sprintf "%8.2f" y_hi
      else if row = 0 then Printf.sprintf "%8.2f" y_lo
      else String.make 8 ' '
    in
    Buffer.add_string buffer tick;
    Buffer.add_string buffer " |";
    Buffer.add_string buffer (Bytes.to_string grid.(row));
    Buffer.add_char buffer '\n'
  done;
  Buffer.add_string buffer (String.make 9 ' ');
  Buffer.add_char buffer '+';
  Buffer.add_string buffer (String.make width '-');
  Buffer.add_char buffer '\n';
  Buffer.add_string buffer
    (Printf.sprintf "%9s %-8.2f%s%8.2f\n" "" x_lo
       (String.make (max 1 (width - 16)) ' ')
       x_hi);
  if String.length x_label > 0 then
    Buffer.add_string buffer (Printf.sprintf "%*s%s\n" 10 "" x_label);
  List.iter
    (fun s ->
      Buffer.add_string buffer (Printf.sprintf "%10s%c = %s\n" "" s.glyph s.label))
    series;
  Buffer.contents buffer

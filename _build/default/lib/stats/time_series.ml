type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create ?(capacity = 64) name =
  let capacity = max 1 capacity in
  { name; times = Array.make capacity 0.; values = Array.make capacity 0.; len = 0 }

let name t = t.name

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0. in
  let values = Array.make (2 * cap) 0. in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let record t ~time v =
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- v;
  t.len <- t.len + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Time_series.get";
  (t.times.(i), t.values.(i))

let last t = if t.len = 0 then None else Some (get t (t.len - 1))

let iter t f =
  for i = 0 to t.len - 1 do
    f ~time:t.times.(i) ~value:t.values.(i)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun ~time ~value -> acc := f !acc ~time ~value);
  !acc

let between t ~lo ~hi =
  fold t ~init:[] ~f:(fun acc ~time ~value ->
      if time >= lo && time < hi then (time, value) :: acc else acc)
  |> List.rev

let stats_between t ~lo ~hi =
  let w = Welford.create () in
  iter t (fun ~time ~value -> if time >= lo && time < hi then Welford.add w value);
  w

let resample t ~period =
  if t.len = 0 || period <= 0. then []
  else begin
    let t0 = t.times.(0) in
    let bucket time = int_of_float ((time -. t0) /. period) in
    let out = ref [] in
    let current = ref (bucket t.times.(0)) in
    let sum = ref 0. and n = ref 0 in
    let flush () =
      if !n > 0 then begin
        let mid = t0 +. ((float_of_int !current +. 0.5) *. period) in
        out := (mid, !sum /. float_of_int !n) :: !out
      end
    in
    iter t (fun ~time ~value ->
        let b = bucket time in
        if b <> !current then begin
          flush ();
          current := b;
          sum := 0.;
          n := 0
        end;
        sum := !sum +. value;
        incr n);
    flush ();
    List.rev !out
  end

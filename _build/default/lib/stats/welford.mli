(** Streaming summary statistics using Welford's online algorithm.

    A [t] accumulates observations one at a time and can report count, mean,
    variance, standard deviation, minimum and maximum at any point without
    storing the samples.  Numerically stable for long runs, which matters for
    multi-hour simulations accumulating millions of per-packet delays. *)

type t

val create : unit -> t
(** A fresh accumulator with no observations. *)

val add : t -> float -> unit
(** [add t x] folds the observation [x] into [t]. *)

val count : t -> int
(** Number of observations added so far. *)

val mean : t -> float
(** Arithmetic mean; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] for fewer than two observations. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val min_value : t -> float
(** Smallest observation; [infinity] when empty. *)

val max_value : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val total : t -> float
(** Sum of all observations. *)

val merge : t -> t -> t
(** [merge a b] is an accumulator equivalent to having seen all observations
    of [a] and then all observations of [b] (Chan's parallel update). *)

val reset : t -> unit
(** Drop all accumulated state, as if freshly created. *)

val pp : Format.formatter -> t -> unit
(** Render as ["n=… mean=… sd=… min=… max=…"] for logs and debugging. *)

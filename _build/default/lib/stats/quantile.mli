(** Streaming quantile estimation (the P² algorithm, Jain & Chlamtac 1985).

    Tracks one quantile of an unbounded stream in O(1) memory without
    binning assumptions — used for delay percentiles where a histogram's
    fixed range would clip congested-period tails.  Estimates are exact
    until five observations arrive and then follow the piecewise-parabolic
    marker update. *)

type t

val create : float -> t
(** [create p] tracks the [p]-quantile, [0 < p < 1].
    @raise Invalid_argument outside that range. *)

val quantile : t -> float
(** The tracked probability. *)

val add : t -> float -> unit

val count : t -> int

val value : t -> float
(** Current estimate; [nan] before any observation.  Exact while fewer
    than five observations have been seen. *)

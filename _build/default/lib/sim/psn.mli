open! Import

(** One packet-switching node's routing state in the packet simulator:
    its forwarding table, the per-outgoing-link 10-second delay
    measurements, and its flooding engine. *)

type t

val create : Graph.t -> Node.t -> t
(** The table starts empty ([route] answers [`No_route]) until the first
    {!install_table}. *)

val node : t -> Node.t

val install_table : t -> Routing_table.t -> unit

val table : t -> Routing_table.t option

val route : t -> Packet.t -> [ `Deliver | `Forward of Link.t | `No_route ]
(** Forwarding decision for a packet currently at this node. *)

val measurement : t -> Link.id -> Measurement.t
(** The delay accumulator for one of this node's outgoing links.
    @raise Not_found for a link this node doesn't own. *)

val out_measurements : t -> (Link.t * Measurement.t) list

val flooder : t -> Flooder.t

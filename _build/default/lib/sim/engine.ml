type t = {
  queue : Event_queue.t;
  mutable now : float;
  mutable processed : int;
}

let create () = { queue = Event_queue.create (); now = 0.; processed = 0 }

let now t = t.now

let schedule_at t ~at run =
  if at < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time:at run

let schedule t ~after run =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.now +. after) run

let run_until t horizon =
  let rec loop () =
    match Event_queue.next_time t.queue with
    | Some time when time <= horizon -> (
      match Event_queue.pop t.queue with
      | Some (time, run) ->
        t.now <- time;
        t.processed <- t.processed + 1;
        run ();
        loop ()
      | None -> ())
    | _ -> ()
  in
  loop ();
  if horizon > t.now then t.now <- horizon

let run_all t =
  let rec loop () =
    match Event_queue.pop t.queue with
    | Some (time, run) ->
      t.now <- time;
      t.processed <- t.processed + 1;
      run ();
      loop ()
    | None -> ()
  in
  loop ()

let events_processed t = t.processed

let pending t = Event_queue.length t.queue

open! Import

type kind = Data | Control of int | Control_ack of int

type t = {
  src : Node.t;
  dst : Node.t;
  kind : kind;
  bits : float;
  created_s : float;
  mutable hops : int;
}

let make ?(kind = Data) ~src ~dst ~bits now =
  { src; dst; kind; bits; created_s = now; hops = 0 }

let age t ~now = now -. t.created_s

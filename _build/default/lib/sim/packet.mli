open! Import

(** Packets in the packet-level simulator: user data, or routing-update
    control traffic (which rides the priority lane and is consumed
    hop-by-hop by the flooding logic). *)

type kind =
  | Data
  | Control of int  (** token into the simulator's in-flight update table *)
  | Control_ack of int  (** per-line acknowledgement of a [Control] packet *)

type t = {
  src : Node.t;
  dst : Node.t;
  kind : kind;
  bits : float;
  created_s : float;  (** time entered the network *)
  mutable hops : int;  (** links traversed so far *)
}

val make : ?kind:kind -> src:Node.t -> dst:Node.t -> bits:float -> float -> t
(** [make ~src ~dst ~bits now] — [kind] defaults to [Data]. *)

val age : t -> now:float -> float
(** Seconds in the network so far. *)

open! Import

type event =
  | Packet_delivered of { src : Node.t; dst : Node.t; delay_s : float;
                          hops : int }
  | Packet_dropped of { at : Node.t; src : Node.t; dst : Node.t;
                        reason : drop_reason }
  | Update_flooded of { origin : Node.t; links : int }
  | Update_accepted of { at : Node.t; origin : Node.t; latency_s : float }
  | Tables_recomputed of { at : Node.t }
  | Link_state of { link : Link.id; up : bool }

and drop_reason = Buffer_full | Line_down | Line_error | No_route | Ttl

let reason_name = function
  | Buffer_full -> "buffer-full"
  | Line_down -> "line-down"
  | Line_error -> "line-error"
  | No_route -> "no-route"
  | Ttl -> "ttl"

let pp_event g ppf = function
  | Packet_delivered { src; dst; delay_s; hops } ->
    Format.fprintf ppf "delivered %s->%s in %.1f ms over %d hops"
      (Graph.node_name g src) (Graph.node_name g dst) (1000. *. delay_s) hops
  | Packet_dropped { at; src; dst; reason } ->
    Format.fprintf ppf "dropped %s->%s at %s (%s)" (Graph.node_name g src)
      (Graph.node_name g dst) (Graph.node_name g at) (reason_name reason)
  | Update_flooded { origin; links } ->
    Format.fprintf ppf "update from %s covering %d links"
      (Graph.node_name g origin) links
  | Update_accepted { at; origin; latency_s } ->
    Format.fprintf ppf "%s accepted update from %s after %.1f ms"
      (Graph.node_name g at) (Graph.node_name g origin) (1000. *. latency_s)
  | Tables_recomputed { at } ->
    Format.fprintf ppf "%s recomputed its routing table" (Graph.node_name g at)
  | Link_state { link; up } ->
    Format.fprintf ppf "link %a %s" Link.pp_id link (if up then "up" else "down")

type t = {
  ring : (float * event) option array;
  mutable next : int;
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { ring = Array.make capacity None; next = 0; total = 0 }

let record t ~time event =
  t.ring.(t.next) <- Some (time, event);
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let length t = min t.total (Array.length t.ring)

let total_recorded t = t.total

let events t =
  let cap = Array.length t.ring in
  let n = length t in
  List.init n (fun i ->
      match t.ring.((t.next - n + i + (2 * cap)) mod cap) with
      | Some e -> e
      | None -> assert false)

let filter t ~f = List.filter (fun (_, e) -> f e) (events t)

let dump g t =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun (time, event) ->
      Buffer.add_string buffer
        (Format.asprintf "%10.3f  %a\n" time (pp_event g) event))
    (events t);
  Buffer.contents buffer

type entry = { time : float; seq : int; run : unit -> unit }

type t = {
  mutable heap : entry array;
  mutable len : int;
  mutable next_seq : int;
}

let dummy = { time = 0.; seq = 0; run = ignore }

let create () = { heap = Array.make 64 dummy; len = 0; next_seq = 0 }

let is_empty t = t.len = 0

let length t = t.len

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let first = ref i in
  if left < t.len && before t.heap.(left) t.heap.(!first) then first := left;
  if right < t.len && before t.heap.(right) t.heap.(!first) then first := right;
  if !first <> i then begin
    swap t i !first;
    sift_down t !first
  end

let add t ~time run =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  if t.len = Array.length t.heap then begin
    let heap = Array.make (2 * t.len) dummy in
    Array.blit t.heap 0 heap 0 t.len;
    t.heap <- heap
  end;
  t.heap.(t.len) <- { time; seq = t.next_seq; run };
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let next_time t = if t.len = 0 then None else Some t.heap.(0).time

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.run)
  end

let clear t =
  t.len <- 0;
  t.next_seq <- 0

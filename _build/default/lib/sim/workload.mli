open! Import

(** Poisson packet workload driven by a traffic matrix.

    Every nonzero demand becomes an independent Poisson packet process with
    exponentially distributed packet sizes (mean 600 bits — the network-wide
    average the HNM's M/M/1 model assumes).  All draws come from the given
    {!Rng.t}, so runs are reproducible. *)

type size = Fixed of float | Exponential of float  (** mean bits *)

type t

val create :
  ?size:size ->
  Rng.t ->
  Engine.t ->
  Traffic_matrix.t ->
  inject:(Packet.t -> unit) ->
  t
(** Default size: [Exponential 600.]. *)

val start : t -> unit
(** Schedule the first arrival of every flow.  Each arrival reschedules the
    next, so the workload runs until {!stop}. *)

val stop : t -> unit
(** No further packets are injected (already-scheduled events fire but do
    nothing). *)

val set_scale : t -> float -> unit
(** Multiply every flow's rate by the factor (applies to subsequently drawn
    inter-arrival times) — used for traffic-growth scenarios. *)

val generated_packets : t -> int

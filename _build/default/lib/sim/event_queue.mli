(** Time-ordered event queue for the discrete-event engine.

    Events at equal times fire in insertion order (a strict FIFO tie-break),
    which keeps simulations deterministic. *)

type t

val create : unit -> t

val is_empty : t -> bool

val length : t -> int

val add : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument on NaN time. *)

val next_time : t -> float option

val pop : t -> (float * (unit -> unit)) option
(** Earliest event (FIFO among ties). *)

val clear : t -> unit

open! Import

type t = {
  node : Node.t;
  mutable table : Routing_table.t option;
  measurements : (int * Measurement.t) list; (* keyed by link id *)
  flooder : Flooder.t;
}

let create graph node =
  { node;
    table = None;
    measurements =
      List.map
        (fun (l : Link.t) -> (Link.id_to_int l.Link.id, Measurement.create l))
        (Graph.out_links graph node);
    flooder = Flooder.create graph ~owner:node }

let node t = t.node

let install_table t table = t.table <- Some table

let table t = t.table

let route t (packet : Packet.t) =
  if Node.equal packet.Packet.dst t.node then `Deliver
  else
    match t.table with
    | None -> `No_route
    | Some table -> (
      match Routing_table.next_hop table packet.Packet.dst with
      | Some link -> `Forward link
      | None -> `No_route)

let measurement t lid = List.assoc (Link.id_to_int lid) t.measurements

let out_measurements t =
  List.map (fun (_, m) -> (Measurement.link m, m)) t.measurements

let flooder t = t.flooder

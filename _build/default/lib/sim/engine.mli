(** Discrete-event simulation engine: a clock plus an event queue.

    The clock only moves when events fire; scheduling in the past is an
    error.  All of the packet simulator's behaviour is expressed as events
    scheduled here. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time, seconds; starts at 0. *)

val schedule : t -> after:float -> (unit -> unit) -> unit
(** Run a thunk [after] seconds from now.  @raise Invalid_argument on a
    negative delay. *)

val schedule_at : t -> at:float -> (unit -> unit) -> unit
(** @raise Invalid_argument when [at] is before {!now}. *)

val run_until : t -> float -> unit
(** Fire all events with time ≤ the horizon, advancing the clock; the clock
    ends at the horizon even if the queue empties early. *)

val run_all : t -> unit
(** Drain the queue completely (beware of self-perpetuating workloads). *)

val events_processed : t -> int

val pending : t -> int

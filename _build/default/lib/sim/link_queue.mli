open! Import

(** One simplex link's transmitter: a FIFO buffer in front of the line.

    Packets queue while the line is busy; transmission time is
    [bits / capacity]; arrival at the far PSN happens one propagation delay
    after transmission completes.  The buffer is finite (C/30 IMPs had a
    handful of store-and-forward buffers per line) — a full buffer drops
    the packet, which is the congestion signal Fig 13 counts.

    When a packet finishes transmission the queue reports the packet's
    total link delay (queueing + transmission + propagation) to the
    [on_measured] hook — exactly the per-packet quantity the PSN's
    10-second measurement averages (§2.2). *)

type t

type drop_reason = Buffer_full | Line_down | Corrupted

val default_buffer_packets : int
(** {!Routing_metric.Queueing.buffer_capacity} (40) store-and-forward
    buffers per line, keeping the packet simulator and the flow simulator's
    M/M/1/K model consistent. *)

val create :
  ?buffer_packets:int ->
  ?error_rate:float ->
  ?rng:Routing_stats.Rng.t ->
  Engine.t ->
  Link.t ->
  on_arrival:(Packet.t -> unit) ->
  on_measured:(delay_s:float -> unit) ->
  on_drop:(drop_reason -> Packet.t -> unit) ->
  t
(** [error_rate] (default 0) is the per-packet probability that the line
    corrupts a transmission: the packet occupies the line (and is
    measured) but never arrives — 1980s trunks had real bit-error rates,
    which is what made the updating protocol's per-line retransmission
    necessary (Rosen 1980).  Requires [rng] when nonzero. *)

val link : t -> Link.t

val enqueue : t -> Packet.t -> unit
(** Accept a packet for transmission (or drop it if the buffer is full). *)

val enqueue_priority : t -> Packet.t -> unit
(** Accept a routing-update packet: "routing update processing is a high
    priority process within the PSN" (§3.2), so these jump every waiting
    data packet (but not the one already on the wire) and are never
    dropped for buffer exhaustion.  They do not contribute to the delay
    measurement. *)

val queue_length : t -> int
(** Packets waiting or in transmission right now — the 1969 metric's
    instantaneous sample. *)

val set_up : t -> bool -> unit
(** A downed link drops everything it holds and everything enqueued. *)

val is_up : t -> bool

val transmitted_packets : t -> int

val transmitted_bits : t -> float

val dropped_packets : t -> int
(** Cumulative counters; window-based statistics are derived by snapshotting
    them at window boundaries (see {!Measure}). *)

val corrupted_packets : t -> int
(** Transmissions lost to line errors (a subset of neither {!dropped_packets}
    nor {!transmitted_packets} — they occupied the line but never arrived;
    [on_drop] is invoked for them). *)

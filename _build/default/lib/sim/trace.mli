open! Import

(** Structured event tracing for the packet simulator.

    A bounded ring buffer of typed events — the debugging view a PSN's
    console would give an operator.  Tracing is opt-in
    ({!Network.config.trace_capacity}); when off, nothing is recorded and
    the hooks cost one branch. *)

type event =
  | Packet_delivered of { src : Node.t; dst : Node.t; delay_s : float;
                          hops : int }
  | Packet_dropped of { at : Node.t; src : Node.t; dst : Node.t;
                        reason : drop_reason }
  | Update_flooded of { origin : Node.t; links : int }
      (** a PSN originated a routing update covering [links] of its lines *)
  | Update_accepted of { at : Node.t; origin : Node.t; latency_s : float }
  | Tables_recomputed of { at : Node.t }
  | Link_state of { link : Link.id; up : bool }

and drop_reason = Buffer_full | Line_down | Line_error | No_route | Ttl

val pp_event : Graph.t -> Format.formatter -> event -> unit

type t

val create : capacity:int -> t
(** Keeps the most recent [capacity] events.
    @raise Invalid_argument if [capacity <= 0]. *)

val record : t -> time:float -> event -> unit

val length : t -> int
(** Events currently retained (≤ capacity). *)

val total_recorded : t -> int
(** Events ever recorded, including those that have rotated out. *)

val events : t -> (float * event) list
(** Retained events, oldest first. *)

val filter : t -> f:(event -> bool) -> (float * event) list

val dump : Graph.t -> t -> string
(** One line per retained event, for logs or debugging sessions. *)

open! Import

type waiting = { packet : Packet.t; enqueued_s : float; priority : bool }

module Rng = Routing_stats.Rng

type drop_reason = Buffer_full | Line_down | Corrupted

type t = {
  engine : Engine.t;
  link : Link.t;
  buffer_packets : int;
  error_rate : float;
  rng : Rng.t option;
  fifo : waiting Queue.t;
  priority_fifo : waiting Queue.t;
  mutable busy : bool;
  mutable in_flight : Packet.t option;
  mutable up : bool;
  mutable epoch : int;  (* bumped on link-down: invalidates in-flight events *)
  on_arrival : Packet.t -> unit;
  on_measured : delay_s:float -> unit;
  on_drop : drop_reason -> Packet.t -> unit;
  mutable transmitted : int;
  mutable transmitted_bits : float;
  mutable dropped : int;
  mutable corrupted : int;
}

let default_buffer_packets = Queueing.buffer_capacity

let create ?(buffer_packets = default_buffer_packets) ?(error_rate = 0.) ?rng
    engine link ~on_arrival ~on_measured ~on_drop =
  if error_rate > 0. && rng = None then
    invalid_arg "Link_queue.create: error_rate needs an rng";
  { engine;
    link;
    buffer_packets;
    error_rate;
    rng;
    fifo = Queue.create ();
    priority_fifo = Queue.create ();
    busy = false;
    in_flight = None;
    up = true;
    epoch = 0;
    on_arrival;
    on_measured;
    on_drop;
    transmitted = 0;
    transmitted_bits = 0.;
    dropped = 0;
    corrupted = 0 }

let link t = t.link

let queue_length t =
  Queue.length t.fifo + Queue.length t.priority_fifo + if t.busy then 1 else 0

let rec start_transmission t =
  let next =
    match Queue.take_opt t.priority_fifo with
    | Some _ as w -> w
    | None -> Queue.take_opt t.fifo
  in
  match next with
  | None ->
    t.busy <- false;
    t.in_flight <- None
  | Some { packet; enqueued_s; priority } ->
    t.busy <- true;
    t.in_flight <- Some packet;
    let epoch = t.epoch in
    let tx = Link.transmission_s t.link ~bits:packet.Packet.bits in
    Engine.schedule t.engine ~after:tx (fun () ->
        if t.up && t.epoch = epoch then begin
          let now = Engine.now t.engine in
          t.transmitted <- t.transmitted + 1;
          t.transmitted_bits <- t.transmitted_bits +. packet.Packet.bits;
          (* The measured link delay: waiting + transmission, plus the
             tabled propagation the PSN adds (§2.2).  Control packets are
             not user traffic and stay out of the measurement. *)
          if not priority then
            t.on_measured
              ~delay_s:(now -. enqueued_s +. t.link.Link.propagation_s);
          let corrupted =
            match t.rng with
            | Some rng when t.error_rate > 0. -> Rng.float rng 1. < t.error_rate
            | _ -> false
          in
          if corrupted then begin
            t.corrupted <- t.corrupted + 1;
            t.on_drop Corrupted packet
          end
          else begin
            packet.Packet.hops <- packet.Packet.hops + 1;
            Engine.schedule t.engine ~after:t.link.Link.propagation_s (fun () ->
                t.on_arrival packet)
          end;
          start_transmission t
        end)

let enqueue t packet =
  if (not t.up) || Queue.length t.fifo >= t.buffer_packets then begin
    t.dropped <- t.dropped + 1;
    t.on_drop (if t.up then Buffer_full else Line_down) packet
  end
  else begin
    Queue.add { packet; enqueued_s = Engine.now t.engine; priority = false }
      t.fifo;
    if not t.busy then start_transmission t
  end

let enqueue_priority t packet =
  if not t.up then begin
    t.dropped <- t.dropped + 1;
    t.on_drop Line_down packet
  end
  else begin
    Queue.add { packet; enqueued_s = Engine.now t.engine; priority = true }
      t.priority_fifo;
    if not t.busy then start_transmission t
  end

let set_up t up =
  if t.up && not up then begin
    (* Everything queued or mid-transmission is lost with the line. *)
    t.dropped <-
      t.dropped + Queue.length t.fifo + Queue.length t.priority_fifo
      + (if t.busy then 1 else 0);
    Queue.iter (fun w -> t.on_drop Line_down w.packet) t.fifo;
    Queue.iter (fun w -> t.on_drop Line_down w.packet) t.priority_fifo;
    Queue.clear t.fifo;
    Queue.clear t.priority_fifo;
    Option.iter (t.on_drop Line_down) t.in_flight;
    t.in_flight <- None;
    t.busy <- false;
    t.epoch <- t.epoch + 1
  end;
  t.up <- up

let is_up t = t.up

let transmitted_packets t = t.transmitted

let transmitted_bits t = t.transmitted_bits

let dropped_packets t = t.dropped

let corrupted_packets t = t.corrupted

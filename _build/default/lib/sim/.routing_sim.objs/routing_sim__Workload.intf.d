lib/sim/workload.mli: Engine Import Packet Rng Traffic_matrix

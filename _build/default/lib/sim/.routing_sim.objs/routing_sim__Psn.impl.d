lib/sim/psn.ml: Flooder Graph Import Link List Measurement Node Packet Routing_table

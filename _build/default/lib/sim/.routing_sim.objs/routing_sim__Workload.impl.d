lib/sim/workload.ml: Array Engine Float Import List Node Packet Rng Traffic_matrix

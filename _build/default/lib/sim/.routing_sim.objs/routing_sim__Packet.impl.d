lib/sim/packet.ml: Import Node

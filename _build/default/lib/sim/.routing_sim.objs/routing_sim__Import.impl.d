lib/sim/import.ml: Routing_flooding Routing_metric Routing_spf Routing_stats Routing_topology

lib/sim/link_queue.ml: Engine Import Link Option Packet Queue Queueing Routing_stats

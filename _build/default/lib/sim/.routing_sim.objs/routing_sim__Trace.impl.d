lib/sim/trace.ml: Array Buffer Format Graph Import Link List Node

lib/sim/measure.mli: Format Import Routing_stats Welford

lib/sim/engine.mli:

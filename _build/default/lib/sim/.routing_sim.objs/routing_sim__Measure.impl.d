lib/sim/measure.ml: Format Import List Routing_stats Welford

lib/sim/psn.mli: Flooder Graph Import Link Measurement Node Packet Routing_table

lib/sim/script.mli: Flow_sim Graph Import Metric Traffic_matrix

lib/sim/packet.mli: Import Node

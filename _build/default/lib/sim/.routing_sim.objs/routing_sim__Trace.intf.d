lib/sim/trace.mli: Format Graph Import Link Node

lib/sim/flow_sim.mli: Graph Import Link Measure Metric Traffic_matrix

lib/sim/flow_sim.ml: Array Broadcast Dijkstra Float Flooder Graph Hashtbl Import Link List Logs Measure Metric Node Option Queueing Spf_tree Traffic_matrix Units

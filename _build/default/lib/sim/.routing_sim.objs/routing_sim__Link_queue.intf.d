lib/sim/link_queue.mli: Engine Import Link Packet Routing_stats

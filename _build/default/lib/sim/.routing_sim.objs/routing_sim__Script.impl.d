lib/sim/script.ml: Float Flow_sim Graph Import In_channel Link List Metric Printf Routing_topology String Traffic_matrix Units

lib/sim/network.mli: Engine Graph Import Link Measure Metric Routing_metric Routing_stats Trace Traffic_matrix Workload

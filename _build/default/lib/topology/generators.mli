(** Synthetic topology families used by tests and experiments.

    [two_region] is the exact topology of the paper's Fig 1 oscillation
    example: two well-connected regions joined by two parallel inter-region
    links of equal bandwidth and propagation delay.  The others provide
    parameterized meshes for property tests and scaling studies. *)

val two_region :
  ?region_size:int ->
  ?bridge_type:Line_type.t ->
  unit ->
  Graph.t * (Link.id * Link.id)
(** Two cliques-of-rings of [region_size] nodes (default 8) named ["L*"] and
    ["R*"], joined by bridge trunks A (L0-R0) and B (L1-R1) of
    [bridge_type] (default 56 kb/s terrestrial).  Returns the graph and the
    forward link ids of the two bridges (left-to-right direction). *)

val ring : ?line_type:Line_type.t -> int -> Graph.t
(** A simple cycle of [n] nodes.  @raise Invalid_argument if [n < 3]. *)

val ring_chord :
  ?line_type:Line_type.t ->
  Routing_stats.Rng.t ->
  nodes:int ->
  chords:int ->
  Graph.t
(** A ring plus [chords] random non-adjacent chords — connected by
    construction, rich in alternate paths. *)

val random_geometric :
  ?line_type:Line_type.t ->
  Routing_stats.Rng.t ->
  nodes:int ->
  radius:float ->
  Graph.t
(** Nodes placed uniformly in the unit square, connected when within
    [radius]; extra edges are added to stitch any disconnected components
    together, so the result is always connected. *)

val line : ?line_type:Line_type.t -> int -> Graph.t
(** A path graph of [n] nodes — the degenerate no-alternate-paths case.
    @raise Invalid_argument if [n < 2]. *)

val full_mesh : ?line_type:Line_type.t -> int -> Graph.t
(** Every pair connected directly.  @raise Invalid_argument if [n < 2]. *)

module Rng = Routing_stats.Rng

(* Trunk list for the synthesized network.  Grouping follows geography:
   New England, New York corridor, Washington DC area, Southeast, the
   mountain/southwest states, California, and the overseas tails.  Line
   types: mostly 56 kb/s terrestrial; 9.6 kb/s tail circuits; satellite
   links to Hawaii/Norway and one domestic satellite trunk (ARPA-AMES). *)
let trunks : (string * string * Line_type.t * float option) list =
  let t56 = Line_type.T56 and t96 = Line_type.T9_6 in
  let s56 = Line_type.S56 and s96 = Line_type.S9_6 in
  [
    (* New England *)
    ("MIT", "BBN", t56, Some 0.002);
    ("MIT", "HARV", t56, Some 0.001);
    ("HARV", "BBN", t56, Some 0.001);
    ("BBN", "BBN2", t56, Some 0.001);
    ("BBN2", "CCA", t56, Some 0.001);
    ("CCA", "MIT2", t56, Some 0.001);
    ("MIT2", "MIT", t56, Some 0.001);
    ("LINC", "MIT", t96, Some 0.001);
    ("LINC", "DEC", t96, Some 0.002);
    ("DEC", "BBN2", t56, Some 0.002);
    (* New York / mid-Atlantic corridor *)
    ("CCA", "NYU", t56, Some 0.004);
    ("NYU", "COLUMBIA", t56, Some 0.001);
    ("NYU", "RUTGERS", t56, Some 0.001);
    ("COLUMBIA", "CORNELL", t56, Some 0.004);
    ("CORNELL", "DEC", t56, Some 0.006);
    ("CORNELL", "CMU", t56, Some 0.005);
    ("CMU", "PITT", t96, Some 0.001);
    ("PITT", "ABERDEEN", t96, Some 0.004);
    (* Washington DC area *)
    ("RUTGERS", "UMD", t56, Some 0.003);
    ("UMD", "NBS", t56, Some 0.001);
    ("NBS", "ARPA", t56, Some 0.001);
    ("ARPA", "MITRE", t56, Some 0.001);
    ("MITRE", "PENTAGON", t56, Some 0.001);
    ("PENTAGON", "DCEC", t56, Some 0.001);
    ("DCEC", "ARPA", t56, Some 0.001);
    ("NRL", "PENTAGON", t96, Some 0.001);
    ("NSA", "NBS", t56, Some 0.001);
    ("NSA", "ABERDEEN", t56, Some 0.002);
    ("ABERDEEN", "UMD", t56, Some 0.002);
    ("SDAC", "MITRE", t56, Some 0.001);
    (* Overseas tails *)
    ("SDAC", "NORSAR", s96, None);
    ("NORSAR", "LONDON", t96, Some 0.055);
    (* Southeast *)
    ("PENTAGON", "BRAGG", t56, Some 0.004);
    ("BRAGG", "ROBINS", t56, Some 0.005);
    ("ROBINS", "GUNTER", t96, Some 0.002);
    ("GUNTER", "EGLIN", t56, Some 0.002);
    ("EGLIN", "TEXAS", t56, Some 0.009);
    ("TEXAS", "RICE", t56, Some 0.002);
    ("TEXAS", "TINKER", t56, Some 0.005);
    (* Mountain / southwest *)
    ("TINKER", "WSMR", t56, Some 0.007);
    ("WSMR", "SANDIA", t56, Some 0.003);
    ("SANDIA", "AFWL", t96, Some 0.001);
    ("SANDIA", "LANL", t96, Some 0.002);
    ("LANL", "DENVER", t56, Some 0.005);
    ("DENVER", "UTAH", t56, Some 0.006);
    ("UTAH", "BYU", t96, Some 0.001);
    (* Cross-country trunks *)
    ("CMU", "UTAH", t56, Some 0.028);
    ("DENVER", "AMES", t56, Some 0.017);
    ("RICE", "UCLA", t56, Some 0.023);
    ("UTAH", "SRI", t56, Some 0.012);
    ("ARPA", "AMES", s56, None);
    (* Los Angeles basin *)
    ("UCLA", "RAND", t56, Some 0.001);
    ("RAND", "SDC", t96, Some 0.001);
    ("SDC", "USC", t56, Some 0.001);
    ("USC", "ISI", t56, Some 0.001);
    ("ISI", "ISI2", t56, Some 0.001);
    ("ISI2", "UCLA", t56, Some 0.001);
    ("ISI", "UCLA", t56, Some 0.001);
    (* Bay Area *)
    ("SRI", "STANFORD", t56, Some 0.001);
    ("STANFORD", "SUMEX", t96, Some 0.001);
    ("STANFORD", "XEROX", t56, Some 0.001);
    ("STANFORD", "BERKELEY", t56, Some 0.002);
    ("BERKELEY", "LBL", t56, Some 0.001);
    ("LBL", "SRI", t56, Some 0.002);
    ("SRI", "SRI2", t56, Some 0.001);
    ("SRI2", "AMES2", t56, Some 0.002);
    ("AMES2", "AMES", t56, Some 0.001);
    ("AMES", "MOFFETT", t96, Some 0.001);
    (* LA <-> Bay Area *)
    ("UCLA", "STANFORD", t56, Some 0.015);
    ("ISI", "AMES", t56, Some 0.015);
    ("USC", "SUMEX", t56, Some 0.015);
    (* Pacific *)
    ("AMES", "HAWAII", s56, None);
  ]

let cross_country =
  [ ("CMU", "UTAH"); ("DENVER", "AMES"); ("RICE", "UCLA"); ("UTAH", "SRI");
    ("ARPA", "AMES") ]

let topology () =
  let b = Builder.create () in
  List.iter
    (fun (a, z, lt, prop) ->
      match prop with
      | Some propagation_s -> ignore (Builder.trunk b ~propagation_s lt a z)
      | None -> ignore (Builder.trunk b lt a z))
    trunks;
  let g = Builder.build b in
  assert (Graph.is_connected g);
  g

let representative_link g =
  match (Graph.node_by_name g "MIT", Graph.node_by_name g "BBN") with
  | Some mit, Some bbn -> (
    match Graph.find_link g ~src:mit ~dst:bbn with
    | Some l -> l
    | None -> invalid_arg "Arpanet.representative_link")
  | _ -> invalid_arg "Arpanet.representative_link"

let bridge_links g =
  List.concat_map
    (fun (a, z) ->
      match (Graph.node_by_name g a, Graph.node_by_name g z) with
      | Some na, Some nz -> (
        match Graph.find_link g ~src:na ~dst:nz with
        | Some l -> [ l; Graph.reverse g l ]
        | None -> [])
      | _ -> [])
    cross_country

(* Scale rows/columns down until no node offers (or sinks) more than
   [frac] of its attached line capacity — a gravity matrix knows nothing
   about 9.6 kb/s tail circuits and would otherwise oversubscribe them
   physically. *)
let fit_to_access_capacity g tm ~frac =
  let cap_out = Array.make (Graph.node_count g) 0. in
  let cap_in = Array.make (Graph.node_count g) 0. in
  Graph.iter_links g (fun (l : Link.t) ->
      let c = Link.capacity_bps l in
      cap_out.(Node.to_int l.Link.src) <- cap_out.(Node.to_int l.Link.src) +. c;
      cap_in.(Node.to_int l.Link.dst) <- cap_in.(Node.to_int l.Link.dst) +. c);
  for _pass = 1 to 8 do
    Graph.iter_nodes g (fun node ->
        let offered = Traffic_matrix.offered_from tm node in
        let limit = frac *. cap_out.(Node.to_int node) in
        if offered > limit then begin
          let k = limit /. offered in
          Graph.iter_nodes g (fun dst ->
              Traffic_matrix.set tm ~src:node ~dst
                (k *. Traffic_matrix.get tm ~src:node ~dst))
        end);
    Graph.iter_nodes g (fun node ->
        let sunk =
          Traffic_matrix.fold tm ~init:0. ~f:(fun acc ~src:_ ~dst v ->
              if Node.equal dst node then acc +. v else acc)
        in
        let limit = frac *. cap_in.(Node.to_int node) in
        if sunk > limit then begin
          let k = limit /. sunk in
          Graph.iter_nodes g (fun src ->
              Traffic_matrix.set tm ~src ~dst:node
                (k *. Traffic_matrix.get tm ~src ~dst:node))
        end)
  done

let peak_traffic rng g =
  let n = Graph.node_count g in
  let base = Traffic_matrix.gravity rng ~nodes:n ~total_bps:400_000. in
  fit_to_access_capacity g base ~frac:0.30;
  let heavy a z bps =
    match (Graph.node_by_name g a, Graph.node_by_name g z) with
    | Some src, Some dst ->
      Traffic_matrix.add base ~src ~dst bps;
      Traffic_matrix.add base ~src:dst ~dst:src bps
    | _ -> ()
  in
  (* Coast-to-coast flows that load the five cross-country trunks; the
     totals bring the matrix to ~366 kb/s, Table 1's May-87 figure. *)
  heavy "MIT" "ISI" 6_000.;
  heavy "BBN" "SRI" 5_000.;
  heavy "ARPA" "ISI" 5_000.;
  heavy "CMU" "STANFORD" 4_000.;
  heavy "UTAH" "MIT" 3_000.;
  base

(** PSN (packet-switching node) identifiers.

    Nodes are dense small integers assigned by the graph builder, so arrays
    indexed by node are the natural table representation throughout the
    code base. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val pp : Format.formatter -> t -> unit

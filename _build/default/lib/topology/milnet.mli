(** A MILNET-style heterogeneous-trunking topology.

    §4.4: "Both the ARPANET and MILNET have heterogeneous trunking.  Both
    use satellite and multi-trunk lines, while the MILNET also uses
    different link bandwidths."  This smaller stand-in exercises exactly
    that: every line type in {!Line_type.all} appears, including the
    multi-trunk bundles, satellite hops to Europe and the Pacific, and slow
    9.6 kb/s tails next to 448 kb/s backbone bundles. *)

val topology : unit -> Graph.t

val peak_traffic : Routing_stats.Rng.t -> Graph.t -> Traffic_matrix.t
(** Gravity matrix scaled so backbone bundles run moderately hot. *)

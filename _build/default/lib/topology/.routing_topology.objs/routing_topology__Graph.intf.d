lib/topology/graph.mli: Format Link Node

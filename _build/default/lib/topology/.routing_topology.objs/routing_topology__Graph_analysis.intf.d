lib/topology/graph_analysis.mli: Format Graph Link Node Traffic_matrix

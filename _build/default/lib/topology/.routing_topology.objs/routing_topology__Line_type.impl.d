lib/topology/line_type.ml: Format Int List Printf String

lib/topology/graph_analysis.ml: Array Format Graph Hashtbl Link List Node Queue String Traffic_matrix

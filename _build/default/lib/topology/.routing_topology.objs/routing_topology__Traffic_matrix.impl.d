lib/topology/traffic_matrix.ml: Array Float Format List Node Routing_stats

lib/topology/dot.ml: Buffer Graph Line_type Link Out_channel Printf String

lib/topology/builder.mli: Graph Line_type Link Node

lib/topology/serial.ml: Buffer Builder Graph In_channel Line_type Link List Out_channel Printf String Traffic_matrix

lib/topology/generators.ml: Array Builder Fun Hashtbl Line_type Printf Routing_stats

lib/topology/generators.mli: Graph Line_type Link Routing_stats

lib/topology/link.ml: Format Int Line_type Node

lib/topology/builder.ml: Array Graph Hashtbl Line_type Link List Node Option String

lib/topology/node.ml: Format Int

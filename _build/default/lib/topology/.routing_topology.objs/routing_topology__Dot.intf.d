lib/topology/dot.mli: Graph Link

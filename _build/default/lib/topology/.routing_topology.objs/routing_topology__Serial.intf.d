lib/topology/serial.mli: Graph Traffic_matrix

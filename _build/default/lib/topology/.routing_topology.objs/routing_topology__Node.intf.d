lib/topology/node.mli: Format

lib/topology/link.mli: Format Line_type Node

lib/topology/milnet.mli: Graph Routing_stats Traffic_matrix

lib/topology/arpanet.ml: Array Builder Graph Line_type Link List Node Routing_stats Traffic_matrix

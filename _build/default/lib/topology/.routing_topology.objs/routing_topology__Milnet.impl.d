lib/topology/milnet.ml: Builder Graph Line_type List Routing_stats Traffic_matrix

lib/topology/line_type.mli: Format

lib/topology/graph.ml: Array Format Hashtbl Line_type Link List Node Option Printf String

lib/topology/arpanet.mli: Graph Link Routing_stats Traffic_matrix

lib/topology/traffic_matrix.mli: Format Node Routing_stats

(** Simplex links between PSNs.

    The paper "use[s] the term link to refer to the simplex communication
    medium between two PSNs", and link costs are reported per direction, so
    links here are directed.  Physical trunks are bidirectional: the builder
    always creates links in pairs and records each link's reverse. *)

type id = private int
(** Dense link identifier, assigned by the builder; index for all per-link
    tables (costs, queues, measurement state). *)

val id_of_int : int -> id
(** @raise Invalid_argument on negative input. *)

val id_to_int : id -> int

val id_equal : id -> id -> bool

val id_compare : id -> id -> int

val pp_id : Format.formatter -> id -> unit

type t = {
  id : id;
  src : Node.t;
  dst : Node.t;
  line_type : Line_type.t;
  propagation_s : float;  (** one-way propagation delay, seconds *)
  reverse : id;  (** the paired link carrying traffic dst -> src *)
}

val capacity_bps : t -> float
(** Combined bandwidth of the link's trunks. *)

val transmission_s : t -> bits:float -> float
(** Time to clock [bits] onto the line. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

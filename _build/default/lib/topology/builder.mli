(** Incremental topology construction.

    A builder accumulates named nodes and bidirectional trunks and produces
    an immutable {!Graph.t}.  Every [trunk] call creates the two simplex
    links with mutually consistent [reverse] pointers. *)

type t

val create : unit -> t

val add_node : t -> string -> Node.t
(** Register a node.  Re-adding an existing name returns the original id. *)

val node : t -> string -> Node.t
(** Like {!add_node}; reads as a lookup when the node is known to exist. *)

val trunk :
  t ->
  ?propagation_s:float ->
  Line_type.t ->
  string ->
  string ->
  Link.id * Link.id
(** [trunk t lt a b] connects nodes named [a] and [b] (creating them if
    needed) with a bidirectional trunk of the given line type; returns the
    two simplex link ids (a->b, b->a).  [propagation_s] defaults to
    {!Line_type.default_propagation_s}.
    @raise Invalid_argument on a self-loop. *)

val build : t -> Graph.t
(** Freeze into a graph.  The builder can keep being extended afterwards;
    subsequent [build]s include the additions. *)

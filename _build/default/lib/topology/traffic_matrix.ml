module Rng = Routing_stats.Rng

type t = { n : int; demand : float array (* row-major, n*n *) }

let create ~nodes =
  if nodes < 0 then invalid_arg "Traffic_matrix.create";
  { n = nodes; demand = Array.make (nodes * nodes) 0. }

let nodes t = t.n

let idx t src dst = (Node.to_int src * t.n) + Node.to_int dst

let get t ~src ~dst = t.demand.(idx t src dst)

let set t ~src ~dst v =
  if not (Node.equal src dst) then t.demand.(idx t src dst) <- Float.max 0. v

let add t ~src ~dst v = set t ~src ~dst (get t ~src ~dst +. v)

let copy t = { t with demand = Array.copy t.demand }

let scale t factor =
  { t with demand = Array.map (fun v -> v *. factor) t.demand }

let total_bps t = Array.fold_left ( +. ) 0. t.demand

let flow_count t =
  Array.fold_left (fun acc v -> if v > 0. then acc + 1 else acc) 0 t.demand

let iter t f =
  for s = 0 to t.n - 1 do
    for d = 0 to t.n - 1 do
      let v = t.demand.((s * t.n) + d) in
      if v > 0. then f ~src:(Node.of_int s) ~dst:(Node.of_int d) v
    done
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun ~src ~dst v -> acc := f !acc ~src ~dst v);
  !acc

let offered_from t node =
  let s = Node.to_int node in
  let sum = ref 0. in
  for d = 0 to t.n - 1 do
    sum := !sum +. t.demand.((s * t.n) + d)
  done;
  !sum

let uniform ~nodes ~pair_bps =
  let t = create ~nodes in
  for s = 0 to nodes - 1 do
    for d = 0 to nodes - 1 do
      if s <> d then set t ~src:(Node.of_int s) ~dst:(Node.of_int d) pair_bps
    done
  done;
  t

let gravity rng ~nodes ~total_bps =
  let t = create ~nodes in
  if nodes > 1 && total_bps > 0. then begin
    (* Log-uniform masses over one decade: a few big hosts, many small. *)
    let mass = Array.init nodes (fun _ -> 10. ** Rng.float rng 1.) in
    let weight = ref 0. in
    for s = 0 to nodes - 1 do
      for d = 0 to nodes - 1 do
        if s <> d then weight := !weight +. (mass.(s) *. mass.(d))
      done
    done;
    for s = 0 to nodes - 1 do
      for d = 0 to nodes - 1 do
        if s <> d then
          set t ~src:(Node.of_int s) ~dst:(Node.of_int d)
            (total_bps *. mass.(s) *. mass.(d) /. !weight)
      done
    done
  end;
  t

let hotspot rng ~nodes ~background_bps ~hotspots =
  let t = create ~nodes in
  for s = 0 to nodes - 1 do
    for d = 0 to nodes - 1 do
      if s <> d then begin
        (* Jitter the background +-20% so no two flows are exactly equal,
           avoiding artificial path-length ties. *)
        let jitter = Rng.uniform rng ~lo:0.8 ~hi:1.2 in
        set t ~src:(Node.of_int s) ~dst:(Node.of_int d) (background_bps *. jitter)
      end
    done
  done;
  List.iter (fun (src, dst, bps) -> add t ~src ~dst bps) hotspots;
  t

let pp_summary ppf t =
  Format.fprintf ppf "%d flows, %.1f kb/s total" (flow_count t)
    (total_bps t /. 1000.)

type t = {
  names : string array;
  link_array : Link.t array;
  out_by_node : Link.t list array; (* in link-id order *)
  in_by_node : Link.t list array;
}

let node_count t = Array.length t.names

let link_count t = Array.length t.link_array

let nodes t = List.init (node_count t) Node.of_int

let links t = Array.to_list t.link_array

let node_name t n = t.names.(Node.to_int n)

let node_by_name t name =
  let rec scan i =
    if i >= Array.length t.names then None
    else if String.equal t.names.(i) name then Some (Node.of_int i)
    else scan (i + 1)
  in
  scan 0

let link t id =
  let i = Link.id_to_int id in
  if i < 0 || i >= link_count t then invalid_arg "Graph.link: unknown id";
  t.link_array.(i)

let out_links t n = t.out_by_node.(Node.to_int n)

let in_links t n = t.in_by_node.(Node.to_int n)

let find_link t ~src ~dst =
  List.find_opt (fun (l : Link.t) -> Node.equal l.dst dst) (out_links t src)

let reverse t (l : Link.t) = link t l.reverse

let degree t n = List.length (out_links t n)

let iter_links t f = Array.iter f t.link_array

let fold_links t ~init ~f = Array.fold_left f init t.link_array

let iter_nodes t f =
  for i = 0 to node_count t - 1 do
    f (Node.of_int i)
  done

let is_connected t =
  let n = node_count t in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec visit stack count =
      match stack with
      | [] -> count
      | node :: rest ->
        let next, count =
          List.fold_left
            (fun (stack, count) (l : Link.t) ->
              let d = Node.to_int l.dst in
              if seen.(d) then (stack, count)
              else begin
                seen.(d) <- true;
                (l.dst :: stack, count + 1)
              end)
            (rest, count) (out_links t node)
        in
        visit next count
    in
    seen.(0) <- true;
    visit [ Node.of_int 0 ] 1 = n
  end

let average_degree t =
  if node_count t = 0 then 0.
  else float_of_int (link_count t) /. float_of_int (node_count t)

let pp_summary ppf t =
  let mix = Hashtbl.create 8 in
  iter_links t (fun l ->
      let k = l.Link.line_type in
      Hashtbl.replace mix k (1 + Option.value ~default:0 (Hashtbl.find_opt mix k)));
  let mix_s =
    Line_type.all
    |> List.filter_map (fun lt ->
           match Hashtbl.find_opt mix lt with
           | Some n -> Some (Printf.sprintf "%s:%d" (Line_type.name lt) (n / 2))
           | None -> None)
    |> String.concat " "
  in
  Format.fprintf ppf "%d nodes, %d trunks (avg degree %.2f) [%s]" (node_count t)
    (link_count t / 2) (average_degree t) mix_s

let make ~names ~links =
  let n = Array.length names in
  Array.iteri
    (fun i (l : Link.t) ->
      if Link.id_to_int l.id <> i then
        invalid_arg "Graph.make: link ids must be dense and in order";
      if Node.to_int l.src >= n || Node.to_int l.dst >= n then
        invalid_arg "Graph.make: link endpoint out of range";
      if Node.equal l.src l.dst then invalid_arg "Graph.make: self-loop";
      let r = Link.id_to_int l.reverse in
      if r < 0 || r >= Array.length links then
        invalid_arg "Graph.make: dangling reverse pointer";
      let rl = links.(r) in
      if
        (not (Node.equal rl.Link.src l.dst))
        || not (Node.equal rl.Link.dst l.src)
      then invalid_arg "Graph.make: reverse link endpoints inconsistent")
    links;
  let out_by_node = Array.make n [] in
  let in_by_node = Array.make n [] in
  (* Fold right so the per-node lists come out in ascending link-id order. *)
  for i = Array.length links - 1 downto 0 do
    let l = links.(i) in
    let s = Node.to_int l.Link.src and d = Node.to_int l.Link.dst in
    out_by_node.(s) <- l :: out_by_node.(s);
    in_by_node.(d) <- l :: in_by_node.(d)
  done;
  { names; link_array = links; out_by_node; in_by_node }

type t = {
  mutable names : string list; (* reversed *)
  mutable node_count : int;
  by_name : (string, Node.t) Hashtbl.t;
  mutable links : Link.t list; (* reversed *)
  mutable link_count : int;
}

let create () =
  { names = [];
    node_count = 0;
    by_name = Hashtbl.create 64;
    links = [];
    link_count = 0 }

let add_node t name =
  match Hashtbl.find_opt t.by_name name with
  | Some n -> n
  | None ->
    let n = Node.of_int t.node_count in
    t.node_count <- t.node_count + 1;
    t.names <- name :: t.names;
    Hashtbl.add t.by_name name n;
    n

let node = add_node

let trunk t ?propagation_s line_type a b =
  if String.equal a b then invalid_arg "Builder.trunk: self-loop";
  let src = add_node t a in
  let dst = add_node t b in
  let propagation_s =
    Option.value propagation_s ~default:(Line_type.default_propagation_s line_type)
  in
  let id_ab = Link.id_of_int t.link_count in
  let id_ba = Link.id_of_int (t.link_count + 1) in
  let fwd =
    { Link.id = id_ab; src; dst; line_type; propagation_s; reverse = id_ba }
  in
  let bwd =
    { Link.id = id_ba; src = dst; dst = src; line_type; propagation_s;
      reverse = id_ab }
  in
  t.links <- bwd :: fwd :: t.links;
  t.link_count <- t.link_count + 2;
  (id_ab, id_ba)

let build t =
  let names = Array.of_list (List.rev t.names) in
  let links = Array.of_list (List.rev t.links) in
  Graph.make ~names ~links

type t = int

let of_int i =
  if i < 0 then invalid_arg "Node.of_int: negative id";
  i

let to_int i = i

let equal = Int.equal

let compare = Int.compare

let hash i = i

let pp ppf i = Format.fprintf ppf "n%d" i

(** A synthesized July-1987-style ARPANET topology.

    BBN's actual July 1987 topology file and peak-hour traffic matrix are
    not public, so this module provides a stand-in with the structural
    properties the paper relies on (see DESIGN.md §2): ~57 PSNs, ~72
    bidirectional trunks (average degree ≈ 2.5), predominantly 56 kb/s
    terrestrial lines with a minority of 9.6 kb/s tail circuits, satellite
    links to Hawaii and Europe plus one domestic satellite trunk, and a
    mesh "rich with alternate paths" — long routes have alternates only
    slightly longer (validated against Fig 7 by
    [Routing_equilibrium.Response_map]). *)

val topology : unit -> Graph.t
(** The fixed synthesized topology.  Node names are historical ARPANET site
    mnemonics; the link list is embedded data, identical on every call. *)

val peak_traffic : Routing_stats.Rng.t -> Graph.t -> Traffic_matrix.t
(** A gravity-model "peak hour" matrix scaled to ≈366 kb/s total internode
    traffic (Table 1's May-1987 figure), with a handful of heavy
    coast-to-coast flows layered on top so cross-country trunks run hot. *)

val representative_link : Graph.t -> Link.t
(** A short-propagation 56 kb/s terrestrial trunk (MIT->BBN) whose idle
    cost equals one ambient hop under both metrics — the "average link" the
    paper's §5 single-link analysis reasons about. *)

val bridge_links : Graph.t -> Link.t list
(** The cross-country trunks (both directions) — the contended resources in
    most experiments. *)

(** Structural diagnostics of a topology.

    §5.2 rests on the ARPANET being "rich with alternate paths"; these
    functions make that property measurable.  A {e bridge trunk} is one
    whose failure disconnects the network — every flow crossing it is
    captive (it can never be shed by any reported cost, which is the floor
    in Fig 8's response map).  An {e articulation node} is a PSN whose
    failure disconnects the network. *)

val bridges : Graph.t -> Link.t list
(** Trunks (forward link of each pair) whose removal disconnects the
    graph.  A trunk with a parallel twin between the same PSNs is never a
    bridge. *)

val articulation_points : Graph.t -> Node.t list
(** Nodes whose removal disconnects the remaining graph, in id order. *)

val diameter_hops : Graph.t -> int
(** Longest shortest path in hops; [max_int] if disconnected, 0 for
    single-node graphs. *)

val captive_traffic_fraction : Graph.t -> Traffic_matrix.t -> float
(** Fraction of offered traffic whose source/destination pair is separated
    by removing some single trunk — i.e. traffic that crosses a bridge and
    can never be routed around it. *)

val pp_report : Format.formatter -> Graph.t -> unit
(** Bridges, articulation points, diameter and degree summary. *)

(** ARPANET line types.

    §4.1 of the paper: "Each logical link between nodes is assigned a
    line-type based on the combined bandwidth of the trunks making up the
    link.  Up to eight different line-types are allowed."  The HNM keeps its
    parameter tables (slope, offset, bounds, movement limits) per line type,
    so the line type is the key piece of static link configuration.

    The catalogue below covers the configurations the paper discusses —
    9.6 kb/s and 56 kb/s, terrestrial and satellite — plus the multi-trunk
    variants the MILNET used. *)

type medium =
  | Terrestrial
  | Satellite  (** geosynchronous hop: ~250 ms one-way propagation *)

type t =
  | T9_6  (** 9.6 kb/s terrestrial *)
  | S9_6  (** 9.6 kb/s satellite *)
  | T56  (** 56 kb/s terrestrial — the ARPANET workhorse trunk *)
  | S56  (** 56 kb/s satellite *)
  | T112  (** dual 56 kb/s terrestrial trunks bundled into one logical link *)
  | S112  (** dual 56 kb/s satellite trunks *)
  | T224  (** quad 56 kb/s terrestrial trunk bundle *)
  | T448  (** eight-trunk 56 kb/s terrestrial bundle *)

val all : t list
(** The eight line types, in declaration order. *)

val index : t -> int
(** Stable 0-based index, usable for array-backed parameter tables. *)

val of_index : int -> t
(** Inverse of {!index}.  @raise Invalid_argument when out of range. *)

val medium : t -> medium

val is_satellite : t -> bool

val bandwidth_bps : t -> float
(** Combined bandwidth of all trunks of the logical link, in bits/second. *)

val trunk_count : t -> int

val default_propagation_s : t -> float
(** Propagation delay used when a topology does not configure one
    explicitly: 10 ms for terrestrial lines (mid-range continental hop),
    250 ms for satellite lines. *)

val name : t -> string

val of_name : string -> t option

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

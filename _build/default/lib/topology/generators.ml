module Rng = Routing_stats.Rng

let node_name prefix i = Printf.sprintf "%s%d" prefix i

let two_region ?(region_size = 8) ?(bridge_type = Line_type.T56) () =
  if region_size < 2 then invalid_arg "Generators.two_region: region_size < 2";
  let b = Builder.create () in
  let add_region prefix =
    (* Ring plus a diameter chord: connected with alternate paths inside
       the region, so intra-region routing never depends on the bridges. *)
    for i = 0 to region_size - 1 do
      let j = (i + 1) mod region_size in
      ignore (Builder.trunk b Line_type.T56 (node_name prefix i) (node_name prefix j))
    done;
    if region_size >= 4 then
      ignore
        (Builder.trunk b Line_type.T56 (node_name prefix 0)
           (node_name prefix (region_size / 2)))
  in
  add_region "L";
  add_region "R";
  let bridge_a, _ = Builder.trunk b bridge_type "L0" "R0" in
  let bridge_b, _ = Builder.trunk b bridge_type "L1" "R1" in
  (Builder.build b, (bridge_a, bridge_b))

let ring ?(line_type = Line_type.T56) n =
  if n < 3 then invalid_arg "Generators.ring: n < 3";
  let b = Builder.create () in
  for i = 0 to n - 1 do
    ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" ((i + 1) mod n)))
  done;
  Builder.build b

let ring_chord ?(line_type = Line_type.T56) rng ~nodes ~chords =
  if nodes < 3 then invalid_arg "Generators.ring_chord: nodes < 3";
  let b = Builder.create () in
  for i = 0 to nodes - 1 do
    ignore
      (Builder.trunk b line_type (node_name "n" i) (node_name "n" ((i + 1) mod nodes)))
  done;
  let exists = Hashtbl.create 16 in
  let rec add_chord remaining attempts =
    if remaining > 0 && attempts < chords * 50 then begin
      let i = Rng.int rng nodes in
      let j = Rng.int rng nodes in
      let lo = min i j and hi = max i j in
      let adjacent = hi - lo <= 1 || (lo = 0 && hi = nodes - 1) in
      if adjacent || Hashtbl.mem exists (lo, hi) then
        add_chord remaining (attempts + 1)
      else begin
        Hashtbl.add exists (lo, hi) ();
        ignore (Builder.trunk b line_type (node_name "n" lo) (node_name "n" hi));
        add_chord (remaining - 1) (attempts + 1)
      end
    end
  in
  add_chord chords 0;
  Builder.build b

let random_geometric ?(line_type = Line_type.T56) rng ~nodes ~radius =
  if nodes < 2 then invalid_arg "Generators.random_geometric: nodes < 2";
  let pos = Array.init nodes (fun _ -> (Rng.float rng 1., Rng.float rng 1.)) in
  let b = Builder.create () in
  for i = 0 to nodes - 1 do
    ignore (Builder.add_node b (node_name "n" i))
  done;
  let dist i j =
    let xi, yi = pos.(i) and xj, yj = pos.(j) in
    sqrt (((xi -. xj) ** 2.) +. ((yi -. yj) ** 2.))
  in
  (* Union-find to track components while adding radius edges. *)
  let parent = Array.init nodes Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j = parent.(find i) <- find j in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if dist i j <= radius then begin
        ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" j));
        union i j
      end
    done
  done;
  (* Stitch components: connect each component root to its nearest node in
     another component until one component remains. *)
  let rec stitch () =
    let roots = Hashtbl.create 8 in
    for i = 0 to nodes - 1 do
      Hashtbl.replace roots (find i) ()
    done;
    if Hashtbl.length roots > 1 then begin
      let r0 = find 0 in
      let best = ref None in
      for i = 0 to nodes - 1 do
        for j = 0 to nodes - 1 do
          if find i = r0 && find j <> r0 then
            match !best with
            | Some (_, _, d) when d <= dist i j -> ()
            | _ -> best := Some (i, j, dist i j)
        done
      done;
      match !best with
      | Some (i, j, _) ->
        ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" j));
        union i j;
        stitch ()
      | None -> ()
    end
  in
  stitch ();
  Builder.build b

let line ?(line_type = Line_type.T56) n =
  if n < 2 then invalid_arg "Generators.line: n < 2";
  let b = Builder.create () in
  for i = 0 to n - 2 do
    ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" (i + 1)))
  done;
  Builder.build b

let full_mesh ?(line_type = Line_type.T56) n =
  if n < 2 then invalid_arg "Generators.full_mesh: n < 2";
  let b = Builder.create () in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" j))
    done
  done;
  Builder.build b

module Rng = Routing_stats.Rng

let trunks : (string * string * Line_type.t * float option) list =
  let open Line_type in
  [
    (* CONUS backbone: multi-trunk bundles in a ladder. *)
    ("DCA1", "DCA2", T112, Some 0.001);
    ("DCA1", "PENT", T448, Some 0.001);
    ("PENT", "SCOTT", T224, Some 0.008);
    ("SCOTT", "OFFUTT", T112, Some 0.005);
    ("OFFUTT", "CHEYENNE", T112, Some 0.006);
    ("CHEYENNE", "MCCLELLAN", T224, Some 0.012);
    ("MCCLELLAN", "LANGLEY", T448, Some 0.028);
    ("LANGLEY", "DCA2", T112, Some 0.002);
    ("DCA2", "SCOTT", T112, Some 0.008);
    (* Regional 56k rings off the backbone *)
    ("PENT", "MEADE", T56, Some 0.001);
    ("MEADE", "DIX", T56, Some 0.002);
    ("DIX", "DEVENS", T56, Some 0.003);
    ("DEVENS", "DCA1", T56, Some 0.005);
    ("SCOTT", "LEAVENWORTH", T56, Some 0.003);
    ("LEAVENWORTH", "SILL", T56, Some 0.004);
    ("SILL", "BLISS", T56, Some 0.004);
    ("BLISS", "HUACHUCA", T56, Some 0.003);
    ("HUACHUCA", "MCCLELLAN", T56, Some 0.008);
    ("MCCLELLAN", "ORD", T56, Some 0.002);
    ("ORD", "LEWIS", T56, Some 0.010);
    ("LEWIS", "CHEYENNE", T56, Some 0.011);
    (* 9.6 tails *)
    ("MEADE", "RITCHIE", T9_6, Some 0.001);
    ("SILL", "POLK", T9_6, Some 0.004);
    ("ORD", "IRWIN", T9_6, Some 0.003);
    (* Satellite: Europe and Pacific theatres, plus a dual-trunk bundle. *)
    ("LANGLEY", "CROUGHTON", S112, None);
    ("DCA1", "RAMSTEIN", S56, None);
    ("CROUGHTON", "RAMSTEIN", T56, Some 0.008);
    ("RAMSTEIN", "VICENZA", T9_6, Some 0.008);
    ("MCCLELLAN", "HICKAM", S56, None);
    ("HICKAM", "CLARK", S56, None);
    ("CLARK", "YOKOTA", T56, Some 0.030);
    ("YOKOTA", "KOREA", S9_6, None);
  ]

let topology () =
  let b = Builder.create () in
  List.iter
    (fun (a, z, lt, prop) ->
      match prop with
      | Some propagation_s -> ignore (Builder.trunk b ~propagation_s lt a z)
      | None -> ignore (Builder.trunk b lt a z))
    trunks;
  let g = Builder.build b in
  assert (Graph.is_connected g);
  g

let peak_traffic rng g =
  let n = Graph.node_count g in
  let base = Traffic_matrix.gravity rng ~nodes:n ~total_bps:500_000. in
  let heavy a z bps =
    match (Graph.node_by_name g a, Graph.node_by_name g z) with
    | Some src, Some dst ->
      Traffic_matrix.add base ~src ~dst bps;
      Traffic_matrix.add base ~src:dst ~dst:src bps
    | _ -> ()
  in
  heavy "PENT" "MCCLELLAN" 30_000.;
  heavy "DCA1" "RAMSTEIN" 12_000.;
  heavy "MCCLELLAN" "HICKAM" 10_000.;
  base

let edge_color u =
  if u > 0.95 then "red"
  else if u > 0.7 then "orange"
  else "forestgreen"

let pen_width lt =
  match Line_type.bandwidth_bps lt with
  | bw when bw <= 9_600. -> 1.0
  | bw when bw <= 56_000. -> 1.8
  | bw when bw <= 112_000. -> 2.6
  | bw when bw <= 224_000. -> 3.4
  | _ -> 4.2

let to_dot ?(label = "") ?(utilization = fun _ -> None) g =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "graph network {\n";
  Buffer.add_string buffer "  overlap=false;\n  splines=true;\n";
  if String.length label > 0 then
    Buffer.add_string buffer (Printf.sprintf "  label=%S;\n" label);
  Buffer.add_string buffer
    "  node [shape=box, style=rounded, fontsize=9, height=0.2];\n";
  Graph.iter_nodes g (fun n ->
      Buffer.add_string buffer
        (Printf.sprintf "  %S;\n" (Graph.node_name g n)));
  Graph.iter_links g (fun (l : Link.t) ->
      if Link.id_compare l.Link.id l.Link.reverse < 0 then begin
        let style =
          if Line_type.is_satellite l.Link.line_type then ", style=dashed"
          else ""
        in
        let annotation =
          match utilization l with
          | Some u ->
            Printf.sprintf ", color=%s, tooltip=\"%.0f%%\", label=\"%.2f\""
              (edge_color u) (100. *. u) u
          | None -> ""
        in
        Buffer.add_string buffer
          (Printf.sprintf "  %S -- %S [penwidth=%.1f, fontsize=8%s%s];\n"
             (Graph.node_name g l.Link.src)
             (Graph.node_name g l.Link.dst)
             (pen_width l.Link.line_type)
             style annotation)
      end);
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer

let save path ?label ?utilization g =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_dot ?label ?utilization g))

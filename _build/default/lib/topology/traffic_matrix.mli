(** Node-to-node offered traffic, in bits/second.

    The paper's equilibrium model (§5) and the measurement study (§6) are
    both driven by a "peak hour traffic matrix"; this module holds that
    matrix and the generators that synthesize one for our ARPANET-like
    topology (the BBN matrix itself being unavailable — see DESIGN.md §2). *)

type t

val create : nodes:int -> t
(** All-zero matrix for a network of [nodes] nodes. *)

val nodes : t -> int

val get : t -> src:Node.t -> dst:Node.t -> float

val set : t -> src:Node.t -> dst:Node.t -> float -> unit
(** Diagonal entries are forced to zero (no self traffic). *)

val add : t -> src:Node.t -> dst:Node.t -> float -> unit

val scale : t -> float -> t
(** Fresh matrix with every demand multiplied by the factor. *)

val copy : t -> t

val total_bps : t -> float

val flow_count : t -> int
(** Number of nonzero demands. *)

val iter : t -> (src:Node.t -> dst:Node.t -> float -> unit) -> unit
(** Visits nonzero entries only. *)

val fold :
  t -> init:'a -> f:('a -> src:Node.t -> dst:Node.t -> float -> 'a) -> 'a

val offered_from : t -> Node.t -> float
(** Total traffic sourced at a node. *)

(** {2 Generators} *)

val uniform : nodes:int -> pair_bps:float -> t
(** Every ordered pair offers [pair_bps]. *)

val gravity : Routing_stats.Rng.t -> nodes:int -> total_bps:float -> t
(** Gravity model: each node gets a random mass (log-uniform over one decade)
    and demand src->dst is proportional to [mass src * mass dst].  Produces
    the "several small node-to-node flows" regime where the paper says
    single-path routing works best (§4.5). *)

val hotspot :
  Routing_stats.Rng.t ->
  nodes:int ->
  background_bps:float ->
  hotspots:(Node.t * Node.t * float) list ->
  t
(** Uniform background plus explicit heavy flows — the "several large flows"
    regime used to probe HN-SPF's limits. *)

val pp_summary : Format.formatter -> t -> unit

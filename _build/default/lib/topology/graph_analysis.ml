(* Tarjan's low-link computation over the undirected trunk structure.
   Parallel trunks between the same endpoints are distinct edges, so a
   doubled trunk is correctly not a bridge. *)

type dfs_state = {
  mutable timer : int;
  disc : int array; (* discovery time, -1 = unvisited *)
  low : int array;
  graph : Graph.t;
}

(* Undirected edges: one representative (the lower-id simplex link) per
   trunk.  DFS walks both directions but must not reuse the same physical
   trunk edge it arrived on (while allowing a parallel twin). *)
let edge_id (l : Link.t) = min (Link.id_to_int l.Link.id) (Link.id_to_int l.Link.reverse)

let dfs_low_links g =
  let n = Graph.node_count g in
  let state =
    { timer = 0; disc = Array.make n (-1); low = Array.make n max_int; graph = g }
  in
  let bridges = ref [] in
  let articulation = Array.make n false in
  let rec visit node ~via_edge ~is_root =
    let i = Node.to_int node in
    state.disc.(i) <- state.timer;
    state.low.(i) <- state.timer;
    state.timer <- state.timer + 1;
    let children = ref 0 in
    List.iter
      (fun (l : Link.t) ->
        let j = Node.to_int l.Link.dst in
        if edge_id l <> via_edge then begin
          if state.disc.(j) < 0 then begin
            incr children;
            visit l.Link.dst ~via_edge:(edge_id l) ~is_root:false;
            state.low.(i) <- min state.low.(i) state.low.(j);
            if (not is_root) && state.low.(j) >= state.disc.(i) then
              articulation.(i) <- true;
            if state.low.(j) > state.disc.(i) then
              bridges := Graph.link g (Link.id_of_int (edge_id l)) :: !bridges
          end
          else state.low.(i) <- min state.low.(i) state.disc.(j)
        end)
      (Graph.out_links g node);
    if is_root && !children > 1 then articulation.(i) <- true
  in
  Graph.iter_nodes g (fun node ->
      if state.disc.(Node.to_int node) < 0 then
        visit node ~via_edge:(-1) ~is_root:true);
  (List.rev !bridges, articulation)

let bridges g = fst (dfs_low_links g)

let articulation_points g =
  let _, articulation = dfs_low_links g in
  let points = ref [] in
  for i = Array.length articulation - 1 downto 0 do
    if articulation.(i) then points := Node.of_int i :: !points
  done;
  !points

let diameter_hops g =
  let n = Graph.node_count g in
  if n <= 1 then 0
  else begin
    let worst = ref 0 in
    Graph.iter_nodes g (fun src ->
        (* BFS in hops. *)
        let dist = Array.make n (-1) in
        let queue = Queue.create () in
        dist.(Node.to_int src) <- 0;
        Queue.add src queue;
        while not (Queue.is_empty queue) do
          let node = Queue.pop queue in
          List.iter
            (fun (l : Link.t) ->
              let j = Node.to_int l.Link.dst in
              if dist.(j) < 0 then begin
                dist.(j) <- dist.(Node.to_int node) + 1;
                Queue.add l.Link.dst queue
              end)
            (Graph.out_links g node)
        done;
        Array.iter
          (fun d -> if d < 0 then worst := max_int else worst := max !worst d)
          dist);
    !worst
  end

let captive_traffic_fraction g tm =
  let cut_trunks = bridges g in
  let total = Traffic_matrix.total_bps tm in
  if total <= 0. then 0.
  else begin
    let n = Graph.node_count g in
    (* For each bridge, find the node set on the far side and sum the
       demand crossing; each pair crosses at most... a pair may cross
       several bridges, so mark pairs captive once. *)
    let captive = Hashtbl.create 64 in
    List.iter
      (fun (bridge : Link.t) ->
        let blocked lid =
          not
            (Link.id_equal lid bridge.Link.id
            || Link.id_equal lid bridge.Link.reverse)
        in
        (* Reachability from the bridge's src without the bridge. *)
        let reachable = Array.make n false in
        let queue = Queue.create () in
        reachable.(Node.to_int bridge.Link.src) <- true;
        Queue.add bridge.Link.src queue;
        while not (Queue.is_empty queue) do
          let node = Queue.pop queue in
          List.iter
            (fun (l : Link.t) ->
              if blocked l.Link.id then begin
                let j = Node.to_int l.Link.dst in
                if not reachable.(j) then begin
                  reachable.(j) <- true;
                  Queue.add l.Link.dst queue
                end
              end)
            (Graph.out_links g node)
        done;
        Traffic_matrix.iter tm (fun ~src ~dst _ ->
            if reachable.(Node.to_int src) <> reachable.(Node.to_int dst) then
              Hashtbl.replace captive (Node.to_int src, Node.to_int dst) ()))
      cut_trunks;
    let sum =
      Hashtbl.fold
        (fun (s, d) () acc ->
          acc
          +. Traffic_matrix.get tm ~src:(Node.of_int s) ~dst:(Node.of_int d))
        captive 0.
    in
    sum /. total
  end

let pp_report ppf g =
  let cut_trunks = bridges g in
  let points = articulation_points g in
  Format.fprintf ppf
    "@[<v>%a@,diameter: %d hops@,bridge trunks: %d of %d@,articulation PSNs: %s@]"
    Graph.pp_summary g (diameter_hops g) (List.length cut_trunks)
    (Graph.link_count g / 2)
    (match points with
    | [] -> "none"
    | _ -> String.concat " " (List.map (Graph.node_name g) points))

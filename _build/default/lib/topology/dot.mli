(** Graphviz DOT export for topologies.

    Renders the network as an undirected graph (one edge per trunk) with
    line-type styling and optional per-trunk annotations — typically the
    utilization measured by a simulator, colored green/orange/red.  Feed
    the output to [dot -Tsvg] or [neato -Tpng]. *)

val to_dot :
  ?label:string ->
  ?utilization:(Link.t -> float option) ->
  Graph.t ->
  string
(** [utilization] (per forward link of each trunk pair; [None] = no
    annotation) sets each edge's color and tooltip: green below 70 %,
    orange to 95 %, red above.  Satellite trunks render dashed; line speed
    sets pen width. *)

val save : string -> ?label:string -> ?utilization:(Link.t -> float option)
  -> Graph.t -> unit
(** Write to a file.  @raise Sys_error on I/O failure. *)

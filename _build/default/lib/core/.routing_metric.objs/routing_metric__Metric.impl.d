lib/core/metric.ml: Array Dspf Graph Hnm Hnm_params Import Link Queueing Significance

lib/core/dspf.mli: Import Line_type Link

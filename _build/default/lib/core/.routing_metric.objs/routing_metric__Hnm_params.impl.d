lib/core/hnm_params.ml: Array Format Import Line_type Link List

lib/core/metric.mli: Graph Hnm Import Link

lib/core/significance.ml: Float Hnm_params Import Units

lib/core/legacy.mli: Import Line_type

lib/core/legacy.ml: Float Import Queueing Units

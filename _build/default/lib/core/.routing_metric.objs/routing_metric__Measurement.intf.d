lib/core/measurement.mli: Import Link

lib/core/hnm.ml: Filter Float Hnm_params Import Link Queueing

lib/core/units.ml: Float Import

lib/core/queueing.ml: Float Import Line_type Link Units

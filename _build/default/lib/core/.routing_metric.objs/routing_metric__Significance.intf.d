lib/core/significance.mli: Import Line_type

lib/core/dspf.ml: Float Import Link Queueing Units

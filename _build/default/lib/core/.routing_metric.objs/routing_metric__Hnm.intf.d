lib/core/hnm.mli: Hnm_params Import Line_type Link

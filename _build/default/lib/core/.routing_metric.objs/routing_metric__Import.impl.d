lib/core/import.ml: Routing_stats Routing_topology

lib/core/hnm_params.mli: Format Import Line_type Link

lib/core/units.mli: Import

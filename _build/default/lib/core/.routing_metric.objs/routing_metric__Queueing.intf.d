lib/core/queueing.mli: Import Line_type Link

lib/core/measurement.ml: Import Link Units

open! Import

(** Update-generation policy: when is a cost change worth flooding?

    §2.2: a routing update is generated when the newly measured cost
    differs from the last reported value by more than a significance
    threshold; "the significance criterion gets adjusted downward each time
    it is not satisfied … the maximum time between routing updates for each
    PSN is 50 seconds".

    D-SPF uses the decaying threshold.  The HNM replaces it with a fixed
    threshold of a little less than a half-hop (§4.3), still backed by the
    50-second reliability flood. *)

type policy =
  | Decaying of { initial : float; step : float }
      (** flood when |Δcost| ≥ threshold; otherwise lower the threshold by
          [step] and try again next period *)
  | Fixed of int  (** flood when |Δcost| ≥ the constant *)

val dspf_policy : policy
(** The historical decaying criterion: 6.4 units (64 ms) decaying in five
    10-second steps to zero, matching the 50-second bound. *)

val hnm_policy : Line_type.t -> policy
(** [Fixed min_change] from the line type's {!Hnm_params.t}. *)

type t

val create : policy -> initial_cost:int -> t
(** [initial_cost] is the value the rest of the network is assumed to hold
    for this link before any update. *)

val last_flooded : t -> int

val periods_since_flood : t -> int

val consider : t -> cost:int -> bool
(** Call exactly once per routing period with the newly computed cost.
    Returns [true] when an update must be flooded (significant change, or
    the 50-second reliability timer expired); updates internal state
    accordingly. *)

val force : t -> cost:int -> unit
(** Record an out-of-band flood (e.g. a link-up announcement). *)

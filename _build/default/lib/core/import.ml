(* Substrate aliases opened by every module in this library. *)

module Node = Routing_topology.Node
module Line_type = Routing_topology.Line_type
module Link = Routing_topology.Link
module Graph = Routing_topology.Graph
module Filter = Routing_stats.Filter

open! Import

type t = {
  link : Link.t;
  mutable sum_s : float;
  mutable packets : int;
}

let create link = { link; sum_s = 0.; packets = 0 }

let link t = t.link

let record_packet t ~delay_s =
  t.sum_s <- t.sum_s +. delay_s;
  t.packets <- t.packets + 1

let packet_count t = t.packets

let idle_delay_s t =
  Link.transmission_s t.link ~bits:Units.average_packet_bits
  +. t.link.Link.propagation_s

let peek_average t =
  if t.packets = 0 then idle_delay_s t
  else t.sum_s /. float_of_int t.packets

let finish_period t =
  let avg = peek_average t in
  t.sum_s <- 0.;
  t.packets <- 0;
  avg

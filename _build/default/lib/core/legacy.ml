open! Import

let constant = 4

let cost_of_queue ~queue_length =
  if queue_length < 0 then invalid_arg "Legacy.cost_of_queue: negative queue";
  min Units.max_cost (queue_length + constant)

let cost_of_utilization lt ~utilization =
  let q = Queueing.queue_length lt ~utilization in
  cost_of_queue ~queue_length:(int_of_float (Float.round q))

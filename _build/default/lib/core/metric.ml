open! Import

type kind = Min_hop | Static_capacity | D_spf | Hn_spf

let kind_name = function
  | Min_hop -> "min-hop"
  | Static_capacity -> "static-capacity"
  | D_spf -> "D-SPF"
  | Hn_spf -> "HN-SPF"

let kind_of_name = function
  | "min-hop" | "minhop" -> Some Min_hop
  | "static-capacity" | "static" | "ospf" -> Some Static_capacity
  | "D-SPF" | "dspf" | "d-spf" -> Some D_spf
  | "HN-SPF" | "hnspf" | "hn-spf" -> Some Hn_spf
  | _ -> None

type link_state =
  | Static
  | Static_cost of int
  | Delay of Dspf.t * Significance.t
  | Hop_normalized of Hnm.t * Significance.t

type t = {
  kind : kind;
  graph : Graph.t;
  hnm_config : Link.t -> Hnm.config;  (* used by Hn_spf states *)
  states : link_state array;
  flooded : int array;  (* what the network believes, per link *)
  mutable updates : int;
}

let hnm_significance config h =
  Significance.create
    (Significance.Fixed config.Hnm.params.Hnm_params.min_change)
    ~initial_cost:(Hnm.current_cost h)

let make_state kind hnm_config link =
  match kind with
  | Min_hop -> Static
  | Static_capacity -> Static_cost (Hnm_params.min_cost link)
  | D_spf ->
    let d = Dspf.create link in
    Delay (d, Significance.create Significance.dspf_policy
             ~initial_cost:(Dspf.current_cost d))
  | Hn_spf ->
    let config = hnm_config link in
    let h = Hnm.create_custom config link in
    Hop_normalized (h, hnm_significance config h)

let initial_cost = function
  | Static -> 1
  | Static_cost c -> c
  | Delay (d, _) -> Dspf.current_cost d
  | Hop_normalized (h, _) -> Hnm.current_cost h

let create_custom_hnspf hnm_config graph =
  let states =
    Array.init (Graph.link_count graph) (fun i ->
        make_state Hn_spf hnm_config (Graph.link graph (Link.id_of_int i)))
  in
  { kind = Hn_spf;
    graph;
    hnm_config;
    states;
    flooded = Array.map initial_cost states;
    updates = 0 }

let create kind graph =
  let hnm_config (link : Link.t) = Hnm.default_config link.Link.line_type in
  let states =
    Array.init (Graph.link_count graph) (fun i ->
        make_state kind hnm_config (Graph.link graph (Link.id_of_int i)))
  in
  { kind;
    graph;
    hnm_config;
    states;
    flooded = Array.map initial_cost states;
    updates = 0 }

let kind t = t.kind

let graph t = t.graph

let cost t lid = t.flooded.(Link.id_to_int lid)

let local_cost t lid =
  match t.states.(Link.id_to_int lid) with
  | Static -> 1
  | Static_cost c -> c
  | Delay (d, _) -> Dspf.current_cost d
  | Hop_normalized (h, _) -> Hnm.current_cost h

let cost_fn t lid = cost t lid

let flood t lid c =
  t.flooded.(Link.id_to_int lid) <- c;
  t.updates <- t.updates + 1

let period_update t lid ~measured_delay_s =
  match t.states.(Link.id_to_int lid) with
  | Static | Static_cost _ -> None
  | Delay (d, sig_state) ->
    let c = Dspf.period_update d ~measured_delay_s in
    if Significance.consider sig_state ~cost:c then begin
      flood t lid c;
      Some c
    end
    else None
  | Hop_normalized (h, sig_state) ->
    let c = Hnm.period_update h ~measured_delay_s in
    if Significance.consider sig_state ~cost:c then begin
      flood t lid c;
      Some c
    end
    else None

let period_update_utilization t lid ~utilization =
  let link = Graph.link t.graph lid in
  period_update t lid ~measured_delay_s:(Queueing.delay_s link ~utilization)

let link_up t lid =
  let link = Graph.link t.graph lid in
  let i = Link.id_to_int lid in
  (match t.kind with
  | Min_hop -> ()
  | Static_capacity ->
    flood t lid t.flooded.(i) (* cost unchanged; announce reachability *)
  | D_spf ->
    let d = Dspf.create link in
    let c = Dspf.current_cost d in
    let s = Significance.create Significance.dspf_policy ~initial_cost:c in
    t.states.(i) <- Delay (d, s);
    flood t lid c
  | Hn_spf ->
    let config = t.hnm_config link in
    let h = Hnm.create_custom_easing_in config link in
    let c = Hnm.current_cost h in
    t.states.(i) <- Hop_normalized (h, hnm_significance config h);
    flood t lid c)

let updates_flooded t = t.updates

let reset_update_counter t = t.updates <- 0

let idle_cost kind link =
  match kind with
  | Min_hop -> 1
  | Static_capacity -> Hnm_params.min_cost link
  | D_spf -> Dspf.current_cost (Dspf.create link)
  | Hn_spf -> Hnm.current_cost (Hnm.create link)

let equilibrium_cost kind link ~utilization =
  match kind with
  | Min_hop -> 1
  | Static_capacity -> Hnm_params.min_cost link
  | D_spf -> Dspf.cost_of_utilization link ~utilization
  | Hn_spf -> Hnm.cost_of_utilization link ~utilization

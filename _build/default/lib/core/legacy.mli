open! Import

(** The original 1969 link metric: instantaneous queue length plus a fixed
    constant (§2.1).

    "The link metric … was simply the instantaneous queue length at the
    moment of updating plus a fixed constant."  It was an instantaneous
    sample, not an average — "a poor indicator of expected delay" — and is
    implemented here so the Bellman-Ford substrate can reproduce the
    original algorithm's volatility. *)

val constant : int
(** The stabilizing additive constant (4): "the positive constant added to
    the metric helped to alleviate" routing oscillations. *)

val cost_of_queue : queue_length:int -> int
(** [queue_length + constant], capped at {!Units.max_cost}. *)

val cost_of_utilization : Line_type.t -> utilization:float -> int
(** Analytic variant for flow-level studies: expected M/M/1 queue length at
    the utilization, plus the constant. *)

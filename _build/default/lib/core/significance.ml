open! Import

type policy = Decaying of { initial : float; step : float } | Fixed of int

let dspf_policy = Decaying { initial = 6.4; step = 1.28 }

let hnm_policy lt =
  Fixed (Hnm_params.for_line_type lt).Hnm_params.min_change

type t = {
  policy : policy;
  mutable last_flooded : int;
  mutable periods : int;  (* periods since last flood *)
  mutable threshold : float;  (* current decaying threshold *)
}

let initial_threshold = function
  | Decaying { initial; _ } -> initial
  | Fixed k -> float_of_int k

let create policy ~initial_cost =
  { policy;
    last_flooded = initial_cost;
    periods = 0;
    threshold = initial_threshold policy }

let last_flooded t = t.last_flooded

let periods_since_flood t = t.periods

let max_quiet_periods =
  int_of_float (Units.max_update_interval_s /. Units.routing_period_s)

let consider t ~cost =
  t.periods <- t.periods + 1;
  let delta = abs (cost - t.last_flooded) in
  let significant = float_of_int delta >= t.threshold in
  let timer_expired = t.periods >= max_quiet_periods in
  if significant || timer_expired then begin
    t.last_flooded <- cost;
    t.periods <- 0;
    t.threshold <- initial_threshold t.policy;
    true
  end
  else begin
    (match t.policy with
    | Decaying { step; _ } -> t.threshold <- Float.max 0. (t.threshold -. step)
    | Fixed _ -> ());
    false
  end

let force t ~cost =
  t.last_flooded <- cost;
  t.periods <- 0;
  t.threshold <- initial_threshold t.policy

open! Import

(** The per-link 10-second delay measurement.

    "For every packet the PSN receives and forwards, it measures queueing
    and processing delay to which it adds tabled values of transmission and
    propagation delay.  For each of its outgoing links, it averages this
    total delay over a ten-second period" (§2.2).

    A [t] accumulates per-packet delays for one link; at the end of each
    routing period the PSN reads the average and restarts the window.  An
    idle period reports the link's intrinsic delay (transmission of an
    average packet plus propagation) — an idle line never reports zero. *)

type t

val create : Link.t -> t

val link : t -> Link.t

val record_packet : t -> delay_s:float -> unit
(** Fold in one forwarded packet's total delay (queueing + transmission +
    propagation). *)

val packet_count : t -> int
(** Packets recorded in the current window. *)

val idle_delay_s : t -> float
(** What an empty window reports: average-packet transmission plus
    propagation. *)

val finish_period : t -> float
(** Average delay over the window just ended (seconds), and reset for the
    next window. *)

val peek_average : t -> float
(** Current window average without resetting. *)

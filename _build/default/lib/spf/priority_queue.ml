open! Import

type ('p, 'a) t = {
  compare : 'p -> 'p -> int;
  mutable heap : ('p * 'a) array;
  mutable len : int;
}

let create ~compare = { compare; heap = [||]; len = 0 }

let is_empty t = t.len = 0

let length t = t.len

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let less t i j = t.compare (fst t.heap.(i)) (fst t.heap.(j)) < 0

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.len && less t left !smallest then smallest := left;
  if right < t.len && less t right !smallest then smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t p v =
  if t.len = Array.length t.heap then begin
    let cap = max 16 (2 * t.len) in
    let heap = Array.make cap (p, v) in
    Array.blit t.heap 0 heap 0 t.len;
    t.heap <- heap
  end;
  t.heap.(t.len) <- (p, v);
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_min t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      sift_down t 0
    end;
    Some top
  end

let peek_min t = if t.len = 0 then None else Some t.heap.(0)

let clear t = t.len <- 0

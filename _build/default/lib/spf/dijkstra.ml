open! Import

type tie_break = [ `Neutral | `Favor of Link.id | `Avoid of Link.id ]

let max_link_cost = 254

(* Composite edge weights encode lexicographic comparison of
   (path cost, probe-link preference, hop count) in a single positive
   integer, keeping plain Dijkstra applicable:

     w(l) = (cost(l) * cost_scale + probe_adjust(l)) * hop_scale + 1

   probe_adjust is -1 on the probed link under [`Favor] (an infinitesimal
   discount: among equal-cost paths, ones using the link win), +1 under
   [`Avoid].  The +1 per edge makes hop count the final tie-break.  With
   cost <= 254 and paths < 256 hops the sums stay far below max_int. *)
let hop_scale = 256

let cost_scale = 1024

let edge_weight ~tie_break ~cost lid =
  let c = cost lid in
  if c < 1 || c > max_link_cost then
    invalid_arg
      (Printf.sprintf "Dijkstra: link cost %d outside [1, %d]" c max_link_cost);
  let adjust =
    match tie_break with
    | `Neutral -> 0
    | `Favor probe -> if Link.id_equal probe lid then -1 else 0
    | `Avoid probe -> if Link.id_equal probe lid then 1 else 0
  in
  (((c * cost_scale) + adjust) * hop_scale) + 1

let compute ?(tie_break = `Neutral) ?(enabled = fun _ -> true) g ~cost root =
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  let parent = Array.make n None in
  let settled = Array.make n false in
  let compare (wa, la) (wb, lb) =
    match Int.compare wa wb with 0 -> Int.compare la lb | c -> c
  in
  let heap = Priority_queue.create ~compare in
  let ri = Node.to_int root in
  dist.(ri) <- 0;
  Priority_queue.push heap (0, -1) root;
  let rec run () =
    match Priority_queue.pop_min heap with
    | None -> ()
    | Some ((w, _), node) ->
      let i = Node.to_int node in
      if not settled.(i) then begin
        settled.(i) <- true;
        List.iter
          (fun (l : Link.t) ->
            let j = Node.to_int l.dst in
            if enabled l.id && not settled.(j) then begin
              let w' = w + edge_weight ~tie_break ~cost l.id in
              if w' < dist.(j) then begin
                dist.(j) <- w';
                parent.(j) <- Some l.id;
                Priority_queue.push heap (w', Link.id_to_int l.id) l.dst
              end
              else if w' = dist.(j) then begin
                (* Fully tied: keep the lower arriving link id so the tree
                   is independent of heap internals. *)
                match parent.(j) with
                | Some p when Link.id_compare l.id p < 0 ->
                  parent.(j) <- Some l.id;
                  Priority_queue.push heap (w', Link.id_to_int l.id) l.dst
                | _ -> ()
              end
            end)
          (Graph.out_links g node)
      end;
      run ()
  in
  run ();
  (* Decode composite weights back into routing units and hop counts. *)
  let units = Array.make n max_int in
  let hops = Array.make n max_int in
  for i = 0 to n - 1 do
    if dist.(i) <> max_int then begin
      hops.(i) <- dist.(i) mod hop_scale;
      units.(i) <-
        (dist.(i) / hop_scale / cost_scale)
        + (if (dist.(i) / hop_scale) mod cost_scale > cost_scale / 2 then 1 else 0)
    end
  done;
  Spf_tree.make ~graph:g ~root ~parent ~dist:units ~hops

let all_pairs ?tie_break ?enabled g ~cost =
  Array.init (Graph.node_count g) (fun i ->
      compute ?tie_break ?enabled g ~cost (Node.of_int i))

let min_hop_tree ?enabled g root = compute ?enabled g ~cost:(fun _ -> 1) root

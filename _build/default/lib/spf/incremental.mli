open! Import

(** Incremental SPF.

    The PSN "attempts to perform only incremental adjustments necessitated
    by a link cost change, e.g., if a routing update reports an increase in
    the cost for a link not in the tree, the algorithm does not recompute
    any part of the tree" (§2.2).  A [t] owns a mutable cost table and a
    shortest-path tree it keeps consistent under single-link cost updates:

    - increase on a non-tree link: nothing to do;
    - increase on a tree link: only the subtree hanging below it is
      re-attached, seeding Dijkstra from the unaffected frontier;
    - decrease: relaxations propagate only through nodes that actually
      improve.

    The maintained tree is always *a* valid shortest-path tree (distances
    equal to a full recomputation; among equal-cost parents the incremental
    algorithm may keep its current choice where a fresh {!Dijkstra.compute}
    would pick another). *)

type t

type stats = {
  full_recomputes : int;  (** times the whole tree was rebuilt *)
  nodes_touched : int;  (** nodes whose distance was re-derived *)
  updates_ignored : int;  (** cost changes proven not to affect the tree *)
}

val create : Graph.t -> root:Node.t -> initial_cost:(Link.id -> int) -> t

val tree : t -> Spf_tree.t
(** A snapshot of the current tree (cheap: arrays are copied). *)

val cost : t -> Link.id -> int

val set_cost : t -> Link.id -> int -> unit
(** Update one link's cost and repair the tree.
    @raise Invalid_argument if the cost is outside
    [\[1, Dijkstra.max_link_cost\]]. *)

val stats : t -> stats

val dist : t -> Node.t -> int
(** Current distance in routing units ([max_int] if unreachable). *)

val next_hop_array : t -> Link.id option array
(** Per-destination first link out of the root (indexed by node id;
    [None] for the root and unreachable nodes) — ready for
    {!Routing_table.of_next_hops}.  O(nodes) via memoized parent
    climbing. *)

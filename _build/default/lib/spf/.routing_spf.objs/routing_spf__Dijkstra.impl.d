lib/spf/dijkstra.ml: Array Graph Import Int Link List Node Printf Priority_queue Spf_tree

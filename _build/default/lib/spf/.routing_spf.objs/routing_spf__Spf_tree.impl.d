lib/spf/spf_tree.ml: Array Graph Import Link List Node Option

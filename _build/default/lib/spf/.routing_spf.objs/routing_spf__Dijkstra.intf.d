lib/spf/dijkstra.mli: Graph Import Link Node Spf_tree

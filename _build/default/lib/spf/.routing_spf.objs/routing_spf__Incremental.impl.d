lib/spf/incremental.ml: Array Dijkstra Graph Import Int Link List Node Option Printf Priority_queue Spf_tree

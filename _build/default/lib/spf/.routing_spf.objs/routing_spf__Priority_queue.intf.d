lib/spf/priority_queue.mli: Import

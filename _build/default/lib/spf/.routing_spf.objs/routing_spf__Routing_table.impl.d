lib/spf/routing_table.ml: Array Format Graph Import Link List Node Option Spf_tree String

lib/spf/priority_queue.ml: Array Import

lib/spf/import.ml: Routing_topology

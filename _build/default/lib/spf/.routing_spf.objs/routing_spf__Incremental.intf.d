lib/spf/incremental.mli: Graph Import Link Node Spf_tree

lib/spf/spf_tree.mli: Graph Import Link Node

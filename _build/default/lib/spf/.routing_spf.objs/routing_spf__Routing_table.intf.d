lib/spf/routing_table.mli: Format Graph Import Link Node Spf_tree

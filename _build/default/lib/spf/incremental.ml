open! Import

type stats = {
  full_recomputes : int;
  nodes_touched : int;
  updates_ignored : int;
}

type t = {
  graph : Graph.t;
  root : Node.t;
  costs : int array; (* per link id, routing units *)
  dist : int array; (* per node, composite units: cost only (no tie terms) *)
  parent : Link.id option array;
  mutable full_recomputes : int;
  mutable nodes_touched : int;
  mutable updates_ignored : int;
}

(* The incremental structure tracks plain routing-unit distances; the
   deterministic tie-break refinements of Dijkstra.compute are a property of
   full recomputation only. *)

let check_cost c =
  if c < 1 || c > Dijkstra.max_link_cost then
    invalid_arg (Printf.sprintf "Incremental: link cost %d out of range" c)

let full_rebuild t =
  let tree = Dijkstra.compute t.graph ~cost:(fun l -> t.costs.(Link.id_to_int l)) t.root in
  Graph.iter_nodes t.graph (fun n ->
      let i = Node.to_int n in
      t.dist.(i) <- Spf_tree.dist tree n;
      t.parent.(i) <-
        Option.map (fun (l : Link.t) -> l.Link.id) (Spf_tree.parent_link tree n));
  t.full_recomputes <- t.full_recomputes + 1;
  t.nodes_touched <- t.nodes_touched + Graph.node_count t.graph

let create graph ~root ~initial_cost =
  let n = Graph.node_count graph in
  let costs =
    Array.init (Graph.link_count graph) (fun i ->
        let c = initial_cost (Link.id_of_int i) in
        check_cost c;
        c)
  in
  let t =
    { graph;
      root;
      costs;
      dist = Array.make n max_int;
      parent = Array.make n None;
      full_recomputes = -1 (* the constructor's rebuild is not an update *);
      nodes_touched = -n;
      updates_ignored = 0 }
  in
  full_rebuild t;
  t

let cost t lid = t.costs.(Link.id_to_int lid)

let dist t n = t.dist.(Node.to_int n)

let tree t =
  Spf_tree.make ~graph:t.graph ~root:t.root ~parent:(Array.copy t.parent)
    ~dist:(Array.copy t.dist)
    ~hops:
      (let hops = Array.make (Graph.node_count t.graph) max_int in
       let rec hop_of i =
         if hops.(i) <> max_int then hops.(i)
         else
           match t.parent.(i) with
           | None -> if i = Node.to_int t.root && t.dist.(i) = 0 then 0 else max_int
           | Some lid ->
             let l = Graph.link t.graph lid in
             let h = hop_of (Node.to_int l.Link.src) in
             let h = if h = max_int then max_int else h + 1 in
             hops.(i) <- h;
             h
       in
       Graph.iter_nodes t.graph (fun n -> ignore (hop_of (Node.to_int n)));
       hops)

let next_hop_array t =
  let n = Graph.node_count t.graph in
  let root = Node.to_int t.root in
  (* memo.(i): the first link on root's path to i (None = unknown yet or
     none). *)
  let memo = Array.make n None in
  let resolved = Array.make n false in
  resolved.(root) <- true;
  let rec resolve i =
    if resolved.(i) then memo.(i)
    else begin
      let answer =
        match t.parent.(i) with
        | None -> None
        | Some lid ->
          let src = Node.to_int (Graph.link t.graph lid).Link.src in
          if src = root then Some lid else resolve src
      in
      memo.(i) <- answer;
      resolved.(i) <- true;
      answer
    end
  in
  for i = 0 to n - 1 do
    ignore (resolve i)
  done;
  memo

let stats t =
  { full_recomputes = t.full_recomputes;
    nodes_touched = t.nodes_touched;
    updates_ignored = t.updates_ignored }

(* Collect the set of nodes whose current tree path traverses [lid]:
   the subtree hanging below the link's destination, provided the link is
   the destination's parent. *)
let affected_subtree t lid =
  let l = Graph.link t.graph lid in
  let head = Node.to_int l.Link.dst in
  match t.parent.(head) with
  | Some p when Link.id_equal p lid ->
    let n = Graph.node_count t.graph in
    let in_subtree = Array.make n false in
    in_subtree.(head) <- true;
    (* A node is in the subtree iff following parents reaches [head]. *)
    let rec reaches i visiting =
      if in_subtree.(i) then true
      else if List.mem i visiting then false
      else
        match t.parent.(i) with
        | None -> false
        | Some plid ->
          let src = Node.to_int (Graph.link t.graph plid).Link.src in
          let r = reaches src (i :: visiting) in
          if r then in_subtree.(i) <- true;
          r
    in
    for i = 0 to n - 1 do
      if t.dist.(i) <> max_int then ignore (reaches i [])
    done;
    Some in_subtree
  | _ -> None

(* Re-derive distances for the nodes marked in [affected], seeding the heap
   from links that cross the unaffected -> affected frontier. *)
let reattach t affected =
  let n = Graph.node_count t.graph in
  let compare = Int.compare in
  let heap = Priority_queue.create ~compare in
  for i = 0 to n - 1 do
    if affected.(i) then begin
      t.dist.(i) <- max_int;
      t.parent.(i) <- None
    end
  done;
  for i = 0 to n - 1 do
    if not affected.(i) && t.dist.(i) <> max_int then
      List.iter
        (fun (l : Link.t) ->
          let j = Node.to_int l.Link.dst in
          if affected.(j) then begin
            let d = t.dist.(i) + t.costs.(Link.id_to_int l.Link.id) in
            if d < t.dist.(j) then begin
              t.dist.(j) <- d;
              t.parent.(j) <- Some l.Link.id;
              Priority_queue.push heap d l.Link.dst
            end
          end)
        (Graph.out_links t.graph (Node.of_int i))
  done;
  let settled = Array.make n false in
  let rec run () =
    match Priority_queue.pop_min heap with
    | None -> ()
    | Some (d, node) ->
      let i = Node.to_int node in
      if (not settled.(i)) && d = t.dist.(i) then begin
        settled.(i) <- true;
        t.nodes_touched <- t.nodes_touched + 1;
        List.iter
          (fun (l : Link.t) ->
            let j = Node.to_int l.Link.dst in
            if affected.(j) && not settled.(j) then begin
              let d' = d + t.costs.(Link.id_to_int l.Link.id) in
              if d' < t.dist.(j) then begin
                t.dist.(j) <- d';
                t.parent.(j) <- Some l.Link.id;
                Priority_queue.push heap d' l.Link.dst
              end
            end)
          (Graph.out_links t.graph node)
      end;
      run ()
  in
  run ()

(* Propagate a strict improvement starting at the head of the cheapened
   link; only nodes that actually improve are touched. *)
let propagate_decrease t start =
  let heap = Priority_queue.create ~compare:Int.compare in
  Priority_queue.push heap t.dist.(Node.to_int start) start;
  let rec run () =
    match Priority_queue.pop_min heap with
    | None -> ()
    | Some (d, node) ->
      if d = t.dist.(Node.to_int node) then begin
        t.nodes_touched <- t.nodes_touched + 1;
        List.iter
          (fun (l : Link.t) ->
            let j = Node.to_int l.Link.dst in
            let d' = d + t.costs.(Link.id_to_int l.Link.id) in
            if d' < t.dist.(j) then begin
              t.dist.(j) <- d';
              t.parent.(j) <- Some l.Link.id;
              Priority_queue.push heap d' l.Link.dst
            end)
          (Graph.out_links t.graph node)
      end;
      run ()
  in
  run ()

let set_cost t lid c =
  check_cost c;
  let i = Link.id_to_int lid in
  let old = t.costs.(i) in
  if c = old then t.updates_ignored <- t.updates_ignored + 1
  else begin
    t.costs.(i) <- c;
    let l = Graph.link t.graph lid in
    let u = Node.to_int l.Link.src and v = Node.to_int l.Link.dst in
    if c > old then begin
      match affected_subtree t lid with
      | None ->
        (* Increase on a link carrying no tree paths: provably no effect. *)
        t.updates_ignored <- t.updates_ignored + 1
      | Some affected -> reattach t affected
    end
    else begin
      (* Decrease: only matters if the link now offers a shorter way in. *)
      if t.dist.(u) <> max_int && t.dist.(u) + c < t.dist.(v) then begin
        t.dist.(v) <- t.dist.(u) + c;
        t.parent.(v) <- Some lid;
        propagate_decrease t l.Link.dst
      end
      else t.updates_ignored <- t.updates_ignored + 1
    end
  end

open! Import

(** Per-PSN forwarding tables.

    The ARPANET forwards on destination alone: "the packet header … contain[s]
    only the identity of the destination node" (§4.1), so a table is just a
    next-hop link per destination.  Consistency across PSNs (everyone
    computing on the same flooded costs) is what makes this loop-free;
    {!trace_route} makes that property checkable. *)

type t

val of_tree : Spf_tree.t -> t
(** Extract next hops from a shortest-path tree. *)

val of_next_hops : Graph.t -> owner:Node.t -> Link.id option array -> t
(** Build directly from a per-destination next-hop array (indexed by node
    id) — the fast path for {!Incremental}, which maintains next hops
    without materializing a tree.
    @raise Invalid_argument if the array length differs from the node
    count or an entry names a link not leaving [owner]. *)

val owner : t -> Node.t

val next_hop : t -> Node.t -> Link.t option
(** The outgoing link for a destination; [None] for self or unreachable. *)

val reachable_count : t -> int

type trace =
  | Arrived of Link.t list  (** forwarding path, in order *)
  | Loop of Node.t list  (** nodes visited until a repeat was detected *)
  | Black_hole of Node.t  (** a hop had no route to the destination *)

val trace_route : t array -> src:Node.t -> dst:Node.t -> trace
(** Follow next hops through the per-node tables (indexed by node id) from
    [src] to [dst], detecting forwarding loops and black holes.  With
    consistent SPF tables the result is always [Arrived]. *)

val pp_trace : Graph.t -> Format.formatter -> trace -> unit

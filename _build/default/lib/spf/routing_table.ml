open! Import

type t = { owner : Node.t; graph : Graph.t; hops : Link.id option array }

let of_tree tree =
  let g = Spf_tree.graph tree in
  let n = Graph.node_count g in
  let hops = Array.make n None in
  Graph.iter_nodes g (fun dst ->
      match Spf_tree.next_hop tree dst with
      | Some l -> hops.(Node.to_int dst) <- Some l.Link.id
      | None -> ());
  { owner = Spf_tree.root tree; graph = g; hops }

let of_next_hops graph ~owner hops =
  if Array.length hops <> Graph.node_count graph then
    invalid_arg "Routing_table.of_next_hops: wrong array length";
  Array.iter
    (function
      | None -> ()
      | Some lid ->
        if not (Node.equal (Graph.link graph lid).Link.src owner) then
          invalid_arg "Routing_table.of_next_hops: link does not leave owner")
    hops;
  { owner; graph; hops = Array.copy hops }

let owner t = t.owner

let next_hop t dst = Option.map (Graph.link t.graph) t.hops.(Node.to_int dst)

let reachable_count t =
  Array.fold_left (fun acc h -> if Option.is_some h then acc + 1 else acc) 0 t.hops

type trace =
  | Arrived of Link.t list
  | Loop of Node.t list
  | Black_hole of Node.t

let trace_route tables ~src ~dst =
  let n = Array.length tables in
  let visited = Array.make n false in
  let rec step node acc =
    if Node.equal node dst then Arrived (List.rev acc)
    else if visited.(Node.to_int node) then
      Loop (List.rev_map (fun (l : Link.t) -> l.Link.src) acc)
    else begin
      visited.(Node.to_int node) <- true;
      match next_hop tables.(Node.to_int node) dst with
      | None -> Black_hole node
      | Some l -> step l.Link.dst (l :: acc)
    end
  in
  step src []

let pp_trace g ppf = function
  | Arrived links ->
    let names =
      match links with
      | [] -> []
      | first :: _ ->
        Graph.node_name g first.Link.src
        :: List.map (fun (l : Link.t) -> Graph.node_name g l.Link.dst) links
    in
    Format.fprintf ppf "arrived via %s" (String.concat " -> " names)
  | Loop nodes ->
    Format.fprintf ppf "LOOP through %s"
      (String.concat " -> " (List.map (Graph.node_name g) nodes))
  | Black_hole node ->
    Format.fprintf ppf "BLACK HOLE at %s" (Graph.node_name g node)

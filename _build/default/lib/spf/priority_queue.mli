open! Import

(** Binary min-heap with user-supplied priority comparison.

    Used by Dijkstra with lazy deletion: stale entries are simply popped and
    discarded by the caller, which keeps the structure simple and is the
    fastest approach for graphs of ARPANET size. *)

type ('p, 'a) t

val create : compare:('p -> 'p -> int) -> ('p, 'a) t

val is_empty : ('p, 'a) t -> bool

val length : ('p, 'a) t -> int

val push : ('p, 'a) t -> 'p -> 'a -> unit

val pop_min : ('p, 'a) t -> ('p * 'a) option
(** Remove and return the entry with the smallest priority; [None] when
    empty.  Equal priorities pop in unspecified order. *)

val peek_min : ('p, 'a) t -> ('p * 'a) option

val clear : ('p, 'a) t -> unit

open! Import

type t = {
  graph : Graph.t;
  (* dist.(src).(dst): current estimate at node src, max_int = unknown *)
  dist : int array array;
  hop : Link.id option array array;
}

let exchange_interval_s = 2. /. 3.

let create graph =
  let n = Graph.node_count graph in
  let dist = Array.init n (fun _ -> Array.make n max_int) in
  let hop = Array.init n (fun _ -> Array.make n None) in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0
  done;
  { graph; dist; hop }

let graph t = t.graph

(* Compute the vector node [i] would derive from its neighbors' current
   tables: min over out-links of cost(l) + table(neighbor)(dst). *)
let derive t ~link_cost i =
  let n = Graph.node_count t.graph in
  let best = Array.make n max_int in
  let via = Array.make n None in
  best.(i) <- 0;
  List.iter
    (fun (l : Link.t) ->
      let c = link_cost l.Link.id in
      let neighbor = Node.to_int l.Link.dst in
      for dst = 0 to n - 1 do
        if dst <> i then begin
          let d = t.dist.(neighbor).(dst) in
          if d <> max_int && c + d < best.(dst) then begin
            best.(dst) <- c + d;
            via.(dst) <- Some l.Link.id
          end
        end
      done)
    (Graph.out_links t.graph (Node.of_int i));
  (best, via)

let round t ~link_cost =
  let n = Graph.node_count t.graph in
  (* Synchronous: every node derives from the *previous* epoch's tables. *)
  let derived = Array.init n (fun i -> derive t ~link_cost i) in
  for i = 0 to n - 1 do
    let best, via = derived.(i) in
    Array.blit best 0 t.dist.(i) 0 n;
    Array.blit via 0 t.hop.(i) 0 n
  done

let distance t ~from dst =
  let d = t.dist.(Node.to_int from).(Node.to_int dst) in
  if d = max_int then None else Some d

let next_hop t ~from dst =
  Option.map (Graph.link t.graph) t.hop.(Node.to_int from).(Node.to_int dst)

let converged t ~link_cost =
  let n = Graph.node_count t.graph in
  let rec check i =
    if i >= n then true
    else begin
      let best, _ = derive t ~link_cost i in
      let same = ref true in
      for dst = 0 to n - 1 do
        if best.(dst) <> t.dist.(i).(dst) then same := false
      done;
      if !same then check (i + 1) else false
    end
  in
  check 0

let rounds_to_converge t ~link_cost ~max_rounds =
  let rec run k =
    if converged t ~link_cost then Some k
    else if k >= max_rounds then None
    else begin
      round t ~link_cost;
      run (k + 1)
    end
  in
  run 0

let forwarding_loops t =
  let n = Graph.node_count t.graph in
  let loops = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let visited = Array.make n false in
        let rec walk i =
          if i = dst then ()
          else if visited.(i) then
            loops := (Node.of_int src, Node.of_int dst) :: !loops
          else begin
            visited.(i) <- true;
            match t.hop.(i).(dst) with
            | None -> () (* no route yet: a gap, not a loop *)
            | Some lid -> walk (Node.to_int (Graph.link t.graph lid).Link.dst)
          end
        in
        walk src
      end
    done
  done;
  List.rev !loops

lib/bellman/bellman_ford.mli: Graph Import Link Node

lib/bellman/bellman_ford.ml: Array Graph Import Link List Node Option

lib/bellman/bellman_sim.ml: Array Bellman_ford Float Graph Import Link List Node Routing_metric Routing_stats Traffic_matrix

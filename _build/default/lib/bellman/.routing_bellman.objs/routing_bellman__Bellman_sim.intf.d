lib/bellman/bellman_sim.mli: Graph Import Link Traffic_matrix

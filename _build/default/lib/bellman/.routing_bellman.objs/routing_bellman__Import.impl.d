lib/bellman/import.ml: Routing_metric Routing_topology

open! Import

(** Period-driven simulator for the original (1969) routing: distributed
    Bellman-Ford over the instantaneous queue-length metric.

    One {!step} is a 10-second window (to compare against the SPF
    simulators) containing 15 table exchanges at the 2/3-second cadence.
    Each exchange samples every link's queue {e instantaneously} — a
    Poisson draw around the M/M/1 mean for the link's current utilization
    — so the metric fluctuates the way §2.1 complains about: "an
    instantaneous sample rather than an average … a poor indicator of
    expected delay".  Traffic then follows the resulting next-hop tables;
    flows whose next-hop chain loops are counted (and lost), reproducing
    the original algorithm's signature failure. *)

type period_stats = {
  time_s : float;
  offered_bps : float;
  delivered_bps : float;
  dropped_bps : float;  (** buffer loss on overloaded links *)
  looping_bps : float;  (** demand caught in a forwarding loop *)
  looping_pairs : int;  (** source/destination pairs currently looping *)
  mean_delay_s : float;  (** delivered-weighted *)
  max_utilization : float;
}

type t

val create : ?seed:int -> Graph.t -> Traffic_matrix.t -> t

val graph : t -> Graph.t

val step : t -> period_stats

val run : t -> periods:int -> period_stats list

val link_utilization : t -> Link.id -> float

val history : t -> period_stats list
(** Oldest first. *)

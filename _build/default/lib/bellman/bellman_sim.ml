open! Import
module Rng = Routing_stats.Rng
module Queueing = Routing_metric.Queueing
module Units = Routing_metric.Units

type period_stats = {
  time_s : float;
  offered_bps : float;
  delivered_bps : float;
  dropped_bps : float;
  looping_bps : float;
  looping_pairs : int;
  mean_delay_s : float;
  max_utilization : float;
}

type t = {
  graph : Graph.t;
  rng : Rng.t;
  bf : Bellman_ford.t;
  tm : Traffic_matrix.t;
  utilization : float array;
  mutable period : int;
  mutable history : period_stats list; (* newest first *)
}

let create ?(seed = 42) graph tm =
  { graph;
    rng = Rng.create seed;
    bf = Bellman_ford.create graph;
    tm;
    utilization = Array.make (Graph.link_count graph) 0.;
    period = 0;
    history = [] }

let graph t = t.graph

let exchanges_per_period =
  int_of_float
    (Float.round (Units.routing_period_s /. Bellman_ford.exchange_interval_s))

(* The 1969 link metric: the queue length *at this instant*, which we model
   as a Poisson draw around the M/M/1 mean occupancy for the link's
   current utilization, plus the stabilizing constant. *)
let sample_cost t (lid : Link.id) =
  let link = Graph.link t.graph lid in
  let mean =
    Queueing.queue_length link.Link.line_type
      ~utilization:t.utilization.(Link.id_to_int lid)
  in
  let queue = if mean <= 0. then 0 else Rng.poisson t.rng ~mean in
  Routing_metric.Legacy.cost_of_queue ~queue_length:queue

let step t =
  (* 15 exchanges at 2/3 s, each against a fresh instantaneous sample. *)
  for _ = 1 to exchanges_per_period do
    Bellman_ford.round t.bf ~link_cost:(sample_cost t)
  done;
  (* Route the matrix over the resulting next-hop chains. *)
  let nl = Graph.link_count t.graph in
  let offered_links = Array.make nl 0. in
  let looping = ref 0. in
  let looping_pairs = ref 0 in
  let unrouted = ref 0. in
  let flows = ref [] in
  Traffic_matrix.iter t.tm (fun ~src ~dst demand ->
      let n = Graph.node_count t.graph in
      let visited = Array.make n false in
      let rec walk node acc =
        if Node.equal node dst then Some (List.rev acc)
        else if visited.(Node.to_int node) then None
        else begin
          visited.(Node.to_int node) <- true;
          match Bellman_ford.next_hop t.bf ~from:node dst with
          | None -> None
          | Some l -> walk l.Link.dst (l :: acc)
        end
      in
      match walk src [] with
      | Some path ->
        List.iter
          (fun (l : Link.t) ->
            let i = Link.id_to_int l.Link.id in
            offered_links.(i) <- offered_links.(i) +. demand)
          path;
        flows := (demand, path) :: !flows
      | None ->
        (* Either a loop or a not-yet-learned route; with converged-ish
           tables it is a loop. *)
        incr looping_pairs;
        looping := !looping +. demand;
        unrouted := !unrouted +. demand);
  for i = 0 to nl - 1 do
    let link = Graph.link t.graph (Link.id_of_int i) in
    t.utilization.(i) <- offered_links.(i) /. Link.capacity_bps link
  done;
  (* Delay and loss along the successfully routed flows. *)
  let delivered = ref 0. in
  let dropped = ref 0. in
  let delay_weighted = ref 0. in
  List.iter
    (fun (demand, path) ->
      let share = ref 1. in
      let delay = ref 0. in
      List.iter
        (fun (l : Link.t) ->
          let u = t.utilization.(Link.id_to_int l.Link.id) in
          share := !share *. (1. -. Queueing.mm1k_blocking ~utilization:u);
          delay := !delay +. Queueing.mm1k_delay_s l ~utilization:u)
        path;
      let carried = demand *. !share in
      delivered := !delivered +. carried;
      dropped := !dropped +. (demand -. carried);
      delay_weighted := !delay_weighted +. (!delay *. carried))
    !flows;
  t.period <- t.period + 1;
  let stats =
    { time_s = float_of_int t.period *. Units.routing_period_s;
      offered_bps = Traffic_matrix.total_bps t.tm;
      delivered_bps = !delivered;
      dropped_bps = !dropped;
      looping_bps = !looping;
      looping_pairs = !looping_pairs;
      mean_delay_s =
        (if !delivered > 0. then !delay_weighted /. !delivered else 0.);
      max_utilization = Array.fold_left Float.max 0. t.utilization }
  in
  t.history <- stats :: t.history;
  stats

let run t ~periods = List.init periods (fun _ -> step t)

let link_utilization t lid = t.utilization.(Link.id_to_int lid)

let history t = List.rev t.history

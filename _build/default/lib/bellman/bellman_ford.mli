open! Import

(** The original (1969) ARPANET routing algorithm: distributed Bellman-Ford
    (§2.1).

    "Each node maintained a table of its estimated shortest distance to all
    other nodes.  These tables were exchanged between neighbors every 2/3
    seconds.  Each node updated its distance estimates periodically, based
    on information received from neighbors and its own estimate of the
    distance to each of its neighbors" — where that last quantity, the link
    metric, "was simply the instantaneous queue length at the moment of
    updating plus a fixed constant".

    The implementation runs the exchange in synchronous rounds (one round =
    one 2/3-second exchange epoch).  Because the metric is an instantaneous
    sample and estimates propagate one hop per round, the algorithm forms
    transient (and with volatile queues, persistent) loops — which
    {!forwarding_loops} makes measurable, reproducing the §2.1 criticism. *)

type t

val exchange_interval_s : float
(** 2/3 s. *)

val create : Graph.t -> t
(** Tables start knowing only [dist(self) = 0]. *)

val graph : t -> Graph.t

val round : t -> link_cost:(Link.id -> int) -> unit
(** One synchronous exchange: every node sends its current vector to every
    neighbor; every node then recomputes
    [dist(dst) = min over out-links (cost(l) + neighbor_table(dst))].
    [link_cost] is sampled at this instant — feed it
    {!Routing_metric.Legacy.cost_of_queue} of the current queue lengths. *)

val distance : t -> from:Node.t -> Node.t -> int option
(** Current estimate, [None] while unknown. *)

val next_hop : t -> from:Node.t -> Node.t -> Link.t option

val converged : t -> link_cost:(Link.id -> int) -> bool
(** Would another {!round} with the same costs change any estimate? *)

val rounds_to_converge : t -> link_cost:(Link.id -> int) -> max_rounds:int -> int option
(** Run rounds with static costs until quiescent; [None] if not within
    [max_rounds]. *)

val forwarding_loops : t -> (Node.t * Node.t) list
(** Source/destination pairs whose current next-hop chains revisit a node
    instead of arriving — the long-term loops §2 warns about. *)

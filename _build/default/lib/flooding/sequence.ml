type t = int

let space = 65536

let zero = 0

let of_int i =
  if i < 0 then invalid_arg "Sequence.of_int: negative";
  i mod space

let to_int t = t

let next t = (t + 1) mod space

let newer a b =
  let diff = (a - b + space) mod space in
  diff > 0 && diff < space / 2

let equal = Int.equal

let pp ppf t = Format.fprintf ppf "#%d" t

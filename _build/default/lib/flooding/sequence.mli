(** Wrapping update sequence numbers.

    Rosen's updating protocol orders updates from the same PSN with a small
    circular sequence-number space.  [newer a b] implements the standard
    half-space comparison: [a] is newer than [b] when it lies in the half of
    the circle ahead of [b].  The space is 2^16, far more than the ~6
    updates a PSN can emit per minute, so wrap ambiguity never arises in
    practice. *)

type t = private int

val space : int
(** Size of the circular space (65536). *)

val zero : t

val of_int : int -> t
(** Reduced modulo {!space}.  @raise Invalid_argument on negative input. *)

val to_int : t -> int

val next : t -> t

val newer : t -> t -> bool
(** [newer a b] — strict: [newer a a = false]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

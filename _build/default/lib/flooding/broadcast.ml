open! Import

type outcome = {
  reached : int;
  transmissions : int;
  duplicates : int;
  bits : float;
}

let flood g flooders (u : Update.t) =
  let reached = ref 0 in
  let transmissions = ref 0 in
  let duplicates = ref 0 in
  let queue = Queue.create () in
  (* Injection at the origin: no arrival link. *)
  Queue.add (None, Node.to_int u.origin) queue;
  while not (Queue.is_empty queue) do
    let arrived_on, node = Queue.pop queue in
    match Flooder.receive flooders.(node) ~arrived_on u with
    | Flooder.Duplicate -> incr duplicates
    | Flooder.Fresh forward ->
      incr reached;
      List.iter
        (fun lid ->
          incr transmissions;
          let dst = (Graph.link g lid).Link.dst in
          Queue.add (Some lid, Node.to_int dst) queue)
        forward
  done;
  { reached = !reached;
    transmissions = !transmissions;
    duplicates = !duplicates;
    bits = float_of_int !transmissions *. Update.size_bits u }

let flood_all g flooders updates =
  List.fold_left
    (fun acc u ->
      let o = flood g flooders u in
      { reached = max acc.reached o.reached;
        transmissions = acc.transmissions + o.transmissions;
        duplicates = acc.duplicates + o.duplicates;
        bits = acc.bits +. o.bits })
    { reached = 0; transmissions = 0; duplicates = 0; bits = 0. }
    updates

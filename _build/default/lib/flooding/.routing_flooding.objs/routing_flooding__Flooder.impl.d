lib/flooding/flooder.ml: Array Graph Import Link List Node Sequence Update

lib/flooding/update.mli: Format Import Link Node Sequence

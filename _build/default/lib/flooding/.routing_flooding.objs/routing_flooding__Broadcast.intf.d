lib/flooding/broadcast.mli: Flooder Graph Import Update

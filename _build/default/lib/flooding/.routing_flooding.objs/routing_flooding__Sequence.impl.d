lib/flooding/sequence.ml: Format Int

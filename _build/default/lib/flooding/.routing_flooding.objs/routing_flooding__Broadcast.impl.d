lib/flooding/broadcast.ml: Array Flooder Graph Import Link List Node Queue Update

lib/flooding/import.ml: Routing_topology

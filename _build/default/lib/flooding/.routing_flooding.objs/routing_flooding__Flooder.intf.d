lib/flooding/flooder.mli: Graph Import Link Node Sequence Update

lib/flooding/update.ml: Format Import Link List Node Sequence String

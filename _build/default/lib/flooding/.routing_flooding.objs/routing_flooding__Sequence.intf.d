lib/flooding/sequence.mli: Format

open! Import

(** Routing update messages.

    "Routing updates contain only link cost information; no other routing
    information is disseminated through the network" (§2.2).  An update
    announces the originating PSN's current costs for its outgoing links,
    stamped with a per-origin sequence number. *)

type t = {
  origin : Node.t;  (** the PSN reporting its local links *)
  seq : Sequence.t;
  costs : (Link.id * int) list;  (** the origin's outgoing links *)
}

val size_bits : t -> float
(** Wire size used for overhead accounting: 128 bits of header plus 48 bits
    per reported link (16-bit link id, 8-bit cost, 24 bits of protocol
    framing) — C/30-era message proportions. *)

val pp : Format.formatter -> t -> unit

open! Import

type t = {
  origin : Node.t;
  seq : Sequence.t;
  costs : (Link.id * int) list;
}

let size_bits t = 128. +. (48. *. float_of_int (List.length t.costs))

let pp ppf t =
  Format.fprintf ppf "update %a%a [%s]" Node.pp t.origin Sequence.pp t.seq
    (String.concat "; "
       (List.map
          (fun (l, c) -> Format.asprintf "%a=%d" Link.pp_id l c)
          t.costs))

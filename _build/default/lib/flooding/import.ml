(* Substrate aliases opened by every module in this library. *)

module Node = Routing_topology.Node
module Link = Routing_topology.Link
module Graph = Routing_topology.Graph

open! Import

(** Per-PSN flooding state for the updating protocol (Rosen 1980).

    Each PSN remembers, per origin, the newest sequence number it has
    accepted.  {!receive} classifies an incoming update and — for a fresh
    one — says which links to forward it on (all outgoing links except the
    one it arrived over).  {!originate} stamps a PSN's own update.

    The transport below (retransmission until acknowledged on each line) is
    the simulator's job; this module is the protocol's decision logic, and
    with it a simulator can account exactly for how many update
    transmissions a single cost change costs the network. *)

type t

val create : Graph.t -> owner:Node.t -> t

val owner : t -> Node.t

val originate : t -> costs:(Link.id * int) list -> Update.t
(** Build this PSN's next update (advancing its own sequence number) and
    record it as seen. *)

type verdict =
  | Fresh of Link.id list
      (** first sighting: accept the costs, forward on these links *)
  | Duplicate  (** already seen (same or older sequence): discard *)

val receive : t -> arrived_on:Link.id option -> Update.t -> verdict
(** [arrived_on = None] models an update injected locally (used when a
    simulator applies an origination to its own node); a local injection is
    always [Fresh] and forwards on every outgoing link. *)

val accepted_count : t -> int

val duplicate_count : t -> int

val last_seq : t -> Node.t -> Sequence.t option
(** Newest sequence accepted from an origin, if any. *)

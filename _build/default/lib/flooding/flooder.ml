open! Import

type t = {
  graph : Graph.t;
  owner : Node.t;
  newest : Sequence.t option array; (* per origin node *)
  mutable own_seq : Sequence.t;
  mutable accepted : int;
  mutable duplicates : int;
}

let create graph ~owner =
  { graph;
    owner;
    newest = Array.make (Graph.node_count graph) None;
    own_seq = Sequence.zero;
    accepted = 0;
    duplicates = 0 }

let owner t = t.owner

let is_fresh t (u : Update.t) =
  match t.newest.(Node.to_int u.origin) with
  | None -> true
  | Some seen -> Sequence.newer u.seq seen

let note_seen t (u : Update.t) =
  t.newest.(Node.to_int u.origin) <- Some u.seq

let originate t ~costs =
  t.own_seq <- Sequence.next t.own_seq;
  let u = { Update.origin = t.owner; seq = t.own_seq; costs } in
  note_seen t u;
  u

type verdict = Fresh of Link.id list | Duplicate

let receive t ~arrived_on (u : Update.t) =
  (* A local injection is always propagated: the originator has necessarily
     already recorded its own sequence number in [originate]. *)
  let fresh = match arrived_on with None -> true | Some _ -> is_fresh t u in
  if fresh then begin
    note_seen t u;
    t.accepted <- t.accepted + 1;
    let forward =
      Graph.out_links t.graph t.owner
      |> List.filter_map (fun (l : Link.t) ->
             (* Never send an update back over the line it arrived on —
                the neighbour there has it by construction. *)
             let came_back =
               match arrived_on with
               | Some in_link ->
                 Link.id_equal (Graph.reverse t.graph l).Link.id in_link
               | None -> false
             in
             if came_back then None else Some l.Link.id)
    in
    Fresh forward
  end
  else begin
    t.duplicates <- t.duplicates + 1;
    Duplicate
  end

let accepted_count t = t.accepted

let duplicate_count t = t.duplicates

let last_seq t origin = t.newest.(Node.to_int origin)

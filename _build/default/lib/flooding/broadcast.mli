open! Import

(** Whole-network flood execution (transport-free).

    Runs one update through an array of per-node {!Flooder.t} states as a
    breadth-first wave, the way it unfolds when update processing is "a
    high priority process within the PSN" and transit times are tiny
    compared to routing periods (§3.2) — i.e. effectively instantaneous
    relative to the 10-second period.  Returns exact message accounting so
    experiments can report routing-overhead bandwidth. *)

type outcome = {
  reached : int;  (** nodes that accepted the update (including origin) *)
  transmissions : int;  (** update messages sent over links *)
  duplicates : int;  (** messages discarded as already-seen *)
  bits : float;  (** total wire bits spent on this flood *)
}

val flood : Graph.t -> Flooder.t array -> Update.t -> outcome
(** [flood g flooders u] injects [u] at its origin and propagates until
    quiescent.  [flooders] is indexed by node id and is mutated. *)

val flood_all :
  Graph.t -> Flooder.t array -> Update.t list -> outcome
(** Run several floods (e.g. all updates of one routing period) and sum the
    accounting. *)

open! Import

type point = {
  period : int;
  cost : int;
  cost_hops : float;
  utilization : float;
}

type start = From_idle | From_max | From_cost of int

(* A single-link metric stepper: current cost, and advance-by-one-period. *)
type stepper = {
  current : unit -> int;
  advance : utilization:float -> int;
}

let make_stepper kind link start =
  match kind with
  | Metric.Min_hop ->
    { current = (fun () -> 1); advance = (fun ~utilization:_ -> 1) }
  | Metric.Static_capacity ->
    let c = Metric.idle_cost Metric.Static_capacity link in
    { current = (fun () -> c); advance = (fun ~utilization:_ -> c) }
  | Metric.Hn_spf ->
    let state =
      match start with
      | From_idle -> Hnm.create link
      | From_max -> Hnm.create_easing_in link
      | From_cost _ -> Hnm.create link
    in
    (match start with
    | From_cost _ ->
      invalid_arg
        "Cobweb: HN-SPF state is a filter, not a cost; use From_idle/From_max"
    | From_idle | From_max -> ());
    { current = (fun () -> Hnm.current_cost state);
      advance =
        (fun ~utilization ->
          Hnm.period_update state
            ~measured_delay_s:(Queueing.delay_s link ~utilization)) }
  | Metric.D_spf ->
    let state = Dspf.create link in
    let initial =
      match start with
      | From_idle -> Dspf.current_cost state
      | From_max -> Units.max_cost
      | From_cost c -> c
    in
    (* D-SPF is memoryless between periods: the "state" is just the last
       reported value, so seeding it is a plain override. *)
    let cost = ref initial in
    { current = (fun () -> !cost);
      advance =
        (fun ~utilization ->
          cost :=
            Dspf.period_update state
              ~measured_delay_s:(Queueing.delay_s link ~utilization);
          !cost) }

let trace kind link response ~offered_load ~start ~periods =
  let stepper = make_stepper kind link start in
  let idle = float_of_int (Metric_map.idle_cost kind link) in
  let observe period cost =
    let cost_hops = float_of_int cost /. idle in
    let utilization =
      offered_load *. Response_map.traffic_at response cost_hops
    in
    ({ period; cost; cost_hops; utilization }, utilization)
  in
  let rec loop period cost acc =
    let point, utilization = observe period cost in
    if period >= periods then List.rev (point :: acc)
    else begin
      let next = stepper.advance ~utilization in
      loop (period + 1) next (point :: acc)
    end
  in
  loop 0 (stepper.current ()) []

let tail_amplitude points ~last =
  let tail =
    let n = List.length points in
    List.filteri (fun i _ -> i >= n - last) points
  in
  match tail with
  | [] -> 0.
  | _ ->
    let hops = List.map (fun p -> p.cost_hops) tail in
    List.fold_left Float.max neg_infinity hops
    -. List.fold_left Float.min infinity hops

let converged points ~last ~tolerance_hops =
  tail_amplitude points ~last <= tolerance_hops

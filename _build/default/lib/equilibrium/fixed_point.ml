open! Import

type equilibrium = {
  cost_hops : float;
  utilization : float;
  carried : float;
}

let clamp01 u = Float.min 1. u

(* Offered utilization when the link reports [x] hops: the response map is
   normalized to 1 at one hop, so scaling by the min-hop load gives raw
   utilization. *)
let offered response ~offered_load x =
  offered_load *. Response_map.traffic_at response x

let metric_hops kind link u =
  Metric_map.cost_in_hops kind link ~utilization:(Float.min u 0.99)

let equilibrium kind link response ~offered_load =
  match kind with
  | Metric.Min_hop | Metric.Static_capacity ->
    (* Static metrics sit at one (relative) hop regardless of load. *)
    let u = offered response ~offered_load 1. in
    { cost_hops = 1.; utilization = u; carried = clamp01 u }
  | Metric.D_spf | Metric.Hn_spf ->
    (* f(x) = M(load * n(x)) - x is strictly decreasing (M rises with
       utilization, n falls with cost), so bisection finds the unique
       root. *)
    let f x = metric_hops kind link (offered response ~offered_load x) -. x in
    let lo = ref 0.25 and hi = ref 16. in
    if f !lo <= 0. then lo := !lo (* equilibrium at or below the floor *);
    for _ = 1 to 60 do
      let mid = (!lo +. !hi) /. 2. in
      if f mid > 0. then lo := mid else hi := mid
    done;
    let x = (!lo +. !hi) /. 2. in
    let u = offered response ~offered_load x in
    { cost_hops = x; utilization = u; carried = clamp01 u }

let equilibrium_curve kind link response ~loads =
  List.map
    (fun load -> (load, equilibrium kind link response ~offered_load:load))
    loads

let ideal_carried load = Float.min 1. load

open! Import

(** Dynamic behaviour of the routing loop (§5.4, Figs 11 and 12).

    Iterate the real (stateful) metric against the Network Response map,
    one routing period per step: the current reported cost determines the
    traffic the network sends over the link; that utilization feeds the
    metric; the metric emits the next reported cost.  D-SPF started away
    from its equilibrium diverges into a full-amplitude oscillation (Fig
    11); HN-SPF converges — or oscillates within the half-hop movement
    bound — and a link started at its maximum cost eases in (Fig 12). *)

type point = {
  period : int;
  cost : int;  (** routing units reported after this period *)
  cost_hops : float;  (** cost normalized by the idle cost *)
  utilization : float;  (** raw offered utilization during the period *)
}

type start =
  | From_idle  (** metric state of a long-idle link *)
  | From_max  (** a freshly revived link (HN-SPF eases in; D-SPF has no
                  such mechanism and just starts from its ceiling) *)
  | From_cost of int  (** arbitrary initial reported cost, routing units *)

val trace :
  Metric.kind ->
  Link.t ->
  Response_map.t ->
  offered_load:float ->
  start:start ->
  periods:int ->
  point list
(** The trajectory, oldest first; [period 0] is the starting cost with the
    traffic it attracts. *)

val tail_amplitude : point list -> last:int -> float
(** Peak-to-peak swing of [cost_hops] over the final [last] points — the
    oscillation amplitude once transients die out. *)

val converged : point list -> last:int -> tolerance_hops:float -> bool
(** True when the tail amplitude is within the tolerance. *)

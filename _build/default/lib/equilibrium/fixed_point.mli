open! Import

(** Equilibrium calculation (§5.3, Figs 9 and 10).

    "Equilibrium is achieved when the reported cost from one period results
    in a traffic level on the link that in turn results in the same cost for
    the next period."  The two mappings are the Metric map
    (utilization → cost, {!Metric_map}) and the Network Response map
    (cost → traffic, {!Response_map}); their composition is monotone
    decreasing in the reported cost, so the fixed point is found by
    bisection — the "numerical techniques" the paper resorts to.

    [offered_load] is the paper's normalizer: "the percentage the 'average
    link' would be utilized if min-hop routing were in effect". *)

type equilibrium = {
  cost_hops : float;  (** reported cost at the fixed point, in hops *)
  utilization : float;  (** raw offered utilization at the fixed point
                            (may exceed 1 when the link is oversubscribed) *)
  carried : float;  (** utilization capped at capacity — what the line
                        actually transmits *)
}

val equilibrium :
  Metric.kind -> Link.t -> Response_map.t -> offered_load:float -> equilibrium
(** Solve [cost = M(load * n(cost))].  Min-hop is the degenerate case
    [cost = 1]. *)

val equilibrium_curve :
  Metric.kind ->
  Link.t ->
  Response_map.t ->
  loads:float list ->
  (float * equilibrium) list
(** Fig 10: one equilibrium per offered load. *)

val ideal_carried : float -> float
(** The routing ideal the paper describes: carry everything up to capacity,
    shed the excess — [min load 1.]. *)

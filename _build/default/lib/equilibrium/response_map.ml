open! Import

type shed_stat = {
  route_hops : int;
  routes : int;
  mean_shed_hops : float;
  stddev_shed_hops : float;
  min_shed_hops : float;
  max_shed_hops : float;
}

(* Hop-count distance matrix of the graph with one link removed. *)
let distances_avoiding g probe =
  let n = Graph.node_count g in
  let d = Array.init n (fun _ -> Array.make n max_int) in
  for src = 0 to n - 1 do
    let tree =
      Dijkstra.min_hop_tree
        ~enabled:(fun lid -> not (Link.id_equal lid probe))
        g (Node.of_int src)
    in
    for dst = 0 to n - 1 do
      let node = Node.of_int dst in
      if Spf_tree.reached tree node then d.(src).(dst) <- Spf_tree.hops tree node
    done
  done;
  d

(* Visit every flow's relationship to one probe link: its route length
   through the probe and the probe cost (integer hops) at which it sheds.
   Flows that cannot route through the probe at all are skipped. *)
let iter_probe_flows g tm probe ~max_shed f =
  let link = Graph.link g probe in
  let d = distances_avoiding g probe in
  let u = Node.to_int link.Link.src and v = Node.to_int link.Link.dst in
  Traffic_matrix.iter tm (fun ~src ~dst demand ->
      let s = Node.to_int src and t = Node.to_int dst in
      let d1 = d.(s).(u) and d2 = d.(v).(t) in
      if d1 <> max_int && d2 <> max_int then begin
        let alt = d.(s).(t) in
        let captive = alt = max_int in
        let shed = if captive then max_shed else min (alt - d1 - d2) max_shed in
        f ~route_hops:(d1 + 1 + d2) ~shed ~captive ~demand
      end)

let shed_statistics ?(include_captive = false) ?(max_shed_hops = 16.)
    ?(links = fun _ -> true) g tm =
  let max_shed = int_of_float max_shed_hops in
  let by_length = Hashtbl.create 16 in
  Graph.iter_links g (fun (l : Link.t) ->
      if links l then
      iter_probe_flows g tm l.Link.id ~max_shed
        (fun ~route_hops ~shed ~captive ~demand:_ ->
          (* Only routes actually on the link at ambient cost (ties in
             favor): shed >= 1. *)
          if shed >= 1 && ((not captive) || include_captive) then begin
            let w =
              match Hashtbl.find_opt by_length route_hops with
              | Some w -> w
              | None ->
                let w = Welford.create () in
                Hashtbl.add by_length route_hops w;
                w
            in
            Welford.add w (float_of_int shed)
          end));
  Hashtbl.fold
    (fun route_hops w acc ->
      { route_hops;
        routes = Welford.count w;
        mean_shed_hops = Welford.mean w;
        stddev_shed_hops = Welford.stddev w;
        min_shed_hops = Welford.min_value w;
        max_shed_hops = Welford.max_value w }
      :: acc)
    by_length []
  |> List.sort (fun a b -> Int.compare a.route_hops b.route_hops)

type t = { xs : float array; ys : float array }

let compute ?(max_hops = 9.) g tm =
  let max_shed = int_of_float (Float.ceil max_hops) + 1 in
  (* Per probe link: traffic staying at favor(k) = total demand with
     shed >= k, for k = 1 .. max_shed; plotted at x = k - 0.5. *)
  let steps = max_shed in
  let acc = Array.make steps 0. in
  let contributing = ref 0 in
  Graph.iter_links g (fun (l : Link.t) ->
      let staying = Array.make (steps + 1) 0. in
      iter_probe_flows g tm l.Link.id ~max_shed
        (fun ~route_hops:_ ~shed ~captive:_ ~demand ->
          if shed >= 1 then begin
            (* This flow is on the link for every favor(k) with k <= shed. *)
            let top = min shed steps in
            for k = 1 to top do
              staying.(k) <- staying.(k) +. demand
            done
          end);
      let base = (staying.(1) +. staying.(min 2 steps)) /. 2. in
      if base > 0. then begin
        incr contributing;
        for k = 1 to steps do
          acc.(k - 1) <- acc.(k - 1) +. (staying.(k) /. base)
        done
      end);
  if !contributing = 0 then invalid_arg "Response_map.compute: no traffic";
  let xs = Array.init steps (fun i -> float_of_int (i + 1) -. 0.5) in
  let ys = Array.map (fun total -> total /. float_of_int !contributing) acc in
  { xs; ys }

let points t = Array.map2 (fun x y -> (x, y)) t.xs t.ys

let traffic_at t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    let rec find i = if t.xs.(i + 1) >= x then i else find (i + 1) in
    let i = find 0 in
    let frac = (x -. t.xs.(i)) /. (t.xs.(i + 1) -. t.xs.(i)) in
    t.ys.(i) +. (frac *. (t.ys.(i + 1) -. t.ys.(i)))
  end

let base_utilization _t g tm (link : Link.t) =
  let staying = ref 0. in
  iter_probe_flows g tm link.Link.id ~max_shed:2
    (fun ~route_hops:_ ~shed ~captive:_ ~demand ->
      if shed >= 1 then staying := !staying +. demand);
  !staying /. Link.capacity_bps link

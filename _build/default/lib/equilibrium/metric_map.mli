open! Import

(** Metric maps: equilibrium reported cost as a function of held link
    utilization (§5.3, Figs 4 and 5).

    Figure 4 normalizes each metric "by the value reported by an idle line,
    for the purpose of making a meaningful comparison" — 30 routing units
    for HN-SPF on a 56 kb/s line, 2 units for D-SPF.  {!normalized} applies
    the same convention, so its output reads directly in {e hops}. *)

val curve :
  Metric.kind -> Link.t -> samples:int -> (float * int) array
(** [(utilization, cost)] pairs at [samples] evenly spaced utilizations in
    [\[0, 0.99\]]. *)

val idle_cost : Metric.kind -> Link.t -> int
(** The normalizer: what an idle line reports. *)

val normalized :
  Metric.kind -> Link.t -> samples:int -> (float * float) array
(** [(utilization, cost / idle_cost)] — relative cost in hops. *)

val cost_in_hops : Metric.kind -> Link.t -> utilization:float -> float
(** Point query of the normalized map. *)

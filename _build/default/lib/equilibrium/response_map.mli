open! Import

(** The Network Response Map (§5.1–5.2, Figs 7 and 8).

    "Each link is taken one at a time and statistics are collected relating
    the reported cost needed (in hops) to shed each route and its traffic.
    Ties are always broken in favor of using the given link.  The statistics
    are aggregated over the whole network to get the characteristics of the
    'average link'."

    All other links report the ambient value (one hop), so distances reduce
    to hop counts.  For a probe link u→v and a route src→dst, the cheapest
    path through the probe costs [d(src,u) + x + d(v,dst)] hops when the
    probe reports [x]; the best alternative costs [d'(src,dst)] hops, both
    measured on the graph with the probe removed.  The route stays on the
    probe while [d(src,u) + x + d(v,dst) <= d'(src,dst)] (ties in favor);
    the half-hop granularity of Fig 8's X axis falls out of flipping the
    tie-break. *)

type shed_stat = {
  route_hops : int;  (** route length through the probe link, in links *)
  routes : int;  (** number of such routes network-wide *)
  mean_shed_hops : float;  (** average reported cost that sheds them *)
  stddev_shed_hops : float;
  min_shed_hops : float;
  max_shed_hops : float;
}

val shed_statistics :
  ?include_captive:bool ->
  ?max_shed_hops:float ->
  ?links:(Link.t -> bool) ->
  Graph.t ->
  Traffic_matrix.t ->
  shed_stat list
(** Fig 7's data, one entry per observed route length (ascending).  Routes
    with no alternative path at all (single-homed destinations) cannot be
    shed at any cost; they are excluded unless [include_captive] (default
    false), in which case they count as shedding at [max_shed_hops]
    (default 16., beyond Fig 7's axis).  [links] (default: all) restricts
    which probe links contribute — the paper notes "the characteristics of
    individual links differ from the 'average' link", and the restriction
    lets experiments compare link classes (backbone vs tails vs
    satellite). *)

type t
(** The average-link response map: normalized traffic as a function of the
    probe's reported cost in hops. *)

val compute : ?max_hops:float -> Graph.t -> Traffic_matrix.t -> t
(** Evaluate at half-hop steps up to [max_hops] (default 9.), averaging the
    per-link normalized curves over every link that carries traffic at
    ambient cost. *)

val points : t -> (float * float) array
(** [(cost_hops, normalized_traffic)], normalized so the curve is 1 at one
    hop. *)

val traffic_at : t -> float -> float
(** Linear interpolation between {!points}; clamped at the ends. *)

val base_utilization : t -> Graph.t -> Traffic_matrix.t -> Link.t -> float
(** The probe link's min-hop-routing utilization — the "offered load"
    normalizer used by Figs 9–12: its ambient-cost traffic divided by its
    capacity. *)

lib/equilibrium/cobweb.ml: Dspf Float Hnm Import List Metric Metric_map Queueing Response_map Units

lib/equilibrium/response_map.ml: Array Dijkstra Float Graph Hashtbl Import Int Link List Node Spf_tree Traffic_matrix Welford

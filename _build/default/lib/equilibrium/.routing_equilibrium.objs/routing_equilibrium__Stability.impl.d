lib/equilibrium/stability.ml: Dspf Float Import Link List Metric Queueing Response_map Routing_metric Units

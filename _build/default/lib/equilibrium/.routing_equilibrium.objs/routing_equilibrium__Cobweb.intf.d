lib/equilibrium/cobweb.mli: Import Link Metric Response_map

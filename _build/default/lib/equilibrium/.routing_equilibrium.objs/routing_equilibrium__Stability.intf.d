lib/equilibrium/stability.mli: Import Link Metric Response_map

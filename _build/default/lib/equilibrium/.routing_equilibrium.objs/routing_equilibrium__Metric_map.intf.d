lib/equilibrium/metric_map.mli: Import Link Metric

lib/equilibrium/response_map.mli: Graph Import Link Traffic_matrix

lib/equilibrium/fixed_point.ml: Float Import List Metric Metric_map Response_map

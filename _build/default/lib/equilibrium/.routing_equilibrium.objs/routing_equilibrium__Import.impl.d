lib/equilibrium/import.ml: Routing_metric Routing_spf Routing_stats Routing_topology

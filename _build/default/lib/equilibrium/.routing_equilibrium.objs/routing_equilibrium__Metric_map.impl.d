lib/equilibrium/metric_map.ml: Array Dspf Import Link Metric Queueing

lib/equilibrium/fixed_point.mli: Import Link Metric Response_map

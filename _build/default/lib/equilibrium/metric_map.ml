open! Import

let curve kind link ~samples =
  if samples < 2 then invalid_arg "Metric_map.curve: samples < 2";
  Array.init samples (fun i ->
      let u =
        Queueing.max_utilization *. float_of_int i /. float_of_int (samples - 1)
      in
      (u, Metric.equilibrium_cost kind link ~utilization:u))

let idle_cost kind link =
  match kind with
  | Metric.Min_hop -> 1
  | Metric.D_spf ->
    (* The delay metric's bias is its idle floor (§4.2). *)
    Dspf.bias link.Link.line_type
  | Metric.Static_capacity | Metric.Hn_spf ->
    Metric.equilibrium_cost kind link ~utilization:0.

let normalized kind link ~samples =
  let idle = float_of_int (idle_cost kind link) in
  Array.map
    (fun (u, c) -> (u, float_of_int c /. idle))
    (curve kind link ~samples)

let cost_in_hops kind link ~utilization =
  float_of_int (Metric.equilibrium_cost kind link ~utilization)
  /. float_of_int (idle_cost kind link)

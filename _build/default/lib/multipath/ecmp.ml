open! Import

type loads = {
  offered_bps : float array;
  delivered_bps : float;
  unrouted_bps : float;
}

(* Propagate per-destination demand down the ECMP DAG: nodes in order of
   decreasing distance-to-destination, each splitting (its own demand +
   transit demand) equally over its next-hop set. *)
let spread_destination g rspf ~demand ~offered =
  let demand_at node = if Reverse_spf.reaches rspf node then demand node else 0. in
  let n = Graph.node_count g in
  let through = Array.make n 0. in
  Graph.iter_nodes g (fun node ->
      through.(Node.to_int node) <- demand_at node);
  let delivered = ref 0. in
  List.iter
    (fun node ->
      let i = Node.to_int node in
      if Node.equal node (Reverse_spf.destination rspf) then
        delivered := !delivered +. through.(i)
      else begin
        let load = through.(i) in
        if load > 0. then begin
          match Reverse_spf.next_hops rspf node with
          | [] -> () (* unreachable despite demand: counted by the caller *)
          | hops ->
            let share = load /. float_of_int (List.length hops) in
            List.iter
              (fun (l : Link.t) ->
                offered.(Link.id_to_int l.Link.id) <-
                  offered.(Link.id_to_int l.Link.id) +. share;
                through.(Node.to_int l.Link.dst) <-
                  through.(Node.to_int l.Link.dst) +. share)
              hops
        end
      end)
    (Reverse_spf.nodes_by_descending_distance rspf);
  !delivered

let spread ?enabled g ~cost tm =
  let offered = Array.make (Graph.link_count g) 0. in
  let delivered = ref 0. in
  let unrouted = ref 0. in
  Graph.iter_nodes g (fun dst ->
      let column_total = ref 0. in
      Graph.iter_nodes g (fun src ->
          column_total := !column_total +. Traffic_matrix.get tm ~src ~dst);
      if !column_total > 0. then begin
        let rspf = Reverse_spf.compute ?enabled g ~cost dst in
        Graph.iter_nodes g (fun src ->
            if not (Reverse_spf.reaches rspf src) then
              unrouted := !unrouted +. Traffic_matrix.get tm ~src ~dst);
        delivered :=
          !delivered
          +. spread_destination g rspf
               ~demand:(fun src -> Traffic_matrix.get tm ~src ~dst)
               ~offered
      end);
  { offered_bps = offered; delivered_bps = !delivered; unrouted_bps = !unrouted }

type path_expectation = {
  expected_hops : float;
  expected_delay_s : float;
  delivery_fraction : float;
}

let expectation ?(link_loss = fun _ -> 0.) rspf ~link_delay_s src =
  if not (Reverse_spf.reaches rspf src) then None
  else begin
    let memo = Hashtbl.create 16 in
    let rec from node =
      if Node.equal node (Reverse_spf.destination rspf) then (0., 0., 1.)
      else
        match Hashtbl.find_opt memo (Node.to_int node) with
        | Some v -> v
        | None ->
          let hops = Reverse_spf.next_hops rspf node in
          let k = float_of_int (List.length hops) in
          let result =
            List.fold_left
              (fun (h, d, s) (l : Link.t) ->
                let h', d', s' = from l.Link.dst in
                ( h +. ((1. +. h') /. k),
                  d +. ((link_delay_s l +. d') /. k),
                  s +. ((1. -. link_loss l) *. s' /. k) ))
              (0., 0., 0.) hops
          in
          Hashtbl.add memo (Node.to_int node) result;
          result
    in
    let expected_hops, expected_delay_s, delivery_fraction = from src in
    Some { expected_hops; expected_delay_s; delivery_fraction }
  end

let split_fractions rspf ~src =
  (* Push a unit of demand from [src] down the DAG, recording per-link
     fractions as it splits. *)
  let fractions = Hashtbl.create 16 in
  let through = Hashtbl.create 16 in
  let add table key v =
    Hashtbl.replace table key
      (v +. Option.value ~default:0. (Hashtbl.find_opt table key))
  in
  Hashtbl.replace through (Node.to_int src) 1.;
  List.iter
    (fun node ->
      let load =
        Option.value ~default:0. (Hashtbl.find_opt through (Node.to_int node))
      in
      if load > 0. && not (Node.equal node (Reverse_spf.destination rspf))
      then begin
        let hops = Reverse_spf.next_hops rspf node in
        let share = load /. float_of_int (List.length hops) in
        List.iter
          (fun (l : Link.t) ->
            add fractions (Link.id_to_int l.Link.id) share;
            add through (Node.to_int l.Link.dst) share)
          hops
      end)
    (Reverse_spf.nodes_by_descending_distance rspf);
  Hashtbl.fold (fun lid f acc -> (Link.id_of_int lid, f) :: acc) fractions []
  |> List.sort (fun (a, _) (b, _) -> Link.id_compare a b)

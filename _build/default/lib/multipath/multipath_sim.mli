open! Import

(** The flow simulator's control loop with ECMP forwarding.

    Identical 10-second routing-period structure to
    {!Routing_sim.Flow_sim} — measured (analytic M/M/1/K) delays feed the
    metric, significant changes flood, everyone reroutes — but traffic is
    spread over {e all} equal-cost paths instead of a single tree.  This is
    the §4.5 extension: with it, a single large flow can use both of two
    parallel trunks at once, removing the limit cycle single-path HN-SPF
    falls into when one indivisible flow dominates a link. *)

type period_stats = {
  time_s : float;
  offered_bps : float;
  delivered_bps : float;  (** after per-link M/M/1/K loss *)
  dropped_bps : float;
  mean_delay_s : float;  (** delivered-weighted expected one-way delay *)
  updates : int;
  update_bits : float;
  max_utilization : float;
}

type t

val create : Graph.t -> Metric.kind -> Traffic_matrix.t -> t

val create_with : Graph.t -> Metric.t -> Traffic_matrix.t -> t

val graph : t -> Graph.t

val metric : t -> Metric.t

val step : t -> period_stats

val run : t -> periods:int -> period_stats list

val link_utilization : t -> Link.id -> float
(** Offered/capacity in the most recent period (0 before any step). *)

val link_cost : t -> Link.id -> int

val history : t -> period_stats list
(** Oldest first. *)

val mean_delivered_bps : t -> skip:int -> float
(** Average delivered rate over the retained periods after [skip]. *)

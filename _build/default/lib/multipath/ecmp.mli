open! Import

(** Equal-cost multipath traffic spreading.

    §4.5: single-path routing "will be most effective when network traffic
    consists of several small node-to-node flows.  To accomplish
    load-sharing when network traffic is dominated by several large flows
    would require a multi-path routing algorithm."  This module is that
    extension: every flow is split equally across its node's equal-cost
    next hops, recursively, so one large flow can ride several paths at
    once.

    Loads are computed per destination by propagating demand down the ECMP
    DAG in order of decreasing distance-to-destination. *)

type loads = {
  offered_bps : float array;  (** per link id *)
  delivered_bps : float;  (** demand that reached a destination *)
  unrouted_bps : float;  (** demand with no route at all *)
}

val spread :
  ?enabled:(Link.id -> bool) ->
  Graph.t ->
  cost:(Link.id -> int) ->
  Traffic_matrix.t ->
  loads
(** Per-link offered load under ECMP splitting of the whole matrix. *)

val spread_destination :
  Graph.t ->
  Reverse_spf.t ->
  demand:(Node.t -> float) ->
  offered:float array ->
  float
(** Spread one destination's demand column down its ECMP DAG, accumulating
    into [offered] (indexed by link id); returns the demand that reached
    the destination.  Sources that cannot reach it contribute nothing. *)

type path_expectation = {
  expected_hops : float;  (** mean links traversed over all splits *)
  expected_delay_s : float;  (** mean path delay given per-link delays *)
  delivery_fraction : float;  (** probability of surviving per-link loss *)
}

val expectation :
  ?link_loss:(Link.t -> float) ->
  Reverse_spf.t ->
  link_delay_s:(Link.t -> float) ->
  Node.t ->
  path_expectation option
(** Expected hop count, delay and survival from a source over the ECMP DAG
    to the map's destination ([None] if unreachable).  [link_loss] (default
    zero) is each link's drop probability.  Linear in the DAG size via
    memoization. *)

val split_fractions :
  Reverse_spf.t -> src:Node.t -> (Link.id * float) list
(** Fraction of a [src]->destination flow carried by each link (nonzero
    entries only), summing to 1 when the destination is reachable.  Mostly
    a test/debug aid; {!spread} does this for the whole matrix at once. *)

open! Import

type path = { links : Link.t list; cost : int }

let path_nodes path ~src =
  src :: List.map (fun (l : Link.t) -> l.Link.dst) path.links

let path_cost ~cost links =
  List.fold_left (fun acc (l : Link.t) -> acc + cost l.Link.id) 0 links

let shortest ?enabled g ~cost ~src ~dst =
  let tree = Dijkstra.compute ?enabled g ~cost src in
  if Spf_tree.reached tree dst && not (Node.equal src dst) then
    Some { links = Spf_tree.path tree dst; cost = Spf_tree.dist tree dst }
  else None

(* Paths compare by cost, then lexicographically by link ids so the
   candidate set is totally ordered and duplicates are detectable. *)
let path_ids p = List.map (fun (l : Link.t) -> Link.id_to_int l.Link.id) p.links

let compare_path a b =
  match Int.compare a.cost b.cost with
  | 0 -> compare (path_ids a) (path_ids b)
  | c -> c

let k_shortest ?(enabled = fun _ -> true) g ~cost ~src ~dst ~k =
  if k < 1 then invalid_arg "Yen.k_shortest: k < 1";
  if Node.equal src dst then invalid_arg "Yen.k_shortest: src = dst";
  match shortest ~enabled g ~cost ~src ~dst with
  | None -> []
  | Some first ->
    let accepted = ref [ first ] in
    let candidates = ref [] in
    let add_candidate p =
      if
        (not (List.exists (fun q -> compare_path p q = 0) !candidates))
        && not (List.exists (fun q -> path_ids p = path_ids q) !accepted)
      then candidates := p :: !candidates
    in
    let rec grow () =
      if List.length !accepted >= k then ()
      else begin
        let prev = List.hd !accepted in
        let prev_nodes = Array.of_list (path_nodes prev ~src) in
        let prev_links = Array.of_list prev.links in
        (* One spur attempt per node of the last accepted path. *)
        Array.iteri
          (fun i spur_node ->
            if i < Array.length prev_links then begin
              let root_links = Array.to_list (Array.sub prev_links 0 i) in
              let root_cost = path_cost ~cost root_links in
              (* Block the next link of every known path sharing this
                 root, so the spur must deviate here. *)
              let blocked_links = Hashtbl.create 8 in
              List.iter
                (fun p ->
                  let ids = path_ids p in
                  let root_ids = List.map (fun (l : Link.t) -> Link.id_to_int l.Link.id) root_links in
                  let rec shares a b =
                    match (a, b) with
                    | [], _ -> true
                    | x :: a', y :: b' -> x = y && shares a' b'
                    | _ -> false
                  in
                  if shares root_ids ids then
                    match List.nth_opt p.links i with
                    | Some l -> Hashtbl.replace blocked_links (Link.id_to_int l.Link.id) ()
                    | None -> ())
                !accepted;
              (* Block the root path's nodes (except the spur) so the
                 result is loopless. *)
              let blocked_nodes = Hashtbl.create 8 in
              for j = 0 to i - 1 do
                Hashtbl.replace blocked_nodes (Node.to_int prev_nodes.(j)) ()
              done;
              let spur_enabled lid =
                enabled lid
                && (not (Hashtbl.mem blocked_links (Link.id_to_int lid)))
                &&
                let l = Graph.link g lid in
                (not (Hashtbl.mem blocked_nodes (Node.to_int l.Link.src)))
                && not (Hashtbl.mem blocked_nodes (Node.to_int l.Link.dst))
              in
              match shortest ~enabled:spur_enabled g ~cost ~src:spur_node ~dst with
              | None -> ()
              | Some spur ->
                add_candidate
                  { links = root_links @ spur.links;
                    cost = root_cost + spur.cost }
            end)
          prev_nodes;
        match List.sort compare_path !candidates with
        | [] -> ()
        | best :: rest ->
          candidates := rest;
          accepted := best :: !accepted;
          grow ()
      end
    in
    grow ();
    List.sort compare_path !accepted

open! Import

(** Yen's algorithm: the k shortest loopless paths between two nodes.

    BBN's own multi-path study (Haimo et al., BBN Report 6363 — the
    paper's reference [6]) needed candidate path sets beyond the ECMP ties;
    k-shortest-paths is the standard way to enumerate them, and the
    analysis layer uses it to quantify "alternate paths only slightly
    longer" (Fig 7) exactly rather than via the one-link probe. *)

type path = {
  links : Link.t list;  (** in forwarding order, src to dst *)
  cost : int;  (** sum of link costs, routing units *)
}

val path_nodes : path -> src:Node.t -> Node.t list
(** The node sequence [src; ...; dst]. *)

val shortest :
  ?enabled:(Link.id -> bool) ->
  Graph.t ->
  cost:(Link.id -> int) ->
  src:Node.t ->
  dst:Node.t ->
  path option
(** Just the shortest path (Dijkstra), as a [path]. *)

val k_shortest :
  ?enabled:(Link.id -> bool) ->
  Graph.t ->
  cost:(Link.id -> int) ->
  src:Node.t ->
  dst:Node.t ->
  k:int ->
  path list
(** Up to [k] distinct loopless paths in nondecreasing cost order (fewer
    when the graph doesn't have [k]).  [k_shortest ~k:1] agrees with
    {!shortest}.  @raise Invalid_argument if [k < 1] or [src = dst]. *)

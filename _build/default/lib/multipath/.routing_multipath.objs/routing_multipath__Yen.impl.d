lib/multipath/yen.ml: Array Dijkstra Graph Hashtbl Import Int Link List Node Spf_tree

lib/multipath/ecmp.mli: Graph Import Link Node Reverse_spf Traffic_matrix

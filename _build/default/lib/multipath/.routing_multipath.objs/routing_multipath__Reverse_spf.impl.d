lib/multipath/reverse_spf.ml: Array Graph Import Int Link List Node Priority_queue

lib/multipath/multipath_sim.mli: Graph Import Link Metric Traffic_matrix

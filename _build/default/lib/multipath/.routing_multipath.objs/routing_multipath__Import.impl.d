lib/multipath/import.ml: Routing_flooding Routing_metric Routing_spf Routing_topology

lib/multipath/reverse_spf.mli: Graph Import Link Node

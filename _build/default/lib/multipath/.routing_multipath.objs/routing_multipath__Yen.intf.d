lib/multipath/yen.mli: Graph Import Link Node

lib/multipath/ecmp.ml: Array Graph Hashtbl Import Link List Node Option Reverse_spf Traffic_matrix

lib/multipath/multipath_sim.ml: Array Broadcast Ecmp Float Flooder Graph Hashtbl Import Link List Metric Node Option Queueing Reverse_spf Traffic_matrix Units

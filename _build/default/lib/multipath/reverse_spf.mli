open! Import

(** Destination-rooted shortest-path computation.

    Multipath forwarding is naturally destination-based: every node needs
    its distance {e to} the destination and the set of outgoing links that
    lie on {e some} shortest path there (the ECMP relaxation of SPF's
    single parent).  This runs Dijkstra over the reversed graph. *)

type t

val compute :
  ?enabled:(Link.id -> bool) ->
  Graph.t ->
  cost:(Link.id -> int) ->
  Node.t ->
  t
(** [compute g ~cost dst]: distances of every node {e to} [dst]. *)

val destination : t -> Node.t

val dist_to : t -> Node.t -> int
(** Routing units to the destination; [max_int] when it cannot reach. *)

val reaches : t -> Node.t -> bool

val next_hops : t -> Node.t -> Link.t list
(** Every outgoing link [l] of the node with
    [cost l + dist_to (head l) = dist_to node] — the equal-cost next-hop
    set, in ascending link-id order.  Empty for the destination itself and
    for nodes that cannot reach it. *)

val nodes_by_descending_distance : t -> Node.t list
(** Nodes that reach the destination, farthest first (the destination
    last) — the processing order for load propagation over the ECMP DAG,
    which is acyclic because distances strictly decrease along next
    hops. *)

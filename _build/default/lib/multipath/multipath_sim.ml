open! Import

type period_stats = {
  time_s : float;
  offered_bps : float;
  delivered_bps : float;
  dropped_bps : float;
  mean_delay_s : float;
  updates : int;
  update_bits : float;
  max_utilization : float;
}

type t = {
  graph : Graph.t;
  metric : Metric.t;
  tm : Traffic_matrix.t;
  flooders : Flooder.t array;
  utilization : float array;
  mutable period : int;
  mutable history : period_stats list; (* newest first *)
}

let create_with graph metric tm =
  { graph;
    metric;
    tm;
    flooders =
      Array.init (Graph.node_count graph) (fun i ->
          Flooder.create graph ~owner:(Node.of_int i));
    utilization = Array.make (Graph.link_count graph) 0.;
    period = 0;
    history = [] }

let create graph kind tm = create_with graph (Metric.create kind graph) tm

let graph t = t.graph

let metric t = t.metric

let step t =
  let cost = Metric.cost_fn t.metric in
  (* Pass 1: destination-rooted ECMP DAGs and per-link offered load; keep
     the DAGs for the delay pass. *)
  let offered = Array.make (Graph.link_count t.graph) 0. in
  let rspfs = ref [] in
  let unrouted = ref 0. in
  Graph.iter_nodes t.graph (fun dst ->
      let column = ref 0. in
      Graph.iter_nodes t.graph (fun src ->
          column := !column +. Traffic_matrix.get t.tm ~src ~dst);
      if !column > 0. then begin
        let rspf = Reverse_spf.compute t.graph ~cost dst in
        Graph.iter_nodes t.graph (fun src ->
            if not (Reverse_spf.reaches rspf src) then
              unrouted := !unrouted +. Traffic_matrix.get t.tm ~src ~dst);
        ignore
          (Ecmp.spread_destination t.graph rspf
             ~demand:(fun src -> Traffic_matrix.get t.tm ~src ~dst)
             ~offered);
        rspfs := (dst, rspf) :: !rspfs
      end);
  Graph.iter_links t.graph (fun (l : Link.t) ->
      t.utilization.(Link.id_to_int l.Link.id) <-
        offered.(Link.id_to_int l.Link.id) /. Link.capacity_bps l);
  (* Pass 2: delivered-weighted expected delays and loss over the DAGs. *)
  let link_delay (l : Link.t) =
    Queueing.mm1k_delay_s l
      ~utilization:t.utilization.(Link.id_to_int l.Link.id)
  in
  let link_loss (l : Link.t) =
    Queueing.mm1k_blocking
      ~utilization:t.utilization.(Link.id_to_int l.Link.id)
  in
  let offered_total = ref 0. in
  let delivered = ref 0. in
  let delay_weighted = ref 0. in
  List.iter
    (fun (dst, rspf) ->
      Graph.iter_nodes t.graph (fun src ->
          let demand = Traffic_matrix.get t.tm ~src ~dst in
          if demand > 0. then begin
            offered_total := !offered_total +. demand;
            match
              Ecmp.expectation ~link_loss rspf ~link_delay_s:link_delay src
            with
            | None -> ()
            | Some e ->
              let carried = demand *. e.Ecmp.delivery_fraction in
              delivered := !delivered +. carried;
              delay_weighted :=
                !delay_weighted +. (e.Ecmp.expected_delay_s *. carried)
          end))
    !rspfs;
  offered_total := !offered_total +. !unrouted;
  (* Metric pass: same loop as the single-path simulator. *)
  let changed_by_origin = Hashtbl.create 16 in
  Graph.iter_links t.graph (fun (l : Link.t) ->
      let measured =
        Queueing.mm1k_delay_s l
          ~utilization:t.utilization.(Link.id_to_int l.Link.id)
      in
      match Metric.period_update t.metric l.Link.id ~measured_delay_s:measured with
      | Some c ->
        let origin = Node.to_int l.Link.src in
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt changed_by_origin origin)
        in
        Hashtbl.replace changed_by_origin origin ((l.Link.id, c) :: existing)
      | None -> ());
  let updates = ref 0 in
  let update_bits = ref 0. in
  Hashtbl.iter
    (fun origin costs ->
      let update = Flooder.originate t.flooders.(origin) ~costs in
      let outcome = Broadcast.flood t.graph t.flooders update in
      incr updates;
      update_bits := !update_bits +. outcome.Broadcast.bits)
    changed_by_origin;
  t.period <- t.period + 1;
  let stats =
    { time_s = float_of_int t.period *. Units.routing_period_s;
      offered_bps = !offered_total;
      delivered_bps = !delivered;
      dropped_bps = !offered_total -. !delivered;
      mean_delay_s =
        (if !delivered > 0. then !delay_weighted /. !delivered else 0.);
      updates = !updates;
      update_bits = !update_bits;
      max_utilization = Array.fold_left Float.max 0. t.utilization }
  in
  t.history <- stats :: t.history;
  stats

let run t ~periods = List.init periods (fun _ -> step t)

let link_utilization t lid = t.utilization.(Link.id_to_int lid)

let link_cost t lid = Metric.cost t.metric lid

let history t = List.rev t.history

let mean_delivered_bps t ~skip =
  let kept = List.filteri (fun i _ -> i >= skip) (history t) in
  match kept with
  | [] -> 0.
  | _ ->
    List.fold_left (fun acc s -> acc +. s.delivered_bps) 0. kept
    /. float_of_int (List.length kept)

(* Substrate aliases opened by every module in this library. *)

module Node = Routing_topology.Node
module Line_type = Routing_topology.Line_type
module Link = Routing_topology.Link
module Graph = Routing_topology.Graph
module Traffic_matrix = Routing_topology.Traffic_matrix
module Dijkstra = Routing_spf.Dijkstra
module Spf_tree = Routing_spf.Spf_tree
module Priority_queue = Routing_spf.Priority_queue
module Metric = Routing_metric.Metric
module Queueing = Routing_metric.Queueing
module Units = Routing_metric.Units
module Flooder = Routing_flooding.Flooder
module Broadcast = Routing_flooding.Broadcast

open! Import

type t = {
  graph : Graph.t;
  destination : Node.t;
  dist : int array; (* to destination, per node *)
  hops : (Link.t list) array; (* equal-cost next-hop sets *)
}

let compute ?(enabled = fun _ -> true) g ~cost dst =
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  let settled = Array.make n false in
  let heap = Priority_queue.create ~compare:Int.compare in
  dist.(Node.to_int dst) <- 0;
  Priority_queue.push heap 0 dst;
  let rec run () =
    match Priority_queue.pop_min heap with
    | None -> ()
    | Some (d, node) ->
      let i = Node.to_int node in
      if not settled.(i) then begin
        settled.(i) <- true;
        (* Relax the *incoming* links: a shorter way for their tails. *)
        List.iter
          (fun (l : Link.t) ->
            if enabled l.Link.id then begin
              let j = Node.to_int l.Link.src in
              let d' = d + cost l.Link.id in
              if d' < dist.(j) then begin
                dist.(j) <- d';
                Priority_queue.push heap d' l.Link.src
              end
            end)
          (Graph.in_links g node)
      end;
      run ()
  in
  run ();
  let hops =
    Array.init n (fun i ->
        if i = Node.to_int dst || dist.(i) = max_int then []
        else
          List.filter
            (fun (l : Link.t) ->
              enabled l.Link.id
              && dist.(Node.to_int l.Link.dst) <> max_int
              && cost l.Link.id + dist.(Node.to_int l.Link.dst) = dist.(i))
            (Graph.out_links g (Node.of_int i)))
  in
  { graph = g; destination = dst; dist; hops }

let destination t = t.destination

let dist_to t node = t.dist.(Node.to_int node)

let reaches t node = t.dist.(Node.to_int node) <> max_int

let next_hops t node = t.hops.(Node.to_int node)

let nodes_by_descending_distance t =
  Graph.nodes t.graph
  |> List.filter (reaches t)
  |> List.sort (fun a b -> Int.compare (dist_to t b) (dist_to t a))

(** Recursive smoothing filters.

    The HNM smooths its utilization estimate with the two-tap recursive
    filter [avg' = a * sample + (1 - a) * avg] with [a = 0.5] (paper §4.1,
    Fig 3).  This module provides that filter in general form plus a small
    windowed moving average used by instrumentation. *)

type ewma

val ewma : gain:float -> ewma
(** [ewma ~gain] creates an exponentially-weighted moving average where each
    update computes [gain * sample + (1 - gain) * previous].
    @raise Invalid_argument unless [0 < gain <= 1]. *)

val ewma_update : ewma -> float -> float
(** Feed one sample; returns the new average.  The first sample initializes
    the average directly (no bias toward zero). *)

val ewma_update_into :
  ewma array -> mask:bool array -> values:float array -> unit
(** Feed [values.(i)] to [filters.(i)] and store the new average back into
    [values.(i)], for every [i] with [mask.(i)] set; unmasked entries are
    left untouched, filter and value alike.  One batch call keeps the float
    traffic inside this module so allocation-free callers avoid the
    per-element boxing of a cross-library {!ewma_update}. *)

val ewma_value : ewma -> float
(** Current average; [0.] before any sample. *)

val ewma_is_primed : ewma -> bool
(** [true] once at least one sample has been folded in. *)

val ewma_reset : ewma -> unit

val ewma_set : ewma -> float -> unit
(** Force the current average, e.g. to ease in a new link at a chosen
    starting point. *)

type moving_average

val moving_average : window:int -> moving_average
(** Simple moving average over the last [window] samples.
    @raise Invalid_argument if [window <= 0]. *)

val moving_average_update : moving_average -> float -> float

val moving_average_value : moving_average -> float
(** Average of the retained samples; [0.] before any sample. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: n <= 0";
  (* Rejection-free for our purposes: modulo bias is negligible since
     n is always far below 2^63 in this codebase. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  u /. 9007199254740992. *. x (* 2^53 *)

let bool t = Int64.logand (bits64 t) 1L = 1L

let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean <= 0";
  let u = ref (float t 1.) in
  if !u = 0. then u := epsilon_float;
  -.mean *. log !u

let poisson t ~mean =
  if mean <= 0. then 0
  else if mean < 30. then begin
    let limit = exp (-.mean) in
    let rec draw k p =
      let p = p *. float t 1. in
      if p <= limit then k else draw (k + 1) p
    in
    draw 0 1.
  end
  else begin
    (* Box-Muller normal approximation, adequate for workload generation. *)
    let u1 = Float.max epsilon_float (float t 1.) in
    let u2 = float t 1. in
    let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    max 0 (int_of_float (Float.round (mean +. (z *. sqrt mean))))
  end

let normal t =
  (* Box-Muller, cosine branch; one draw per call keeps the stream
     position a simple function of the call count. *)
  let u1 = Float.max epsilon_float (float t 1.) in
  let u2 = float t 1. in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let pareto t ~alpha ~x_min =
  if alpha <= 0. then invalid_arg "Rng.pareto: alpha <= 0";
  if x_min <= 0. then invalid_arg "Rng.pareto: x_min <= 0";
  let u = ref (float t 1.) in
  if !u = 0. then u := epsilon_float;
  x_min *. (!u ** (-1. /. alpha))

let lognormal t ~mu ~sigma =
  if sigma < 0. then invalid_arg "Rng.lognormal: sigma < 0";
  exp (mu +. (sigma *. normal t))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

(* [ewma] is deliberately all-float: OCaml stores float-only records flat,
   so [t.value <- ...] on the per-link hot path writes a raw double instead
   of boxing.  [primed] rides along as 0. / 1. to keep the record flat. *)
type ewma = { gain : float; mutable value : float; mutable primed : float }

let ewma ~gain =
  if gain <= 0. || gain > 1. then invalid_arg "Filter.ewma: gain out of (0,1]";
  { gain; value = 0.; primed = 0. }

let[@inline] ewma_update t x =
  if t.primed <> 0. then t.value <- (t.gain *. x) +. ((1. -. t.gain) *. t.value)
  else begin
    t.value <- x;
    t.primed <- 1.
  end;
  t.value

(* One call per batch instead of one cross-module call per element: dev
   builds compile interfaces -opaque, so a per-element [ewma_update] from
   another library boxes its float argument and result. *)
let ewma_update_into filters ~mask ~values =
  let n = Array.length filters in
  for i = 0 to n - 1 do
    if mask.(i) then values.(i) <- ewma_update filters.(i) values.(i)
  done
[@@hot_path]

let[@inline] ewma_value t = t.value

let[@inline] ewma_is_primed t = t.primed <> 0.

let ewma_reset t =
  t.value <- 0.;
  t.primed <- 0.

let ewma_set t x =
  t.value <- x;
  t.primed <- 1.

type moving_average = {
  samples : float array;
  mutable next : int;
  mutable filled : int;
  mutable sum : float;
}

let moving_average ~window =
  if window <= 0 then invalid_arg "Filter.moving_average: window <= 0";
  { samples = Array.make window 0.; next = 0; filled = 0; sum = 0. }

let moving_average_update t x =
  let cap = Array.length t.samples in
  if t.filled = cap then t.sum <- t.sum -. t.samples.(t.next)
  else t.filled <- t.filled + 1;
  t.samples.(t.next) <- x;
  t.sum <- t.sum +. x;
  t.next <- (t.next + 1) mod cap;
  t.sum /. float_of_int t.filled

let moving_average_value t =
  if t.filled = 0 then 0. else t.sum /. float_of_int t.filled

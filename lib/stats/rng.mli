(** Deterministic pseudo-random numbers for reproducible experiments.

    All stochastic choices in the repository (topology generation, traffic
    matrices, Poisson arrivals) draw from a [t] seeded explicitly, so every
    experiment in EXPERIMENTS.md is reproducible bit-for-bit.  The generator
    is splitmix64: tiny state, good statistical quality, trivially
    splittable. *)

type t

val create : int -> t
(** [create seed] builds an independent generator. *)

val split : t -> t
(** A generator statistically independent of the parent; the parent
    advances. *)

val copy : t -> t
(** A snapshot that will replay the same stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> mean:float -> float
(** Exponentially distributed, for Poisson inter-arrival times.
    @raise Invalid_argument if [mean <= 0]. *)

val poisson : t -> mean:float -> int
(** Poisson-distributed count (Knuth's method below mean 30, normal
    approximation above for speed). *)

val normal : t -> float
(** Standard normal draw (Box–Muller; one uniform pair per call). *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto-distributed with tail exponent [alpha] and scale [x_min]
    (so every draw is at least [x_min]) — heavy-tailed flow sizes.
    @raise Invalid_argument if [alpha <= 0] or [x_min <= 0]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal draw [exp (mu + sigma·Z)].
    @raise Invalid_argument if [sigma < 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)

type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable n : int;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  { lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    under = 0;
    over = 0;
    n = 0 }

let bins t = Array.length t.counts

let add_many t x k =
  t.n <- t.n + k;
  if x < t.lo then t.under <- t.under + k
  else if x >= t.hi then t.over <- t.over + k
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    (* Guard against floating rounding putting x exactly on the top edge. *)
    let i = if i >= bins t then bins t - 1 else i in
    t.counts.(i) <- t.counts.(i) + k
  end

let add t x = add_many t x 1

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || bins a <> bins b then
    invalid_arg "Histogram.merge: incompatible bin layouts";
  { lo = a.lo;
    hi = a.hi;
    width = a.width;
    counts = Array.init (bins a) (fun i -> a.counts.(i) + b.counts.(i));
    under = a.under + b.under;
    over = a.over + b.over;
    n = a.n + b.n }

let equal a b =
  a.lo = b.lo && a.hi = b.hi
  && Array.length a.counts = Array.length b.counts
  && a.under = b.under && a.over = b.over && a.n = b.n
  && Array.for_all2 (fun x y -> x = y) a.counts b.counts

let count t = t.n

let bin_count t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_count";
  t.counts.(i)

let underflow t = t.under

let overflow t = t.over

let bin_bounds t i =
  if i < 0 || i >= bins t then invalid_arg "Histogram.bin_bounds";
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let midpoint t i =
  let lo, hi = bin_bounds t i in
  (lo +. hi) /. 2.

let percentile t p =
  if t.n = 0 then nan
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let target = p /. 100. *. float_of_int t.n in
    let rec scan i acc =
      if i >= bins t then t.hi
      else begin
        let c = t.counts.(i) in
        let acc' = acc +. float_of_int c in
        if acc' >= target && c > 0 then begin
          let frac = (target -. acc) /. float_of_int c in
          let lo, _ = bin_bounds t i in
          lo +. (frac *. t.width)
        end
        else scan (i + 1) acc'
      end
    in
    let under = float_of_int t.under in
    if under >= target && t.under > 0 then t.lo else scan 0 under
  end

let mean t =
  if t.n = 0 then nan
  else begin
    let sum = ref (float_of_int t.under *. t.lo) in
    sum := !sum +. (float_of_int t.over *. t.hi);
    for i = 0 to bins t - 1 do
      sum := !sum +. (float_of_int t.counts.(i) *. midpoint t i)
    done;
    !sum /. float_of_int t.n
  end

let to_list t =
  let first = ref (bins t) and last = ref (-1) in
  for i = 0 to bins t - 1 do
    if t.counts.(i) > 0 then begin
      if i < !first then first := i;
      if i > !last then last := i
    end
  done;
  if !last < 0 then []
  else begin
    let rec build i acc =
      if i < !first then acc
      else begin
        let lo, hi = bin_bounds t i in
        build (i - 1) ((lo, hi, t.counts.(i)) :: acc)
      end
    in
    build !last []
  end

let pp ppf t =
  let entries = to_list t in
  let peak = List.fold_left (fun acc (_, _, c) -> max acc c) 1 entries in
  let bar c = String.make (max 1 (c * 40 / peak)) '#' in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (lo, hi, c) ->
      if c > 0 then
        Format.fprintf ppf "[%8.3g, %8.3g) %6d %s@," lo hi c (bar c))
    entries;
  Format.fprintf ppf "@]"

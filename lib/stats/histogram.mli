(** Fixed-width-bin histograms with percentile queries.

    Used for delay distributions and path-length distributions.  Values below
    the range land in an underflow bin, values above in an overflow bin, so
    {!count} always equals the number of {!add} calls. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width bins.
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val add : t -> float -> unit

val add_many : t -> float -> int -> unit
(** [add_many t x k] records [k] occurrences of [x]. *)

val merge : t -> t -> t
(** A fresh histogram with the bin-wise sum of both inputs — the shard
    combiner for per-domain or per-run histograms.  Associative and
    commutative (bin counts are exact; only {!mean} was ever estimated).
    @raise Invalid_argument when the bin layouts differ. *)

val equal : t -> t -> bool
(** Same layout and identical counts (including under/overflow). *)

val count : t -> int

val bins : t -> int
(** Number of regular bins (excluding under/overflow). *)

val bin_count : t -> int -> int
(** Occupancy of bin [i] (0-based, excluding under/overflow).
    @raise Invalid_argument when out of range. *)

val underflow : t -> int

val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** Lower (inclusive) and upper (exclusive) edge of bin [i]. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]: linear-interpolated estimate of
    the [p]-th percentile from bin midpoints.  Underflow samples count as
    [lo], overflow as [hi].  [nan] when the histogram is empty. *)

val mean : t -> float
(** Mean estimated from bin midpoints; exact values are not retained. *)

val to_list : t -> (float * float * int) list
(** [(lo, hi, count)] per bin, in ascending order, omitting empty extremes. *)

val pp : Format.formatter -> t -> unit
(** A compact multi-line ASCII bar rendering, for debugging. *)

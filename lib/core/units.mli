open! Import

(** Routing units — the integer cost currency of ARPANET routing updates.

    One routing unit represents 10 ms of delay under the delay metric; the
    HNM reuses the same integer field with its own normalization.  The
    anchor values reproduce the ratios stated in the paper: a 56 kb/s
    terrestrial line's D-SPF bias is 2 units; the maximum reportable cost
    is 254 units, so "a heavily loaded 9.6 kb/s line can appear 127 times
    less attractive than a lightly loaded 56 kb/s line" (§3.2); and one
    {e hop} in HN-SPF normalization is 30 units (§4.2). *)

val unit_ms : float
(** Milliseconds of measured delay per routing unit (10 ms). *)

val max_cost : int
(** 254 — the largest reportable link cost. *)

val hop : int
(** 30 — routing units per hop: the cost an idle 56 kb/s terrestrial line
    reports under HN-SPF, used network-wide to express costs in hops. *)

val of_delay : float -> int
(** [of_delay seconds] converts a measured delay to routing units, rounding
    to nearest and clamping to [\[1, max_cost\]]. *)

val of_delay_into :
  up:bool array -> delay_s:float array -> units:int array -> unit
(** Batch {!of_delay} over every index with [up.(i)] set (others are left
    untouched) — keeps D-SPF's per-link conversion inside this module so
    the flow simulator's period update stays allocation-free. *)

val to_delay : int -> float
(** Inverse of {!of_delay} (seconds at bucket center). *)

val hops_of_cost : int -> float
(** Express a cost in hops: [cost / 30.]. *)

val cost_of_hops : float -> int
(** Round a hop count back to routing units, clamped to
    [\[1, max_cost\]]. *)

val routing_period_s : float
(** 10 s — the measurement/reporting interval (§2.2). *)

val max_update_interval_s : float
(** 50 s — a PSN floods an update at least this often (§2.2). *)

val average_packet_bits : float
(** 600 — the network-wide average packet size used by the M/M/1
    estimator (§4.1). *)

open! Import

type t = { link : Link.t; bias : int; mutable last : int }

let bias lt =
  max 1
    (int_of_float (Float.ceil (Queueing.service_time_s lt *. 1000. /. Units.unit_ms)))

let cost_of_delay link ~delay_s =
  max (bias link.Link.line_type) (Units.of_delay delay_s)

let create link =
  let b = bias link.Link.line_type in
  let idle =
    Link.transmission_s link ~bits:Units.average_packet_bits
    +. link.Link.propagation_s
  in
  { link; bias = b; last = max b (Units.of_delay idle) }

let link t = t.link

let[@inline] apply_units t ~units =
  let c = max t.bias units in
  t.last <- c;
  c

let[@inline] period_update t ~measured_delay_s =
  apply_units t ~units:(Units.of_delay measured_delay_s)

let current_cost t = t.last

let cost_of_utilization link ~utilization =
  cost_of_delay link ~delay_s:(Queueing.delay_s link ~utilization)

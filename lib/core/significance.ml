open! Import

type policy = Decaying of { initial : float; step : float } | Fixed of int

let dspf_policy = Decaying { initial = 6.4; step = 1.28 }

let hnm_policy lt =
  Fixed (Hnm_params.for_line_type lt).Hnm_params.min_change

(* The threshold is held in centi-units (hundredths of a cost unit) so the
   per-period decay on the quiet path is a plain int store — a float field
   in this mixed record would box on every write.  Cost deltas are ints, so
   [delta * 100 >= threshold_c] reproduces [float delta >= threshold]
   exactly for thresholds representable in centi-units (all built-in
   policies are). *)
type t = {
  initial_c : int;  (* threshold reset value, centi-units *)
  step_c : int;  (* decay per quiet period, centi-units; 0 = fixed *)
  mutable last_flooded : int;
  mutable periods : int;  (* periods since last flood *)
  mutable threshold_c : int;  (* current threshold, centi-units *)
}

let centi x = int_of_float (Float.round (x *. 100.))

let create policy ~initial_cost =
  let initial_c, step_c =
    match policy with
    | Decaying { initial; step } -> (centi initial, centi step)
    | Fixed k -> (k * 100, 0)
  in
  { initial_c;
    step_c;
    last_flooded = initial_cost;
    periods = 0;
    threshold_c = initial_c }

let last_flooded t = t.last_flooded

let periods_since_flood t = t.periods

let max_quiet_periods =
  int_of_float (Units.max_update_interval_s /. Units.routing_period_s)

let[@inline] consider t ~cost =
  t.periods <- t.periods + 1;
  let delta = abs (cost - t.last_flooded) in
  let significant = delta * 100 >= t.threshold_c in
  let timer_expired = t.periods >= max_quiet_periods in
  if significant || timer_expired then begin
    t.last_flooded <- cost;
    t.periods <- 0;
    t.threshold_c <- t.initial_c;
    true
  end
  else begin
    if t.step_c > 0 then t.threshold_c <- max 0 (t.threshold_c - t.step_c);
    false
  end

let force t ~cost =
  t.last_flooded <- cost;
  t.periods <- 0;
  t.threshold_c <- t.initial_c

open! Import

type kind = Min_hop | Static_capacity | D_spf | Hn_spf

let kind_name = function
  | Min_hop -> "min-hop"
  | Static_capacity -> "static-capacity"
  | D_spf -> "D-SPF"
  | Hn_spf -> "HN-SPF"

let kind_of_name = function
  | "min-hop" | "minhop" -> Some Min_hop
  | "static-capacity" | "static" | "ospf" -> Some Static_capacity
  | "D-SPF" | "dspf" | "d-spf" -> Some D_spf
  | "HN-SPF" | "hnspf" | "hn-spf" -> Some Hn_spf
  | _ -> None

type link_state =
  | Static
  | Static_cost of int
  | Delay of Dspf.t * Significance.t
  | Hop_normalized of Hnm.t * Significance.t

type t = {
  kind : kind;
  graph : Graph.t;
  hnm_config : Link.t -> Hnm.config;  (* used by Hn_spf states *)
  states : link_state array;
  flooded : int array;  (* what the network believes, per link *)
  mutable updates : int;
  (* Batch-update machinery: per-link scratch plus parallel views of the
     HNM states' innards, so {!period_update_all} can run the measurement
     pipeline as staged array sweeps — each stage one cross-module call —
     instead of boxing floats on every link (dev builds compile interfaces
     -opaque, so [@inline] never crosses a module boundary). *)
  scratch_f : float array;
  scratch_i : int array;
  mutable hn_filters : Filter.ewma array;  (* Hn_spf only, else [||] *)
  mutable hn_params : Hnm_params.t array;  (* Hn_spf only, else [||] *)
}

let hnm_significance config h =
  Significance.create
    (Significance.Fixed config.Hnm.params.Hnm_params.min_change)
    ~initial_cost:(Hnm.current_cost h)

let make_state kind hnm_config link =
  match kind with
  | Min_hop -> Static
  | Static_capacity -> Static_cost (Hnm_params.min_cost link)
  | D_spf ->
    let d = Dspf.create link in
    Delay (d, Significance.create Significance.dspf_policy
             ~initial_cost:(Dspf.current_cost d))
  | Hn_spf ->
    let config = hnm_config link in
    let h = Hnm.create_custom config link in
    Hop_normalized (h, hnm_significance config h)

let initial_cost = function
  | Static -> 1
  | Static_cost c -> c
  | Delay (d, _) -> Dspf.current_cost d
  | Hop_normalized (h, _) -> Hnm.current_cost h

(* (Re)build the parallel views the batch update path sweeps over; called
   after any [states.(i)] replacement (creation, link restoration). *)
let refresh_batch_views t =
  match t.kind with
  | Min_hop | Static_capacity | D_spf -> ()
  | Hn_spf ->
    t.hn_filters <-
      Array.map
        (function
          | Hop_normalized (h, _) -> Hnm.average_filter h
          | _ -> assert false)
        t.states;
    t.hn_params <-
      Array.map
        (function Hop_normalized (h, _) -> Hnm.params h | _ -> assert false)
        t.states

let make kind hnm_config graph states =
  let t =
    { kind;
      graph;
      hnm_config;
      states;
      flooded = Array.map initial_cost states;
      updates = 0;
      scratch_f = Array.make (Array.length states) 0.;
      scratch_i = Array.make (Array.length states) 0;
      hn_filters = [||];
      hn_params = [||] }
  in
  refresh_batch_views t;
  t

let create_custom_hnspf hnm_config graph =
  make Hn_spf hnm_config graph
    (Array.init (Graph.link_count graph) (fun i ->
         make_state Hn_spf hnm_config (Graph.link graph (Link.id_of_int i))))

let create kind graph =
  let hnm_config (link : Link.t) = Hnm.default_config link.Link.line_type in
  make kind hnm_config graph
    (Array.init (Graph.link_count graph) (fun i ->
         make_state kind hnm_config (Graph.link graph (Link.id_of_int i))))

let kind t = t.kind

let graph t = t.graph

let cost t lid = t.flooded.(Link.id_to_int lid)

let local_cost t lid =
  match t.states.(Link.id_to_int lid) with
  | Static -> 1
  | Static_cost c -> c
  | Delay (d, _) -> Dspf.current_cost d
  | Hop_normalized (h, _) -> Hnm.current_cost h

let cost_fn t lid = cost t lid

let flood t lid c =
  t.flooded.(Link.id_to_int lid) <- c;
  t.updates <- t.updates + 1

let period_update t lid ~measured_delay_s =
  match t.states.(Link.id_to_int lid) with
  | Static | Static_cost _ -> None
  | Delay (d, sig_state) ->
    let c = Dspf.period_update d ~measured_delay_s in
    if Significance.consider sig_state ~cost:c then begin
      flood t lid c;
      Some c
    end
    else None
  | Hop_normalized (h, sig_state) ->
    let c = Hnm.period_update h ~measured_delay_s in
    if Significance.consider sig_state ~cost:c then begin
      flood t lid c;
      Some c
    end
    else None

(* Batch form of {!period_update} for the flow simulator's hot loop: one
   call per period instead of one per link.  The measurement pipeline runs
   as staged array sweeps — delay→utilization in {!Queueing}, smoothing in
   {!Filter}, the linear transform in {!Hnm_params} — so every float stays
   inside the module that computes it; the per-link finish (movement
   limits, bias floor, significance) crosses module boundaries with
   integers only.  A quiet period allocates nothing. *)
let period_update_all t ~up ~link_delay_s ~changed_ids ~changed_costs =
  let n = Array.length t.states in
  let count = ref 0 in
  (match t.kind with
  | Min_hop | Static_capacity -> ()
  | D_spf ->
    Units.of_delay_into ~up ~delay_s:link_delay_s ~units:t.scratch_i;
    for i = 0 to n - 1 do
      if up.(i) then begin
        match t.states.(i) with
        | Delay (d, sig_state) ->
          let c = Dspf.apply_units d ~units:t.scratch_i.(i) in
          if Significance.consider sig_state ~cost:c then begin
            flood t (Link.id_of_int i) c;
            changed_ids.(!count) <- i;
            changed_costs.(!count) <- c;
            incr count
          end
        | _ -> ()
      end
    done
  | Hn_spf ->
    Queueing.utilization_of_delay_into t.graph ~up ~delay_s:link_delay_s
      ~utilization:t.scratch_f;
    Filter.ewma_update_into t.hn_filters ~mask:up ~values:t.scratch_f;
    Hnm_params.raw_costs_into t.hn_params ~up ~utilization:t.scratch_f
      ~raw:t.scratch_i;
    for i = 0 to n - 1 do
      if up.(i) then begin
        match t.states.(i) with
        | Hop_normalized (h, sig_state) ->
          let c = Hnm.apply_raw h ~raw:t.scratch_i.(i) in
          if Significance.consider sig_state ~cost:c then begin
            flood t (Link.id_of_int i) c;
            changed_ids.(!count) <- i;
            changed_costs.(!count) <- c;
            incr count
          end
        | _ -> ()
      end
    done);
  !count
[@@hot_path]

let period_update_utilization t lid ~utilization =
  let link = Graph.link t.graph lid in
  period_update t lid ~measured_delay_s:(Queueing.delay_s link ~utilization)

let link_up t lid =
  let link = Graph.link t.graph lid in
  let i = Link.id_to_int lid in
  (match t.kind with
  | Min_hop -> ()
  | Static_capacity ->
    flood t lid t.flooded.(i) (* cost unchanged; announce reachability *)
  | D_spf ->
    let d = Dspf.create link in
    let c = Dspf.current_cost d in
    let s = Significance.create Significance.dspf_policy ~initial_cost:c in
    t.states.(i) <- Delay (d, s);
    flood t lid c
  | Hn_spf ->
    let config = t.hnm_config link in
    let h = Hnm.create_custom_easing_in config link in
    let c = Hnm.current_cost h in
    t.states.(i) <- Hop_normalized (h, hnm_significance config h);
    refresh_batch_views t;
    flood t lid c)

let updates_flooded t = t.updates

let reset_update_counter t = t.updates <- 0

let idle_cost kind link =
  match kind with
  | Min_hop -> 1
  | Static_capacity -> Hnm_params.min_cost link
  | D_spf -> Dspf.current_cost (Dspf.create link)
  | Hn_spf -> Hnm.current_cost (Hnm.create link)

let equilibrium_cost kind link ~utilization =
  match kind with
  | Min_hop -> 1
  | Static_capacity -> Hnm_params.min_cost link
  | D_spf -> Dspf.cost_of_utilization link ~utilization
  | Hn_spf -> Hnm.cost_of_utilization link ~utilization

open! Import

type config = {
  params : Hnm_params.t;
  averaging : bool;
  movement_limits : bool;
  march_up : bool;
}

let default_config line_type =
  { params = Hnm_params.for_line_type line_type;
    averaging = true;
    movement_limits = true;
    march_up = true }

type t = {
  link : Link.t;
  config : config;
  min_cost : int;
  average : Filter.ewma;
  mutable last_reported : int;
}

let[@inline] clip t c = max t.min_cost (min t.config.params.Hnm_params.max_cost c)

(* The per-link floor still tracks the configured propagation delay, scaled
   to custom bounds: base_min plus the standard adjustment, capped under
   the ceiling. *)
let effective_min config (link : Link.t) =
  let p = config.params in
  let adjust = int_of_float (link.Link.propagation_s *. 1000. /. 25.) in
  min (p.Hnm_params.max_cost - 1)
    (p.Hnm_params.base_min + min p.Hnm_params.base_min adjust)

let create_custom config link =
  let min_cost = effective_min config link in
  { link;
    config;
    min_cost;
    average = Filter.ewma ~gain:(if config.averaging then 0.5 else 1.0);
    last_reported = min_cost }

let create link = create_custom (default_config link.Link.line_type) link

let create_custom_easing_in config link =
  let t = create_custom config link in
  (* A new line advertises its ceiling and lets the movement limit walk the
     cost down one step per period as traffic trickles in. *)
  Filter.ewma_set t.average 1.0;
  t.last_reported <- t.config.params.Hnm_params.max_cost;
  t

let create_easing_in link =
  create_custom_easing_in (default_config link.Link.line_type) link

let link t = t.link

let params t = t.config.params

let[@inline] limit_movement t raw =
  if not t.config.movement_limits then raw
  else begin
    let p = t.config.params in
    let down = if t.config.march_up then p.Hnm_params.max_down else p.Hnm_params.max_up in
    let up_limit = t.last_reported + p.Hnm_params.max_up in
    let down_limit = t.last_reported - down in
    max down_limit (min up_limit raw)
  end

let[@inline] apply_raw t ~raw =
  let revised = clip t (limit_movement t raw) in
  t.last_reported <- revised;
  revised

let[@inline] period_update t ~measured_delay_s =
  let sample =
    Queueing.utilization_of_delay t.link ~delay_s:measured_delay_s
  in
  let average = Filter.ewma_update t.average sample in
  apply_raw t
    ~raw:
      (int_of_float
         (Float.round
            (Hnm_params.raw_cost t.config.params ~utilization:average)))

let average_filter t = t.average

let current_cost t = t.last_reported

let average_utilization t = Filter.ewma_value t.average

let cost_of_utilization link ~utilization =
  let params = Hnm_params.for_line_type link.Link.line_type in
  let raw =
    int_of_float (Float.round (Hnm_params.raw_cost params ~utilization))
  in
  max (Hnm_params.min_cost link) (min params.Hnm_params.max_cost raw)

open! Import

type t = {
  line_type : Line_type.t;
  base_min : int;
  max_cost : int;
  slope : float;
  offset : float;
  max_up : int;
  max_down : int;
  min_change : int;
}

(* base_min per speed class; anchors are the paper's 56 kb/s (30 units) and
   9.6 kb/s (70 units) values; multi-trunk bundles follow the same
   inverse-square-root-of-bandwidth trend so that faster lines look
   cheaper but never free. *)
let base_min_of_bandwidth bps =
  if bps <= 9_600. then 70
  else if bps <= 56_000. then 30
  else if bps <= 112_000. then 21
  else if bps <= 224_000. then 15
  else 11

let make line_type =
  let base_min = base_min_of_bandwidth (Line_type.bandwidth_bps line_type) in
  { line_type;
    base_min;
    max_cost = 3 * base_min;
    slope = float_of_int (4 * base_min);
    offset = -.float_of_int base_min;
    max_up = (base_min / 2) + 1;
    max_down = base_min / 2;
    min_change = (base_min / 2) - 1 }

let table = Array.of_list (List.map make Line_type.all)

let for_line_type lt = table.(Line_type.index lt)

let min_cost_of p (link : Link.t) =
  let adjust = int_of_float (link.propagation_s *. 1000. /. 25.) in
  p.base_min + min p.base_min adjust

let min_cost (link : Link.t) = min_cost_of (for_line_type link.line_type) link

let[@inline] raw_cost p ~utilization = (p.slope *. utilization) +. p.offset

let raw_costs_into params ~up ~utilization ~raw =
  let n = Array.length params in
  for i = 0 to n - 1 do
    if up.(i) then
      raw.(i) <-
        int_of_float
          (Float.round (raw_cost params.(i) ~utilization:utilization.(i)))
  done
[@@hot_path]

let all = Array.to_list table

let pp ppf p =
  Format.fprintf ppf
    "%s: min=%d max=%d slope=%.0f offset=%.0f up=%d down=%d thresh=%d"
    (Line_type.name p.line_type) p.base_min p.max_cost p.slope p.offset
    p.max_up p.max_down p.min_change

open! Import

(** Network-wide link-cost management under a chosen metric.

    A [t] owns, for every link in the graph, the metric state (HNM filter,
    D-SPF measurement, or nothing for min-hop) and the update-generation
    policy, and tracks the distinction between a link's {e locally
    computed} cost and the cost {e the rest of the network believes}
    (the last flooded value).  Simulators drive it one routing period at a
    time; SPF consumes {!cost_fn}. *)

type kind =
  | Min_hop  (** static: every link costs one hop *)
  | Static_capacity
      (** static inverse-capacity costs — each link permanently at its
          HN-SPF idle cost.  Not in the paper: it is what OSPF later
          standardized (reference-bandwidth costs), included as the
          "where the lessons landed" baseline.  Equivalently: HN-SPF with
          its adaptive region disabled. *)
  | D_spf  (** measured-delay metric, May 1979 revision (§2.2) *)
  | Hn_spf  (** the revised hop-normalized metric, July 1987 (§4) *)

val kind_name : kind -> string

val kind_of_name : string -> kind option

type t

val create : kind -> Graph.t -> t
(** Every link starts at its idle cost (min-hop: 1). *)

val create_custom_hnspf : (Link.t -> Hnm.config) -> Graph.t -> t
(** HN-SPF with per-link parameter sets "tailored to the needs of
    individual networks" (§4.4) — also how the ablation benches disable
    individual HNM mechanisms.  {!kind} reports [Hn_spf]. *)

val kind : t -> kind

val graph : t -> Graph.t

val cost : t -> Link.id -> int
(** The flooded cost — what every PSN's SPF currently uses. *)

val local_cost : t -> Link.id -> int
(** The owning PSN's latest computed cost (may differ from {!cost} when the
    change wasn't significant enough to flood). *)

val cost_fn : t -> Link.id -> int
(** [cost] as a function, for {!Routing_spf.Dijkstra.compute}. *)

val period_update : t -> Link.id -> measured_delay_s:float -> int option
(** Feed one link's measured average delay for the routing period just
    ended.  Returns [Some cost] when the change is significant (or the
    50-second timer fired) and an update was "flooded" (i.e. {!cost} now
    returns the new value); [None] otherwise.  Min-hop always returns
    [None]. *)

val period_update_all :
  t ->
  up:bool array ->
  link_delay_s:float array ->
  changed_ids:int array ->
  changed_costs:int array ->
  int
(** Batch {!period_update} over every link in one call: link [i] is skipped
    unless [up.(i)], and otherwise fed [link_delay_s.(i)].  Links whose
    update was flooded are written into [changed_ids]/[changed_costs]
    (caller-provided, length ≥ link count) and the number of floods is
    returned.  Allocation-free; quiet periods touch no heap at all. *)

val period_update_utilization : t -> Link.id -> utilization:float -> int option
(** Flow-simulator entry point: derive the measured delay from a steady
    utilization via the M/M/1 model, then proceed as {!period_update}. *)

val link_up : t -> Link.id -> unit
(** Reset a link's state as freshly up.  Under HN-SPF the link eases in at
    its maximum cost (§5.4); under D-SPF it floods its idle delay. *)

val updates_flooded : t -> int
(** Total updates generated across all links since creation. *)

val reset_update_counter : t -> unit

val idle_cost : kind -> Link.t -> int
(** The cost an idle link reports under the metric (1 for min-hop). *)

val equilibrium_cost : kind -> Link.t -> utilization:float -> int
(** The steady-state cost at a held utilization — the Metric map of §5.3
    (1 for min-hop regardless of utilization). *)

open! Import

(** Per-line-type parameter tables for the HN-SPF metric.

    BBN's exact constants were published only in BBN Report 6714 (not
    public); this table derives a set from every constraint the paper
    states (see DESIGN.md §2).  All values follow from one per-speed
    anchor, [base_min] — the cost of an idle zero-propagation line:

    - 56 kb/s: [base_min = 30] and a saturated line reports 90, i.e. at
      most "two additional hops in a homogeneous network" (§4.2);
    - 9.6 kb/s: [base_min = 70], so a full 9.6 line reports 210 ≈ 7× an
      idle 56 line (§4.4) and [max = 3 × base_min] holds exactly;
    - the cost is flat until 50 % utilization, then linear to [max] at
      100 % (§4.2): [raw = slope·u + offset] with [slope = 4·base_min],
      [offset = −base_min];
    - movement limits: up a little more than a half-hop
      ([base_min/2 + 1]), down one unit less (§5.4's march-up heuristic);
    - the significance threshold is a little less than a half-hop
      ([base_min/2 − 1], §4.3);
    - the per-link minimum grows slowly with configured propagation delay
      (+1 unit per 25 ms, capped at [base_min]), which is what makes an
      idle satellite line dearer than its terrestrial twin at low load yet
      "treated equally when highly utilized" (§4.4). *)

type t = {
  line_type : Line_type.t;
  base_min : int;  (** idle cost of a zero-propagation line, routing units *)
  max_cost : int;  (** absolute ceiling, [3 * base_min] *)
  slope : float;  (** linear transform: cost per unit utilization *)
  offset : float;
  max_up : int;  (** largest allowed increase per routing period *)
  max_down : int;  (** largest allowed decrease per routing period *)
  min_change : int;  (** significance threshold for flooding an update *)
}

val for_line_type : Line_type.t -> t

val min_cost : Link.t -> int
(** The per-link lower bound: [base_min] plus the propagation-delay
    adjustment. *)

val min_cost_of : t -> Link.t -> int
(** {!min_cost} under an explicit (possibly user-overridden) table entry
    instead of the built-in one — the analysis entry point used by
    [routing_check] when linting custom parameter sets. *)

val raw_cost : t -> utilization:float -> float
(** The unclipped linear transform [slope * u + offset]. *)

val raw_costs_into :
  t array -> up:bool array -> utilization:float array -> raw:int array -> unit
(** Batch {!raw_cost}, rounded to the nearest routing unit, over every
    index with [up.(i)] set (others are left untouched) — the float→int
    stage of the metric's allocation-free period update. *)

val all : t list
(** The full table, one entry per {!Line_type.t}. *)

val pp : Format.formatter -> t -> unit

(* A small reusable pool of worker domains for embarrassingly parallel
   loops (per-source SPF).  Hand-rolled on Domain + Mutex/Condition so the
   library picks up no dependency beyond the OCaml 5 stdlib.

   Work items are plain indices handed out through an atomic counter —
   [chunk] consecutive indices at a time, so fine-grained loops do not
   serialize on the counter's cache line.  Scheduling is racy but the
   *results* are not: every index is executed exactly once and callers
   write results into per-index slots, making the outcome independent of
   which domain ran what.  A pool of size 1 spawns no domains at all and
   runs the loop inline — the sequential reference path. *)

type probe = {
  chunk_begin : label:int -> lo:int -> hi:int -> unit;
  chunk_end : label:int -> lo:int -> hi:int -> unit;
}

type job = {
  make_f : unit -> int -> unit;
      (* each participating domain materializes its own body once (letting
         it close over private scratch) and then feeds it indices *)
  n : int;
  chunk : int;
  label : int; (* passed through to the probe; -1 = unlabeled *)
  next : int Atomic.t; (* next index to hand out *)
  completed : int Atomic.t; (* indices finished (ran or skipped on error) *)
  mutable failure : exn option; (* first exception, re-raised by the caller *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int; (* bumped per parallel_for; lets workers
                               distinguish a new job from a drained one *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  mutable probe : probe option;
      (* fired by whichever domain drains a chunk, so an observer (the
         flight recorder) sees which indices each domain ran and when *)
}

let size t = t.size

let set_probe t probe = t.probe <- probe

let default_env_var = "ARPANET_DOMAINS"

let default_size () =
  match Sys.getenv_opt default_env_var with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> min n 128
    | Some _ | None -> 1)

let recommended_size () = max 1 (Domain.recommended_domain_count () - 1)

let record_failure t job e =
  Mutex.lock t.mutex;
  if job.failure = None then job.failure <- Some e;
  Mutex.unlock t.mutex

(* Pull chunks of indices until the job is drained. *)
let drain t job =
  let f =
    try job.make_f ()
    with e ->
      record_failure t job e;
      fun _ -> ()
  in
  let continue_ = ref true in
  while !continue_ do
    let base = Atomic.fetch_and_add job.next job.chunk in
    if base >= job.n then continue_ := false
    else begin
      let stop = min job.n (base + job.chunk) in
      let probe = t.probe in
      (match probe with
      | Some p -> p.chunk_begin ~label:job.label ~lo:base ~hi:stop
      | None -> ());
      (try
         for i = base to stop - 1 do
           f i
         done
       with e -> record_failure t job e);
      (match probe with
      | Some p -> p.chunk_end ~label:job.label ~lo:base ~hi:stop
      | None -> ());
      let count = stop - base in
      let done_ = count + Atomic.fetch_and_add job.completed count in
      if done_ = job.n then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.work_done;
        Mutex.unlock t.mutex
      end
    end
  done

let rec worker_loop t last_generation =
  Mutex.lock t.mutex;
  while
    (not t.stopping)
    && (t.job = None || t.generation = last_generation)
  do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let generation = t.generation in
    let job = Option.get t.job in
    Mutex.unlock t.mutex;
    drain t job;
    worker_loop t generation
  end

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let create size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let t =
    { size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      stopping = false;
      workers = [];
      probe = None }
  in
  if size > 1 then begin
    t.workers <-
      List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t 0));
    (* If the pool is dropped without an explicit shutdown, release the
       workers rather than leaving them blocked forever.  Joining from a
       finalizer is unsafe, so just signal; the domains exit promptly and
       the runtime reaps them at program exit. *)
    Gc.finalise
      (fun t ->
        Mutex.lock t.mutex;
        t.stopping <- true;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.mutex)
      t
  end;
  t

let run_job t ~chunk ~label ~make_f n =
  let chunk = max 1 chunk in
  let job =
    { make_f;
      n;
      chunk;
      label;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      failure = None }
  in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.parallel_for: pool is shut down"
  end;
  if t.job <> None then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.parallel_for: pool already running a loop"
  end;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  (* The caller is a full member of the crew. *)
  drain t job;
  Mutex.lock t.mutex;
  while Atomic.get job.completed < job.n do
    Condition.wait t.work_done t.mutex
  done;
  t.job <- None;
  let failure = job.failure in
  Mutex.unlock t.mutex;
  match failure with None -> () | Some e -> raise e

(* The inline (pool of one / single index) path still reports to the probe:
   the caller domain "drained" the whole range as one chunk. *)
let run_inline t ~label n f =
  match t.probe with
  | None ->
    for i = 0 to n - 1 do
      f i
    done
  | Some p ->
    p.chunk_begin ~label ~lo:0 ~hi:n;
    Fun.protect
      ~finally:(fun () -> p.chunk_end ~label ~lo:0 ~hi:n)
      (fun () ->
        for i = 0 to n - 1 do
          f i
        done)

let parallel_for ?(chunk = 1) ?(label = -1) t n f =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 then run_inline t ~label n f
  else run_job t ~chunk ~label ~make_f:(fun () -> f) n

let parallel_for_with ?(chunk = 1) ?(label = -1) t ~init n f =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 then begin
    let s = init () in
    run_inline t ~label n (fun i -> f s i)
  end
  else
    run_job t ~chunk ~label
      ~make_f:(fun () ->
        let s = init () in
        fun i -> f s i)
      n

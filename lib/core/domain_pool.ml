(* A small reusable pool of worker domains for embarrassingly parallel
   loops (per-source SPF, sweep grid points).  Hand-rolled on Domain +
   Mutex/Condition so the library picks up no dependency beyond the
   OCaml 5 stdlib.

   Two handout disciplines share one pool:

   - [parallel_for] hands out [chunk] consecutive indices at a time
     through one shared atomic counter — the right shape for fine, even
     bodies (per-source Dijkstra) where the counter's cache line is the
     only contention.
   - [parallel_for_dynamic] gives every participating domain its own
     atomic index range and lets idle domains steal the top half of the
     largest remainder — the right shape for coarse, uneven bodies
     (sweep grid points spanning 5-period toys and 10k-node meshes)
     where a heavy item must not serialize a whole static share behind
     it.

   Scheduling is racy but the *results* are not: every index is executed
   exactly once and callers write results into per-index slots, making
   the outcome independent of which domain ran what.  A pool of size 1
   spawns no domains at all and runs the loop inline — the sequential
   reference path. *)

type probe = {
  chunk_begin : label:int -> lo:int -> hi:int -> unit;
  chunk_end : label:int -> lo:int -> hi:int -> unit;
}

(* A participant's remaining index range, packed into one atomic int
   (see [pack] below).  The record wrapper is load-bearing: an
   [int Atomic.t array] has an abstract element type, so every access
   would compile to the generic maybe-float array path (tag test plus a
   float-boxing branch) — wrapping in a concrete record makes the array
   manifestly an addr array and keeps [claim_block]/[steal]
   allocation-free. *)
type steal_slot = { range : int Atomic.t }

(* How a job's indices are handed to domains. *)
type handout =
  | Chunked of { chunk : int; next : int Atomic.t }
      (* shared counter; [chunk] consecutive indices per visit *)
  | Stealing of { grain : int; ranges : steal_slot array }
      (* per-participant [lo, hi) ranges, packed; see [pack] below *)

type job = {
  make_f : int -> int -> unit;
      (* each participating domain materializes its own body once (letting
         it close over private scratch) and then feeds it indices; the
         first argument is the participant's slot in [0, size) — the
         caller is 0 — so bodies can key cached per-slot state *)
  n : int;
  handout : handout;
  label : int; (* passed through to the probe; -1 = unlabeled *)
  completed : int Atomic.t; (* indices finished (ran or skipped on error) *)
  mutable failure : exn option; (* first exception, re-raised by the caller *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job option;
  mutable generation : int; (* bumped per parallel_for; lets workers
                               distinguish a new job from a drained one *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  mutable probe : probe option;
      (* fired by whichever domain drains a chunk, so an observer (the
         flight recorder) sees which indices each domain ran and when *)
}

let size t = t.size

let set_probe t probe = t.probe <- probe

let default_env_var = "ARPANET_DOMAINS"

let recommended_size () = max 1 (Domain.recommended_domain_count () - 1)

(* One resolution path for every CLI and library default: an explicit
   count wins, [0] means "size to this machine", anything else falls
   back to the environment (same rules), then to 1 — so `--domains 0`
   and `ARPANET_DOMAINS=0` agree everywhere. *)
let resolve ?requested () =
  let of_int n =
    if n = 0 then Some (recommended_size ())
    else if n >= 1 then Some (min n 128)
    else None
  in
  let from_env () =
    match Sys.getenv_opt default_env_var with
    | None -> 1
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> Option.value (of_int n) ~default:1
      | None -> 1)
  in
  match requested with
  | Some n -> (
    match of_int n with
    | Some size -> size
    | None ->
      invalid_arg
        (Printf.sprintf "Domain_pool.resolve: bad domain count %d" n))
  | None -> from_env ()

let default_size () = resolve ()

let record_failure t job e =
  Mutex.lock t.mutex;
  if job.failure = None then job.failure <- Some e;
  Mutex.unlock t.mutex

let[@inline] finish_block t job count =
  let done_ = count + Atomic.fetch_and_add job.completed count in
  if done_ = job.n then begin
    Mutex.lock t.mutex;
    Condition.broadcast t.work_done;
    Mutex.unlock t.mutex
  end

(* Run one claimed block through the body, reporting to the probe and
   capturing (not propagating) the first failure. *)
let run_block t job f ~lo ~hi =
  let probe = t.probe in
  (match probe with
  | Some p -> p.chunk_begin ~label:job.label ~lo ~hi
  | None -> ());
  (try
     for i = lo to hi - 1 do
       f i
     done
   with e -> record_failure t job e);
  (match probe with
  | Some p -> p.chunk_end ~label:job.label ~lo ~hi
  | None -> ());
  finish_block t job (hi - lo)

(* --- shared-counter handout ---------------------------------------- *)

(* Pull chunks of indices until the counter passes [n]. *)
let chunked_drain t job ~chunk ~next f =
  let continue_ = ref true in
  while !continue_ do
    let base = Atomic.fetch_and_add next chunk in
    if base >= job.n then continue_ := false
    else run_block t job f ~lo:base ~hi:(min job.n (base + chunk))
  done

(* --- work-stealing handout ----------------------------------------- *)

(* A participant's remaining range [lo, hi) packed into one immediate
   int: [lo] in the upper bits, [hi] in the lower 31.  Every transition
   is a single CAS on the packed value, and the packed value alone
   carries the range's meaning — so a stale read that happens to CAS
   successfully still performs a valid transition (ABA is harmless) and
   each index is handed out exactly once. *)

let range_bits = 31

let range_mask = (1 lsl range_bits) - 1

let[@inline] pack ~lo ~hi = (lo lsl range_bits) lor hi

let[@inline] range_lo r = r lsr range_bits

let[@inline] range_hi r = r land range_mask

(* Claim the next block for participant [me]: from the bottom of its own
   range while it lasts, then by stealing from the others — the top half
   of a range still worth splitting, or the whole remainder of a small
   one.  Returns the claimed block as [pack ~lo ~hi], or -1 when every
   range is drained.  Pure integer CAS traffic: the sweep's
   point-dispatch loop runs through here and must not allocate. *)
let rec claim_block ranges me grain =
  let mine = (Array.unsafe_get ranges me).range in
  let r = Atomic.get mine in
  let lo = range_lo r and hi = range_hi r in
  if lo < hi then begin
    let stop = if hi - lo <= grain then hi else lo + grain in
    if Atomic.compare_and_set mine r (pack ~lo:stop ~hi) then pack ~lo ~hi:stop
    else claim_block ranges me grain
  end
  else steal ranges me grain ((me + 1) mod Array.length ranges)
[@@hot_path]

and steal ranges me grain victim =
  if victim = me then -1
  else begin
    let v = (Array.unsafe_get ranges victim).range in
    let r = Atomic.get v in
    let lo = range_lo r and hi = range_hi r in
    let len = hi - lo in
    if len = 0 then steal ranges me grain ((victim + 1) mod Array.length ranges)
    else if len <= grain then
      (* Not worth splitting: take the whole remainder. *)
      if Atomic.compare_and_set v r (pack ~lo:hi ~hi) then pack ~lo ~hi
      else claim_block ranges me grain
    else begin
      (* Steal the top half; the victim keeps draining its bottom, so
         both sides stay in the cache region they started in. *)
      let mid = lo + ((len + 1) / 2) in
      if Atomic.compare_and_set v r (pack ~lo ~hi:mid) then begin
        (* Publish the loot as [me]'s own range.  Between the CAS and
           this store the stolen indices are invisible to other thieves,
           which at worst idles them early — [me] itself drains the
           range before asking again. *)
        Atomic.set (Array.unsafe_get ranges me).range (pack ~lo:mid ~hi);
        claim_block ranges me grain
      end
      else claim_block ranges me grain
    end
  end
[@@hot_path]

let stealing_drain t job ~grain ~ranges ~me f =
  let continue_ = ref true in
  while !continue_ do
    let blk = claim_block ranges me grain in
    if blk < 0 then continue_ := false
    else run_block t job f ~lo:(range_lo blk) ~hi:(range_hi blk)
  done

(* ------------------------------------------------------------------- *)

let drain t job ~me =
  let f =
    try job.make_f me
    with e ->
      record_failure t job e;
      fun _ -> ()
  in
  match job.handout with
  | Chunked { chunk; next } -> chunked_drain t job ~chunk ~next f
  | Stealing { grain; ranges } -> stealing_drain t job ~grain ~ranges ~me f

let rec worker_loop t ~me last_generation =
  Mutex.lock t.mutex;
  while
    (not t.stopping)
    && (t.job = None || t.generation = last_generation)
  do
    Condition.wait t.work_ready t.mutex
  done;
  if t.stopping then Mutex.unlock t.mutex
  else begin
    let generation = t.generation in
    let job = Option.get t.job in
    Mutex.unlock t.mutex;
    drain t job ~me;
    worker_loop t ~me generation
  end

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let create size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let t =
    { size;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      generation = 0;
      stopping = false;
      workers = [];
      probe = None }
  in
  if size > 1 then begin
    (* The caller is participant 0; workers take 1 .. size-1 — the slot
       each drains first under the stealing handout. *)
    t.workers <-
      List.init (size - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t ~me:(i + 1) 0));
    (* If the pool is dropped without an explicit shutdown, release the
       workers rather than leaving them blocked forever.  Joining from a
       finalizer is unsafe, so just signal; the domains exit promptly and
       the runtime reaps them at program exit. *)
    Gc.finalise
      (fun t ->
        Mutex.lock t.mutex;
        t.stopping <- true;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.mutex)
      t
  end;
  t

let run_job t ~label ~handout ~make_f n =
  let job =
    { make_f; n; handout; label; completed = Atomic.make 0; failure = None }
  in
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.parallel_for: pool is shut down"
  end;
  if t.job <> None then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.parallel_for: pool already running a loop"
  end;
  t.job <- Some job;
  t.generation <- t.generation + 1;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  (* The caller is a full member of the crew. *)
  drain t job ~me:0;
  Mutex.lock t.mutex;
  while Atomic.get job.completed < job.n do
    Condition.wait t.work_done t.mutex
  done;
  t.job <- None;
  let failure = job.failure in
  Mutex.unlock t.mutex;
  match failure with None -> () | Some e -> raise e

(* The inline (pool of one / single index) path still reports to the probe:
   the caller domain "drained" the whole range as one chunk. *)
let run_inline t ~label n f =
  match t.probe with
  | None ->
    for i = 0 to n - 1 do
      f i
    done
  | Some p ->
    p.chunk_begin ~label ~lo:0 ~hi:n;
    Fun.protect
      ~finally:(fun () -> p.chunk_end ~label ~lo:0 ~hi:n)
      (fun () ->
        for i = 0 to n - 1 do
          f i
        done)

let chunked ~chunk = Chunked { chunk = max 1 chunk; next = Atomic.make 0 }

let parallel_for ?(chunk = 1) ?(label = -1) t n f =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 then run_inline t ~label n f
  else run_job t ~label ~handout:(chunked ~chunk) ~make_f:(fun _me -> f) n

let parallel_for_with ?(chunk = 1) ?(label = -1) t ~init n f =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 then begin
    let s = init () in
    run_inline t ~label n (fun i -> f s i)
  end
  else
    run_job t ~label ~handout:(chunked ~chunk)
      ~make_f:(fun _me ->
        let s = init () in
        fun i -> f s i)
      n

(* Initial split: equal slices in index order, so participant [k] starts
   in its own region and stealing only kicks in once someone runs dry. *)
let initial_ranges ~participants n =
  Array.init participants (fun k ->
      { range =
          Atomic.make
            (pack ~lo:(k * n / participants) ~hi:((k + 1) * n / participants))
      })

let parallel_for_dynamic ?(grain = 1) ?(label = -1) t n f =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 then run_inline t ~label n f
  else if n > range_mask then
    invalid_arg "Domain_pool.parallel_for_dynamic: more than 2^31 items"
  else
    run_job t ~label
      ~handout:
        (Stealing
           { grain = max 1 grain;
             ranges = initial_ranges ~participants:t.size n })
      ~make_f:(fun _me -> f) n

let parallel_for_dynamic_with ?(grain = 1) ?(label = -1) t ~init n f =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 then begin
    let s = init 0 in
    run_inline t ~label n (fun i -> f s i)
  end
  else if n > range_mask then
    invalid_arg "Domain_pool.parallel_for_dynamic_with: more than 2^31 items"
  else
    run_job t ~label
      ~handout:
        (Stealing
           { grain = max 1 grain;
             ranges = initial_ranges ~participants:t.size n })
      ~make_f:(fun me ->
        let s = init me in
        fun i -> f s i)
      n

open! Import

(** The M/M/1 queueing model relating link delay and utilization.

    "A simple M/M/1 queueing model is used with the service time being the
    network-wide average packet size (600 bits/packet) divided by the
    trunk's bandwidth" (§4.1).  All utilization↔delay transformations in
    the paper's own analysis use this model, and so do ours — both inside
    the HNM (delay → utilization estimate) and in the flow simulator
    (utilization → expected delay). *)

val max_utilization : float
(** 0.99 — utilization estimates are clamped here; the reported-delay
    inversion is undefined at exactly 1. *)

val service_time_s : Line_type.t -> float
(** Mean transmission time of a 600-bit packet on the line. *)

val sojourn_s : Line_type.t -> utilization:float -> float
(** Expected M/M/1 time-in-system (queueing + transmission):
    [s / (1 - rho)].  Utilization is clamped to
    [\[0, max_utilization\]]. *)

val delay_s : Link.t -> utilization:float -> float
(** {!sojourn_s} plus the link's propagation delay — the quantity a PSN
    would measure per packet. *)

val utilization_of_sojourn : Line_type.t -> sojourn_s:float -> float
(** Invert {!sojourn_s}: [rho = 1 - s/w], clamped to
    [\[0, max_utilization\]].  Sojourns at or below the service time map
    to 0. *)

val utilization_of_delay : Link.t -> delay_s:float -> float
(** Invert {!delay_s} by first stripping the link's configured propagation
    delay — the PSN knows it from its line tables. *)

val queue_length : Line_type.t -> utilization:float -> float
(** Expected number in system, [rho / (1 - rho)] — used by the 1969 legacy
    metric's analytic mode. *)

(** {2 Finite buffers (M/M/1/K)}

    A real PSN holds at most {!buffer_capacity} packets per line, so the
    delay it {e measures} is bounded — roughly [K] service times — and the
    excess arrivals are the dropped packets Fig 13 counts.  The simulators
    use these; the §5 analytic reproductions keep the paper's pure M/M/1.
    The offered [utilization] argument may exceed 1. *)

val buffer_capacity : int
(** 40 packets in system per line — sized so that a saturated 56 kb/s line
    measures ≈430 ms and reports ≈20× its idle cost, and a saturated
    9.6 kb/s line pegs the 254-unit ceiling: the §3.2 ratios. *)

val mm1k_blocking : utilization:float -> float
(** Probability an arriving packet finds the buffer full (is dropped). *)

val mm1k_sojourn_s : Line_type.t -> utilization:float -> float
(** Expected time in system of {e accepted} packets. *)

val mm1k_delay_s : Link.t -> utilization:float -> float
(** {!mm1k_sojourn_s} plus propagation — what the PSN's 10-second window
    measures on a line offered that load. *)

val mm1k_into :
  Graph.t ->
  up:bool array ->
  offered_bps:float array ->
  utilization:float array ->
  delay_s:float array ->
  pass:float array ->
  unit
(** Evaluate every link of the graph in one batch: for link [i],
    [utilization.(i)] becomes [offered_bps.(i) / capacity] (0 when
    [up.(i)] is false), [delay_s.(i)] its {!mm1k_delay_s} and [pass.(i)]
    the survival probability [1 - mm1k_blocking].  Exists so the flow
    simulator's steady-state period allocates zero minor words: one call
    per period instead of two boxing cross-module float calls per link. *)

val utilization_of_delay_into :
  Graph.t ->
  up:bool array ->
  delay_s:float array ->
  utilization:float array ->
  unit
(** Batch {!utilization_of_delay} over every link with [up.(i)] set
    (others are left untouched) — the first stage of the metric's
    allocation-free period update. *)

(** {2 Robustness check (M/D/1)}

    The paper uses M/M/1 "for illustrative purposes"; real 1987 packets
    were not exponentially sized.  The deterministic-service M/D/1 sojourn
    lets tests confirm the qualitative results do not hinge on the
    exponential assumption — its queueing term is exactly half M/M/1's. *)

val md1_sojourn_s : Line_type.t -> utilization:float -> float
(** Pollaczek–Khinchine with zero service variance:
    [s * (1 + rho / (2 (1 - rho)))], clamped like {!sojourn_s}. *)

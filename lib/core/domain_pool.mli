(** A small reusable pool of worker domains for embarrassingly parallel
    index loops — built on OCaml 5 [Domain] + [Mutex]/[Condition] only.

    Designed for the all-pairs SPF fan-out: [parallel_for pool n f] runs
    [f 0 .. f (n-1)] exactly once each, spreading indices over the pool's
    domains (the calling domain included).  Scheduling is nondeterministic
    but as long as [f i] writes only to slot [i] of some result array the
    outcome is bit-identical to the sequential loop; a pool of [size] 1
    spawns no domains and {e is} the sequential loop. *)

type t

val create : int -> t
(** [create size] spawns [size - 1] worker domains ([size >= 1]; size 1
    spawns none).  Workers idle on a condition variable between loops.
    @raise Invalid_argument if [size < 1]. *)

val size : t -> int

type probe = {
  chunk_begin : label:int -> lo:int -> hi:int -> unit;
  chunk_end : label:int -> lo:int -> hi:int -> unit;
}
(** Observer hooks fired by whichever domain drains a chunk of loop
    indices, from that domain, around the chunk's execution.  [label] is
    the loop's [?label] (-1 when unlabeled); [lo]/[hi] bound the index
    range ([hi] exclusive).  Built for the flight recorder
    ({!Routing_obs.Tracer.pool_probe}): each worker domain records which
    indices it ran and when. *)

val set_probe : t -> probe option -> unit
(** Install (or clear) the probe.  Not synchronized with a loop already in
    flight — set it between loops.  Hooks must be thread-safe and cheap;
    they run on worker domains inside the work loop. *)

val parallel_for : ?chunk:int -> ?label:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for t n f] runs [f i] for every [i] in [0 .. n-1] and
    returns when all are done.  If any [f i] raises, the first exception
    is re-raised in the caller after the loop drains (remaining indices
    still run).  Loops do not nest: a pool runs one loop at a time, and
    calling from within [f] is an error.

    [chunk] (default 1) is how many consecutive indices a domain claims
    per visit to the shared counter.  Larger chunks amortize the atomic
    handout for cheap bodies; 1 balances best when bodies are expensive
    or uneven.

    [label] (default -1) tags the loop for the installed {!probe}; the
    pool itself never interprets it. *)

val parallel_for_with :
  ?chunk:int ->
  ?label:int ->
  t ->
  init:(unit -> 's) ->
  int ->
  ('s -> int -> unit) ->
  unit
(** Like {!parallel_for}, but every participating domain (workers and the
    caller alike) evaluates [init ()] once before claiming indices and
    threads the resulting private state through its share of the loop —
    the idiom for reusable per-domain scratch (Dijkstra work arrays).
    States never cross domains, so [f] may mutate its state freely. *)

val parallel_for_dynamic :
  ?grain:int -> ?label:int -> t -> int -> (int -> unit) -> unit
(** Like {!parallel_for}, but with a work-stealing handout: every
    participating domain starts with an equal slice of [0 .. n-1] and
    claims [grain] indices at a time from the bottom of its own slice;
    a domain that runs dry steals the top half of another's remaining
    range (or the whole remainder when it is no bigger than [grain]).
    Built for coarse, {e uneven} bodies — sweep grid points mixing toy
    and 10k-node scenarios — where a heavy item must not serialize the
    rest of a static share behind it.  Same contract as
    {!parallel_for} otherwise: every index runs exactly once, first
    exception re-raised after the loop drains, probe fired per claimed
    block.  [grain] defaults to 1.

    @raise Invalid_argument if [n >= 2^31] (ranges are packed into one
    immediate int). *)

val parallel_for_dynamic_with :
  ?grain:int ->
  ?label:int ->
  t ->
  init:(int -> 's) ->
  int ->
  ('s -> int -> unit) ->
  unit
(** {!parallel_for_dynamic} with per-domain private state, the way
    {!parallel_for_with} extends {!parallel_for}: every participating
    domain evaluates [init slot] once before claiming indices, where
    [slot] is the participant's stable slot in [0, {!size}) — the caller
    is slot 0.  Because at most one domain holds a given slot per loop,
    [init] may hand out scratch {e cached by slot} across loops
    (allocation-free steady state) instead of allocating fresh state per
    call.  States never cross domains during a loop; [f] may mutate its
    state freely.

    @raise Invalid_argument if [n >= 2^31]. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool cannot be used
    afterwards.  Pools that are simply dropped release their workers via a
    finalizer, so calling this is only required for prompt reclamation. *)

val default_size : unit -> int
(** [resolve ()] — pool size selected by the [ARPANET_DOMAINS]
    environment variable alone. *)

val resolve : ?requested:int -> unit -> int
(** The one domain-count resolution path shared by every CLI.
    [resolve ~requested ()] maps an explicit request — a [--domains]
    argument — to a pool size: [n >= 1] is clamped to [1, 128], and [0]
    means "size to this machine" ({!recommended_size}).  With no
    [?requested], the [ARPANET_DOMAINS] environment variable is read
    under the same rules ([0] → {!recommended_size}), and an unset or
    unparseable variable yields 1, the sequential path.

    @raise Invalid_argument if [requested] is negative. *)

val default_env_var : string
(** ["ARPANET_DOMAINS"]. *)

val recommended_size : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 — a sensible
    upper bound leaving one core for the rest of the program. *)

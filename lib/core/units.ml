open! Import

let unit_ms = 10.

let max_cost = 254

let hop = 30

let[@inline] clamp_cost c = max 1 (min max_cost c)

let[@inline] of_delay seconds =
  clamp_cost (int_of_float (Float.round (seconds *. 1000. /. unit_ms)))

let of_delay_into ~up ~delay_s ~units =
  let n = Array.length delay_s in
  for i = 0 to n - 1 do
    if up.(i) then units.(i) <- of_delay delay_s.(i)
  done
[@@hot_path]

let[@inline] to_delay cost = float_of_int cost *. unit_ms /. 1000.

let hops_of_cost c = float_of_int c /. float_of_int hop

let cost_of_hops h =
  clamp_cost (int_of_float (Float.round (h *. float_of_int hop)))

let routing_period_s = 10.

let max_update_interval_s = 50.

let average_packet_bits = 600.

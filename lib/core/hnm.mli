open! Import

(** The HN-SPF Module (HNM) — the paper's contribution.

    One [t] per outgoing link.  Each routing period the PSN feeds in the
    measured average delay and gets back the cost to (possibly) flood.
    The transformation is exactly Fig 3 of the paper:

    {v
    Sample'Utilization = delay'to'utilization[Measured'Delay]
    Average'Utilization = .5 * Sample'Utilization + .5 * Last'Average
    Last'Average = Average'Utilization                  (stored per link)
    Raw'Cost = Slope[Line'Type] * Average'Utilization + Offset[Line'Type]
    Limited'Cost = Limit'Movement(Raw'Cost, Last'Reported, Line'Type)
    Revised'Cost = Clip(Limited'Cost, Max[Line'Type], Min[Line'Type])
    Last'Reported = Revised'Cost                        (stored per link)
    v}

    with the asymmetric movement limits (max down one unit less than max
    up) that make an oscillating link's reported cost march up one unit per
    cycle (§5.4), and the easing-in rule that starts a fresh link at its
    maximum cost (§5.4). *)

type t

(** {2 Configuration}

    §4.4: "We designed the HN-SPF module so that these values would be
    easy to change, and envisioned that parameter sets would be tailored
    to the needs of individual networks."  A [config] carries the
    per-line-type constants plus switches for each mechanism of the Fig 3
    pipeline, so ablation studies can turn the paper's design choices off
    one at a time (see the [ablate] bench target). *)

type config = {
  params : Hnm_params.t;  (** bounds, slope/offset, limits, threshold *)
  averaging : bool;  (** the 0.5/0.5 recursive filter (off: raw sample) *)
  movement_limits : bool;  (** per-period up/down clamps (off: jump freely) *)
  march_up : bool;  (** asymmetric limits, down one less than up
                        (off: symmetric — no per-cycle climb) *)
}

val default_config : Line_type.t -> config
(** The production HNM: everything on, table values from
    {!Hnm_params.for_line_type}. *)

val create : Link.t -> t
(** State for a link that has been up since before we started watching: the
    average starts at the first sample and the first report starts from the
    link's minimum cost. *)

val create_custom : config -> Link.t -> t
(** Like {!create} with explicit configuration. *)

val create_custom_easing_in : config -> Link.t -> t

val create_easing_in : Link.t -> t
(** State for a link that just came up: "when a link comes up it starts with
    its highest cost" and pulls in a little more traffic with each routing
    period. *)

val link : t -> Link.t

val params : t -> Hnm_params.t

val period_update : t -> measured_delay_s:float -> int
(** One routing period: transform the measured average delay into the
    revised cost.  Mutates the per-link averaging filter and last-reported
    state. *)

val average_filter : t -> Filter.ewma
(** The per-link smoothing filter itself — {!Metric}'s batch update path
    drives all links' filters in one {!Filter.ewma_update_into} call. *)

val apply_raw : t -> raw:int -> int
(** Finish one period from an already-computed, rounded raw cost: movement
    limits, clipping, store.  Integer-only, so the batch update path
    crosses this module boundary without boxing a float;
    [period_update t] is measure → smooth → transform → [apply_raw t]. *)

val current_cost : t -> int
(** The cost as of the last {!period_update} (the link's minimum before any
    update, its maximum for an easing-in link). *)

val average_utilization : t -> float
(** The smoothed utilization estimate (diagnostic). *)

val cost_of_utilization : Link.t -> utilization:float -> int
(** The {e equilibrium} HN-SPF cost for a link held at a steady utilization:
    the linear transform plus clipping, with no movement history.  This is
    the "Metric map" of §5.3 (Figs 4 and 5). *)

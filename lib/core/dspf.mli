open! Import

(** The delay metric (D-SPF), in service May 1979 – July 1987.

    The reported cost is the 10-second average measured delay converted to
    routing units, floored at a per-line-speed {e bias} "to prevent an idle
    line from reporting a zero delay value" (§2.2) and capped at
    {!Units.max_cost}.  No smoothing, no movement limits — which is exactly
    why it oscillates under load (§3). *)

type t

val create : Link.t -> t

val link : t -> Link.t

val bias : Line_type.t -> int
(** The per-line-speed floor: 2 units for a 56 kb/s line (§4.2), larger for
    slower lines (one average-packet transmission time, rounded up). *)

val period_update : t -> measured_delay_s:float -> int
(** Convert one period's average measured delay into the reported cost. *)

val apply_units : t -> units:int -> int
(** Finish one period from a delay already converted to routing units by
    {!Units.of_delay_into}: apply the bias floor and store.  Integer-only
    for the metric's allocation-free batch update path. *)

val current_cost : t -> int
(** Cost as of the last update; an idle line's report before any update. *)

val cost_of_utilization : Link.t -> utilization:float -> int
(** Equilibrium D-SPF cost at a steady utilization (the §5.3 Metric map):
    M/M/1 delay at that utilization plus propagation, in units, biased and
    capped. *)

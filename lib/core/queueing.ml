open! Import

let max_utilization = 0.99

let[@inline] clamp rho = Float.max 0. (Float.min max_utilization rho)

let[@inline] service_time_s lt = Units.average_packet_bits /. Line_type.bandwidth_bps lt

let[@inline] sojourn_s lt ~utilization =
  let rho = clamp utilization in
  service_time_s lt /. (1. -. rho)

let[@inline] delay_s (link : Link.t) ~utilization =
  sojourn_s link.line_type ~utilization +. link.propagation_s

let[@inline] utilization_of_sojourn lt ~sojourn_s =
  let s = service_time_s lt in
  if sojourn_s <= s then 0. else clamp (1. -. (s /. sojourn_s))

let[@inline] utilization_of_delay (link : Link.t) ~delay_s =
  utilization_of_sojourn link.line_type
    ~sojourn_s:(delay_s -. link.propagation_s)

let queue_length _lt ~utilization =
  let rho = clamp utilization in
  rho /. (1. -. rho)

let md1_sojourn_s lt ~utilization =
  let rho = clamp utilization in
  let s = service_time_s lt in
  s *. (1. +. (rho /. (2. *. (1. -. rho))))

let buffer_capacity = 40

(* M/M/1/K with K = buffer_capacity packets in system.  rho is the offered
   load and may exceed 1; near rho = 1 the closed forms are 0/0, so a small
   neighbourhood falls back to the exact rho = 1 values. *)
let k_float = float_of_int buffer_capacity

let[@inline] mm1k_blocking ~utilization =
  let rho = Float.max 0. utilization in
  if Float.abs (rho -. 1.) < 1e-9 then 1. /. (k_float +. 1.)
  else begin
    let rk = rho ** k_float in
    (1. -. rho) *. rk /. (1. -. (rk *. rho))
  end

let[@inline] mm1k_number_in_system rho =
  if Float.abs (rho -. 1.) < 1e-9 then k_float /. 2.
  else begin
    let rk1 = rho ** (k_float +. 1.) in
    rho /. (1. -. rho)
    -. ((k_float +. 1.) *. rk1 /. (1. -. rk1))
  end

let[@inline] mm1k_sojourn_s lt ~utilization =
  let rho = Float.max 0. utilization in
  let s = service_time_s lt in
  if rho <= 0. then s
  else begin
    let little_l = mm1k_number_in_system rho in
    let accepted_rate = rho /. s *. (1. -. mm1k_blocking ~utilization:rho) in
    little_l /. accepted_rate
  end

let[@inline] mm1k_delay_s (link : Link.t) ~utilization =
  mm1k_sojourn_s link.line_type ~utilization +. link.propagation_s

(* Dev-profile builds compile interfaces -opaque, so [@inline] cannot cross
   the library boundary and every external call of the functions above boxes
   its float argument and result.  Callers on an allocation-free path (the
   flow simulator's per-period link sweep) use this one batch entry point
   instead; the per-link math stays in-module, where it inlines and stays
   unboxed. *)
let mm1k_into graph ~up ~offered_bps ~utilization ~delay_s ~pass =
  let n = Graph.link_count graph in
  for i = 0 to n - 1 do
    let l = Graph.link graph (Link.id_of_int i) in
    let u = if up.(i) then offered_bps.(i) /. Link.capacity_bps l else 0. in
    utilization.(i) <- u;
    delay_s.(i) <- mm1k_delay_s l ~utilization:u;
    pass.(i) <- 1. -. mm1k_blocking ~utilization:u
  done
[@@hot_path]

let utilization_of_delay_into graph ~up ~delay_s ~utilization =
  let n = Graph.link_count graph in
  for i = 0 to n - 1 do
    if up.(i) then
      utilization.(i) <-
        utilization_of_delay
          (Graph.link graph (Link.id_of_int i))
          ~delay_s:delay_s.(i)
  done
[@@hot_path]

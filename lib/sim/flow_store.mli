(** Struct-of-arrays flow store.

    Flows are stored column-wise — int arrays for endpoints, unboxed
    float arrays for demand and the per-flow AIMD throttle — so
    million-flow assignment and adaptation passes stream through flat
    memory with no per-flow boxing.  Structural changes (appends) bump
    {!version}, letting consumers key caches of derived state on
    [(store, version)]; throttle mutation is deliberately not
    structural. *)

open! Import

type t

val create : nodes:int -> t
(** An empty store over node ids [\[0, nodes)]. *)

val nodes : t -> int
val length : t -> int

val version : t -> int
(** Bumped on every {!add}.  Unchanged by throttle writes. *)

val add : t -> src:Node.t -> dst:Node.t -> demand_bps:float -> unit
(** Append a flow with throttle 1.
    @raise Invalid_argument if an endpoint is outside the node range. *)

val src_col : t -> int array
val dst_col : t -> int array
val demand_col : t -> float array

val throttle_col : t -> float array
(** Per-flow AIMD send fraction in [\[0, 1]].  Columns are the live
    backing arrays over indices [\[0, length t)]; they are replaced
    wholesale when the store grows, so re-fetch after any {!add}. *)

val reset_throttle : t -> unit
(** Reopen every flow: throttle back to 1. *)

val total_demand_bps : t -> float

val of_matrix : Traffic_matrix.t -> t
(** One flow per nonzero matrix entry, in [Traffic_matrix.iter]
    (row-major) order — the historical flow order of [Flow_sim]. *)

val to_matrix : t -> Traffic_matrix.t

val aggregate : t -> t
(** Merge flows sharing an ordered (src, dst) pair into one flow at the
    pair's first occurrence, demands summed, throttles reset to 1. *)

(** Per-flow size distribution for {!heavy_tailed}. *)
type size_dist = Pareto of { alpha : float } | Lognormal of { sigma : float }

val heavy_tailed :
  Rng.t -> nodes:int -> flows:int -> total_bps:float -> size:size_dist -> t
(** [heavy_tailed rng ~nodes ~flows ~total_bps ~size] draws [flows]
    host-level flows: endpoints gravity-weighted (log-uniform node
    masses over one decade), self-pairs rejected, sizes from [size],
    then rescaled so the demands sum to [total_bps] exactly.
    Deterministic in [rng]'s seed.  Flows are {e not} aggregated — use
    {!aggregate} for the matrix-level view.
    @raise Invalid_argument if [nodes < 2] or [flows < 0]. *)

open! Import

type size = Fixed of float | Exponential of float

type flow = { src : Node.t; dst : Node.t; rate_pps : float }

type t = {
  rng : Rng.t;
  engine : Engine.t;
  size : size;
  flows : flow array;
  inject : Packet.t -> unit;
  mutable running : bool;
  mutable scale : float;
  mutable generated : int;
}

let mean_bits = function Fixed b -> b | Exponential b -> b

let create ?(size = Exponential 600.) rng engine tm ~inject =
  let flows =
    Traffic_matrix.fold tm ~init:[] ~f:(fun acc ~src ~dst bps ->
        { src; dst; rate_pps = bps /. mean_bits size } :: acc)
    |> List.rev |> Array.of_list
  in
  { rng;
    engine;
    size;
    flows;
    inject;
    running = false;
    scale = 1.;
    generated = 0 }

(* At least one header's worth of bits so service times never vanish —
   for fixed sizes too: a [Fixed 0.] flow must not inject zero-bit
   packets whose service completes instantly. *)
let draw_bits t =
  match t.size with
  | Fixed b -> Float.max 64. b
  | Exponential mean -> Float.max 64. (Rng.exponential t.rng ~mean)

let rec schedule_next t flow =
  let rate = flow.rate_pps *. t.scale in
  if rate > 0. then begin
    let gap = Rng.exponential t.rng ~mean:(1. /. rate) in
    Engine.schedule t.engine ~after:gap (fun () ->
        if t.running then begin
          let packet =
            Packet.make ~src:flow.src ~dst:flow.dst ~bits:(draw_bits t)
              (Engine.now t.engine)
          in
          t.generated <- t.generated + 1;
          t.inject packet;
          schedule_next t flow
        end)
  end

let start t =
  if not t.running then begin
    t.running <- true;
    Array.iter (schedule_next t) t.flows
  end

let stop t = t.running <- false

let set_scale t factor =
  if factor < 0. then invalid_arg "Workload.set_scale: negative";
  t.scale <- factor

let generated_packets t = t.generated

open! Import

(** Scripted scenarios: a topology, traffic, and timed events.

    Extends the {!Routing_topology.Serial} file format with [at] lines so a
    whole experiment — outages, revivals, the HNM install itself, traffic
    growth — replays from one file:

    {v
    trunk  MIT BBN 56T 0.002
    demand MIT BBN 20000
    at 120 link-down MIT BBN     # fail the trunk (both directions)
    at 300 link-up   MIT BBN     # revive it (HN-SPF eases it in)
    at 400 metric hnspf          # install the patch mid-run
    at 500 scale 1.25            # grow all demands 25%
    at 600 adaptive on           # sources start backing off under loss
    v}

    Events bind to the start of the routing period containing their time. *)

type action =
  | Link_down of string * string  (** node names; fails both directions *)
  | Link_up of string * string
  | Set_metric of Metric.kind
  | Scale_traffic of float  (** relative to the file's demands *)
  | Adaptive_sources of bool

type event = {
  at_s : float;
  action : action;
  line : int;  (** 1-based source line, for diagnostics *)
}

type t = {
  graph : Graph.t;
  traffic : Traffic_matrix.t;
  events : event list;  (** sorted by time *)
}

(** {2 Located errors}

    Every parse problem carries its source line; [kind] classifies the
    cross-reference failures so [routing_check] can assign stable
    diagnostic codes without string matching. *)

type error_kind =
  | Syntax  (** malformed line, bad value, unknown directive/metric *)
  | Unknown_node of string  (** event names a node no trunk introduced *)
  | No_trunk of string * string  (** event names a non-adjacent pair *)

type error = { line : int; kind : error_kind; message : string }

val parse : string -> (t, string) result
(** Parse a scenario file's text: [at] lines here, everything else via
    {!Routing_topology.Serial}.  Event node and trunk references are
    checked here, at parse time; the error string is the first problem,
    prefixed ["line %d:"]. *)

val lint : string -> error list * t
(** Like {!parse} but collects {e every} problem (sorted by line)
    alongside the best-effort scenario — bad lines are skipped, events
    with bad references kept.  [parse] succeeds iff the list is empty. *)

val load : string -> (t, string) result

val run :
  ?domains:int ->
  ?telemetry:Telemetry.t ->
  ?tracer:Tracer.t ->
  ?metric:Metric.kind ->
  ?on_period:(Flow_sim.t -> Flow_sim.period_stats -> unit) ->
  t ->
  periods:int ->
  Flow_sim.t
(** Replay on the flow simulator (initial metric defaults to [Hn_spf]),
    firing each event at the start of its period and calling [on_period]
    after every step.  [domains], [telemetry] and [tracer] pass through to
    {!Flow_sim.create} — a tracer flight-records every routing period of
    the replay.  Returns the simulator for inspection.
    @raise Invalid_argument if an event names an unknown node or a pair
    with no direct trunk — impossible for a [t] obtained from {!parse},
    which rejects such references up front. *)

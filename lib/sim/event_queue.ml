(* Binary min-heap as a structure of arrays: times live in an unboxed
   float array, sequence numbers and callbacks in parallel arrays.  The
   hot operations — [min_time] then [pop_min] — read and return unboxed
   floats and an existing closure, so draining an event costs zero
   allocations (the historical entry-record heap boxed an option and a
   tuple per pop). *)

type t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable runs : (unit -> unit) array;
  mutable len : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () =
  { times = Array.make initial_capacity 0.;
    seqs = Array.make initial_capacity 0;
    runs = Array.make initial_capacity ignore;
    len = 0;
    next_seq = 0 }

let is_empty t = t.len = 0

let length t = t.len

let before t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let time = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- time;
  let seq = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- seq;
  let run = t.runs.(i) in
  t.runs.(i) <- t.runs.(j);
  t.runs.(j) <- run

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let first = ref i in
  if left < t.len && before t left !first then first := left;
  if right < t.len && before t right !first then first := right;
  if !first <> i then begin
    swap t i !first;
    sift_down t !first
  end

let grow t =
  let capacity = 2 * Array.length t.times in
  let times = Array.make capacity 0. in
  let seqs = Array.make capacity 0 in
  let runs = Array.make capacity ignore in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.seqs 0 seqs 0 t.len;
  Array.blit t.runs 0 runs 0 t.len;
  t.times <- times;
  t.seqs <- seqs;
  t.runs <- runs

let add t ~time run =
  if Float.is_nan time then invalid_arg "Event_queue.add: NaN time";
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.seqs.(t.len) <- t.next_seq;
  t.runs.(t.len) <- run;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)
[@@hot_path]

let min_time t = if t.len = 0 then Float.infinity else t.times.(0)

let next_time t = if t.len = 0 then None else Some t.times.(0)

let pop_min t =
  if t.len = 0 then invalid_arg "Event_queue.pop_min: empty queue";
  let run = t.runs.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.times.(0) <- t.times.(t.len);
    t.seqs.(0) <- t.seqs.(t.len);
    t.runs.(0) <- t.runs.(t.len);
    sift_down t 0
  end;
  t.runs.(t.len) <- ignore;
  (* release the closure *)
  run
[@@hot_path]

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    let run = pop_min t in
    Some (time, run)
  end

let clear t =
  Array.fill t.runs 0 t.len ignore;
  t.len <- 0;
  t.next_seq <- 0

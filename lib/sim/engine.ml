type t = {
  queue : Event_queue.t;
  mutable now : float;
  mutable processed : int;
}

let create () = { queue = Event_queue.create (); now = 0.; processed = 0 }

let now t = t.now

let schedule_at t ~at run =
  if at < t.now then invalid_arg "Engine.schedule_at: time in the past";
  Event_queue.add t.queue ~time:at run

let schedule t ~after run =
  if after < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.now +. after) run

(* The drain loops read the head's time as an unboxed float and take the
   callback with the allocation-free pop, so processing an event allocates
   nothing here — only whatever the callback itself does. *)
let run_until t horizon =
  let q = t.queue in
  let continue_ = ref true in
  while !continue_ do
    if Event_queue.is_empty q || Event_queue.min_time q > horizon then
      continue_ := false
    else begin
      t.now <- Event_queue.min_time q;
      t.processed <- t.processed + 1;
      (Event_queue.pop_min q) ()
    end
  done;
  if horizon > t.now then t.now <- horizon

let run_all t =
  let q = t.queue in
  while not (Event_queue.is_empty q) do
    t.now <- Event_queue.min_time q;
    t.processed <- t.processed + 1;
    (Event_queue.pop_min q) ()
  done

let events_processed t = t.processed

let pending t = Event_queue.length t.queue

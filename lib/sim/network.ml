open! Import

type config = {
  metric : Metric.kind;
  buffer_packets : int;
  packet_size : Workload.size;
  seed : int;
  ttl_hops : int;
  record_series : bool;
  instant_flooding : bool;
  line_error_rate : float;
  retransmit_interval_s : float;
  use_incremental_spf : bool;
  trace_capacity : int;
  domains : int;
  telemetry : Telemetry.t option;
}

let log_src = Logs.Src.create "routing_sim.network" ~doc:"packet-level simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

let default_config metric =
  { metric;
    buffer_packets = Link_queue.default_buffer_packets;
    packet_size = Workload.Exponential 600.;
    seed = 42;
    ttl_hops = 64;
    record_series = true;
    instant_flooding = true;
    line_error_rate = 0.;
    retransmit_interval_s = 1.0;
    use_incremental_spf = false;
    trace_capacity = 0;
    domains = Domain_pool.default_size ();
    telemetry = None }

(* Telemetry handles, resolved once at creation so the hot paths touch
   plain mutable cells.  The [drops] array is indexed by [reason_index]. *)
type obs_state = {
  tele : Telemetry.t;
  obs_sink : Obs_sink.t;
  drops : Obs_metrics.counter array;
  delivered : Obs_metrics.counter;
  floods : Obs_metrics.counter;
  accepts : Obs_metrics.counter;
  recomputes : Obs_metrics.counter;
  osc_flags : Obs_metrics.counter;
  queue_depth : Obs_metrics.series array;
  cost_hops : Obs_metrics.series array;
      (* flooded cost normalized by the link's idle cost: the paper's
         "reported cost in hops" axis (Figs 5–6) *)
  osc : Obs_oscillation.t;
  spf_refreshes : Obs_metrics.gauge;
  spf_skipped : Obs_metrics.gauge;
  spf_full_sweeps : Obs_metrics.gauge;
  spf_recomputed : Obs_metrics.gauge;
  spf_repaired : Obs_metrics.gauge;
  spf_reused : Obs_metrics.gauge;
  spf_resettled : Obs_metrics.gauge;
}

(* Tiny growable buffer for the per-period expiry sweeps: collect doomed
   keys in one pass over the table, then remove them — no intermediate
   list, and the buffer is reused across periods. *)
type 'a vec = { mutable buf : 'a array; mutable len : int }

let vec_make zero = { buf = Array.make 16 zero; len = 0 }

let vec_push v x =
  if v.len = Array.length v.buf then begin
    let buf = Array.make (2 * v.len) v.buf.(0) in
    Array.blit v.buf 0 buf 0 v.len;
    v.buf <- buf
  end;
  v.buf.(v.len) <- x;
  v.len <- v.len + 1

let vec_clear v = v.len <- 0

let reason_index = function
  | Trace.Buffer_full -> 0
  | Trace.Line_down -> 1
  | Trace.Line_error -> 2
  | Trace.No_route -> 3
  | Trace.Ttl -> 4

let make_obs_state tele ~links =
  let m = Telemetry.metrics tele in
  let spf_gauge which =
    Obs_metrics.gauge m ~labels:[ ("counter", which) ] "spf_engine"
  in
  { tele;
    obs_sink = Telemetry.sink tele;
    drops =
      (let arr =
         List.map
           (fun r ->
             Obs_metrics.counter m
               ~labels:[ ("reason", Trace.reason_name r) ]
               "packets_dropped")
           Trace.all_reasons
       in
       Array.of_list arr);
    delivered = Obs_metrics.counter m "packets_delivered";
    floods = Obs_metrics.counter m "updates_flooded";
    accepts = Obs_metrics.counter m "updates_accepted";
    recomputes = Obs_metrics.counter m "tables_recomputed";
    osc_flags = Obs_metrics.counter m "oscillation_flags";
    queue_depth =
      Array.init links (fun i ->
          Obs_metrics.series m
            ~labels:[ ("link", Printf.sprintf "l%d" i) ]
            "queue_depth");
    cost_hops =
      Array.init links (fun i ->
          Obs_metrics.series m
            ~labels:[ ("link", Printf.sprintf "l%d" i) ]
            "link_cost_hops");
    osc = Telemetry.init_oscillation tele ~links;
    spf_refreshes = spf_gauge "refreshes";
    spf_skipped = spf_gauge "skipped";
    spf_full_sweeps = spf_gauge "full_sweeps";
    spf_recomputed = spf_gauge "sources_recomputed";
    spf_repaired = spf_gauge "sources_repaired";
    spf_reused = spf_gauge "sources_reused";
    spf_resettled = spf_gauge "nodes_resettled" }

let count_event o = function
  | Trace.Packet_delivered _ -> Obs_metrics.inc o.delivered
  | Trace.Packet_dropped { reason; _ } ->
    Obs_metrics.inc o.drops.(reason_index reason)
  | Trace.Update_flooded _ -> Obs_metrics.inc o.floods
  | Trace.Update_accepted _ -> Obs_metrics.inc o.accepts
  | Trace.Tables_recomputed _ -> Obs_metrics.inc o.recomputes
  | Trace.Link_state _ -> ()

type t = {
  graph : Graph.t;
  config : config;
  engine : Engine.t;
  metric : Metric.t;
  psns : Psn.t array;
  mutable queues : Link_queue.t array;
  flooders : Flooder.t array;
  mutable workload : Workload.t option;
  measure : Measure.t;
  min_hops : int array array; (* src * dst, hop count on the up topology *)
  link_up : bool array;
  prev_bits : float array; (* per link, snapshot at last period start *)
  cost_series : Time_series.t array;
  util_series : Time_series.t array;
  (* Non-instant flooding: each node's believed costs, in-flight updates,
     and the latency from origination to each fresh acceptance. *)
  views : int array array; (* node x link; used when not instant_flooding *)
  in_flight : (int, Update.t * float) Hashtbl.t;
  mutable next_update_token : int;
  (* Rosen-style per-line reliability: a control packet sent on a link
     stays pending until the far end acknowledges it; a timer retransmits
     it meanwhile.  (link id, token) -> still unacknowledged. *)
  pending_acks : (int * int, unit) Hashtbl.t;
  (* Reused per-period scratch: expiry-sweep buffers and the per-origin
     changed-cost slots (historically a fresh Hashtbl every period). *)
  doomed_tokens : int vec;
  doomed_acks : (int * int) vec;
  changed_costs : (Link.id * int) list array; (* per origin node *)
  changed_origins : int array; (* origins touched, first-touch order *)
  mutable changed_count : int;
  link_rng : Rng.t;
  flood_latency : Welford.t;
  (* Per-node incremental SPF engines (§2.2's PSN algorithm), used when
     configured and while the whole topology is up. *)
  mutable incrementals : Routing_spf.Incremental.t array;
  (* Shared SPF engines (instant flooding): per-source route trees on the
     flooded costs, and min-hop trees on the up topology, both refreshed
     by diffing and fanned over the pool. *)
  spf : Spf_engine.t;
  min_spf : Spf_engine.t;
  trace : Trace.t option;
  obs : obs_state option;
  mutable started : bool;
  mutable tables_dirty : bool;
}

(* Every structured event flows through here: into the ring buffer (when
   tracing), the JSONL sink and the labeled counters (when telemetry is
   attached).  With both off this is one branch and no allocation. *)
let trace t make_event =
  match (t.trace, t.obs) with
  | None, None -> ()
  | trace_opt, obs_opt ->
    let time = Engine.now t.engine in
    let event = make_event () in
    Option.iter (fun tr -> Trace.record tr ~time event) trace_opt;
    Option.iter
      (fun o ->
        count_event o event;
        Obs_sink.emit o.obs_sink (fun () -> Trace.to_json ~time event))
      obs_opt

let span t name f =
  match t.obs with
  | None -> f ()
  | Some o -> Obs_span.with_ (Telemetry.spans o.tele) ~name f

let link_enabled t lid = t.link_up.(Link.id_to_int lid)

let recompute_min_hops t =
  let n = Graph.node_count t.graph in
  Spf_engine.refresh t.min_spf ~enabled:(link_enabled t) ~cost:(fun _ -> 1);
  for src = 0 to n - 1 do
    let tree = Spf_engine.tree t.min_spf (Node.of_int src) in
    for dst = 0 to n - 1 do
      t.min_hops.(src).(dst) <-
        (let d = Node.of_int dst in
         if Spf_tree.reached tree d then Spf_tree.hops tree d else max_int)
    done
  done

let node_cost_fn t i =
  if t.config.instant_flooding then Metric.cost_fn t.metric
  else fun lid -> t.views.(i).(Link.id_to_int lid)

let install_table_for t i =
  let tree =
    Dijkstra.compute ~enabled:(link_enabled t) t.graph ~cost:(node_cost_fn t i)
      (Node.of_int i)
  in
  Psn.install_table t.psns.(i) (Routing_table.of_tree tree)

let install_tables t =
  if t.config.instant_flooding then begin
    (* Every node routes on the same flooded costs: one engine refresh
       serves all tables, reusing provably unaffected trees. *)
    span t "spf_refresh" (fun () ->
        Spf_engine.refresh t.spf ~enabled:(link_enabled t)
          ~cost:(Metric.cost_fn t.metric));
    Array.iteri
      (fun i psn ->
        Psn.install_table psn
          (Routing_table.of_tree (Spf_engine.tree t.spf (Node.of_int i))))
      t.psns
  end
  else Array.iteri (fun i _ -> install_table_for t i) t.psns;
  t.tables_dirty <- false

let all_links_up t = Array.for_all Fun.id t.link_up

let incremental_active t =
  t.config.use_incremental_spf
  && t.config.instant_flooding
  && Array.length t.incrementals > 0

let build_incrementals t =
  if t.config.use_incremental_spf && t.config.instant_flooding
     && all_links_up t
  then
    t.incrementals <-
      Array.init (Graph.node_count t.graph) (fun i ->
          Routing_spf.Incremental.create t.graph ~root:(Node.of_int i)
            ~initial_cost:(Metric.cost_fn t.metric))
  else t.incrementals <- [||]

(* Apply one period's flooded cost changes through every node's
   incremental engine and refresh the forwarding tables from them. *)
let apply_changes_incrementally t changes =
  Array.iteri
    (fun i inc ->
      List.iter
        (fun (lid, c) -> Routing_spf.Incremental.set_cost inc lid c)
        changes;
      Psn.install_table t.psns.(i)
        (Routing_table.of_next_hops t.graph ~owner:(Node.of_int i)
           (Routing_spf.Incremental.next_hop_array inc)))
    t.incrementals;
  t.tables_dirty <- false

(* Send one in-flight update over a link as a priority control packet and
   keep retransmitting on a timer until the far end acknowledges it. *)
let rec send_control t lid token =
  match Hashtbl.find_opt t.in_flight token with
  | None -> ()
  | Some (u, _) ->
    let link = Graph.link t.graph lid in
    let packet =
      Packet.make ~kind:(Packet.Control token) ~src:link.Link.src
        ~dst:link.Link.dst ~bits:(Update.size_bits u)
        (Engine.now t.engine)
    in
    Measure.record_updates t.measure ~count:0 ~bits:(Update.size_bits u);
    let key = (Link.id_to_int lid, token) in
    Hashtbl.replace t.pending_acks key ();
    Link_queue.enqueue_priority t.queues.(Link.id_to_int lid) packet;
    Engine.schedule t.engine ~after:t.config.retransmit_interval_s (fun () ->
        if Hashtbl.mem t.pending_acks key && t.link_up.(Link.id_to_int lid)
        then send_control t lid token)

and send_ack t lid token =
  (* Acknowledge on the reverse of the line the update arrived over. *)
  let back = Graph.reverse t.graph (Graph.link t.graph lid) in
  if t.link_up.(Link.id_to_int back.Link.id) then begin
    let packet =
      Packet.make ~kind:(Packet.Control_ack token) ~src:back.Link.src
        ~dst:back.Link.dst ~bits:48.
        (Engine.now t.engine)
    in
    Measure.record_updates t.measure ~count:0 ~bits:48.;
    Link_queue.enqueue_priority t.queues.(Link.id_to_int back.Link.id) packet
  end

(* A routing update arrives at a node: accept if fresh, apply the costs to
   this node's view, recompute its table, and forward. *)
and deliver_update t node ~via token =
  match Hashtbl.find_opt t.in_flight token with
  | None -> ()
  | Some (u, originated_s) -> (
    let i = Node.to_int node in
    match Flooder.receive (Psn.flooder t.psns.(i)) ~arrived_on:(Some via) u with
    | Flooder.Duplicate -> ()
    | Flooder.Fresh forward ->
      Welford.add t.flood_latency (Engine.now t.engine -. originated_s);
      trace t (fun () ->
          Trace.Update_accepted
            { at = node;
              origin = u.Update.origin;
              latency_s = Engine.now t.engine -. originated_s });
      List.iter
        (fun (lid, c) -> t.views.(i).(Link.id_to_int lid) <- c)
        u.Update.costs;
      install_table_for t i;
      trace t (fun () -> Trace.Tables_recomputed { at = node });
      List.iter (fun lid -> send_control t lid token) forward)

(* Forwarding: deliver locally, or hand to the next hop's transmitter. *)
and handle_arrival t (packet : Packet.t) node =
  match packet.Packet.kind with
  | Packet.Control token -> (
    (* Control packets are consumed and re-issued hop by hop; [src] names
       the tail of the link they just crossed.  Receipt is acknowledged at
       the line level whether or not the update is fresh. *)
    match Graph.find_link t.graph ~src:packet.Packet.src ~dst:node with
    | Some l ->
      send_ack t l.Link.id token;
      deliver_update t node ~via:l.Link.id token
    | None -> ())
  | Packet.Control_ack token -> (
    (* The ack for our transmission on the reverse of the arrival link. *)
    match Graph.find_link t.graph ~src:node ~dst:packet.Packet.src with
    | Some forward ->
      Hashtbl.remove t.pending_acks (Link.id_to_int forward.Link.id, token)
    | None -> ())
  | Packet.Data -> (
    let psn = t.psns.(Node.to_int node) in
    match Psn.route psn packet with
    | `Deliver ->
      let src = Node.to_int packet.Packet.src
      and dst = Node.to_int packet.Packet.dst in
      let delay_s = Packet.age packet ~now:(Engine.now t.engine) in
      Measure.record_delivery t.measure ~delay_s ~bits:packet.Packet.bits
        ~hops:packet.Packet.hops ~min_hops:t.min_hops.(src).(dst);
      trace t (fun () ->
          Trace.Packet_delivered
            { src = packet.Packet.src;
              dst = packet.Packet.dst;
              delay_s;
              hops = packet.Packet.hops })
    | `No_route ->
      Measure.record_drop t.measure;
      trace t (fun () ->
          Trace.Packet_dropped
            { at = node; src = packet.Packet.src; dst = packet.Packet.dst;
              reason = Trace.No_route })
    | `Forward link ->
      if packet.Packet.hops >= t.config.ttl_hops then begin
        Measure.record_drop t.measure;
        trace t (fun () ->
            Trace.Packet_dropped
              { at = node; src = packet.Packet.src; dst = packet.Packet.dst;
                reason = Trace.Ttl })
      end
      else Link_queue.enqueue t.queues.(Link.id_to_int link.Link.id) packet)

and make_queue t (link : Link.t) =
  Link_queue.create ~buffer_packets:t.config.buffer_packets
    ~error_rate:t.config.line_error_rate ~rng:t.link_rng t.engine link
    ~on_arrival:(fun packet -> handle_arrival t packet link.Link.dst)
    ~on_measured:(fun ~delay_s ->
      let psn = t.psns.(Node.to_int link.Link.src) in
      Measurement.record_packet (Psn.measurement psn link.Link.id) ~delay_s)
    ~on_drop:(fun reason (packet : Packet.t) ->
      match packet.Packet.kind with
      | Packet.Data ->
        Measure.record_drop t.measure;
        trace t (fun () ->
            Trace.Packet_dropped
              { at = link.Link.src;
                src = packet.Packet.src;
                dst = packet.Packet.dst;
                reason =
                  (match reason with
                  | Link_queue.Buffer_full -> Trace.Buffer_full
                  | Link_queue.Line_down -> Trace.Line_down
                  | Link_queue.Corrupted -> Trace.Line_error) })
      | Packet.Control _ | Packet.Control_ack _ ->
        (* Lost to a line error or a downed line; the per-line
           retransmission timer recovers Control packets, and a
           retransmitted Control re-triggers the ack. *)
        ())

(* End-of-period processing: read every measurement, run the metric,
   flood significant changes, recompute tables if anything changed. *)
let routing_period t =
  span t "routing_period" @@ fun () ->
  let period = Units.routing_period_s in
  let now = Engine.now t.engine in
  (* Garbage-collect long-finished floods: anything older than 100 s has
     either been delivered everywhere or superseded by newer sequence
     numbers (the 50-second reliability refloods guarantee the latter). *)
  vec_clear t.doomed_tokens;
  Hashtbl.iter
    (fun token (_, originated_s) ->
      if now -. originated_s > 100. then vec_push t.doomed_tokens token)
    t.in_flight;
  for k = 0 to t.doomed_tokens.len - 1 do
    Hashtbl.remove t.in_flight t.doomed_tokens.buf.(k)
  done;
  vec_clear t.doomed_acks;
  Hashtbl.iter
    (fun ((_, token) as key) () ->
      if not (Hashtbl.mem t.in_flight token) then vec_push t.doomed_acks key)
    t.pending_acks;
  for k = 0 to t.doomed_acks.len - 1 do
    Hashtbl.remove t.pending_acks t.doomed_acks.buf.(k)
  done;
  let all_changes = ref [] in
  Array.iter
    (fun psn ->
      List.iter
        (fun ((link : Link.t), m) ->
          if t.link_up.(Link.id_to_int link.Link.id) then begin
            let avg = Measurement.finish_period m in
            match
              Metric.period_update t.metric link.Link.id ~measured_delay_s:avg
            with
            | Some cost ->
              let origin = Node.to_int link.Link.src in
              if t.changed_costs.(origin) = [] then begin
                t.changed_origins.(t.changed_count) <- origin;
                t.changed_count <- t.changed_count + 1
              end;
              t.changed_costs.(origin) <-
                (link.Link.id, cost) :: t.changed_costs.(origin);
              all_changes := (link.Link.id, cost) :: !all_changes
            | None -> ()
          end)
        (Psn.out_measurements psn))
    t.psns;
  (* Flood one update per origin that had significant changes. *)
  if t.changed_count > 0 then
    Log.debug (fun m ->
        m "t=%.0fs: %d PSNs flooding updates" now t.changed_count);
  span t "flood" (fun () ->
  for k = 0 to t.changed_count - 1 do
      let origin = t.changed_origins.(k) in
      let costs = t.changed_costs.(origin) in
      t.changed_costs.(origin) <- [];
      trace t (fun () ->
          Trace.Update_flooded
            { origin = Node.of_int origin; links = List.length costs });
      if t.config.instant_flooding then begin
        let update = Flooder.originate t.flooders.(origin) ~costs in
        let outcome = Broadcast.flood t.graph t.flooders update in
        Measure.record_updates t.measure ~count:1 ~bits:outcome.Broadcast.bits;
        t.tables_dirty <- true
      end
      else begin
        (* Hop-by-hop propagation on the priority lanes. *)
        let update = Flooder.originate t.flooders.(origin) ~costs in
        let token = t.next_update_token in
        t.next_update_token <- token + 1;
        Hashtbl.replace t.in_flight token (update, Engine.now t.engine);
        Measure.record_updates t.measure ~count:1 ~bits:0.;
        List.iter
          (fun (lid, c) -> t.views.(origin).(Link.id_to_int lid) <- c)
          costs;
        install_table_for t origin;
        List.iter
          (fun (l : Link.t) ->
            if t.link_up.(Link.id_to_int l.Link.id) then
              send_control t l.Link.id token)
          (Graph.out_links t.graph (Node.of_int origin))
      end
  done);
  t.changed_count <- 0;
  if t.tables_dirty && t.config.instant_flooding then begin
    if incremental_active t then apply_changes_incrementally t !all_changes
    else install_tables t
  end;
  (* Per-period series. *)
  if t.config.record_series then
    Array.iteri
      (fun i q ->
        let bits = Link_queue.transmitted_bits q in
        let cap = Link.capacity_bps (Link_queue.link q) in
        Time_series.record t.util_series.(i) ~time:now
          ((bits -. t.prev_bits.(i)) /. (cap *. period));
        t.prev_bits.(i) <- bits;
        Time_series.record t.cost_series.(i) ~time:now
          (float_of_int (Metric.cost t.metric (Link.id_of_int i))))
      t.queues;
  (* Telemetry per-period: queue depths, oscillation detection over the
     flooded costs, and the SPF engine counters kept current. *)
  match t.obs with
  | None -> ()
  | Some o ->
    let on_flag ~link ~time ~flips =
      Obs_metrics.inc o.osc_flags;
      Obs_sink.emit o.obs_sink (fun () ->
          Obs_json.Obj
            [ ("t", Obs_json.Float time);
              ("ev", Obs_json.String "oscillation");
              ("link", Obs_json.Int link);
              ("flips", Obs_json.Int flips) ])
    in
    Array.iteri
      (fun i q ->
        let lid = Link.id_of_int i in
        let cost = Metric.cost t.metric lid in
        let idle = Metric.idle_cost t.config.metric (Graph.link t.graph lid) in
        Obs_metrics.sample o.queue_depth.(i) ~time:now
          (float_of_int (Link_queue.queue_length q));
        Obs_metrics.sample o.cost_hops.(i) ~time:now
          (float_of_int cost /. float_of_int (max 1 idle));
        Obs_oscillation.observe ~on_flag o.osc ~link:i ~time:now ~cost)
      t.queues;
    let s = Spf_engine.stats t.spf in
    Obs_metrics.set o.spf_refreshes (float_of_int s.Spf_engine.refreshes);
    Obs_metrics.set o.spf_skipped (float_of_int s.Spf_engine.skipped);
    Obs_metrics.set o.spf_full_sweeps (float_of_int s.Spf_engine.full_sweeps);
    Obs_metrics.set o.spf_recomputed
      (float_of_int s.Spf_engine.sources_recomputed);
    Obs_metrics.set o.spf_repaired
      (float_of_int s.Spf_engine.sources_repaired);
    Obs_metrics.set o.spf_reused (float_of_int s.Spf_engine.sources_reused);
    Obs_metrics.set o.spf_resettled
      (float_of_int s.Spf_engine.nodes_resettled)

let rec schedule_periods t =
  Engine.schedule t.engine ~after:Units.routing_period_s (fun () ->
      routing_period t;
      schedule_periods t)

let create ?config graph tm =
  let config = Option.value config ~default:(default_config Metric.Hn_spf) in
  let n = Graph.node_count graph in
  let nl = Graph.link_count graph in
  let engine = Engine.create () in
  let rng = Rng.create config.seed in
  let metric = Metric.create config.metric graph in
  let psns = Array.init n (fun i -> Psn.create graph (Node.of_int i)) in
  let pool =
    if config.domains > 1 then Some (Domain_pool.create config.domains)
    else None
  in
  (* The telemetry bundle's tracer flight-records the SPF engines and
     the pool's worker domains, as in {!Flow_sim}. *)
  let tracer =
    match config.telemetry with
    | Some tele -> Telemetry.tracer tele
    | None -> Tracer.null
  in
  if Tracer.enabled tracer then
    Option.iter
      (fun p -> Domain_pool.set_probe p (Some (Tracer.pool_probe tracer)))
      pool;
  let t =
    { graph;
      config;
      engine;
      metric;
      psns;
      queues = [||];
      flooders = Array.map Psn.flooder psns;
      workload = None;
      measure = Measure.create ~nodes:n;
      min_hops = Array.init n (fun _ -> Array.make n max_int);
      link_up = Array.make nl true;
      prev_bits = Array.make nl 0.;
      views =
        Array.init (if config.instant_flooding then 0 else n) (fun _ ->
            Array.init nl (fun i ->
                Metric.cost metric (Link.id_of_int i)));
      in_flight = Hashtbl.create 64;
      next_update_token = 0;
      pending_acks = Hashtbl.create 64;
      doomed_tokens = vec_make 0;
      doomed_acks = vec_make (0, 0);
      changed_costs = Array.make n [];
      changed_origins = Array.make n 0;
      changed_count = 0;
      link_rng = Rng.create (config.seed lxor 0x5F5F5F);
      flood_latency = Welford.create ();
      incrementals = [||];
      spf = Spf_engine.create ?pool ~tracer graph;
      min_spf = Spf_engine.create ?pool ~tracer graph;
      trace =
        (if config.trace_capacity > 0 then
           Some (Trace.create ~capacity:config.trace_capacity)
         else None);
      obs = Option.map (fun tele -> make_obs_state tele ~links:nl)
          config.telemetry;
      cost_series =
        Array.init nl (fun i -> Time_series.create (Printf.sprintf "cost:l%d" i));
      util_series =
        Array.init nl (fun i -> Time_series.create (Printf.sprintf "util:l%d" i));
      started = false;
      tables_dirty = true }
  in
  t.queues <-
    Array.init nl (fun i -> make_queue t (Graph.link graph (Link.id_of_int i)));
  (* Expose the per-link series the simulator already keeps through the
     registry, so a metrics snapshot carries Figs 5–8's raw series without
     recording anything twice. *)
  (match t.obs with
  | None -> ()
  | Some o ->
    let m = Telemetry.metrics o.tele in
    let link_label i = [ ("link", Printf.sprintf "l%d" i) ] in
    Array.iteri
      (fun i s -> Obs_metrics.adopt_series m ~labels:(link_label i) "link_cost" s)
      t.cost_series;
    Array.iteri
      (fun i s ->
        Obs_metrics.adopt_series m ~labels:(link_label i) "link_utilization" s)
      t.util_series);
  build_incrementals t;
  t.workload <-
    Some
      (Workload.create ~size:config.packet_size rng engine tm
         ~inject:(fun packet -> handle_arrival t packet packet.Packet.src));
  recompute_min_hops t;
  install_tables t;
  t

let graph t = t.graph

let metric t = t.metric

let engine t = t.engine

let run t ~duration_s =
  if not t.started then begin
    t.started <- true;
    Option.iter Workload.start t.workload;
    schedule_periods t
  end;
  Engine.run_until t.engine (Engine.now t.engine +. duration_s)

let indicators t =
  Measure.indicators t.measure ~elapsed_s:(Float.max 1e-9 (Engine.now t.engine))

let reset_measurements t = Measure.reset t.measure

let set_link_up t lid up =
  let i = Link.id_to_int lid in
  if t.link_up.(i) <> up then begin
    t.link_up.(i) <- up;
    trace t (fun () -> Trace.Link_state { link = lid; up });
    Log.info (fun m ->
        m "t=%.0fs: link %a %s" (Engine.now t.engine) Link.pp
          (Graph.link t.graph lid)
          (if up then "up (easing in)" else "down"));
    if not up then begin
      (* Updates pending on a dead line will never be acknowledged. *)
      vec_clear t.doomed_acks;
      Hashtbl.iter
        (fun ((l, _) as key) () -> if l = i then vec_push t.doomed_acks key)
        t.pending_acks;
      for k = 0 to t.doomed_acks.len - 1 do
        Hashtbl.remove t.pending_acks t.doomed_acks.buf.(k)
      done
    end;
    Link_queue.set_up t.queues.(i) up;
    if up then Metric.link_up t.metric lid;
    recompute_min_hops t;
    (* The incremental engines assume a fixed topology: rebuild (all up)
       or disable (some link down) and recompute from scratch. *)
    build_incrementals t;
    install_tables t
  end

let cost_series t lid = t.cost_series.(Link.id_to_int lid)

let utilization_series t lid = t.util_series.(Link.id_to_int lid)

let median_delay_ms t = Measure.median_delay_ms t.measure

let p95_delay_ms t = Measure.p95_delay_ms t.measure

let delivered_packets t = Measure.delivered_packets t.measure

let dropped_packets t = Measure.dropped_packets t.measure

let flood_latency_stats t = t.flood_latency

let trace_events t =
  match t.trace with None -> [] | Some tr -> Trace.events tr

let dump_trace t =
  match t.trace with None -> "" | Some tr -> Trace.dump t.graph tr

let generated_packets t =
  match t.workload with
  | Some w -> Workload.generated_packets w
  | None -> 0

let spf_stats t = Spf_engine.stats t.spf

let telemetry t = t.config.telemetry

open! Import

(** The period-driven flow simulator.

    The paper's own §5 analysis works at the level of 10-second routing
    periods, M/M/1 delays and a traffic matrix; this simulator runs that
    control loop directly and is what powers the long experiments (Table 1,
    Fig 13, the Fig 1 oscillation traces):

    + every PSN routes on the currently flooded costs (one SPF tree per
      source, ties broken deterministically);
    + the traffic matrix flows over those routes; per-link offered load,
      utilization and drops follow;
    + each link's expected delay comes from the M/M/1 model at its
      utilization — the same transformation the real PSN's measurement
      would average;
    + the metric turns the period's utilization into (possibly) a flooded
      update; the flooding protocol runs in full for exact overhead
      accounting;
    + next period, everyone routes on the new costs.  "All the nodes in a
      network adjust their routes … simultaneously" (§3.2). *)

type period_stats = {
  time_s : float;  (** end of the period *)
  offered_bps : float;
  delivered_bps : float;
  dropped_bps : float;
  mean_delay_s : float;  (** delivered-traffic-weighted one-way delay *)
  mean_hops : float;  (** traffic-weighted actual path length *)
  mean_min_hops : float;  (** traffic-weighted min-hop path length *)
  updates : int;  (** routing updates flooded this period *)
  update_bits : float;  (** flooding bandwidth spent this period *)
  max_utilization : float;  (** hottest link *)
  congested_links : int;
      (** links offered more than 90 %% of capacity this period — §3.3's
          "spread of congestion" indicator *)
  routes_changed : int;
      (** flows whose first-hop link differs from the previous period —
          §3.3 item 3's per-flow route oscillation, counted *)
  next_hop_flips : int;
      (** route changes that returned to the first hop of two periods ago
          (A→B→A) — the sharpest oscillation signature, after Rzepka &
          Chołda's route-change counters *)
  link_flips : int;
      (** per-link flooded-cost direction flips this period, summed over
          links ({!Routing_obs.Oscillation}) *)
}

type t

val create :
  ?domains:int -> ?telemetry:Telemetry.t -> ?tracer:Tracer.t -> Graph.t ->
  Metric.kind -> Traffic_matrix.t -> t
(** The flow simulator is fully deterministic: same inputs, same run.
    [domains] (default {!Domain_pool.default_size}, i.e. the
    [ARPANET_DOMAINS] environment variable or 1) sizes the domain pool the
    SPF engine fans per-source computations over; because every engine
    configuration serves bit-identical trees, the domain count never
    changes results — only wall-clock time.

    [telemetry] (default none) attaches a telemetry bundle: per-link
    utilization/cost series and update counters accumulate in its metrics
    registry, each period emits a JSONL summary event through its sink,
    SPF refreshes and routing periods run inside profiling spans, and the
    oscillation detector watches every link's flooded cost.  Everything
    recorded is deterministic (span durations stay 0 unless the bundle
    uses {!Routing_obs.Span.wall}).

    [tracer] (default: the telemetry bundle's tracer, or {!Tracer.null})
    flight-records the run: every routing period, SPF refresh, flow
    assignment and flood becomes a span on the calling domain's track, the
    SPF engines record their recompute/repair batches, and worker domains
    record the source chunks they drain. *)

val create_with :
  ?domains:int -> ?telemetry:Telemetry.t -> ?tracer:Tracer.t -> Graph.t ->
  Metric.t -> Traffic_matrix.t -> t
(** Use a pre-built metric — e.g. a custom-parameterized HNM from
    {!Routing_metric.Metric.create_custom_hnspf}. *)

val telemetry : t -> Telemetry.t option

val graph : t -> Graph.t

val metric : t -> Metric.t

val time_s : t -> float

val period_index : t -> int

val tick : t -> unit
(** Run one routing period, retaining its statistics in the simulator's
    struct-of-arrays history ({!step} without building the record).  In
    steady state — no flooded update, no topology or traffic change, no
    telemetry bundle, adaptive sources off — a tick allocates {e zero}
    minor words, even with a live {!Tracer} under its default untimed
    clock; the allocation-regression test pins this with
    [Gc.minor_words]. *)

val step : t -> period_stats
(** Run one routing period and return its statistics (also retained
    internally for {!indicators}). *)

val run : t -> periods:int -> period_stats list
(** [periods] consecutive steps, in order. *)

val set_traffic : t -> Traffic_matrix.t -> unit
(** Replace the offered traffic from the next period on. *)

val set_flows : t -> Flow_store.t -> unit
(** Install a flow store directly — e.g. a host-level heavy-tailed store
    from {!Flow_store.heavy_tailed} with many flows per (src, dst) pair.
    AIMD throttles live in the store's throttle column, so the new store
    starts from its own column (fresh stores: all 1).  Above ~4k flows the
    per-period assignment fans source stripes over the domain pool with
    bit-identical results ({!Load_assign.assign}).
    @raise Invalid_argument if the store's node count differs from the
    graph's. *)

val flows : t -> Flow_store.t
(** The currently installed flow store (live, not a copy). *)

val switch_metric : t -> Metric.kind -> unit
(** Swap the metric mid-run — installing the HNM patch.  Link costs restart
    from the new metric's idle values and flood immediately, as a software
    reload would. *)

val set_link_up : t -> Link.id -> bool -> unit
(** Fail or restore one simplex link.  A restored HN-SPF link eases in at
    its maximum cost. *)

val set_adaptive_sources : t -> bool -> unit
(** Model end-to-end backoff (off by default): each flow's source reduces
    its sending rate multiplicatively when its path loses more than 2 %
    of its traffic in a period and recovers additively otherwise.  The
    1987 ARPANET's hosts did back off (TCP and the IMP end-to-end
    mechanisms), which is why the paper's Table 1 shows delivered traffic
    tracking offered traffic even under the unstable metric; without it
    the simulator offers the full matrix relentlessly.  Throttles are
    per-flow, stored unboxed in the flow store's throttle column; the
    adaptation step is one array pass.  Disabling resets every throttle
    to 1. *)

val set_stagger : t -> float -> unit
(** What-if knob for §3.2's third oscillation ingredient ("all the nodes
    in a network adjust their routes ... simultaneously"): make the given
    fraction of nodes apply routing updates one period late.  The real PSN
    could not do this — it would break destination-only forwarding — so
    transient forwarding loops become possible; the flow simulator routes
    each flow from its source's tree and does not model them.  0 (the
    default) is faithful ARPANET behaviour.
    @raise Invalid_argument outside [\[0, 1\]]. *)

val link_utilization : t -> Link.id -> float
(** Utilization in the most recent period (0 before any step). *)

val link_cost : t -> Link.id -> int
(** Currently flooded cost. *)

val spf_stats : t -> Spf_engine.stats
(** Live counters of the main SPF engine: how many refreshes were skipped
    outright (no significant update flooded), how many source trees were
    reused versus recomputed. *)

val route_change_totals : t -> int * int * int
(** [(routes_changed, next_hop_flips, link_flips)] summed over every
    period so far — the Rzepka & Chołda-style change counters the sweep
    reports publish per point. *)

val indicators : t -> ?skip:int -> unit -> Measure.indicators
(** Aggregate the retained per-period stats into Table-1 indicators,
    ignoring the first [skip] periods (default 0) as warm-up.
    @raise Invalid_argument when no periods remain. *)

val history : t -> period_stats list
(** All periods so far, oldest first. *)

open! Import

type event =
  | Packet_delivered of { src : Node.t; dst : Node.t; delay_s : float;
                          hops : int }
  | Packet_dropped of { at : Node.t; src : Node.t; dst : Node.t;
                        reason : drop_reason }
  | Update_flooded of { origin : Node.t; links : int }
  | Update_accepted of { at : Node.t; origin : Node.t; latency_s : float }
  | Tables_recomputed of { at : Node.t }
  | Link_state of { link : Link.id; up : bool }

and drop_reason = Buffer_full | Line_down | Line_error | No_route | Ttl

let reason_name = function
  | Buffer_full -> "buffer-full"
  | Line_down -> "line-down"
  | Line_error -> "line-error"
  | No_route -> "no-route"
  | Ttl -> "ttl"

let reason_of_name = function
  | "buffer-full" -> Some Buffer_full
  | "line-down" -> Some Line_down
  | "line-error" -> Some Line_error
  | "no-route" -> Some No_route
  | "ttl" -> Some Ttl
  | _ -> None

let all_reasons = [ Buffer_full; Line_down; Line_error; No_route; Ttl ]

let pp_event g ppf = function
  | Packet_delivered { src; dst; delay_s; hops } ->
    Format.fprintf ppf "delivered %s->%s in %.1f ms over %d hops"
      (Graph.node_name g src) (Graph.node_name g dst) (1000. *. delay_s) hops
  | Packet_dropped { at; src; dst; reason } ->
    Format.fprintf ppf "dropped %s->%s at %s (%s)" (Graph.node_name g src)
      (Graph.node_name g dst) (Graph.node_name g at) (reason_name reason)
  | Update_flooded { origin; links } ->
    Format.fprintf ppf "update from %s covering %d links"
      (Graph.node_name g origin) links
  | Update_accepted { at; origin; latency_s } ->
    Format.fprintf ppf "%s accepted update from %s after %.1f ms"
      (Graph.node_name g at) (Graph.node_name g origin) (1000. *. latency_s)
  | Tables_recomputed { at } ->
    Format.fprintf ppf "%s recomputed its routing table" (Graph.node_name g at)
  | Link_state { link; up } ->
    Format.fprintf ppf "link %a %s" Link.pp_id link (if up then "up" else "down")

let pp_event_ids ppf = function
  | Packet_delivered { src; dst; delay_s; hops } ->
    Format.fprintf ppf "delivered n%d->n%d in %.1f ms over %d hops"
      (Node.to_int src) (Node.to_int dst) (1000. *. delay_s) hops
  | Packet_dropped { at; src; dst; reason } ->
    Format.fprintf ppf "dropped n%d->n%d at n%d (%s)" (Node.to_int src)
      (Node.to_int dst) (Node.to_int at) (reason_name reason)
  | Update_flooded { origin; links } ->
    Format.fprintf ppf "update from n%d covering %d links" (Node.to_int origin)
      links
  | Update_accepted { at; origin; latency_s } ->
    Format.fprintf ppf "n%d accepted update from n%d after %.1f ms"
      (Node.to_int at) (Node.to_int origin) (1000. *. latency_s)
  | Tables_recomputed { at } ->
    Format.fprintf ppf "n%d recomputed its routing table" (Node.to_int at)
  | Link_state { link; up } ->
    Format.fprintf ppf "link %a %s" Link.pp_id link (if up then "up" else "down")

(* ---------------------------------------------------------------- *)
(* JSONL encoding: node and link ids (stable integers), one object   *)
(* per event, self-describing via "ev".  [of_json] inverts [to_json] *)
(* exactly — see test_obs.ml's qcheck round-trip.                    *)

module J = Obs_json

let event_name = function
  | Packet_delivered _ -> "deliver"
  | Packet_dropped _ -> "drop"
  | Update_flooded _ -> "flood"
  | Update_accepted _ -> "accept"
  | Tables_recomputed _ -> "recompute"
  | Link_state _ -> "link"

let to_json ~time event =
  let node n = J.Int (Node.to_int n) in
  let fields =
    match event with
    | Packet_delivered { src; dst; delay_s; hops } ->
      [ ("src", node src); ("dst", node dst); ("delay_s", J.Float delay_s);
        ("hops", J.Int hops) ]
    | Packet_dropped { at; src; dst; reason } ->
      [ ("at", node at); ("src", node src); ("dst", node dst);
        ("reason", J.String (reason_name reason)) ]
    | Update_flooded { origin; links } ->
      [ ("origin", node origin); ("links", J.Int links) ]
    | Update_accepted { at; origin; latency_s } ->
      [ ("at", node at); ("origin", node origin);
        ("latency_s", J.Float latency_s) ]
    | Tables_recomputed { at } -> [ ("at", node at) ]
    | Link_state { link; up } ->
      [ ("link", J.Int (Link.id_to_int link)); ("up", J.Bool up) ]
  in
  J.Obj
    (("t", J.Float time) :: ("ev", J.String (event_name event)) :: fields)

let of_json json =
  let ( let* ) = Result.bind in
  let node key = Result.map Node.of_int (Result.bind (J.member key json) J.to_int) in
  let int key = Result.bind (J.member key json) J.to_int in
  let float key = Result.bind (J.member key json) J.to_float in
  let* time = float "t" in
  let* ev = Result.bind (J.member "ev" json) J.to_str in
  let* event =
    match ev with
    | "deliver" ->
      let* src = node "src" in
      let* dst = node "dst" in
      let* delay_s = float "delay_s" in
      let* hops = int "hops" in
      Ok (Packet_delivered { src; dst; delay_s; hops })
    | "drop" ->
      let* at = node "at" in
      let* src = node "src" in
      let* dst = node "dst" in
      let* name = Result.bind (J.member "reason" json) J.to_str in
      let* reason =
        Option.to_result ~none:(Printf.sprintf "unknown drop reason %S" name)
          (reason_of_name name)
      in
      Ok (Packet_dropped { at; src; dst; reason })
    | "flood" ->
      let* origin = node "origin" in
      let* links = int "links" in
      Ok (Update_flooded { origin; links })
    | "accept" ->
      let* at = node "at" in
      let* origin = node "origin" in
      let* latency_s = float "latency_s" in
      Ok (Update_accepted { at; origin; latency_s })
    | "recompute" ->
      let* at = node "at" in
      Ok (Tables_recomputed { at })
    | "link" ->
      let* link = Result.map Link.id_of_int (int "link") in
      let* up = Result.bind (J.member "up" json) J.to_bool in
      Ok (Link_state { link; up })
    | other -> Error (Printf.sprintf "unknown event type %S" other)
  in
  Ok (time, event)

type t = {
  ring : (float * event) option array;
  mutable next : int;
  mutable total : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  { ring = Array.make capacity None; next = 0; total = 0 }

let record t ~time event =
  t.ring.(t.next) <- Some (time, event);
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let length t = min t.total (Array.length t.ring)

let total_recorded t = t.total

let iter t ~f =
  let cap = Array.length t.ring in
  let n = length t in
  for i = 0 to n - 1 do
    match t.ring.((t.next - n + i + (2 * cap)) mod cap) with
    | Some (time, event) -> f ~time event
    | None -> assert false
  done

let events t =
  let acc = ref [] in
  iter t ~f:(fun ~time event -> acc := (time, event) :: !acc);
  List.rev !acc

let filter t ~f = List.filter (fun (_, e) -> f e) (events t)

let dump g t =
  let buffer = Buffer.create 4096 in
  let dropped = total_recorded t - length t in
  if dropped > 0 then
    Buffer.add_string buffer
      (Printf.sprintf "(%d earlier events dropped)\n" dropped);
  iter t ~f:(fun ~time event ->
      Buffer.add_string buffer
        (Format.asprintf "%10.3f  %a\n" time (pp_event g) event));
  Buffer.contents buffer

open! Import

(** Structured event tracing for the packet simulator.

    Typed events with two consumers: the bounded ring buffer below (the
    debugging view a PSN's console would give an operator, opt-in via
    {!Network.config.trace_capacity}) and the telemetry event sink, which
    serializes every event as one JSONL line through {!to_json} — the
    canonical durable record of a run ([--trace-out]).  When both are off,
    the hooks cost one branch. *)

type event =
  | Packet_delivered of { src : Node.t; dst : Node.t; delay_s : float;
                          hops : int }
  | Packet_dropped of { at : Node.t; src : Node.t; dst : Node.t;
                        reason : drop_reason }
  | Update_flooded of { origin : Node.t; links : int }
      (** a PSN originated a routing update covering [links] of its lines *)
  | Update_accepted of { at : Node.t; origin : Node.t; latency_s : float }
  | Tables_recomputed of { at : Node.t }
  | Link_state of { link : Link.id; up : bool }

and drop_reason = Buffer_full | Line_down | Line_error | No_route | Ttl

val reason_name : drop_reason -> string

val reason_of_name : string -> drop_reason option

val all_reasons : drop_reason list

val pp_event : Graph.t -> Format.formatter -> event -> unit

val pp_event_ids : Format.formatter -> event -> unit
(** Like {!pp_event} but prints node ids ([n3]) instead of names — for
    consumers of a JSONL stream that have no topology at hand. *)

val to_json : time:float -> event -> Routing_obs.Json.t
(** One self-describing JSON object (field ["ev"] carries the event type;
    nodes and links appear as their stable integer ids). *)

val of_json : Routing_obs.Json.t -> (float * event, string) result
(** Exact inverse of {!to_json}. *)

type t

val create : capacity:int -> t
(** Keeps the most recent [capacity] events.
    @raise Invalid_argument if [capacity <= 0]. *)

val record : t -> time:float -> event -> unit

val length : t -> int
(** Events currently retained (≤ capacity). *)

val total_recorded : t -> int
(** Events ever recorded, including those that have rotated out. *)

val iter : t -> f:(time:float -> event -> unit) -> unit
(** Visit retained events oldest first without allocating the list
    {!events} builds. *)

val events : t -> (float * event) list
(** Retained events, oldest first. *)

val filter : t -> f:(event -> bool) -> (float * event) list

val dump : Graph.t -> t -> string
(** One line per retained event, for logs or debugging sessions.  When the
    ring has wrapped, the first line reads ["(N earlier events dropped)"]
    so truncation is never silent. *)

open! Import
module Table = Routing_stats.Table

type indicators = {
  elapsed_s : float;
  internode_traffic_bps : float;
  round_trip_delay_ms : float;
  updates_per_s : float;
  update_period_per_node_s : float;
  actual_path_hops : float;
  minimum_path_hops : float;
  path_ratio : float;
  dropped_per_s : float;
  overhead_bps : float;
  delay_p50_ms : float;
  delay_p95_ms : float;
  delay_p99_ms : float;
  route_changes_per_period : float;
  next_hop_flips_per_period : float;
  link_flips_per_period : float;
}

let pp_indicators ppf i =
  Format.fprintf ppf
    "@[<v>traffic %.1f kb/s, rtt %.1f ms, %.2f upd/s (period/node %.1f s),@ \
     path %.2f vs min %.2f (ratio %.2f), drops %.2f/s, overhead %.1f b/s@]"
    (i.internode_traffic_bps /. 1000.)
    i.round_trip_delay_ms i.updates_per_s i.update_period_per_node_s
    i.actual_path_hops i.minimum_path_hops i.path_ratio i.dropped_per_s
    i.overhead_bps

let export ?(labels = []) registry i =
  let g name v = Obs_metrics.set (Obs_metrics.gauge registry ~labels name) v in
  g "indicator_elapsed_s" i.elapsed_s;
  g "indicator_internode_traffic_bps" i.internode_traffic_bps;
  g "indicator_round_trip_delay_ms" i.round_trip_delay_ms;
  g "indicator_updates_per_s" i.updates_per_s;
  g "indicator_update_period_per_node_s" i.update_period_per_node_s;
  g "indicator_actual_path_hops" i.actual_path_hops;
  g "indicator_minimum_path_hops" i.minimum_path_hops;
  g "indicator_path_ratio" i.path_ratio;
  g "indicator_dropped_per_s" i.dropped_per_s;
  g "indicator_overhead_bps" i.overhead_bps;
  g "indicator_delay_p50_ms" i.delay_p50_ms;
  g "indicator_delay_p95_ms" i.delay_p95_ms;
  g "indicator_delay_p99_ms" i.delay_p99_ms;
  g "indicator_route_changes_per_period" i.route_changes_per_period;
  g "indicator_next_hop_flips_per_period" i.next_hop_flips_per_period;
  g "indicator_link_flips_per_period" i.link_flips_per_period

let comparison_table ?title runs =
  let columns =
    ("Indicator", Table.Left)
    :: List.map (fun (label, _) -> (label, Table.Right)) runs
  in
  let table = Table.create ?title columns in
  let row label ?(decimals = 2) value =
    ignore
      (Table.add_float_row table ~decimals label
         (List.map (fun (_, i) -> value i) runs))
  in
  row "Internode Traffic (kb/s)" (fun i -> i.internode_traffic_bps /. 1000.);
  row "Round Trip Delay (ms)" (fun i -> i.round_trip_delay_ms);
  row "Rtng. Updates per Net/s" (fun i -> i.updates_per_s);
  row "Update Period per Node (s)" (fun i -> i.update_period_per_node_s);
  row "Internode Actual Path (hops)" (fun i -> i.actual_path_hops);
  row "Internode Minimum Path (hops)" (fun i -> i.minimum_path_hops);
  row "Path Ratio (Actual/Min.)" (fun i -> i.path_ratio);
  row "Dropped Packets (/s)" (fun i -> i.dropped_per_s);
  row "Routing Overhead (b/s)" ~decimals:0 (fun i -> i.overhead_bps);
  row "One-way Delay p50 (ms)" (fun i -> i.delay_p50_ms);
  row "One-way Delay p95 (ms)" (fun i -> i.delay_p95_ms);
  row "One-way Delay p99 (ms)" (fun i -> i.delay_p99_ms);
  row "Route Changes (/period)" (fun i -> i.route_changes_per_period);
  row "Next-hop Flips (/period)" (fun i -> i.next_hop_flips_per_period);
  row "Link Dir. Flips (/period)" (fun i -> i.link_flips_per_period);
  table

module Quantile = Routing_stats.Quantile

type t = {
  nodes : int;
  delay : Welford.t;
  mutable delay_p50 : Quantile.t;
  mutable delay_p95 : Quantile.t;
  mutable delay_p99 : Quantile.t;
  hops : Welford.t;
  min_hops : Welford.t;
  mutable delivered_bits : float;
  mutable delivered : int;
  mutable dropped : int;
  mutable updates : int;
  mutable update_bits : float;
}

let create ~nodes =
  { nodes;
    delay = Welford.create ();
    delay_p50 = Quantile.create 0.5;
    delay_p95 = Quantile.create 0.95;
    delay_p99 = Quantile.create 0.99;
    hops = Welford.create ();
    min_hops = Welford.create ();
    delivered_bits = 0.;
    delivered = 0;
    dropped = 0;
    updates = 0;
    update_bits = 0. }

let record_delivery t ~delay_s ~bits ~hops ~min_hops =
  Welford.add t.delay delay_s;
  Quantile.add t.delay_p50 delay_s;
  Quantile.add t.delay_p95 delay_s;
  Quantile.add t.delay_p99 delay_s;
  Welford.add t.hops (float_of_int hops);
  Welford.add t.min_hops (float_of_int min_hops);
  t.delivered_bits <- t.delivered_bits +. bits;
  t.delivered <- t.delivered + 1

let record_drop t = t.dropped <- t.dropped + 1

let record_updates t ~count ~bits =
  t.updates <- t.updates + count;
  t.update_bits <- t.update_bits +. bits

let delivered_packets t = t.delivered

let dropped_packets t = t.dropped

let delay_stats t = t.delay

let median_delay_ms t = 1000. *. Quantile.value t.delay_p50

let p95_delay_ms t = 1000. *. Quantile.value t.delay_p95

let p99_delay_ms t = 1000. *. Quantile.value t.delay_p99

(* The P² estimators report [nan] before their first observation; the
   indicator record carries 0 instead so exports stay valid JSON. *)
let quantile_ms q =
  let v = Quantile.value q in
  if Float.is_nan v then 0. else 1000. *. v

let indicators t ~elapsed_s =
  if elapsed_s <= 0. then invalid_arg "Measure.indicators: elapsed <= 0";
  let actual = Welford.mean t.hops in
  let minimum = Welford.mean t.min_hops in
  { elapsed_s;
    internode_traffic_bps = t.delivered_bits /. elapsed_s;
    round_trip_delay_ms = 2. *. Welford.mean t.delay *. 1000.;
    updates_per_s = float_of_int t.updates /. elapsed_s;
    update_period_per_node_s =
      (if t.updates = 0 then infinity
       else float_of_int t.nodes *. elapsed_s /. float_of_int t.updates);
    actual_path_hops = actual;
    minimum_path_hops = minimum;
    path_ratio = (if minimum > 0. then actual /. minimum else 1.);
    dropped_per_s = float_of_int t.dropped /. elapsed_s;
    overhead_bps = t.update_bits /. elapsed_s;
    delay_p50_ms = quantile_ms t.delay_p50;
    delay_p95_ms = quantile_ms t.delay_p95;
    delay_p99_ms = quantile_ms t.delay_p99;
    route_changes_per_period = 0.;
    next_hop_flips_per_period = 0.;
    link_flips_per_period = 0. }

let reset t =
  Welford.reset t.delay;
  t.delay_p50 <- Quantile.create 0.5;
  t.delay_p95 <- Quantile.create 0.95;
  t.delay_p99 <- Quantile.create 0.99;
  Welford.reset t.hops;
  Welford.reset t.min_hops;
  t.delivered_bits <- 0.;
  t.delivered <- 0;
  t.dropped <- 0;
  t.updates <- 0;
  t.update_bits <- 0.

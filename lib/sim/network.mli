open! Import

(** The packet-level ARPANET simulator.

    Assembles PSNs, link transmitters, a Poisson workload, a metric and the
    flooding protocol over a discrete-event engine and runs the full
    control loop: per-packet delay measurement → 10-second averaging →
    metric transformation → significance filtering → flooding → SPF
    recomputation → forwarding.

    The one deliberate simplification (shared with the paper's own model)
    is that a flooded update takes effect network-wide within the routing
    period it was generated in: "all the nodes in a network adjust their
    routes … simultaneously" because update processing outruns data traffic
    (§3.2).  The flooding protocol still runs in full to account for its
    bandwidth. *)

type config = {
  metric : Metric.kind;
  buffer_packets : int;  (** store-and-forward buffers per line *)
  packet_size : Workload.size;
  seed : int;
  ttl_hops : int;  (** discard packets exceeding this hop count *)
  record_series : bool;  (** keep per-period cost/utilization series *)
  instant_flooding : bool;
      (** [true] (default): a flooded update takes effect network-wide
          within its period — the paper's synchrony assumption.  [false]:
          updates travel hop-by-hop as priority control packets with
          per-line acknowledgement and retransmission (Rosen's updating
          protocol); each node recomputes its table on receipt (brief
          inconsistency windows are possible), and {!flood_latency_stats}
          measures how long floods actually take — validating that they
          are far faster than the 10-second period. *)
  line_error_rate : float;
      (** per-packet probability that a line corrupts a transmission
          (default 0).  Data packets are simply lost; control packets are
          retransmitted until acknowledged. *)
  retransmit_interval_s : float;  (** control retransmission timer (1 s) *)
  use_incremental_spf : bool;
      (** maintain per-node incremental SPF engines (§2.2: the PSN
          "attempts to perform only incremental adjustments") instead of
          recomputing every tree from scratch each period.  Default false;
          only active with [instant_flooding] and a fully-up topology —
          otherwise the simulator falls back to full recomputation.
          Results are identical up to equal-cost tie-breaking. *)
  trace_capacity : int;
      (** keep the most recent N structured {!Trace} events (0, the
          default, disables tracing) *)
  domains : int;
      (** domain-pool size for the shared SPF engine (instant flooding
          only).  Defaults to {!Domain_pool.default_size} — the
          [ARPANET_DOMAINS] environment variable, or 1.  Never changes
          results, only wall-clock time. *)
  telemetry : Telemetry.t option;
      (** attach a telemetry bundle (default [None]): every {!Trace} event
          is serialized as JSONL through the bundle's sink, drop/delivery/
          update counters and per-link cost/utilization/queue-depth series
          accumulate in its metrics registry, SPF refreshes and routing
          periods run inside profiling spans, and the oscillation detector
          watches every link's flooded cost.  All recorded data is
          deterministic for a fixed [seed] (span durations stay 0 unless
          the bundle was created with {!Routing_obs.Span.wall}). *)
}

val default_config : Metric.kind -> config
(** 40 buffers, exponential 600-bit packets, seed 42, ttl 64, series on,
    instant flooding. *)

type t

val create : ?config:config -> Graph.t -> Traffic_matrix.t -> t
(** Builds everything and installs initial routing tables; the workload
    starts when {!run} is first called.  Default config:
    [default_config Hn_spf]. *)

val graph : t -> Graph.t

val metric : t -> Routing_metric.Metric.t

val engine : t -> Engine.t

val run : t -> duration_s:float -> unit
(** Advance the simulation; may be called repeatedly to run in stages. *)

val indicators : t -> Measure.indicators
(** Aggregated over everything since creation (or the last
    {!reset_measurements}). *)

val reset_measurements : t -> unit
(** Forget accumulated statistics (e.g. after warm-up). *)

val set_link_up : t -> Link.id -> bool -> unit
(** Take one simplex link down or bring it back (its reverse is separate).
    Coming back up, an HN-SPF link eases in at maximum cost (§5.4). *)

val cost_series : t -> Link.id -> Routing_stats.Time_series.t
(** Per-period flooded cost of a link (empty unless [record_series]). *)

val utilization_series : t -> Link.id -> Routing_stats.Time_series.t

val trace_events : t -> (float * Trace.event) list
(** Retained trace events, oldest first (empty when tracing is off). *)

val dump_trace : t -> string
(** Human-readable rendering of the retained trace. *)

val flood_latency_stats : t -> Routing_stats.Welford.t
(** Origination-to-acceptance latencies over all (node, update) pairs —
    only populated when [instant_flooding = false]. *)

val median_delay_ms : t -> float
(** Streaming one-way delay median since creation or the last
    {!reset_measurements}. *)

val p95_delay_ms : t -> float

val delivered_packets : t -> int

val dropped_packets : t -> int

val generated_packets : t -> int

val spf_stats : t -> Spf_engine.stats
(** Live counters of the shared SPF engine — refreshes skipped vs
    incremental vs full, trees reused vs recomputed (see
    {!Routing_spf.Spf_engine.stats}). *)

val telemetry : t -> Telemetry.t option
(** The bundle passed in via {!config.telemetry}, if any. *)

(** Time-ordered event queue for the discrete-event engine.

    Events at equal times fire in insertion order (a strict FIFO tie-break),
    which keeps simulations deterministic.

    Stored as a structure of arrays so the drain loop allocates nothing:
    peek the head's time with {!min_time} (an unboxed float), then take its
    callback with {!pop_min}. *)

type t

val create : unit -> t

val is_empty : t -> bool

val length : t -> int

val add : t -> time:float -> (unit -> unit) -> unit
(** @raise Invalid_argument on NaN time. *)

val min_time : t -> float
(** Time of the earliest event; [infinity] when empty.  Never allocates. *)

val pop_min : t -> unit -> unit
(** Remove the earliest event (FIFO among ties) and return its callback
    without boxing anything.  Read {!min_time} first if the event's time
    is needed.
    @raise Invalid_argument on an empty queue. *)

val next_time : t -> float option
(** Allocating convenience wrapper over {!min_time}. *)

val pop : t -> (float * (unit -> unit)) option
(** Allocating convenience wrapper over {!min_time} + {!pop_min}. *)

val clear : t -> unit

open! Import

(* Destination-aggregated flow assignment.

   The historical hot path walked every flow's tree path individually:
   O(flows × path length) per period, with most links visited once per
   flow crossing them.  But all of a source's flows ride the *same* SPF
   tree, and a link's offered load is just the total demand of the subtree
   hanging off it.  So per source:

   + bucket the source's flow demands onto their destination nodes,
   + sweep the reached nodes leaves-inward (descending hop count — a
     counting sort, since tree depth is bounded by the 8-bit hop field),
     adding each node's accumulated demand to its parent link and parent
     node.

   One pass over the flows plus one pass over the tree: O(V + E + F_s) per
   source instead of O(F_s × path length).  The same sweep run root-outward
   labels every node with its first-hop link, path delay and survival
   share, making the per-flow metrics pass O(1) per flow.

   Sources are independent up to the shared [offered] sums, so the pass
   also parallelizes: stripes of consecutive sources run on pool domains,
   each recording its (link, load) contributions into a per-stripe stream
   in sweep order instead of summing into [offered] directly.  Replaying
   the streams in stripe order afterwards performs the float additions in
   exactly the sequential source order, so the parallel path is
   bit-identical to the sequential one at any domain count.

   Everything here writes into caller- or self-owned scratch sized once;
   steady-state periods allocate nothing on the sequential path (stream
   growth on the parallel path is amortized and reaches a fixed point). *)

(* Tree depth is bounded by the composite-weight encoding's 8-bit hop
   field, so counting sort over hop counts needs this many buckets. *)
let max_hops = 256

(* Sources per parallel work item: big enough to amortize handout
   overhead, small enough that a 200-node graph still yields a dozen
   stealable stripes. *)
let stripe_width = 16

(* Per-participant sweep scratch for the parallel path.  A participant
   slot is held by at most one domain per loop, so slot-indexed scratch
   is race-free (see [Domain_pool.parallel_for_dynamic_with]). *)
type scratch = {
  p_acc : float array;
  p_order : int array;
  p_bucket : int array;
  p_first_link : int array;
}

(* Per-stripe contribution stream: (link, load) pushes recorded in sweep
   order, replayed in stripe order for bit-identity with the sequential
   pass. *)
type stream = {
  mutable q_link : int array;
  mutable q_val : float array;
  mutable q_len : int;
}

let new_stream () = { q_link = [||]; q_val = [||]; q_len = 0 }

(* Out of line so the push fast path stays allocation-free; growth
   reaches a fixed point after the first few periods. *)
let[@inline never] grow_stream st =
  let cap = Array.length st.q_link in
  let cap' = if cap = 0 then 256 else 2 * cap in
  let link = Array.make cap' 0 and value = Array.make cap' 0. in
  Array.blit st.q_link 0 link 0 st.q_len;
  Array.blit st.q_val 0 value 0 st.q_len;
  st.q_link <- link;
  st.q_val <- value

let[@inline] push st p a =
  if st.q_len = Array.length st.q_link then grow_stream st;
  st.q_link.(st.q_len) <- p;
  st.q_val.(st.q_len) <- a;
  st.q_len <- st.q_len + 1

type t = {
  graph : Graph.t;
  n : int; (* nodes *)
  (* CSR-style grouping of flow indices by source node, keyed on the
     store's identity and version (appends bump the version; throttle
     writes don't). *)
  mutable grouped : Flow_store.t option;
  mutable grouped_version : int;
  by_src_off : int array; (* n + 1 *)
  mutable by_src_flow : int array;
  (* per-source sweep scratch (sequential path) *)
  lsrc : int array; (* per link: its source node, denormalized from the graph *)
  acc : float array; (* per node: pending subtree demand; zeroed on use *)
  order : int array; (* reached nodes, ascending hop count *)
  bucket : int array; (* counting-sort buckets; all-zero between sorts *)
  first_link : int array; (* per node: first link on the root's path to it *)
  delay_to : float array; (* per node: summed link delay from the root *)
  share_to : float array; (* per node: product of link pass-probabilities *)
  (* parallel-path scratch, sized on first parallel call and reused *)
  mutable pscratch : scratch array; (* one slot per pool participant *)
  mutable streams : stream array; (* one per source stripe *)
}

let create graph =
  let n = Graph.node_count graph in
  { graph;
    n;
    grouped = None;
    grouped_version = -1;
    by_src_off = Array.make (n + 1) 0;
    by_src_flow = [||];
    lsrc =
      Array.init (Graph.link_count graph) (fun i ->
          Node.to_int (Graph.link graph (Link.id_of_int i)).Link.src);
    acc = Array.make n 0.;
    order = Array.make n 0;
    bucket = Array.make (max_hops + 2) 0;
    first_link = Array.make n (-1);
    delay_to = Array.make n 0.;
    share_to = Array.make n 0.;
    pscratch = [||];
    streams = [||] }

(* Rebuild the by-source grouping (counting sort on source ids, stable in
   flow order).  Keyed on (store identity, store version): Flow_sim swaps
   the store when traffic changes and appends bump the version, while
   per-period throttle writes leave the grouping valid. *)
let group t store =
  let version = Flow_store.version store in
  let cached =
    match t.grouped with
    | Some s -> s == store && t.grouped_version = version
    | None -> false
  in
  if not cached then begin
    let nf = Flow_store.length store in
    let src = Flow_store.src_col store in
    if Array.length t.by_src_flow < nf then t.by_src_flow <- Array.make nf 0;
    let off = t.by_src_off in
    Array.fill off 0 (t.n + 1) 0;
    for fi = 0 to nf - 1 do
      off.(src.(fi) + 1) <- off.(src.(fi) + 1) + 1
    done;
    for s = 1 to t.n do
      off.(s) <- off.(s) + off.(s - 1)
    done;
    (* [order] doubles as the per-source cursor during placement. *)
    Array.blit off 0 t.order 0 t.n;
    for fi = 0 to nf - 1 do
      let s = src.(fi) in
      t.by_src_flow.(t.order.(s)) <- fi;
      t.order.(s) <- t.order.(s) + 1
    done;
    t.grouped <- Some store;
    t.grouped_version <- version
  end

let link_src t p = t.lsrc.(p)

(* Fill [order.(0 .. m-1)] with the tree's reached nodes in ascending hop
   count (ties: ascending node id) and return [m].  Counting sort: hop
   counts fit in 8 bits by construction, but real trees are much
   shallower, so the sort only touches buckets up to the deepest hop seen
   — [bucket] is kept all-zero between calls instead of cleared up front,
   which would cost more than the sort itself on mid-sized graphs.
   Toplevel over explicit scratch so the sequential path and every
   parallel participant share one kernel. *)
let sort_reached_into tree ~n ~bucket ~order =
  let max_h = ref 0 in
  for i = 0 to n - 1 do
    if Spf_tree.reached_i tree i then begin
      let h = Spf_tree.hops_i tree i in
      if h > !max_h then max_h := h;
      bucket.(h + 1) <- bucket.(h + 1) + 1
    end
  done;
  let max_h = !max_h in
  for h = 1 to max_h + 1 do
    bucket.(h) <- bucket.(h) + bucket.(h - 1)
  done;
  let m = bucket.(max_h + 1) in
  for i = 0 to n - 1 do
    if Spf_tree.reached_i tree i then begin
      let h = Spf_tree.hops_i tree i in
      order.(bucket.(h)) <- i;
      bucket.(h) <- bucket.(h) + 1
    end
  done;
  Array.fill bucket 0 (max_h + 2) 0;
  m
[@@hot_path]

let sort_reached t tree =
  sort_reached_into tree ~n:t.n ~bucket:t.bucket ~order:t.order

let assign_seq t ~dst ~tree_for ~sending ~offered ~first_hop =
  let off = t.by_src_off in
  for s = 0 to t.n - 1 do
    if off.(s) < off.(s + 1) then begin
      let tree = tree_for (Node.of_int s) in
      (* Bucket demands onto destinations. *)
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = dst.(fi) in
        if Spf_tree.reached_i tree d then t.acc.(d) <- t.acc.(d) +. sending.(fi)
      done;
      let m = sort_reached t tree in
      (* Root outward: label nodes with their first-hop link. *)
      for k = 0 to m - 1 do
        let v = t.order.(k) in
        let p = Spf_tree.parent_id tree v in
        t.first_link.(v) <-
          (if p < 0 then -1
           else begin
             let u = link_src t p in
             if t.first_link.(u) < 0 then p else t.first_link.(u)
           end)
      done;
      (* Leaves inward: push accumulated subtree demand across parent
         links.  Zeroing as we go leaves [acc] clean for the next source. *)
      for k = m - 1 downto 0 do
        let v = t.order.(k) in
        let a = t.acc.(v) in
        if a <> 0. then begin
          t.acc.(v) <- 0.;
          let p = Spf_tree.parent_id tree v in
          if p >= 0 then begin
            offered.(p) <- offered.(p) +. a;
            let u = link_src t p in
            t.acc.(u) <- t.acc.(u) +. a
          end
        end
      done;
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = dst.(fi) in
        first_hop.(fi) <-
          (if Spf_tree.reached_i tree d then t.first_link.(d) else -2)
      done
    end
  done
[@@hot_path]

(* One stripe of consecutive sources, identical sweep to [assign_seq]
   except that offered-load contributions go into the stripe's stream
   (in sweep order) instead of the shared [offered] array.  [first_hop]
   writes are per-flow and flows belong to exactly one source, so those
   target disjoint indices across stripes.  Toplevel kernel: the closure
   handed to the pool only calls this, so it captures no mutable state
   the domain-safety lint needs to reason about. *)
let run_stripe t ~scr ~st ~dst ~tree_for ~sending ~first_hop ~s_lo ~s_hi =
  st.q_len <- 0;
  let off = t.by_src_off in
  let acc = scr.p_acc
  and order = scr.p_order
  and bucket = scr.p_bucket
  and first_link = scr.p_first_link in
  for s = s_lo to s_hi - 1 do
    if off.(s) < off.(s + 1) then begin
      let tree = tree_for (Node.of_int s) in
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = dst.(fi) in
        if Spf_tree.reached_i tree d then acc.(d) <- acc.(d) +. sending.(fi)
      done;
      let m = sort_reached_into tree ~n:t.n ~bucket ~order in
      for k = 0 to m - 1 do
        let v = order.(k) in
        let p = Spf_tree.parent_id tree v in
        first_link.(v) <-
          (if p < 0 then -1
           else begin
             let u = t.lsrc.(p) in
             if first_link.(u) < 0 then p else first_link.(u)
           end)
      done;
      for k = m - 1 downto 0 do
        let v = order.(k) in
        let a = acc.(v) in
        if a <> 0. then begin
          acc.(v) <- 0.;
          let p = Spf_tree.parent_id tree v in
          if p >= 0 then begin
            push st p a;
            let u = t.lsrc.(p) in
            acc.(u) <- acc.(u) +. a
          end
        end
      done;
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = dst.(fi) in
        first_hop.(fi) <-
          (if Spf_tree.reached_i tree d then first_link.(d) else -2)
      done
    end
  done
[@@hot_path]

(* Stripe order = ascending source order, and within a stripe pushes were
   recorded in sweep order, so these additions replay the sequential
   float-accumulation order exactly. *)
let replay_streams streams ~nstripes ~offered =
  for qi = 0 to nstripes - 1 do
    let st = streams.(qi) in
    let link = st.q_link and value = st.q_val in
    for j = 0 to st.q_len - 1 do
      let p = link.(j) in
      offered.(p) <- offered.(p) +. value.(j)
    done
  done
[@@hot_path]

let assign_parallel t pool ~dst ~tree_for ~sending ~first_hop ~offered =
  let nstripes = (t.n + stripe_width - 1) / stripe_width in
  let psize = Domain_pool.size pool in
  if Array.length t.pscratch < psize then
    t.pscratch <-
      Array.init psize (fun _ ->
          { p_acc = Array.make t.n 0.;
            p_order = Array.make t.n 0;
            p_bucket = Array.make (max_hops + 2) 0;
            p_first_link = Array.make t.n (-1) });
  if Array.length t.streams < nstripes then
    t.streams <- Array.init nstripes (fun _ -> new_stream ());
  let pscratch = t.pscratch and streams = t.streams in
  Domain_pool.parallel_for_dynamic_with pool
    ~init:(fun me -> pscratch.(me))
    nstripes
    (fun scr qi ->
      let s_lo = qi * stripe_width in
      let s_hi = min t.n (s_lo + stripe_width) in
      run_stripe t ~scr ~st:streams.(qi) ~dst ~tree_for ~sending ~first_hop
        ~s_lo ~s_hi);
  replay_streams streams ~nstripes ~offered

let assign ?pool t ~flows ~tree_for ~sending ~offered ~first_hop =
  group t flows;
  let dst = Flow_store.dst_col flows in
  match pool with
  | Some pool when Domain_pool.size pool > 1 && t.n > 1 ->
    assign_parallel t pool ~dst ~tree_for ~sending ~first_hop ~offered
  | _ -> assign_seq t ~dst ~tree_for ~sending ~offered ~first_hop

let iter_metrics t ~flows ~tree_for ~link_delay ~link_pass ~f =
  group t flows;
  let dst = Flow_store.dst_col flows in
  let off = t.by_src_off in
  for s = 0 to t.n - 1 do
    if off.(s) < off.(s + 1) then begin
      let tree = tree_for (Node.of_int s) in
      let m = sort_reached t tree in
      (* Root outward: delay is additive, survival multiplicative. *)
      for k = 0 to m - 1 do
        let v = t.order.(k) in
        let p = Spf_tree.parent_id tree v in
        if p < 0 then begin
          t.delay_to.(v) <- 0.;
          t.share_to.(v) <- 1.
        end
        else begin
          let u = link_src t p in
          t.delay_to.(v) <- t.delay_to.(u) +. link_delay.(p);
          t.share_to.(v) <- t.share_to.(u) *. link_pass.(p)
        end
      done;
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = dst.(fi) in
        if Spf_tree.reached_i tree d then
          f fi ~reached:true ~delay_s:t.delay_to.(d) ~share:t.share_to.(d)
            ~hops:(Spf_tree.hops_i tree d)
        else f fi ~reached:false ~delay_s:0. ~share:0. ~hops:0
      done
    end
  done

(* [iter_metrics] without the callback: results land in caller-owned
   struct-of-arrays slots instead of boxed float arguments, so the
   simulator's per-period metrics pass allocates nothing.  [hops.(fi) < 0]
   marks an unreached flow. *)
let metrics_into t ~flows ~tree_for ~link_delay ~link_pass ~delay_s ~share
    ~hops =
  group t flows;
  let dst = Flow_store.dst_col flows in
  let off = t.by_src_off in
  for s = 0 to t.n - 1 do
    if off.(s) < off.(s + 1) then begin
      let tree = tree_for (Node.of_int s) in
      let m = sort_reached t tree in
      (* Root outward: delay is additive, survival multiplicative. *)
      for k = 0 to m - 1 do
        let v = t.order.(k) in
        let p = Spf_tree.parent_id tree v in
        if p < 0 then begin
          t.delay_to.(v) <- 0.;
          t.share_to.(v) <- 1.
        end
        else begin
          let u = link_src t p in
          t.delay_to.(v) <- t.delay_to.(u) +. link_delay.(p);
          t.share_to.(v) <- t.share_to.(u) *. link_pass.(p)
        end
      done;
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = dst.(fi) in
        if Spf_tree.reached_i tree d then begin
          delay_s.(fi) <- t.delay_to.(d);
          share.(fi) <- t.share_to.(d);
          hops.(fi) <- Spf_tree.hops_i tree d
        end
        else begin
          delay_s.(fi) <- 0.;
          share.(fi) <- 0.;
          hops.(fi) <- -1
        end
      done
    end
  done
[@@hot_path]

(* The historical per-flow tree climb, kept as the reference the qcheck
   property and the benchmark compare the aggregated path against.  It
   reproduces the access pattern the aggregated sweep replaced, including
   the per-hop graph record lookups the old path iterator performed — not
   the denormalized [lsrc] table, which belongs to the new design. *)
let assign_baseline t ~flows ~tree_for ~sending ~offered ~first_hop =
  let src = Flow_store.src_col flows and dst = Flow_store.dst_col flows in
  let link_src p = Node.to_int (Graph.link t.graph (Link.id_of_int p)).Link.src in
  for fi = 0 to Flow_store.length flows - 1 do
    let tree = tree_for (Node.of_int src.(fi)) in
    let d = dst.(fi) in
    if Spf_tree.reached_i tree d then begin
      let fh = ref (-1) in
      let v = ref d in
      let p = ref (Spf_tree.parent_id tree !v) in
      while !p >= 0 do
        offered.(!p) <- offered.(!p) +. sending.(fi);
        (* climbing destination-to-source: the last link seen leaves the
           source *)
        fh := !p;
        v := link_src !p;
        p := Spf_tree.parent_id tree !v
      done;
      first_hop.(fi) <- !fh
    end
    else first_hop.(fi) <- -2
  done

open! Import

(* Destination-aggregated flow assignment.

   The historical hot path walked every flow's tree path individually:
   O(flows × path length) per period, with most links visited once per
   flow crossing them.  But all of a source's flows ride the *same* SPF
   tree, and a link's offered load is just the total demand of the subtree
   hanging off it.  So per source:

   + bucket the source's flow demands onto their destination nodes,
   + sweep the reached nodes leaves-inward (descending hop count — a
     counting sort, since tree depth is bounded by the 8-bit hop field),
     adding each node's accumulated demand to its parent link and parent
     node.

   One pass over the flows plus one pass over the tree: O(V + E + F_s) per
   source instead of O(F_s × path length).  The same sweep run root-outward
   labels every node with its first-hop link, path delay and survival
   share, making the per-flow metrics pass O(1) per flow.

   Everything here writes into caller- or self-owned scratch sized once;
   steady-state periods allocate nothing. *)

type flow = { src : Node.t; dst : Node.t; demand_bps : float }

(* Tree depth is bounded by the composite-weight encoding's 8-bit hop
   field, so counting sort over hop counts needs this many buckets. *)
let max_hops = 256

type t = {
  graph : Graph.t;
  n : int; (* nodes *)
  (* CSR-style grouping of flow indices by source node, rebuilt only when
     the flow array itself is replaced (physical identity). *)
  mutable grouped : flow array;
  by_src_off : int array; (* n + 1 *)
  mutable by_src_flow : int array;
  (* per-source sweep scratch *)
  lsrc : int array; (* per link: its source node, denormalized from the graph *)
  acc : float array; (* per node: pending subtree demand; zeroed on use *)
  order : int array; (* reached nodes, ascending hop count *)
  bucket : int array; (* counting-sort buckets; all-zero between sorts *)
  first_link : int array; (* per node: first link on the root's path to it *)
  delay_to : float array; (* per node: summed link delay from the root *)
  share_to : float array; (* per node: product of link pass-probabilities *)
}

let create graph =
  let n = Graph.node_count graph in
  { graph;
    n;
    grouped = [||];
    by_src_off = Array.make (n + 1) 0;
    by_src_flow = [||];
    lsrc =
      Array.init (Graph.link_count graph) (fun i ->
          Node.to_int (Graph.link graph (Link.id_of_int i)).Link.src);
    acc = Array.make n 0.;
    order = Array.make n 0;
    bucket = Array.make (max_hops + 2) 0;
    first_link = Array.make n (-1);
    delay_to = Array.make n 0.;
    share_to = Array.make n 0. }

(* Rebuild the by-source grouping (counting sort on source ids, stable in
   flow order).  Keyed on the array's physical identity: Flow_sim replaces
   the whole array when traffic changes and never mutates it in place. *)
let group t flows =
  if flows != t.grouped then begin
    let nf = Array.length flows in
    if Array.length t.by_src_flow < nf then t.by_src_flow <- Array.make nf 0;
    let off = t.by_src_off in
    Array.fill off 0 (t.n + 1) 0;
    for fi = 0 to nf - 1 do
      let s = Node.to_int flows.(fi).src in
      off.(s + 1) <- off.(s + 1) + 1
    done;
    for s = 1 to t.n do
      off.(s) <- off.(s) + off.(s - 1)
    done;
    (* [order] doubles as the per-source cursor during placement. *)
    Array.blit off 0 t.order 0 t.n;
    for fi = 0 to nf - 1 do
      let s = Node.to_int flows.(fi).src in
      t.by_src_flow.(t.order.(s)) <- fi;
      t.order.(s) <- t.order.(s) + 1
    done;
    t.grouped <- flows
  end

let link_src t p = t.lsrc.(p)

(* Fill [order.(0 .. m-1)] with the tree's reached nodes in ascending hop
   count (ties: ascending node id) and return [m].  Counting sort: hop
   counts fit in 8 bits by construction, but real trees are much
   shallower, so the sort only touches buckets up to the deepest hop seen
   — [bucket] is kept all-zero between calls instead of cleared up front,
   which would cost more than the sort itself on mid-sized graphs. *)
let sort_reached t tree =
  let n = t.n in
  let b = t.bucket in
  let max_h = ref 0 in
  for i = 0 to n - 1 do
    if Spf_tree.reached_i tree i then begin
      let h = Spf_tree.hops_i tree i in
      if h > !max_h then max_h := h;
      b.(h + 1) <- b.(h + 1) + 1
    end
  done;
  let max_h = !max_h in
  for h = 1 to max_h + 1 do
    b.(h) <- b.(h) + b.(h - 1)
  done;
  let m = b.(max_h + 1) in
  for i = 0 to n - 1 do
    if Spf_tree.reached_i tree i then begin
      let h = Spf_tree.hops_i tree i in
      t.order.(b.(h)) <- i;
      b.(h) <- b.(h) + 1
    end
  done;
  Array.fill b 0 (max_h + 2) 0;
  m
[@@hot_path]

let assign t ~flows ~tree_for ~sending ~offered ~first_hop =
  group t flows;
  let off = t.by_src_off in
  for s = 0 to t.n - 1 do
    if off.(s) < off.(s + 1) then begin
      let tree = tree_for (Node.of_int s) in
      (* Bucket demands onto destinations. *)
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = Node.to_int flows.(fi).dst in
        if Spf_tree.reached_i tree d then t.acc.(d) <- t.acc.(d) +. sending.(fi)
      done;
      let m = sort_reached t tree in
      (* Root outward: label nodes with their first-hop link. *)
      for k = 0 to m - 1 do
        let v = t.order.(k) in
        let p = Spf_tree.parent_id tree v in
        t.first_link.(v) <-
          (if p < 0 then -1
           else begin
             let u = link_src t p in
             if t.first_link.(u) < 0 then p else t.first_link.(u)
           end)
      done;
      (* Leaves inward: push accumulated subtree demand across parent
         links.  Zeroing as we go leaves [acc] clean for the next source. *)
      for k = m - 1 downto 0 do
        let v = t.order.(k) in
        let a = t.acc.(v) in
        if a <> 0. then begin
          t.acc.(v) <- 0.;
          let p = Spf_tree.parent_id tree v in
          if p >= 0 then begin
            offered.(p) <- offered.(p) +. a;
            let u = link_src t p in
            t.acc.(u) <- t.acc.(u) +. a
          end
        end
      done;
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = Node.to_int flows.(fi).dst in
        first_hop.(fi) <-
          (if Spf_tree.reached_i tree d then t.first_link.(d) else -2)
      done
    end
  done
[@@hot_path]

let iter_metrics t ~flows ~tree_for ~link_delay ~link_pass ~f =
  group t flows;
  let off = t.by_src_off in
  for s = 0 to t.n - 1 do
    if off.(s) < off.(s + 1) then begin
      let tree = tree_for (Node.of_int s) in
      let m = sort_reached t tree in
      (* Root outward: delay is additive, survival multiplicative. *)
      for k = 0 to m - 1 do
        let v = t.order.(k) in
        let p = Spf_tree.parent_id tree v in
        if p < 0 then begin
          t.delay_to.(v) <- 0.;
          t.share_to.(v) <- 1.
        end
        else begin
          let u = link_src t p in
          t.delay_to.(v) <- t.delay_to.(u) +. link_delay.(p);
          t.share_to.(v) <- t.share_to.(u) *. link_pass.(p)
        end
      done;
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = Node.to_int flows.(fi).dst in
        if Spf_tree.reached_i tree d then
          f fi ~reached:true ~delay_s:t.delay_to.(d) ~share:t.share_to.(d)
            ~hops:(Spf_tree.hops_i tree d)
        else f fi ~reached:false ~delay_s:0. ~share:0. ~hops:0
      done
    end
  done

(* [iter_metrics] without the callback: results land in caller-owned
   struct-of-arrays slots instead of boxed float arguments, so the
   simulator's per-period metrics pass allocates nothing.  [hops.(fi) < 0]
   marks an unreached flow. *)
let metrics_into t ~flows ~tree_for ~link_delay ~link_pass ~delay_s ~share
    ~hops =
  group t flows;
  let off = t.by_src_off in
  for s = 0 to t.n - 1 do
    if off.(s) < off.(s + 1) then begin
      let tree = tree_for (Node.of_int s) in
      let m = sort_reached t tree in
      (* Root outward: delay is additive, survival multiplicative. *)
      for k = 0 to m - 1 do
        let v = t.order.(k) in
        let p = Spf_tree.parent_id tree v in
        if p < 0 then begin
          t.delay_to.(v) <- 0.;
          t.share_to.(v) <- 1.
        end
        else begin
          let u = link_src t p in
          t.delay_to.(v) <- t.delay_to.(u) +. link_delay.(p);
          t.share_to.(v) <- t.share_to.(u) *. link_pass.(p)
        end
      done;
      for k = off.(s) to off.(s + 1) - 1 do
        let fi = t.by_src_flow.(k) in
        let d = Node.to_int flows.(fi).dst in
        if Spf_tree.reached_i tree d then begin
          delay_s.(fi) <- t.delay_to.(d);
          share.(fi) <- t.share_to.(d);
          hops.(fi) <- Spf_tree.hops_i tree d
        end
        else begin
          delay_s.(fi) <- 0.;
          share.(fi) <- 0.;
          hops.(fi) <- -1
        end
      done
    end
  done
[@@hot_path]

(* The historical per-flow tree climb, kept as the reference the qcheck
   property and the benchmark compare the aggregated path against.  It
   reproduces the access pattern the aggregated sweep replaced, including
   the per-hop graph record lookups the old path iterator performed — not
   the denormalized [lsrc] table, which belongs to the new design. *)
let assign_baseline t ~flows ~tree_for ~sending ~offered ~first_hop =
  let link_src p = Node.to_int (Graph.link t.graph (Link.id_of_int p)).Link.src in
  for fi = 0 to Array.length flows - 1 do
    let flow = flows.(fi) in
    let tree = tree_for flow.src in
    let d = Node.to_int flow.dst in
    if Spf_tree.reached_i tree d then begin
      let fh = ref (-1) in
      let v = ref d in
      let p = ref (Spf_tree.parent_id tree !v) in
      while !p >= 0 do
        offered.(!p) <- offered.(!p) +. sending.(fi);
        (* climbing destination-to-source: the last link seen leaves the
           source *)
        fh := !p;
        v := link_src !p;
        p := Spf_tree.parent_id tree !v
      done;
      first_hop.(fi) <- !fh
    end
    else first_hop.(fi) <- -2
  done

open! Import

(** Destination-aggregated flow-to-link load assignment — the flow
    simulator's per-period hot path.

    All of a source's flows ride the same SPF tree, so a link's offered
    load equals the total demand of the subtree hanging below it.  One
    leaves-inward sweep per source (counting-sorted by hop count) assigns
    every link's load in O(V + E + flows) per source, replacing the
    historical O(flows × path length) per-flow tree climbs; a root-outward
    sweep labels each node with its first-hop link, cumulative delay and
    survival share so per-flow metrics cost O(1).

    Flows live in a {!Flow_store.t} (struct-of-arrays), and {!assign} can
    spread source stripes over a {!Domain_pool.t}: each stripe records
    its (link, load) contributions into a private stream in sweep order,
    replayed in stripe order afterwards — the float additions happen in
    exactly the sequential source order, so parallel output is
    bit-identical to sequential at any domain count.

    A [t] holds reusable scratch for one graph; steady-state sequential
    calls allocate nothing.  Results are deterministic: sweeps visit
    nodes in (hop count, node id) order and flows in their store order,
    so equal inputs give bit-equal outputs — though the {e floating-point
    grouping} differs from the per-flow baseline, which accumulates
    flow-by-flow (sums agree to rounding; the qcheck property in
    [test_sweep] pins this). *)

type t

val create : Graph.t -> t

val assign :
  ?pool:Domain_pool.t ->
  t ->
  flows:Flow_store.t ->
  tree_for:(Node.t -> Spf_tree.t) ->
  sending:float array ->
  offered:float array ->
  first_hop:int array ->
  unit
(** Add every flow's sending rate ([sending.(i)] for flow index [i], bps)
    to [offered.(l)] for each link [l] on its path — [offered] is {b not}
    cleared first — and set [first_hop.(i)] to the flow's first link id,
    [-1] when the destination {e is} the source, or [-2] when the
    destination is unreachable on the source's tree.

    With [?pool] (of size > 1), source stripes run on pool domains with
    bit-identical results (see above); [tree_for] must then be safe to
    call concurrently — a pure lookup of pre-computed trees.

    The flow-to-source grouping is cached on the store's identity and
    {!Flow_store.version}; throttle writes don't invalidate it. *)

val iter_metrics :
  t ->
  flows:Flow_store.t ->
  tree_for:(Node.t -> Spf_tree.t) ->
  link_delay:float array ->
  link_pass:float array ->
  f:(int -> reached:bool -> delay_s:float -> share:float -> hops:int -> unit) ->
  unit
(** Call [f] once per flow index (sources in node order, a source's flows
    in store order) with its path totals over the per-link tables:
    [delay_s] the sum of [link_delay], [share] the product of [link_pass],
    [hops] the path length.  Unreached flows get
    [~reached:false ~delay_s:0. ~share:0. ~hops:0]. *)

val metrics_into :
  t ->
  flows:Flow_store.t ->
  tree_for:(Node.t -> Spf_tree.t) ->
  link_delay:float array ->
  link_pass:float array ->
  delay_s:float array ->
  share:float array ->
  hops:int array ->
  unit
(** {!iter_metrics} into caller-owned per-flow arrays (length ≥ flows)
    instead of a callback — allocation-free, because the callback form
    boxes its float arguments on every call.  [hops.(fi) = -1] marks an
    unreached flow (with [delay_s]/[share] zeroed); flows of sources with
    no flows are untouched. *)

val assign_baseline :
  t ->
  flows:Flow_store.t ->
  tree_for:(Node.t -> Spf_tree.t) ->
  sending:float array ->
  offered:float array ->
  first_hop:int array ->
  unit
(** The historical per-flow tree climb, identical contract to the
    sequential {!assign} (up to floating-point grouping of the sums).
    Kept as the reference implementation for property tests and the
    [bench sim] speedup row. *)

open! Import

(** Destination-aggregated flow-to-link load assignment — the flow
    simulator's per-period hot path.

    All of a source's flows ride the same SPF tree, so a link's offered
    load equals the total demand of the subtree hanging below it.  One
    leaves-inward sweep per source (counting-sorted by hop count) assigns
    every link's load in O(V + E + flows) per source, replacing the
    historical O(flows × path length) per-flow tree climbs; a root-outward
    sweep labels each node with its first-hop link, cumulative delay and
    survival share so per-flow metrics cost O(1).

    A [t] holds reusable scratch for one graph; steady-state calls
    allocate nothing.  Results are deterministic: sweeps visit nodes in
    (hop count, node id) order and flows in their array order, so equal
    inputs give bit-equal outputs — though the {e floating-point grouping}
    differs from the per-flow baseline, which accumulates flow-by-flow
    (sums agree to rounding; the qcheck property in [test_sweep] pins
    this). *)

type flow = { src : Node.t; dst : Node.t; demand_bps : float }

type t

val create : Graph.t -> t

val assign :
  t ->
  flows:flow array ->
  tree_for:(Node.t -> Spf_tree.t) ->
  sending:float array ->
  offered:float array ->
  first_hop:int array ->
  unit
(** Add every flow's sending rate ([sending.(i)] for [flows.(i)], bps) to
    [offered.(l)] for each link [l] on its path — [offered] is {b not}
    cleared first — and set [first_hop.(i)] to the flow's first link id,
    [-1] when the destination {e is} the source, or [-2] when the
    destination is unreachable on the source's tree.

    The flow-to-source grouping is cached on the physical identity of
    [flows]: replace the array to change traffic, don't mutate it. *)

val iter_metrics :
  t ->
  flows:flow array ->
  tree_for:(Node.t -> Spf_tree.t) ->
  link_delay:float array ->
  link_pass:float array ->
  f:(int -> reached:bool -> delay_s:float -> share:float -> hops:int -> unit) ->
  unit
(** Call [f] once per flow index (sources in node order, a source's flows
    in array order) with its path totals over the per-link tables:
    [delay_s] the sum of [link_delay], [share] the product of [link_pass],
    [hops] the path length.  Unreached flows get
    [~reached:false ~delay_s:0. ~share:0. ~hops:0]. *)

val metrics_into :
  t ->
  flows:flow array ->
  tree_for:(Node.t -> Spf_tree.t) ->
  link_delay:float array ->
  link_pass:float array ->
  delay_s:float array ->
  share:float array ->
  hops:int array ->
  unit
(** {!iter_metrics} into caller-owned per-flow arrays (length ≥ flows)
    instead of a callback — allocation-free, because the callback form
    boxes its float arguments on every call.  [hops.(fi) = -1] marks an
    unreached flow (with [delay_s]/[share] zeroed); flows of sources with
    no flows are untouched. *)

val assign_baseline :
  t ->
  flows:flow array ->
  tree_for:(Node.t -> Spf_tree.t) ->
  sending:float array ->
  offered:float array ->
  first_hop:int array ->
  unit
(** The historical per-flow tree climb, identical contract to {!assign}
    (up to floating-point grouping of the sums).  Kept as the reference
    implementation for property tests and the [bench sim] speedup row. *)

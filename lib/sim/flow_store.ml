open! Import

(* Struct-of-arrays flow store.

   A million-flow period cannot afford one boxed record per flow: the
   historical {src; dst; demand_bps} array costs three words of header
   and a pointer chase per flow, and the float is boxed.  Here each
   attribute lives in its own flat column — int arrays for endpoints,
   unboxed float arrays for demand and the per-flow AIMD throttle — so
   the assignment and adaptation passes stream through contiguous
   memory.

   Columns are replaced wholesale when the store grows; [version] is
   bumped by every structural change (append, growth) so consumers that
   cache derived state (Load_assign's by-source grouping) can key their
   cache on [(t, version t)] instead of array identity.  Mutating
   [throttle] is not structural — it never changes the grouping. *)

type t = {
  n_nodes : int;
  mutable len : int;
  mutable src : int array;
  mutable dst : int array;
  mutable demand_bps : float array;
  mutable throttle : float array; (* per-flow AIMD send fraction, 1 = open *)
  mutable version : int;
}

let create ~nodes =
  if nodes < 0 then invalid_arg "Flow_store.create";
  { n_nodes = nodes;
    len = 0;
    src = [||];
    dst = [||];
    demand_bps = [||];
    throttle = [||];
    version = 0 }

let nodes t = t.n_nodes

let length t = t.len

let version t = t.version

let src_col t = t.src

let dst_col t = t.dst

let demand_col t = t.demand_bps

let throttle_col t = t.throttle

(* Doubling growth, off the hot path: stores are built once per traffic
   change, and steady-state periods never append. *)
let grow t =
  let cap = Array.length t.src in
  let cap' = if cap = 0 then 1024 else 2 * cap in
  let src = Array.make cap' 0
  and dst = Array.make cap' 0
  and demand = Array.make cap' 0.
  and throttle = Array.make cap' 1. in
  Array.blit t.src 0 src 0 t.len;
  Array.blit t.dst 0 dst 0 t.len;
  Array.blit t.demand_bps 0 demand 0 t.len;
  Array.blit t.throttle 0 throttle 0 t.len;
  t.src <- src;
  t.dst <- dst;
  t.demand_bps <- demand;
  t.throttle <- throttle

let add t ~src ~dst ~demand_bps =
  let s = Node.to_int src and d = Node.to_int dst in
  if s < 0 || s >= t.n_nodes || d < 0 || d >= t.n_nodes then
    invalid_arg "Flow_store.add: endpoint outside the node range";
  if t.len = Array.length t.src then grow t;
  t.src.(t.len) <- s;
  t.dst.(t.len) <- d;
  t.demand_bps.(t.len) <- demand_bps;
  t.throttle.(t.len) <- 1.;
  t.len <- t.len + 1;
  t.version <- t.version + 1

let reset_throttle t = Array.fill t.throttle 0 t.len 1.

let total_demand_bps t =
  let s = ref 0. in
  for fi = 0 to t.len - 1 do
    s := !s +. t.demand_bps.(fi)
  done;
  !s

(* Same flow order as the historical [Flow_sim.flows_of_matrix]:
   [Traffic_matrix.iter] visits nonzero entries row-major. *)
let of_matrix tm =
  let t = create ~nodes:(Traffic_matrix.nodes tm) in
  Traffic_matrix.iter tm (fun ~src ~dst demand_bps ->
      add t ~src ~dst ~demand_bps);
  t

let to_matrix t =
  let tm = Traffic_matrix.create ~nodes:t.n_nodes in
  for fi = 0 to t.len - 1 do
    Traffic_matrix.add tm ~src:(Node.of_int t.src.(fi))
      ~dst:(Node.of_int t.dst.(fi)) t.demand_bps.(fi)
  done;
  tm

(* Merge flows sharing an ordered (src, dst) pair, keeping each pair's
   first-occurrence position — the matrix-level view of a host-level
   store.  Throttles restart at 1: an aggregate is a new traffic
   object, not a continuation of its parts' AIMD state. *)
let aggregate t =
  let out = create ~nodes:t.n_nodes in
  let slot = Hashtbl.create (max 16 (t.len / 4)) in
  for fi = 0 to t.len - 1 do
    let key = (t.src.(fi) * t.n_nodes) + t.dst.(fi) in
    match Hashtbl.find_opt slot key with
    | Some j -> out.demand_bps.(j) <- out.demand_bps.(j) +. t.demand_bps.(fi)
    | None ->
      Hashtbl.add slot key out.len;
      add out ~src:(Node.of_int t.src.(fi)) ~dst:(Node.of_int t.dst.(fi))
        ~demand_bps:t.demand_bps.(fi)
  done;
  out

(* ---------------------------------------------------------------- *)
(* Heavy-tailed host-level demand. *)

type size_dist = Pareto of { alpha : float } | Lognormal of { sigma : float }

(* Endpoint masses follow the gravity model's log-uniform decade (a few
   big hosts, many small); each flow picks src and dst independently by
   cumulative mass, rejecting self-pairs.  Sizes are Pareto or lognormal
   around 1, then one global scaling pins the total at [total_bps]
   exactly — so the aggregate load is controlled while the per-flow
   distribution keeps its tail.  Everything draws from [rng] in a fixed
   order: one seed, one store, bit for bit. *)
let heavy_tailed rng ~nodes ~flows ~total_bps ~size =
  if nodes < 2 then invalid_arg "Flow_store.heavy_tailed: need >= 2 nodes";
  if flows < 0 then invalid_arg "Flow_store.heavy_tailed: negative flows";
  let t = create ~nodes in
  if flows > 0 && total_bps > 0. then begin
    let cum = Array.make nodes 0. in
    let running = ref 0. in
    for i = 0 to nodes - 1 do
      running := !running +. (10. ** Rng.float rng 1.);
      cum.(i) <- !running
    done;
    let total_mass = !running in
    let draw_node () =
      let x = Rng.float rng total_mass in
      (* First node whose cumulative mass exceeds the draw. *)
      let lo = ref 0 and hi = ref (nodes - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if cum.(mid) > x then hi := mid else lo := mid + 1
      done;
      !lo
    in
    let draw_size () =
      match size with
      | Pareto { alpha } -> Rng.pareto rng ~alpha ~x_min:1.
      | Lognormal { sigma } -> Rng.lognormal rng ~mu:0. ~sigma
    in
    for _ = 1 to flows do
      let s = draw_node () in
      let d = ref (draw_node ()) in
      while !d = s do
        d := draw_node ()
      done;
      add t ~src:(Node.of_int s) ~dst:(Node.of_int !d)
        ~demand_bps:(draw_size ())
    done;
    let raw = total_demand_bps t in
    if raw > 0. then begin
      let factor = total_bps /. raw in
      for fi = 0 to t.len - 1 do
        t.demand_bps.(fi) <- t.demand_bps.(fi) *. factor
      done
    end
  end;
  t

open! Import

(** Network-wide performance indicators — the quantities of Table 1.

    Both simulators produce the same {!indicators} record so before/after
    comparisons print uniformly. *)

type indicators = {
  elapsed_s : float;
  internode_traffic_bps : float;  (** delivered end-to-end throughput *)
  round_trip_delay_ms : float;  (** 2 × mean one-way packet delay *)
  updates_per_s : float;  (** routing updates generated network-wide / s *)
  update_period_per_node_s : float;  (** mean seconds between one node's updates *)
  actual_path_hops : float;  (** mean links traversed per delivered message *)
  minimum_path_hops : float;  (** mean min-hop distance of the same messages *)
  path_ratio : float;  (** actual / minimum *)
  dropped_per_s : float;  (** packets dropped per second *)
  overhead_bps : float;  (** link bandwidth consumed by routing updates *)
  delay_p50_ms : float;  (** streaming (P²) one-way delay median *)
  delay_p95_ms : float;  (** 95th-percentile one-way delay *)
  delay_p99_ms : float;  (** 99th-percentile one-way delay *)
  route_changes_per_period : float;
      (** flows whose first hop changed, per routing period — §3.3's route
          oscillation averaged over the run *)
  next_hop_flips_per_period : float;
      (** A→B→A first-hop flips per period (the flow came straight back to
          the hop it used two periods ago) — the sharpest oscillation
          signature, after Rzepka & Chołda's route-change counters *)
  link_flips_per_period : float;
      (** per-link cost direction flips per period, summed over links
          ({!Routing_obs.Oscillation.total_flips}) *)
}

val pp_indicators : Format.formatter -> indicators -> unit

val comparison_table :
  ?title:string -> (string * indicators) list -> Routing_stats.Table.t
(** Table 1's layout: one column per labelled run, one row per indicator. *)

val export :
  ?labels:Obs_metrics.labels -> Obs_metrics.t -> indicators -> unit
(** Publish every indicator as an [indicator_*] gauge in a telemetry
    registry, so [--metrics-out] snapshots carry the Table-1 summary
    alongside the raw series. *)

(** {2 Accumulation} *)

type t

val create : nodes:int -> t

val record_delivery :
  t -> delay_s:float -> bits:float -> hops:int -> min_hops:int -> unit

val record_drop : t -> unit

val record_updates : t -> count:int -> bits:float -> unit

val delivered_packets : t -> int

val dropped_packets : t -> int

val delay_stats : t -> Welford.t

val median_delay_ms : t -> float
(** Streaming (P²) estimate of the one-way delay median; [nan] when
    empty. *)

val p95_delay_ms : t -> float
(** Streaming (P²) estimate of the 95th-percentile one-way delay — the
    congested tail Table 1's mean hides. *)

val p99_delay_ms : t -> float
(** Streaming (P²) estimate of the 99th-percentile one-way delay. *)

val indicators : t -> elapsed_s:float -> indicators
(** The route-change indicators are reported as [0.] here: the packet
    accumulator has no flow identity to diff first hops against.  The flow
    simulator fills them from its own per-period counters.
    @raise Invalid_argument if [elapsed_s <= 0]. *)

val reset : t -> unit

open! Import
module Quantile = Routing_stats.Quantile

let log_src = Logs.Src.create "routing_sim.flow" ~doc:"flow-level simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type period_stats = {
  time_s : float;
  offered_bps : float;
  delivered_bps : float;
  dropped_bps : float;
  mean_delay_s : float;
  mean_hops : float;
  mean_min_hops : float;
  updates : int;
  update_bits : float;
  max_utilization : float;
  congested_links : int;
  routes_changed : int;
  next_hop_flips : int;
  link_flips : int;
}

(* Telemetry handles, resolved once when the bundle is attached.  The flow
   simulator keeps no series of its own, so the registry's are the only
   copies. *)
type obs_state = {
  tele : Telemetry.t;
  obs_sink : Obs_sink.t;
  updates_counter : Obs_metrics.counter;
  osc_flags : Obs_metrics.counter;
  util_series : Obs_metrics.series array;
  cost_series : Obs_metrics.series array;
  cost_hops_series : Obs_metrics.series array;
  osc : Obs_oscillation.t;
  spf_refreshes : Obs_metrics.gauge;
  spf_skipped : Obs_metrics.gauge;
  spf_full_sweeps : Obs_metrics.gauge;
  spf_recomputed : Obs_metrics.gauge;
  spf_repaired : Obs_metrics.gauge;
  spf_reused : Obs_metrics.gauge;
  spf_resettled : Obs_metrics.gauge;
  gc_period : Gc_account.t option; (* when the bundle enables GC accounting *)
  gc_refresh : Gc_account.t option;
}

let make_obs_state tele ~links =
  let m = Telemetry.metrics tele in
  let link_label i = [ ("link", Printf.sprintf "l%d" i) ] in
  let per_link name =
    Array.init links (fun i -> Obs_metrics.series m ~labels:(link_label i) name)
  in
  let spf_gauge which =
    Obs_metrics.gauge m ~labels:[ ("counter", which) ] "spf_engine"
  in
  let gc_account scope =
    if Telemetry.gc_enabled tele then Some (Gc_account.create m ~scope)
    else None
  in
  { tele;
    obs_sink = Telemetry.sink tele;
    updates_counter = Obs_metrics.counter m "updates_flooded";
    osc_flags = Obs_metrics.counter m "oscillation_flags";
    util_series = per_link "link_utilization";
    cost_series = per_link "link_cost";
    cost_hops_series = per_link "link_cost_hops";
    osc = Telemetry.init_oscillation tele ~links;
    spf_refreshes = spf_gauge "refreshes";
    spf_skipped = spf_gauge "skipped";
    spf_full_sweeps = spf_gauge "full_sweeps";
    spf_recomputed = spf_gauge "sources_recomputed";
    spf_repaired = spf_gauge "sources_repaired";
    spf_reused = spf_gauge "sources_reused";
    spf_resettled = spf_gauge "nodes_resettled";
    gc_period = gc_account "routing_period";
    gc_refresh = gc_account "spf_refresh" }

(* All-float and therefore flat: per-period accumulation stores unboxed
   floats into these fields, where a float ref (or a mixed int/float
   record) would box on update. *)
type facc = {
  mutable f_offered : float;
  mutable f_delivered : float;
  mutable f_dropped : float;
  mutable f_delay_w : float;
  mutable f_hops_w : float;
  mutable f_min_hops_w : float;
  mutable f_bits : float;
  mutable f_max_util : float;
}

(* Struct-of-arrays period history.  [tick] appends plain floats and ints
   into preallocated columns instead of consing a [period_stats] — the
   allocation-regression gate counts on this — and [step] / [history] /
   [indicators] rebuild record views on demand (cold). *)
type hist = {
  mutable len : int;
  mutable h_time : float array;
  mutable h_offered : float array;
  mutable h_delivered : float array;
  mutable h_dropped : float array;
  mutable h_delay : float array;
  mutable h_hops : float array;
  mutable h_min_hops : float array;
  mutable h_updates : int array;
  mutable h_bits : float array;
  mutable h_max_util : float array;
  mutable h_congested : int array;
  mutable h_routes : int array;
  mutable h_nh_flips : int array;
  mutable h_link_flips : int array;
}

let hist_create () =
  let c = 64 in
  { len = 0;
    h_time = Array.make c 0.;
    h_offered = Array.make c 0.;
    h_delivered = Array.make c 0.;
    h_dropped = Array.make c 0.;
    h_delay = Array.make c 0.;
    h_hops = Array.make c 0.;
    h_min_hops = Array.make c 0.;
    h_updates = Array.make c 0;
    h_bits = Array.make c 0.;
    h_max_util = Array.make c 0.;
    h_congested = Array.make c 0;
    h_routes = Array.make c 0;
    h_nh_flips = Array.make c 0;
    h_link_flips = Array.make c 0 }

let hist_grow h =
  let growf a =
    let b = Array.make (2 * Array.length a) 0. in
    Array.blit a 0 b 0 h.len;
    b
  and growi a =
    let b = Array.make (2 * Array.length a) 0 in
    Array.blit a 0 b 0 h.len;
    b
  in
  h.h_time <- growf h.h_time;
  h.h_offered <- growf h.h_offered;
  h.h_delivered <- growf h.h_delivered;
  h.h_dropped <- growf h.h_dropped;
  h.h_delay <- growf h.h_delay;
  h.h_hops <- growf h.h_hops;
  h.h_min_hops <- growf h.h_min_hops;
  h.h_updates <- growi h.h_updates;
  h.h_bits <- growf h.h_bits;
  h.h_max_util <- growf h.h_max_util;
  h.h_congested <- growi h.h_congested;
  h.h_routes <- growi h.h_routes;
  h.h_nh_flips <- growi h.h_nh_flips;
  h.h_link_flips <- growi h.h_link_flips

(* Below this many flows the parallel assignment path's fork/join and
   job bookkeeping cost more than the sweep itself; stay sequential. *)
let parallel_flow_threshold = 4096

type t = {
  graph : Graph.t;
  mutable metric : Metric.t;
  mutable flows : Flow_store.t;
  mutable flooders : Flooder.t array;
  link_up : bool array;
  utilization : float array; (* most recent period, raw offered/capacity *)
  pool : Domain_pool.t option; (* shared by all three engines *)
  engine : Spf_engine.t; (* per-source trees on flooded costs *)
  min_engine : Spf_engine.t; (* per-source min-hop trees on up links *)
  mutable lag_engine : Spf_engine.t option;
      (* laggard sources' trees on the previous period's costs; created on
         first use when stagger > 0 *)
  mutable period : int;
  hist : hist;
  mutable stagger : float; (* fraction of nodes applying updates one period late *)
  mutable prev_costs : int array; (* flooded costs as of the previous period *)
  mutable adaptive_sources : bool;
  mutable prev_first_hop : int array; (* per flow index; -1 = none yet *)
  mutable prev2_first_hop : int array; (* first hop two periods ago *)
  (* Per-period scratch, sized once and reused forever: the hot path
     allocates nothing in steady state. *)
  assign : Load_assign.t;
  offered : float array; (* per link *)
  link_delay : float array; (* per link: M/M/1/K delay at this period's load *)
  link_pass : float array; (* per link: 1 - blocking probability *)
  link_src : int array; (* per link: source node id, denormalized *)
  mutable sending : float array; (* per flow: demand x throttle *)
  mutable first_hop : int array; (* per flow, this period *)
  mutable flow_delay : float array; (* per flow: path delay this period *)
  mutable flow_share : float array; (* per flow: survival share *)
  mutable flow_hops : int array; (* per flow: path length; -1 = unreached *)
  chg_ids : int array; (* links whose update flooded, from the metric *)
  chg_costs : int array;
  changed_costs : (Link.id * int) list array; (* per origin node *)
  changed_origins : int array; (* origins touched, first-touch order *)
  mutable changed_count : int;
  acc : facc;
  (* Always-on flip counter over the flooded costs, mirroring
     {!Routing_obs.Oscillation}'s window-independent flip total but kept
     in-module: a cross-module [observe ~time:_] call would box its float
     time argument on every link, and the steady-state period must
     allocate nothing.  The telemetry bundle layers the windowed detector
     (flag events, per-link series) on top. *)
  osc_seen : bool array; (* per link: cost observed at least once *)
  osc_last : int array; (* per link: last flooded cost *)
  osc_dir : int array; (* per link: sign of the last change; 0 = none *)
  mutable link_flips_total : int;
  (* Closure caches: the hot path passes stored closures (and stored
     options, which ride through [?arg:opt] without re-wrapping) instead of
     rebuilding them every period. *)
  mutable tree_for_f : Node.t -> Spf_tree.t;
  enabled_opt : (Link.id -> bool) option;
  mutable cost_f : Link.id -> int; (* rebuilt on switch_metric *)
  tracer : Tracer.t;
  tr_period : int; (* interned event names *)
  tr_refresh : int;
  tr_assign : int;
  tr_flood : int;
  tr_updates : int;
  tr_routes : int;
  obs : obs_state option;
}

let make_flooders graph =
  Array.init (Graph.node_count graph) (fun i ->
      Flooder.create graph ~owner:(Node.of_int i))

(* Deterministic membership in the lagging set for a stagger fraction:
   hash the node id into [0, 1). *)
let[@inline] lags_at ~stagger i =
  stagger > 0.
  && float_of_int ((i * 2654435761) land 0xFFFF) /. 65536. < stagger

let create_with ?(domains = Domain_pool.default_size ()) ?telemetry ?tracer
    graph metric tm =
  let nl = Graph.link_count graph in
  let pool = if domains > 1 then Some (Domain_pool.create domains) else None in
  let tracer =
    match tracer with
    | Some tr -> tr
    | None -> (
      match telemetry with
      | Some tele -> Telemetry.tracer tele
      | None -> Tracer.null)
  in
  if Tracer.enabled tracer then
    Option.iter
      (fun p -> Domain_pool.set_probe p (Some (Tracer.pool_probe tracer)))
      pool;
  let link_up = Array.make nl true in
  let obs = Option.map (fun tele -> make_obs_state tele ~links:nl) telemetry in
  let t =
    { graph;
      metric;
      flows = Flow_store.of_matrix tm;
      flooders = make_flooders graph;
      link_up;
      utilization = Array.make nl 0.;
      pool;
      engine = Spf_engine.create ?pool ~tracer graph;
      min_engine = Spf_engine.create ?pool ~tracer graph;
      lag_engine = None;
      period = 0;
      hist = hist_create ();
      stagger = 0.;
      prev_costs =
        Array.init nl (fun i -> Metric.cost metric (Link.id_of_int i));
      adaptive_sources = false;
      prev_first_hop = [||];
      prev2_first_hop = [||];
      assign = Load_assign.create graph;
      offered = Array.make nl 0.;
      link_delay = Array.make nl 0.;
      link_pass = Array.make nl 0.;
      link_src =
        Array.init nl (fun i ->
            Node.to_int (Graph.link graph (Link.id_of_int i)).Link.src);
      sending = [||];
      first_hop = [||];
      flow_delay = [||];
      flow_share = [||];
      flow_hops = [||];
      chg_ids = Array.make nl 0;
      chg_costs = Array.make nl 0;
      changed_costs = Array.make (Graph.node_count graph) [];
      changed_origins = Array.make (Graph.node_count graph) 0;
      changed_count = 0;
      acc =
        { f_offered = 0.;
          f_delivered = 0.;
          f_dropped = 0.;
          f_delay_w = 0.;
          f_hops_w = 0.;
          f_min_hops_w = 0.;
          f_bits = 0.;
          f_max_util = 0. };
      osc_seen = Array.make nl false;
      osc_last = Array.make nl 0;
      osc_dir = Array.make nl 0;
      link_flips_total = 0;
      tree_for_f = (fun _ -> assert false);
      enabled_opt = Some (fun lid -> link_up.(Link.id_to_int lid));
      cost_f = Metric.cost_fn metric;
      tracer;
      tr_period = Tracer.intern tracer "routing_period";
      tr_refresh = Tracer.intern tracer "spf_refresh";
      tr_assign = Tracer.intern tracer "flow_assign";
      tr_flood = Tracer.intern tracer "flood";
      tr_updates = Tracer.intern tracer "updates_flooded";
      tr_routes = Tracer.intern tracer "routes_changed";
      obs }
  in
  (* The tree a source routes on this period; built once, reads the
     mutable stagger/lag state at call time. *)
  t.tree_for_f <-
    (fun src ->
      match t.lag_engine with
      | Some lag when lags_at ~stagger:t.stagger (Node.to_int src) ->
        Spf_engine.tree lag src
      | _ -> Spf_engine.tree t.engine src);
  t

let create ?domains ?telemetry ?tracer graph kind tm =
  create_with ?domains ?telemetry ?tracer graph (Metric.create kind graph) tm

let graph t = t.graph

let metric t = t.metric

let time_s t = float_of_int t.period *. Units.routing_period_s

let period_index t = t.period

let min_hop_cost = fun _ -> 1

(* The engines diff the flooded costs (and the up/down set) themselves, so
   refresh is cheap whenever a period flooded no significant update — no
   dirty flags to maintain.  Laggard sources under [stagger] route on the
   previous period's costs, served by a second engine fed [prev_costs]. *)
let refresh_trees t =
  Spf_engine.refresh ?enabled:t.enabled_opt t.min_engine ~cost:min_hop_cost;
  if t.stagger > 0. then begin
    let lags n = lags_at ~stagger:t.stagger (Node.to_int n) in
    Spf_engine.refresh t.engine
      ~wanted:(fun n -> not (lags n))
      ?enabled:t.enabled_opt ~cost:t.cost_f;
    let lag_engine =
      match t.lag_engine with
      | Some e -> e
      | None ->
        let e = Spf_engine.create ?pool:t.pool ~tracer:t.tracer t.graph in
        t.lag_engine <- Some e;
        e
    in
    Spf_engine.refresh lag_engine ~wanted:lags ?enabled:t.enabled_opt
      ~cost:(fun lid -> t.prev_costs.(Link.id_to_int lid))
  end
  else Spf_engine.refresh ?enabled:t.enabled_opt t.engine ~cost:t.cost_f

let spf_stats t = Spf_engine.stats t.engine

let telemetry t = Option.map (fun o -> o.tele) t.obs

(* Closure-free span recording: take a clock reading, run straight-line
   code, record under a static name.  With no bundle attached each hook is
   one branch. *)
let[@inline] span_start t =
  match t.obs with
  | None -> 0.
  | Some o -> Obs_span.clock_now (Telemetry.spans o.tele)

let[@inline] span_stop t name started =
  match t.obs with
  | None -> ()
  | Some o -> Obs_span.record (Telemetry.spans o.tele) ~name ~started

let[@inline] gc_start = function Some a -> Gc_account.start a | None -> ()

let[@inline] gc_finish = function Some a -> Gc_account.finish a | None -> ()

(* End-to-end source adaptation: the 1987 ARPANET's users backed off under
   loss (TCP and the IMP's own end-to-end mechanisms), so offered traffic
   tracked what the network could carry.  Multiplicative decrease on
   significant loss, slow additive recovery.  The per-flow throttle lives
   in the flow store's float column: updating it is one unboxed array
   write per flow, no hashing, no boxing — and when adaptation is off the
   column just stays at 1, so the sending pass multiplies by 1.0 (IEEE
   bit-exact) instead of branching. *)
let[@inline] step_throttle throttle fi ~loss_fraction =
  let current = throttle.(fi) in
  throttle.(fi) <-
    (if loss_fraction > 0.02 then Float.max 0.05 (current *. 0.7)
     else Float.min 1. (current +. 0.05))

let tick t =
  let tr = t.tracer in
  let gc_p, gc_r =
    match t.obs with
    | None -> (None, None)
    | Some o -> (o.gc_period, o.gc_refresh)
  in
  Tracer.span_begin tr t.tr_period;
  gc_start gc_p;
  let p_started = span_start t in
  Tracer.span_begin tr t.tr_refresh;
  gc_start gc_r;
  let r_started = span_start t in
  refresh_trees t;
  span_stop t "spf_refresh" r_started;
  gc_finish gc_r;
  Tracer.span_end tr t.tr_refresh;
  (* Snapshot this period's flooded costs for next period's laggards. *)
  let nl = Graph.link_count t.graph in
  for i = 0 to nl - 1 do
    t.prev_costs.(i) <- Metric.cost t.metric (Link.id_of_int i)
  done;
  let nf = Flow_store.length t.flows in
  let demand = Flow_store.demand_col t.flows in
  let throttle = Flow_store.throttle_col t.flows in
  if Array.length t.prev_first_hop <> nf then begin
    t.prev_first_hop <- Array.make nf (-1);
    t.prev2_first_hop <- Array.make nf (-1)
  end;
  if Array.length t.sending < nf then begin
    t.sending <- Array.make nf 0.;
    t.first_hop <- Array.make nf (-2);
    t.flow_delay <- Array.make nf 0.;
    t.flow_share <- Array.make nf 0.;
    t.flow_hops <- Array.make nf (-1)
  end;
  (* Vectorized sending pass over the store's columns.  With adaptation
     off every throttle is 1 and the multiply is bit-exact identity. *)
  for fi = 0 to nf - 1 do
    t.sending.(fi) <- demand.(fi) *. throttle.(fi)
  done;
  (* Pass 1: aggregate demand by destination and push subtree loads across
     each source's tree — O(V+E) per source instead of a walk per flow.
     Above the threshold, source stripes fan out over the domain pool;
     the stream-replay reduction keeps results bit-identical. *)
  Array.fill t.offered 0 nl 0.;
  Tracer.span_begin tr t.tr_assign;
  let a_started = span_start t in
  let pool = if nf >= parallel_flow_threshold then t.pool else None in
  Load_assign.assign ?pool t.assign ~flows:t.flows ~tree_for:t.tree_for_f
    ~sending:t.sending ~offered:t.offered ~first_hop:t.first_hop;
  span_stop t "flow_assign" a_started;
  Tracer.span_end tr t.tr_assign;
  (* Route-change accounting against the previous periods (§3.3's route
     oscillation, counted Rzepka & Chołda-style): a changed first hop is a
     route change; coming straight back to the hop of two periods ago is a
     next-hop flip.  Unreached flows keep their last known first hop. *)
  let routes_changed = ref 0 in
  let nh_flips = ref 0 in
  for fi = 0 to nf - 1 do
    let fh = t.first_hop.(fi) in
    if fh <> -2 then begin
      let prev = t.prev_first_hop.(fi) in
      if prev >= 0 && prev <> fh then begin
        incr routes_changed;
        if t.prev2_first_hop.(fi) = fh then incr nh_flips
      end;
      t.prev2_first_hop.(fi) <- prev;
      t.prev_first_hop.(fi) <- fh
    end
  done;
  (* Per-link queueing terms, once per link rather than once per flow-hop:
     utilization, M/M/1/K delay and the survival probability. *)
  let acc = t.acc in
  acc.f_offered <- 0.;
  acc.f_delivered <- 0.;
  acc.f_dropped <- 0.;
  acc.f_delay_w <- 0.;
  acc.f_hops_w <- 0.;
  acc.f_min_hops_w <- 0.;
  acc.f_bits <- 0.;
  acc.f_max_util <- 0.;
  let congested = ref 0 in
  Queueing.mm1k_into t.graph ~up:t.link_up ~offered_bps:t.offered
    ~utilization:t.utilization ~delay_s:t.link_delay ~pass:t.link_pass;
  for i = 0 to nl - 1 do
    let u = t.utilization.(i) in
    if u > acc.f_max_util then acc.f_max_util <- u;
    if u > 0.9 then incr congested
  done;
  (* Pass 2: per-flow delay, hop counts and thinning over hot links — path
     totals served in O(1) per flow from the root-outward sweep, landing in
     per-flow columns rather than boxed callback arguments. *)
  Load_assign.metrics_into t.assign ~flows:t.flows ~tree_for:t.tree_for_f
    ~link_delay:t.link_delay ~link_pass:t.link_pass ~delay_s:t.flow_delay
    ~share:t.flow_share ~hops:t.flow_hops;
  let fsrc = Flow_store.src_col t.flows in
  let fdst = Flow_store.dst_col t.flows in
  let adaptive = t.adaptive_sources in
  for fi = 0 to nf - 1 do
    let sending = t.sending.(fi) in
    acc.f_offered <- acc.f_offered +. sending;
    let hops = t.flow_hops.(fi) in
    if hops < 0 then begin
      acc.f_dropped <- acc.f_dropped +. sending;
      if adaptive then step_throttle throttle fi ~loss_fraction:1.
    end
    else begin
      let share = t.flow_share.(fi) in
      if adaptive then step_throttle throttle fi ~loss_fraction:(1. -. share);
      let carried = sending *. share in
      acc.f_delivered <- acc.f_delivered +. carried;
      acc.f_dropped <- acc.f_dropped +. (sending -. carried);
      acc.f_delay_w <- acc.f_delay_w +. (t.flow_delay.(fi) *. carried);
      acc.f_hops_w <- acc.f_hops_w +. (float_of_int hops *. carried);
      let min_tree = Spf_engine.tree t.min_engine (Node.of_int fsrc.(fi)) in
      let d = fdst.(fi) in
      let mh =
        if Spf_tree.reached_i min_tree d then Spf_tree.hops_i min_tree d
        else hops
      in
      acc.f_min_hops_w <- acc.f_min_hops_w +. (float_of_int mh *. carried)
    end
  done;
  (* Metric pass: feed each up link its period delay, in one batch call.
     Changed costs collect into per-origin slots reused across periods;
     quiet periods return 0 without touching the heap. *)
  let nch =
    Metric.period_update_all t.metric ~up:t.link_up ~link_delay_s:t.link_delay
      ~changed_ids:t.chg_ids ~changed_costs:t.chg_costs
  in
  for k = 0 to nch - 1 do
    let li = t.chg_ids.(k) in
    let origin = t.link_src.(li) in
    if t.changed_costs.(origin) = [] then begin
      t.changed_origins.(t.changed_count) <- origin;
      t.changed_count <- t.changed_count + 1
    end;
    t.changed_costs.(origin) <-
      (Link.id_of_int li, t.chg_costs.(k)) :: t.changed_costs.(origin)
  done;
  let updates = ref 0 in
  Tracer.span_begin tr t.tr_flood;
  let f_started = span_start t in
  for k = 0 to t.changed_count - 1 do
    let origin = t.changed_origins.(k) in
    let costs = t.changed_costs.(origin) in
    t.changed_costs.(origin) <- [];
    let update = Flooder.originate t.flooders.(origin) ~costs in
    let outcome = Broadcast.flood t.graph t.flooders update in
    incr updates;
    acc.f_bits <- acc.f_bits +. outcome.Broadcast.bits
  done;
  span_stop t "flood" f_started;
  Tracer.span_end tr t.tr_flood;
  t.changed_count <- 0;
  t.period <- t.period + 1;
  let now = time_s t in
  let updates = !updates in
  (* Flip accounting over the flooded costs runs with or without a
     telemetry bundle; the bundle adds the windowed oscillation detector,
     per-link series and flag events. *)
  let flips_before = t.link_flips_total in
  for i = 0 to nl - 1 do
    let cost = Metric.cost t.metric (Link.id_of_int i) in
    if not t.osc_seen.(i) then begin
      t.osc_seen.(i) <- true;
      t.osc_last.(i) <- cost
    end
    else if cost <> t.osc_last.(i) then begin
      let dir = if cost > t.osc_last.(i) then 1 else -1 in
      if t.osc_dir.(i) <> 0 && dir <> t.osc_dir.(i) then
        t.link_flips_total <- t.link_flips_total + 1;
      t.osc_dir.(i) <- dir;
      t.osc_last.(i) <- cost
    end
  done;
  (match t.obs with
  | None -> ()
  | Some o ->
    let on_flag ~link ~time ~flips =
      Obs_metrics.inc o.osc_flags;
      Obs_sink.emit o.obs_sink (fun () ->
          Obs_json.Obj
            [ ("t", Obs_json.Float time);
              ("ev", Obs_json.String "oscillation");
              ("link", Obs_json.Int link);
              ("flips", Obs_json.Int flips) ])
    in
    let kind = Metric.kind t.metric in
    for i = 0 to nl - 1 do
      let lid = Link.id_of_int i in
      let cost = Metric.cost t.metric lid in
      let idle = Metric.idle_cost kind (Graph.link t.graph lid) in
      Obs_metrics.sample o.util_series.(i) ~time:now t.utilization.(i);
      Obs_metrics.sample o.cost_series.(i) ~time:now (float_of_int cost);
      Obs_metrics.sample o.cost_hops_series.(i) ~time:now
        (float_of_int cost /. float_of_int (max 1 idle));
      Obs_oscillation.observe ~on_flag o.osc ~link:i ~time:now ~cost
    done);
  let link_flips = t.link_flips_total - flips_before in
  Tracer.counter tr t.tr_updates ~value:updates;
  Tracer.counter tr t.tr_routes ~value:!routes_changed;
  (* Telemetry per-period: update counters, SPF engine gauges, and one
     JSONL summary event. *)
  (match t.obs with
  | None -> ()
  | Some o ->
    Obs_metrics.inc ~by:updates o.updates_counter;
    let s = Spf_engine.stats t.engine in
    Obs_metrics.set o.spf_refreshes (float_of_int s.Spf_engine.refreshes);
    Obs_metrics.set o.spf_skipped (float_of_int s.Spf_engine.skipped);
    Obs_metrics.set o.spf_full_sweeps (float_of_int s.Spf_engine.full_sweeps);
    Obs_metrics.set o.spf_recomputed
      (float_of_int s.Spf_engine.sources_recomputed);
    Obs_metrics.set o.spf_repaired
      (float_of_int s.Spf_engine.sources_repaired);
    Obs_metrics.set o.spf_reused (float_of_int s.Spf_engine.sources_reused);
    Obs_metrics.set o.spf_resettled
      (float_of_int s.Spf_engine.nodes_resettled);
    let routes_changed = !routes_changed in
    let congested = !congested in
    Obs_sink.emit o.obs_sink (fun () ->
        Obs_json.Obj
          [ ("t", Obs_json.Float now);
            ("ev", Obs_json.String "period");
            ("updates", Obs_json.Int updates);
            ("delivered_bps", Obs_json.Float acc.f_delivered);
            ("dropped_bps", Obs_json.Float acc.f_dropped);
            ("max_utilization", Obs_json.Float acc.f_max_util);
            ("congested_links", Obs_json.Int congested);
            ("routes_changed", Obs_json.Int routes_changed) ]));
  (* Append the period's row to the history columns. *)
  let h = t.hist in
  if h.len = Array.length h.h_time then hist_grow h;
  let k = h.len in
  let delivered = acc.f_delivered in
  h.h_time.(k) <- now;
  h.h_offered.(k) <- acc.f_offered;
  h.h_delivered.(k) <- delivered;
  h.h_dropped.(k) <- acc.f_dropped;
  h.h_delay.(k) <- (if delivered > 0. then acc.f_delay_w /. delivered else 0.);
  h.h_hops.(k) <- (if delivered > 0. then acc.f_hops_w /. delivered else 0.);
  h.h_min_hops.(k) <-
    (if delivered > 0. then acc.f_min_hops_w /. delivered else 0.);
  h.h_updates.(k) <- updates;
  h.h_bits.(k) <- acc.f_bits;
  h.h_max_util.(k) <- acc.f_max_util;
  h.h_congested.(k) <- !congested;
  h.h_routes.(k) <- !routes_changed;
  h.h_nh_flips.(k) <- !nh_flips;
  h.h_link_flips.(k) <- link_flips;
  h.len <- k + 1;
  span_stop t "routing_period" p_started;
  gc_finish gc_p;
  Tracer.span_end tr t.tr_period

let stats_at t k =
  let h = t.hist in
  { time_s = h.h_time.(k);
    offered_bps = h.h_offered.(k);
    delivered_bps = h.h_delivered.(k);
    dropped_bps = h.h_dropped.(k);
    mean_delay_s = h.h_delay.(k);
    mean_hops = h.h_hops.(k);
    mean_min_hops = h.h_min_hops.(k);
    updates = h.h_updates.(k);
    update_bits = h.h_bits.(k);
    max_utilization = h.h_max_util.(k);
    congested_links = h.h_congested.(k);
    routes_changed = h.h_routes.(k);
    next_hop_flips = h.h_nh_flips.(k);
    link_flips = h.h_link_flips.(k) }

let step t =
  tick t;
  stats_at t (t.hist.len - 1)

let run t ~periods = List.init periods (fun _ -> step t)

let set_traffic t tm =
  t.flows <- Flow_store.of_matrix tm;
  t.prev_first_hop <- [||]

(* Install a host-level flow store directly — the million-flow path the
   heavy-tailed generator feeds.  AIMD throttles ride in the store, so a
   swapped-in store starts from its own throttle column. *)
let set_flows t store =
  if Flow_store.nodes store <> Graph.node_count t.graph then
    invalid_arg "Flow_sim.set_flows: store built for a different node count";
  t.flows <- store;
  t.prev_first_hop <- [||]

let flows t = t.flows

let switch_metric t kind =
  Log.info (fun m ->
      m "t=%.0fs: switching metric to %s" (time_s t) (Metric.kind_name kind));
  t.metric <- Metric.create kind t.graph;
  t.cost_f <- Metric.cost_fn t.metric;
  (* A software reload floods fresh costs for every link at once; the
     engines pick the new costs up by diffing on the next refresh. *)
  t.flooders <- make_flooders t.graph

let set_link_up t lid up =
  let i = Link.id_to_int lid in
  if t.link_up.(i) <> up then begin
    Log.info (fun m ->
        m "t=%.0fs: link %a %s" (time_s t) Link.pp (Graph.link t.graph lid)
          (if up then "up (easing in)" else "down"));
    t.link_up.(i) <- up;
    if up then Metric.link_up t.metric lid
  end

let set_adaptive_sources t enabled =
  t.adaptive_sources <- enabled;
  if not enabled then Flow_store.reset_throttle t.flows

let set_stagger t fraction =
  if fraction < 0. || fraction > 1. then invalid_arg "Flow_sim.set_stagger";
  t.stagger <- fraction

let link_utilization t lid = t.utilization.(Link.id_to_int lid)

let link_cost t lid = Metric.cost t.metric lid

let route_change_totals t =
  let h = t.hist in
  let routes = ref 0 and nh = ref 0 and links = ref 0 in
  for k = 0 to h.len - 1 do
    routes := !routes + h.h_routes.(k);
    nh := !nh + h.h_nh_flips.(k);
    links := !links + h.h_link_flips.(k)
  done;
  (!routes, !nh, !links)

let indicators t ?(skip = 0) () =
  let h = t.hist in
  let n = h.len - skip in
  if n <= 0 then invalid_arg "Flow_sim.indicators: no periods retained";
  let fn = float_of_int n in
  let elapsed = fn *. Units.routing_period_s in
  let sumf a =
    let s = ref 0. in
    for k = skip to h.len - 1 do
      s := !s +. a.(k)
    done;
    !s
  and sumi a =
    let s = ref 0 in
    for k = skip to h.len - 1 do
      s := !s + a.(k)
    done;
    !s
  in
  let delivered_total = sumf h.h_delivered in
  let weighted a =
    if delivered_total > 0. then begin
      let s = ref 0. in
      for k = skip to h.len - 1 do
        s := !s +. (a.(k) *. h.h_delivered.(k))
      done;
      !s /. delivered_total
    end
    else 0.
  in
  let actual = weighted h.h_hops in
  let minimum = weighted h.h_min_hops in
  let updates = float_of_int (sumi h.h_updates) in
  (* Per-period delay percentiles, streamed in period order so the result
     is deterministic for equal histories. *)
  let q50 = Quantile.create 0.5
  and q95 = Quantile.create 0.95
  and q99 = Quantile.create 0.99 in
  for k = skip to h.len - 1 do
    Quantile.add q50 h.h_delay.(k);
    Quantile.add q95 h.h_delay.(k);
    Quantile.add q99 h.h_delay.(k)
  done;
  let quantile_ms q =
    let v = Quantile.value q in
    if Float.is_nan v then 0. else 1000. *. v
  in
  { Measure.elapsed_s = elapsed;
    internode_traffic_bps = delivered_total /. fn;
    round_trip_delay_ms = 2. *. weighted h.h_delay *. 1000.;
    updates_per_s = updates /. elapsed;
    update_period_per_node_s =
      (if updates = 0. then infinity
       else float_of_int (Graph.node_count t.graph) *. elapsed /. updates);
    actual_path_hops = actual;
    minimum_path_hops = minimum;
    path_ratio = (if minimum > 0. then actual /. minimum else 1.);
    dropped_per_s = sumf h.h_dropped /. fn /. 600.;
    overhead_bps = sumf h.h_bits /. elapsed;
    delay_p50_ms = quantile_ms q50;
    delay_p95_ms = quantile_ms q95;
    delay_p99_ms = quantile_ms q99;
    route_changes_per_period = float_of_int (sumi h.h_routes) /. fn;
    next_hop_flips_per_period = float_of_int (sumi h.h_nh_flips) /. fn;
    link_flips_per_period = float_of_int (sumi h.h_link_flips) /. fn }

let history t = List.init t.hist.len (fun k -> stats_at t k)

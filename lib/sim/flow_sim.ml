open! Import

let log_src = Logs.Src.create "routing_sim.flow" ~doc:"flow-level simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type period_stats = {
  time_s : float;
  offered_bps : float;
  delivered_bps : float;
  dropped_bps : float;
  mean_delay_s : float;
  mean_hops : float;
  mean_min_hops : float;
  updates : int;
  update_bits : float;
  max_utilization : float;
  congested_links : int;
  routes_changed : int;
}

type flow = Load_assign.flow = { src : Node.t; dst : Node.t; demand_bps : float }

(* Telemetry handles, resolved once when the bundle is attached.  The flow
   simulator keeps no series of its own, so the registry's are the only
   copies. *)
type obs_state = {
  tele : Telemetry.t;
  obs_sink : Obs_sink.t;
  updates_counter : Obs_metrics.counter;
  osc_flags : Obs_metrics.counter;
  util_series : Obs_metrics.series array;
  cost_series : Obs_metrics.series array;
  cost_hops_series : Obs_metrics.series array;
  osc : Obs_oscillation.t;
  spf_refreshes : Obs_metrics.gauge;
  spf_skipped : Obs_metrics.gauge;
  spf_full_sweeps : Obs_metrics.gauge;
  spf_recomputed : Obs_metrics.gauge;
  spf_repaired : Obs_metrics.gauge;
  spf_reused : Obs_metrics.gauge;
  spf_resettled : Obs_metrics.gauge;
}

let make_obs_state tele ~links =
  let m = Telemetry.metrics tele in
  let link_label i = [ ("link", Printf.sprintf "l%d" i) ] in
  let per_link name =
    Array.init links (fun i -> Obs_metrics.series m ~labels:(link_label i) name)
  in
  let spf_gauge which =
    Obs_metrics.gauge m ~labels:[ ("counter", which) ] "spf_engine"
  in
  { tele;
    obs_sink = Telemetry.sink tele;
    updates_counter = Obs_metrics.counter m "updates_flooded";
    osc_flags = Obs_metrics.counter m "oscillation_flags";
    util_series = per_link "link_utilization";
    cost_series = per_link "link_cost";
    cost_hops_series = per_link "link_cost_hops";
    osc = Telemetry.init_oscillation tele ~links;
    spf_refreshes = spf_gauge "refreshes";
    spf_skipped = spf_gauge "skipped";
    spf_full_sweeps = spf_gauge "full_sweeps";
    spf_recomputed = spf_gauge "sources_recomputed";
    spf_repaired = spf_gauge "sources_repaired";
    spf_reused = spf_gauge "sources_reused";
    spf_resettled = spf_gauge "nodes_resettled" }

type t = {
  graph : Graph.t;
  mutable metric : Metric.t;
  mutable flows : flow array;
  mutable flooders : Flooder.t array;
  link_up : bool array;
  utilization : float array; (* most recent period, raw offered/capacity *)
  pool : Domain_pool.t option; (* shared by all three engines *)
  engine : Spf_engine.t; (* per-source trees on flooded costs *)
  min_engine : Spf_engine.t; (* per-source min-hop trees on up links *)
  mutable lag_engine : Spf_engine.t option;
      (* laggard sources' trees on the previous period's costs; created on
         first use when stagger > 0 *)
  mutable period : int;
  mutable history : period_stats list; (* newest first *)
  mutable stagger : float; (* fraction of nodes applying updates one period late *)
  mutable prev_costs : int array; (* flooded costs as of the previous period *)
  mutable adaptive_sources : bool;
  throttle : (int * int, float) Hashtbl.t; (* (src,dst) -> send fraction *)
  mutable prev_first_hop : int array; (* per flow index; -1 = none yet *)
  (* Per-period scratch, sized once and reused forever: the hot path
     allocates nothing in steady state. *)
  assign : Load_assign.t;
  offered : float array; (* per link *)
  link_delay : float array; (* per link: M/M/1/K delay at this period's load *)
  link_pass : float array; (* per link: 1 - blocking probability *)
  mutable sending : float array; (* per flow: demand x throttle *)
  mutable first_hop : int array; (* per flow, this period *)
  changed_costs : (Link.id * int) list array; (* per origin node *)
  changed_origins : int array; (* origins touched, first-touch order *)
  mutable changed_count : int;
  obs : obs_state option;
}

let flows_of_matrix tm =
  Traffic_matrix.fold tm ~init:[] ~f:(fun acc ~src ~dst demand_bps ->
      { src; dst; demand_bps } :: acc)
  |> List.rev |> Array.of_list

let make_flooders graph =
  Array.init (Graph.node_count graph) (fun i ->
      Flooder.create graph ~owner:(Node.of_int i))

let create_with ?(domains = Domain_pool.default_size ()) ?telemetry graph
    metric tm =
  let nl = Graph.link_count graph in
  let pool = if domains > 1 then Some (Domain_pool.create domains) else None in
  { graph;
    metric;
    flows = flows_of_matrix tm;
    flooders = make_flooders graph;
    link_up = Array.make nl true;
    utilization = Array.make nl 0.;
    pool;
    engine = Spf_engine.create ?pool graph;
    min_engine = Spf_engine.create ?pool graph;
    lag_engine = None;
    period = 0;
    history = [];
    stagger = 0.;
    prev_costs = Array.init nl (fun i -> Metric.cost metric (Link.id_of_int i));
    adaptive_sources = false;
    throttle = Hashtbl.create 256;
    prev_first_hop = [||];
    assign = Load_assign.create graph;
    offered = Array.make nl 0.;
    link_delay = Array.make nl 0.;
    link_pass = Array.make nl 0.;
    sending = [||];
    first_hop = [||];
    changed_costs = Array.make (Graph.node_count graph) [];
    changed_origins = Array.make (Graph.node_count graph) 0;
    changed_count = 0;
    obs = Option.map (fun tele -> make_obs_state tele ~links:nl) telemetry }

let create ?domains ?telemetry graph kind tm =
  create_with ?domains ?telemetry graph (Metric.create kind graph) tm

let graph t = t.graph

let metric t = t.metric

let time_s t = float_of_int t.period *. Units.routing_period_s

let period_index t = t.period

let enabled t lid = t.link_up.(Link.id_to_int lid)

(* Deterministic membership in the lagging set for a stagger fraction:
   hash the node id into [0, 1). *)
let node_lags t i =
  t.stagger > 0.
  && float_of_int ((i * 2654435761) land 0xFFFF) /. 65536. < t.stagger

(* The engines diff the flooded costs (and the up/down set) themselves, so
   refresh is cheap whenever a period flooded no significant update — no
   dirty flags to maintain.  Laggard sources under [stagger] route on the
   previous period's costs, served by a second engine fed [prev_costs]. *)
let refresh_trees t =
  Spf_engine.refresh t.min_engine ~enabled:(enabled t) ~cost:(fun _ -> 1);
  if t.stagger > 0. then begin
    let lags n = node_lags t (Node.to_int n) in
    Spf_engine.refresh t.engine
      ~wanted:(fun n -> not (lags n))
      ~enabled:(enabled t) ~cost:(Metric.cost_fn t.metric);
    let lag_engine =
      match t.lag_engine with
      | Some e -> e
      | None ->
        let e = Spf_engine.create ?pool:t.pool t.graph in
        t.lag_engine <- Some e;
        e
    in
    Spf_engine.refresh lag_engine ~wanted:lags ~enabled:(enabled t)
      ~cost:(fun lid -> t.prev_costs.(Link.id_to_int lid))
  end
  else
    Spf_engine.refresh t.engine ~enabled:(enabled t)
      ~cost:(Metric.cost_fn t.metric)

(* The tree a source routes on this period. *)
let tree_for t src =
  match t.lag_engine with
  | Some lag when node_lags t (Node.to_int src) -> Spf_engine.tree lag src
  | _ -> Spf_engine.tree t.engine src

let spf_stats t = Spf_engine.stats t.engine

let span t name f =
  match t.obs with
  | None -> f ()
  | Some o -> Obs_span.with_ (Telemetry.spans o.tele) ~name f

let telemetry t = Option.map (fun o -> o.tele) t.obs

(* End-to-end source adaptation: the 1987 ARPANET's users backed off under
   loss (TCP and the IMP's own end-to-end mechanisms), so offered traffic
   tracked what the network could carry.  Multiplicative decrease on
   significant loss, slow additive recovery. *)
let throttle_of t flow =
  if not t.adaptive_sources then 1.
  else
    Option.value ~default:1.
      (Hashtbl.find_opt t.throttle (Node.to_int flow.src, Node.to_int flow.dst))

let update_throttle t flow ~loss_fraction =
  if t.adaptive_sources then begin
    let key = (Node.to_int flow.src, Node.to_int flow.dst) in
    let current = throttle_of t flow in
    let next =
      if loss_fraction > 0.02 then Float.max 0.05 (current *. 0.7)
      else Float.min 1. (current +. 0.05)
    in
    Hashtbl.replace t.throttle key next
  end

let step t =
  span t "routing_period" @@ fun () ->
  span t "spf_refresh" (fun () -> refresh_trees t);
  (* Snapshot this period's flooded costs for next period's laggards. *)
  Array.iteri
    (fun i _ -> t.prev_costs.(i) <- Metric.cost t.metric (Link.id_of_int i))
    t.prev_costs;
  let nl = Graph.link_count t.graph in
  let nf = Array.length t.flows in
  if Array.length t.prev_first_hop <> nf then
    t.prev_first_hop <- Array.make nf (-1);
  if Array.length t.sending < nf then begin
    t.sending <- Array.make nf 0.;
    t.first_hop <- Array.make nf (-2)
  end;
  for fi = 0 to nf - 1 do
    t.sending.(fi) <- t.flows.(fi).demand_bps *. throttle_of t t.flows.(fi)
  done;
  (* Pass 1: aggregate demand by destination and push subtree loads across
     each source's tree — O(V+E) per source instead of a walk per flow. *)
  Array.fill t.offered 0 nl 0.;
  let tree_for = tree_for t in
  span t "flow_assign" (fun () ->
      Load_assign.assign t.assign ~flows:t.flows ~tree_for ~sending:t.sending
        ~offered:t.offered ~first_hop:t.first_hop);
  (* First-hop changes against the previous period (§3.3's route
     oscillation); unreached flows keep their last known first hop. *)
  let routes_changed = ref 0 in
  for fi = 0 to nf - 1 do
    let fh = t.first_hop.(fi) in
    if fh <> -2 then begin
      if t.prev_first_hop.(fi) >= 0 && t.prev_first_hop.(fi) <> fh then
        incr routes_changed;
      t.prev_first_hop.(fi) <- fh
    end
  done;
  (* Per-link queueing terms, once per link rather than once per flow-hop:
     utilization, M/M/1/K delay and the survival probability. *)
  for i = 0 to nl - 1 do
    let l = Graph.link t.graph (Link.id_of_int i) in
    let u =
      if t.link_up.(i) then t.offered.(i) /. Link.capacity_bps l else 0.
    in
    t.utilization.(i) <- u;
    t.link_delay.(i) <- Queueing.mm1k_delay_s l ~utilization:u;
    t.link_pass.(i) <- 1. -. Queueing.mm1k_blocking ~utilization:u
  done;
  (* Pass 2: per-flow delay, hop counts and thinning over hot links — path
     totals served in O(1) per flow from the root-outward sweep. *)
  let total_offered = ref 0. in
  let delivered = ref 0. in
  let dropped = ref 0. in
  let delay_weighted = ref 0. in
  let hops_weighted = ref 0. in
  let min_hops_weighted = ref 0. in
  Load_assign.iter_metrics t.assign ~flows:t.flows ~tree_for
    ~link_delay:t.link_delay ~link_pass:t.link_pass
    ~f:(fun fi ~reached ~delay_s ~share ~hops ->
      let flow = t.flows.(fi) in
      let sending = t.sending.(fi) in
      total_offered := !total_offered +. sending;
      if not reached then begin
        dropped := !dropped +. sending;
        update_throttle t flow ~loss_fraction:1.
      end
      else begin
        update_throttle t flow ~loss_fraction:(1. -. share);
        let carried = sending *. share in
        delivered := !delivered +. carried;
        dropped := !dropped +. (sending -. carried);
        delay_weighted := !delay_weighted +. (delay_s *. carried);
        hops_weighted := !hops_weighted +. (float_of_int hops *. carried);
        let min_tree = Spf_engine.tree t.min_engine flow.src in
        let mh =
          if Spf_tree.reached min_tree flow.dst then
            Spf_tree.hops min_tree flow.dst
          else hops
        in
        min_hops_weighted := !min_hops_weighted +. (float_of_int mh *. carried)
      end);
  (* Metric pass: feed each up link its period utilization.  Changed costs
     collect into per-origin slots reused across periods. *)
  Graph.iter_links t.graph (fun (l : Link.t) ->
      let i = Link.id_to_int l.Link.id in
      if t.link_up.(i) then
        (* The PSN measures what its finite-buffer line actually does. *)
        let measured = t.link_delay.(i) in
        match Metric.period_update t.metric l.Link.id ~measured_delay_s:measured with
        | Some cost ->
          let origin = Node.to_int l.Link.src in
          if t.changed_costs.(origin) = [] then begin
            t.changed_origins.(t.changed_count) <- origin;
            t.changed_count <- t.changed_count + 1
          end;
          t.changed_costs.(origin) <- (l.Link.id, cost) :: t.changed_costs.(origin)
        | None -> ());
  let updates = ref 0 in
  let update_bits = ref 0. in
  span t "flood" (fun () ->
      for k = 0 to t.changed_count - 1 do
        let origin = t.changed_origins.(k) in
        let costs = t.changed_costs.(origin) in
        t.changed_costs.(origin) <- [];
        let update = Flooder.originate t.flooders.(origin) ~costs in
        let outcome = Broadcast.flood t.graph t.flooders update in
        incr updates;
        update_bits := !update_bits +. outcome.Broadcast.bits
      done);
  t.changed_count <- 0;
  t.period <- t.period + 1;
  let max_utilization = Array.fold_left Float.max 0. t.utilization in
  let congested_links =
    Array.fold_left (fun acc u -> if u > 0.9 then acc + 1 else acc) 0
      t.utilization
  in
  let stats =
    { time_s = time_s t;
      offered_bps = !total_offered;
      delivered_bps = !delivered;
      dropped_bps = !dropped;
      mean_delay_s =
        (if !delivered > 0. then !delay_weighted /. !delivered else 0.);
      mean_hops = (if !delivered > 0. then !hops_weighted /. !delivered else 0.);
      mean_min_hops =
        (if !delivered > 0. then !min_hops_weighted /. !delivered else 0.);
      updates = !updates;
      update_bits = !update_bits;
      max_utilization;
      congested_links;
      routes_changed = !routes_changed }
  in
  (* Telemetry per-period: per-link series, oscillation detection, update
     counters, SPF engine gauges, and one JSONL summary event. *)
  (match t.obs with
  | None -> ()
  | Some o ->
    let now = stats.time_s in
    let on_flag ~link ~time ~flips =
      Obs_metrics.inc o.osc_flags;
      Obs_sink.emit o.obs_sink (fun () ->
          Obs_json.Obj
            [ ("t", Obs_json.Float time);
              ("ev", Obs_json.String "oscillation");
              ("link", Obs_json.Int link);
              ("flips", Obs_json.Int flips) ])
    in
    let kind = Metric.kind t.metric in
    for i = 0 to nl - 1 do
      let lid = Link.id_of_int i in
      let cost = Metric.cost t.metric lid in
      let idle = Metric.idle_cost kind (Graph.link t.graph lid) in
      Obs_metrics.sample o.util_series.(i) ~time:now t.utilization.(i);
      Obs_metrics.sample o.cost_series.(i) ~time:now (float_of_int cost);
      Obs_metrics.sample o.cost_hops_series.(i) ~time:now
        (float_of_int cost /. float_of_int (max 1 idle));
      Obs_oscillation.observe ~on_flag o.osc ~link:i ~time:now ~cost
    done;
    Obs_metrics.inc ~by:!updates o.updates_counter;
    let s = Spf_engine.stats t.engine in
    Obs_metrics.set o.spf_refreshes (float_of_int s.Spf_engine.refreshes);
    Obs_metrics.set o.spf_skipped (float_of_int s.Spf_engine.skipped);
    Obs_metrics.set o.spf_full_sweeps (float_of_int s.Spf_engine.full_sweeps);
    Obs_metrics.set o.spf_recomputed
      (float_of_int s.Spf_engine.sources_recomputed);
    Obs_metrics.set o.spf_repaired
      (float_of_int s.Spf_engine.sources_repaired);
    Obs_metrics.set o.spf_reused (float_of_int s.Spf_engine.sources_reused);
    Obs_metrics.set o.spf_resettled
      (float_of_int s.Spf_engine.nodes_resettled);
    Obs_sink.emit o.obs_sink (fun () ->
        Obs_json.Obj
          [ ("t", Obs_json.Float now);
            ("ev", Obs_json.String "period");
            ("updates", Obs_json.Int stats.updates);
            ("delivered_bps", Obs_json.Float stats.delivered_bps);
            ("dropped_bps", Obs_json.Float stats.dropped_bps);
            ("max_utilization", Obs_json.Float stats.max_utilization);
            ("congested_links", Obs_json.Int stats.congested_links);
            ("routes_changed", Obs_json.Int stats.routes_changed) ]));
  t.history <- stats :: t.history;
  stats

let run t ~periods = List.init periods (fun _ -> step t)

let set_traffic t tm =
  t.flows <- flows_of_matrix tm;
  t.prev_first_hop <- [||]

let switch_metric t kind =
  Log.info (fun m ->
      m "t=%.0fs: switching metric to %s" (time_s t) (Metric.kind_name kind));
  t.metric <- Metric.create kind t.graph;
  (* A software reload floods fresh costs for every link at once; the
     engines pick the new costs up by diffing on the next refresh. *)
  t.flooders <- make_flooders t.graph

let set_link_up t lid up =
  let i = Link.id_to_int lid in
  if t.link_up.(i) <> up then begin
    Log.info (fun m ->
        m "t=%.0fs: link %a %s" (time_s t) Link.pp (Graph.link t.graph lid)
          (if up then "up (easing in)" else "down"));
    t.link_up.(i) <- up;
    if up then Metric.link_up t.metric lid
  end

let set_adaptive_sources t enabled =
  t.adaptive_sources <- enabled;
  if not enabled then Hashtbl.reset t.throttle

let set_stagger t fraction =
  if fraction < 0. || fraction > 1. then invalid_arg "Flow_sim.set_stagger";
  t.stagger <- fraction

let link_utilization t lid = t.utilization.(Link.id_to_int lid)

let link_cost t lid = Metric.cost t.metric lid

let indicators t ?(skip = 0) () =
  let all = List.rev t.history in
  let rec drop k = function
    | rest when k <= 0 -> rest
    | [] -> []
    | _ :: rest -> drop (k - 1) rest
  in
  let kept = drop skip all in
  if kept = [] then invalid_arg "Flow_sim.indicators: no periods retained";
  let n = List.length kept in
  let elapsed = float_of_int n *. Units.routing_period_s in
  let sum f = List.fold_left (fun acc s -> acc +. f s) 0. kept in
  let delivered_total = sum (fun s -> s.delivered_bps) in
  let weighted f =
    if delivered_total > 0. then
      sum (fun s -> f s *. s.delivered_bps) /. delivered_total
    else 0.
  in
  let actual = weighted (fun s -> s.mean_hops) in
  let minimum = weighted (fun s -> s.mean_min_hops) in
  let updates = sum (fun s -> float_of_int s.updates) in
  { Measure.elapsed_s = elapsed;
    internode_traffic_bps = delivered_total /. float_of_int n;
    round_trip_delay_ms = 2. *. weighted (fun s -> s.mean_delay_s) *. 1000.;
    updates_per_s = updates /. elapsed;
    update_period_per_node_s =
      (if updates = 0. then infinity
       else float_of_int (Graph.node_count t.graph) *. elapsed /. updates);
    actual_path_hops = actual;
    minimum_path_hops = minimum;
    path_ratio = (if minimum > 0. then actual /. minimum else 1.);
    dropped_per_s =
      sum (fun s -> s.dropped_bps) /. float_of_int n /. 600.;
    overhead_bps = sum (fun s -> s.update_bits) /. elapsed }

let history t = List.rev t.history

(* Substrate aliases opened by every module in this library. *)

module Node = Routing_topology.Node
module Line_type = Routing_topology.Line_type
module Link = Routing_topology.Link
module Graph = Routing_topology.Graph
module Traffic_matrix = Routing_topology.Traffic_matrix
module Rng = Routing_stats.Rng
module Welford = Routing_stats.Welford
module Time_series = Routing_stats.Time_series
module Dijkstra = Routing_spf.Dijkstra
module Spf_engine = Routing_spf.Spf_engine
module Spf_tree = Routing_spf.Spf_tree
module Domain_pool = Routing_metric.Domain_pool
module Routing_table = Routing_spf.Routing_table
module Metric = Routing_metric.Metric
module Queueing = Routing_metric.Queueing
module Units = Routing_metric.Units
module Measurement = Routing_metric.Measurement
module Flooder = Routing_flooding.Flooder
module Broadcast = Routing_flooding.Broadcast
module Update = Routing_flooding.Update
module Obs_json = Routing_obs.Json
module Obs_sink = Routing_obs.Sink
module Obs_metrics = Routing_obs.Metrics
module Obs_span = Routing_obs.Span
module Obs_oscillation = Routing_obs.Oscillation
module Telemetry = Routing_obs.Telemetry

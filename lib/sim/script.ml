open! Import
module Serial = Routing_topology.Serial

type action =
  | Link_down of string * string
  | Link_up of string * string
  | Set_metric of Metric.kind
  | Scale_traffic of float
  | Adaptive_sources of bool

type event = { at_s : float; action : action; line : int }

type t = {
  graph : Graph.t;
  traffic : Traffic_matrix.t;
  events : event list;
}

type error_kind =
  | Syntax
  | Unknown_node of string
  | No_trunk of string * string

type error = { line : int; kind : error_kind; message : string }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let is_event_line line =
  let line = String.trim (strip_comment line) in
  String.length line >= 3 && String.sub line 0 3 = "at "

let parse_action = function
  | [ "link-down"; a; b ] -> Ok (Link_down (a, b))
  | [ "link-up"; a; b ] -> Ok (Link_up (a, b))
  | [ "metric"; name ] -> (
    match Metric.kind_of_name name with
    | Some k -> Ok (Set_metric k)
    | None -> Error (Printf.sprintf "unknown metric %S" name))
  | [ "scale"; x ] -> (
    match float_of_string_opt x with
    | Some f when f >= 0. -> Ok (Scale_traffic f)
    | _ -> Error (Printf.sprintf "bad scale %S" x))
  | [ "adaptive"; "on" ] -> Ok (Adaptive_sources true)
  | [ "adaptive"; "off" ] -> Ok (Adaptive_sources false)
  | other -> Error (Printf.sprintf "unknown action %S" (String.concat " " other))

let parse_event_line ~line:number line =
  let fields =
    String.split_on_char ' '
      (String.map (function '\t' -> ' ' | c -> c) (strip_comment line))
    |> List.filter (fun s -> String.length s > 0)
  in
  match fields with
  | "at" :: time :: action -> (
    match float_of_string_opt time with
    | Some at_s when at_s >= 0. -> (
      match parse_action action with
      | Ok action -> Ok { at_s; action; line = number }
      | Error e -> Error e)
    | _ -> Error (Printf.sprintf "bad time %S" time))
  | _ -> Error "malformed event line"

(* Cross-reference an event's node and trunk names against the parsed
   topology, so misspellings surface at parse time with a line number
   rather than as a mid-run [Invalid_argument]. *)
let check_references graph (e : event) =
  match e.action with
  | Set_metric _ | Scale_traffic _ | Adaptive_sources _ -> []
  | Link_down (a, b) | Link_up (a, b) -> (
    let missing =
      List.filter_map
        (fun name ->
          match Graph.node_by_name graph name with
          | Some _ -> None
          | None ->
            Some
              { line = e.line;
                kind = Unknown_node name;
                message = Printf.sprintf "unknown node %S" name })
        [ a; b ]
    in
    match missing with
    | _ :: _ -> missing
    | [] ->
      let src = Option.get (Graph.node_by_name graph a) in
      let dst = Option.get (Graph.node_by_name graph b) in
      if Graph.find_link graph ~src ~dst = None then
        [ { line = e.line;
            kind = No_trunk (a, b);
            message = Printf.sprintf "no trunk %s-%s" a b } ]
      else [])

let lint text =
  let lines = String.split_on_char '\n' text in
  let events = ref [] in
  let errors = ref [] in
  (* Blank out event lines (rather than dropping them) so the serial
     section keeps its original line numbering. *)
  let rest =
    List.mapi
      (fun index line ->
        if is_event_line line then begin
          (match parse_event_line ~line:(index + 1) line with
          | Ok e -> events := e :: !events
          | Error message ->
            errors := { line = index + 1; kind = Syntax; message } :: !errors);
          ""
        end
        else line)
      lines
  in
  let serial_errors, (graph, traffic) =
    Serial.lint (String.concat "\n" rest)
  in
  List.iter
    (fun (line, message) ->
      errors := { line; kind = Syntax; message } :: !errors)
    serial_errors;
  let events = List.rev !events in
  List.iter
    (fun e -> List.iter (fun err -> errors := err :: !errors) (check_references graph e))
    events;
  let errors = List.sort (fun a b -> compare (a.line, a.message) (b.line, b.message)) !errors in
  ( errors,
    { graph;
      traffic;
      events = List.stable_sort (fun a b -> Float.compare a.at_s b.at_s) events } )

let parse text =
  match lint text with
  | [], t -> Ok t
  | { line; message; _ } :: _, _ ->
    Error (Printf.sprintf "line %d: %s" line message)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error message -> Error message

let trunk_both t a b =
  let named name =
    match Graph.node_by_name t.graph name with
    | Some n -> n
    | None -> invalid_arg (Printf.sprintf "Script: unknown node %S" name)
  in
  let src = named a and dst = named b in
  match Graph.find_link t.graph ~src ~dst with
  | Some l -> [ l.Link.id; l.Link.reverse ]
  | None -> invalid_arg (Printf.sprintf "Script: no trunk %s-%s" a b)

let apply t sim = function
  | Link_down (a, b) ->
    List.iter (fun lid -> Flow_sim.set_link_up sim lid false) (trunk_both t a b)
  | Link_up (a, b) ->
    List.iter (fun lid -> Flow_sim.set_link_up sim lid true) (trunk_both t a b)
  | Set_metric kind -> Flow_sim.switch_metric sim kind
  | Scale_traffic factor ->
    Flow_sim.set_traffic sim (Traffic_matrix.scale t.traffic factor)
  | Adaptive_sources on -> Flow_sim.set_adaptive_sources sim on

let run ?domains ?telemetry ?tracer ?(metric = Metric.Hn_spf)
    ?(on_period = fun _ _ -> ()) t ~periods =
  let sim = Flow_sim.create ?domains ?telemetry ?tracer t.graph metric t.traffic in
  let pending = ref t.events in
  for period = 0 to periods - 1 do
    let now = float_of_int period *. Units.routing_period_s in
    let fire, keep =
      List.partition (fun e -> e.at_s <= now +. 1e-9) !pending
    in
    pending := keep;
    List.iter (fun e -> apply t sim e.action) fire;
    let stats = Flow_sim.step sim in
    on_period sim stats
  done;
  sim

type link_state = {
  mutable last_cost : int;
  mutable seen : bool;
  mutable direction : int; (* -1, 0, +1: sign of the last cost change *)
  mutable flips : float list; (* flip times, newest first, within window *)
  mutable flips_total : int; (* flips ever, window-independent *)
  mutable flagged : bool; (* currently over threshold *)
  mutable ever : bool;
}

type t = {
  window_s : float;
  max_flips : int;
  states : link_state array;
  mutable flag_count : int;
  mutable flips_total : int; (* sum of per-link flips_total *)
}

let create ?(window_s = 120.) ?(max_flips = 4) ~links () =
  if links < 0 then invalid_arg "Oscillation.create: links < 0";
  if window_s <= 0. then invalid_arg "Oscillation.create: window_s <= 0";
  if max_flips < 1 then invalid_arg "Oscillation.create: max_flips < 1";
  { window_s;
    max_flips;
    states =
      Array.init links (fun _ ->
          { last_cost = 0;
            seen = false;
            direction = 0;
            flips = [];
            flips_total = 0;
            flagged = false;
            ever = false });
    flag_count = 0;
    flips_total = 0 }

(* Newest-first: keep the prefix inside the window.  Top-level so quiet
   observations stay allocation-free — a local [let rec] would close over
   the horizon and be allocated on every call, flips or not. *)
let rec keep_within horizon = function
  | x :: rest when x >= horizon -> x :: keep_within horizon rest
  | _ -> []

let[@inline] prune t s ~time =
  match s.flips with
  | [] -> ()
  | oldest_might_expire ->
      s.flips <- keep_within (time -. t.window_s) oldest_might_expire

let[@inline] observe ?on_flag t ~link ~time ~cost =
  let s = t.states.(link) in
  prune t s ~time;
  (if not s.seen then begin
     s.seen <- true;
     s.last_cost <- cost
   end
   else if cost <> s.last_cost then begin
     let direction = if cost > s.last_cost then 1 else -1 in
     if s.direction <> 0 && direction <> s.direction then begin
       s.flips <- time :: s.flips;
       s.flips_total <- s.flips_total + 1;
       t.flips_total <- t.flips_total + 1
     end;
     s.direction <- direction;
     s.last_cost <- cost
   end);
  let n = List.length s.flips in
  if n > t.max_flips then begin
    if not s.flagged then begin
      s.flagged <- true;
      s.ever <- true;
      t.flag_count <- t.flag_count + 1;
      match on_flag with
      | Some f -> f ~link ~time ~flips:n
      | None -> ()
    end
  end
  else s.flagged <- false

let flips_in_window t ~link = List.length t.states.(link).flips

let link_total_flips t ~link = t.states.(link).flips_total

let total_flips t = t.flips_total

let collect t pred =
  let out = ref [] in
  for i = Array.length t.states - 1 downto 0 do
    if pred t.states.(i) then out := i :: !out
  done;
  !out

let flagged t = collect t (fun s -> s.flagged)

let ever_flagged t = collect t (fun s -> s.ever)

let flag_count t = t.flag_count

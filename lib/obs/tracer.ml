(* Struct-of-arrays rings, one per recording domain.  The hot path is
   [emit]: resolve the caller's ring from an atomic domain→slot map (two
   loads once registered), then write timestamp + packed code + two args
   at [written land mask] and bump [written].  No allocation: the only
   construction happens on a domain's first event (ring registration) and
   at [intern] time, both cold and mutex-protected.

   Publication safety: [register] appends the new ring to [t.rings]
   (plain field) *before* publishing the owning domain's slot through the
   atomic [slot_map]; a reader that observes the slot therefore observes
   a rings array containing it. *)

type clock = Untimed | Wall | Fn of (unit -> float)

type kind = Begin | End | Instant | Counter

type ring = {
  domain : int;
  ts : float array;
  code : int array; (* name id lsl 2 lor kind *)
  arg_a : int array;
  arg_b : int array;
  mutable written : int; (* events ever; ring index = written land mask *)
}

type t = {
  on : bool;
  cap : int; (* power of two *)
  mask : int;
  clk : clock;
  mutable rings : ring array; (* grow-only; slot = array index *)
  slot_map : int array Atomic.t; (* domain id -> slot, -1 = unregistered *)
  lock : Mutex.t;
  mutable names : string array;
  mutable name_count : int;
}

let null =
  { on = false;
    cap = 16;
    mask = 15;
    clk = Untimed;
    rings = [||];
    slot_map = Atomic.make [||];
    lock = Mutex.create ();
    names = [||];
    name_count = 0 }

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let make_ring cap domain =
  { domain;
    ts = Array.make cap 0.;
    code = Array.make cap 0;
    arg_a = Array.make cap 0;
    arg_b = Array.make cap 0;
    written = 0 }

(* Cold: called under [t.lock] or single-threaded at creation. *)
let register_locked t d =
  let slot = Array.length t.rings in
  let r = make_ring t.cap d in
  let rings = Array.make (slot + 1) r in
  Array.blit t.rings 0 rings 0 slot;
  t.rings <- rings;
  let old = Atomic.get t.slot_map in
  let len = max (d + 1) (Array.length old) in
  let m = Array.make len (-1) in
  Array.blit old 0 m 0 (Array.length old);
  m.(d) <- slot;
  Atomic.set t.slot_map m;
  r

let create ?(capacity = 65536) ?(clock = Untimed) () =
  let cap = pow2 (max 16 capacity) 16 in
  let t =
    { on = true;
      cap;
      mask = cap - 1;
      clk = clock;
      rings = [||];
      slot_map = Atomic.make [||];
      lock = Mutex.create ();
      names = Array.make 8 "";
      name_count = 0 }
  in
  (* The creating domain always owns slot 0, so single-domain traces are
     fully deterministic and the first event never allocates. *)
  ignore (register_locked t (Domain.self () :> int));
  t

let enabled t = t.on

let capacity t = t.cap

let clock t = t.clk

let register t d =
  Mutex.lock t.lock;
  let map = Atomic.get t.slot_map in
  let r =
    if d < Array.length map && map.(d) >= 0 then t.rings.(map.(d))
    else register_locked t d
  in
  Mutex.unlock t.lock;
  r

let[@inline] ring_for t =
  let d = (Domain.self () :> int) in
  let map = Atomic.get t.slot_map in
  if d < Array.length map && Array.unsafe_get map d >= 0 then
    Array.unsafe_get t.rings (Array.unsafe_get map d)
  else register t d

(* [kind] is the low two bits of the packed code: 0 begin, 1 end,
   2 instant, 3 counter. *)
let emit t kind id a b =
  let r = ring_for t in
  let i = r.written land t.mask in
  (match t.clk with
  | Untimed -> Array.unsafe_set r.ts i (float_of_int r.written)
  | Wall -> Array.unsafe_set r.ts i (Unix.gettimeofday ())
  | Fn f -> Array.unsafe_set r.ts i (f ()));
  Array.unsafe_set r.code i ((id lsl 2) lor kind);
  Array.unsafe_set r.arg_a i a;
  Array.unsafe_set r.arg_b i b;
  r.written <- r.written + 1
[@@hot_path]

let[@inline] span_begin t id = if t.on then emit t 0 id 0 0 [@@hot_path]

let[@inline] span_begin_range t id ~lo ~hi = if t.on then emit t 0 id lo hi
[@@hot_path]

let[@inline] span_end t id = if t.on then emit t 1 id 0 0 [@@hot_path]

let[@inline] instant t id ~arg = if t.on then emit t 2 id arg 0 [@@hot_path]

let[@inline] counter t id ~value = if t.on then emit t 3 id value 0
[@@hot_path]

let intern t name =
  if not t.on then 0
  else begin
    Mutex.lock t.lock;
    let id = ref (-1) in
    for i = 0 to t.name_count - 1 do
      if !id < 0 && String.equal t.names.(i) name then id := i
    done;
    let id =
      if !id >= 0 then !id
      else begin
        if t.name_count = Array.length t.names then begin
          let names = Array.make (2 * t.name_count) "" in
          Array.blit t.names 0 names 0 t.name_count;
          t.names <- names
        end;
        t.names.(t.name_count) <- name;
        t.name_count <- t.name_count + 1;
        t.name_count - 1
      end
    in
    Mutex.unlock t.lock;
    id
  end

let pool_probe t =
  let fallback = intern t "pool_chunk" in
  { Routing_metric.Domain_pool.chunk_begin =
      (fun ~label ~lo ~hi ->
        span_begin_range t (if label >= 0 then label else fallback) ~lo ~hi);
    chunk_end =
      (fun ~label ~lo ~hi ->
        ignore lo;
        ignore hi;
        span_end t (if label >= 0 then label else fallback)) }

let slots t = Array.length t.rings

let slot_domain t slot = t.rings.(slot).domain

let slot_recorded t slot = t.rings.(slot).written

let slot_dropped t slot = max 0 (t.rings.(slot).written - t.cap)

let dropped t =
  let d = ref 0 in
  for s = 0 to slots t - 1 do
    d := !d + slot_dropped t s
  done;
  !d

let name t id = if id >= 0 && id < t.name_count then t.names.(id) else "?"

let iter_slot t slot f =
  let r = t.rings.(slot) in
  let retained = min r.written t.cap in
  for k = r.written - retained to r.written - 1 do
    let i = k land t.mask in
    let code = r.code.(i) in
    let kind =
      match code land 3 with
      | 0 -> Begin
      | 1 -> End
      | 2 -> Instant
      | _ -> Counter
    in
    f ~ts:r.ts.(i) ~kind ~name:(code lsr 2) ~a:r.arg_a.(i) ~b:r.arg_b.(i)
  done

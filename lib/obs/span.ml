type clock = unit -> float

let untimed () = 0.

let wall = Unix.gettimeofday

type cell = {
  mutable count : int;
  mutable total_s : float;
  mutable max_s : float;
}

type t = {
  clock : clock;
  cells : (string, cell) Hashtbl.t;
}

let create ?(clock = untimed) () = { clock; cells = Hashtbl.create 16 }

let cell t name =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c
  | None ->
    let c = { count = 0; total_s = 0.; max_s = 0. } in
    Hashtbl.add t.cells name c;
    c

let with_ t ~name f =
  let c = cell t name in
  let started = t.clock () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = t.clock () -. started in
      c.count <- c.count + 1;
      c.total_s <- c.total_s +. elapsed;
      if elapsed > c.max_s then c.max_s <- elapsed)
    f

type row = {
  name : string;
  count : int;
  total_s : float;
  max_s : float;
}

let report t =
  Hashtbl.fold
    (fun name (c : cell) acc ->
      { name; count = c.count; total_s = c.total_s; max_s = c.max_s } :: acc)
    t.cells []
  |> List.sort (fun a b -> String.compare a.name b.name)

let to_json t =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("name", Json.String r.name);
             ("count", Json.Int r.count);
             ("total_s", Json.Float r.total_s);
             ("max_s", Json.Float r.max_s) ])
       (report t))

let pp ppf t =
  let rows =
    List.sort (fun a b -> compare b.total_s a.total_s) (report t)
  in
  Format.fprintf ppf "@[<v>%-24s %10s %12s %12s %12s@," "span" "count"
    "total ms" "mean us" "max us";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-24s %10d %12.2f %12.1f %12.1f@," r.name r.count
        (1000. *. r.total_s)
        (if r.count > 0 then 1e6 *. r.total_s /. float_of_int r.count else 0.)
        (1e6 *. r.max_s))
    rows;
  Format.fprintf ppf "@]"

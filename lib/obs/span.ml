type clock = unit -> float

let untimed () = 0.

let wall = Unix.gettimeofday

type cell = {
  mutable count : int;
  mutable total_s : float;
  mutable max_s : float;
  q50 : Routing_stats.Quantile.t;
  q95 : Routing_stats.Quantile.t;
  q99 : Routing_stats.Quantile.t;
}

type t = {
  clock : clock;
  cells : (string, cell) Hashtbl.t;
}

let create ?(clock = untimed) () = { clock; cells = Hashtbl.create 16 }

let cell t name =
  match Hashtbl.find_opt t.cells name with
  | Some c -> c
  | None ->
    let c =
      { count = 0;
        total_s = 0.;
        max_s = 0.;
        q50 = Routing_stats.Quantile.create 0.50;
        q95 = Routing_stats.Quantile.create 0.95;
        q99 = Routing_stats.Quantile.create 0.99 }
    in
    Hashtbl.add t.cells name c;
    c

let observe c elapsed =
  c.count <- c.count + 1;
  c.total_s <- c.total_s +. elapsed;
  if elapsed > c.max_s then c.max_s <- elapsed;
  Routing_stats.Quantile.add c.q50 elapsed;
  Routing_stats.Quantile.add c.q95 elapsed;
  Routing_stats.Quantile.add c.q99 elapsed

let with_ t ~name f =
  let c = cell t name in
  let started = t.clock () in
  Fun.protect
    ~finally:(fun () -> observe c (t.clock () -. started))
    f

let clock_now t = t.clock ()

let record t ~name ~started = observe (cell t name) (clock_now t -. started)

type row = {
  name : string;
  count : int;
  total_s : float;
  max_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
}

let quantile_or_zero q =
  let v = Routing_stats.Quantile.value q in
  if Float.is_nan v then 0. else v

let report t =
  Hashtbl.fold
    (fun name (c : cell) acc ->
      { name;
        count = c.count;
        total_s = c.total_s;
        max_s = c.max_s;
        p50_s = quantile_or_zero c.q50;
        p95_s = quantile_or_zero c.q95;
        p99_s = quantile_or_zero c.q99 }
      :: acc)
    t.cells []
  |> List.sort (fun a b -> String.compare a.name b.name)

let to_json t =
  Json.List
    (List.map
       (fun r ->
         Json.Obj
           [ ("name", Json.String r.name);
             ("count", Json.Int r.count);
             ("total_s", Json.Float r.total_s);
             ("max_s", Json.Float r.max_s);
             ("p50_s", Json.Float r.p50_s);
             ("p95_s", Json.Float r.p95_s);
             ("p99_s", Json.Float r.p99_s) ])
       (report t))

let pp ppf t =
  let rows =
    List.sort (fun a b -> compare b.total_s a.total_s) (report t)
  in
  Format.fprintf ppf "@[<v>%-24s %10s %12s %12s %10s %10s %10s %12s@," "span"
    "count" "total ms" "mean us" "p50 us" "p95 us" "p99 us" "max us";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-24s %10d %12.2f %12.1f %10.1f %10.1f %10.1f %12.1f@," r.name r.count
        (1000. *. r.total_s)
        (if r.count > 0 then 1e6 *. r.total_s /. float_of_int r.count else 0.)
        (1e6 *. r.p50_s) (1e6 *. r.p95_s) (1e6 *. r.p99_s) (1e6 *. r.max_s))
    rows;
  Format.fprintf ppf "@]"

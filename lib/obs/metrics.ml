module Histo = Routing_stats.Histogram
module Time_series = Routing_stats.Time_series

type labels = (string * string) list

type counter = { mutable count : int }

type gauge = { mutable value : float }

type histogram = Histo.t

type series = Time_series.t

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Series of series

type t = {
  instruments : (string * labels, instrument) Hashtbl.t;
  meta : (string, string) Hashtbl.t;
}

let create () = { instruments = Hashtbl.create 64; meta = Hashtbl.create 8 }

let set_meta t key value = Hashtbl.replace t.meta key value

let normalize labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Series _ -> "series"

let register t ~labels name fresh =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.instruments key with
  | Some existing -> existing
  | None ->
    let made = fresh () in
    Hashtbl.add t.instruments key made;
    made

let mismatch name existing =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as a %s" name
       (kind_name existing))

let counter t ?(labels = []) name =
  match register t ~labels name (fun () -> Counter { count = 0 }) with
  | Counter c -> c
  | other -> mismatch name other

let inc ?(by = 1) c = c.count <- c.count + by

let counter_value c = c.count

let gauge t ?(labels = []) name =
  match register t ~labels name (fun () -> Gauge { value = 0. }) with
  | Gauge g -> g
  | other -> mismatch name other

let set g value = g.value <- value

let gauge_value g = g.value

let histogram t ?(labels = []) ~lo ~hi ~bins name =
  match
    register t ~labels name (fun () -> Histogram (Histo.create ~lo ~hi ~bins))
  with
  | Histogram h -> h
  | other -> mismatch name other

let observe h x = Histo.add h x

let histogram_data h = h

let series t ?(labels = []) name =
  match register t ~labels name (fun () -> Series (Time_series.create name))
  with
  | Series s -> s
  | other -> mismatch name other

let sample s ~time v = Time_series.record s ~time v

let adopt_series t ?(labels = []) name existing =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.instruments key with
  | None -> Hashtbl.add t.instruments key (Series existing)
  | Some (Series s) when s == existing -> ()
  | Some other -> mismatch name other

(* ---------------------------------------------------------------- *)

(* Instruments of [src] in deterministic (name, labels) order — the same
   order [to_json] renders, so merge results never depend on hash-table
   internals. *)
let sorted_instruments t =
  Hashtbl.fold (fun key i acc -> (key, i) :: acc) t.instruments []
  |> List.sort (fun ((n, l), _) ((n', l'), _) ->
         match String.compare n n' with 0 -> compare l l' | c -> c)

let merge ~into src =
  Hashtbl.iter (fun k v -> Hashtbl.replace into.meta k v) src.meta;
  List.iter
    (fun (((name, _) as key), instrument) ->
      match (Hashtbl.find_opt into.instruments key, instrument) with
      | None, Counter c ->
        Hashtbl.add into.instruments key (Counter { count = c.count })
      | Some (Counter c'), Counter c -> c'.count <- c'.count + c.count
      | None, Gauge g ->
        Hashtbl.add into.instruments key (Gauge { value = g.value })
      | Some (Gauge g'), Gauge g -> g'.value <- g.value
      | None, Histogram h ->
        let bins = Histo.bins h in
        let lo, _ = Histo.bin_bounds h 0 in
        let _, hi = Histo.bin_bounds h (bins - 1) in
        Hashtbl.add into.instruments key
          (Histogram (Histo.merge (Histo.create ~lo ~hi ~bins) h))
      | Some (Histogram h'), Histogram h ->
        Hashtbl.replace into.instruments key (Histogram (Histo.merge h' h))
      | None, Series s ->
        let s' = Time_series.create (Time_series.name s) in
        Time_series.iter s (fun ~time ~value ->
            Time_series.record s' ~time value);
        Hashtbl.add into.instruments key (Series s')
      | Some (Series s'), Series s ->
        Time_series.iter s (fun ~time ~value ->
            Time_series.record s' ~time value)
      | Some other, _ -> mismatch name other)
    (sorted_instruments src)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let instrument_json (name, labels) instrument =
  let base = [ ("name", Json.String name) ] in
  let base =
    if labels = [] then base else base @ [ ("labels", labels_json labels) ]
  in
  let body =
    match instrument with
    | Counter c -> [ ("type", Json.String "counter"); ("value", Json.Int c.count) ]
    | Gauge g -> [ ("type", Json.String "gauge"); ("value", Json.Float g.value) ]
    | Histogram h ->
      let bins = Histo.bins h in
      let lo, _ = if bins > 0 then Histo.bin_bounds h 0 else (0., 0.) in
      let _, hi =
        if bins > 0 then Histo.bin_bounds h (bins - 1) else (0., 0.)
      in
      [ ("type", Json.String "histogram");
        ("lo", Json.Float lo);
        ("hi", Json.Float hi);
        ("count", Json.Int (Histo.count h));
        ("underflow", Json.Int (Histo.underflow h));
        ("overflow", Json.Int (Histo.overflow h));
        ("buckets",
         Json.List (List.init bins (fun i -> Json.Int (Histo.bin_count h i))))
      ]
    | Series s ->
      let points = ref [] in
      Time_series.iter s (fun ~time ~value ->
          points := Json.List [ Json.Float time; Json.Float value ] :: !points);
      [ ("type", Json.String "series");
        ("points", Json.List (List.rev !points)) ]
  in
  Json.Obj (base @ body)

let to_json ?(extra = []) t =
  let meta =
    Hashtbl.fold (fun k v acc -> (k, Json.String v) :: acc) t.meta []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let entries =
    Hashtbl.fold (fun key i acc -> (key, i) :: acc) t.instruments []
    |> List.sort (fun ((n, l), _) ((n', l'), _) ->
           match String.compare n n' with 0 -> compare l l' | c -> c)
  in
  Json.Obj
    (("meta", Json.Obj meta)
     :: ("metrics",
         Json.List (List.map (fun (key, i) -> instrument_json key i) entries))
     :: extra)

let write_file ?extra t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (to_json ?extra t));
      output_char oc '\n')

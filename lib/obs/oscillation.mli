(** Route-oscillation detection — the paper's headline pathology as a
    first-class measurement.

    Under the pre-revision D-SPF metric a loaded link's reported cost
    swings between extremes every routing period (§3.3, Fig 1): traffic
    chases the cheap link, makes it expensive, and stampedes back.  The
    detector watches each link's reported cost and counts {e direction
    flips} — a rise immediately followed by a fall or vice versa — inside
    a sliding time window.  A link whose flip count exceeds [max_flips]
    is flagged as oscillating.

    HN-SPF's bounded per-period movement and narrowed dynamic range keep
    flip counts below any reasonable threshold, so the detector separates
    the two metrics cleanly on the same workload (see
    [test_obs.ml]'s fixed-seed scenario assertion). *)

type t

val create : ?window_s:float -> ?max_flips:int -> links:int -> unit -> t
(** Track [links] links.  A link is flagged when more than [max_flips]
    direction flips (default 4) land within the trailing [window_s]
    seconds (default 120 — twelve routing periods).
    @raise Invalid_argument if [links < 0], [window_s <= 0] or
    [max_flips < 1]. *)

val observe :
  ?on_flag:(link:int -> time:float -> flips:int -> unit) ->
  t -> link:int -> time:float -> cost:int -> unit
(** Feed one link's reported cost, typically once per routing period.
    [on_flag] fires on the observation that tips the link from calm to
    flagged (once per calm→flagged transition, not per period). *)

val flips_in_window : t -> link:int -> int

val link_total_flips : t -> link:int -> int
(** Direction flips ever observed on a link, independent of the sliding
    window — the Rzepka & Chołda-style change counter sweep reports use. *)

val total_flips : t -> int
(** Sum of {!link_total_flips} over all links. *)

val flagged : t -> int list
(** Links currently over threshold, ascending. *)

val ever_flagged : t -> int list
(** Links flagged at any point in the run, ascending — survives the
    window draining. *)

val flag_count : t -> int
(** Total calm→flagged transitions across all links. *)

type t = {
  minor_words : Metrics.counter;
  promoted_words : Metrics.counter;
  minor_collections : Metrics.counter;
  major_collections : Metrics.counter;
  section_count : Metrics.counter;
  mutable base_minor : float;
  mutable base_promoted : float;
  mutable base_minor_col : int;
  mutable base_major_col : int;
}

let create ?(labels = []) registry ~scope =
  let labels = ("scope", scope) :: labels in
  { minor_words = Metrics.counter registry ~labels "gc_minor_words";
    promoted_words = Metrics.counter registry ~labels "gc_promoted_words";
    minor_collections = Metrics.counter registry ~labels "gc_minor_collections";
    major_collections = Metrics.counter registry ~labels "gc_major_collections";
    section_count = Metrics.counter registry ~labels "gc_sections";
    base_minor = 0.;
    base_promoted = 0.;
    base_minor_col = 0;
    base_major_col = 0 }

(* On OCaml 5, [Gc.quick_stat]'s word counters lag the current domain
   (they sync only at collection boundaries) — a section that allocates
   without triggering a minor collection would read as zero.
   [Gc.minor_words ()] reads the domain's live allocation pointer, so it
   is exact; the collection counts and promoted words genuinely change
   only at collections, where quick_stat is in sync. *)
let start t =
  let s = Gc.quick_stat () in
  t.base_minor <- Gc.minor_words ();
  t.base_promoted <- s.Gc.promoted_words;
  t.base_minor_col <- s.Gc.minor_collections;
  t.base_major_col <- s.Gc.major_collections

let finish t =
  let s = Gc.quick_stat () in
  Metrics.inc ~by:(int_of_float (Gc.minor_words () -. t.base_minor))
    t.minor_words;
  Metrics.inc ~by:(int_of_float (s.Gc.promoted_words -. t.base_promoted))
    t.promoted_words;
  Metrics.inc ~by:(s.Gc.minor_collections - t.base_minor_col)
    t.minor_collections;
  Metrics.inc ~by:(s.Gc.major_collections - t.base_major_col)
    t.major_collections;
  Metrics.inc t.section_count

let with_ t f =
  start t;
  Fun.protect ~finally:(fun () -> finish t) f

let minor_words t = Metrics.counter_value t.minor_words

let sections t = Metrics.counter_value t.section_count

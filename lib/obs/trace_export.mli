(** Offline exporters for {!Tracer} rings.

    Chrome trace-event JSON (the ["traceEvents"] array format) loads
    directly in Perfetto or [chrome://tracing]: one process, one track
    (tid) per recorded domain, named [domain<slot>].  Under the
    {!Tracer.Untimed} clock timestamps are the per-track sequence numbers
    and the output is byte-deterministic; under wall clocks timestamps
    are microseconds.

    {!to_sink} writes the same events as JSONL through an existing
    {!Sink}, one object per line, for the [replay] tooling.

    {!digest} summarizes a parsed Chrome trace without a browser: event
    counts per track and total span time per name (begin/end pairs
    matched per track, innermost-first). *)

val chrome_json : Tracer.t -> Json.t
(** The complete trace object: [{"traceEvents": [...], ...}].  Includes
    thread-name metadata per track and per-track drop counts under
    ["otherData"]. *)

val write_chrome : Tracer.t -> string -> unit
(** Serialize {!chrome_json} to a file. *)

val to_sink : Tracer.t -> Sink.t -> unit
(** Emit every retained event as one JSONL object
    [{"ev":"trace","track":t,"ts":…,"ph":…,"name":…,…}]. *)

type digest = {
  tracks : (int * int) list;  (** (tid, event count), sorted by tid *)
  span_totals : (string * float) list;
      (** per-name summed begin→end duration in the trace's own time
          unit, sorted by name *)
  total_events : int;  (** events across all tracks, metadata excluded *)
  dropped : int;  (** drop count recorded at export time, if present *)
}

val digest : Json.t -> (digest, string) result
(** Digest a parsed Chrome trace.  Fails when ["traceEvents"] is missing
    or not a list; unknown phases are counted but otherwise ignored;
    unmatched begins/ends are tolerated. *)

val pp_digest : Format.formatter -> digest -> unit

(** Pluggable structured-event writers.

    A sink receives a stream of JSON events and serializes each as one
    JSONL line.  Three writers cover every use: a file (the canonical
    trace of a run), an in-memory buffer (tests, replay tooling), and a
    null sink that discards everything.

    Event construction is the expensive part, so emission is lazy: callers
    pass a thunk and {!emit} never forces it on an inactive sink — a
    disabled telemetry path costs one branch, nothing more. *)

type t

val null : t
(** Discards events; {!active} is [false] so producers skip event
    construction entirely. *)

val buffer : unit -> t
(** Accumulates lines in memory; read them back with {!contents}. *)

val file : string -> t
(** Opens (truncating) [path] and writes one line per event.  {!close}
    flushes and closes the channel. *)

val channel : out_channel -> t
(** Writes to an existing channel; {!close} flushes but does not close it
    (the caller owns the channel). *)

val active : t -> bool

val emit : t -> (unit -> Json.t) -> unit
(** Serialize one event.  The thunk is not called when the sink is
    inactive. *)

val emitted : t -> int
(** Events written so far. *)

val contents : t -> string
(** Everything written, for {!buffer} sinks.
    @raise Invalid_argument on other sinks. *)

val close : t -> unit
(** Flush (and for {!file} sinks close) the underlying writer.  Emitting
    after [close] raises. *)

(** A minimal JSON value type with a deterministic compact printer and a
    strict parser.

    The telemetry subsystem serializes events and metric snapshots without
    pulling in an external JSON dependency.  Printing is byte-deterministic:
    object fields keep their construction order, and floats print with the
    shortest decimal representation that round-trips through
    [float_of_string].  The parser accepts exactly the JSON this module (or
    any standards-compliant encoder) produces; numbers without a fraction
    or exponent decode as {!Int}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering (no insignificant whitespace). *)

val to_string_pretty : t -> string
(** Two-space-indented multi-line rendering, for [--metrics-out] files a
    human will open. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing whitespace is allowed, trailing garbage
    is an error.  Error strings include a character offset. *)

(** {2 Accessors}

    Total functions used by decoders: each returns [Error _] rather than
    raising when the shape does not match. *)

val member : string -> t -> (t, string) result
(** Field of an {!Obj}; [Error _] when absent or not an object. *)

val to_int : t -> (int, string) result
(** Accepts {!Int} and integral {!Float}. *)

val to_float : t -> (float, string) result
(** Accepts {!Float} and {!Int} (JSON does not distinguish them). *)

val to_bool : t -> (bool, string) result

val to_str : t -> (string, string) result

val equal : t -> t -> bool
(** Structural equality; object fields compare order-insensitively,
    [Int n] and [Float f] compare equal when [f = float_of_int n]. *)

(** A labeled metrics registry: the run-wide measurement surface.

    Instruments are identified by a name plus a sorted label set
    (["drops", \[reason=ttl\]]).  Registration is idempotent — asking for
    the same (name, labels, kind) returns the existing instrument — and
    handles are plain mutable cells, so the hot path (bump a counter per
    dropped packet) is a single store.

    Four instrument kinds cover the paper's figures:
    - {e counters}: monotone integer totals (drops by reason, updates);
    - {e gauges}: last-write-wins floats (SPF engine counters at snapshot);
    - {e histograms}: fixed-bucket distributions (span durations, delays);
    - {e series}: timestamped float samples (per-link utilization and
      reported cost per routing period — Figs 5–8's raw material).

    {!to_json} renders a deterministic snapshot: instruments sort by name
    then labels, metadata by key.  With a fixed simulator seed two runs
    produce byte-identical snapshots. *)

type t

type labels = (string * string) list

val create : unit -> t

val set_meta : t -> string -> string -> unit
(** Attach free-form run metadata (git rev, seed, topology …), rendered
    under a ["meta"] object in the snapshot.  Re-setting a key overwrites
    it. *)

type counter

val counter : t -> ?labels:labels -> string -> counter
(** @raise Invalid_argument if (name, labels) exists with another kind. *)

val inc : ?by:int -> counter -> unit

val counter_value : counter -> int

type gauge

val gauge : t -> ?labels:labels -> string -> gauge

val set : gauge -> float -> unit

val gauge_value : gauge -> float

type histogram

val histogram :
  t -> ?labels:labels -> lo:float -> hi:float -> bins:int -> string ->
  histogram
(** Fixed-bucket histogram (see {!Routing_stats.Histogram}); re-registering
    must repeat the same bucket layout. *)

val observe : histogram -> float -> unit

val histogram_data : histogram -> Routing_stats.Histogram.t

type series

val series : t -> ?labels:labels -> string -> series

val sample : series -> time:float -> float -> unit

val adopt_series : t -> ?labels:labels -> string -> Routing_stats.Time_series.t -> unit
(** Register an existing time series under the registry so snapshots
    include it — lets a simulator expose the series it already keeps
    without double recording.
    @raise Invalid_argument on a (name, labels) collision with a
    different instrument. *)

val merge : into:t -> t -> unit
(** Fold one registry into another, instrument by instrument in
    deterministic (name, labels) order: counters add, gauges take the
    source's value, histograms merge bin-wise (layouts must match),
    series append the source's points, metadata keys overwrite.  Source
    instruments absent from [into] are deep-copied, so later mutation of
    either registry never aliases the other.  The sweep engine uses this
    to combine per-domain registries into one report whose bytes are
    independent of the domain count — merge in a fixed order (point
    index), not completion order.
    @raise Invalid_argument if a (name, labels) pair carries different
    instrument kinds in the two registries. *)

val to_json : ?extra:(string * Json.t) list -> t -> Json.t
(** The full snapshot; [extra] appends additional top-level fields (the
    span profile, say) after ["meta"] and ["metrics"]. *)

val write_file : ?extra:(string * Json.t) list -> t -> string -> unit
(** Pretty-printed {!to_json} plus a trailing newline. *)

(** Span-based profiling: name a region, run it, aggregate where the time
    went.

    A profile owns a clock.  The default clock always reads 0, so spans
    count invocations but report zero duration — that keeps every
    telemetry artifact byte-deterministic for a fixed simulator seed.
    Pass {!wall} (monotonic wall time) to get a real per-phase profile;
    the simulators do this under [--profile]. *)

type t

type clock = unit -> float

val untimed : clock
(** Always 0: spans count calls, durations stay 0.  The default. *)

val wall : clock
(** Monotonic wall-clock seconds. *)

val create : ?clock:clock -> unit -> t

val with_ : t -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  Nested and recursive spans are fine;
    each invocation contributes its own elapsed time.  Exceptions
    propagate after the span is closed. *)

type row = {
  name : string;
  count : int;
  total_s : float;
  max_s : float;
}

val report : t -> row list
(** One row per span name, sorted by name. *)

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
(** Profile table sorted by descending total time, for [--profile]. *)

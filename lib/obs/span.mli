(** Span-based profiling: name a region, run it, aggregate where the time
    went.

    A profile owns a clock.  The default clock always reads 0, so spans
    count invocations but report zero duration — that keeps every
    telemetry artifact byte-deterministic for a fixed simulator seed.
    Pass {!wall} (monotonic wall time) to get a real per-phase profile;
    the simulators do this under [--profile]. *)

type t

type clock = unit -> float

val untimed : clock
(** Always 0: spans count calls, durations stay 0.  The default. *)

val wall : clock
(** Monotonic wall-clock seconds. *)

val create : ?clock:clock -> unit -> t

val with_ : t -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span.  Nested and recursive spans are fine;
    each invocation contributes its own elapsed time.  Exceptions
    propagate after the span is closed. *)

val clock_now : t -> float
(** Read the profile's clock directly, for the closure-free recording
    idiom: take a timestamp, run straight-line code, then {!record}. *)

val record : t -> name:string -> started:float -> unit
(** Close a span opened by hand at [started] (a {!clock_now} reading).
    Equivalent to {!with_} without allocating a closure — for hot paths
    that must not box. *)

type row = {
  name : string;
  count : int;
  total_s : float;
  max_s : float;
  p50_s : float;  (** P² estimate of the median duration *)
  p95_s : float;
  p99_s : float;
}

val report : t -> row list
(** One row per span name, sorted by name.  Percentiles are streaming P²
    estimates ({!Routing_stats.Quantile}): exact below five observations,
    0 when a span never closed. *)

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
(** Profile table sorted by descending total time, for [--profile]. *)

type writer =
  | Null
  | Buffer of Buffer.t
  | Channel of { oc : out_channel; owned : bool }

type t = {
  writer : writer;
  mutable emitted : int;
  mutable closed : bool;
}

let make writer = { writer; emitted = 0; closed = false }

let null = make Null

let buffer () = make (Buffer (Buffer.create 4096))

let file path = make (Channel { oc = open_out path; owned = true })

let channel oc = make (Channel { oc; owned = false })

let active t = match t.writer with Null -> false | _ -> true

let emit t make_event =
  match t.writer with
  | Null -> ()
  | writer ->
    if t.closed then invalid_arg "Sink.emit: sink is closed";
    let line = Json.to_string (make_event ()) in
    (match writer with
    | Null -> ()
    | Buffer b ->
      Buffer.add_string b line;
      Buffer.add_char b '\n'
    | Channel { oc; _ } ->
      output_string oc line;
      output_char oc '\n');
    t.emitted <- t.emitted + 1

let emitted t = t.emitted

let contents t =
  match t.writer with
  | Buffer b -> Buffer.contents b
  | _ -> invalid_arg "Sink.contents: not a buffer sink"

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.writer with
    | Null | Buffer _ -> ()
    | Channel { oc; owned } -> if owned then close_out oc else flush oc
  end

type t = {
  metrics : Metrics.t;
  sink : Sink.t;
  spans : Span.t;
  tracer : Tracer.t;
  gc : bool;
  osc_window_s : float;
  osc_max_flips : int;
  mutable osc : Oscillation.t option;
}

let create ?(sink = Sink.null) ?(clock = Span.untimed) ?(tracer = Tracer.null)
    ?(gc = false) ?(osc_window_s = 120.) ?(osc_max_flips = 4) () =
  { metrics = Metrics.create ();
    sink;
    spans = Span.create ~clock ();
    tracer;
    gc;
    osc_window_s;
    osc_max_flips;
    osc = None }

let metrics t = t.metrics

let sink t = t.sink

let spans t = t.spans

let tracer t = t.tracer

let gc_enabled t = t.gc

let init_oscillation t ~links =
  match t.osc with
  | Some o -> o
  | None ->
    let o =
      Oscillation.create ~window_s:t.osc_window_s ~max_flips:t.osc_max_flips
        ~links ()
    in
    t.osc <- Some o;
    o

let oscillation t = t.osc

let snapshot_json t =
  let osc_json =
    match t.osc with
    | None -> Json.Null
    | Some o ->
      Json.Obj
        [ ("flagged",
           Json.List (List.map (fun i -> Json.Int i) (Oscillation.flagged o)));
          ("ever_flagged",
           Json.List
             (List.map (fun i -> Json.Int i) (Oscillation.ever_flagged o)));
          ("flag_count", Json.Int (Oscillation.flag_count o)) ]
  in
  Metrics.to_json t.metrics
    ~extra:
      [ ("spans", Span.to_json t.spans);
        ("oscillation", osc_json);
        ("events_emitted", Json.Int (Sink.emitted t.sink)) ]

let write_metrics t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty (snapshot_json t));
      output_char oc '\n')

let close t = Sink.close t.sink

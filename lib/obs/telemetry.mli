(** The bundle a simulator carries: one registry, one event sink, one span
    profile, and (once the simulator declares its link count) one
    oscillation detector.

    Simulators accept [?telemetry] and do nothing when it is absent — the
    disabled path is a single [match] per hook.  The CLI builds one bundle
    per run from [--trace-out] / [--metrics-out] / [--profile] and reads
    everything back out at end of run. *)

type t

val create :
  ?sink:Sink.t ->
  ?clock:Span.clock ->
  ?tracer:Tracer.t ->
  ?gc:bool ->
  ?osc_window_s:float ->
  ?osc_max_flips:int ->
  unit ->
  t
(** [sink] defaults to {!Sink.null}; [clock] to {!Span.untimed} (so span
    durations stay deterministic — pass {!Span.wall} for a real profile);
    [tracer] to {!Tracer.null} (pass a live one to flight-record the run).
    [gc] turns on {!Gc_account} sections around routing periods and major
    phases (default off: GC counters are compiler-version-dependent, so
    deterministic-artifact tests keep them out).  The oscillation
    parameters are stored for {!init_oscillation}. *)

val metrics : t -> Metrics.t

val sink : t -> Sink.t

val spans : t -> Span.t

val tracer : t -> Tracer.t

val gc_enabled : t -> bool

val init_oscillation : t -> links:int -> Oscillation.t
(** Create (or return the already-created) detector sized to the
    simulator's link count, with the window/threshold given at
    {!create}. *)

val oscillation : t -> Oscillation.t option

val snapshot_json : t -> Json.t
(** Metrics snapshot with the span profile and oscillation summary
    appended — what [--metrics-out] writes. *)

val write_metrics : t -> string -> unit

val close : t -> unit
(** Close the sink (flush the trace file). *)

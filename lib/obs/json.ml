type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Shortest of %.15g / %.16g / %.17g that parses back to the same double:
   deterministic, round-trips exactly, avoids "0.30000000000000004"-style
   noise for the common cases. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e16 then
    (* Keep a fractionless integral float distinguishable from an int is
       not needed — JSON has one number type — but ".0" reads better. *)
    Printf.sprintf "%.1f" f
  else begin
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> (
      match try_prec 16 with
      | Some s -> s
      | None -> Printf.sprintf "%.17g" f)
  end

let escape_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let number_repr f =
  if Float.is_nan f then "null" (* JSON has no NaN; null is the least bad *)
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else float_repr f

let rec write ~indent ~level buffer v =
  let sep_comma, sep_colon, opening, closing =
    if indent <= 0 then ((fun () -> Buffer.add_char buffer ','),
                         (fun () -> Buffer.add_char buffer ':'),
                         (fun c -> Buffer.add_char buffer c),
                         (fun c -> Buffer.add_char buffer c))
    else begin
      let pad n = Buffer.add_string buffer (String.make (indent * n) ' ') in
      ((fun () -> Buffer.add_string buffer ",\n"; pad (level + 1)),
       (fun () -> Buffer.add_string buffer ": "),
       (fun c -> Buffer.add_char buffer c; Buffer.add_char buffer '\n';
         pad (level + 1)),
       (fun c -> Buffer.add_char buffer '\n'; pad level;
         Buffer.add_char buffer c))
    end
  in
  match v with
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (if b then "true" else "false")
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f -> Buffer.add_string buffer (number_repr f)
  | String s -> escape_string buffer s
  | List [] -> Buffer.add_string buffer "[]"
  | List (x :: rest) ->
    opening '[';
    write ~indent ~level:(level + 1) buffer x;
    List.iter (fun x -> sep_comma (); write ~indent ~level:(level + 1) buffer x)
      rest;
    closing ']'
  | Obj [] -> Buffer.add_string buffer "{}"
  | Obj ((k, x) :: rest) ->
    let field (k, x) =
      escape_string buffer k;
      sep_colon ();
      write ~indent ~level:(level + 1) buffer x
    in
    opening '{';
    field (k, x);
    List.iter (fun kv -> sep_comma (); field kv) rest;
    closing '}'

let to_string v =
  let buffer = Buffer.create 256 in
  write ~indent:0 ~level:0 buffer v;
  Buffer.contents buffer

let to_string_pretty v =
  let buffer = Buffer.create 1024 in
  write ~indent:2 ~level:0 buffer v;
  Buffer.contents buffer

(* ---------------------------------------------------------------- *)
(* Parser: recursive descent over the string with a mutable cursor.  *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail message = raise (Parse_error (!pos, message)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else begin
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buffer
        | '\\' ->
          (if !pos >= n then fail "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buffer '"'
           | '\\' -> Buffer.add_char buffer '\\'
           | '/' -> Buffer.add_char buffer '/'
           | 'b' -> Buffer.add_char buffer '\b'
           | 'f' -> Buffer.add_char buffer '\012'
           | 'n' -> Buffer.add_char buffer '\n'
           | 'r' -> Buffer.add_char buffer '\r'
           | 't' -> Buffer.add_char buffer '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape"
             in
             (* Encode the code point as UTF-8 (BMP only; surrogate
                pairs are passed through as-is, which suffices for the
                ASCII event streams we produce). *)
             if code < 0x80 then Buffer.add_char buffer (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buffer
                 (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
             end
           | _ -> fail "unknown escape");
          loop ()
        | c -> Buffer.add_char buffer c; loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let text = String.sub s start (!pos - start) in
    let has_frac =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text
    in
    if not has_frac then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        (* Integer overflowing native int: fall back to float. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
    else
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); List [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields (kv :: acc)
          | Some '}' -> advance (); Obj (List.rev (kv :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, message) ->
    Error (Printf.sprintf "json: %s at offset %d" message at)

(* ---------------------------------------------------------------- *)

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" key))
  | _ -> Error (Printf.sprintf "not an object (looking for %S)" key)

let to_int = function
  | Int i -> Ok i
  | Float f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error "not an integer"

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | _ -> Error "not a number"

let to_bool = function Bool b -> Ok b | _ -> Error "not a boolean"

let to_str = function String s -> Ok s | _ -> Error "not a string"

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Int a, Int b -> a = b
  | Float a, Float b -> a = b || (Float.is_nan a && Float.is_nan b)
  | Int a, Float b | Float b, Int a -> float_of_int a = b
  | String a, String b -> String.equal a b
  | List a, List b -> (
    try List.for_all2 equal a b with Invalid_argument _ -> false)
  | Obj a, Obj b ->
    let sort l = List.sort (fun (k, _) (k', _) -> compare k k') l in
    let a = sort a and b = sort b in
    (try
       List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v')
         a b
     with Invalid_argument _ -> false)
  | _ -> false

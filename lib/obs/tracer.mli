(** Flight recorder: per-domain ring buffers of trace events.

    A tracer owns one preallocated struct-of-arrays ring per domain that
    has ever emitted through it.  Recording an event writes a timestamp
    and three ints into the domain's ring — no allocation, no locking —
    so the recorder can stay on the simulator's hot path.  When a ring is
    full the oldest events are overwritten and counted as dropped.  A
    disabled tracer (and {!null}) costs one branch per call, like
    {!Sink.emit}.

    Event names are interned up front ({!intern}, cold, locked); the hot
    emitters take the integer id.  Rings are registered lazily on a
    domain's first event (also cold and locked); the creating domain is
    registered eagerly so it always owns slot 0.

    Export is offline: {!iter_slot} walks one ring oldest-to-newest, and
    {!Trace_export} turns the whole tracer into Chrome trace-event JSON
    or JSONL. *)

type t

type clock =
  | Untimed
      (** Timestamps are per-ring sequence numbers (0, 1, 2, …):
          deterministic across runs, totally ordered within a track. *)
  | Wall  (** [Unix.gettimeofday]; boxes one float per event. *)
  | Fn of (unit -> float)  (** Custom clock, e.g. for tests. *)

type kind = Begin | End | Instant | Counter

val create : ?capacity:int -> ?clock:clock -> unit -> t
(** A live tracer.  [capacity] (default 65536) is the number of events
    retained per domain, rounded up to a power of two (minimum 16).
    Default clock is {!Untimed}. *)

val null : t
(** Permanently disabled; every emitter is a single branch. *)

val enabled : t -> bool

val capacity : t -> int

val clock : t -> clock

(** {1 Recording} *)

val intern : t -> string -> int
(** Id for an event name; the same string always yields the same id.
    Cold path (takes a lock) — intern at setup, not per event.  Returns
    [0] on a disabled tracer. *)

val span_begin : t -> int -> unit

val span_begin_range : t -> int -> lo:int -> hi:int -> unit
(** Begin a span that covers loop indices [lo..hi-1]; the range rides in
    the event's [a]/[b] args. *)

val span_end : t -> int -> unit

val instant : t -> int -> arg:int -> unit

val counter : t -> int -> value:int -> unit

val pool_probe : t -> Routing_metric.Domain_pool.probe
(** A {!Routing_metric.Domain_pool.probe} that records every chunk a
    worker domain drains as a span on that domain's track.  Chunks whose
    job carried no label record under ["pool_chunk"]. *)

(** {1 Inspection / export} *)

val slots : t -> int
(** Number of domains that have recorded so far. *)

val slot_domain : t -> int -> int
(** The domain id that owns a slot. *)

val slot_recorded : t -> int -> int
(** Events ever written to a slot (including since-overwritten ones). *)

val slot_dropped : t -> int -> int
(** Events overwritten in a slot: [max 0 (recorded - capacity)]. *)

val dropped : t -> int
(** Total dropped across all slots. *)

val name : t -> int -> string
(** The interned name for an id ("?" if unknown). *)

val iter_slot :
  t -> int -> (ts:float -> kind:kind -> name:int -> a:int -> b:int -> unit) -> unit
(** Walk a slot's retained events oldest-to-newest.  Not synchronized
    with writers: call after the traced work has quiesced. *)

(** GC accounting around instrumented sections.

    An account snapshots the GC counters at {!start} and publishes the
    deltas at {!finish} through four {!Metrics} counters labeled with the
    account's scope:

    - [gc_minor_words] — words allocated on the minor heap
    - [gc_promoted_words] — words promoted to the major heap
    - [gc_minor_collections] — minor GC cycles
    - [gc_major_collections] — major GC cycles

    plus [gc_sections], the number of accounted sections.  Wrapping a
    steady-state routing period should add {e zero} to [gc_minor_words] —
    that is exactly what the allocation-regression gate asserts.

    Minor words come from [Gc.minor_words] (the domain's live allocation
    pointer — exact even when no collection ran during the section; on
    OCaml 5 [Gc.quick_stat]'s word counters sync only at collection
    boundaries); the collection and promotion counters come from
    [Gc.quick_stat].  Neither walks the heap, so an account adds a few
    loads per section. *)

type t

val create : ?labels:Metrics.labels -> Metrics.t -> scope:string -> t
(** Counters are registered immediately under
    [("scope", scope) :: labels]. *)

val start : t -> unit
(** Snapshot the GC counters.  A second [start] before {!finish} simply
    re-snapshots. *)

val finish : t -> unit
(** Publish the deltas since the matching {!start}. *)

val with_ : t -> (unit -> 'a) -> 'a
(** [start]; run; [finish] (also on exceptions). *)

val minor_words : t -> int
(** Total minor words published so far (convenience accessor). *)

val sections : t -> int

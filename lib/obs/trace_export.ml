let clock_name t =
  match Tracer.clock t with
  | Tracer.Untimed -> "untimed"
  | Tracer.Wall -> "wall"
  | Tracer.Fn _ -> "custom"

(* Untimed timestamps are per-track sequence numbers: keep them integral
   so the export is byte-deterministic.  Wall/custom clocks are seconds;
   Chrome wants microseconds. *)
let ts_json t ts =
  match Tracer.clock t with
  | Tracer.Untimed -> Json.Int (int_of_float ts)
  | Tracer.Wall | Tracer.Fn _ -> Json.Float (ts *. 1e6)

let chrome_json t =
  let events = ref [] in
  let push e = events := e :: !events in
  push
    (Json.Obj
       [ ("name", Json.String "process_name");
         ("ph", Json.String "M");
         ("pid", Json.Int 0);
         ("tid", Json.Int 0);
         ("args", Json.Obj [ ("name", Json.String "arpanet") ]) ]);
  let nslots = Tracer.slots t in
  for slot = 0 to nslots - 1 do
    push
      (Json.Obj
         [ ("name", Json.String "thread_name");
           ("ph", Json.String "M");
           ("pid", Json.Int 0);
           ("tid", Json.Int slot);
           ("args",
            Json.Obj [ ("name", Json.String (Printf.sprintf "domain%d" slot)) ])
         ])
  done;
  for slot = 0 to nslots - 1 do
    Tracer.iter_slot t slot (fun ~ts ~kind ~name ~a ~b ->
        let common suffix =
          ("name", Json.String (Tracer.name t name))
          :: ("ph",
              Json.String
                (match kind with
                | Tracer.Begin -> "B"
                | Tracer.End -> "E"
                | Tracer.Instant -> "i"
                | Tracer.Counter -> "C"))
          :: ("pid", Json.Int 0)
          :: ("tid", Json.Int slot)
          :: ("ts", ts_json t ts)
          :: suffix
        in
        match kind with
        | Tracer.Begin ->
          push
            (Json.Obj
               (common
                  (if a = 0 && b = 0 then []
                   else
                     [ ("args",
                        Json.Obj [ ("lo", Json.Int a); ("hi", Json.Int b) ]) ])))
        | Tracer.End -> push (Json.Obj (common []))
        | Tracer.Instant ->
          push
            (Json.Obj
               (common
                  [ ("s", Json.String "t");
                    ("args", Json.Obj [ ("v", Json.Int a) ]) ]))
        | Tracer.Counter ->
          push
            (Json.Obj (common [ ("args", Json.Obj [ ("value", Json.Int a) ]) ])))
  done;
  let per_track =
    List.init nslots (fun slot -> Json.Int (Tracer.slot_dropped t slot))
  in
  Json.Obj
    [ ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
      ("otherData",
       Json.Obj
         [ ("clock", Json.String (clock_name t));
           ("capacity", Json.Int (Tracer.capacity t));
           ("dropped", Json.Int (Tracer.dropped t));
           ("droppedPerTrack", Json.List per_track) ]) ]

let write_chrome t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (chrome_json t));
      output_char oc '\n')

let to_sink t sink =
  for slot = 0 to Tracer.slots t - 1 do
    Tracer.iter_slot t slot (fun ~ts ~kind ~name ~a ~b ->
        Sink.emit sink (fun () ->
            Json.Obj
              [ ("ev", Json.String "trace");
                ("track", Json.Int slot);
                ("ts", ts_json t ts);
                ("ph",
                 Json.String
                   (match kind with
                   | Tracer.Begin -> "B"
                   | Tracer.End -> "E"
                   | Tracer.Instant -> "i"
                   | Tracer.Counter -> "C"));
                ("name", Json.String (Tracer.name t name));
                ("a", Json.Int a);
                ("b", Json.Int b) ]))
  done

type digest = {
  tracks : (int * int) list;
  span_totals : (string * float) list;
  total_events : int;
  dropped : int;
}

let num = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> 0.

let digest json =
  match Json.member "traceEvents" json with
  | Error e -> Error e
  | Ok (Json.List evs) ->
    let counts : (int, int ref) Hashtbl.t = Hashtbl.create 8 in
    let stacks : (int, (string * float) list ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let totals : (string, float ref) Hashtbl.t = Hashtbl.create 16 in
    let total = ref 0 in
    List.iter
      (fun ev ->
        let str key =
          match Json.member key ev with Ok (Json.String s) -> s | _ -> ""
        in
        let int key =
          match Json.member key ev with Ok (Json.Int i) -> i | _ -> 0
        in
        let ph = str "ph" in
        if ph <> "M" && ph <> "" then begin
          let tid = int "tid" in
          incr total;
          (match Hashtbl.find_opt counts tid with
          | Some r -> incr r
          | None -> Hashtbl.add counts tid (ref 1));
          let stack =
            match Hashtbl.find_opt stacks tid with
            | Some s -> s
            | None ->
              let s = ref [] in
              Hashtbl.add stacks tid s;
              s
          in
          let ts =
            match Json.member "ts" ev with Ok v -> num v | Error _ -> 0.
          in
          match ph with
          | "B" -> stack := (str "name", ts) :: !stack
          | "E" -> (
            match !stack with
            | [] -> ()
            | (name, t0) :: rest ->
              stack := rest;
              let d = ts -. t0 in
              (match Hashtbl.find_opt totals name with
              | Some r -> r := !r +. d
              | None -> Hashtbl.add totals name (ref d)))
          | _ -> ()
        end)
      evs;
    let dropped =
      match Json.member "otherData" json with
      | Ok od -> (
        match Json.member "dropped" od with Ok (Json.Int i) -> i | _ -> 0)
      | Error _ -> 0
    in
    let tracks =
      Hashtbl.fold (fun tid r acc -> (tid, !r) :: acc) counts []
      |> List.sort compare
    in
    let span_totals =
      Hashtbl.fold (fun name r acc -> (name, !r) :: acc) totals []
      |> List.sort compare
    in
    Ok { tracks; span_totals; total_events = !total; dropped }
  | Ok _ -> Error "traceEvents is not a list"

let pp_digest ppf d =
  Format.fprintf ppf "@[<v>events: %d  dropped: %d" d.total_events d.dropped;
  List.iter
    (fun (tid, n) -> Format.fprintf ppf "@,track %d: %d events" tid n)
    d.tracks;
  if d.span_totals <> [] then begin
    Format.fprintf ppf "@,span totals:";
    List.iter
      (fun (name, t) -> Format.fprintf ppf "@,  %-24s %.6g" name t)
      d.span_totals
  end;
  Format.fprintf ppf "@]"

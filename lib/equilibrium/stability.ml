open! Import

type report = {
  offered_load : float;
  equilibrium_cost_hops : float;
  equilibrium_utilization : float;
  raw_gain : float;
  effective_gain : float;
  stable : bool;
}

(* Continuous metric map in hops (no integer rounding): mirrors
   Metric_map but keeps the float so the derivative is meaningful. *)
let hnm_cost_hops params (link : Link.t) u =
  let raw = Hnm_params.raw_cost params ~utilization:u in
  let min_cost = float_of_int (Hnm_params.min_cost_of params link) in
  let max_cost = float_of_int params.Hnm_params.max_cost in
  Float.max min_cost (Float.min max_cost raw) /. min_cost

let continuous_cost_hops kind (link : Link.t) u =
  match kind with
  | Metric.Min_hop | Metric.Static_capacity -> 1.
  | Metric.D_spf ->
    let delay = Queueing.delay_s link ~utilization:u in
    let bias = float_of_int (Dspf.bias link.Link.line_type) in
    let units = Float.max bias (delay *. 1000. /. Units.unit_ms) in
    Float.min (float_of_int Units.max_cost) units /. bias
  | Metric.Hn_spf ->
    hnm_cost_hops (Hnm_params.for_line_type link.Link.line_type) link u

(* One iteration of the routing loop under an arbitrary continuous
   cost-in-hops map: reported cost to shed traffic to new cost. *)
let iterate_fn cost_hops response ~offered_load x =
  let u = offered_load *. Response_map.traffic_at response x in
  cost_hops (Float.max 0. (Float.min 0.99 u))

(* Continuous fixed point by bisection on f(x) = iterate(x) - x (strictly
   decreasing, as in Fixed_point). *)
let continuous_equilibrium_fn cost_hops response ~offered_load =
  let f x = iterate_fn cost_hops response ~offered_load x -. x in
  let lo = ref 0.25 and hi = ref 16. in
  for _ = 1 to 80 do
    let mid = (!lo +. !hi) /. 2. in
    if f mid > 0. then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2.

let static_report response ~offered_load =
  { offered_load;
    equilibrium_cost_hops = 1.;
    equilibrium_utilization =
      offered_load *. Response_map.traffic_at response 1.;
    raw_gain = 0.;
    effective_gain = 0.;
    stable = true }

(* [effective] maps the raw loop slope to the dominant eigenvalue
   magnitude of the metric's own dynamics (identity magnitude for an
   unfiltered metric, |0.5 + 0.5 g| under the HNM averaging filter). *)
let analyze_fn ~effective cost_hops response ~offered_load =
  let x = continuous_equilibrium_fn cost_hops response ~offered_load in
  let u = offered_load *. Response_map.traffic_at response x in
  let raw_gain =
    let h = 0.05 in
    let f v = iterate_fn cost_hops response ~offered_load v in
    (f (x +. h) -. f (x -. h)) /. (2. *. h)
  in
  let effective_gain = effective raw_gain in
  { offered_load;
    equilibrium_cost_hops = x;
    equilibrium_utilization = u;
    raw_gain;
    effective_gain;
    stable = effective_gain < 1. }

(* The loop state is the filtered average: avg' = 0.5 sample + 0.5 avg,
   and the sample responds to the cost computed from avg, so the
   eigenvalue is 0.5 + 0.5 g. *)
let filtered_eigenvalue g = Float.abs (0.5 +. (0.5 *. g))

let analyze kind link response ~offered_load =
  match kind with
  | Metric.Min_hop | Metric.Static_capacity -> static_report response ~offered_load
  | Metric.D_spf ->
    analyze_fn ~effective:Float.abs
      (continuous_cost_hops kind link)
      response ~offered_load
  | Metric.Hn_spf ->
    analyze_fn ~effective:filtered_eigenvalue
      (continuous_cost_hops kind link)
      response ~offered_load

let analyze_hnm ?(averaging = true) params link response ~offered_load =
  let effective = if averaging then filtered_eigenvalue else Float.abs in
  analyze_fn ~effective (hnm_cost_hops params link) response ~offered_load

let gain_curve kind link response ~loads =
  List.map (fun load -> analyze kind link response ~offered_load:load) loads

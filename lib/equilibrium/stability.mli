open! Import

(** Control-theoretic stability of the routing loop (§5).

    "In terms of control theory, HN-SPF changes both the equilibrium point
    and the gain of the routing algorithm."  The routing loop iterates
    [x' = M(load * n(x))] — cost to traffic to cost — once per period; a
    fixed point is locally stable when the magnitude of that map's slope
    (the {e loop gain}) is below 1, oscillatory-divergent when above.

    The gain is evaluated numerically on the {e continuous} composed map
    (the metric map before integer rounding), matching the paper's
    analysis; the integer-unit implementation adds a half-unit dead band
    on top. *)

type report = {
  offered_load : float;
  equilibrium_cost_hops : float;
  equilibrium_utilization : float;
  raw_gain : float;
      (** signed slope d x'/d x of the unfiltered loop at the equilibrium —
          negative, because more cost sheds traffic which lowers cost *)
  effective_gain : float;
      (** dominant eigenvalue magnitude including the metric's own
          dynamics: D-SPF reacts to the raw loop (|g|); HN-SPF's 0.5/0.5
          averaging filter gives |0.5 + 0.5 g|, which tames any
          g > −3 — the quantitative content of "the averaging filter used
          by HN-SPF also affects the behavior" (§5.4) *)
  stable : bool;  (** [effective_gain < 1] *)
}

val analyze :
  Metric.kind ->
  Link.t ->
  Response_map.t ->
  offered_load:float ->
  report
(** Gain of one iteration of the routing loop at the fixed point.
    Min-hop is static: gain 0. *)

val analyze_hnm :
  ?averaging:bool ->
  Hnm_params.t ->
  Link.t ->
  Response_map.t ->
  offered_load:float ->
  report
(** {!analyze} for HN-SPF under an explicit (possibly user-overridden)
    parameter table entry instead of the built-in one — the entry point
    of [routing_check]'s static stability pass.  [averaging] (default
    true) models the 0.5/0.5 recursive filter; with it off the
    effective gain is the raw |g|, which is how a parameter set that
    disables the filter reintroduces §3.3's oscillation. *)

val gain_curve :
  Metric.kind ->
  Link.t ->
  Response_map.t ->
  loads:float list ->
  report list
(** One report per offered load — where each metric crosses into
    instability. *)

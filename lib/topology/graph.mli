(** Static network topology: the node and link structure every PSN knows.

    In the ARPANET "each node or PSN … has full knowledge of the topology of
    the network" (§2.2); only link {e costs} are dynamic and they live
    outside this structure (in per-link arrays owned by the metric and
    simulation layers, indexed by {!Link.id}).  A [t] is immutable once
    built. *)

type t

val node_count : t -> int

val link_count : t -> int
(** Number of simplex links (twice the number of physical trunk bundles). *)

val nodes : t -> Node.t list
(** All nodes in id order. *)

val links : t -> Link.t list
(** All links in id order. *)

val node_name : t -> Node.t -> string

val node_by_name : t -> string -> Node.t option

val link : t -> Link.id -> Link.t
(** @raise Invalid_argument for an unknown id. *)

val out_links : t -> Node.t -> Link.t list
(** Links whose [src] is the given node. *)

val in_links : t -> Node.t -> Link.t list

(** {2 Flat (CSR) adjacency} — the hot-path view of the same structure.

    Shortest-path computation visits every out-link of every node once per
    source; the list API allocates nothing but chases a cons cell per edge.
    These accessors expose the adjacency as compact int arrays instead.
    The arrays are the graph's own — {b treat them as read-only}. *)

val csr_out : t -> int array * int array * int array
(** [csr_out g] is [(off, link_ids, dsts)]: the out-links of node [i] are
    [link_ids.(off.(i)) .. link_ids.(off.(i+1) - 1)], in ascending link-id
    order (exactly the order {!out_links} presents), and [dsts.(k)] is the
    destination node id of [link_ids.(k)].  [off] has [node_count + 1]
    entries; [link_ids] and [dsts] have [link_count]. *)

val csr_in : t -> int array * int array
(** [csr_in g] is [(off, link_ids)]: the in-links of node [i], grouped and
    ordered as {!in_links} presents them. *)

val csr_out_off : t -> int array
(** The components of {!csr_out} / {!csr_in} individually, without the
    tuple allocation — for callers fetching them inside allocation-free
    paths. *)

val csr_out_link_ids : t -> int array

val csr_out_dst : t -> int array

val csr_in_off : t -> int array

val csr_in_link_ids : t -> int array

val find_link : t -> src:Node.t -> dst:Node.t -> Link.t option
(** The (first) direct link between two nodes, if adjacent. *)

val reverse : t -> Link.t -> Link.t

val degree : t -> Node.t -> int

val iter_links : t -> (Link.t -> unit) -> unit

val fold_links : t -> init:'a -> f:('a -> Link.t -> 'a) -> 'a

val iter_nodes : t -> (Node.t -> unit) -> unit

val is_connected : t -> bool
(** True when every node can reach every other node over the links. *)

val average_degree : t -> float

val pp_summary : Format.formatter -> t -> unit
(** One-line description: node/link counts, degree, line-type mix. *)

(** {2 Construction} — used by {!Builder}; not intended for direct use. *)

val make :
  names:string array ->
  links:Link.t array ->
  t
(** @raise Invalid_argument if link endpoints or reverse pointers are
    inconsistent. *)

let to_string g tm =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "# trunks: src dst line-type propagation-seconds\n";
  Graph.iter_links g (fun (l : Link.t) ->
      (* Each physical trunk appears as two simplex links; dump the one
         with the lower id so the file has one line per trunk. *)
      if Link.id_compare l.Link.id l.Link.reverse < 0 then
        Buffer.add_string buffer
          (Printf.sprintf "trunk %s %s %s %.6f\n"
             (Graph.node_name g l.Link.src)
             (Graph.node_name g l.Link.dst)
             (Line_type.name l.Link.line_type)
             l.Link.propagation_s));
  (match tm with
  | None -> ()
  | Some tm ->
    Buffer.add_string buffer "# demands: src dst bits-per-second\n";
    Traffic_matrix.iter tm (fun ~src ~dst bps ->
        Buffer.add_string buffer
          (Printf.sprintf "demand %s %s %.3f\n" (Graph.node_name g src)
             (Graph.node_name g dst) bps)));
  Buffer.contents buffer

type parsed_line =
  | Blank
  | Trunk of string * string * Line_type.t * float option
  | Demand of string * string * float

let parse_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let fields =
    String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
    |> List.filter (fun s -> String.length s > 0)
  in
  match fields with
  | [] -> Ok Blank
  | "trunk" :: a :: b :: lt :: rest -> (
    match Line_type.of_name lt with
    | None -> Error (Printf.sprintf "unknown line type %S" lt)
    | Some lt -> (
      match rest with
      | [] -> Ok (Trunk (a, b, lt, None))
      | [ p ] -> (
        match float_of_string_opt p with
        | Some p when p >= 0. -> Ok (Trunk (a, b, lt, Some p))
        | _ -> Error (Printf.sprintf "bad propagation %S" p))
      | _ -> Error "too many fields on trunk line"))
  | [ "demand"; a; b; bps ] -> (
    match float_of_string_opt bps with
    | Some bps when bps >= 0. -> Ok (Demand (a, b, bps))
    | _ -> Error (Printf.sprintf "bad demand %S" bps))
  | keyword :: _ -> Error (Printf.sprintf "unrecognized directive %S" keyword)

(* Single parsing core: walk every line, accumulating located errors
   rather than stopping at the first, so the static checker can report
   them all.  [of_string] keeps its historical first-error contract on
   top of this. *)
let lint text =
  let builder = Builder.create () in
  let demands = ref [] in
  let errors = ref [] in
  let fail line message = errors := (line, message) :: !errors in
  List.iteri
    (fun index line ->
      match parse_line line with
      | Ok Blank -> ()
      | Ok (Trunk (a, b, lt, prop)) ->
        if String.equal a b then fail (index + 1) "self-loop trunk"
        else ignore (Builder.trunk builder ?propagation_s:prop lt a b)
      | Ok (Demand (a, b, bps)) -> demands := (index + 1, a, b, bps) :: !demands
      | Error message -> fail (index + 1) message)
    (String.split_on_char '\n' text);
  let g = Builder.build builder in
  let tm = Traffic_matrix.create ~nodes:(Graph.node_count g) in
  List.iter
    (fun (line, a, b, bps) ->
      match (Graph.node_by_name g a, Graph.node_by_name g b) with
      | Some src, Some dst -> Traffic_matrix.add tm ~src ~dst bps
      | None, _ -> fail line (Printf.sprintf "unknown node %S" a)
      | _, None -> fail line (Printf.sprintf "unknown node %S" b))
    (List.rev !demands);
  (List.rev !errors, (g, tm))

let of_string text =
  match lint text with
  | [], result -> Ok result
  | (line, message) :: _, _ ->
    Error (Printf.sprintf "line %d: %s" line message)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error message -> Error message

let save path g tm =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string g tm))

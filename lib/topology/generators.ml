module Rng = Routing_stats.Rng

let node_name prefix i = Printf.sprintf "%s%d" prefix i

let two_region ?(region_size = 8) ?(bridge_type = Line_type.T56) () =
  if region_size < 2 then invalid_arg "Generators.two_region: region_size < 2";
  let b = Builder.create () in
  let add_region prefix =
    (* Ring plus a diameter chord: connected with alternate paths inside
       the region, so intra-region routing never depends on the bridges. *)
    for i = 0 to region_size - 1 do
      let j = (i + 1) mod region_size in
      ignore (Builder.trunk b Line_type.T56 (node_name prefix i) (node_name prefix j))
    done;
    if region_size >= 4 then
      ignore
        (Builder.trunk b Line_type.T56 (node_name prefix 0)
           (node_name prefix (region_size / 2)))
  in
  add_region "L";
  add_region "R";
  let bridge_a, _ = Builder.trunk b bridge_type "L0" "R0" in
  let bridge_b, _ = Builder.trunk b bridge_type "L1" "R1" in
  (Builder.build b, (bridge_a, bridge_b))

let ring ?(line_type = Line_type.T56) n =
  if n < 3 then invalid_arg "Generators.ring: n < 3";
  let b = Builder.create () in
  for i = 0 to n - 1 do
    ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" ((i + 1) mod n)))
  done;
  Builder.build b

let ring_chord ?(line_type = Line_type.T56) rng ~nodes ~chords =
  if nodes < 3 then invalid_arg "Generators.ring_chord: nodes < 3";
  let b = Builder.create () in
  for i = 0 to nodes - 1 do
    ignore
      (Builder.trunk b line_type (node_name "n" i) (node_name "n" ((i + 1) mod nodes)))
  done;
  let exists = Hashtbl.create 16 in
  let rec add_chord remaining attempts =
    if remaining > 0 && attempts < chords * 50 then begin
      let i = Rng.int rng nodes in
      let j = Rng.int rng nodes in
      let lo = min i j and hi = max i j in
      let adjacent = hi - lo <= 1 || (lo = 0 && hi = nodes - 1) in
      if adjacent || Hashtbl.mem exists (lo, hi) then
        add_chord remaining (attempts + 1)
      else begin
        Hashtbl.add exists (lo, hi) ();
        ignore (Builder.trunk b line_type (node_name "n" lo) (node_name "n" hi));
        add_chord (remaining - 1) (attempts + 1)
      end
    end
  in
  add_chord chords 0;
  Builder.build b

let random_geometric ?(line_type = Line_type.T56) rng ~nodes ~radius =
  if nodes < 2 then invalid_arg "Generators.random_geometric: nodes < 2";
  let pos = Array.init nodes (fun _ -> (Rng.float rng 1., Rng.float rng 1.)) in
  let b = Builder.create () in
  for i = 0 to nodes - 1 do
    ignore (Builder.add_node b (node_name "n" i))
  done;
  let dist i j =
    let xi, yi = pos.(i) and xj, yj = pos.(j) in
    sqrt (((xi -. xj) ** 2.) +. ((yi -. yj) ** 2.))
  in
  (* Union-find to track components while adding radius edges. *)
  let parent = Array.init nodes Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j = parent.(find i) <- find j in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if dist i j <= radius then begin
        ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" j));
        union i j
      end
    done
  done;
  (* Stitch components: connect each component root to its nearest node in
     another component until one component remains. *)
  let rec stitch () =
    let roots = Hashtbl.create 8 in
    for i = 0 to nodes - 1 do
      Hashtbl.replace roots (find i) ()
    done;
    if Hashtbl.length roots > 1 then begin
      let r0 = find 0 in
      let best = ref None in
      for i = 0 to nodes - 1 do
        for j = 0 to nodes - 1 do
          if find i = r0 && find j <> r0 then
            match !best with
            | Some (_, _, d) when d <= dist i j -> ()
            | _ -> best := Some (i, j, dist i j)
        done
      done;
      match !best with
      | Some (i, j, _) ->
        ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" j));
        union i j;
        stitch ()
      | None -> ()
    end
  in
  stitch ();
  Builder.build b

let waxman ?(line_type = Line_type.T56) rng ~nodes ~alpha ~beta =
  if nodes < 2 then invalid_arg "Generators.waxman: nodes < 2";
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Generators.waxman: alpha outside (0, 1]";
  if not (beta > 0. && beta <= 1.) then
    invalid_arg "Generators.waxman: beta outside (0, 1]";
  let l = sqrt 2. in
  let scale = beta *. l in
  (* Pairs whose connection probability would fall below [eps] are never
     examined: beyond [r_cut] the exponential has decayed past it.  This
     is what makes the generator usable at 10^5 nodes — candidate pairs
     come from a grid of cells no smaller than [r_cut], so each node looks
     only at its 3x3 cell neighborhood instead of every other node. *)
  let eps = 1e-5 in
  let r_cut = Float.min l (scale *. log (alpha /. eps)) in
  let xs = Array.make nodes 0. and ys = Array.make nodes 0. in
  (* Explicit loop: draw order is part of the generator's determinism
     contract, and [Array.init]'s evaluation order is unspecified. *)
  for i = 0 to nodes - 1 do
    xs.(i) <- Rng.float rng 1.;
    ys.(i) <- Rng.float rng 1.
  done;
  let cells = max 1 (int_of_float (1. /. r_cut)) in
  let cell v = min (cells - 1) (int_of_float (v *. float_of_int cells)) in
  (* CSR-style grid buckets, nodes in id order within each cell so the
     examination order — and hence the RNG stream — is deterministic. *)
  let ncells = cells * cells in
  let count = Array.make ncells 0 in
  for i = 0 to nodes - 1 do
    let c = (cell ys.(i) * cells) + cell xs.(i) in
    count.(c) <- count.(c) + 1
  done;
  let off = Array.make (ncells + 1) 0 in
  for c = 0 to ncells - 1 do
    off.(c + 1) <- off.(c) + count.(c)
  done;
  let members = Array.make nodes 0 in
  let fill = Array.copy off in
  for i = 0 to nodes - 1 do
    let c = (cell ys.(i) * cells) + cell xs.(i) in
    members.(fill.(c)) <- i;
    fill.(c) <- fill.(c) + 1
  done;
  let bld = Builder.create () in
  for i = 0 to nodes - 1 do
    ignore (Builder.add_node bld (node_name "n" i))
  done;
  let parent = Array.init nodes Fun.id in
  let find i =
    let i = ref i in
    while parent.(!i) <> !i do
      parent.(!i) <- parent.(parent.(!i));
      i := parent.(!i)
    done;
    !i
  in
  for i = 0 to nodes - 1 do
    let cx = cell xs.(i) and cy = cell ys.(i) in
    for dy = -1 to 1 do
      for dx = -1 to 1 do
        let nx = cx + dx and ny = cy + dy in
        if nx >= 0 && nx < cells && ny >= 0 && ny < cells then begin
          let c = (ny * cells) + nx in
          for k = off.(c) to off.(c + 1) - 1 do
            let j = members.(k) in
            if j > i then begin
              let d = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
              if d <= r_cut
                 && Rng.float rng 1. < alpha *. exp (-.d /. scale)
              then begin
                ignore
                  (Builder.trunk bld line_type (node_name "n" i)
                     (node_name "n" j));
                parent.(find i) <- find j
              end
            end
          done
        end
      done
    done
  done;
  (* Stitch stray components along the x-sorted node order: consecutive
     nodes are spatially close, each union is O(~1), and one pass leaves a
     single component — no quadratic nearest-component search. *)
  let order = Array.init nodes Fun.id in
  Array.sort
    (fun a b ->
      match Float.compare xs.(a) xs.(b) with
      | 0 -> (
        match Float.compare ys.(a) ys.(b) with
        | 0 -> Int.compare a b
        | c -> c)
      | c -> c)
    order;
  for k = 1 to nodes - 1 do
    let a = order.(k - 1) and b = order.(k) in
    if find a <> find b then begin
      ignore (Builder.trunk bld line_type (node_name "n" a) (node_name "n" b));
      parent.(find a) <- find b
    end
  done;
  Builder.build bld

let hierarchical ?(core_type = Line_type.T448) ?(pop_type = Line_type.T112)
    ?(access_type = Line_type.T56) ~cores ~pops_per_core ~access_per_pop () =
  if cores < 3 then invalid_arg "Generators.hierarchical: cores < 3";
  if pops_per_core < 1 then
    invalid_arg "Generators.hierarchical: pops_per_core < 1";
  if access_per_pop < 0 then
    invalid_arg "Generators.hierarchical: access_per_pop < 0";
  let bld = Builder.create () in
  let core i = node_name "c" i in
  let pop i j = Printf.sprintf "c%dp%d" i j in
  let access i j k = Printf.sprintf "c%dp%da%d" i j k in
  (* Core ring plus skip-two chords: every core pair has disjoint paths,
     and the core diameter stays ~cores/4. *)
  for i = 0 to cores - 1 do
    ignore (Builder.trunk bld core_type (core i) (core ((i + 1) mod cores)))
  done;
  if cores >= 5 then
    for i = 0 to cores - 1 do
      ignore (Builder.trunk bld core_type (core i) (core ((i + 2) mod cores)))
    done;
  for i = 0 to cores - 1 do
    for j = 0 to pops_per_core - 1 do
      (* Each PoP dual-homes to its own core and the next — losing one
         core partitions nothing. *)
      ignore (Builder.trunk bld pop_type (pop i j) (core i));
      ignore (Builder.trunk bld pop_type (pop i j) (core ((i + 1) mod cores)));
      for k = 0 to access_per_pop - 1 do
        ignore (Builder.trunk bld access_type (access i j k) (pop i j));
        if pops_per_core > 1 then
          ignore
            (Builder.trunk bld access_type (access i j k)
               (pop i ((j + 1) mod pops_per_core)))
      done
    done
  done;
  Builder.build bld

type spec =
  | Waxman of { nodes : int; alpha : float; beta : float }
  | Hierarchical of { cores : int; pops_per_core : int; access_per_pop : int }

let spec_nodes = function
  | Waxman { nodes; _ } -> nodes
  | Hierarchical { cores; pops_per_core; access_per_pop } ->
    cores * (1 + (pops_per_core * (1 + access_per_pop)))

let of_spec rng = function
  | Waxman { nodes; alpha; beta } -> waxman rng ~nodes ~alpha ~beta
  | Hierarchical { cores; pops_per_core; access_per_pop } ->
    hierarchical ~cores ~pops_per_core ~access_per_pop ()

let line ?(line_type = Line_type.T56) n =
  if n < 2 then invalid_arg "Generators.line: n < 2";
  let b = Builder.create () in
  for i = 0 to n - 2 do
    ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" (i + 1)))
  done;
  Builder.build b

let full_mesh ?(line_type = Line_type.T56) n =
  if n < 2 then invalid_arg "Generators.full_mesh: n < 2";
  let b = Builder.create () in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (Builder.trunk b line_type (node_name "n" i) (node_name "n" j))
    done
  done;
  Builder.build b

type medium = Terrestrial | Satellite

type t = T9_6 | S9_6 | T56 | S56 | T112 | S112 | T224 | T448

let all = [ T9_6; S9_6; T56; S56; T112; S112; T224; T448 ]

let index = function
  | T9_6 -> 0
  | S9_6 -> 1
  | T56 -> 2
  | S56 -> 3
  | T112 -> 4
  | S112 -> 5
  | T224 -> 6
  | T448 -> 7

let of_index = function
  | 0 -> T9_6
  | 1 -> S9_6
  | 2 -> T56
  | 3 -> S56
  | 4 -> T112
  | 5 -> S112
  | 6 -> T224
  | 7 -> T448
  | i -> invalid_arg (Printf.sprintf "Line_type.of_index: %d" i)

let medium = function
  | T9_6 | T56 | T112 | T224 | T448 -> Terrestrial
  | S9_6 | S56 | S112 -> Satellite

let is_satellite t = medium t = Satellite

let[@inline] bandwidth_bps = function
  | T9_6 | S9_6 -> 9_600.
  | T56 | S56 -> 56_000.
  | T112 | S112 -> 112_000.
  | T224 -> 224_000.
  | T448 -> 448_000.

let trunk_count = function
  | T9_6 | S9_6 | T56 | S56 -> 1
  | T112 | S112 -> 2
  | T224 -> 4
  | T448 -> 8

let default_propagation_s t =
  match medium t with Terrestrial -> 0.010 | Satellite -> 0.250

let name = function
  | T9_6 -> "9.6T"
  | S9_6 -> "9.6S"
  | T56 -> "56T"
  | S56 -> "56S"
  | T112 -> "112T"
  | S112 -> "112S"
  | T224 -> "224T"
  | T448 -> "448T"

let of_name s =
  List.find_opt (fun t -> String.equal (name t) s) all

let equal a b = index a = index b

let compare a b = Int.compare (index a) (index b)

let pp ppf t = Format.pp_print_string ppf (name t)

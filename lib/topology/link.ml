type id = int

let id_of_int i =
  if i < 0 then invalid_arg "Link.id_of_int: negative id";
  i

let id_to_int i = i

let id_equal = Int.equal

let id_compare = Int.compare

let pp_id ppf i = Format.fprintf ppf "l%d" i

type t = {
  id : id;
  src : Node.t;
  dst : Node.t;
  line_type : Line_type.t;
  propagation_s : float;
  reverse : id;
}

let[@inline] capacity_bps t = Line_type.bandwidth_bps t.line_type

let[@inline] transmission_s t ~bits = bits /. capacity_bps t

let equal a b = id_equal a.id b.id

let pp ppf t =
  Format.fprintf ppf "%a:%a->%a(%a)" pp_id t.id Node.pp t.src Node.pp t.dst
    Line_type.pp t.line_type

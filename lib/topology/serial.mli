(** Plain-text scenario files: topology plus offered traffic.

    A line-oriented format meant to be written by hand or dumped from a
    built-in scenario:

    {v
    # comments and blank lines are ignored
    trunk  MIT  BBN  56T  0.002      # endpoints, line type, [propagation s]
    trunk  AMES HAWAII 56S           # propagation defaults by line type
    demand MIT  ISI  6000            # src, dst, offered bits/second
    v}

    Node names are introduced by the [trunk] lines; [demand] lines must
    refer to nodes that appeared in some trunk. *)

val to_string : Graph.t -> Traffic_matrix.t option -> string
(** Dump a topology (and optionally its traffic) in the file format,
    trunk lines first.  Only the forward link of each trunk pair is
    written. *)

val of_string : string -> (Graph.t * Traffic_matrix.t, string) result
(** Parse a scenario.  The traffic matrix is all-zero if there are no
    [demand] lines.  The error string names the offending line. *)

val lint : string -> (int * string) list * (Graph.t * Traffic_matrix.t)
(** Like {!of_string} but keeps going past errors, returning {e every}
    problem as [(line, message)] (1-based, file order) together with the
    best-effort parse (bad lines skipped).  Used by [routing_check]'s
    scenario pass; [of_string] is [lint]'s first error or its result. *)

val load : string -> (Graph.t * Traffic_matrix.t, string) result
(** Read and parse a file. *)

val save : string -> Graph.t -> Traffic_matrix.t option -> unit
(** Write a scenario file.  @raise Sys_error on I/O failure. *)

(** Synthetic topology families used by tests and experiments.

    [two_region] is the exact topology of the paper's Fig 1 oscillation
    example: two well-connected regions joined by two parallel inter-region
    links of equal bandwidth and propagation delay.  The others provide
    parameterized meshes for property tests and scaling studies. *)

val two_region :
  ?region_size:int ->
  ?bridge_type:Line_type.t ->
  unit ->
  Graph.t * (Link.id * Link.id)
(** Two cliques-of-rings of [region_size] nodes (default 8) named ["L*"] and
    ["R*"], joined by bridge trunks A (L0-R0) and B (L1-R1) of
    [bridge_type] (default 56 kb/s terrestrial).  Returns the graph and the
    forward link ids of the two bridges (left-to-right direction). *)

val ring : ?line_type:Line_type.t -> int -> Graph.t
(** A simple cycle of [n] nodes.  @raise Invalid_argument if [n < 3]. *)

val ring_chord :
  ?line_type:Line_type.t ->
  Routing_stats.Rng.t ->
  nodes:int ->
  chords:int ->
  Graph.t
(** A ring plus [chords] random non-adjacent chords — connected by
    construction, rich in alternate paths. *)

val random_geometric :
  ?line_type:Line_type.t ->
  Routing_stats.Rng.t ->
  nodes:int ->
  radius:float ->
  Graph.t
(** Nodes placed uniformly in the unit square, connected when within
    [radius]; extra edges are added to stitch any disconnected components
    together, so the result is always connected. *)

val waxman :
  ?line_type:Line_type.t ->
  Routing_stats.Rng.t ->
  nodes:int ->
  alpha:float ->
  beta:float ->
  Graph.t
(** The classic Waxman random topology (Waxman 1988): nodes uniform in the
    unit square, a pair at distance [d] connected with probability
    [alpha *. exp (-. d /. (beta *. sqrt 2.))].  Grid-accelerated — pairs
    whose probability is below 1e-5 are never examined — and stitched to a
    single component along the x-sorted node order, so the result is
    always connected and deterministic in the given [rng].  Usable at
    10^5 nodes when [beta] keeps the neighborhood radius small.
    @raise Invalid_argument if [nodes < 2] or [alpha]/[beta] lie outside
    [(0, 1]]. *)

val hierarchical :
  ?core_type:Line_type.t ->
  ?pop_type:Line_type.t ->
  ?access_type:Line_type.t ->
  cores:int ->
  pops_per_core:int ->
  access_per_pop:int ->
  unit ->
  Graph.t
(** A three-tier ISP-like topology, fully deterministic: [cores] backbone
    nodes ["c*"] in a ring (457 kb/s trunks; skip-two chords when
    [cores >= 5]), each carrying [pops_per_core] PoPs ["c*p*"] dual-homed
    to their own and the next core (230 kb/s), each PoP carrying
    [access_per_pop] access nodes ["c*p*a*"] dual-homed to their own and
    the next PoP of the same core (56 kb/s).  Total nodes:
    [cores * (1 + pops_per_core * (1 + access_per_pop))].
    @raise Invalid_argument if [cores < 3], [pops_per_core < 1] or
    [access_per_pop < 0]. *)

(** A first-class description of a generated topology — what the bench
    CLI and {!Routing_check} validate before paying for generation. *)
type spec =
  | Waxman of { nodes : int; alpha : float; beta : float }
  | Hierarchical of { cores : int; pops_per_core : int; access_per_pop : int }

val spec_nodes : spec -> int
(** Node count the spec will generate, without generating. *)

val of_spec : Routing_stats.Rng.t -> spec -> Graph.t
(** Generate.  The [rng] is consumed only by stochastic families.
    @raise Invalid_argument exactly when the underlying generator would. *)

val line : ?line_type:Line_type.t -> int -> Graph.t
(** A path graph of [n] nodes — the degenerate no-alternate-paths case.
    @raise Invalid_argument if [n < 2]. *)

val full_mesh : ?line_type:Line_type.t -> int -> Graph.t
(** Every pair connected directly.  @raise Invalid_argument if [n < 2]. *)

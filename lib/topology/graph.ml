type t = {
  names : string array;
  link_array : Link.t array;
  out_by_node : Link.t list array; (* in link-id order *)
  in_by_node : Link.t list array;
  (* CSR-style flat adjacency: link ids grouped by endpoint, mirroring the
     lists above exactly (same grouping, same ascending-id order) but laid
     out in three flat int arrays so the SPF inner loop touches no list
     cells or boxed links. *)
  out_off : int array; (* node_count + 1 offsets into out_link_ids *)
  out_link_ids : int array; (* link ids, grouped by src *)
  out_dst : int array; (* parallel to out_link_ids: destination node ints *)
  in_off : int array;
  in_link_ids : int array; (* link ids, grouped by dst *)
}

let node_count t = Array.length t.names

let link_count t = Array.length t.link_array

let nodes t = List.init (node_count t) Node.of_int

let links t = Array.to_list t.link_array

let node_name t n = t.names.(Node.to_int n)

let node_by_name t name =
  let rec scan i =
    if i >= Array.length t.names then None
    else if String.equal t.names.(i) name then Some (Node.of_int i)
    else scan (i + 1)
  in
  scan 0

let link t id =
  let i = Link.id_to_int id in
  if i < 0 || i >= link_count t then invalid_arg "Graph.link: unknown id";
  t.link_array.(i)

let out_links t n = t.out_by_node.(Node.to_int n)

let in_links t n = t.in_by_node.(Node.to_int n)

let csr_out t = (t.out_off, t.out_link_ids, t.out_dst)

let csr_in t = (t.in_off, t.in_link_ids)

(* Individual CSR components: the tuple returns above allocate, which the
   repair path fetching them every call cannot afford. *)

let csr_out_off t = t.out_off

let csr_out_link_ids t = t.out_link_ids

let csr_out_dst t = t.out_dst

let csr_in_off t = t.in_off

let csr_in_link_ids t = t.in_link_ids

let find_link t ~src ~dst =
  List.find_opt (fun (l : Link.t) -> Node.equal l.dst dst) (out_links t src)

let reverse t (l : Link.t) = link t l.reverse

let degree t n = List.length (out_links t n)

let iter_links t f = Array.iter f t.link_array

let fold_links t ~init ~f = Array.fold_left f init t.link_array

let iter_nodes t f =
  for i = 0 to node_count t - 1 do
    f (Node.of_int i)
  done

let is_connected t =
  let n = node_count t in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec visit stack count =
      match stack with
      | [] -> count
      | node :: rest ->
        let next, count =
          List.fold_left
            (fun (stack, count) (l : Link.t) ->
              let d = Node.to_int l.dst in
              if seen.(d) then (stack, count)
              else begin
                seen.(d) <- true;
                (l.dst :: stack, count + 1)
              end)
            (rest, count) (out_links t node)
        in
        visit next count
    in
    seen.(0) <- true;
    visit [ Node.of_int 0 ] 1 = n
  end

let average_degree t =
  if node_count t = 0 then 0.
  else float_of_int (link_count t) /. float_of_int (node_count t)

let pp_summary ppf t =
  let mix = Hashtbl.create 8 in
  iter_links t (fun l ->
      let k = l.Link.line_type in
      Hashtbl.replace mix k (1 + Option.value ~default:0 (Hashtbl.find_opt mix k)));
  let mix_s =
    Line_type.all
    |> List.filter_map (fun lt ->
           match Hashtbl.find_opt mix lt with
           | Some n -> Some (Printf.sprintf "%s:%d" (Line_type.name lt) (n / 2))
           | None -> None)
    |> String.concat " "
  in
  Format.fprintf ppf "%d nodes, %d trunks (avg degree %.2f) [%s]" (node_count t)
    (link_count t / 2) (average_degree t) mix_s

let make ~names ~links =
  let n = Array.length names in
  Array.iteri
    (fun i (l : Link.t) ->
      if Link.id_to_int l.id <> i then
        invalid_arg "Graph.make: link ids must be dense and in order";
      if Node.to_int l.src >= n || Node.to_int l.dst >= n then
        invalid_arg "Graph.make: link endpoint out of range";
      if Node.equal l.src l.dst then invalid_arg "Graph.make: self-loop";
      let r = Link.id_to_int l.reverse in
      if r < 0 || r >= Array.length links then
        invalid_arg "Graph.make: dangling reverse pointer";
      let rl = links.(r) in
      if
        (not (Node.equal rl.Link.src l.dst))
        || not (Node.equal rl.Link.dst l.src)
      then invalid_arg "Graph.make: reverse link endpoints inconsistent")
    links;
  let out_by_node = Array.make n [] in
  let in_by_node = Array.make n [] in
  (* Fold right so the per-node lists come out in ascending link-id order. *)
  for i = Array.length links - 1 downto 0 do
    let l = links.(i) in
    let s = Node.to_int l.Link.src and d = Node.to_int l.Link.dst in
    out_by_node.(s) <- l :: out_by_node.(s);
    in_by_node.(d) <- l :: in_by_node.(d)
  done;
  (* CSR construction: bucket counts, prefix sums, then a forward fill so
     each bucket holds its link ids in ascending order — the same order the
     lists present. *)
  let nl = Array.length links in
  let out_off = Array.make (n + 1) 0 in
  let in_off = Array.make (n + 1) 0 in
  Array.iter
    (fun (l : Link.t) ->
      out_off.(Node.to_int l.Link.src + 1) <-
        out_off.(Node.to_int l.Link.src + 1) + 1;
      in_off.(Node.to_int l.Link.dst + 1) <-
        in_off.(Node.to_int l.Link.dst + 1) + 1)
    links;
  for i = 1 to n do
    out_off.(i) <- out_off.(i) + out_off.(i - 1);
    in_off.(i) <- in_off.(i) + in_off.(i - 1)
  done;
  let out_link_ids = Array.make nl 0 in
  let out_dst = Array.make nl 0 in
  let in_link_ids = Array.make nl 0 in
  let out_cursor = Array.sub out_off 0 n in
  let in_cursor = Array.sub in_off 0 n in
  for i = 0 to nl - 1 do
    let l = links.(i) in
    let s = Node.to_int l.Link.src and d = Node.to_int l.Link.dst in
    out_link_ids.(out_cursor.(s)) <- i;
    out_dst.(out_cursor.(s)) <- d;
    out_cursor.(s) <- out_cursor.(s) + 1;
    in_link_ids.(in_cursor.(d)) <- i;
    in_cursor.(d) <- in_cursor.(d) + 1
  done;
  { names;
    link_array = links;
    out_by_node;
    in_by_node;
    out_off;
    out_link_ids;
    out_dst;
    in_off;
    in_link_ids }

open! Import

(* See the .mli for the algorithm outline and the bit-identity argument.

   Node states during one repair, tracked by epoch stamps so consecutive
   repairs share arrays without clearing them:

   - untouched: the tree entry is still exact (or provably an
     over-approximation that no surviving path undercuts); its composite
     distance is re-encoded from the tree on demand.
   - touched, not settled: [newdist]/[newparent] hold the best candidate
     so far ([max_int]/[-1] for invalidated nodes not yet re-offered a
     path); the tree entry is stale and must not be read.
   - settled: the tree entry has been patched with the final value.

   Every strict improvement pushes a (key, link-id) entry; a popped entry
   is acted on only if it still matches [newdist] (lazy deletion).  Exact
   ties never push: for a touched node the candidate parent array is
   lowered in place, for an untouched node the tree's parent pointer is
   patched directly — a parent swap at equal distance changes nothing
   downstream.  Ties arriving after a node settled are impossible: an
   achieving predecessor's key is at least one edge weight below the
   node's, so it settles (and relaxes) strictly earlier in the monotone
   pop order, and achieving predecessors that never enter the queue are
   exactly the intact ones the seeding phase already scanned.

   Structure note: [repair] runs every routing period on the simulator's
   steady path and is pinned allocation-free by the A0xx gate (DESIGN.md
   §8).  Hence no local closures (their environment blocks allocate): the
   phases are top-level helpers over explicit arguments, the flood
   worklist is an int stack in the scratch, queue pops go through a
   reusable {!Radix_queue.slot}, and parent patches draw on a preallocated
   [Some link-id] cache instead of boxing a fresh option per patch. *)

type scratch = {
  queue : Radix_queue.t;
  slot : Radix_queue.slot; (* out-cell for allocation-free pops *)
  mutable stamp : int array; (* touched this epoch *)
  mutable settled : int array;
  mutable invalid : int array;
  mutable newdist : int array; (* composite; valid when touched *)
  mutable newparent : int array;
  mutable touched : int array; (* node ids, first [ntouched] live *)
  mutable ntouched : int;
  mutable stack : int array; (* flood worklist, first [nstack] live *)
  mutable nstack : int;
  mutable some_link : Link.id option array; (* some_link.(i) = Some (id i) *)
  mutable epoch : int;
}

let scratch () =
  { queue = Radix_queue.create ();
    slot = Radix_queue.slot ();
    stamp = [||];
    settled = [||];
    invalid = [||];
    newdist = [||];
    newparent = [||];
    touched = [||];
    ntouched = 0;
    stack = [||];
    nstack = 0;
    some_link = [||];
    epoch = 0 }

(* Kept out of line: the resize path allocates, and inlining it into
   [repair] would put those (cold) sites inside the A0xx-gated body. *)
let[@inline never] ready s n nl =
  if Array.length s.stamp < n then begin
    s.stamp <- Array.make n 0;
    s.settled <- Array.make n 0;
    s.invalid <- Array.make n 0;
    s.newdist <- Array.make n 0;
    s.newparent <- Array.make n 0;
    s.touched <- Array.make n 0;
    s.stack <- Array.make n 0;
    s.epoch <- 0
  end;
  if Array.length s.some_link < nl then
    s.some_link <- Array.init nl (fun i -> Some (Link.id_of_int i));
  s.epoch <- s.epoch + 1;
  s.ntouched <- 0;
  s.nstack <- 0;
  Radix_queue.clear s.queue

let parent_id (parent : Link.id option array) v =
  match parent.(v) with None -> -1 | Some lid -> Link.id_to_int lid

(* Composite distance under the old table, decoded from the tree — only
   meaningful for untouched nodes. *)
let old_comp dist_u hops_u v =
  Dijkstra.composite ~dist:dist_u.(v) ~hops:hops_u.(v)

let touch s epoch v =
  if s.stamp.(v) <> epoch then begin
    s.stamp.(v) <- epoch;
    s.touched.(s.ntouched) <- v;
    s.ntouched <- s.ntouched + 1
  end

let invalidate s epoch v =
  if s.invalid.(v) <> epoch then begin
    s.invalid.(v) <- epoch;
    touch s epoch v;
    s.newdist.(v) <- max_int;
    s.newparent.(v) <- -1;
    s.stack.(s.nstack) <- v;
    s.nstack <- s.nstack + 1
  end

(* Phase 1: invalidate the direct children of worsened parent links.  The
   root has no parent and is never invalidated, so distance 0 stays
   anchored. *)
let rec seed_increases s g parent epoch changes =
  match changes with
  | [] -> ()
  | (lid, old_w, new_w) :: rest ->
    let increase = old_w >= 0 && (new_w < 0 || new_w > old_w) in
    (if increase then begin
       let l = Graph.link g lid in
       let v = Node.to_int l.Link.dst in
       if parent_id parent v = Link.id_to_int lid then invalidate s epoch v
     end);
    seed_increases s g parent epoch rest
[@@hot_path]

(* Phase 3b: decreased links from intact sources.  Invalidated
   destinations were already offered this link by the in-scan of phase 3a;
   invalidated sources relax it when (if) they re-settle. *)
let rec seed_decreases s g parent dist_u hops_u epoch changes =
  match changes with
  | [] -> ()
  | (lid_t, old_w, new_w) :: rest ->
    let decrease = new_w >= 0 && (old_w < 0 || new_w < old_w) in
    (if decrease then begin
       let l = Graph.link g lid_t in
       let u = Node.to_int l.Link.src and v = Node.to_int l.Link.dst in
       let lid = Link.id_to_int lid_t in
       if s.invalid.(u) <> epoch && s.invalid.(v) <> epoch then begin
         let du =
           if s.stamp.(u) = epoch then s.newdist.(u)
           else old_comp dist_u hops_u u
         in
         if du <> max_int then begin
           let cand = du + new_w in
           let cur =
             if s.stamp.(v) = epoch then s.newdist.(v)
             else old_comp dist_u hops_u v
           in
           if cand < cur then begin
             touch s epoch v;
             s.newdist.(v) <- cand;
             s.newparent.(v) <- lid;
             Radix_queue.push s.queue ~key:cand ~tie:lid v
           end
           else if cand = cur then
             if s.stamp.(v) = epoch then begin
               if lid < s.newparent.(v) then s.newparent.(v) <- lid
             end
             else if lid < parent_id parent v then
               parent.(v) <- s.some_link.(lid)
         end
       end
     end);
    seed_decreases s g parent dist_u hops_u epoch rest
[@@hot_path]

let repair s g ~tree ~weights ~changes =
  let n = Graph.node_count g in
  ready s n (Graph.link_count g);
  let parent = Spf_tree.unsafe_parent tree in
  let dist_u = Spf_tree.unsafe_dist tree in
  let hops_u = Spf_tree.unsafe_hops tree in
  let out_off = Graph.csr_out_off g in
  let out_link_ids = Graph.csr_out_link_ids g in
  let out_dst = Graph.csr_out_dst g in
  let in_off = Graph.csr_in_off g in
  let in_link_ids = Graph.csr_in_link_ids g in
  let epoch = s.epoch in
  seed_increases s g parent epoch changes;
  (* Phase 2: flood invalidation down the suspect subtrees. *)
  while s.nstack > 0 do
    s.nstack <- s.nstack - 1;
    let u = s.stack.(s.nstack) in
    for k = out_off.(u) to out_off.(u + 1) - 1 do
      let j = out_dst.(k) in
      if s.invalid.(j) <> epoch && parent_id parent j = out_link_ids.(k) then
        invalidate s epoch j
    done
  done;
  (* Phase 3a: offer each invalidated node its best in-link from intact
     nodes.  Intact distances may still shrink (a pending decrease), in
     which case the seed is an over-approximation of a path that does
     exist — the source's own settle re-relaxes with the better value
     before the stale entry can win a pop. *)
  let ninvalid = s.ntouched in
  for t = 0 to ninvalid - 1 do
    let v = s.touched.(t) in
    let best_w = ref max_int and best_l = ref (-1) in
    for k = in_off.(v) to in_off.(v + 1) - 1 do
      let lid = in_link_ids.(k) in
      let ew = weights.(lid) in
      if ew >= 0 then begin
        let u = Node.to_int (Graph.link g (Link.id_of_int lid)).Link.src in
        if s.invalid.(u) <> epoch then begin
          let du = old_comp dist_u hops_u u in
          if du <> max_int then begin
            let cand = du + ew in
            if cand < !best_w || (cand = !best_w && lid < !best_l) then begin
              best_w := cand;
              best_l := lid
            end
          end
        end
      end
    done;
    if !best_w <> max_int then begin
      s.newdist.(v) <- !best_w;
      s.newparent.(v) <- !best_l;
      Radix_queue.push s.queue ~key:!best_w ~tie:!best_l v
    end
  done;
  seed_decreases s g parent dist_u hops_u epoch changes;
  (* Phase 4: monotone re-settle, patching the tree exactly as a fresh
     computation would decode it. *)
  let resettled = ref 0 in
  let slot = s.slot in
  while Radix_queue.pop_min_into s.queue slot do
    let w = slot.Radix_queue.key and v = slot.Radix_queue.value in
    if s.settled.(v) <> epoch && s.newdist.(v) = w then begin
      s.settled.(v) <- epoch;
      incr resettled;
      dist_u.(v) <- Dijkstra.composite_units w;
      hops_u.(v) <- Dijkstra.composite_hops w;
      parent.(v) <-
        (if s.newparent.(v) < 0 then None else s.some_link.(s.newparent.(v)));
      for k = out_off.(v) to out_off.(v + 1) - 1 do
        let lid = out_link_ids.(k) in
        let ew = weights.(lid) in
        let j = out_dst.(k) in
        if ew >= 0 && s.settled.(j) <> epoch then begin
          let w' = w + ew in
          let cur =
            if s.stamp.(j) = epoch then s.newdist.(j)
            else old_comp dist_u hops_u j
          in
          if w' < cur then begin
            touch s epoch j;
            s.newdist.(j) <- w';
            s.newparent.(j) <- lid;
            Radix_queue.push s.queue ~key:w' ~tie:lid j
          end
          else if w' = cur then
            if s.stamp.(j) = epoch then begin
              if lid < s.newparent.(j) then s.newparent.(j) <- lid
            end
            else if lid < parent_id parent j then
              parent.(j) <- s.some_link.(lid)
        end
      done
    end
  done;
  (* Touched nodes that never re-settled have no surviving path: every
     strict improvement pushed an entry at its final value, so only
     [max_int] candidates can be left standing. *)
  for t = 0 to s.ntouched - 1 do
    let v = s.touched.(t) in
    if s.settled.(v) <> epoch then begin
      dist_u.(v) <- max_int;
      hops_u.(v) <- max_int;
      parent.(v) <- None
    end
  done;
  !resettled
[@@hot_path]

open! Import

(* See the .mli for the algorithm outline and the bit-identity argument.

   Node states during one repair, tracked by epoch stamps so consecutive
   repairs share arrays without clearing them:

   - untouched: the tree entry is still exact (or provably an
     over-approximation that no surviving path undercuts); its composite
     distance is re-encoded from the tree on demand.
   - touched, not settled: [newdist]/[newparent] hold the best candidate
     so far ([max_int]/[-1] for invalidated nodes not yet re-offered a
     path); the tree entry is stale and must not be read.
   - settled: the tree entry has been patched with the final value.

   Every strict improvement pushes a (key, link-id) entry; a popped entry
   is acted on only if it still matches [newdist] (lazy deletion).  Exact
   ties never push: for a touched node the candidate parent array is
   lowered in place, for an untouched node the tree's parent pointer is
   patched directly — a parent swap at equal distance changes nothing
   downstream.  Ties arriving after a node settled are impossible: an
   achieving predecessor's key is at least one edge weight below the
   node's, so it settles (and relaxes) strictly earlier in the monotone
   pop order, and achieving predecessors that never enter the queue are
   exactly the intact ones the seeding phase already scanned. *)

type scratch = {
  queue : Radix_queue.t;
  mutable stamp : int array; (* touched this epoch *)
  mutable settled : int array;
  mutable invalid : int array;
  mutable newdist : int array; (* composite; valid when touched *)
  mutable newparent : int array;
  mutable touched : int array; (* node ids, first [ntouched] live *)
  mutable ntouched : int;
  mutable epoch : int;
}

let scratch () =
  { queue = Radix_queue.create ();
    stamp = [||];
    settled = [||];
    invalid = [||];
    newdist = [||];
    newparent = [||];
    touched = [||];
    ntouched = 0;
    epoch = 0 }

let ready s n =
  if Array.length s.stamp < n then begin
    s.stamp <- Array.make n 0;
    s.settled <- Array.make n 0;
    s.invalid <- Array.make n 0;
    s.newdist <- Array.make n 0;
    s.newparent <- Array.make n 0;
    s.touched <- Array.make n 0;
    s.epoch <- 0
  end;
  s.epoch <- s.epoch + 1;
  s.ntouched <- 0;
  Radix_queue.clear s.queue

let repair s g ~tree ~weights ~changes =
  let n = Graph.node_count g in
  ready s n;
  let parent, dist_u, hops_u = Spf_tree.unsafe_arrays tree in
  let out_off, out_link_ids, out_dst = Graph.csr_out g in
  let in_off, in_link_ids = Graph.csr_in g in
  let epoch = s.epoch in
  let touched i = s.stamp.(i) = epoch in
  let touch i =
    if s.stamp.(i) <> epoch then begin
      s.stamp.(i) <- epoch;
      s.touched.(s.ntouched) <- i;
      s.ntouched <- s.ntouched + 1
    end
  in
  (* Composite distance under the old table, decoded from the tree —
     only meaningful for untouched nodes. *)
  let old_comp i = Dijkstra.composite ~dist:dist_u.(i) ~hops:hops_u.(i) in
  let parent_id i =
    match parent.(i) with None -> -1 | Some lid -> Link.id_to_int lid
  in
  (* Phase 1+2: invalidate the subtrees hanging below worsened parent
     links.  The root has no parent and is never invalidated, so distance
     0 stays anchored. *)
  let stack = ref [] in
  let invalidate v =
    if s.invalid.(v) <> epoch then begin
      s.invalid.(v) <- epoch;
      touch v;
      s.newdist.(v) <- max_int;
      s.newparent.(v) <- -1;
      stack := v :: !stack
    end
  in
  List.iter
    (fun (lid, old_w, new_w) ->
      let increase = old_w >= 0 && (new_w < 0 || new_w > old_w) in
      if increase then begin
        let l = Graph.link g lid in
        let v = Node.to_int l.Link.dst in
        if parent_id v = Link.id_to_int lid then invalidate v
      end)
    changes;
  let rec flood () =
    match !stack with
    | [] -> ()
    | u :: rest ->
      stack := rest;
      for k = out_off.(u) to out_off.(u + 1) - 1 do
        let j = out_dst.(k) in
        if s.invalid.(j) <> epoch && parent_id j = out_link_ids.(k) then
          invalidate j
      done;
      flood ()
  in
  flood ();
  (* Phase 3a: offer each invalidated node its best in-link from intact
     nodes.  Intact distances may still shrink (a pending decrease), in
     which case the seed is an over-approximation of a path that does
     exist — the source's own settle re-relaxes with the better value
     before the stale entry can win a pop. *)
  let ninvalid = s.ntouched in
  for t = 0 to ninvalid - 1 do
    let v = s.touched.(t) in
    let best_w = ref max_int and best_l = ref (-1) in
    for k = in_off.(v) to in_off.(v + 1) - 1 do
      let lid = in_link_ids.(k) in
      let ew = weights.(lid) in
      if ew >= 0 then begin
        let u = Node.to_int (Graph.link g (Link.id_of_int lid)).Link.src in
        if s.invalid.(u) <> epoch then begin
          let du = old_comp u in
          if du <> max_int then begin
            let cand = du + ew in
            if cand < !best_w || (cand = !best_w && lid < !best_l) then begin
              best_w := cand;
              best_l := lid
            end
          end
        end
      end
    done;
    if !best_w <> max_int then begin
      s.newdist.(v) <- !best_w;
      s.newparent.(v) <- !best_l;
      Radix_queue.push s.queue ~key:!best_w ~tie:!best_l v
    end
  done;
  (* Phase 3b: decreased links from intact sources.  Invalidated
     destinations were already offered this link by the in-scan above;
     invalidated sources relax it when (if) they re-settle. *)
  List.iter
    (fun (lid_t, old_w, new_w) ->
      let decrease = new_w >= 0 && (old_w < 0 || new_w < old_w) in
      if decrease then begin
        let l = Graph.link g lid_t in
        let u = Node.to_int l.Link.src and v = Node.to_int l.Link.dst in
        let lid = Link.id_to_int lid_t in
        if s.invalid.(u) <> epoch && s.invalid.(v) <> epoch then begin
          let du = if touched u then s.newdist.(u) else old_comp u in
          if du <> max_int then begin
            let cand = du + new_w in
            let cur = if touched v then s.newdist.(v) else old_comp v in
            if cand < cur then begin
              touch v;
              s.newdist.(v) <- cand;
              s.newparent.(v) <- lid;
              Radix_queue.push s.queue ~key:cand ~tie:lid v
            end
            else if cand = cur then
              if touched v then begin
                if lid < s.newparent.(v) then s.newparent.(v) <- lid
              end
              else if lid < parent_id v then parent.(v) <- Some lid_t
          end
        end
      end)
    changes;
  (* Phase 4: monotone re-settle, patching the tree exactly as a fresh
     computation would decode it. *)
  let resettled = ref 0 in
  let rec run () =
    match Radix_queue.pop_min s.queue with
    | None -> ()
    | Some (w, _, v) ->
      if s.settled.(v) <> epoch && s.newdist.(v) = w then begin
        s.settled.(v) <- epoch;
        incr resettled;
        let units, hops = Dijkstra.decompose w in
        dist_u.(v) <- units;
        hops_u.(v) <- hops;
        parent.(v) <-
          (if s.newparent.(v) < 0 then None
           else Some (Link.id_of_int s.newparent.(v)));
        for k = out_off.(v) to out_off.(v + 1) - 1 do
          let lid = out_link_ids.(k) in
          let ew = weights.(lid) in
          let j = out_dst.(k) in
          if ew >= 0 && s.settled.(j) <> epoch then begin
            let w' = w + ew in
            let cur = if touched j then s.newdist.(j) else old_comp j in
            if w' < cur then begin
              touch j;
              s.newdist.(j) <- w';
              s.newparent.(j) <- lid;
              Radix_queue.push s.queue ~key:w' ~tie:lid j
            end
            else if w' = cur then
              if touched j then begin
                if lid < s.newparent.(j) then s.newparent.(j) <- lid
              end
              else if lid < parent_id j then parent.(j) <- Some (Link.id_of_int lid)
          end
        done
      end;
      run ()
  in
  run ();
  (* Touched nodes that never re-settled have no surviving path: every
     strict improvement pushed an entry at its final value, so only
     [max_int] candidates can be left standing. *)
  for t = 0 to s.ntouched - 1 do
    let v = s.touched.(t) in
    if s.settled.(v) <> epoch then begin
      dist_u.(v) <- max_int;
      hops_u.(v) <- max_int;
      parent.(v) <- None
    end
  done;
  !resettled

(** Monotone integer priority queue (one-level radix heap).

    The SPF inner loop is a textbook monotone workload: every key pushed is
    at least the key last popped (Dijkstra pushes [popped + edge_weight] and
    edge weights are positive).  A radix heap exploits this: keys are binned
    by the position of their highest bit differing from the last popped key,
    so {!push} is O(1) and {!pop_min} is amortized O(log C) where [C] bounds
    the key range — composite SPF weights are bounded by
    [Dijkstra.max_link_cost] per link, which is the whole reason the paper's
    8-bit metric admits this structure.  There is no decrease-key: like the
    binary heap it replaces, callers re-push and discard stale entries
    ("lazy deletion"), which the O(1) push makes free.

    Entries are ordered lexicographically by [(key, tie)]; Dijkstra uses the
    arriving link id as the tie so pops are fully deterministic, making the
    queue a drop-in refinement of {!Priority_queue} under its
    [(weight, link-id)] comparison. *)

type t

val create : unit -> t
(** An empty queue with last-popped key 0: all pushed keys must be
    non-negative. *)

val is_empty : t -> bool

val length : t -> int

val last : t -> int
(** The key most recently popped (0 before any pop): the monotone floor
    below which {!push} refuses keys. *)

val push : t -> key:int -> tie:int -> int -> unit
(** [push t ~key ~tie v] inserts [v].
    @raise Invalid_argument if [key < last t] (monotonicity violation). *)

val pop_min : t -> (int * int * int) option
(** Remove and return the entry [(key, tie, value)] with the
    lexicographically smallest [(key, tie)]; [None] when empty.  Entries
    with identical [(key, tie)] pop in unspecified (but deterministic)
    order. *)

type slot = { mutable key : int; mutable tie : int; mutable value : int }
(** A caller-owned out-cell for {!pop_min_into}: the allocation-free pop
    the SPF inner loops use ({!pop_min} boxes an option and a triple per
    entry, which dominates the loop's allocation profile). *)

val slot : unit -> slot

val pop_min_into : t -> slot -> bool
(** [pop_min_into t s] pops the same entry {!pop_min} would into [s] and
    returns [true], or returns [false] (leaving [s] untouched) when the
    queue is empty.  Allocation-free; one slot per scratch is reused for
    every pop. *)

val clear : t -> unit
(** Empty the queue and reset the monotone floor to 0. *)

open! Import

type tie_break = [ `Neutral | `Favor of Link.id | `Avoid of Link.id ]

let max_link_cost = 254

(* Composite edge weights encode lexicographic comparison of
   (path cost, probe-link preference, hop count) in a single positive
   integer, keeping plain Dijkstra applicable:

     w(l) = (cost(l) * cost_scale + probe_adjust(l)) * hop_scale + 1

   probe_adjust is -1 on the probed link under [`Favor] (an infinitesimal
   discount: among equal-cost paths, ones using the link win), +1 under
   [`Avoid].  The +1 per edge makes hop count the final tie-break.  With
   cost <= 254 and paths < 256 hops the sums stay far below max_int. *)
let hop_scale = 256

let cost_scale = 1024

let edge_weight ~tie_break ~cost lid =
  let c = cost lid in
  if c < 1 || c > max_link_cost then
    invalid_arg
      (Printf.sprintf "Dijkstra: link cost %d outside [1, %d]" c max_link_cost);
  let adjust =
    match tie_break with
    | `Neutral -> 0
    | `Favor probe -> if Link.id_equal probe lid then -1 else 0
    | `Avoid probe -> if Link.id_equal probe lid then 1 else 0
  in
  (((c * cost_scale) + adjust) * hop_scale) + 1

(* Memoized per-link composite weights: one cost_fn call + range check per
   link per refresh, instead of per edge per source.  Disabled links carry
   the sentinel -1 and are never entered. *)
(* Fill a caller-owned table in place.  A plain for-loop rather than
   [Graph.iter_links]: this runs every routing period on the simulator's
   steady path, which must not allocate (an [iter_links] closure would). *)
let compute_weights_into ?(tie_break = `Neutral) ?(enabled = fun _ -> true) g
    ~cost weights =
  for i = 0 to Graph.link_count g - 1 do
    let lid = Link.id_of_int i in
    weights.(i) <-
      (if enabled lid then edge_weight ~tie_break ~cost lid else -1)
  done

let compute_weights ?tie_break ?enabled g ~cost =
  let weights = Array.make (Graph.link_count g) (-1) in
  compute_weights_into ?tie_break ?enabled g ~cost weights;
  weights

let composite ~dist ~hops =
  if dist = max_int then max_int else (dist * cost_scale * hop_scale) + hops

(* Inverse of [composite] under [`Neutral] tie-breaking: the hop count
   lives in the low byte and the unit distance above the scales, with the
   half-up rounding that absorbs [`Favor]/[`Avoid] adjustments (for which
   the middle bits are nonzero). *)
(* Int-returning halves of [decompose]: results cross module boundaries
   unboxed, so the repair resettle loop can re-decode patched distances
   without allocating the pair. *)
let composite_units comp =
  if comp = max_int then max_int
  else
    (comp / hop_scale / cost_scale)
    + (if (comp / hop_scale) mod cost_scale > cost_scale / 2 then 1 else 0)

let composite_hops comp = if comp = max_int then max_int else comp mod hop_scale

let decompose comp = (composite_units comp, composite_hops comp)

(* Reusable work arrays for the inner loop.  The settled flags, composite
   distances and the heap never escape a computation, so one scratch can
   serve every tree a domain computes — per-period refreshes stop paying
   three array allocations plus heap growth per source.  (The parent,
   units and hops arrays *do* escape, into the returned [Spf_tree.t], and
   are still allocated per tree.)  A scratch belongs to one domain; the
   pool fan-out gives each participant its own. *)
type scratch = {
  mutable dist : int array; (* composite distances *)
  mutable settled : bool array;
  heap : Radix_queue.t;
  slot : Radix_queue.slot; (* out-cell for allocation-free pops *)
}

let scratch () =
  { dist = [||];
    settled = [||];
    heap = Radix_queue.create ();
    slot = Radix_queue.slot () }

let ready scratch n =
  if Array.length scratch.dist < n then begin
    scratch.dist <- Array.make n max_int;
    scratch.settled <- Array.make n false
  end
  else begin
    Array.fill scratch.dist 0 n max_int;
    Array.fill scratch.settled 0 n false
  end;
  Radix_queue.clear scratch.heap

(* The SPF inner loop over the flat (CSR) adjacency and a memoized weight
   table.  Tie-breaking is identical to the historical list-based version:
   queue priorities are (composite weight, arriving link id) pairs — globally
   unique — and on a fully tied relaxation the lower arriving link id wins,
   so the tree is a pure function of the weight table.  Dijkstra never
   pushes a key below the last popped one (edge weights are positive), the
   exact precondition of the monotone radix queue. *)
let compute_flat_s s g ~weights root =
  let n = Graph.node_count g in
  let out_off = Graph.csr_out_off g in
  let out_link_ids = Graph.csr_out_link_ids g in
  let out_dst = Graph.csr_out_dst g in
  ready s n;
  let dist = s.dist in
  let parent = Array.make n (-1) in
  let settled = s.settled in
  let heap = s.heap in
  let ri = Node.to_int root in
  dist.(ri) <- 0;
  Radix_queue.push heap ~key:0 ~tie:(-1) ri;
  let slot = s.slot in
  while Radix_queue.pop_min_into heap slot do
    let w = slot.Radix_queue.key and i = slot.Radix_queue.value in
    if not settled.(i) then begin
      settled.(i) <- true;
      for k = out_off.(i) to out_off.(i + 1) - 1 do
        let lid = out_link_ids.(k) in
        let ew = weights.(lid) in
        let j = out_dst.(k) in
        if ew >= 0 && not settled.(j) then begin
          let w' = w + ew in
          if w' < dist.(j) then begin
            dist.(j) <- w';
            parent.(j) <- lid;
            Radix_queue.push heap ~key:w' ~tie:lid j
          end
          else if w' = dist.(j) && lid < parent.(j) then begin
            (* Fully tied: keep the lower arriving link id so the tree
               is independent of queue internals. *)
            parent.(j) <- lid;
            Radix_queue.push heap ~key:w' ~tie:lid j
          end
        end
      done
    end
  done;
  (* Decode composite weights back into routing units and hop counts. *)
  let units = Array.make n max_int in
  let hops = Array.make n max_int in
  for i = 0 to n - 1 do
    if dist.(i) <> max_int then begin
      units.(i) <- composite_units dist.(i);
      hops.(i) <- composite_hops dist.(i)
    end
  done;
  let parent =
    Array.map (fun p -> if p < 0 then None else Some (Link.id_of_int p)) parent
  in
  Spf_tree.make ~graph:g ~root ~parent ~dist:units ~hops

let compute_flat g ~weights root = compute_flat_s (scratch ()) g ~weights root

let compute ?tie_break ?enabled g ~cost root =
  compute_flat g ~weights:(compute_weights ?tie_break ?enabled g ~cost) root

(* Chunk per-source fan-outs so domains claim several sources per visit to
   the pool's atomic counter: one task per source made small graphs spend
   comparable time on handout as on Dijkstra itself (the mesh200
   regression in BENCH_spf.json). *)
let source_chunk ~sources ~domains = max 1 (sources / (domains * 8))

let all_pairs ?tie_break ?enabled ?pool g ~cost =
  let weights = compute_weights ?tie_break ?enabled g ~cost in
  let n = Graph.node_count g in
  let trees = Array.make n None in
  let one s i = trees.(i) <- Some (compute_flat_s s g ~weights (Node.of_int i)) in
  (match pool with
  | None ->
    let s = scratch () in
    for i = 0 to n - 1 do
      one s i
    done
  | Some pool ->
    let chunk = source_chunk ~sources:n ~domains:(Domain_pool.size pool) in
    Domain_pool.parallel_for_with ~chunk pool ~init:scratch n one);
  Array.map Option.get trees

let min_hop_tree ?enabled g root = compute ?enabled g ~cost:(fun _ -> 1) root

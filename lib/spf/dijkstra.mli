open! Import

(** SPF route computation (Dijkstra 1959), as installed in the ARPANET in
    May 1979.

    Link costs are supplied as a function of {!Link.id} in routing units
    (positive integers).  The SPF algorithm is shared by every metric —
    D-SPF, HN-SPF and min-hop differ only in the costs they feed in (§2.2).

    {b Tie-breaking.}  §5.2's response-map analysis requires computing
    routes with "ties always broken in favor of using the given link" and,
    for the other end of the traffic band, against it.  [tie_break]
    implements this as an infinitesimal cost adjustment on the probe link;
    the default [`Neutral] breaks remaining ties toward fewer hops and then
    lower link ids, making route computation fully deterministic.

    {b Hot path.}  Internally every computation runs over the graph's flat
    (CSR) adjacency and a per-link table of memoized composite edge weights
    ({!compute_weights} / {!compute_flat}), so the inner loop touches only
    int arrays.  {!compute} is the convenience wrapper; callers computing
    many trees against the same costs — {!all_pairs}, {!Spf_engine} — build
    the weight table once and share it. *)

type tie_break =
  [ `Neutral  (** fewer hops, then lower link ids *)
  | `Favor of Link.id  (** equal-cost ties prefer paths using the link *)
  | `Avoid of Link.id  (** equal-cost ties prefer paths avoiding the link *)
  ]

val max_link_cost : int
(** Largest admissible per-link cost (254 routing units — the delay metric's
    8-bit field, §3.2's 127:1 range anchor). *)

val compute :
  ?tie_break:tie_break ->
  ?enabled:(Link.id -> bool) ->
  Graph.t ->
  cost:(Link.id -> int) ->
  Node.t ->
  Spf_tree.t
(** [compute g ~cost root] builds the shortest-path tree from [root].
    Links for which [enabled] is false (default: none) are treated as down
    and never entered — how SPF "dynamically rout[es] around down lines"
    (§7).
    @raise Invalid_argument if any enabled link's cost is outside
    [\[1, max_link_cost\]]. *)

val compute_weights :
  ?tie_break:tie_break ->
  ?enabled:(Link.id -> bool) ->
  Graph.t ->
  cost:(Link.id -> int) ->
  int array
(** The composite edge-weight table, indexed by link id: each enabled
    link's cost folded with the tie-break adjustment and the per-hop +1;
    disabled links carry the sentinel [-1].  Equal tables (under [(=)])
    guarantee identical trees from {!compute_flat}.
    @raise Invalid_argument if any enabled link's cost is outside
    [\[1, max_link_cost\]]. *)

val compute_weights_into :
  ?tie_break:tie_break ->
  ?enabled:(Link.id -> bool) ->
  Graph.t ->
  cost:(Link.id -> int) ->
  int array ->
  unit
(** {!compute_weights} into a caller-owned array of length
    [Graph.link_count] — allocation-free, for tables refreshed every
    routing period. *)

val compute_flat : Graph.t -> weights:int array -> Node.t -> Spf_tree.t
(** [compute_flat g ~weights root]: the SPF inner loop proper, over a table
    from {!compute_weights}.  [compute ... root] is exactly
    [compute_flat g ~weights:(compute_weights ...) root]. *)

type scratch
(** Reusable work arrays (settled flags, composite distances, the monotone
    {!Radix_queue}) for the inner loop.  Owned by one domain at a time;
    resizes itself to whatever graph it is used on. *)

val scratch : unit -> scratch

val compute_flat_s :
  scratch -> Graph.t -> weights:int array -> Node.t -> Spf_tree.t
(** {!compute_flat} with caller-owned scratch: bit-identical trees, no
    per-call work-array allocation.  [compute_flat g] is
    [compute_flat_s (scratch ()) g]. *)

val source_chunk : sources:int -> domains:int -> int
(** Chunk size for fanning [sources] single-source computations over
    [domains] domains — several sources per visit to the pool's shared
    counter, small enough to balance uneven work. *)

val composite : dist:int -> hops:int -> int
(** Re-encode a tree's per-node [dist] (routing units) and [hops] into the
    composite distance the inner loop compared, assuming [`Neutral]
    tie-breaking (the encoding is lossy under [`Favor]/[`Avoid]).
    [max_int] maps to [max_int].  Used by {!Spf_engine} to reason about
    whether a weight change can affect a tree. *)

val decompose : int -> int * int
(** Inverse of {!composite} under [`Neutral] tie-breaking: composite
    distance back to [(units, hops)].  [max_int] maps to
    [(max_int, max_int)].  Used by the repair path to re-decode patched
    distances exactly as {!compute_flat} decodes fresh ones. *)

val composite_units : int -> int
(** First component of {!decompose}, returned unboxed — the repair
    resettle loop re-decodes per popped node and must not allocate the
    pair. *)

val composite_hops : int -> int
(** Second component of {!decompose}, returned unboxed. *)

val all_pairs :
  ?tie_break:tie_break ->
  ?enabled:(Link.id -> bool) ->
  ?pool:Domain_pool.t ->
  Graph.t ->
  cost:(Link.id -> int) ->
  Spf_tree.t array
(** One tree per node, indexed by node id — what the network as a whole
    computes after a flood reaches everyone.  The weight table is built
    once and shared across sources; with [pool] the per-source computations
    fan out over the pool's domains (each source writes only its own slot,
    so the result is bit-identical to the sequential run). *)

val min_hop_tree : ?enabled:(Link.id -> bool) -> Graph.t -> Node.t -> Spf_tree.t
(** SPF with every link costing one hop — the static baseline of §5.3. *)

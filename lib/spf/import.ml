(* Aliases for the topology substrate, opened by every module in this
   library so types read as [Graph.t] rather than
   [Routing_topology.Graph.t]. *)

module Node = Routing_topology.Node
module Line_type = Routing_topology.Line_type
module Link = Routing_topology.Link
module Graph = Routing_topology.Graph
module Domain_pool = Routing_metric.Domain_pool
module Traffic_matrix = Routing_topology.Traffic_matrix
module Tracer = Routing_obs.Tracer

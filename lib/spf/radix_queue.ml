(* One-level radix heap over non-negative int keys.

   Bucket [0] holds entries whose key equals [last] (the key most recently
   popped); bucket [b > 0] holds entries whose key first differs from
   [last] at bit [b - 1].  Pops drain bucket 0; when it is empty the first
   non-empty bucket is scanned for its lexicographic [(key, tie)] minimum,
   [last] advances to that key, and the bucket's entries are redistributed
   — each lands in a strictly lower bucket (they agreed with the old [last]
   above their bucket's bit, and the new [last] is one of them), which is
   where the amortized O(bits) bound comes from. *)

type bucket = {
  mutable keys : int array;
  mutable ties : int array;
  mutable vals : int array;
  mutable len : int;
}

(* 63-bit ints: keys differ from [last] somewhere in bits 0..62, so
   buckets 0..63 cover every case. *)
let bucket_count = 64

type t = {
  buckets : bucket array;
  mutable last : int;
  mutable length : int;
}

let make_bucket () = { keys = [||]; ties = [||]; vals = [||]; len = 0 }

let create () =
  { buckets = Array.init bucket_count (fun _ -> make_bucket ());
    last = 0;
    length = 0 }

let is_empty t = t.length = 0

let length t = t.length

let last t = t.last

(* Index of the highest set bit of [x > 0]. *)
let msb x =
  let r = ref 0 in
  let x = ref x in
  if !x lsr 32 <> 0 then begin r := !r + 32; x := !x lsr 32 end;
  if !x lsr 16 <> 0 then begin r := !r + 16; x := !x lsr 16 end;
  if !x lsr 8 <> 0 then begin r := !r + 8; x := !x lsr 8 end;
  if !x lsr 4 <> 0 then begin r := !r + 4; x := !x lsr 4 end;
  if !x lsr 2 <> 0 then begin r := !r + 2; x := !x lsr 2 end;
  if !x lsr 1 <> 0 then r := !r + 1;
  !r

let bucket_of t key =
  let d = key lxor t.last in
  if d = 0 then 0 else msb d + 1

let[@inline never] grow_to a cap len =
  let a' = Array.make cap 0 in
  Array.blit a 0 a' 0 len;
  a'

let append b ~key ~tie v =
  if b.len = Array.length b.keys then begin
    let cap = if b.len = 0 then 16 else 2 * b.len in
    b.keys <- grow_to b.keys cap b.len;
    b.ties <- grow_to b.ties cap b.len;
    b.vals <- grow_to b.vals cap b.len
  end;
  b.keys.(b.len) <- key;
  b.ties.(b.len) <- tie;
  b.vals.(b.len) <- v;
  b.len <- b.len + 1

let push t ~key ~tie v =
  if key < t.last then
    invalid_arg
      (Printf.sprintf "Radix_queue.push: key %d below the monotone floor %d"
         key t.last);
  append t.buckets.(bucket_of t key) ~key ~tie v;
  t.length <- t.length + 1
[@@hot_path]

(* Swap-remove entry [i]; order within a bucket carries no meaning. *)
let remove b i =
  let l = b.len - 1 in
  b.keys.(i) <- b.keys.(l);
  b.ties.(i) <- b.ties.(l);
  b.vals.(i) <- b.vals.(l);
  b.len <- l

type slot = { mutable key : int; mutable tie : int; mutable value : int }

let slot () = { key = 0; tie = 0; value = 0 }

let pop_min_into t (out : slot) =
  if t.length = 0 then false
  else begin
    let b0 = t.buckets.(0) in
    if b0.len = 0 then begin
      (* Advance [last] to the smallest key present and pull its cohort
         down into bucket 0. *)
      let bi = ref 1 in
      while t.buckets.(!bi).len = 0 do incr bi done;
      let b = t.buckets.(!bi) in
      let min_key = ref b.keys.(0) in
      for i = 1 to b.len - 1 do
        if b.keys.(i) < !min_key then min_key := b.keys.(i)
      done;
      t.last <- !min_key;
      for i = 0 to b.len - 1 do
        append t.buckets.(bucket_of t b.keys.(i))
          ~key:b.keys.(i) ~tie:b.ties.(i) b.vals.(i)
      done;
      b.len <- 0
    end;
    (* Bucket 0: every key equals [last]; the tie decides. *)
    let best = ref 0 in
    for i = 1 to b0.len - 1 do
      if b0.ties.(i) < b0.ties.(!best) then best := i
    done;
    out.key <- b0.keys.(!best);
    out.tie <- b0.ties.(!best);
    out.value <- b0.vals.(!best);
    remove b0 !best;
    t.length <- t.length - 1;
    true
  end
[@@hot_path]

let pop_min t =
  let s = slot () in
  if pop_min_into t s then Some (s.key, s.tie, s.value) else None

let clear t =
  Array.iter (fun b -> b.len <- 0) t.buckets;
  t.last <- 0;
  t.length <- 0

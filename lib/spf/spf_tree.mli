open! Import

(** Shortest-path trees produced by {!Dijkstra}.

    A tree is rooted at the computing PSN.  Because shortest paths are
    hereditary (every subpath of a shortest path is a shortest path — §4.1),
    the tree simultaneously encodes the full path, the next hop and the
    distance for every destination. *)

type t

val make :
  graph:Graph.t ->
  root:Node.t ->
  parent:Link.id option array ->
  dist:int array ->
  hops:int array ->
  t
(** Arrays are indexed by node id; [parent.(n)] is the link over which the
    path enters [n] ([None] for the root and unreachable nodes); [dist] is
    in routing units with [max_int] for unreachable. *)

val graph : t -> Graph.t

val root : t -> Node.t

val reached : t -> Node.t -> bool

val dist : t -> Node.t -> int
(** Total path cost in routing units.  [max_int] when unreachable. *)

val hops : t -> Node.t -> int
(** Path length in links.  [max_int] when unreachable. *)

val parent_link : t -> Node.t -> Link.t option

(** {2 Raw accessors} — int-indexed views for hot loops (load assignment
    walks every reached node of every source's tree each period); no
    option or [Node.t] boxing. *)

val reached_i : t -> int -> bool
(** [reached_i t i = reached t (Node.of_int i)]. *)

val hops_i : t -> int -> int
(** [hops_i t i = hops t (Node.of_int i)]. *)

val parent_id : t -> int -> int
(** The link id over which the path enters node [i], or [-1] for the root
    and unreachable nodes. *)

val unsafe_arrays : t -> Link.id option array * int array * int array
(** [(parent, dist, hops)] — the tree's own arrays, exposed so
    {!Spf_repair} can patch them in place.  Mutating them silently changes
    what every holder of the tree sees; only the repair path, which
    restores the [Dijkstra.compute] invariant before returning, may
    write. *)

val unsafe_parent : t -> Link.id option array
(** The parent array alone — same caveats as {!unsafe_arrays}, without the
    tuple allocation (the repair path fetches each array separately). *)

val unsafe_dist : t -> int array

val unsafe_hops : t -> int array

val path : t -> Node.t -> Link.t list
(** Links from the root to the destination, in forwarding order; [[]] for
    the root itself.  @raise Invalid_argument if unreachable. *)

val next_hop : t -> Node.t -> Link.t option
(** First link on the path — what the forwarding table stores.  [None] for
    the root and unreachable destinations. *)

val uses_link : t -> Node.t -> Link.id -> bool
(** Does the path to the destination traverse the link? *)

val destinations_via : t -> Link.id -> Node.t list
(** All destinations whose tree path traverses the link. *)

val fold_reached : t -> init:'a -> f:('a -> Node.t -> 'a) -> 'a
(** Fold over every reached node except the root. *)

val equal : t -> t -> bool
(** Structural equality: same root, same distances, hop counts {e and}
    parent links for every node.  The determinism tests use this to assert
    parallel and sequential computations agree bit-for-bit. *)

val equal_dists : t -> t -> bool
(** True when the two trees assign every node the same distance (parents may
    differ between equally short trees). *)

open! Import

(** In-place dynamic SPF repair (Ramalingam–Reps style).

    Given a tree that was exact under the previous weight table and the
    list of per-link weight changes, {!repair} patches the tree's
    distances, hop counts and parent links so that it is {b bit-identical}
    to [Dijkstra.compute_flat] from scratch under the new table — in time
    proportional to the part of the tree that actually changes, not the
    graph.

    The repair leans on the same fact as {!Spf_engine}'s reuse proof:
    under [`Neutral] tie-breaking the from-scratch tree is a pure function
    of the weight table — every node's distance is the true shortest
    composite distance, and its parent is the lowest-id enabled in-link
    achieving it.  The repair re-establishes exactly that local
    characterization on the region it disturbs:

    + {b Invalidate}: a weight increase (or disable) can only lengthen
      routes through the link, so only the subtree hanging below it is
      suspect; that subtree is flooded and marked invalid.
    + {b Seed}: every invalid node is offered its best candidate over
      in-links from intact nodes (whose distances are still exact or
      over-approximations that later relaxations fix); every decreased
      link whose source is intact offers its destination a shortcut, and
      an exact tie with a lower link id patches the parent pointer alone
      (distances downstream are untouched by a parent swap).
    + {b Re-settle}: a monotone Dijkstra loop over the {!Radix_queue}
      settles the frontier outward, patching the tree at each settle with
      the same decode as a fresh computation.  Touched nodes that never
      re-settle are exactly the ones the changes disconnected.

    A tree untouched by the changes costs nothing here — but callers
    ({!Spf_engine}) should use their cheap per-tree proof first and hand
    over only trees that may actually be affected. *)

type scratch
(** Epoch-stamped work arrays plus the monotone queue: repairs never pay
    an O(n) clear, only O(touched).  Owned by one domain at a time;
    resizes itself to whatever graph it is used on. *)

val scratch : unit -> scratch

val repair :
  scratch ->
  Graph.t ->
  tree:Spf_tree.t ->
  weights:int array ->
  changes:(Link.id * int * int) list ->
  int
(** [repair s g ~tree ~weights ~changes] patches [tree] in place and
    returns the number of nodes re-settled (0 when the changes turn out
    not to touch this tree).  [weights] is the {e new} composite table
    from [Dijkstra.compute_weights] (under [`Neutral] tie-breaking);
    [changes] lists [(link, old_weight, new_weight)] for every table
    entry that differs, with [-1] for disabled.  [tree] must have been
    exact under the old table. *)

open! Import

(* The engine owns one shortest-path tree per source and keeps the set
   consistent with the latest link costs at minimal cost.  The key fact it
   leans on: with (weight, arriving-link-id) heap priorities — globally
   unique — and lowest-id tie-breaking, {!Dijkstra.compute_flat} is a pure
   function of the weight table.  Every node's final distance is the true
   shortest composite distance and its parent is the lowest-id link
   achieving it, independent of visit order.  So the engine can diff the
   memoized weight table between refreshes and {e prove} most trees
   untouched:

   - a weight increase (or a link going down) cannot change a tree unless
     the link is that tree's parent of its destination: a non-parent link
     lies on no tree path (distances stay achieved without it) and was not
     the lowest-id candidate into its destination (candidates only shrink);

   - a weight decrease (or a link coming up) to [w'] on link [u -> v]
     cannot change a tree unless [u] is reached and
     [D(u) + w' <= D(v)] in composite distance ([<=], not [<]: equality
     makes the link a new parent candidate that may win the id tie).

   These tests compose across any set of simultaneous changes (induction on
   the decreased edges of a hypothetical shorter path, using the strict
   inequality from the decrease test), so a tree passing every per-link
   test is bit-identical to a full recompute.  Trees that fail any test
   are brought up to date by {!Spf_repair} — in-place dynamic repair that
   re-settles only the disturbed region and restores the same bit-identity
   — or, when repair is off or the tree is missing, recomputed in full.
   Both paths fan over the domain pool when the batch is big enough. *)

type stats = {
  mutable refreshes : int;
  mutable skipped : int;
  mutable full_sweeps : int;
  mutable sources_recomputed : int;
  mutable sources_repaired : int;
  mutable sources_reused : int;
  mutable nodes_resettled : int;
}

type t = {
  graph : Graph.t;
  pool : Domain_pool.t option;
  threshold : float;
  repair : bool;
  repair_grain : int;
  tracer : Tracer.t;
  tr_recompute : int; (* interned "spf_recompute" *)
  tr_repair : int; (* interned "spf_repair" *)
  mutable weights : int array; (* [||] before the first refresh *)
  mutable weights_scratch : int array;
      (* the previous table, recycled: each refresh fills it in place,
         diffs, and swaps — steady periods never allocate a table *)
  trees : Spf_tree.t option array;
  scratch : Dijkstra.scratch; (* caller-domain work arrays, reused forever *)
  repair_scratch : Spf_repair.scratch;
  stats : stats;
}

let create ?pool ?(tracer = Tracer.null) ?(threshold = 0.25) ?(repair = true)
    ?(repair_grain = 256) graph =
  { graph;
    pool;
    threshold;
    repair;
    repair_grain;
    tracer;
    tr_recompute = Tracer.intern tracer "spf_recompute";
    tr_repair = Tracer.intern tracer "spf_repair";
    weights = [||];
    weights_scratch = [||];
    trees = Array.make (Graph.node_count graph) None;
    scratch = Dijkstra.scratch ();
    repair_scratch = Spf_repair.scratch ();
    stats =
      { refreshes = 0;
        skipped = 0;
        full_sweeps = 0;
        sources_recomputed = 0;
        sources_repaired = 0;
        sources_reused = 0;
        nodes_resettled = 0 } }

let graph t = t.graph

let stats t = t.stats

(* Below this much total work, run the recompute inline even when a pool
   is attached.  The unit is one node-or-edge visit; a visit costs on the
   order of 100 ns (bench perf-spf: mesh200's ~840 visits/source take
   ~75 µs), while waking the pool and draining a job costs tens of µs —
   so a fan-out only pays for itself once the batch holds a couple of
   milliseconds of work.  Incremental refreshes that touch a handful of
   sources (the common per-period case) stay sequential. *)
let parallel_grain = 16_384

let recompute t sources =
  let todo = Array.of_list sources in
  let nt = Array.length todo in
  if nt > 0 then begin
    Tracer.span_begin_range t.tracer t.tr_recompute ~lo:0 ~hi:nt;
    t.stats.sources_recomputed <- t.stats.sources_recomputed + nt;
    let weights = t.weights in
    let g = t.graph in
    let work = nt * (Graph.node_count g + Graph.link_count g) in
    (match t.pool with
    | Some pool when Domain_pool.size pool > 1 && work >= parallel_grain ->
      let chunk =
        Dijkstra.source_chunk ~sources:nt ~domains:(Domain_pool.size pool)
      in
      Domain_pool.parallel_for_with ~chunk ~label:t.tr_recompute pool
        ~init:Dijkstra.scratch nt (fun s k ->
          let i = todo.(k) in
          t.trees.(i) <-
            Some (Dijkstra.compute_flat_s s g ~weights (Node.of_int i)))
    | Some _ | None ->
      for k = 0 to nt - 1 do
        let i = todo.(k) in
        t.trees.(i) <-
          Some (Dijkstra.compute_flat_s t.scratch g ~weights (Node.of_int i))
      done);
    Tracer.span_end t.tracer t.tr_recompute
  end

(* Repair affected trees in place.  Per-tree work is proportional to the
   disturbed region, usually a few nodes, so the fan-out threshold is a
   tree count ([repair_grain]) rather than a visit estimate. *)
let repair_trees t sources changes =
  match sources with
  | [] -> ()
  | _ ->
    let todo = Array.of_list sources in
    let nt = Array.length todo in
    Tracer.span_begin_range t.tracer t.tr_repair ~lo:0 ~hi:nt;
    t.stats.sources_repaired <- t.stats.sources_repaired + nt;
    let weights = t.weights in
    let g = t.graph in
    (match t.pool with
    | Some pool when Domain_pool.size pool > 1 && nt >= t.repair_grain ->
      let resettled = Array.make nt 0 in
      let chunk =
        Dijkstra.source_chunk ~sources:nt ~domains:(Domain_pool.size pool)
      in
      Domain_pool.parallel_for_with ~chunk ~label:t.tr_repair pool
        ~init:Spf_repair.scratch nt (fun s k ->
          let tree = Option.get t.trees.(todo.(k)) in
          resettled.(k) <- Spf_repair.repair s g ~tree ~weights ~changes);
      t.stats.nodes_resettled <-
        t.stats.nodes_resettled + Array.fold_left ( + ) 0 resettled
    | Some _ | None ->
      for k = 0 to nt - 1 do
        let tree = Option.get t.trees.(todo.(k)) in
        t.stats.nodes_resettled <-
          t.stats.nodes_resettled
          + Spf_repair.repair t.repair_scratch g ~tree ~weights ~changes
      done);
    Tracer.span_end t.tracer t.tr_repair

(* Can this set of weight changes alter [tree]?  See the module comment for
   why "no" here is a proof, not a heuristic. *)
let affected t tree changes =
  let composite n =
    Dijkstra.composite ~dist:(Spf_tree.dist tree n) ~hops:(Spf_tree.hops tree n)
  in
  List.exists
    (fun (lid, old_w, new_w) ->
      let l = Graph.link t.graph lid in
      let decrease = new_w >= 0 && (old_w < 0 || new_w < old_w) in
      if decrease then
        Spf_tree.reached tree l.Link.src
        && ((not (Spf_tree.reached tree l.Link.dst))
           || composite l.Link.src + new_w <= composite l.Link.dst)
      else begin
        match Spf_tree.parent_link tree l.Link.dst with
        | Some p -> Link.id_equal p.Link.id lid
        | None -> false
      end)
    changes

(* [?wanted] stays an option internally so the steady path never builds
   the [Node.of_int] wrapper closure the old code allocated per refresh. *)
let[@inline] wanted_at wanted i =
  match wanted with None -> true | Some f -> f (Node.of_int i)

let refresh ?wanted ?enabled t ~cost =
  t.stats.refreshes <- t.stats.refreshes + 1;
  let n = Graph.node_count t.graph in
  if Array.length t.weights = 0 then begin
    (* First refresh: allocate both tables once; they live forever. *)
    t.weights <- Dijkstra.compute_weights ?enabled t.graph ~cost;
    t.weights_scratch <- Array.make (Array.length t.weights) (-1);
    t.stats.full_sweeps <- t.stats.full_sweeps + 1;
    let todo = ref [] in
    for i = n - 1 downto 0 do
      if wanted_at wanted i then todo := i :: !todo else t.trees.(i) <- None
    done;
    recompute t !todo
  end
  else begin
    let w = t.weights_scratch in
    let old = t.weights in
    Dijkstra.compute_weights_into ?enabled t.graph ~cost w;
    let nl = Array.length w in
    let nchanged = ref 0 in
    for i = 0 to nl - 1 do
      if w.(i) <> old.(i) then incr nchanged
    done;
    if !nchanged = 0 then begin
      (* Nothing flooded a significant update: every existing tree is
         still exact; only sources newly wanted need work.  This is the
         per-period steady path and allocates nothing (unless trees are
         missing, which only happens right after a wanted-set change). *)
      let missing = ref 0 in
      for i = 0 to n - 1 do
        match t.trees.(i) with
        | Some _ -> t.stats.sources_reused <- t.stats.sources_reused + 1
        | None -> if wanted_at wanted i then incr missing
      done;
      if !missing = 0 then t.stats.skipped <- t.stats.skipped + 1
      else begin
        let todo = ref [] in
        for i = n - 1 downto 0 do
          match t.trees.(i) with
          | None -> if wanted_at wanted i then todo := i :: !todo
          | Some _ -> ()
        done;
        recompute t !todo
      end
    end
    else begin
      (* Change path (floods happened): swap the tables and fall back to
         the proof-driven repair/recompute split.  Allocation is fine
         here — the network itself is churning. *)
      t.weights <- w;
      t.weights_scratch <- old;
      let changes = ref [] in
      for i = nl - 1 downto 0 do
        if w.(i) <> old.(i) then
          changes := (Link.id_of_int i, old.(i), w.(i)) :: !changes
      done;
      let changes = !changes in
      if
        float_of_int !nchanged
        > t.threshold *. float_of_int (Graph.link_count t.graph)
      then begin
        t.stats.full_sweeps <- t.stats.full_sweeps + 1;
        let todo = ref [] in
        for i = n - 1 downto 0 do
          if wanted_at wanted i then todo := i :: !todo
        done;
        recompute t !todo
      end
      else begin
        let todo = ref [] in
        let to_repair = ref [] in
        for i = n - 1 downto 0 do
          match t.trees.(i) with
          | Some tree when not (affected t tree changes) ->
            (* Provably identical to a recompute — keep it, wanted or not. *)
            t.stats.sources_reused <- t.stats.sources_reused + 1
          | Some _ ->
            if not (wanted_at wanted i) then t.trees.(i) <- None
            else if t.repair then to_repair := i :: !to_repair
            else todo := i :: !todo
          | None -> if wanted_at wanted i then todo := i :: !todo
        done;
        repair_trees t !to_repair changes;
        recompute t !todo
      end
    end
  end

let tree t node =
  if Array.length t.weights = 0 then
    invalid_arg "Spf_engine.tree: refresh the engine first";
  let i = Node.to_int node in
  match t.trees.(i) with
  | Some tree -> tree
  | None ->
    let tree = Dijkstra.compute_flat_s t.scratch t.graph ~weights:t.weights node in
    t.trees.(i) <- Some tree;
    t.stats.sources_recomputed <- t.stats.sources_recomputed + 1;
    tree

let trees t =
  if Array.length t.weights = 0 then
    invalid_arg "Spf_engine.trees: refresh the engine first";
  let todo = ref [] in
  for i = Graph.node_count t.graph - 1 downto 0 do
    if t.trees.(i) = None then todo := i :: !todo
  done;
  if !todo <> [] then recompute t !todo;
  Array.map Option.get t.trees

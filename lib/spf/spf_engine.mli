open! Import

(** The all-pairs SPF engine: owns one shortest-path tree per source node
    and refreshes the set against new link costs at minimal cost.

    Both simulators route every packet off these trees, and the paper's
    whole point is that HN-SPF changes only a handful of link costs per
    routing period — so recomputing all [N] trees from scratch each period
    (the historical behavior) wastes almost all of its work.  On each
    {!refresh} the engine memoizes the composite edge weights into a flat
    table (one metric evaluation per link), diffs it against the previous
    table, and:

    - if nothing changed, keeps every tree (a skipped refresh);
    - if a small set changed, {e proves} per source whether the changes
      can touch that tree — an increase only matters to trees using the
      link, a decrease only to trees it could shorten or tie — and
      dynamically {e repairs} just the affected sources in place
      ({!Spf_repair}), re-settling only the disturbed region of each
      tree;
    - if a large fraction changed (more than [threshold] of the links),
      recomputes every wanted source outright.

    Repair and recomputation fan out over an optional {!Domain_pool.t}.
    In every configuration — sequential or parallel, repaired, swept or
    reused — the served trees are {b bit-identical} to [Dijkstra.compute]
    from scratch on the current costs: reuse happens only when a tree
    provably equals its recomputation (same distances, hops and parent
    links), repair restores exactly the from-scratch fixpoint, and
    parallel sources each write only their own slot.  Trees use [`Neutral]
    tie-breaking.

    {b Aliasing.}  Repair patches trees in place: a [Spf_tree.t] obtained
    from the engine reflects the {e latest} refresh, not the one it was
    fetched under.  Callers needing a frozen snapshot must copy before
    the next refresh. *)

type t

val create :
  ?pool:Domain_pool.t ->
  ?tracer:Tracer.t ->
  ?threshold:float ->
  ?repair:bool ->
  ?repair_grain:int ->
  Graph.t ->
  t
(** [threshold] (default 0.25) is the changed-links fraction above which a
    refresh abandons per-source analysis and recomputes everything.
    [repair] (default [true]) selects in-place dynamic repair for affected
    sources; [false] falls back to per-source full recomputation (useful
    for differential testing and benchmarking).  [repair_grain] (default
    256) is the affected-tree count at or above which repairs fan out over
    [pool] — repairs are usually so cheap that the fan-out only pays off
    for large batches.

    [tracer] (default {!Tracer.null}) flight-records the engine:
    recompute and repair batches become [spf_recompute] / [spf_repair]
    spans on the calling domain's track, and — when the same tracer's
    {!Tracer.pool_probe} is installed on [pool] — each worker domain
    records the chunks of sources it actually ran. *)

val graph : t -> Graph.t

val refresh :
  ?wanted:(Node.t -> bool) ->
  ?enabled:(Link.id -> bool) ->
  t ->
  cost:(Link.id -> int) ->
  unit
(** Bring the engine up to date with [cost] / [enabled].  Only sources for
    which [wanted] holds (default: all) are guaranteed to have trees
    afterwards; unwanted sources keep their trees when provably unaffected
    and drop them otherwise (they can still be served on demand by
    {!tree}).
    @raise Invalid_argument if any enabled link's cost is outside
    [Dijkstra]'s admissible range. *)

val tree : t -> Node.t -> Spf_tree.t
(** The current tree rooted at the node, computing it on demand if the
    last refresh didn't want it.
    @raise Invalid_argument before the first {!refresh}. *)

val trees : t -> Spf_tree.t array
(** All trees, indexed by node id — [Dijkstra.all_pairs] served from the
    engine's cache.  Computes any missing sources first.
    @raise Invalid_argument before the first {!refresh}. *)

type stats = {
  mutable refreshes : int;  (** {!refresh} calls *)
  mutable skipped : int;
      (** refreshes where no weight changed and no tree was missing *)
  mutable full_sweeps : int;
      (** refreshes that recomputed every wanted source (first refresh, or
          changed set above [threshold]) *)
  mutable sources_recomputed : int;  (** single-source Dijkstra runs *)
  mutable sources_repaired : int;
      (** source trees patched in place by dynamic repair *)
  mutable sources_reused : int;
      (** source trees kept across a refresh without recomputation *)
  mutable nodes_resettled : int;
      (** total nodes re-settled across all repairs — the work dynamic
          repair actually did, vs. [sources_repaired × node_count] a
          recompute would have *)
}

val stats : t -> stats
(** Live counters (the record is the engine's own — read, don't write).
    The satellite "skip refresh when a period floods zero significant
    updates" is visible here as [skipped] climbing while [refreshes]
    climbs. *)

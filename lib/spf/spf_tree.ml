open! Import

type t = {
  graph : Graph.t;
  root : Node.t;
  parent : Link.id option array;
  dist : int array;
  hops : int array;
}

let make ~graph ~root ~parent ~dist ~hops =
  { graph; root; parent; dist; hops }

let graph t = t.graph

let root t = t.root

let reached t n = t.dist.(Node.to_int n) <> max_int

let dist t n = t.dist.(Node.to_int n)

let hops t n = t.hops.(Node.to_int n)

let parent_link t n =
  Option.map (Graph.link t.graph) t.parent.(Node.to_int n)

(* Raw int-indexed accessors for hot loops: no option or Node.t boxing. *)

let reached_i t i = t.dist.(i) <> max_int

let hops_i t i = t.hops.(i)

let parent_id t i =
  match t.parent.(i) with None -> -1 | Some lid -> Link.id_to_int lid

let unsafe_arrays t = (t.parent, t.dist, t.hops)

(* Individual array accessors: the tuple return of [unsafe_arrays] boxes,
   which the repair path cannot afford on its steady path. *)

let unsafe_parent t = t.parent

let unsafe_dist t = t.dist

let unsafe_hops t = t.hops

let path t dst =
  if not (reached t dst) then invalid_arg "Spf_tree.path: unreachable";
  let rec climb n acc =
    match t.parent.(Node.to_int n) with
    | None -> acc
    | Some lid ->
      let l = Graph.link t.graph lid in
      climb l.Link.src (l :: acc)
  in
  climb dst []

let next_hop t dst =
  if Node.equal dst t.root || not (reached t dst) then None
  else begin
    let rec climb n =
      match t.parent.(Node.to_int n) with
      | None -> None
      | Some lid ->
        let l = Graph.link t.graph lid in
        if Node.equal l.Link.src t.root then Some l else climb l.Link.src
    in
    climb dst
  end

let uses_link t dst lid =
  reached t dst
  &&
  let rec climb n =
    match t.parent.(Node.to_int n) with
    | None -> false
    | Some plid ->
      Link.id_equal plid lid
      || climb (Graph.link t.graph plid).Link.src
  in
  climb dst

let fold_reached t ~init ~f =
  let acc = ref init in
  Graph.iter_nodes t.graph (fun n ->
      if reached t n && not (Node.equal n t.root) then acc := f !acc n);
  !acc

let destinations_via t lid =
  fold_reached t ~init:[] ~f:(fun acc n ->
      if uses_link t n lid then n :: acc else acc)
  |> List.rev

let equal a b =
  Node.equal a.root b.root
  && a.dist = b.dist && a.hops = b.hops
  && Array.length a.parent = Array.length b.parent
  && begin
       let ok = ref true in
       Array.iteri
         (fun i p ->
           match (p, b.parent.(i)) with
           | None, None -> ()
           | Some x, Some y when Link.id_equal x y -> ()
           | _ -> ok := false)
         a.parent;
       !ok
     end

let equal_dists a b =
  Array.length a.dist = Array.length b.dist
  && Node.equal a.root b.root
  &&
  let ok = ref true in
  Array.iteri (fun i d -> if d <> b.dist.(i) then ok := false) a.dist;
  !ok
